# Empty compiler generated dependencies file for micro_delta_union.
# This may be replaced when dependencies are built.
