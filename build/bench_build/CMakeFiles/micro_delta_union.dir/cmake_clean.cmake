file(REMOVE_RECURSE
  "../bench/micro_delta_union"
  "../bench/micro_delta_union.pdb"
  "CMakeFiles/micro_delta_union.dir/micro_delta_union.cc.o"
  "CMakeFiles/micro_delta_union.dir/micro_delta_union.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_delta_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
