file(REMOVE_RECURSE
  "../bench/fig6_few_changes"
  "../bench/fig6_few_changes.pdb"
  "CMakeFiles/fig6_few_changes.dir/fig6_few_changes.cc.o"
  "CMakeFiles/fig6_few_changes.dir/fig6_few_changes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_few_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
