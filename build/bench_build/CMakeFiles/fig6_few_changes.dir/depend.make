# Empty dependencies file for fig6_few_changes.
# This may be replaced when dependencies are built.
