# Empty compiler generated dependencies file for ablation_strict_semantics.
# This may be replaced when dependencies are built.
