file(REMOVE_RECURSE
  "../bench/ablation_strict_semantics"
  "../bench/ablation_strict_semantics.pdb"
  "CMakeFiles/ablation_strict_semantics.dir/ablation_strict_semantics.cc.o"
  "CMakeFiles/ablation_strict_semantics.dir/ablation_strict_semantics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strict_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
