file(REMOVE_RECURSE
  "../bench/hybrid_crossover"
  "../bench/hybrid_crossover.pdb"
  "CMakeFiles/hybrid_crossover.dir/hybrid_crossover.cc.o"
  "CMakeFiles/hybrid_crossover.dir/hybrid_crossover.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
