file(REMOVE_RECURSE
  "../bench/ablation_aggregates"
  "../bench/ablation_aggregates.pdb"
  "CMakeFiles/ablation_aggregates.dir/ablation_aggregates.cc.o"
  "CMakeFiles/ablation_aggregates.dir/ablation_aggregates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
