# Empty dependencies file for ablation_aggregates.
# This may be replaced when dependencies are built.
