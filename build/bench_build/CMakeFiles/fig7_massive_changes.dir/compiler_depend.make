# Empty compiler generated dependencies file for fig7_massive_changes.
# This may be replaced when dependencies are built.
