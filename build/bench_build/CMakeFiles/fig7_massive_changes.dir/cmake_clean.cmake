file(REMOVE_RECURSE
  "../bench/fig7_massive_changes"
  "../bench/fig7_massive_changes.pdb"
  "CMakeFiles/fig7_massive_changes.dir/fig7_massive_changes.cc.o"
  "CMakeFiles/fig7_massive_changes.dir/fig7_massive_changes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_massive_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
