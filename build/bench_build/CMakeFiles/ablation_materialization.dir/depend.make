# Empty dependencies file for ablation_materialization.
# This may be replaced when dependencies are built.
