file(REMOVE_RECURSE
  "../bench/ablation_materialization"
  "../bench/ablation_materialization.pdb"
  "CMakeFiles/ablation_materialization.dir/ablation_materialization.cc.o"
  "CMakeFiles/ablation_materialization.dir/ablation_materialization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_materialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
