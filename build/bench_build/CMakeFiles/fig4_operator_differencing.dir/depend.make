# Empty dependencies file for fig4_operator_differencing.
# This may be replaced when dependencies are built.
