file(REMOVE_RECURSE
  "../bench/fig4_operator_differencing"
  "../bench/fig4_operator_differencing.pdb"
  "CMakeFiles/fig4_operator_differencing.dir/fig4_operator_differencing.cc.o"
  "CMakeFiles/fig4_operator_differencing.dir/fig4_operator_differencing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_operator_differencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
