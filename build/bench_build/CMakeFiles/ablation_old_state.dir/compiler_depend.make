# Empty compiler generated dependencies file for ablation_old_state.
# This may be replaced when dependencies are built.
