file(REMOVE_RECURSE
  "../bench/ablation_old_state"
  "../bench/ablation_old_state.pdb"
  "CMakeFiles/ablation_old_state.dir/ablation_old_state.cc.o"
  "CMakeFiles/ablation_old_state.dir/ablation_old_state.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_old_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
