
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_recursion.cc" "bench_build/CMakeFiles/ablation_recursion.dir/ablation_recursion.cc.o" "gcc" "bench_build/CMakeFiles/ablation_recursion.dir/ablation_recursion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_util/CMakeFiles/deltamon_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/deltamon_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/relalg/CMakeFiles/deltamon_relalg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/deltamon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/objectlog/CMakeFiles/deltamon_objectlog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/deltamon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/delta/CMakeFiles/deltamon_delta.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/deltamon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
