file(REMOVE_RECURSE
  "../bench/ablation_recursion"
  "../bench/ablation_recursion.pdb"
  "CMakeFiles/ablation_recursion.dir/ablation_recursion.cc.o"
  "CMakeFiles/ablation_recursion.dir/ablation_recursion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recursion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
