# Empty dependencies file for ablation_recursion.
# This may be replaced when dependencies are built.
