file(REMOVE_RECURSE
  "../bench/ablation_node_sharing"
  "../bench/ablation_node_sharing.pdb"
  "CMakeFiles/ablation_node_sharing.dir/ablation_node_sharing.cc.o"
  "CMakeFiles/ablation_node_sharing.dir/ablation_node_sharing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_node_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
