# Empty compiler generated dependencies file for ablation_node_sharing.
# This may be replaced when dependencies are built.
