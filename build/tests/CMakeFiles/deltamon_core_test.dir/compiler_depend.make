# Empty compiler generated dependencies file for deltamon_core_test.
# This may be replaced when dependencies are built.
