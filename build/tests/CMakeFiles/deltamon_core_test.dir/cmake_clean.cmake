file(REMOVE_RECURSE
  "CMakeFiles/deltamon_core_test.dir/core/aggregate_test.cc.o"
  "CMakeFiles/deltamon_core_test.dir/core/aggregate_test.cc.o.d"
  "CMakeFiles/deltamon_core_test.dir/core/materialization_test.cc.o"
  "CMakeFiles/deltamon_core_test.dir/core/materialization_test.cc.o.d"
  "CMakeFiles/deltamon_core_test.dir/core/network_print_test.cc.o"
  "CMakeFiles/deltamon_core_test.dir/core/network_print_test.cc.o.d"
  "CMakeFiles/deltamon_core_test.dir/core/propagation_test.cc.o"
  "CMakeFiles/deltamon_core_test.dir/core/propagation_test.cc.o.d"
  "CMakeFiles/deltamon_core_test.dir/core/propagator_edge_test.cc.o"
  "CMakeFiles/deltamon_core_test.dir/core/propagator_edge_test.cc.o.d"
  "CMakeFiles/deltamon_core_test.dir/core/recursion_test.cc.o"
  "CMakeFiles/deltamon_core_test.dir/core/recursion_test.cc.o.d"
  "deltamon_core_test"
  "deltamon_core_test.pdb"
  "deltamon_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
