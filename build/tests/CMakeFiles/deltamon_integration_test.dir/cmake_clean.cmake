file(REMOVE_RECURSE
  "CMakeFiles/deltamon_integration_test.dir/integration/equivalence_test.cc.o"
  "CMakeFiles/deltamon_integration_test.dir/integration/equivalence_test.cc.o.d"
  "CMakeFiles/deltamon_integration_test.dir/integration/paper_example_test.cc.o"
  "CMakeFiles/deltamon_integration_test.dir/integration/paper_example_test.cc.o.d"
  "CMakeFiles/deltamon_integration_test.dir/integration/random_network_test.cc.o"
  "CMakeFiles/deltamon_integration_test.dir/integration/random_network_test.cc.o.d"
  "deltamon_integration_test"
  "deltamon_integration_test.pdb"
  "deltamon_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
