# Empty dependencies file for deltamon_integration_test.
# This may be replaced when dependencies are built.
