# Empty compiler generated dependencies file for deltamon_objectlog_test.
# This may be replaced when dependencies are built.
