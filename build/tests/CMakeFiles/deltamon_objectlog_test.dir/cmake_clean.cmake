file(REMOVE_RECURSE
  "CMakeFiles/deltamon_objectlog_test.dir/objectlog/eval_edge_test.cc.o"
  "CMakeFiles/deltamon_objectlog_test.dir/objectlog/eval_edge_test.cc.o.d"
  "CMakeFiles/deltamon_objectlog_test.dir/objectlog/eval_test.cc.o"
  "CMakeFiles/deltamon_objectlog_test.dir/objectlog/eval_test.cc.o.d"
  "CMakeFiles/deltamon_objectlog_test.dir/objectlog/registry_test.cc.o"
  "CMakeFiles/deltamon_objectlog_test.dir/objectlog/registry_test.cc.o.d"
  "deltamon_objectlog_test"
  "deltamon_objectlog_test.pdb"
  "deltamon_objectlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_objectlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
