# Empty dependencies file for deltamon_amosql_test.
# This may be replaced when dependencies are built.
