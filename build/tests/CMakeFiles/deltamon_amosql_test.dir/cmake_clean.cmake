file(REMOVE_RECURSE
  "CMakeFiles/deltamon_amosql_test.dir/amosql/compiler_test.cc.o"
  "CMakeFiles/deltamon_amosql_test.dir/amosql/compiler_test.cc.o.d"
  "CMakeFiles/deltamon_amosql_test.dir/amosql/fuzz_test.cc.o"
  "CMakeFiles/deltamon_amosql_test.dir/amosql/fuzz_test.cc.o.d"
  "CMakeFiles/deltamon_amosql_test.dir/amosql/lexer_test.cc.o"
  "CMakeFiles/deltamon_amosql_test.dir/amosql/lexer_test.cc.o.d"
  "CMakeFiles/deltamon_amosql_test.dir/amosql/parser_test.cc.o"
  "CMakeFiles/deltamon_amosql_test.dir/amosql/parser_test.cc.o.d"
  "CMakeFiles/deltamon_amosql_test.dir/amosql/session_test.cc.o"
  "CMakeFiles/deltamon_amosql_test.dir/amosql/session_test.cc.o.d"
  "deltamon_amosql_test"
  "deltamon_amosql_test.pdb"
  "deltamon_amosql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_amosql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
