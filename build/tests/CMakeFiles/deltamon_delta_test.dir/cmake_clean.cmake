file(REMOVE_RECURSE
  "CMakeFiles/deltamon_delta_test.dir/delta/delta_set_test.cc.o"
  "CMakeFiles/deltamon_delta_test.dir/delta/delta_set_test.cc.o.d"
  "deltamon_delta_test"
  "deltamon_delta_test.pdb"
  "deltamon_delta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
