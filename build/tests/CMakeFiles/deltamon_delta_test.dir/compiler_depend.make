# Empty compiler generated dependencies file for deltamon_delta_test.
# This may be replaced when dependencies are built.
