file(REMOVE_RECURSE
  "CMakeFiles/deltamon_relalg_test.dir/relalg/old_state_view_test.cc.o"
  "CMakeFiles/deltamon_relalg_test.dir/relalg/old_state_view_test.cc.o.d"
  "CMakeFiles/deltamon_relalg_test.dir/relalg/relalg_test.cc.o"
  "CMakeFiles/deltamon_relalg_test.dir/relalg/relalg_test.cc.o.d"
  "deltamon_relalg_test"
  "deltamon_relalg_test.pdb"
  "deltamon_relalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_relalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
