# Empty compiler generated dependencies file for deltamon_relalg_test.
# This may be replaced when dependencies are built.
