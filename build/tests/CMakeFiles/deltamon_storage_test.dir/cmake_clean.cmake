file(REMOVE_RECURSE
  "CMakeFiles/deltamon_storage_test.dir/storage/storage_test.cc.o"
  "CMakeFiles/deltamon_storage_test.dir/storage/storage_test.cc.o.d"
  "deltamon_storage_test"
  "deltamon_storage_test.pdb"
  "deltamon_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
