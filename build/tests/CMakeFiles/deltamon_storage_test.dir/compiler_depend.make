# Empty compiler generated dependencies file for deltamon_storage_test.
# This may be replaced when dependencies are built.
