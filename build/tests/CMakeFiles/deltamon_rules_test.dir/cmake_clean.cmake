file(REMOVE_RECURSE
  "CMakeFiles/deltamon_rules_test.dir/rules/cascade_test.cc.o"
  "CMakeFiles/deltamon_rules_test.dir/rules/cascade_test.cc.o.d"
  "CMakeFiles/deltamon_rules_test.dir/rules/foreign_test.cc.o"
  "CMakeFiles/deltamon_rules_test.dir/rules/foreign_test.cc.o.d"
  "CMakeFiles/deltamon_rules_test.dir/rules/immediate_test.cc.o"
  "CMakeFiles/deltamon_rules_test.dir/rules/immediate_test.cc.o.d"
  "CMakeFiles/deltamon_rules_test.dir/rules/rules_test.cc.o"
  "CMakeFiles/deltamon_rules_test.dir/rules/rules_test.cc.o.d"
  "deltamon_rules_test"
  "deltamon_rules_test.pdb"
  "deltamon_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
