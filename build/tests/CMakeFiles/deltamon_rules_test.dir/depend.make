# Empty dependencies file for deltamon_rules_test.
# This may be replaced when dependencies are built.
