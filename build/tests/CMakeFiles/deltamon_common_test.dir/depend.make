# Empty dependencies file for deltamon_common_test.
# This may be replaced when dependencies are built.
