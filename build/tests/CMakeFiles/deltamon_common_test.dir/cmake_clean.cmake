file(REMOVE_RECURSE
  "CMakeFiles/deltamon_common_test.dir/common/status_test.cc.o"
  "CMakeFiles/deltamon_common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/deltamon_common_test.dir/common/tuple_test.cc.o"
  "CMakeFiles/deltamon_common_test.dir/common/tuple_test.cc.o.d"
  "CMakeFiles/deltamon_common_test.dir/common/value_test.cc.o"
  "CMakeFiles/deltamon_common_test.dir/common/value_test.cc.o.d"
  "deltamon_common_test"
  "deltamon_common_test.pdb"
  "deltamon_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
