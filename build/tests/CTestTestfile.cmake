# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/deltamon_common_test[1]_include.cmake")
include("/root/repo/build/tests/deltamon_delta_test[1]_include.cmake")
include("/root/repo/build/tests/deltamon_storage_test[1]_include.cmake")
include("/root/repo/build/tests/deltamon_objectlog_test[1]_include.cmake")
include("/root/repo/build/tests/deltamon_core_test[1]_include.cmake")
include("/root/repo/build/tests/deltamon_rules_test[1]_include.cmake")
include("/root/repo/build/tests/deltamon_amosql_test[1]_include.cmake")
include("/root/repo/build/tests/deltamon_integration_test[1]_include.cmake")
include("/root/repo/build/tests/deltamon_relalg_test[1]_include.cmake")
