file(REMOVE_RECURSE
  "libdeltamon_delta.a"
)
