# Empty compiler generated dependencies file for deltamon_delta.
# This may be replaced when dependencies are built.
