file(REMOVE_RECURSE
  "CMakeFiles/deltamon_delta.dir/delta_set.cc.o"
  "CMakeFiles/deltamon_delta.dir/delta_set.cc.o.d"
  "libdeltamon_delta.a"
  "libdeltamon_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
