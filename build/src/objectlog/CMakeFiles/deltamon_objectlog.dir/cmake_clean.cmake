file(REMOVE_RECURSE
  "CMakeFiles/deltamon_objectlog.dir/ast.cc.o"
  "CMakeFiles/deltamon_objectlog.dir/ast.cc.o.d"
  "CMakeFiles/deltamon_objectlog.dir/eval.cc.o"
  "CMakeFiles/deltamon_objectlog.dir/eval.cc.o.d"
  "CMakeFiles/deltamon_objectlog.dir/registry.cc.o"
  "CMakeFiles/deltamon_objectlog.dir/registry.cc.o.d"
  "libdeltamon_objectlog.a"
  "libdeltamon_objectlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_objectlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
