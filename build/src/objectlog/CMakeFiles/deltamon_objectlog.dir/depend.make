# Empty dependencies file for deltamon_objectlog.
# This may be replaced when dependencies are built.
