file(REMOVE_RECURSE
  "libdeltamon_objectlog.a"
)
