# Empty compiler generated dependencies file for deltamon_rules.
# This may be replaced when dependencies are built.
