file(REMOVE_RECURSE
  "CMakeFiles/deltamon_rules.dir/rule_manager.cc.o"
  "CMakeFiles/deltamon_rules.dir/rule_manager.cc.o.d"
  "libdeltamon_rules.a"
  "libdeltamon_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
