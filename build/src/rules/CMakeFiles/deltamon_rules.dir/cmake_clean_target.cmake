file(REMOVE_RECURSE
  "libdeltamon_rules.a"
)
