file(REMOVE_RECURSE
  "libdeltamon_storage.a"
)
