# Empty dependencies file for deltamon_storage.
# This may be replaced when dependencies are built.
