
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/base_relation.cc" "src/storage/CMakeFiles/deltamon_storage.dir/base_relation.cc.o" "gcc" "src/storage/CMakeFiles/deltamon_storage.dir/base_relation.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/deltamon_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/deltamon_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/storage/CMakeFiles/deltamon_storage.dir/database.cc.o" "gcc" "src/storage/CMakeFiles/deltamon_storage.dir/database.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/deltamon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/delta/CMakeFiles/deltamon_delta.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
