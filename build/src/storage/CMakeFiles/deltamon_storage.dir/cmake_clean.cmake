file(REMOVE_RECURSE
  "CMakeFiles/deltamon_storage.dir/base_relation.cc.o"
  "CMakeFiles/deltamon_storage.dir/base_relation.cc.o.d"
  "CMakeFiles/deltamon_storage.dir/catalog.cc.o"
  "CMakeFiles/deltamon_storage.dir/catalog.cc.o.d"
  "CMakeFiles/deltamon_storage.dir/database.cc.o"
  "CMakeFiles/deltamon_storage.dir/database.cc.o.d"
  "libdeltamon_storage.a"
  "libdeltamon_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
