file(REMOVE_RECURSE
  "CMakeFiles/deltamon_common.dir/status.cc.o"
  "CMakeFiles/deltamon_common.dir/status.cc.o.d"
  "CMakeFiles/deltamon_common.dir/tuple.cc.o"
  "CMakeFiles/deltamon_common.dir/tuple.cc.o.d"
  "CMakeFiles/deltamon_common.dir/value.cc.o"
  "CMakeFiles/deltamon_common.dir/value.cc.o.d"
  "libdeltamon_common.a"
  "libdeltamon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
