file(REMOVE_RECURSE
  "libdeltamon_common.a"
)
