# Empty dependencies file for deltamon_common.
# This may be replaced when dependencies are built.
