
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amosql/ast.cc" "src/amosql/CMakeFiles/deltamon_amosql.dir/ast.cc.o" "gcc" "src/amosql/CMakeFiles/deltamon_amosql.dir/ast.cc.o.d"
  "/root/repo/src/amosql/compiler.cc" "src/amosql/CMakeFiles/deltamon_amosql.dir/compiler.cc.o" "gcc" "src/amosql/CMakeFiles/deltamon_amosql.dir/compiler.cc.o.d"
  "/root/repo/src/amosql/lexer.cc" "src/amosql/CMakeFiles/deltamon_amosql.dir/lexer.cc.o" "gcc" "src/amosql/CMakeFiles/deltamon_amosql.dir/lexer.cc.o.d"
  "/root/repo/src/amosql/parser.cc" "src/amosql/CMakeFiles/deltamon_amosql.dir/parser.cc.o" "gcc" "src/amosql/CMakeFiles/deltamon_amosql.dir/parser.cc.o.d"
  "/root/repo/src/amosql/session.cc" "src/amosql/CMakeFiles/deltamon_amosql.dir/session.cc.o" "gcc" "src/amosql/CMakeFiles/deltamon_amosql.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rules/CMakeFiles/deltamon_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/deltamon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/objectlog/CMakeFiles/deltamon_objectlog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/deltamon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/delta/CMakeFiles/deltamon_delta.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/deltamon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
