file(REMOVE_RECURSE
  "libdeltamon_amosql.a"
)
