# Empty compiler generated dependencies file for deltamon_amosql.
# This may be replaced when dependencies are built.
