file(REMOVE_RECURSE
  "CMakeFiles/deltamon_amosql.dir/ast.cc.o"
  "CMakeFiles/deltamon_amosql.dir/ast.cc.o.d"
  "CMakeFiles/deltamon_amosql.dir/compiler.cc.o"
  "CMakeFiles/deltamon_amosql.dir/compiler.cc.o.d"
  "CMakeFiles/deltamon_amosql.dir/lexer.cc.o"
  "CMakeFiles/deltamon_amosql.dir/lexer.cc.o.d"
  "CMakeFiles/deltamon_amosql.dir/parser.cc.o"
  "CMakeFiles/deltamon_amosql.dir/parser.cc.o.d"
  "CMakeFiles/deltamon_amosql.dir/session.cc.o"
  "CMakeFiles/deltamon_amosql.dir/session.cc.o.d"
  "libdeltamon_amosql.a"
  "libdeltamon_amosql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_amosql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
