# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("delta")
subdirs("storage")
subdirs("objectlog")
subdirs("relalg")
subdirs("core")
subdirs("rules")
subdirs("amosql")
subdirs("bench_util")
