# Empty compiler generated dependencies file for deltamon_core.
# This may be replaced when dependencies are built.
