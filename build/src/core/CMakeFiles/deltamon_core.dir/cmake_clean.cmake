file(REMOVE_RECURSE
  "CMakeFiles/deltamon_core.dir/materialized_views.cc.o"
  "CMakeFiles/deltamon_core.dir/materialized_views.cc.o.d"
  "CMakeFiles/deltamon_core.dir/network.cc.o"
  "CMakeFiles/deltamon_core.dir/network.cc.o.d"
  "CMakeFiles/deltamon_core.dir/propagator.cc.o"
  "CMakeFiles/deltamon_core.dir/propagator.cc.o.d"
  "libdeltamon_core.a"
  "libdeltamon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
