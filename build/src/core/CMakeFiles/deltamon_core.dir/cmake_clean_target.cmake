file(REMOVE_RECURSE
  "libdeltamon_core.a"
)
