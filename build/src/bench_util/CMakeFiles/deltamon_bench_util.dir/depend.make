# Empty dependencies file for deltamon_bench_util.
# This may be replaced when dependencies are built.
