file(REMOVE_RECURSE
  "CMakeFiles/deltamon_bench_util.dir/inventory.cc.o"
  "CMakeFiles/deltamon_bench_util.dir/inventory.cc.o.d"
  "libdeltamon_bench_util.a"
  "libdeltamon_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
