file(REMOVE_RECURSE
  "libdeltamon_bench_util.a"
)
