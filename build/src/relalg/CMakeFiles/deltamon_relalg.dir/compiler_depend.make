# Empty compiler generated dependencies file for deltamon_relalg.
# This may be replaced when dependencies are built.
