file(REMOVE_RECURSE
  "CMakeFiles/deltamon_relalg.dir/relalg.cc.o"
  "CMakeFiles/deltamon_relalg.dir/relalg.cc.o.d"
  "libdeltamon_relalg.a"
  "libdeltamon_relalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deltamon_relalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
