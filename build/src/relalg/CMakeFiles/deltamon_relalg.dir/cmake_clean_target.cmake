file(REMOVE_RECURSE
  "libdeltamon_relalg.a"
)
