file(REMOVE_RECURSE
  "CMakeFiles/dependency_monitor.dir/dependency_monitor.cpp.o"
  "CMakeFiles/dependency_monitor.dir/dependency_monitor.cpp.o.d"
  "dependency_monitor"
  "dependency_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
