# Empty compiler generated dependencies file for dependency_monitor.
# This may be replaced when dependencies are built.
