file(REMOVE_RECURSE
  "CMakeFiles/amosql_shell.dir/amosql_shell.cpp.o"
  "CMakeFiles/amosql_shell.dir/amosql_shell.cpp.o.d"
  "amosql_shell"
  "amosql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amosql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
