# Empty dependencies file for amosql_shell.
# This may be replaced when dependencies are built.
