file(REMOVE_RECURSE
  "CMakeFiles/inventory_monitor.dir/inventory_monitor.cpp.o"
  "CMakeFiles/inventory_monitor.dir/inventory_monitor.cpp.o.d"
  "inventory_monitor"
  "inventory_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inventory_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
