# Empty dependencies file for inventory_monitor.
# This may be replaced when dependencies are built.
