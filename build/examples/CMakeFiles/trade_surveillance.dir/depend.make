# Empty dependencies file for trade_surveillance.
# This may be replaced when dependencies are built.
