// deltamon-replay: re-executes a captured `deltamon.wave.v1` file (from
// `dump waves "path";` or GET /debug/waves) against an engine rebuilt from
// an AMOSQL init script, and asserts the replayed check phases produce
// bit-identical outcomes — influents, root Δ-sets, and firings.
//
//   $ deltamon-replay --waves=waves.json --init=schema.sql
//   REPLAY 3 waves, 2 commits: identical
//
// --threads / --kernels override the engine settings for the replay; the
// outcome comparison deliberately ignores settings, so a recording taken
// at --threads=8 --kernels=on must replay identically at --threads=1
// --kernels=off (the determinism contract of docs/observability.md).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "amosql/session.h"
#include "obs/report.h"
#include "obs/wave_recorder.h"
#include "rules/wave_replay.h"

using namespace deltamon;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --waves=FILE --init=FILE [options]\n"
               "  --waves=FILE    deltamon.wave.v1 capture to replay\n"
               "  --init=FILE     AMOSQL script rebuilding the schema, rules\n"
               "                  and pre-capture state\n"
               "  --threads=N     replay with N propagation threads\n"
               "  --kernels=on|off replay with batch kernels on or off\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string waves_file;
  std::string init_file;
  long threads = -1;
  int kernels = -1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--waves=", 8) == 0) {
      waves_file = arg + 8;
    } else if (std::strncmp(arg, "--init=", 7) == 0) {
      init_file = arg + 7;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::strtol(arg + 10, nullptr, 10);
    } else if (std::strcmp(arg, "--kernels=on") == 0) {
      kernels = 1;
    } else if (std::strcmp(arg, "--kernels=off") == 0) {
      kernels = 0;
    } else {
      return Usage(argv[0]);
    }
  }
  if (waves_file.empty() || init_file.empty()) return Usage(argv[0]);

  Result<std::string> waves_text = obs::ReadTextFile(waves_file);
  if (!waves_text.ok()) {
    std::fprintf(stderr, "deltamon-replay: cannot read %s: %s\n",
                 waves_file.c_str(), waves_text.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<obs::WaveRecord>> recorded =
      obs::ParseWaveFile(*waves_text);
  if (!recorded.ok()) {
    std::fprintf(stderr, "deltamon-replay: %s: %s\n", waves_file.c_str(),
                 recorded.status().ToString().c_str());
    return 1;
  }

  Result<std::string> init_text = obs::ReadTextFile(init_file);
  if (!init_text.ok()) {
    std::fprintf(stderr, "deltamon-replay: cannot read %s: %s\n",
                 init_file.c_str(), init_text.status().ToString().c_str());
    return 1;
  }
  Engine engine;
  amosql::Session session(engine);
  Result<amosql::QueryResult> init =
      amosql::ExecuteStatement(session, *init_text);
  if (!init.ok()) {
    std::fprintf(stderr, "deltamon-replay: init script failed: %s\n",
                 init.status().ToString().c_str());
    return 1;
  }

  if (threads >= 0) {
    engine.rules.SetNumThreads(static_cast<size_t>(threads));
  }
  if (kernels >= 0) engine.rules.SetKernelsEnabled(kernels == 1);

  Result<rules::WaveReplayReport> report =
      rules::ReplayWaves(engine.db, engine.rules, *recorded);
  if (!report.ok()) {
    std::fprintf(stderr, "deltamon-replay: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stdout, "%s", report->ToString().c_str());
  return report->ok() ? 0 : 1;
}
