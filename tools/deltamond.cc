// deltamond: the deltamon network server. Serves AMOSQL sessions over the
// length-prefixed frame protocol (docs/server.md) and Prometheus metrics /
// liveness over an admin HTTP listener.
//
//   $ deltamond --port 7654 --admin-port 7655
//   deltamond listening on 0.0.0.0:7654 (admin http on 7655), 2 workers
//   ^C
//   deltamond: draining and shutting down
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, finish the
// statement in flight, flush pending replies, close everything, and dump a
// final metrics snapshot to stderr.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "amosql/session.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/report.h"

using namespace deltamon;

namespace {

net::Server* g_server = nullptr;

void HandleSignal(int) {
  // Only async-signal-safe work here: an atomic store + eventfd writes.
  if (g_server != nullptr) g_server->RequestStop();
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port=N             AMOSQL protocol port (default 7654, 0 = any)\n"
      "  --admin-port=N       admin HTTP port for /metrics and /healthz\n"
      "                       (default 7655, 0 = any)\n"
      "  --no-admin           disable the admin HTTP listener\n"
      "  --workers=N          epoll worker event loops (default 2)\n"
      "  --max-frame-bytes=N  reject larger frames with ERR (default %zu)\n"
      "  --idle-timeout-ms=N  close idle connections (default 0 = never)\n"
      "  --write-high-water=N pause reading from a connection whose unsent\n"
      "                       reply bytes exceed N (default 8 MiB, 0 = off)\n"
      "  --slow-statement-ms=N capture span tree + profile of statements\n"
      "                       slower than N ms into the slow log\n"
      "                       (GET /debug/slow, `show slow;`; default 0 = "
      "off)\n"
      "  --flight-records=N   flight-recorder ring capacity in requests\n"
      "                       (GET /debug/requests; default 256)\n"
      "  --init=FILE          run AMOSQL from FILE at startup (schema "
      "preload)\n",
      argv0, net::kDefaultMaxFrameSize);
  return 2;
}

bool ParseLong(const char* arg, const char* prefix, long* out) {
  const size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  char* end = nullptr;
  *out = std::strtol(arg + n, &end, 10);
  return end != arg + n && *end == '\0' && *out >= 0;
}

/// The final shutdown report: counters and gauges as-is, histograms as a
/// p50/p99 percentile line (latency histograms in human time units) —
/// where the time went, not which log2 buckets it landed in. The
/// percentiles come from Histogram::Percentiles via Registry::Snapshot.
std::string ShutdownSummary() {
  const obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
  std::string out;
  char line[256];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(line, sizeof(line), "  %-40s %14llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "  %-40s %14lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    // _ns histograms are durations: print in milliseconds.
    if (name.size() > 3 && name.rfind("_ns") == name.size() - 3) {
      std::snprintf(line, sizeof(line),
                    "  %-40s count=%llu p50=%.3fms p99=%.3fms max=%.3fms\n",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    static_cast<double>(h.p50) / 1e6,
                    static_cast<double>(h.p99) / 1e6,
                    static_cast<double>(h.max) / 1e6);
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-40s count=%llu p50=%llu p99=%llu max=%llu\n",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    static_cast<unsigned long long>(h.p50),
                    static_cast<unsigned long long>(h.p99),
                    static_cast<unsigned long long>(h.max));
    }
    out += line;
  }
  if (out.empty()) out = "  (no metrics recorded)\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerOptions options;
  options.admin_port = 7655;
  std::string init_file;
  for (int i = 1; i < argc; ++i) {
    long value = 0;
    if (ParseLong(argv[i], "--port=", &value)) {
      options.port = static_cast<uint16_t>(value);
    } else if (ParseLong(argv[i], "--admin-port=", &value)) {
      options.admin_port = static_cast<uint16_t>(value);
    } else if (std::strcmp(argv[i], "--no-admin") == 0) {
      options.enable_admin = false;
    } else if (ParseLong(argv[i], "--workers=", &value) && value > 0) {
      options.num_workers = static_cast<size_t>(value);
    } else if (ParseLong(argv[i], "--max-frame-bytes=", &value) && value > 0) {
      options.max_frame_size = static_cast<size_t>(value);
    } else if (ParseLong(argv[i], "--idle-timeout-ms=", &value)) {
      options.idle_timeout_ms = static_cast<int>(value);
    } else if (ParseLong(argv[i], "--write-high-water=", &value)) {
      options.write_high_water = static_cast<size_t>(value);
    } else if (ParseLong(argv[i], "--slow-statement-ms=", &value)) {
      options.slow_statement_ms = static_cast<double>(value);
    } else if (ParseLong(argv[i], "--flight-records=", &value) && value > 0) {
      // Must precede the first GlobalRequestRecorder() use; nothing in
      // main touches the recorder before the server starts.
      obs::SetGlobalFlightRecorderCapacity(static_cast<size_t>(value));
    } else if (std::strncmp(argv[i], "--init=", 7) == 0) {
      init_file = argv[i] + 7;
    } else {
      return Usage(argv[0]);
    }
  }

  Engine engine;
  amosql::Session bootstrap(engine);
  if (!init_file.empty()) {
    Result<std::string> script = obs::ReadTextFile(init_file);
    if (!script.ok()) {
      std::fprintf(stderr, "deltamond: cannot read %s: %s\n",
                   init_file.c_str(), script.status().ToString().c_str());
      return 1;
    }
    Result<amosql::QueryResult> r =
        amosql::ExecuteStatement(bootstrap, *script);
    if (!r.ok()) {
      std::fprintf(stderr, "deltamond: init script failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
  }

  net::Server server(engine, options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "deltamond: %s\n", s.ToString().c_str());
    return 1;
  }
  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // broken pipes surface as write() errors

  if (options.enable_admin) {
    std::fprintf(stderr,
                 "deltamond listening on 0.0.0.0:%u (admin http on %u), "
                 "%zu workers\n",
                 server.port(), server.admin_port(), options.num_workers);
  } else {
    std::fprintf(stderr, "deltamond listening on 0.0.0.0:%u, %zu workers\n",
                 server.port(), options.num_workers);
  }
  std::fflush(stderr);

  server.Wait();
  g_server = nullptr;

  // Flush metrics: the final state of every net.* (and engine) metric,
  // so a scraped-to-death run still leaves its last numbers in the log.
  std::fprintf(stderr, "deltamond: draining and shutting down\n%s",
               ShutdownSummary().c_str());
  return 0;
}
