// bench_diff: compare two deltamon.bench.v1 reports (or two directories of
// BENCH_*.json reports) and fail when any benchmark regressed past the
// threshold.
//
//   bench_diff [--threshold=0.10] [--report-only] [--json]
//              <baseline> <current>
//
// <baseline> and <current> are either report files or directories; with
// directories, reports are paired by file name and files present on only
// one side are reported but never fatal. Exit codes: 0 no regression,
// 1 regression detected (suppressed by --report-only), 2 usage or I/O
// error. Baselines are committed under bench/baselines/; regenerate them
// with DELTAMON_BENCH_OUT_DIR=bench/baselines build/bench/<name>.
//
// --json swaps the streams for CI annotation: stdout carries one JSON
// array with an object per row ({name, baseline_ns, current_ns,
// delta_pct, verdict}) across all compared reports, and the human table
// moves to stderr.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util/diff.h"

namespace fs = std::filesystem;
using deltamon::Result;
using deltamon::bench::CompareReportFiles;
using deltamon::bench::DiffOptions;
using deltamon::bench::DiffResult;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threshold=FRACTION] [--report-only] [--json] "
               "<baseline.json|dir> <current.json|dir>\n",
               argv0);
  return 2;
}

/// BENCH_*.json file names directly inside `dir`, sorted.
std::vector<std::string> ReportFiles(const fs::path& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    if (e.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".json") {
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  DiffOptions options;
  bool report_only = false;
  bool json_output = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threshold=", 12) == 0) {
      char* end = nullptr;
      options.threshold = std::strtod(arg + 12, &end);
      if (end == arg + 12 || *end != '\0' || options.threshold < 0) {
        std::fprintf(stderr, "bench_diff: bad threshold '%s'\n", arg + 12);
        return 2;
      }
    } else if (std::strcmp(arg, "--report-only") == 0) {
      report_only = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json_output = true;
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) return Usage(argv[0]);

  const fs::path baseline(paths[0]);
  const fs::path current(paths[1]);
  std::vector<std::pair<std::string, std::string>> pairs;
  if (fs::is_directory(baseline) && fs::is_directory(current)) {
    for (const std::string& name : ReportFiles(baseline)) {
      const fs::path other = current / name;
      if (fs::exists(other)) {
        pairs.emplace_back((baseline / name).string(), other.string());
      } else {
        std::printf("%s: missing from current run\n", name.c_str());
      }
    }
    for (const std::string& name : ReportFiles(current)) {
      if (!fs::exists(baseline / name)) {
        std::printf("%s: new report (no baseline)\n", name.c_str());
      }
    }
    if (pairs.empty()) {
      std::fprintf(stderr, "bench_diff: no reports in common between '%s' "
                           "and '%s'\n",
                   paths[0].c_str(), paths[1].c_str());
      return 2;
    }
  } else if (!fs::is_directory(baseline) && !fs::is_directory(current)) {
    pairs.emplace_back(paths[0], paths[1]);
  } else {
    std::fprintf(stderr,
                 "bench_diff: '%s' and '%s' must both be files or both be "
                 "directories\n",
                 paths[0].c_str(), paths[1].c_str());
    return 2;
  }

  bool regression = false;
  deltamon::obs::Json rows = deltamon::obs::Json::Array();
  FILE* table = json_output ? stderr : stdout;
  for (const auto& [base_path, cur_path] : pairs) {
    Result<DiffResult> diff = CompareReportFiles(base_path, cur_path, options);
    if (!diff.ok()) {
      std::fprintf(stderr, "bench_diff: %s\n",
                   diff.status().message().c_str());
      return 2;
    }
    std::fputs(FormatDiff(diff.value(), options).c_str(), table);
    if (json_output) {
      deltamon::obs::Json chunk = FormatDiffJson(diff.value());
      for (const deltamon::obs::Json& row : chunk.array_items()) {
        rows.Append(row);
      }
    }
    regression = regression || diff.value().has_regression();
  }
  if (json_output) std::fputs(rows.Dump().c_str(), stdout);
  if (regression) {
    std::fprintf(table, report_only
                            ? "regressions detected (report-only: exit 0)\n"
                            : "regressions detected\n");
    return report_only ? 0 : 1;
  }
  return 0;
}
