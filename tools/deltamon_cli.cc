// deltamon-cli: remote AMOSQL REPL over the deltamond wire protocol.
//
//   $ deltamon-cli --port 7654
//   deltamon> select quantity(:a);
//
// Non-interactive use (scripts, CI): `-e "stmts"` executes one batch and
// exits; with stdin not a TTY, statements are read to EOF and executed
// batch-by-batch (';'-terminated), exiting non-zero on the first error.
//
// --timing prints the client-side wall time of every batch and opts the
// connection into server trace info, so each reply also carries a
// "-- trace <id>: queue ..., exec ..." line: the id to look up in the
// server's GET /debug/requests flight recorder.

#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "net/client.h"

using namespace deltamon;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host=H] [--port=N] [--timing] [-e \"statements\"]\n"
      "  --timing  print per-batch wall time and the server's trace line\n",
      argv0);
  return 2;
}

/// Prints a response the way the local REPL would: rows, "(N rows)",
/// then any report/action output.
void PrintResponse(const net::Client::Response& r) {
  for (const std::string& row : r.rows) std::printf("%s\n", row.c_str());
  if (!r.rows.empty()) std::printf("(%zu rows)\n", r.rows.size());
  if (!r.report.empty()) std::printf("%s", r.report.c_str());
}

/// Executes one batch; returns false on error (printed to stderr).
bool RunBatch(net::Client& client, const std::string& batch, bool timing) {
  const auto start = std::chrono::steady_clock::now();
  Result<net::Client::Response> r = client.Execute(batch);
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().message().c_str());
    return false;
  }
  PrintResponse(*r);
  // The server's trace line (queue/exec phases) is already in the report;
  // this adds what only the client can measure — the round trip.
  if (timing) std::printf("-- time: %.3f ms\n", ms);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  long port = 7654;
  std::string once;
  bool timing = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--host=", 7) == 0) {
      host = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      char* end = nullptr;
      port = std::strtol(argv[i] + 7, &end, 10);
      if (end == argv[i] + 7 || *end != '\0' || port <= 0 || port > 65535) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--timing") == 0) {
      timing = true;
    } else if (std::strcmp(argv[i], "-e") == 0 && i + 1 < argc) {
      once = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  Result<net::Client> client =
      net::Client::Connect(host, static_cast<uint16_t>(port),
                           net::kDefaultMaxFrameSize, /*trace_info=*/timing);
  if (!client.ok()) {
    std::fprintf(stderr, "deltamon-cli: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  if (!once.empty()) {
    return RunBatch(*client, once, timing) ? 0 : 1;
  }

  const bool interactive = ::isatty(STDIN_FILENO) != 0;
  if (interactive) {
    std::printf("deltamon-cli — connected to %s:%ld (\\q to quit)\n",
                host.c_str(), port);
  }
  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) {
      std::printf(buffer.empty() ? "deltamon> " : "     ...> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty() && (line == "\\q" || line == "\\quit")) break;
    buffer += line;
    buffer += "\n";
    // Same heuristic as the local shell: execute once the buffered input
    // ends with ';'.
    std::string trimmed = buffer;
    while (!trimmed.empty() &&
           std::isspace(static_cast<unsigned char>(trimmed.back()))) {
      trimmed.pop_back();
    }
    if (trimmed.empty() || trimmed.back() != ';') continue;
    const bool ok = RunBatch(*client, buffer, timing);
    buffer.clear();
    if (!ok && !interactive) return 1;
    if (!client->connected()) return 1;
  }
  return 0;
}
