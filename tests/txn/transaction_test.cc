/// Per-session transaction basics over the AMOSQL surface: snapshot
/// overlays (read-your-writes, isolation of buffered DML), begin/commit/
/// abort statements, autocommit snapshot refresh, the read-only commit
/// fast path, and the CommitInfo a committed wave stamps on the session.

#include <gtest/gtest.h>

#include "amosql/session.h"

namespace deltamon {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1_.AttachTransactionManager(&engine_.txn);
    s2_.AttachTransactionManager(&engine_.txn);
    auto r = s1_.Execute(
        "create function stock(integer) -> integer;"
        "set stock(1) = 10;"
        "set stock(2) = 20;"
        "commit;");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  Status Exec(amosql::Session& s, const std::string& src) {
    return s.Execute(src).status();
  }

  /// stock(key) through `s`, or INT64_MIN when the row is absent.
  int64_t Stock(amosql::Session& s, int key) {
    auto r = s.Execute("select stock(" + std::to_string(key) + ");");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok() || r->rows.empty()) return INT64_MIN;
    return r->rows[0][0].AsInt();
  }

  Engine engine_;
  amosql::Session s1_{engine_};
  amosql::Session s2_{engine_};
};

TEST_F(TransactionTest, ReadYourWritesAndIsolationUntilCommit) {
  ASSERT_TRUE(Exec(s1_, "begin; set stock(1) = 11;").ok());
  // The writer sees its own buffered overlay ...
  EXPECT_EQ(Stock(s1_, 1), 11);
  // ... the other session still sees the committed state ...
  EXPECT_EQ(Stock(s2_, 1), 10);
  ASSERT_TRUE(Exec(s1_, "commit;").ok());
  // ... and sees the new value once the wave commits (autocommit reads
  // re-snapshot per statement).
  EXPECT_EQ(Stock(s2_, 1), 11);
}

TEST_F(TransactionTest, AbortDiscardsBufferedWrites) {
  ASSERT_TRUE(Exec(s1_, "begin; set stock(1) = 99; set stock(3) = 3;").ok());
  EXPECT_EQ(Stock(s1_, 1), 99);
  ASSERT_TRUE(Exec(s1_, "abort;").ok());
  EXPECT_FALSE(s1_.txn_snapshot().HasWrites());
  EXPECT_FALSE(s1_.txn_snapshot().HasReads());
  EXPECT_EQ(Stock(s1_, 1), 10);
  auto r = s1_.Execute("select stock(3);");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());  // the insert never reached the store
}

TEST_F(TransactionTest, RollbackSpellingWorksToo) {
  ASSERT_TRUE(Exec(s1_, "begin; set stock(1) = 99; rollback;").ok());
  EXPECT_EQ(Stock(s1_, 1), 10);
}

TEST_F(TransactionTest, BeginWithBufferedChangesIsRejected) {
  ASSERT_TRUE(Exec(s1_, "begin; set stock(1) = 11;").ok());
  Status s = Exec(s1_, "begin;");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
  ASSERT_TRUE(Exec(s1_, "abort;").ok());
}

TEST_F(TransactionTest, AutocommitStatementsSeeConcurrentCommits) {
  // No explicit begin: every statement runs against a fresh snapshot, so
  // s2's read observes whatever s1 committed in between.
  EXPECT_EQ(Stock(s2_, 2), 20);
  ASSERT_TRUE(Exec(s1_, "set stock(2) = 21; commit;").ok());
  EXPECT_EQ(Stock(s2_, 2), 21);
}

TEST_F(TransactionTest, ReadOnlyCommitSkipsValidation) {
  // A transaction that buffered nothing commits without queueing — even
  // when a concurrent commit touched what it read (the documented
  // read-skew allowance for read-only transactions).
  ASSERT_TRUE(Exec(s2_, "begin;").ok());
  EXPECT_EQ(Stock(s2_, 1), 10);
  ASSERT_TRUE(Exec(s1_, "set stock(1) = 12; commit;").ok());
  EXPECT_TRUE(Exec(s2_, "commit;").ok());
}

TEST_F(TransactionTest, CommitInfoStampsTheWave) {
  const auto& before = s1_.txn_snapshot().last_commit;
  const uint64_t batch_before = before.batch_id;
  ASSERT_TRUE(Exec(s1_, "set stock(1) = 13; commit;").ok());
  const auto& info = s1_.txn_snapshot().last_commit;
  EXPECT_GT(info.batch_id, batch_before);
  EXPECT_GT(info.version, 0u);
  EXPECT_GE(info.batch_size, 1u);
}

TEST_F(TransactionTest, DdlRidesTheNextCommitWave) {
  // Object creation writes the store directly (DDL is non-transactional)
  // but its events still ride this session's next commit wave.
  ASSERT_TRUE(Exec(s1_,
                   "create type item;"
                   "create function qty(item) -> integer;"
                   "create item instances :a;"
                   "set qty(:a) = 5;"
                   "commit;")
                  .ok());
  auto r = s1_.Execute("select qty(i) for each item i;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0], Value(5));
}

TEST_F(TransactionTest, LegacySessionStillWorksAlongside) {
  // A session never attached keeps the single-threaded behavior; it is
  // only safe serially, which a test is.
  amosql::Session legacy(engine_);
  ASSERT_TRUE(legacy.Execute("set stock(9) = 90; commit;").status().ok());
  EXPECT_EQ(Stock(s1_, 9), 90);
}

}  // namespace
}  // namespace deltamon
