/// Deterministic conflict injection: two sessions on one engine, driven
/// from a single test thread so every interleaving is exact. Pins down
/// which transaction first-committer-wins validation aborts, that an
/// abort rolls the overlay back completely (including rule side effects:
/// the loser's writes never fire anything), and that the retried
/// transaction succeeds.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "amosql/session.h"

namespace deltamon {
namespace {

class ConflictInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The bootstrap session stays legacy (direct writes) like deltamond's
    // --init path; it owns the rule so `note` firings land in firings_.
    boot_.RegisterProcedure(
        "note", [this](Database&, const std::vector<Value>& args) {
          firings_.emplace_back(args[0].AsInt(), args[1].AsInt());
          return Status::OK();
        });
    auto r = boot_.Execute(
        "create function stock(integer) -> integer;"
        "create rule low_stock() as"
        "  when for each integer k where stock(k) < 3"
        "  do note(k, stock(k));"
        "activate low_stock();"
        "set stock(1) = 10;"
        "set stock(2) = 20;"
        "commit;");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    s1_.AttachTransactionManager(&engine_.txn);
    s2_.AttachTransactionManager(&engine_.txn);
  }

  Status Exec(amosql::Session& s, const std::string& src) {
    return s.Execute(src).status();
  }

  int64_t Stock(amosql::Session& s, int key) {
    auto r = s.Execute("select stock(" + std::to_string(key) + ");");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok() || r->rows.empty()) return INT64_MIN;
    return r->rows[0][0].AsInt();
  }

  Engine engine_;
  amosql::Session boot_{engine_};
  amosql::Session s1_{engine_};
  amosql::Session s2_{engine_};
  std::vector<std::pair<int64_t, int64_t>> firings_;
};

TEST_F(ConflictInjectionTest, WriteWriteAbortsTheSecondCommitter) {
  ASSERT_TRUE(Exec(s1_, "begin; set stock(1) = 11;").ok());
  ASSERT_TRUE(Exec(s2_, "begin; set stock(1) = 12;").ok());
  // s1 reaches the commit queue first and wins; s2's write set overlaps
  // a transaction committed after its snapshot, so validation aborts it.
  ASSERT_TRUE(Exec(s1_, "commit;").ok());
  Status s = Exec(s2_, "commit;");
  EXPECT_EQ(s.code(), StatusCode::kTxnConflict) << s.ToString();
  EXPECT_NE(s.ToString().find("conflict"), std::string::npos);
  EXPECT_NE(s.ToString().find("stock"), std::string::npos);
  EXPECT_EQ(Stock(boot_, 1), 11);  // the winner's value stuck
}

TEST_F(ConflictInjectionTest, WriteAfterReadOnMonitoredRelationAborts) {
  // s2 reads stock(1), then s1 overwrites it and commits. s2's own write
  // is on a disjoint key, but its read footprint overlaps the committed
  // write — the value it based its transaction on is stale.
  ASSERT_TRUE(Exec(s2_, "begin;").ok());
  EXPECT_EQ(Stock(s2_, 1), 10);
  ASSERT_TRUE(Exec(s1_, "begin; set stock(1) = 30; commit;").ok());
  ASSERT_TRUE(Exec(s2_, "set stock(2) = 99;").ok());
  Status s = Exec(s2_, "commit;");
  EXPECT_EQ(s.code(), StatusCode::kTxnConflict) << s.ToString();
  EXPECT_EQ(Stock(boot_, 2), 20);  // the loser's write was discarded
}

TEST_F(ConflictInjectionTest, BlindAppendsOnDisjointKeysBothCommit) {
  ASSERT_TRUE(Exec(s1_, "begin; add stock(3) = 7;").ok());
  ASSERT_TRUE(Exec(s2_, "begin; add stock(4) = 8;").ok());
  EXPECT_TRUE(Exec(s1_, "commit;").ok());
  EXPECT_TRUE(Exec(s2_, "commit;").ok());
  EXPECT_EQ(Stock(boot_, 3), 7);
  EXPECT_EQ(Stock(boot_, 4), 8);
}

TEST_F(ConflictInjectionTest, AbortRollsBackTheOverlayCompletely) {
  ASSERT_TRUE(Exec(s2_, "begin; set stock(1) = 1; set stock(5) = 50;").ok());
  ASSERT_TRUE(Exec(s1_, "begin; set stock(1) = 40; commit;").ok());
  ASSERT_EQ(Exec(s2_, "commit;").code(), StatusCode::kTxnConflict);
  // Nothing of the aborted transaction survives: no buffered state, no
  // stored rows, and crucially no rule firing — stock(1) = 1 is below the
  // monitor threshold but never became visible to the check phase.
  EXPECT_FALSE(s2_.txn_snapshot().HasWrites());
  EXPECT_FALSE(s2_.txn_snapshot().HasReads());
  EXPECT_EQ(Stock(s2_, 1), 40);
  auto r = s2_.Execute("select stock(5);");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  EXPECT_TRUE(firings_.empty());
}

TEST_F(ConflictInjectionTest, RetriedTransactionSucceeds) {
  const std::string txn = "begin; set stock(1) = 2; commit;";
  ASSERT_TRUE(Exec(s2_, "begin; set stock(1) = 2;").ok());
  ASSERT_TRUE(Exec(s1_, "begin; set stock(1) = 6; commit;").ok());
  ASSERT_EQ(Exec(s2_, "commit;").code(), StatusCode::kTxnConflict);
  // The abort reset the session to autocommit state; re-sending the whole
  // transaction verbatim — what a client does on a kAborted frame — works.
  Status s = Exec(s2_, txn);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(Stock(boot_, 1), 2);
  // The committed retry dropped stock(1) below the threshold: exactly one
  // firing, from the retry's wave.
  ASSERT_EQ(firings_.size(), 1u);
  EXPECT_EQ(firings_[0], std::make_pair(int64_t{1}, int64_t{2}));
}

TEST_F(ConflictInjectionTest, ConflictMessageNamesTheVersionAndRelation) {
  ASSERT_TRUE(Exec(s1_, "begin; set stock(2) = 21;").ok());
  ASSERT_TRUE(Exec(s2_, "begin; set stock(2) = 22;").ok());
  ASSERT_TRUE(Exec(s1_, "commit;").ok());
  Status s = Exec(s2_, "commit;");
  ASSERT_EQ(s.code(), StatusCode::kTxnConflict);
  EXPECT_NE(s.ToString().find("retry"), std::string::npos) << s.ToString();
}

}  // namespace
}  // namespace deltamon
