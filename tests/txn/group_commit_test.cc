/// Group-commit batching: with the commit queue paused, K transactions
/// queue up and — on resume — propagate as ONE deferred check-phase wave
/// (propagator.waves +1, txn.batches +1, txn.commits +K), firing exactly
/// the rules K serial commits would. Also covers the max-batch knob
/// splitting a backlog into multiple waves.

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "amosql/session.h"
#include "obs/metrics.h"

namespace deltamon {
namespace {

constexpr const char* kSchema =
    "create function stock(integer) -> integer;"
    "create rule low_stock() as"
    "  when for each integer k where stock(k) < 3"
    "  do note(k, stock(k));"
    "activate low_stock();"
    "set stock(0) = 10;"
    "set stock(1) = 10;"
    "set stock(2) = 10;"
    "set stock(3) = 10;"
    "commit;";

class GroupCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    boot_.RegisterProcedure(
        "note", [this](Database&, const std::vector<Value>& args) {
          // Actions run on whichever thread leads the commit wave.
          std::lock_guard<std::mutex> lock(mu_);
          firings_.emplace_back(args[0].AsInt(), args[1].AsInt());
          return Status::OK();
        });
    auto r = boot_.Execute(kSchema);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  /// Runs one single-statement transaction per key on its own thread and
  /// session, all of which block in the paused commit queue; returns once
  /// every thread has finished (call after resuming).
  void CommitConcurrently(const std::vector<int>& keys, int value) {
    std::vector<std::thread> threads;
    for (int key : keys) {
      threads.emplace_back([this, key, value] {
        amosql::Session session(engine_);
        session.AttachTransactionManager(&engine_.txn);
        auto r = session.Execute("set stock(" + std::to_string(key) +
                                 ") = " + std::to_string(value) + "; commit;");
        EXPECT_TRUE(r.ok()) << r.status().ToString();
      });
    }
    // Wait for all K to be parked in the queue before resuming, so the
    // leader drains them as one batch.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (engine_.txn.queued_commits() < keys.size()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "only " << engine_.txn.queued_commits() << " of " << keys.size()
          << " commits queued";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    engine_.txn.SetCommitPaused(false);
    for (std::thread& t : threads) t.join();
  }

  std::vector<std::pair<int64_t, int64_t>> SortedFirings() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<int64_t, int64_t>> out = firings_;
    std::sort(out.begin(), out.end());
    return out;
  }

  Engine engine_;
  amosql::Session boot_{engine_};
  std::mutex mu_;
  std::vector<std::pair<int64_t, int64_t>> firings_;
};

TEST_F(GroupCommitTest, PausedQueueDrainsAsOneWave) {
  const std::vector<int> keys = {0, 1, 2, 3};
  obs::MetricsSnapshot before = obs::Registry::Global().Snapshot();
  engine_.txn.SetCommitPaused(true);
  CommitConcurrently(keys, /*value=*/1);
  obs::MetricsSnapshot diff =
      obs::Registry::Global().Snapshot().DiffSince(before);

// The counter assertions need the instrumentation compiled in; the
// firing and stamp assertions below hold either way.
#if DELTAMON_OBS_ENABLED
  // K transactions, ONE wave: the batched Δ-union went through a single
  // check phase and a single store commit.
  EXPECT_EQ(diff.CounterOr("txn.commits", 0), keys.size());
  EXPECT_EQ(diff.CounterOr("txn.batches", 0), 1u);
  EXPECT_EQ(diff.CounterOr("propagator.waves", 0), 1u);
  EXPECT_EQ(diff.CounterOr("db.commits", 0), 1u);
  EXPECT_EQ(diff.CounterOr("txn.aborts.conflict", 0), 0u);

  // Every member of the wave observed the same batch.
  auto it = diff.histograms.find("txn.batch_size");
  ASSERT_NE(it, diff.histograms.end());
  EXPECT_EQ(it->second.count, 1u);
#else
  (void)diff;
#endif

  // The single wave fired the rule for all four keys dropping below the
  // threshold — the same set of firings four serial commits produce
  // (order within a wave follows the Δ-union, so compare sorted).
  std::vector<std::pair<int64_t, int64_t>> expected = {
      {0, 1}, {1, 1}, {2, 1}, {3, 1}};
  EXPECT_EQ(SortedFirings(), expected);
}

TEST_F(GroupCommitTest, OneWaveFiresSameRulesAsSerialCommits) {
  // Serial reference: same schema, same four updates, one commit each.
  Engine serial_engine;
  amosql::Session serial(serial_engine);
  std::vector<std::pair<int64_t, int64_t>> serial_firings;
  serial.RegisterProcedure(
      "note", [&](Database&, const std::vector<Value>& args) {
        serial_firings.emplace_back(args[0].AsInt(), args[1].AsInt());
        return Status::OK();
      });
  ASSERT_TRUE(serial.Execute(kSchema).ok());
  for (int key = 0; key < 4; ++key) {
    ASSERT_TRUE(serial
                    .Execute("set stock(" + std::to_string(key) +
                             ") = 1; commit;")
                    .ok());
  }

  engine_.txn.SetCommitPaused(true);
  CommitConcurrently({0, 1, 2, 3}, /*value=*/1);
  std::sort(serial_firings.begin(), serial_firings.end());
  EXPECT_EQ(SortedFirings(), serial_firings);
}

TEST_F(GroupCommitTest, MaxBatchSplitsTheBacklog) {
  engine_.txn.SetMaxBatch(2);
  obs::MetricsSnapshot before = obs::Registry::Global().Snapshot();
  engine_.txn.SetCommitPaused(true);
  CommitConcurrently({0, 1, 2, 3}, /*value=*/5);
  obs::MetricsSnapshot diff =
      obs::Registry::Global().Snapshot().DiffSince(before);
#if DELTAMON_OBS_ENABLED
  EXPECT_EQ(diff.CounterOr("txn.commits", 0), 4u);
  EXPECT_EQ(diff.CounterOr("txn.batches", 0), 2u);
  EXPECT_EQ(diff.CounterOr("db.commits", 0), 2u);
#else
  (void)diff;
#endif
}

TEST_F(GroupCommitTest, BatchMembersShareTheWaveStamp) {
  engine_.txn.SetCommitPaused(true);
  std::mutex stamp_mu;
  std::vector<TxnSnapshot::CommitInfo> stamps;
  std::vector<std::thread> threads;
  for (int key = 0; key < 3; ++key) {
    threads.emplace_back([&, key] {
      amosql::Session session(engine_);
      session.AttachTransactionManager(&engine_.txn);
      auto r = session.Execute("set stock(" + std::to_string(key) +
                               ") = 7; commit;");
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      std::lock_guard<std::mutex> lock(stamp_mu);
      stamps.push_back(session.txn_snapshot().last_commit);
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine_.txn.queued_commits() < 3u) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine_.txn.SetCommitPaused(false);
  for (std::thread& t : threads) t.join();

  ASSERT_EQ(stamps.size(), 3u);
  for (const auto& stamp : stamps) {
    EXPECT_EQ(stamp.batch_id, stamps[0].batch_id);
    EXPECT_EQ(stamp.batch_size, 3u);
  }
  // Distinct commit versions within the wave, in some order.
  std::vector<uint64_t> versions;
  for (const auto& stamp : stamps) versions.push_back(stamp.version);
  std::sort(versions.begin(), versions.end());
  EXPECT_EQ(std::unique(versions.begin(), versions.end()), versions.end());
}

}  // namespace
}  // namespace deltamon
