#include "common/value.h"

#include <limits>

#include <gtest/gtest.h>

namespace deltamon {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), ValueKind::kNull);
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  Oid o{7, 2};
  EXPECT_EQ(Value(o).AsObject().id, 7u);
  EXPECT_EQ(Value(o).AsObject().type, 2u);
}

TEST(ValueTest, EqualityIsExactKind) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value(1.0));  // int vs double differ under ==
  EXPECT_FALSE(Value(1) == Value(true));
}

TEST(ValueTest, CompareWithNumericPromotion) {
  EXPECT_EQ(Value(1).Compare(Value(1.0)), 0);
  EXPECT_LT(Value(1).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(2).Compare(Value(1.5)), 0);
  EXPECT_LT(Value(int64_t{-3}).Compare(Value(int64_t{5})), 0);
}

TEST(ValueTest, CompareAcrossKindsOrdersByKind) {
  // kNull < kBool < kInt/kDouble < kString < kObject.
  EXPECT_LT(Value().Compare(Value(false)), 0);
  EXPECT_LT(Value(true).Compare(Value(0)), 0);
  EXPECT_LT(Value(99).Compare(Value("a")), 0);
  EXPECT_LT(Value("zzz").Compare(Value(Oid{1, 1})), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(5).Hash(), Value(5).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  // Different kinds for the "same" number hash independently — equality is
  // exact-kind, so this is consistent.
  EXPECT_EQ(Value(Oid{3, 1}).Hash(), Value(Oid{3, 9}).Hash())
      << "Oid hashing/equality ignores the type tag";
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
  EXPECT_EQ(Value(Oid{5, 2}).ToString(), "t2#5");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueArithmeticTest, IntStaysInt) {
  auto r = Add(Value(2), Value(3));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_int());
  EXPECT_EQ(r->AsInt(), 5);
}

TEST(ValueArithmeticTest, DoublePromotes) {
  auto r = Multiply(Value(2), Value(1.5));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_double());
  EXPECT_DOUBLE_EQ(r->AsDouble(), 3.0);
}

TEST(ValueArithmeticTest, SubtractAndDivide) {
  EXPECT_EQ(Subtract(Value(7), Value(9))->AsInt(), -2);
  EXPECT_EQ(Divide(Value(7), Value(2))->AsInt(), 3);
  EXPECT_DOUBLE_EQ(Divide(Value(7.0), Value(2))->AsDouble(), 3.5);
}

TEST(ValueArithmeticTest, DivisionByZeroFails) {
  EXPECT_FALSE(Divide(Value(1), Value(0)).ok());
  EXPECT_FALSE(Divide(Value(1.0), Value(0.0)).ok());
}

TEST(ValueArithmeticTest, IntegerOverflowFails) {
  Value big(std::numeric_limits<int64_t>::max());
  EXPECT_FALSE(Add(big, Value(1)).ok());
  EXPECT_FALSE(Multiply(big, Value(2)).ok());
  EXPECT_FALSE(
      Divide(Value(std::numeric_limits<int64_t>::min()), Value(int64_t{-1}))
          .ok());
}

TEST(ValueArithmeticTest, NonNumericFails) {
  EXPECT_FALSE(Add(Value("a"), Value(1)).ok());
  EXPECT_FALSE(Multiply(Value(Oid{1, 1}), Value(2)).ok());
}

}  // namespace
}  // namespace deltamon
