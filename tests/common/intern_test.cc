#include "common/intern.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/tuple.h"
#include "common/value.h"

namespace deltamon {
namespace {

TEST(StringInternerTest, SameContentSameId) {
  StringInterner& pool = StringInterner::Global();
  SymbolId a = pool.Intern("deltamon-intern-same");
  SymbolId b = pool.Intern("deltamon-intern-same");
  SymbolId c = pool.Intern(std::string("deltamon-intern-same"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(StringInternerTest, DistinctContentDistinctId) {
  StringInterner& pool = StringInterner::Global();
  SymbolId a = pool.Intern("deltamon-intern-a");
  SymbolId b = pool.Intern("deltamon-intern-b");
  EXPECT_NE(a, b);
}

TEST(StringInternerTest, LookupRoundTrips) {
  StringInterner& pool = StringInterner::Global();
  for (const char* s : {"", "x", "deltamon-round-trip",
                        "with spaces and \"quotes\"", "\n\t\x01"}) {
    EXPECT_EQ(pool.Lookup(pool.Intern(s)), s);
  }
}

TEST(StringInternerTest, EmptyStringIsInternableAndDistinct) {
  StringInterner& pool = StringInterner::Global();
  SymbolId empty = pool.Intern("");
  EXPECT_EQ(pool.Lookup(empty), "");
  EXPECT_NE(empty, pool.Intern("deltamon-nonempty"));
  EXPECT_EQ(empty, pool.Intern(""));
}

TEST(StringInternerTest, LongStringsRoundTrip) {
  StringInterner& pool = StringInterner::Global();
  std::string big(100000, 'z');
  big += "-tail";
  SymbolId id = pool.Intern(big);
  EXPECT_EQ(pool.Lookup(id), big);
  EXPECT_EQ(pool.Intern(big), id);
}

TEST(StringInternerTest, LookupReferenceStableAcrossGrowth) {
  StringInterner& pool = StringInterner::Global();
  SymbolId id = pool.Intern("deltamon-stable-ref");
  const std::string* before = &pool.Lookup(id);
  // Force several chunks' worth of growth.
  for (int i = 0; i < 10000; ++i) {
    pool.Intern("deltamon-growth-" + std::to_string(i));
  }
  EXPECT_EQ(before, &pool.Lookup(id));
  EXPECT_EQ(*before, "deltamon-stable-ref");
}

// Value-level invariants: interning must be invisible through the Value API.

TEST(InternedValueTest, EqualityMatchesContent) {
  EXPECT_EQ(Value("abc"), Value("abc"));
  EXPECT_NE(Value("abc"), Value("abd"));
  EXPECT_NE(Value("abc"), Value(""));
  EXPECT_EQ(Value(""), Value(""));
}

TEST(InternedValueTest, HashMatchesEquality) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value("").Hash(), Value("").Hash());
  // Not guaranteed in general, but overwhelming for distinct ids.
  EXPECT_NE(Value("abc").Hash(), Value("abd").Hash());
}

TEST(InternedValueTest, OrderingIsContentOrder) {
  // Interner ids are assigned in first-seen order; intern in an order
  // that disagrees with lexicographic order to prove comparison does
  // not use ids.
  Value z("deltamon-zzz");
  Value a("deltamon-aaa");
  Value m("deltamon-mmm");
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
  EXPECT_LT(a, z);
  EXPECT_FALSE(z < a);
  EXPECT_LT(z.Compare(Value("deltamon-zzzz")), 0);
  EXPECT_GT(z.Compare(a), 0);
  EXPECT_EQ(a.Compare(Value("deltamon-aaa")), 0);
}

TEST(InternedValueTest, ToStringRoundTrips) {
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value("").ToString(), "\"\"");
  std::string big(4096, 'q');
  EXPECT_EQ(Value(big).ToString(), "\"" + big + "\"");
  EXPECT_EQ(Value(big).AsString(), big);
}

TEST(InternedValueTest, MixedKindTuplesBehave) {
  Tuple t{Value("s"), Value(int64_t{1}), Value(1.5), Value(true), Value(),
          Value(Oid{7, 2})};
  Tuple same{Value("s"), Value(int64_t{1}), Value(1.5), Value(true), Value(),
             Value(Oid{7, 2})};
  Tuple diff{Value("t"), Value(int64_t{1}), Value(1.5), Value(true), Value(),
             Value(Oid{7, 2})};
  EXPECT_EQ(t, same);
  EXPECT_EQ(t.Hash(), same.Hash());
  EXPECT_NE(t, diff);
  EXPECT_EQ(t.ToString(), "(\"s\", 1, 1.5, true, null, t2#7)");
  // String never equals a non-string kind.
  EXPECT_NE(Value("1"), Value(int64_t{1}));
  EXPECT_NE(Value(""), Value());
}

TEST(InternedValueTest, StringIdIsAccessible) {
  Value a("deltamon-id-access");
  Value b("deltamon-id-access");
  EXPECT_EQ(a.string_id(), b.string_id());
  EXPECT_EQ(StringInterner::Global().Lookup(a.string_id()),
            "deltamon-id-access");
}

// Hammer Intern/Lookup from many threads: distinct and shared strings mixed,
// verifying dedup and readable bytes. Run under TSan in CI (the tsan job
// includes the `common` label).
TEST(StringInternerTest, ConcurrentInternAndLookup) {
  StringInterner& pool = StringInterner::Global();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<SymbolId>> shared_ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([w, &pool, &shared_ids] {
      std::vector<SymbolId>& out = shared_ids[w];
      out.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        // Shared key: every thread interns the same string; must dedup.
        out.push_back(pool.Intern("deltamon-shared-" + std::to_string(i)));
        // Private key: unique per thread.
        SymbolId mine = pool.Intern("deltamon-private-" + std::to_string(w) +
                                    "-" + std::to_string(i));
        // Immediate lookup of an id this thread just created.
        EXPECT_EQ(pool.Lookup(mine), "deltamon-private-" + std::to_string(w) +
                                         "-" + std::to_string(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int w = 1; w < kThreads; ++w) {
    EXPECT_EQ(shared_ids[w], shared_ids[0]);
  }
  for (int i = 0; i < kPerThread; ++i) {
    EXPECT_EQ(pool.Lookup(shared_ids[0][i]),
              "deltamon-shared-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace deltamon
