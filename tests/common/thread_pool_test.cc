#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

namespace deltamon::common {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.Run(kTasks, [&](size_t task, size_t worker) {
    ASSERT_LT(task, kTasks);
    ASSERT_LT(worker, pool.num_workers());
    hits[task].fetch_add(1);
  });
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::vector<size_t> order;
  pool.Run(5, [&](size_t task, size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(task);  // no synchronization: must be the calling thread
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroTasksIsANoop) {
  ThreadPool pool(3);
  pool.Run(0, [&](size_t, size_t) { FAIL() << "no task should run"; });
}

TEST(ThreadPoolTest, ZeroWorkersMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_workers(), 1u);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.Run(16, [&](size_t task, size_t) { sum.fetch_add(task + 1); });
  }
  EXPECT_EQ(sum.load(), 200u * (16u * 17u / 2u));
}

TEST(ThreadPoolTest, BarrierMakesResultsVisibleToCaller) {
  ThreadPool pool(8);
  constexpr size_t kTasks = 256;
  // Plain (non-atomic) writes: Run()'s barrier must make them visible.
  std::vector<uint64_t> out(kTasks, 0);
  for (int round = 1; round <= 20; ++round) {
    pool.Run(kTasks, [&](size_t task, size_t) {
      out[task] = task * static_cast<uint64_t>(round);
    });
    uint64_t total = std::accumulate(out.begin(), out.end(), uint64_t{0});
    ASSERT_EQ(total,
              static_cast<uint64_t>(round) * (kTasks * (kTasks - 1) / 2));
  }
}

TEST(ThreadPoolTest, MoreTasksThanWorkersBalances) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<size_t> workers_seen;
  pool.Run(64, [&](size_t, size_t worker) {
    std::lock_guard<std::mutex> lock(mu);
    workers_seen.insert(worker);
  });
  // Every observed worker index is valid (participation of the second
  // worker is timing-dependent, so only bounds are asserted).
  for (size_t w : workers_seen) EXPECT_LT(w, 2u);
  EXPECT_FALSE(workers_seen.empty());
}

}  // namespace
}  // namespace deltamon::common
