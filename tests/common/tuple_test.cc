#include "common/tuple.h"

#include <gtest/gtest.h>

namespace deltamon {
namespace {

TEST(TupleTest, ArityAndAccess) {
  Tuple t{Value(1), Value("a")};
  EXPECT_EQ(t.arity(), 2u);
  EXPECT_EQ(t[0], Value(1));
  EXPECT_EQ(t[1], Value("a"));
}

TEST(TupleTest, Concat) {
  Tuple a{Value(1)};
  Tuple b{Value(2), Value(3)};
  EXPECT_EQ(a.Concat(b), (Tuple{Value(1), Value(2), Value(3)}));
}

TEST(TupleTest, ProjectWithDuplicates) {
  Tuple t{Value(10), Value(20), Value(30)};
  EXPECT_EQ(t.Project({2, 0, 2}), (Tuple{Value(30), Value(10), Value(30)}));
}

TEST(TupleTest, LexicographicOrder) {
  EXPECT_LT(Tuple{Value(1)}, (Tuple{Value(2)}));
  EXPECT_LT((Tuple{Value(1), Value(1)}), (Tuple{Value(1), Value(2)}));
  EXPECT_LT(Tuple{Value(1)}, (Tuple{Value(1), Value(0)}));  // prefix first
}

TEST(TupleTest, HashEqualForEqualTuples) {
  Tuple a{Value(1), Value("x")};
  Tuple b{Value(1), Value("x")};
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a, b);
}

TEST(TupleTest, TupleSetDeduplicates) {
  TupleSet s;
  s.insert(Tuple{Value(1)});
  s.insert(Tuple{Value(1)});
  s.insert(Tuple{Value(2)});
  EXPECT_EQ(s.size(), 2u);
}

TEST(TupleTest, SortedTuplesDeterministic) {
  TupleSet s = {Tuple{Value(3)}, Tuple{Value(1)}, Tuple{Value(2)}};
  std::vector<Tuple> sorted = SortedTuples(s);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], Tuple{Value(1)});
  EXPECT_EQ(sorted[2], Tuple{Value(3)});
}

TEST(TupleTest, ToStringForms) {
  EXPECT_EQ((Tuple{Value(1), Value(2)}).ToString(), "(1, 2)");
  EXPECT_EQ(Tuple{}.ToString(), "()");
  TupleSet s = {Tuple{Value(2)}, Tuple{Value(1)}};
  EXPECT_EQ(TupleSetToString(s), "{(1), (2)}");
}

}  // namespace
}  // namespace deltamon
