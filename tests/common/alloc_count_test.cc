// Proves the data-plane hot paths stay allocation-free once warm: a global
// operator new hook counts heap allocations across a measured region. This
// lives in its own test binary so the hook cannot perturb other suites.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/tuple.h"
#include "common/value.h"
#include "delta/delta_set.h"

namespace {

std::atomic<uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace deltamon {
namespace {

// Sanitizers interpose their own allocator and may allocate internally
// (poisoning, shadow bookkeeping), making exact counts meaningless there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DELTAMON_ALLOC_COUNTS_RELIABLE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DELTAMON_ALLOC_COUNTS_RELIABLE 0
#else
#define DELTAMON_ALLOC_COUNTS_RELIABLE 1
#endif
#else
#define DELTAMON_ALLOC_COUNTS_RELIABLE 1
#endif

uint64_t AllocCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(AllocCountTest, HookSeesAllocations) {
  uint64_t before = AllocCount();
  auto* p = new int(42);
  uint64_t after = AllocCount();
  delete p;
#if DELTAMON_ALLOC_COUNTS_RELIABLE
  EXPECT_GT(after, before);
#else
  (void)before;
  (void)after;
  GTEST_SKIP() << "allocation counting unreliable under sanitizers";
#endif
}

TEST(AllocCountTest, WarmTupleSetProbeDoesNotAllocate) {
#if !DELTAMON_ALLOC_COUNTS_RELIABLE
  GTEST_SKIP() << "allocation counting unreliable under sanitizers";
#endif
  TupleSet s;
  for (int64_t i = 0; i < 1000; ++i) {
    s.insert(Tuple{Value(i), Value(i * 3)});
  }
  // Probes constructed before the measured region (building a Tuple
  // allocates its value vector; probing with it must not).
  Tuple hit{Value(int64_t{500}), Value(int64_t{1500})};
  Tuple miss{Value(int64_t{500}), Value(int64_t{1501})};

  uint64_t before = AllocCount();
  for (int rep = 0; rep < 100; ++rep) {
    ASSERT_TRUE(s.contains(hit));
    ASSERT_FALSE(s.contains(miss));
    ASSERT_NE(s.find(hit), s.end());
    ASSERT_EQ(s.find(miss), s.end());
    ASSERT_NE(s.IndexOf(hit), TupleSet::npos);
  }
  EXPECT_EQ(AllocCount(), before) << "warm probes must not touch the heap";
}

TEST(AllocCountTest, ApplyInsertCancelingPendingDeleteDoesNotAllocate) {
#if !DELTAMON_ALLOC_COUNTS_RELIABLE
  GTEST_SKIP() << "allocation counting unreliable under sanitizers";
#endif
  // An insert arriving after a pending delete of the same tuple cancels in
  // place: minus loses the tuple (swap-remove, no rehash) and plus is
  // untouched. This cancellation runs once per re-inserted tuple on the
  // transaction hot path, so it must be allocation-free.
  DeltaSet delta;
  Tuple t{Value(int64_t{7}), Value("cancel")};
  delta.ApplyDelete(t);
  ASSERT_TRUE(delta.minus().contains(t));

  uint64_t before = AllocCount();
  delta.ApplyInsert(t);
  EXPECT_EQ(AllocCount(), before)
      << "canceling a pending delete must not touch the heap";
  EXPECT_TRUE(delta.empty());
}

TEST(AllocCountTest, WarmEraseInsertCycleDoesNotAllocate) {
#if !DELTAMON_ALLOC_COUNTS_RELIABLE
  GTEST_SKIP() << "allocation counting unreliable under sanitizers";
#endif
  // Erase + reinsert of the same tuple at stable size: the dense vector
  // has capacity and the slot table never grows. The reinsert copies the
  // probe Tuple, whose vector copy does allocate — so move a fresh copy in
  // instead and measure only the set's own work.
  TupleSet s;
  s.reserve(64);
  for (int64_t i = 0; i < 50; ++i) s.insert(Tuple{Value(i)});
  Tuple victim{Value(int64_t{25})};
  Tuple replacement = victim;  // copied outside the measured region

  uint64_t before = AllocCount();
  ASSERT_EQ(s.erase(victim), 1u);
  ASSERT_TRUE(s.insert(std::move(replacement)).second);
  EXPECT_EQ(AllocCount(), before)
      << "stable-size erase/insert cycle must not touch the heap";
}

}  // namespace
}  // namespace deltamon
