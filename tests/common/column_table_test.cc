/// ColumnTable: the columnar wave-front Δ-table behind the batch
/// evaluation kernels. The load-bearing invariant is hash compatibility —
/// every typed cell representation must hash exactly like the Value it
/// stands for, because the two sides of a build–probe hash join mix hashes
/// computed from typed columns with hashes computed from probe-pattern
/// Values. The rest pins representation promotion (typed → generic),
/// cross-table cell copies, the chained-bucket index, and the
/// deterministic grouping order the probe kernel batches by.

#include "common/column_table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/tuple.h"
#include "common/value.h"

namespace deltamon {
namespace {

TEST(CellHashTest, TypedHelpersMatchValueHash) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{1} << 40, int64_t{-7} * 1000003}) {
    EXPECT_EQ(CellHashInt(v), Value(v).Hash()) << v;
  }
  for (const char* s : {"", "a", "supplier", "a longer interned string"}) {
    Value v(s);
    EXPECT_EQ(CellHashSymbol(v.string_id()), v.Hash()) << s;
  }
  for (uint64_t id : {uint64_t{1}, uint64_t{99}, uint64_t{1} << 33}) {
    Oid oid{id, /*type=*/7};
    EXPECT_EQ(CellHashObject(id), Value(oid).Hash()) << id;
  }
}

TEST(ColumnTableTest, CellHashMatchesValueHashAcrossReps) {
  // Column 0 stays int-typed, column 1 symbol-typed, column 2 object-typed,
  // column 3 degrades to generic on the second row (int then double).
  ColumnTable t(4);
  t.AppendCell(0, Value(10));
  t.AppendCell(1, Value("x"));
  t.AppendCell(2, Value(Oid{5, 1}));
  t.AppendCell(3, Value(1));
  t.FinishRow();
  t.AppendCell(0, Value(-3));
  t.AppendCell(1, Value("y"));
  t.AppendCell(2, Value(Oid{6, 1}));
  t.AppendCell(3, Value(2.5));
  t.FinishRow();
  ASSERT_EQ(t.num_rows(), 2u);
  for (size_t row = 0; row < t.num_rows(); ++row) {
    for (size_t col = 0; col < t.num_cols(); ++col) {
      Value v = t.Get(row, col);
      EXPECT_EQ(t.CellHash(row, col), v.Hash()) << row << "," << col;
      EXPECT_TRUE(t.CellEquals(row, col, v));
    }
  }
  // Degrading must not corrupt earlier rows.
  EXPECT_EQ(t.Get(0, 3), Value(1));
  EXPECT_EQ(t.Get(1, 3), Value(2.5));
}

TEST(ColumnTableTest, KeyHashMatchesBetweenTypedAndGenericTables) {
  // Same logical rows, one table typed, one forced generic by a leading
  // null append — KeyHash must agree (a build side may be typed while the
  // probe side degraded, or vice versa).
  ColumnTable typed(2);
  typed.AppendCell(0, Value(7));
  typed.AppendCell(1, Value("k"));
  typed.FinishRow();

  ColumnTable generic(2);
  generic.AppendCell(0, Value());  // null → generic rep
  generic.AppendCell(1, Value());
  generic.FinishRow();
  generic.AppendCell(0, Value(7));
  generic.AppendCell(1, Value("k"));
  generic.FinishRow();

  std::vector<size_t> keys = {0, 1};
  EXPECT_EQ(typed.KeyHash(0, keys), generic.KeyHash(1, keys));
  EXPECT_TRUE(typed.KeyEquals(0, keys, generic, 1, keys));
  EXPECT_FALSE(typed.KeyEquals(0, keys, generic, 0, keys));
}

TEST(ColumnTableTest, AppendCellFromPreservesValues) {
  ColumnTable src(2);
  src.AppendCell(0, Value(1));
  src.AppendCell(1, Value("a"));
  src.FinishRow();
  src.AppendCell(0, Value(2));
  src.AppendCell(1, Value("b"));
  src.FinishRow();

  // dst column 0 copies from src column 1 and vice versa (column
  // remapping, as the join kernel's RowCopier does).
  ColumnTable dst(2);
  for (size_t row = 0; row < src.num_rows(); ++row) {
    dst.AppendCellFrom(0, src, 1, row);
    dst.AppendCellFrom(1, src, 0, row);
    dst.FinishRow();
  }
  EXPECT_EQ(dst.Get(0, 0), Value("a"));
  EXPECT_EQ(dst.Get(1, 1), Value(2));
  EXPECT_TRUE(dst.CellEqualsCell(0, 1, src, 0, 0));
}

TEST(ColumnTableTest, AppendCellFromAcrossMismatchedRepsDegrades) {
  ColumnTable src(1);
  src.AppendCell(0, Value("sym"));
  src.FinishRow();
  ColumnTable dst(1);
  dst.AppendCell(0, Value(1));  // int-typed
  dst.FinishRow();
  dst.AppendCellFrom(0, src, 0, 0);  // symbol into int column → generic
  dst.FinishRow();
  EXPECT_EQ(dst.Get(0, 0), Value(1));
  EXPECT_EQ(dst.Get(1, 0), Value("sym"));
  EXPECT_EQ(dst.CellHash(1, 0), Value("sym").Hash());
}

TEST(ColumnTableTest, BuildIndexFindsAllAndOnlyMatchingRows) {
  ColumnTable t(2);
  const int kRows = 100;
  for (int i = 0; i < kRows; ++i) {
    t.AppendCell(0, Value(i % 7));  // key with duplicates
    t.AppendCell(1, Value(i));
    t.FinishRow();
  }
  ColumnTable::HashIndex idx = t.BuildIndex({0});
  for (int key = 0; key < 9; ++key) {
    ColumnTable probe(1);
    probe.AppendCell(0, Value(key));
    probe.FinishRow();
    std::vector<int> hits;
    for (uint32_t row = idx.First(probe.KeyHash(0, {0}));
         row != ColumnTable::HashIndex::kNoRow; row = idx.Next(row)) {
      if (t.KeyEquals(row, idx.key_cols, probe, 0, {0})) {
        hits.push_back(static_cast<int>(t.Get(row, 1).AsInt()));
      }
    }
    std::vector<int> expected;
    for (int i = 0; i < kRows; ++i) {
      if (i % 7 == key) expected.push_back(i);
    }
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, expected) << "key=" << key;
  }
}

TEST(ColumnTableTest, EmptyTableIndexAndGrouping) {
  ColumnTable t(1);
  ColumnTable::HashIndex idx = t.BuildIndex({0});
  EXPECT_EQ(idx.First(12345u), ColumnTable::HashIndex::kNoRow);
  ColumnTable::Grouping g = t.GroupByKey({0});
  EXPECT_TRUE(g.reps.empty());
  EXPECT_TRUE(g.rows.empty());
}

TEST(ColumnTableTest, GroupByKeyIsFirstOccurrenceOrderedWithAscendingRows) {
  ColumnTable t(2);
  // Keys appear as b, a, b, c, a → groups in order b, a, c.
  const char* keys[] = {"b", "a", "b", "c", "a"};
  for (int i = 0; i < 5; ++i) {
    t.AppendCell(0, Value(keys[i]));
    t.AppendCell(1, Value(i));
    t.FinishRow();
  }
  ColumnTable::Grouping g = t.GroupByKey({0});
  ASSERT_EQ(g.reps.size(), 3u);
  EXPECT_EQ(t.Get(g.reps[0], 0), Value("b"));
  EXPECT_EQ(t.Get(g.reps[1], 0), Value("a"));
  EXPECT_EQ(t.Get(g.reps[2], 0), Value("c"));
  EXPECT_EQ(g.rows[0], (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(g.rows[1], (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(g.rows[2], (std::vector<uint32_t>{3}));
}

}  // namespace
}  // namespace deltamon
