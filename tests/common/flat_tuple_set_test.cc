#include "common/flat_tuple_set.h"

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>
#include <vector>

#include "common/tuple.h"
#include "common/value.h"

namespace deltamon {
namespace {

Tuple T(int64_t a) { return Tuple{Value(a)}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

TEST(FlatTupleSetTest, EmptySet) {
  TupleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(T(1)));
  EXPECT_EQ(s.find(T(1)), s.end());
  EXPECT_EQ(s.erase(T(1)), 0u);
  EXPECT_EQ(s.begin(), s.end());
}

TEST(FlatTupleSetTest, InsertFindErase) {
  TupleSet s;
  EXPECT_TRUE(s.insert(T(1, 2)).second);
  EXPECT_FALSE(s.insert(T(1, 2)).second);  // duplicate
  EXPECT_TRUE(s.insert(T(3, 4)).second);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(T(1, 2)));
  EXPECT_EQ(*s.find(T(3, 4)), T(3, 4));
  EXPECT_EQ(s.erase(T(1, 2)), 1u);
  EXPECT_EQ(s.erase(T(1, 2)), 0u);
  EXPECT_FALSE(s.contains(T(1, 2)));
  EXPECT_TRUE(s.contains(T(3, 4)));
}

TEST(FlatTupleSetTest, InitializerListDeduplicates) {
  TupleSet s = {T(1), T(2), T(1), T(3)};
  EXPECT_EQ(s.size(), 3u);
}

TEST(FlatTupleSetTest, SetEqualityIsOrderIndependent) {
  TupleSet a = {T(1), T(2), T(3)};
  TupleSet b = {T(3), T(1), T(2)};
  TupleSet c = {T(1), T(2)};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  c.insert(T(4));
  EXPECT_FALSE(a == c);
}

TEST(FlatTupleSetTest, EraseIteratorRevisitsSwappedElement) {
  // The filtering idiom `it = pred ? s.erase(it) : next(it)` must visit
  // every element exactly once even though erase swap-moves the last
  // element into the erased position.
  TupleSet s;
  for (int64_t i = 0; i < 100; ++i) s.insert(T(i));
  size_t visited = 0;
  for (auto it = s.begin(); it != s.end();) {
    ++visited;
    it = ((*it)[0].AsInt() % 2 == 0) ? s.erase(it) : std::next(it);
  }
  EXPECT_EQ(visited, 100u);
  EXPECT_EQ(s.size(), 50u);
  for (const Tuple& t : s) EXPECT_EQ(t[0].AsInt() % 2, 1);
}

TEST(FlatTupleSetTest, ReserveAvoidsRehash) {
  TupleSet s;
  s.reserve(1000);
  for (int64_t i = 0; i < 1000; ++i) s.insert(T(i));
  EXPECT_EQ(s.size(), 1000u);
  for (int64_t i = 0; i < 1000; ++i) EXPECT_TRUE(s.contains(T(i)));
  EXPECT_TRUE(s.CheckInvariants());
}

TEST(FlatTupleSetTest, GrowthKeepsAllElements) {
  TupleSet s;  // no reserve: force repeated rehashing
  for (int64_t i = 0; i < 5000; ++i) s.insert(T(i, i * 7));
  EXPECT_EQ(s.size(), 5000u);
  for (int64_t i = 0; i < 5000; ++i) EXPECT_TRUE(s.contains(T(i, i * 7)));
  EXPECT_TRUE(s.CheckInvariants());
}

TEST(FlatTupleSetTest, IndexOfTracksSwapRemove) {
  TupleSet s = {T(1), T(2), T(3)};
  size_t i2 = s.IndexOf(T(2));
  ASSERT_NE(i2, TupleSet::npos);
  EXPECT_EQ(s.At(i2), T(2));
  s.erase(T(2));
  EXPECT_EQ(s.IndexOf(T(2)), TupleSet::npos);
  // Remaining elements still resolve through IndexOf/At.
  for (const Tuple& t : s) EXPECT_EQ(s.At(s.IndexOf(t)), t);
}

TEST(FlatTupleSetTest, ClearResets) {
  TupleSet s = {T(1), T(2)};
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(T(1)));
  s.insert(T(9));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(T(9)));
}

// Differential fuzz: FlatHashSet against std::unordered_set under a random
// insert/erase/query mix, with structural invariants checked throughout.
// Backward-shift deletion bugs only show under adversarial probe chains, so
// keys are drawn from a small domain to force collisions and long runs.
TEST(FlatTupleSetTest, DifferentialFuzzAgainstUnorderedSet) {
  for (uint32_t seed = 0; seed < 20; ++seed) {
    std::mt19937 rng(seed);
    TupleSet flat;
    std::unordered_set<Tuple, TupleHash> reference;
    std::uniform_int_distribution<int64_t> key(0, 200);
    std::uniform_int_distribution<int> op(0, 99);
    for (int step = 0; step < 4000; ++step) {
      Tuple t = T(key(rng), key(rng) % 3);
      int o = op(rng);
      if (o < 55) {
        EXPECT_EQ(flat.insert(t).second, reference.insert(t).second);
      } else if (o < 90) {
        EXPECT_EQ(flat.erase(t), reference.erase(t));
      } else {
        EXPECT_EQ(flat.contains(t), reference.count(t) == 1);
      }
    }
    ASSERT_EQ(flat.size(), reference.size()) << "seed " << seed;
    for (const Tuple& t : reference) {
      EXPECT_TRUE(flat.contains(t)) << "seed " << seed << " lost " << t;
    }
    for (const Tuple& t : flat) {
      EXPECT_TRUE(reference.count(t) == 1)
          << "seed " << seed << " phantom " << t;
    }
    EXPECT_TRUE(flat.CheckInvariants()) << "seed " << seed;
    EXPECT_EQ(SortedTuples(flat),
              SortedTuples(TupleSet(reference.begin(), reference.end())));
  }
}

// SortedTuples/TupleSetToString are the deterministic rendering used by
// traces and Explain(); they must be insertion-order independent.
TEST(FlatTupleSetTest, DeterministicRendering) {
  TupleSet a;
  TupleSet b;
  for (int64_t i = 0; i < 50; ++i) a.insert(T(i));
  for (int64_t i = 49; i >= 0; --i) b.insert(T(i));
  EXPECT_EQ(TupleSetToString(a), TupleSetToString(b));
  EXPECT_EQ(SortedTuples(a), SortedTuples(b));
}

}  // namespace
}  // namespace deltamon
