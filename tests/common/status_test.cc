#include "common/status.h"

#include <gtest/gtest.h>

namespace deltamon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesSetTheirCode) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::TypeError("").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status Fails() { return Status::InvalidArgument("nope"); }
Status Chained() {
  DELTAMON_RETURN_IF_ERROR(Fails());
  return Status::Internal("unreachable");
}
Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}
Result<int> Quarter(int x) {
  DELTAMON_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Chained().code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacroTest, AssignOrReturnPropagatesAndAssigns) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace deltamon
