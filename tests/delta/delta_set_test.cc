#include "delta/delta_set.h"

#include <random>

#include <gtest/gtest.h>

namespace deltamon {
namespace {

Tuple T(int64_t a) { return Tuple{Value(a)}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

TEST(DeltaSetTest, StartsEmpty) {
  DeltaSet d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
}

TEST(DeltaSetTest, InsertThenDeleteCancels) {
  DeltaSet d;
  d.ApplyInsert(T(1));
  EXPECT_EQ(d.plus().size(), 1u);
  d.ApplyDelete(T(1));
  EXPECT_TRUE(d.empty());
}

TEST(DeltaSetTest, DeleteThenInsertCancels) {
  DeltaSet d;
  d.ApplyDelete(T(1));
  EXPECT_EQ(d.minus().size(), 1u);
  d.ApplyInsert(T(1));
  EXPECT_TRUE(d.empty());
}

TEST(DeltaSetTest, DuplicateInsertIsIdempotent) {
  DeltaSet d;
  d.ApplyInsert(T(1));
  d.ApplyInsert(T(1));
  EXPECT_EQ(d.plus().size(), 1u);
  EXPECT_TRUE(d.minus().empty());
}

// The paper's §4.1 min_stock example: two `set` updates that restore the
// original value produce the physical events
//   -(min_stock,:item1,100), +(min_stock,:item1,150),
//   -(min_stock,:item1,150), +(min_stock,:item1,100)
// and the Δ-set must end empty ("there is no net effect of the updates").
TEST(DeltaSetTest, PaperSection41MinStockNoNetEffect) {
  DeltaSet d;
  d.ApplyDelete(T(1, 100));
  EXPECT_EQ(d, DeltaSet({}, {T(1, 100)}));
  d.ApplyInsert(T(1, 150));
  EXPECT_EQ(d, DeltaSet({T(1, 150)}, {T(1, 100)}));
  d.ApplyDelete(T(1, 150));
  EXPECT_EQ(d, DeltaSet({}, {T(1, 100)}));
  d.ApplyInsert(T(1, 100));
  EXPECT_TRUE(d.empty());
}

TEST(DeltaUnionTest, DisjointSidesStayDisjoint) {
  DeltaSet a({T(1)}, {T(2)});
  DeltaSet b({T(3)}, {T(4)});
  DeltaSet u = DeltaUnion(a, b);
  EXPECT_EQ(u, DeltaSet({T(1), T(3)}, {T(2), T(4)}));
}

TEST(DeltaUnionTest, InsertionCancelledByLaterDeletion) {
  DeltaSet a({T(1)}, {});
  DeltaSet b({}, {T(1)});
  EXPECT_TRUE(DeltaUnion(a, b).empty());
}

TEST(DeltaUnionTest, DeletionCancelledByLaterInsertion) {
  DeltaSet a({}, {T(1)});
  DeltaSet b({T(1)}, {});
  EXPECT_TRUE(DeltaUnion(a, b).empty());
}

TEST(DeltaUnionTest, ResultSidesAreDisjoint) {
  DeltaSet a({T(1), T(2)}, {T(3)});
  DeltaSet b({T(3)}, {T(2)});
  DeltaSet u = DeltaUnion(a, b);
  for (const Tuple& t : u.plus()) {
    EXPECT_FALSE(u.minus().contains(t)) << t.ToString();
  }
}

TEST(DeltaUnionTest, MatchesEventFolding) {
  // Folding events one at a time equals ∪Δ of the per-event singletons.
  std::vector<std::pair<bool, Tuple>> events = {
      {true, T(1)}, {false, T(2)}, {true, T(2)},  {false, T(1)},
      {true, T(3)}, {true, T(1)},  {false, T(3)},
  };
  DeltaSet folded;
  DeltaSet unioned;
  for (const auto& [is_insert, t] : events) {
    if (is_insert) {
      folded.ApplyInsert(t);
      unioned.DeltaUnion(DeltaSet({t}, {}));
    } else {
      folded.ApplyDelete(t);
      unioned.DeltaUnion(DeltaSet({}, {t}));
    }
  }
  EXPECT_EQ(folded, unioned);
}

TEST(DeltaUnionTest, InPlaceMatchesFree) {
  DeltaSet a({T(1)}, {T(2)});
  DeltaSet b({T(2)}, {T(1)});
  DeltaSet expected = DeltaUnion(a, b);
  a.DeltaUnion(b);
  EXPECT_EQ(a, expected);
}

TEST(RollbackTest, PaperFormulaOldState) {
  // S_old = (S_new ∪ Δ−S) − Δ+S (paper §4).
  TupleSet s_new = {T(1), T(2), T(4)};
  DeltaSet delta({T(4)}, {T(3)});  // added 4, removed 3
  TupleSet s_old = RollbackToOldState(s_new, delta);
  EXPECT_EQ(s_old, (TupleSet{T(1), T(2), T(3)}));
}

TEST(RollbackTest, ApplyDeltaIsForwardDirection) {
  TupleSet s_old = {T(1), T(2), T(3)};
  DeltaSet delta({T(4)}, {T(3)});
  EXPECT_EQ(ApplyDelta(s_old, delta), (TupleSet{T(1), T(2), T(4)}));
}

TEST(DiffStatesTest, ComputesNetChange) {
  TupleSet old_state = {T(1), T(2)};
  TupleSet new_state = {T(2), T(3)};
  DeltaSet d = DiffStates(old_state, new_state);
  EXPECT_EQ(d, DeltaSet({T(3)}, {T(1)}));
}

TEST(DeltaSetStrictFilterTest, RemovesAlreadyTrueAndStillTrue) {
  DeltaSet d({T(1), T(2)}, {T(3), T(4)});
  auto in_old = [](const Tuple& t) { return t == T(1); };
  auto in_new = [](const Tuple& t) { return t == T(3); };
  d.FilterStrict(&in_old, &in_new);
  EXPECT_EQ(d, DeltaSet({T(2)}, {T(4)}));
}

TEST(DeltaSetStrictFilterTest, NullPredicatesSkipSides) {
  DeltaSet d({T(1)}, {T(3)});
  auto all = [](const Tuple&) { return true; };
  d.FilterStrict<decltype(all), decltype(all)>(nullptr, &all);
  EXPECT_EQ(d, DeltaSet({T(1)}, {}));
}

// --- Property tests over random event sequences --------------------------

class DeltaPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DeltaPropertyTest, FoldedDeltaEqualsStateDiff) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int64_t> key(0, 19);
  TupleSet state = {T(0), T(1), T(2), T(3), T(4)};
  TupleSet original = state;
  DeltaSet delta;
  for (int i = 0; i < 200; ++i) {
    Tuple t = T(key(rng));
    if (rng() % 2 == 0) {
      if (state.insert(t).second) delta.ApplyInsert(t);
    } else {
      if (state.erase(t) > 0) delta.ApplyDelete(t);
    }
  }
  EXPECT_EQ(delta, DiffStates(original, state));
  // Rollback reconstructs the original state from the new one.
  EXPECT_EQ(RollbackToOldState(state, delta), original);
  // Forward application reconstructs the new state from the old one.
  EXPECT_EQ(ApplyDelta(original, delta), state);
  // Plus/minus stay disjoint.
  for (const Tuple& t : delta.plus()) {
    EXPECT_FALSE(delta.minus().contains(t));
  }
}

TEST_P(DeltaPropertyTest, DeltaUnionComposesSequentialDiffs) {
  std::mt19937 rng(GetParam() ^ 0xBEEF);
  std::uniform_int_distribution<int64_t> key(0, 14);
  TupleSet s0 = {T(0), T(2), T(4), T(6)};
  auto mutate = [&rng, &key](TupleSet state, DeltaSet* delta) {
    for (int i = 0; i < 60; ++i) {
      Tuple t = T(key(rng));
      if (rng() % 2 == 0) {
        if (state.insert(t).second) delta->ApplyInsert(t);
      } else {
        if (state.erase(t) > 0) delta->ApplyDelete(t);
      }
    }
    return state;
  };
  DeltaSet d1, d2;
  TupleSet s1 = mutate(s0, &d1);
  TupleSet s2 = mutate(s1, &d2);
  // ∪Δ of consecutive deltas equals the end-to-end diff.
  EXPECT_EQ(DeltaUnion(d1, d2), DiffStates(s0, s2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaPropertyTest,
                         ::testing::Range(0u, 12u));

}  // namespace
}  // namespace deltamon
