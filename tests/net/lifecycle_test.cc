// Server lifecycle under adversarial clients: protocol violations over
// real sockets, idle reaping, rules that outlive their creating
// connection, admin HTTP endpoints, and clean start/connect/query/stop.
// This suite is meant to run under ASan and TSan (ctest label "net").

#include <sys/socket.h>
#include <sys/time.h>

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "rules/engine.h"

namespace deltamon::net {
namespace {

/// Raw protocol socket for crafting frames the Client class refuses to
/// send. A receive timeout turns would-be hangs into test failures.
class RawConn {
 public:
  static Result<RawConn> Open(uint16_t port) {
    DELTAMON_ASSIGN_OR_RETURN(int fd, ConnectTcp("127.0.0.1", port));
    timeval timeout{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    RawConn conn;
    conn.fd_ = fd;
    return conn;
  }

  RawConn() = default;
  ~RawConn() { CloseFd(fd_); }
  RawConn(RawConn&& other) noexcept
      : fd_(other.fd_), parser_(std::move(other.parser_)) {
    other.fd_ = -1;
  }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  Status Send(FrameType type, std::string_view body) {
    std::string wire;
    AppendFrame(&wire, type, body);
    return WriteAll(fd_, wire);
  }

  Status SendBytes(std::string_view bytes) { return WriteAll(fd_, bytes); }

  /// Reads one frame; EOF comes back as a kUnavailable status.
  Result<Frame> ReadFrame() {
    Frame frame;
    char buf[4096];
    while (true) {
      switch (parser_.Pop(&frame)) {
        case FrameParser::Next::kFrame:
          return frame;
        case FrameParser::Next::kError:
          return parser_.error();
        case FrameParser::Next::kNeedMore:
          break;
      }
      DELTAMON_ASSIGN_OR_RETURN(size_t n, ReadSome(fd_, buf, sizeof(buf)));
      if (n == 0) return Status::Internal("EOF");
      parser_.Feed(buf, n);
    }
  }

  /// True once the server closes its end.
  bool ReadUntilEof() {
    char buf[4096];
    while (true) {
      Result<size_t> n = ReadSome(fd_, buf, sizeof(buf));
      if (!n.ok()) return false;  // timeout, not EOF
      if (*n == 0) return true;
      parser_.Feed(buf, *n);
    }
  }

  Status Handshake(uint8_t version = kProtocolVersion) {
    DELTAMON_RETURN_IF_ERROR(
        Send(FrameType::kHello, std::string(1, static_cast<char>(version))));
    DELTAMON_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
    if (reply.type != FrameType::kOk) {
      return Status::FailedPrecondition("handshake rejected: " + reply.body);
    }
    return Status::OK();
  }

 private:
  int fd_ = -1;
  FrameParser parser_;
};

class ServerFixture : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    options.port = 0;
    server_ = std::make_unique<Server>(engine_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  Engine engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerFixture, StartQueryStopIsClean) {
  ServerOptions options;
  options.enable_admin = false;
  StartServer(options);

  Result<Client> client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<Client::Response> r =
      client->Execute("create function f(integer) -> integer;"
                      "set f(1) = 2; commit; select f(1);");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0], "(2)");

  server_->Stop();
  // Stop is idempotent and the destructor will run it again.
  server_->Stop();
  // The client now sees a dead peer.
  EXPECT_FALSE(client->Execute("select f(1);").ok());
}

TEST_F(ServerFixture, StopDrainsConnectedClients) {
  ServerOptions options;
  options.enable_admin = false;
  StartServer(options);
  // A connected, handshaken, idle client must not block shutdown.
  Result<RawConn> conn = RawConn::Open(server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Handshake().ok());
  server_->Stop();
  EXPECT_TRUE(conn->ReadUntilEof());
}

TEST_F(ServerFixture, QueryBeforeHelloIsRejected) {
  ServerOptions options;
  options.enable_admin = false;
  StartServer(options);

  Result<RawConn> conn = RawConn::Open(server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Send(FrameType::kQuery, "commit;").ok());
  Result<Frame> reply = conn->ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_NE(reply->body.find("HELLO"), std::string::npos) << reply->body;
  EXPECT_TRUE(conn->ReadUntilEof());
  server_->Stop();
}

TEST_F(ServerFixture, WrongProtocolVersionIsRejected) {
  ServerOptions options;
  options.enable_admin = false;
  StartServer(options);

  Result<RawConn> conn = RawConn::Open(server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(
      conn->Send(FrameType::kHello, std::string(1, '\x63')).ok());  // v99
  Result<Frame> reply = conn->ReadFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_NE(reply->body.find("version"), std::string::npos) << reply->body;
  EXPECT_TRUE(conn->ReadUntilEof());
  server_->Stop();
}

TEST_F(ServerFixture, SecondHelloIsAProtocolError) {
  ServerOptions options;
  options.enable_admin = false;
  StartServer(options);

  Result<RawConn> conn = RawConn::Open(server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Handshake().ok());
  ASSERT_TRUE(conn->Send(FrameType::kHello,
                         std::string(1, static_cast<char>(kProtocolVersion)))
                  .ok());
  Result<Frame> reply = conn->ReadFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_TRUE(conn->ReadUntilEof());
  server_->Stop();
}

TEST_F(ServerFixture, OversizedFrameGetsErrAndClose) {
  ServerOptions options;
  options.enable_admin = false;
  options.max_frame_size = 256;
  StartServer(options);

  Result<RawConn> conn = RawConn::Open(server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Handshake().ok());
  ASSERT_TRUE(conn->Send(FrameType::kQuery, std::string(1000, 'x')).ok());
  Result<Frame> reply = conn->ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_NE(reply->body.find("max frame size"), std::string::npos)
      << reply->body;
  EXPECT_TRUE(conn->ReadUntilEof());
  server_->Stop();
}

TEST_F(ServerFixture, IdleConnectionsAreReaped) {
  ServerOptions options;
  options.enable_admin = false;
  options.idle_timeout_ms = 200;
  StartServer(options);

  Result<RawConn> idle = RawConn::Open(server_->port());
  ASSERT_TRUE(idle.ok());
  ASSERT_TRUE(idle->Handshake().ok());
  // Well past the timeout the server must have closed its end; the
  // blocking read returns EOF (or times out after 5 s → failure).
  EXPECT_TRUE(idle->ReadUntilEof());
  server_->Stop();
}

TEST_F(ServerFixture, RuleFiresAfterItsSessionDisconnected) {
  // A rule's compiled action references the Session that created it (for
  // registered procedures like `print`). Closing that connection must not
  // free state the rule still needs — the server retires the session
  // instead. Run under ASan this is the use-after-free probe.
  ServerOptions options;
  options.enable_admin = false;
  StartServer(options);

  {
    Result<Client> creator = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(creator.ok());
    Result<Client::Response> r = creator->Execute(
        "create function quantity(integer) -> integer;"
        "create function threshold(integer) -> integer;"
        "create rule watch() as"
        "  when for each integer i where quantity(i) < threshold(i)"
        "  do print(i);"
        "activate watch();");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }  // creator disconnects; its session is retired, not destroyed

  Result<Client> writer = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(writer.ok());
  Result<Client::Response> r = writer->Execute(
      "set threshold(5) = 10; set quantity(5) = 1; commit;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The server must still be fully responsive after the orphaned rule ran.
  Result<Client::Response> check = writer->Execute("select quantity(5);");
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->rows.size(), 1u);
  EXPECT_EQ(check->rows[0], "(1)");
  server_->Stop();
}

TEST_F(ServerFixture, PrintOutputReachesTheIssuingConnection) {
  ServerOptions options;
  options.enable_admin = false;
  StartServer(options);

  Result<Client> client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client
                  ->Execute("create function quantity(integer) -> integer;"
                            "create function threshold(integer) -> integer;"
                            "create rule watch() as"
                            "  when for each integer i"
                            "  where quantity(i) < threshold(i)"
                            "  do print(i);"
                            "activate watch();")
                  .ok());
  Result<Client::Response> r = client->Execute(
      "set threshold(9) = 10; set quantity(9) = 1; commit;");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->report.find("print"), std::string::npos)
      << "rule-action output missing from report: '" << r->report << "'";
  server_->Stop();
}

TEST_F(ServerFixture, ConcurrentRuleFiringAndSinkDrainIsRaceFree) {
  // The creator's rule can fire during *another* connection's statement
  // (on that connection's worker, under the executor mutex), appending to
  // the creator's print sink — while the creator's own worker drains the
  // sink after its statement returns, outside that mutex. Run under TSan
  // this is the data-race probe for the ActionSink lock.
  ServerOptions options;
  options.enable_admin = false;
  options.num_workers = 2;
  StartServer(options);

  Result<Client> creator = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(creator.ok());
  ASSERT_TRUE(creator
                  ->Execute("create function quantity(integer) -> integer;"
                            "create function threshold(integer) -> integer;"
                            "create rule watch() as"
                            "  when for each integer i"
                            "  where quantity(i) < threshold(i)"
                            "  do print(i);"
                            "activate watch();")
                  .ok());

  std::thread firing([&] {
    Result<Client> writer = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(writer.ok());
    for (int k = 0; k < 50; ++k) {
      // Each commit fires the creator's rule → print into creator's sink.
      Result<Client::Response> r = writer->Execute(
          "set threshold(" + std::to_string(k) + ") = 10;"
          "set quantity(" + std::to_string(k) + ") = 1; commit;");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  });
  // Meanwhile the creator keeps executing (and draining its sink).
  for (int i = 0; i < 50; ++i) {
    Result<Client::Response> r = creator->Execute("select quantity(0);");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  firing.join();
  server_->Stop();
}

TEST_F(ServerFixture, LargeReplyIsChunkedIntoMoreFrames) {
  // A reply bigger than max_frame_size must arrive as MORE continuation
  // frames plus a terminal frame — never as one oversized frame the
  // client's parser would reject and poison on.
  ServerOptions options;
  options.enable_admin = false;
  options.max_frame_size = 256;
  StartServer(options);

  Result<RawConn> conn = RawConn::Open(server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Handshake().ok());
  const char* schema[] = {
      "create function quantity(integer) -> integer;",
      "create function threshold(integer) -> integer;",
      "create rule watch() as when for each integer i"
      "  where quantity(i) < threshold(i) do print(i);",
      "activate watch();",
  };
  for (const char* stmt : schema) {
    ASSERT_TRUE(conn->Send(FrameType::kQuery, stmt).ok());
    Result<Frame> reply = conn->ReadFrame();
    ASSERT_TRUE(reply.ok()) << stmt;
    ASSERT_EQ(reply->type, FrameType::kOk) << stmt << ": " << reply->body;
  }
  // 100 monitored keys, each set in its own small statement batch (the
  // *query* frames must fit max_frame_size too), then one commit whose
  // deferred rule firings produce ~100 print lines — well over 256 bytes.
  for (int k = 0; k < 100; ++k) {
    const std::string stmt = "set threshold(" + std::to_string(k) +
                             ") = 10; set quantity(" + std::to_string(k) +
                             ") = 1;";
    ASSERT_TRUE(conn->Send(FrameType::kQuery, stmt).ok());
    Result<Frame> reply = conn->ReadFrame();
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, FrameType::kOk);
  }
  ASSERT_TRUE(conn->Send(FrameType::kQuery, "commit;").ok());
  std::string assembled;
  size_t more_frames = 0;
  while (true) {
    Result<Frame> frame = conn->ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    // Every individual frame respects the limit (type byte + body).
    EXPECT_LE(frame->body.size() + 1, options.max_frame_size);
    assembled += frame->body;
    if (frame->type != FrameType::kMore) {
      EXPECT_EQ(frame->type, FrameType::kOk);
      break;
    }
    ++more_frames;
  }
  EXPECT_GE(more_frames, 2u) << "reply was not chunked";
  size_t prints = 0;
  for (size_t pos = 0; (pos = assembled.find("print:", pos)) !=
                       std::string::npos;
       ++pos) {
    ++prints;
  }
  EXPECT_EQ(prints, 100u) << assembled;
  server_->Stop();
}

TEST_F(ServerFixture, BackpressurePausesWithoutLosingReplies) {
  // A client that pipelines statements without reading replies trips the
  // write high-water mark: the server pauses executing its statements
  // until the buffer drains, then resumes — every reply still arrives,
  // in order, and the connection stays usable.
  ServerOptions options;
  options.enable_admin = false;
  options.write_high_water = 64;  // every `show metrics` reply exceeds this
  StartServer(options);

  Result<RawConn> conn = RawConn::Open(server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Handshake().ok());
  // One write carrying 50 pipelined queries, none of whose replies have
  // been read yet.
  std::string wire;
  constexpr int kQueries = 50;
  for (int i = 0; i < kQueries; ++i) {
    AppendFrame(&wire, FrameType::kQuery, "show metrics;");
  }
  ASSERT_TRUE(conn->SendBytes(wire).ok());
  for (int i = 0; i < kQueries; ++i) {
    std::string body;
    while (true) {
      Result<Frame> frame = conn->ReadFrame();
      ASSERT_TRUE(frame.ok()) << "reply " << i << ": "
                              << frame.status().ToString();
      body += frame->body;
      if (frame->type != FrameType::kMore) {
        ASSERT_EQ(frame->type, FrameType::kOk);
        break;
      }
    }
    EXPECT_NE(body.find("METRICS"), std::string::npos);
  }
  // The final snapshot proves the pause path actually ran.
  ASSERT_TRUE(conn->Send(FrameType::kQuery, "show metrics;").ok());
  std::string last;
  while (true) {
    Result<Frame> frame = conn->ReadFrame();
    ASSERT_TRUE(frame.ok());
    last += frame->body;
    if (frame->type != FrameType::kMore) break;
  }
  EXPECT_NE(last.find("net.backpressure_paused"), std::string::npos) << last;
  server_->Stop();
}

TEST_F(ServerFixture, OnlyRuleCreatingSessionsAreRetired) {
  // The graveyard must grow with rule-creating sessions, not with every
  // connection ever served.
  ServerOptions options;
  options.enable_admin = false;
  StartServer(options);

  for (int i = 0; i < 5; ++i) {
    Result<Client> c = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c->Execute("commit;").ok());
  }
  // Disconnects are processed asynchronously by the workers.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->active_connections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server_->active_connections(), 0);
  EXPECT_EQ(server_->retired_session_count(), 0u)
      << "rule-free sessions must be destroyed, not retired";

  {
    Result<Client> creator = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(creator.ok());
    ASSERT_TRUE(creator
                    ->Execute("create function q(integer) -> integer;"
                              "create rule keepme() as"
                              "  when for each integer i where q(i) < 0"
                              "  do print(i);")
                    .ok());
  }
  while (std::chrono::steady_clock::now() < deadline &&
         server_->retired_session_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->retired_session_count(), 1u);
  server_->Stop();
}

std::string HttpGet(uint16_t port, const std::string& request) {
  Result<int> fd = ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(fd.ok());
  if (!fd.ok()) return "";
  timeval timeout{5, 0};
  ::setsockopt(*fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  EXPECT_TRUE(WriteAll(*fd, request).ok());
  std::string response;
  char buf[4096];
  while (true) {
    Result<size_t> n = ReadSome(*fd, buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    response.append(buf, *n);
  }
  CloseFd(*fd);
  return response;
}

TEST_F(ServerFixture, AdminEndpoints) {
  ServerOptions options;
  options.enable_admin = true;
  options.admin_port = 0;
  StartServer(options);
  ASSERT_NE(server_->admin_port(), 0);

  // Generate a little protocol traffic so net.* metrics exist.
  {
    Result<Client> client = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Execute("commit;").ok());
  }

  const std::string health = HttpGet(
      server_->admin_port(), "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok\n"), std::string::npos) << health;

  const std::string metrics = HttpGet(
      server_->admin_port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("net_connections_accepted"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("net_statements_served"), std::string::npos);

  const std::string missing = HttpGet(
      server_->admin_port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);

  const std::string post = HttpGet(
      server_->admin_port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);

  server_->Stop();
}

TEST_F(ServerFixture, ManyShortLivedConnections) {
  // Churn: connect/handshake/one statement/disconnect in a loop, across
  // two threads, against both workers. Catches fd and session leaks.
  ServerOptions options;
  options.enable_admin = false;
  StartServer(options);
  {
    Result<Client> boot = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(boot.ok());
    ASSERT_TRUE(boot->Execute("create function f(integer) -> integer;").ok());
  }
  std::thread threads[2];
  for (std::thread& t : threads) {
    t = std::thread([&] {
      for (int i = 0; i < 25; ++i) {
        Result<Client> c = Client::Connect("127.0.0.1", server_->port());
        ASSERT_TRUE(c.ok());
        EXPECT_TRUE(c->Execute("select f(0);").ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server_->Stop();
}

}  // namespace
}  // namespace deltamon::net
