// End-to-end request tracing over real sockets: the HELLO trace-info
// flag, the trace line in statement reports, the /debug/requests flight
// recorder (phase decomposition, trace-id uniqueness across concurrent
// clients), the slow-statement log, the /debug/network DOT endpoint, and
// a concurrent recorder read/write probe for TSan. Runs under ASan and
// TSan (ctest label "net").

#include <sys/socket.h>
#include <sys/time.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/http.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "rules/engine.h"

namespace deltamon::net {
namespace {

class TracingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // The recorder and slow log are process globals shared by every test
    // in this binary: start from a clean slate.
    obs::GlobalRequestRecorder().Clear();
    obs::SlowLog::Global().Clear();
    obs::SlowLog::Global().set_threshold_ns(0);
  }

  void TearDown() override {
    if (server_) server_->Stop();
    obs::SlowLog::Global().set_threshold_ns(0);
    obs::SlowLog::Global().Clear();
  }

  void StartServer(ServerOptions options = {}) {
    options.port = 0;
    server_ = std::make_unique<Server>(engine_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void StartServerWithAdmin() {
    ServerOptions options;
    options.enable_admin = true;
    options.admin_port = 0;
    StartServer(options);
    ASSERT_NE(server_->admin_port(), 0);
  }

  Result<Client> Connect(bool trace_info = false) {
    return Client::Connect("127.0.0.1", server_->port(),
                           kDefaultMaxFrameSize, trace_info);
  }

  Engine engine_;
  std::unique_ptr<Server> server_;
};

std::string AdminGet(uint16_t port, const std::string& path) {
  Result<int> fd = ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(fd.ok());
  if (!fd.ok()) return "";
  timeval timeout{5, 0};
  ::setsockopt(*fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  EXPECT_TRUE(
      WriteAll(*fd, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  std::string response;
  char buf[4096];
  while (true) {
    Result<size_t> n = ReadSome(*fd, buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    response.append(buf, *n);
  }
  CloseFd(*fd);
  return response;
}

/// Strips the HTTP status line and headers, returning the body.
std::string HttpBody(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

/// Polls /debug/requests until `want` records carrying `statement` are
/// visible (reply-flush completion races the client's read of the reply).
std::vector<obs::RequestRecord> WaitForRecords(const std::string& statement,
                                               size_t want) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<obs::RequestRecord> matching;
    for (obs::RequestRecord& r : obs::GlobalRequestRecorder().Snapshot()) {
      if (r.statement == statement) matching.push_back(std::move(r));
    }
    if (matching.size() >= want) return matching;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return {};
}

TEST_F(TracingFixture, TraceInfoLineFollowsTheHelloFlag) {
  StartServer();
  Result<Client> plain = Connect(/*trace_info=*/false);
  ASSERT_TRUE(plain.ok());
  Result<Client::Response> r = plain->Execute("commit;");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->report.find("-- trace"), std::string::npos)
      << "a client that did not opt in must see byte-identical replies";

  Result<Client> traced = Connect(/*trace_info=*/true);
  ASSERT_TRUE(traced.ok());
  r = traced->Execute("commit;");
  ASSERT_TRUE(r.ok()) << r.status();
  if (obs::kRequestTracingEnabled) {
    EXPECT_NE(r->report.find("-- trace"), std::string::npos) << r->report;
    EXPECT_NE(r->report.find("queue"), std::string::npos) << r->report;
    EXPECT_NE(r->report.find("exec"), std::string::npos) << r->report;
  } else {
    EXPECT_EQ(r->report.find("-- trace"), std::string::npos)
        << "OBS=OFF builds mint no trace info";
  }
}

TEST_F(TracingFixture, ErrorRepliesNeverCarryATraceLine) {
  StartServer();
  Result<Client> traced = Connect(/*trace_info=*/true);
  ASSERT_TRUE(traced.ok());
  Result<Client::Response> r = traced->Execute("select nonsense;");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message().find("-- trace"), std::string::npos)
      << "ERR bodies are part of the protocol surface and stay untouched";
}

TEST_F(TracingFixture, CompletedStatementIsFindableInDebugRequests) {
  StartServerWithAdmin();
  {
    Result<Client> client = Connect();
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Execute("commit;").ok());
  }

  if (!obs::kRequestTracingEnabled) {
    // OBS=OFF: the endpoint still serves a valid — empty — document.
    auto doc = obs::Json::Parse(
        HttpBody(AdminGet(server_->admin_port(), "/debug/requests")));
    ASSERT_TRUE(doc.ok()) << doc.status();
    EXPECT_EQ(doc->Get("requests")->size(), 0u);
    GTEST_SKIP() << "request tracing is compiled out";
  }

  const std::vector<obs::RequestRecord> records =
      WaitForRecords("commit;", 1);
  ASSERT_EQ(records.size(), 1u);
  const obs::RequestRecord& r = records[0];
  EXPECT_GT(r.context.trace_id, 0u);
  EXPECT_EQ(r.context.statement_ordinal, 1u);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.reply_flushed);
  EXPECT_GT(r.reply_bytes, 0u);
  // Phase stamps are monotonic and the decomposition accounts for the
  // end-to-end latency: the three phases can only undershoot the total
  // (by the exec-end -> reply-queued gap), never overshoot it.
  EXPECT_LE(r.enqueue_ns, r.dequeue_ns);
  EXPECT_LE(r.dequeue_ns, r.exec_end_ns);
  EXPECT_LE(r.exec_end_ns, r.reply_queued_ns);
  EXPECT_LE(r.reply_queued_ns, r.reply_flushed_ns);
  EXPECT_GT(r.TotalNs(), 0u);
  EXPECT_LE(r.QueueWaitNs() + r.ExecNs() + r.ReplyWriteNs(), r.TotalNs());

  // The HTTP view of the same record: well-formed JSON with the
  // statement, its trace id, and the phase breakdown.
  const std::string response =
      AdminGet(server_->admin_port(), "/debug/requests");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  auto doc = obs::Json::Parse(HttpBody(response));
  ASSERT_TRUE(doc.ok()) << doc.status();
  const obs::Json* requests = doc->Get("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_GE(requests->size(), 1u);
  bool found = false;
  for (const obs::Json& request : requests->array_items()) {
    if (request.Get("statement")->as_string() != "commit;") continue;
    found = true;
    EXPECT_EQ(request.Get("trace_id")->as_int(),
              static_cast<int64_t>(r.context.trace_id));
    EXPECT_GT(request.Get("phases")->Get("total_ns")->as_int(), 0);
  }
  EXPECT_TRUE(found) << HttpBody(response);
}

TEST_F(TracingFixture, DebugRequestsTraceIsLoadableChromeJson) {
  StartServerWithAdmin();
  {
    Result<Client> client = Connect();
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Execute("commit;").ok());
  }
  if (obs::kRequestTracingEnabled) {
    ASSERT_EQ(WaitForRecords("commit;", 1).size(), 1u);
  }
  auto doc = obs::Json::Parse(
      HttpBody(AdminGet(server_->admin_port(), "/debug/requests/trace")));
  ASSERT_TRUE(doc.ok()) << doc.status();
  const obs::Json* events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  if (obs::kRequestTracingEnabled) {
    ASSERT_GE(events->size(), 1u);
    for (const obs::Json& e : events->array_items()) {
      EXPECT_EQ(e.Get("ph")->as_string(), "X");
      EXPECT_GE(e.Get("ts")->as_double(), 0.0);
    }
  } else {
    EXPECT_EQ(events->size(), 0u);
  }
}

TEST_F(TracingFixture, ConcurrentClientsGetUniqueMonotonicTraceIds) {
  if (!obs::kRequestTracingEnabled) {
    GTEST_SKIP() << "request tracing is compiled out";
  }
  StartServer();
  constexpr int kClients = 16;
  constexpr int kStatements = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &failures] {
      Result<Client> client = Connect();
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int s = 0; s < kStatements; ++s) {
        if (!client->Execute("commit;").ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  const std::vector<obs::RequestRecord> records =
      WaitForRecords("commit;", kClients * kStatements);
  ASSERT_EQ(records.size(), size_t{kClients * kStatements});

  std::set<uint64_t> trace_ids;
  std::map<uint64_t, std::vector<const obs::RequestRecord*>> by_conn;
  for (const obs::RequestRecord& r : records) {
    trace_ids.insert(r.context.trace_id);
    by_conn[r.context.connection_id].push_back(&r);
  }
  EXPECT_EQ(trace_ids.size(), records.size())
      << "trace ids must be unique across connections";
  ASSERT_EQ(by_conn.size(), size_t{kClients});
  for (auto& [conn_id, conn_records] : by_conn) {
    std::sort(conn_records.begin(), conn_records.end(),
              [](const obs::RequestRecord* a, const obs::RequestRecord* b) {
                return a->context.statement_ordinal <
                       b->context.statement_ordinal;
              });
    for (size_t s = 0; s < conn_records.size(); ++s) {
      // Ordinals are 1-based, gapless and per-connection; trace ids rise
      // with them (each is minted when its QUERY frame is parsed, and a
      // blocking client pipelines nothing).
      EXPECT_EQ(conn_records[s]->context.statement_ordinal, s + 1);
      if (s > 0) {
        EXPECT_GT(conn_records[s]->context.trace_id,
                  conn_records[s - 1]->context.trace_id);
      }
    }
  }
}

TEST_F(TracingFixture, SlowStatementCapturesSpanTreeAndProfile) {
  if (!obs::kRequestTracingEnabled) {
    GTEST_SKIP() << "request tracing is compiled out";
  }
  StartServerWithAdmin();
  // Everything is "slow" at a 1ns threshold; no sleeping required.
  obs::SlowLog::Global().set_threshold_ns(1);

  Result<Client> client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client
                  ->Execute(
                      "create type item;"
                      "create function quantity(item) -> integer;"
                      "create rule watch_low() as"
                      "  when for each item i where quantity(i) < 10"
                      "  do set quantity(i) = 10;"
                      "create item instances :a;"
                      "set quantity(:a) = 42;"
                      "commit;"
                      "activate watch_low();")
                  .ok());
  Result<Client::Response> r = client->Execute(
      "set quantity(:a) = 5;"
      "commit;");
  ASSERT_TRUE(r.ok()) << r.status();

  const std::vector<obs::SlowRecord> slow = obs::SlowLog::Global().Snapshot();
  ASSERT_GE(slow.size(), 1u);
  const obs::SlowRecord& last = slow.back();
  EXPECT_GT(last.context.trace_id, 0u);
  EXPECT_GT(last.elapsed_ns, 0u);
  // The captured span tree is rooted at the statement span; the commit
  // ran a deferred check phase underneath it.
  EXPECT_NE(last.span_tree.find("amosql.statement"), std::string::npos)
      << last.span_tree;
  EXPECT_NE(last.span_tree.find("rules.check_phase"), std::string::npos)
      << last.span_tree;
  EXPECT_FALSE(last.profile_text.empty());

  // The HTTP view parses and carries the same evidence.
  const std::string response = AdminGet(server_->admin_port(), "/debug/slow");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  auto doc = obs::Json::Parse(HttpBody(response));
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_GE(doc->Get("slow")->size(), 1u);
  const obs::Json& entry = doc->Get("slow")->at(doc->Get("slow")->size() - 1);
  EXPECT_NE(entry.Get("span_tree")->as_string().find("amosql.statement"),
            std::string::npos);
  ASSERT_NE(entry.Get("chrome_trace"), nullptr);
  EXPECT_NE(entry.Get("chrome_trace")->Get("traceEvents"), nullptr);

  // `show slow;` renders the same log as a report, from any session.
  Result<Client::Response> show = client->Execute("show slow;");
  ASSERT_TRUE(show.ok()) << show.status();
  EXPECT_NE(show->report.find("SLOW STATEMENTS"), std::string::npos)
      << show->report;
  EXPECT_NE(show->report.find("rules.check_phase"), std::string::npos)
      << show->report;
}

TEST_F(TracingFixture, DebugNetworkServesDotForActiveRules) {
  StartServerWithAdmin();
  // With no active rules the network is empty: a clean 404, not a crash.
  std::string response = AdminGet(server_->admin_port(), "/debug/network");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos) << response;

  Result<Client> client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client
                  ->Execute(
                      "create type item;"
                      "create function quantity(item) -> integer;"
                      "create rule watch_low() as"
                      "  when for each item i where quantity(i) < 10"
                      "  do set quantity(i) = 10;"
                      "activate watch_low();")
                  .ok());

  response = AdminGet(server_->admin_port(), "/debug/network");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("digraph propagation"), std::string::npos);
  EXPECT_NE(response.find("cnd_watch_low"), std::string::npos);

  response =
      AdminGet(server_->admin_port(), "/debug/network?rule=watch_low");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("digraph propagation"), std::string::npos);

  response =
      AdminGet(server_->admin_port(), "/debug/network?rule=no_such_rule");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos) << response;
}

// TSan probe: worker threads completing requests write into the global
// recorder and slow log while the admin thread renders /debug documents
// from them. No server needed — this drives the exact shared state.
TEST_F(TracingFixture, ConcurrentRecorderWritesAndAdminReadsAreClean) {
  obs::SlowLog::Global().set_threshold_ns(1);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&stop, w] {
      uint64_t ordinal = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        obs::RequestRecord r;
        r.context.trace_id = obs::NextTraceId();
        r.context.connection_id = static_cast<uint64_t>(w) + 1;
        r.context.statement_ordinal = ++ordinal;
        r.statement = "commit;";
        r.enqueue_ns = obs::MonotonicNowNs();
        r.dequeue_ns = r.enqueue_ns + 10;
        r.exec_end_ns = r.dequeue_ns + 10;
        r.reply_queued_ns = r.exec_end_ns + 1;
        r.reply_flushed_ns = r.reply_queued_ns + 5;
        r.reply_flushed = true;
        obs::GlobalRequestRecorder().Record(std::move(r));
        obs::SlowRecord slow;
        slow.context.trace_id = ordinal;
        slow.statement = "commit;";
        slow.elapsed_ns = 10;
        obs::SlowLog::Global().Record(std::move(slow));
      }
    });
  }
  std::thread reader([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string requests =
          HandleAdminRequest("GET /debug/requests HTTP/1.1\r\n\r\n");
      EXPECT_NE(requests.find("HTTP/1.1 200"), std::string::npos);
      const std::string slow =
          HandleAdminRequest("GET /debug/slow HTTP/1.1\r\n\r\n");
      EXPECT_NE(slow.find("HTTP/1.1 200"), std::string::npos);
      HandleAdminRequest("GET /debug/requests/trace HTTP/1.1\r\n\r\n");
      obs::GlobalRequestRecorder().Snapshot();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (std::thread& t : writers) t.join();
  reader.join();
  // The recorder stayed bounded no matter how fast the writers ran.
  EXPECT_LE(obs::GlobalRequestRecorder().Snapshot().size(),
            obs::GlobalRequestRecorder().capacity());
  obs::GlobalRequestRecorder().Clear();
}

}  // namespace
}  // namespace deltamon::net
