// Loopback integration: a real deltamond Server on an ephemeral port, many
// concurrent Client threads driving disjoint keys, and — the acceptance
// bar — the final database state must be bit-identical to the same
// statements executed serially through a plain Session.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "amosql/session.h"
#include "net/client.h"
#include "net/server.h"
#include "rules/engine.h"
#include "storage/catalog.h"

namespace deltamon::net {
namespace {

constexpr int kClients = 16;
constexpr int kKeysPerClient = 8;
constexpr int kThresholdValue = 50;

const char* kSchema[] = {
    "create function quantity(integer) -> integer;",
    "create function threshold(integer) -> integer;",
    "create function reorder(integer) -> integer;",
    "create rule monitor() as"
    "  when for each integer i where quantity(i) < threshold(i)"
    "  do set reorder(i) = 1;",
    "activate monitor();",
};

/// The statement batches client `c` executes, in order. Keys are disjoint
/// across clients and each key gets exactly one final quantity, so the
/// final state is independent of how client batches interleave.
std::vector<std::string> ClientBatches(int c) {
  std::vector<std::string> batches;
  for (int k = 0; k < kKeysPerClient; ++k) {
    const int key = c * 1000 + k;
    // Even keys end below the threshold (rule fires), odd keys above.
    const int quantity = (k % 2 == 0) ? k : kThresholdValue + k;
    batches.push_back("set threshold(" + std::to_string(key) + ") = " +
                      std::to_string(kThresholdValue) + ";");
    // An intermediate value first, so the monitor sees real updates (not
    // just inserts) and the final value is a second write to the same key.
    batches.push_back("set quantity(" + std::to_string(key) + ") = " +
                      std::to_string(kThresholdValue + 100) + "; commit;");
    batches.push_back("set quantity(" + std::to_string(key) + ") = " +
                      std::to_string(quantity) + "; commit;");
  }
  return batches;
}

/// Canonical dump of every base relation: relation name + sorted tuple
/// strings. Two engines that executed equivalent workloads must produce
/// byte-identical dumps.
std::string DumpState(Engine& engine) {
  const Catalog& catalog = engine.db.catalog();
  std::vector<std::string> sections;
  for (RelationId id : catalog.AllRelationIds()) {
    const BaseRelation* rel = catalog.GetBaseRelation(id);
    if (rel == nullptr) continue;
    std::vector<std::string> rows;
    rows.reserve(rel->rows().size());
    for (const Tuple& t : rel->rows()) rows.push_back(t.ToString());
    std::sort(rows.begin(), rows.end());
    std::string section = catalog.RelationName(id) + ":\n";
    for (const std::string& row : rows) section += "  " + row + "\n";
    sections.push_back(std::move(section));
  }
  std::sort(sections.begin(), sections.end());
  std::string dump;
  for (const std::string& s : sections) dump += s;
  return dump;
}

TEST(Loopback, ConcurrentClientsMatchSerialExecution) {
  Engine engine;
  ServerOptions options;
  options.port = 0;
  options.enable_admin = false;
  options.num_workers = 4;
  Server server(engine, options);
  ASSERT_TRUE(server.Start().ok());

  {
    Result<Client> admin = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(admin.ok()) << admin.status().ToString();
    for (const char* stmt : kSchema) {
      Result<Client::Response> r = admin->Execute(stmt);
      ASSERT_TRUE(r.ok()) << stmt << ": " << r.status().ToString();
    }
  }

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Result<Client> client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures[c] = "connect: " + client.status().ToString();
        return;
      }
      for (const std::string& batch : ClientBatches(c)) {
        Result<Client::Response> r = client->Execute(batch);
        if (!r.ok()) {
          failures[c] = batch + ": " + r.status().ToString();
          return;
        }
      }
      // Per-client correctness: this client's own keys, visible through
      // its own connection.
      for (int k = 0; k < kKeysPerClient; ++k) {
        const int key = c * 1000 + k;
        const std::string expect =
            "(" +
            std::to_string(k % 2 == 0 ? k : kThresholdValue + k) + ")";
        Result<Client::Response> r =
            client->Execute("select quantity(" + std::to_string(key) + ");");
        if (!r.ok() || r->rows.size() != 1 || r->rows[0] != expect) {
          failures[c] = "readback of key " + std::to_string(key) + " wrong";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }

  // The monitor rule must have fired for every even key of every client.
  {
    Result<Client> check = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(check.ok());
    for (int c = 0; c < kClients; ++c) {
      for (int k = 0; k < kKeysPerClient; k += 2) {
        const int key = c * 1000 + k;
        Result<Client::Response> r =
            check->Execute("select reorder(" + std::to_string(key) + ");");
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r->rows.size(), 1u) << "rule did not fire for " << key;
        EXPECT_EQ(r->rows[0], "(1)");
      }
    }
  }
  server.Stop();

  // Serial reference: same statements, client order 0..15, through a plain
  // Session on a fresh engine.
  Engine serial_engine;
  amosql::Session serial_session(serial_engine);
  for (const char* stmt : kSchema) {
    ASSERT_TRUE(amosql::ExecuteStatement(serial_session, stmt).ok());
  }
  for (int c = 0; c < kClients; ++c) {
    for (const std::string& batch : ClientBatches(c)) {
      Result<amosql::QueryResult> r =
          amosql::ExecuteStatement(serial_session, batch);
      ASSERT_TRUE(r.ok()) << batch << ": " << r.status().ToString();
    }
  }

  EXPECT_EQ(DumpState(engine), DumpState(serial_engine))
      << "concurrent and serial execution diverged";
}

TEST(Loopback, PipelinedStatementsOnOneConnection) {
  // One connection issuing many small batches back to back exercises the
  // read-until-EAGAIN / write-buffer path without concurrency.
  Engine engine;
  ServerOptions options;
  options.port = 0;
  options.enable_admin = false;
  Server server(engine, options);
  ASSERT_TRUE(server.Start().ok());

  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->Execute("create function f(integer) -> integer;").ok());
  for (int i = 0; i < 200; ++i) {
    Result<Client::Response> r = client->Execute(
        "set f(" + std::to_string(i) + ") = " + std::to_string(i * i) + ";");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_TRUE(client->Execute("commit;").ok());
  for (int i = 0; i < 200; i += 17) {
    Result<Client::Response> r =
        client->Execute("select f(" + std::to_string(i) + ");");
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0], "(" + std::to_string(i * i) + ")");
  }
  server.Stop();
}

TEST(Loopback, LargeResultSetIsReassembledByTheClient) {
  // A result set far bigger than max_frame_size travels as chunked MORE
  // frames; Client::Execute reassembles them transparently and the rows
  // come back complete and in order.
  Engine engine;
  ServerOptions options;
  options.port = 0;
  options.enable_admin = false;
  options.max_frame_size = 512;
  Server server(engine, options);
  ASSERT_TRUE(server.Start().ok());

  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client->Execute("create function f(integer) -> integer;").ok());
  constexpr int kKeys = 500;
  // Query frames must respect max_frame_size too: small set batches.
  for (int k = 0; k < kKeys; k += 20) {
    std::string batch;
    for (int i = k; i < k + 20 && i < kKeys; ++i) {
      batch += "set f(" + std::to_string(i) + ") = " + std::to_string(i) +
               ";";
    }
    ASSERT_TRUE(client->Execute(batch).ok());
  }
  ASSERT_TRUE(client->Execute("commit;").ok());

  Result<Client::Response> r = client->Execute(
      "select i, f(i) for each integer i where f(i) < 1000000;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), static_cast<size_t>(kKeys));
  // Every key must be present exactly once, none torn by chunking.
  std::vector<std::string> expected;
  for (int i = 0; i < kKeys; ++i) {
    expected.push_back("(" + std::to_string(i) + ", " + std::to_string(i) +
                       ")");
  }
  std::vector<std::string> got = r->rows;
  std::sort(got.begin(), got.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
  server.Stop();
}

TEST(Loopback, StatementErrorsAreIsolatedToTheirConnection) {
  Engine engine;
  ServerOptions options;
  options.port = 0;
  options.enable_admin = false;
  Server server(engine, options);
  ASSERT_TRUE(server.Start().ok());

  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  // A parse error comes back as ERR but leaves the connection usable.
  Result<Client::Response> bad = client->Execute("selec oops;");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(client->connected());
  Result<Client::Response> good =
      client->Execute("create function g(integer) -> integer;");
  EXPECT_TRUE(good.ok()) << good.status().ToString();
  server.Stop();
}

}  // namespace
}  // namespace deltamon::net
