#include "net/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace deltamon::net {
namespace {

Frame MustPop(FrameParser& parser) {
  Frame frame;
  EXPECT_EQ(parser.Pop(&frame), FrameParser::Next::kFrame)
      << parser.error().ToString();
  return frame;
}

TEST(Protocol, FrameRoundTrip) {
  std::string wire;
  AppendFrame(&wire, FrameType::kQuery, "select quantity(7);");
  // Header (4) + type (1) + body.
  EXPECT_EQ(wire.size(), kFrameHeaderSize + 1 + 19);

  FrameParser parser;
  parser.Feed(wire);
  Frame frame = MustPop(parser);
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.body, "select quantity(7);");
  EXPECT_EQ(parser.buffered(), 0u);
  Frame more;
  EXPECT_EQ(parser.Pop(&more), FrameParser::Next::kNeedMore);
}

TEST(Protocol, EmptyBodyFrame) {
  // A frame with an empty body is legal: length 1, just the type byte.
  std::string wire;
  AppendFrame(&wire, FrameType::kOk, "");
  FrameParser parser;
  parser.Feed(wire);
  Frame frame = MustPop(parser);
  EXPECT_EQ(frame.type, FrameType::kOk);
  EXPECT_TRUE(frame.body.empty());
}

TEST(Protocol, ByteByBytePartialReads) {
  std::string wire;
  AppendFrame(&wire, FrameType::kQuery, "commit;");
  AppendFrame(&wire, FrameType::kHello, std::string(1, '\x01'));

  FrameParser parser;
  std::vector<Frame> frames;
  for (char byte : wire) {
    parser.Feed(&byte, 1);
    Frame frame;
    while (parser.Pop(&frame) == FrameParser::Next::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kQuery);
  EXPECT_EQ(frames[0].body, "commit;");
  EXPECT_EQ(frames[1].type, FrameType::kHello);
  EXPECT_EQ(frames[1].body, std::string(1, '\x01'));
}

TEST(Protocol, TornLengthPrefix) {
  std::string wire;
  AppendFrame(&wire, FrameType::kQuery, "rollback;");

  FrameParser parser;
  Frame frame;
  // Feed only 2 of the 4 header bytes: not even a length yet.
  parser.Feed(wire.data(), 2);
  EXPECT_EQ(parser.Pop(&frame), FrameParser::Next::kNeedMore);
  // Complete the header but not the payload.
  parser.Feed(wire.data() + 2, 3);
  EXPECT_EQ(parser.Pop(&frame), FrameParser::Next::kNeedMore);
  // The rest arrives.
  parser.Feed(wire.data() + 5, wire.size() - 5);
  frame = MustPop(parser);
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.body, "rollback;");
}

TEST(Protocol, PipelinedFramesInOneFeed) {
  std::string wire;
  for (int i = 0; i < 100; ++i) {
    AppendFrame(&wire, FrameType::kQuery,
                "set f(" + std::to_string(i) + ") = 1;");
  }
  FrameParser parser;
  parser.Feed(wire);
  for (int i = 0; i < 100; ++i) {
    Frame frame = MustPop(parser);
    EXPECT_EQ(frame.body, "set f(" + std::to_string(i) + ") = 1;");
  }
  Frame frame;
  EXPECT_EQ(parser.Pop(&frame), FrameParser::Next::kNeedMore);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(Protocol, OversizedFramePoisonsParser) {
  FrameParser parser(/*max_frame_size=*/64);
  std::string wire;
  AppendFrame(&wire, FrameType::kQuery, std::string(100, 'x'));
  parser.Feed(wire);
  Frame frame;
  EXPECT_EQ(parser.Pop(&frame), FrameParser::Next::kError);
  EXPECT_EQ(parser.error().code(), StatusCode::kOutOfRange);
  // Poisoned: even a well-formed follow-up frame is never surfaced.
  std::string good;
  AppendFrame(&good, FrameType::kQuery, "commit;");
  parser.Feed(good);
  EXPECT_EQ(parser.Pop(&frame), FrameParser::Next::kError);
}

TEST(Protocol, OversizedDetectedFromHeaderAlone) {
  // The length prefix alone condemns the frame — no need to buffer the
  // (possibly huge) payload first.
  FrameParser parser(/*max_frame_size=*/64);
  const char header[4] = {0x00, 0x10, 0x00, 0x00};  // 1 MiB declared
  parser.Feed(header, 4);
  Frame frame;
  EXPECT_EQ(parser.Pop(&frame), FrameParser::Next::kError);
}

TEST(Protocol, ZeroLengthFrameIsAnError) {
  // Length 0 means no type byte: structurally invalid.
  FrameParser parser;
  const char header[4] = {0x00, 0x00, 0x00, 0x00};
  parser.Feed(header, 4);
  Frame frame;
  EXPECT_EQ(parser.Pop(&frame), FrameParser::Next::kError);
  EXPECT_EQ(parser.error().code(), StatusCode::kParseError);
}

TEST(Protocol, ParserCompactsConsumedPrefix) {
  // Long-lived connections must not grow the buffer without bound; after
  // enough consumed bytes the parser reclaims the prefix.
  FrameParser parser;
  std::string wire;
  AppendFrame(&wire, FrameType::kQuery, std::string(1024, 'q'));
  for (int i = 0; i < 50; ++i) {
    parser.Feed(wire);
    Frame frame = MustPop(parser);
    EXPECT_EQ(frame.body.size(), 1024u);
    EXPECT_EQ(parser.buffered(), 0u);
  }
}

TEST(Protocol, ReplyThatFitsIsASingleFrame) {
  std::string wire;
  AppendReply(&wire, FrameType::kOk, "small report", /*max_frame_size=*/64);
  FrameParser parser(64);
  parser.Feed(wire);
  Frame frame = MustPop(parser);
  EXPECT_EQ(frame.type, FrameType::kOk);
  EXPECT_EQ(frame.body, "small report");
  EXPECT_EQ(parser.Pop(&frame), FrameParser::Next::kNeedMore);
}

TEST(Protocol, OversizedReplyIsChunkedIntoMoreFrames) {
  // A body above the frame limit splits into MORE continuations plus the
  // terminal frame; every frame individually fits the limit, and the
  // receiver reassembles the original body by concatenation.
  const size_t kMax = 16;
  std::string body;
  for (int i = 0; i < 100; ++i) body += static_cast<char>('a' + i % 26);
  std::string wire;
  AppendReply(&wire, FrameType::kRows, body, kMax);

  FrameParser parser(kMax);
  parser.Feed(wire);
  std::string assembled;
  size_t more_frames = 0;
  while (true) {
    Frame frame = MustPop(parser);
    assembled += frame.body;
    if (frame.type != FrameType::kMore) {
      EXPECT_EQ(frame.type, FrameType::kRows);
      break;
    }
    ++more_frames;
    EXPECT_EQ(frame.body.size(), kMax - 1);  // full chunks until the tail
  }
  EXPECT_EQ(assembled, body);
  EXPECT_GE(more_frames, body.size() / kMax);
  Frame frame;
  EXPECT_EQ(parser.Pop(&frame), FrameParser::Next::kNeedMore);
}

TEST(Protocol, ChunkBoundaryExactFit) {
  // A body of exactly the chunk size must not emit an empty terminal
  // body by accident — it fits in one frame.
  const size_t kMax = 16;
  const std::string body(kMax - 1, 'x');
  std::string wire;
  AppendReply(&wire, FrameType::kOk, body, kMax);
  FrameParser parser(kMax);
  parser.Feed(wire);
  Frame frame = MustPop(parser);
  EXPECT_EQ(frame.type, FrameType::kOk);
  EXPECT_EQ(frame.body, body);
}

TEST(Protocol, RowsCodecRoundTrip) {
  const std::vector<std::string> rows = {"(1, 'a')", "(2, 'b')", "(3, 'c')"};
  const std::string report = "rule monitor fired 2 times\nsecond line\n";
  const std::string body = EncodeRows(rows, report);

  std::vector<std::string> decoded_rows;
  std::string decoded_report;
  ASSERT_TRUE(DecodeRows(body, &decoded_rows, &decoded_report).ok());
  EXPECT_EQ(decoded_rows, rows);
  EXPECT_EQ(decoded_report, report);
}

TEST(Protocol, RowsCodecEmpty) {
  std::vector<std::string> rows;
  std::string report;
  ASSERT_TRUE(DecodeRows(EncodeRows({}, ""), &rows, &report).ok());
  EXPECT_TRUE(rows.empty());
  EXPECT_TRUE(report.empty());
}

TEST(Protocol, RowsCodecMalformed) {
  std::vector<std::string> rows;
  std::string report;
  // No count line at all.
  EXPECT_FALSE(DecodeRows("no newline here", &rows, &report).ok());
  // Empty count.
  EXPECT_FALSE(DecodeRows("\nrow\n", &rows, &report).ok());
  // Non-numeric count.
  EXPECT_FALSE(DecodeRows("two\nrow\nrow\n", &rows, &report).ok());
  // Declared more rows than present.
  EXPECT_FALSE(DecodeRows("3\nrow1\nrow2\n", &rows, &report).ok());
}

TEST(Protocol, RowsCodecRejectsHugeCounts) {
  // A corrupt or malicious count must be rejected *before* reserve();
  // otherwise the decoder throws length_error / bad_alloc and kills the
  // client. Both the overflowing parse and the merely-implausible count
  // (more rows than bytes) come back as clean parse errors.
  std::vector<std::string> rows;
  std::string report;
  Status overflow =
      DecodeRows("99999999999999999999999999\nx\n", &rows, &report);
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.code(), StatusCode::kParseError);
  Status huge = DecodeRows("1000000\nx\n", &rows, &report);
  EXPECT_FALSE(huge.ok());
  EXPECT_EQ(huge.code(), StatusCode::kParseError);
}

TEST(Protocol, RowsCodecReportMayContainNewlines) {
  // Everything after the counted rows is report text, verbatim.
  std::vector<std::string> rows;
  std::string report;
  ASSERT_TRUE(DecodeRows("1\n(42)\nline1\nline2", &rows, &report).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "(42)");
  EXPECT_EQ(report, "line1\nline2");
}

}  // namespace
}  // namespace deltamon::net
