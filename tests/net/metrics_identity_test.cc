// Satellite of the deltamond PR: `show metrics prometheus;` (AMOSQL) and
// the admin HTTP /metrics endpoint must be byte-identical views — both
// are thin wrappers over the same obs::FormatPrometheus(Snapshot()) call,
// and this suite pins that contract. Also probes that taking a registry
// snapshot from a non-engine thread is safe while counters are hot
// (run under TSan via the "net" ctest label).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "amosql/session.h"
#include "net/http.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "rules/engine.h"

namespace deltamon::net {
namespace {

/// process_uptime_seconds is the one time-varying line in the Prometheus
/// document; byte-identity comparisons between two renders taken at
/// different instants must strip it (and assert it was there).
std::string StripUptime(const std::string& body) {
  const std::string key = "\nprocess_uptime_seconds ";
  const size_t pos = body.find(key);
  EXPECT_NE(pos, std::string::npos) << body;
  if (pos == std::string::npos) return body;
  size_t eol = body.find('\n', pos + 1);
  if (eol == std::string::npos) eol = body.size();
  return body.substr(0, pos) + body.substr(eol);
}

TEST(MetricsIdentity, SessionAndHttpRenderIdenticalBytes) {
  // Seed the global registry with every metric kind so the comparison is
  // over a non-trivial document.
  obs::Registry::Global().Reset();
  DELTAMON_OBS_COUNT("net.connections_accepted", 3);
  DELTAMON_OBS_COUNT("net.bytes_in", 1234);
  DELTAMON_OBS_GAUGE_SET("net.connections_active", 2);
  DELTAMON_OBS_RECORD("net.statement_latency_ns", 1000);
  DELTAMON_OBS_RECORD("net.statement_latency_ns", 2000000);

  Engine engine;
  amosql::Session session(engine);
  Result<amosql::QueryResult> shown =
      session.Execute("show metrics prometheus;");
  ASSERT_TRUE(shown.ok()) << shown.status().ToString();
  EXPECT_TRUE(shown->rows.empty());

  // No metric is touched between the two renderings, so the snapshots —
  // and therefore the bytes, minus the uptime stamp — must match exactly.
  const std::string via_http = MetricsBody();
  EXPECT_EQ(StripUptime(shown->report), StripUptime(via_http));
  EXPECT_NE(via_http.find("net_connections_accepted 3"), std::string::npos)
      << via_http;
  EXPECT_NE(via_http.find("deltamon_build_info{version=\""),
            std::string::npos)
      << via_http;
  EXPECT_NE(via_http.find("net_connections_active 2"), std::string::npos);
  EXPECT_NE(via_http.find("net_statement_latency_ns_bucket"),
            std::string::npos);
}

TEST(MetricsIdentity, HttpHandlerServesTheSharedBody) {
  obs::Registry::Global().Reset();
  DELTAMON_OBS_COUNT("net.frames_in", 7);
  const std::string response =
      HandleAdminRequest("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  // The response body after the blank line is exactly MetricsBody().
  const size_t split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  EXPECT_EQ(StripUptime(response.substr(split + 4)),
            StripUptime(MetricsBody()));
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
}

TEST(MetricsIdentity, HealthzAndErrors) {
  EXPECT_NE(HandleAdminRequest("GET /healthz HTTP/1.1\r\n\r\n").find("200"),
            std::string::npos);
  EXPECT_NE(HandleAdminRequest("GET /metrics?x=1 HTTP/1.1\r\n\r\n")
                .find("200"),
            std::string::npos);
  EXPECT_NE(HandleAdminRequest("PUT /metrics HTTP/1.1\r\n\r\n").find("405"),
            std::string::npos);
  EXPECT_NE(HandleAdminRequest("GET /other HTTP/1.1\r\n\r\n").find("404"),
            std::string::npos);
  EXPECT_NE(HandleAdminRequest("garbage").find("400"), std::string::npos);
}

TEST(MetricsIdentity, SnapshotIsSafeFromNonEngineThreads) {
  // The admin HTTP thread snapshots the registry while engine threads
  // bump counters. Hammer both sides; TSan certifies the absence of
  // races, and the final snapshot must account for every increment.
  obs::Registry::Global().Reset();
  constexpr int kWriters = 4;
  constexpr int kIncrementsPerWriter = 5000;
  std::atomic<bool> done{false};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::string body = MetricsBody();
      EXPECT_NE(body.find('\n'), std::string::npos);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([] {
      for (int i = 0; i < kIncrementsPerWriter; ++i) {
        DELTAMON_OBS_COUNT("net.race_probe", 1);
        DELTAMON_OBS_RECORD("net.race_probe_ns", i);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const std::string final_body = MetricsBody();
  EXPECT_NE(final_body.find("net_race_probe " +
                            std::to_string(kWriters * kIncrementsPerWriter)),
            std::string::npos)
      << final_body;
}

}  // namespace
}  // namespace deltamon::net
