/// Randomized structural property test for the propagation core: generate
/// random schemas (base relations), random multi-level view definitions
/// (joins, selections, negation, disjunction), random update streams — and
/// assert that breadth-first bottom-up propagation of partial differentials
/// produces exactly DiffStates(P_old, P_new) at every root, under every
/// expansion policy (flat, fully bushy) and with and without materialized
/// intermediate views.
///
/// This is the paper's correctness claim quantified over a far larger
/// space of conditions than the running example.

#include <random>

#include <gtest/gtest.h>

#include "core/materialized_views.h"
#include "core/network.h"
#include "core/propagator.h"
#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon {
namespace {

using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::EvalState;
using objectlog::Literal;
using objectlog::Term;

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }

/// A randomly generated monitoring scenario.
class RandomScenario {
 public:
  RandomScenario(uint32_t seed, bool with_negation) : rng_(seed) {
    // 3 base relations of arity 2 over a small value domain (so joins and
    // negations actually hit).
    for (int b = 0; b < 3; ++b) {
      auto rel = engine_.db.catalog().CreateStoredFunction(
          "base" + std::to_string(b),
          FunctionSignature{{IntCol()}, {IntCol()}});
      bases_.push_back(*rel);
    }
    // Level-1 views: each joins two bases (possibly the same one) with an
    // optional comparison and (optionally) a negated third literal.
    for (int v = 0; v < 2; ++v) {
      RelationId view = *engine_.db.catalog().CreateDerivedFunction(
          "view" + std::to_string(v),
          FunctionSignature{{}, {IntCol(), IntCol()}});
      Clause c;
      c.head_relation = view;
      c.num_vars = 3;
      c.head_args = {Term::Var(0), Term::Var(2)};
      RelationId left = bases_[rng_() % bases_.size()];
      RelationId right = bases_[rng_() % bases_.size()];
      c.body = {Literal::Relation(left, {Term::Var(0), Term::Var(1)}),
                Literal::Relation(right, {Term::Var(1), Term::Var(2)})};
      if (rng_() % 2 == 0) {
        c.body.push_back(Literal::Compare(
            CompareOp::kNe, Term::Var(0), Term::Var(2)));
      }
      if (with_negation && v == 1) {
        c.body.push_back(Literal::Relation(
            bases_[rng_() % bases_.size()], {Term::Var(2), Term::Var(0)},
            /*negated=*/true));
      }
      EXPECT_TRUE(
          engine_.registry.Define(view, std::move(c), engine_.db.catalog())
              .ok());
      views_.push_back(view);
    }
    // Root condition: union (two clauses) over the views with selections.
    root_ = *engine_.db.catalog().CreateDerivedFunction(
        "cond", FunctionSignature{{}, {IntCol()}});
    for (int k = 0; k < 2; ++k) {
      Clause c;
      c.head_relation = root_;
      c.num_vars = 2;
      c.head_args = {Term::Var(0)};
      c.body = {Literal::Relation(views_[static_cast<size_t>(k)],
                                  {Term::Var(0), Term::Var(1)}),
                Literal::Compare(k == 0 ? CompareOp::kLt : CompareOp::kGe,
                                 Term::Var(1),
                                 Term::Const(Value(int64_t(kDomain / 2))))};
      EXPECT_TRUE(
          engine_.registry.Define(root_, std::move(c), engine_.db.catalog())
              .ok());
    }
    for (RelationId b : bases_) engine_.db.MarkMonitored(b);
    // Initial population.
    for (RelationId b : bases_) {
      for (int i = 0; i < 25; ++i) {
        EXPECT_TRUE(engine_.db.Insert(b, RandomTuple()).ok());
      }
    }
    EXPECT_TRUE(engine_.db.Commit().ok());
  }

  Tuple RandomTuple() {
    std::uniform_int_distribution<int64_t> v(0, kDomain - 1);
    return Tuple{Value(v(rng_)), Value(v(rng_))};
  }

  /// Applies a random transaction (insertions and deletions).
  void RandomTransaction() {
    std::uniform_int_distribution<int> count(1, 8);
    int n = count(rng_);
    for (int i = 0; i < n; ++i) {
      RelationId b = bases_[rng_() % bases_.size()];
      if (rng_() % 3 == 0) {
        // Delete some existing tuple.
        const BaseRelation* rel = engine_.db.catalog().GetBaseRelation(b);
        if (!rel->rows().empty()) {
          Tuple victim = *rel->rows().begin();
          EXPECT_TRUE(engine_.db.Delete(b, victim).ok());
        }
      } else {
        EXPECT_TRUE(engine_.db.Insert(b, RandomTuple()).ok());
      }
    }
  }

  TupleSet EvalRoot(EvalState state) {
    objectlog::StateContext ctx;
    auto deltas = engine_.db.PendingDeltas();
    ctx.deltas = &deltas;
    objectlog::Evaluator ev(engine_.db, engine_.registry, ctx);
    TupleSet out;
    EXPECT_TRUE(ev.Evaluate(root_, state, &out).ok());
    return out;
  }

  Engine engine_;
  std::vector<RelationId> bases_;
  std::vector<RelationId> views_;
  RelationId root_ = kInvalidRelationId;
  std::mt19937 rng_;
  static constexpr int64_t kDomain = 9;
};

struct Config {
  uint32_t seed;
  bool bushy;
  bool negation;
  bool materialize;
};

class RandomNetworkTest : public ::testing::TestWithParam<Config> {};

TEST_P(RandomNetworkTest, PropagationEqualsStateDiff) {
  const Config& config = GetParam();
  RandomScenario scenario(config.seed, config.negation);

  core::RootSpec root;
  root.relation = scenario.root_;
  root.needs_minus = true;
  root.strict = true;
  core::BuildOptions options;
  if (config.bushy) {
    for (RelationId v : scenario.views_) options.keep.insert(v);
  }
  auto net = core::PropagationNetwork::Build(
      {root}, scenario.engine_.registry, scenario.engine_.db.catalog(),
      options);
  ASSERT_TRUE(net.ok()) << net.status().ToString();

  core::MaterializedViewStore store;
  if (config.materialize) {
    ASSERT_TRUE(store.Initialize(*net, scenario.engine_.db,
                                 scenario.engine_.registry)
                    .ok());
  }
  core::Propagator propagator(scenario.engine_.db, scenario.engine_.registry,
                              *net, config.materialize ? &store : nullptr);

  for (int tx = 0; tx < 30; ++tx) {
    TupleSet before = scenario.EvalRoot(EvalState::kNew);
    scenario.RandomTransaction();
    TupleSet after = scenario.EvalRoot(EvalState::kNew);
    // Old-state evaluation by rollback must reproduce `before`.
    ASSERT_EQ(scenario.EvalRoot(EvalState::kOld), before) << "tx " << tx;

    auto deltas = scenario.engine_.db.TakePendingDeltas();
    auto result = propagator.Propagate(deltas);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->root_deltas.at(scenario.root_),
              DiffStates(before, after))
        << "tx " << tx << " seed " << config.seed;
    ASSERT_TRUE(scenario.engine_.db.Commit().ok());
  }
}

std::vector<Config> AllConfigs() {
  std::vector<Config> out;
  for (uint32_t seed = 0; seed < 6; ++seed) {
    for (bool bushy : {false, true}) {
      for (bool negation : {false, true}) {
        // Materialization only with bushy networks (it maintains the view
        // nodes; flat networks have none but the root).
        out.push_back({seed, bushy, negation, false});
        if (bushy) out.push_back({seed, bushy, negation, true});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomNetworkTest, ::testing::ValuesIn(AllConfigs()),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "Seed" + std::to_string(info.param.seed) +
             (info.param.bushy ? "Bushy" : "Flat") +
             (info.param.negation ? "Neg" : "") +
             (info.param.materialize ? "Mat" : "");
    });

}  // namespace
}  // namespace deltamon
