/// The paper's central correctness property: incremental monitoring by
/// partial differencing fires exactly the same rule instances as naive
/// full recomputation, for arbitrary update streams. Two engines run the
/// same randomized transaction sequence — one incremental, one naive — and
/// every firing must match. A third engine runs hybrid mode.

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "bench_util/inventory.h"
#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon {
namespace {

using rules::MonitorMode;
using rules::RuleOptions;
using rules::Semantics;
using workload::BuildInventory;
using workload::InventoryConfig;
using workload::InventorySchema;
using workload::SetFn;

/// One engine + inventory + recording monitor_items rule.
struct Instance {
  Instance(MonitorMode mode, Semantics semantics, size_t num_items) {
    engine = std::make_unique<Engine>();
    engine->rules.SetMode(mode);
    InventoryConfig config;
    config.num_items = num_items;
    auto s = BuildInventory(*engine, config);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    schema = *s;
    RuleOptions options;
    options.semantics = semantics;
    auto rule = engine->rules.CreateRule(
        "monitor_items", schema.cnd_monitor_items,
        [this](Database&, const Tuple&, const std::vector<Tuple>& items) {
          for (const Tuple& t : items) fired.push_back(t[0].AsObject().id);
          return Status::OK();
        },
        options);
    EXPECT_TRUE(rule.ok());
    EXPECT_TRUE(engine->rules.Activate(*rule).ok());
  }

  TupleSet ConditionExtent() {
    objectlog::Evaluator ev(engine->db, engine->registry,
                            objectlog::StateContext{});
    TupleSet out;
    EXPECT_TRUE(
        ev.Evaluate(schema.cnd_monitor_items, objectlog::EvalState::kNew,
                    &out)
            .ok());
    return out;
  }

  std::unique_ptr<Engine> engine;
  InventorySchema schema;
  std::vector<uint64_t> fired;
};

class EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, Semantics>> {};

TEST_P(EquivalenceTest, IncrementalNaiveAndHybridAgree) {
  const auto [seed, semantics] = GetParam();
  constexpr size_t kItems = 30;
  Instance incremental(MonitorMode::kIncremental, semantics, kItems);
  Instance naive(MonitorMode::kNaive, semantics, kItems);
  Instance hybrid(MonitorMode::kHybrid, semantics, kItems);
  std::vector<Instance*> all = {&incremental, &naive, &hybrid};

  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> pick_item(0, kItems - 1);
  std::uniform_int_distribution<int> pick_fn(0, 3);
  std::uniform_int_distribution<int64_t> pick_value(0, 400);
  std::uniform_int_distribution<int> pick_count(1, 6);

  for (int tx = 0; tx < 40; ++tx) {
    int updates = pick_count(rng);
    for (int u = 0; u < updates; ++u) {
      size_t item = pick_item(rng);
      int which = pick_fn(rng);
      int64_t value = pick_value(rng);
      for (Instance* inst : all) {
        RelationId fn = which == 0   ? inst->schema.quantity
                        : which == 1 ? inst->schema.consume_freq
                        : which == 2 ? inst->schema.min_stock
                                     : inst->schema.delivery_time;
        if (which == 3) {
          ASSERT_TRUE(inst->engine->db
                          .Set(fn,
                               Tuple{Value(inst->schema.items[item]),
                                     Value(inst->schema.suppliers[item])},
                               Tuple{Value(value % 10)})
                          .ok());
        } else {
          ASSERT_TRUE(
              SetFn(*inst->engine, fn, inst->schema.items[item], value)
                  .ok());
        }
      }
    }
    std::vector<std::vector<uint64_t>> tx_fired;
    for (Instance* inst : all) {
      inst->fired.clear();
      ASSERT_TRUE(inst->engine->db.Commit().ok());
      std::vector<uint64_t> f = inst->fired;
      std::sort(f.begin(), f.end());
      tx_fired.push_back(std::move(f));
    }
    if (semantics == Semantics::kStrict) {
      // Strict semantics is exact: all three monitors fire identically.
      ASSERT_EQ(tx_fired[0], tx_fired[1]) << "tx " << tx;
      ASSERT_EQ(tx_fired[0], tx_fired[2]) << "tx " << tx;
    } else {
      // Nervous semantics may over-react but never under-react (§7.2):
      // the naive monitor's exact firings must be a subset of each.
      for (size_t m : {0u, 2u}) {
        ASSERT_TRUE(std::includes(tx_fired[m].begin(), tx_fired[m].end(),
                                  tx_fired[1].begin(), tx_fired[1].end()))
            << "tx " << tx << " monitor " << m;
      }
    }
  }
  // And the final condition extents agree.
  EXPECT_EQ(incremental.ConditionExtent(), naive.ConditionExtent());
  EXPECT_EQ(incremental.ConditionExtent(), hybrid.ConditionExtent());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Combine(::testing::Range(0u, 8u),
                       ::testing::Values(Semantics::kStrict,
                                         Semantics::kNervous)),
    [](const ::testing::TestParamInfo<std::tuple<uint32_t, Semantics>>&
           info) {
      return std::string(std::get<1>(info.param) == Semantics::kStrict
                             ? "Strict"
                             : "Nervous") +
             "Seed" + std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace deltamon
