/// Differential fuzz harness for parallel propagation (the tentpole
/// correctness claim): on seeded random networks and random transaction
/// batches — insert/delete/rollback mixes — three monitors must agree
/// exactly, every wave:
///
///   naive        full recomputation, diffed against the old extent
///   serial       incremental propagation, num_threads = 1
///   parallel     incremental propagation, num_threads = 2 and 8
///
/// Agreement means identical root Δ-sets AND identical Explain() influent
/// sets (the explainability answer must not depend on the thread count).
/// A companion determinism suite checks the stronger claim: the FULL
/// TraceEntry sequence and Stats are bit-identical for num_threads
/// ∈ {1, 2, 4, 8}.
///
/// Every assertion message carries the seed, so a failure reproduces with
/// a one-line filter.

#include <algorithm>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "amosql/session.h"
#include "common/thread_pool.h"
#include "core/materialized_views.h"
#include "core/network.h"
#include "core/propagator.h"
#include "objectlog/eval.h"
#include "obs/profile.h"
#include "obs/provenance.h"
#include "obs/wave_recorder.h"
#include "rules/engine.h"
#include "rules/wave_replay.h"

namespace deltamon {
namespace {

using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::EvalState;
using objectlog::Literal;
using objectlog::Term;

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }

/// A random two-level monitoring scenario, wider than random_network_test's
/// so levels actually hold several nodes for the workers to share: 4 base
/// relations, 3 level-1 join views, 2 level-2 views over those, and a
/// 2-clause union root. Kept as shared nodes (§7.1) the network has
/// per-level widths 4 / 3 / 2 / 1.
class FuzzScenario {
 public:
  explicit FuzzScenario(uint32_t seed) : rng_(seed) {
    for (int b = 0; b < 4; ++b) {
      bases_.push_back(*engine_.db.catalog().CreateStoredFunction(
          "base" + std::to_string(b),
          FunctionSignature{{IntCol()}, {IntCol()}}));
    }
    // Level 1: joins of two random bases, sometimes with a comparison,
    // sometimes with a negated third literal.
    for (int v = 0; v < 3; ++v) {
      RelationId view = *engine_.db.catalog().CreateDerivedFunction(
          "lvl1_" + std::to_string(v),
          FunctionSignature{{}, {IntCol(), IntCol()}});
      Clause c;
      c.head_relation = view;
      c.num_vars = 3;
      c.head_args = {Term::Var(0), Term::Var(2)};
      c.body = {Literal::Relation(PickBase(), {Term::Var(0), Term::Var(1)}),
                Literal::Relation(PickBase(), {Term::Var(1), Term::Var(2)})};
      if (rng_() % 2 == 0) {
        c.body.push_back(
            Literal::Compare(CompareOp::kNe, Term::Var(0), Term::Var(2)));
      }
      if (rng_() % 3 == 0) {
        c.body.push_back(Literal::Relation(
            PickBase(), {Term::Var(2), Term::Var(0)}, /*negated=*/true));
      }
      EXPECT_TRUE(
          engine_.registry.Define(view, std::move(c), engine_.db.catalog())
              .ok());
      views_.push_back(view);
    }
    // Level 2: join a level-1 view with a base relation.
    for (int v = 0; v < 2; ++v) {
      RelationId view = *engine_.db.catalog().CreateDerivedFunction(
          "lvl2_" + std::to_string(v),
          FunctionSignature{{}, {IntCol(), IntCol()}});
      Clause c;
      c.head_relation = view;
      c.num_vars = 3;
      c.head_args = {Term::Var(0), Term::Var(2)};
      c.body = {
          Literal::Relation(views_[rng_() % 3], {Term::Var(0), Term::Var(1)}),
          Literal::Relation(PickBase(), {Term::Var(1), Term::Var(2)})};
      EXPECT_TRUE(
          engine_.registry.Define(view, std::move(c), engine_.db.catalog())
              .ok());
      views_.push_back(view);
    }
    // Root: union over the level-2 views with opposed selections.
    root_ = *engine_.db.catalog().CreateDerivedFunction(
        "cond", FunctionSignature{{}, {IntCol()}});
    for (int k = 0; k < 2; ++k) {
      Clause c;
      c.head_relation = root_;
      c.num_vars = 2;
      c.head_args = {Term::Var(0)};
      c.body = {Literal::Relation(views_[static_cast<size_t>(3 + k)],
                                  {Term::Var(0), Term::Var(1)}),
                Literal::Compare(k == 0 ? CompareOp::kLt : CompareOp::kGe,
                                 Term::Var(1),
                                 Term::Const(Value(int64_t(kDomain / 2))))};
      EXPECT_TRUE(
          engine_.registry.Define(root_, std::move(c), engine_.db.catalog())
              .ok());
    }
    for (RelationId b : bases_) engine_.db.MarkMonitored(b);
    for (RelationId b : bases_) {
      for (int i = 0; i < 20; ++i) {
        EXPECT_TRUE(engine_.db.Insert(b, RandomTuple()).ok());
      }
    }
    EXPECT_TRUE(engine_.db.Commit().ok());
  }

  RelationId PickBase() { return bases_[rng_() % bases_.size()]; }

  Tuple RandomTuple() {
    std::uniform_int_distribution<int64_t> v(0, kDomain - 1);
    return Tuple{Value(v(rng_)), Value(v(rng_))};
  }

  /// Applies a random batch: 1–10 operations, one third deletions.
  void RandomTransaction() {
    std::uniform_int_distribution<int> count(1, 10);
    int n = count(rng_);
    for (int i = 0; i < n; ++i) {
      RelationId b = PickBase();
      if (rng_() % 3 == 0) {
        const BaseRelation* rel = engine_.db.catalog().GetBaseRelation(b);
        if (!rel->rows().empty()) {
          Tuple victim = *rel->rows().begin();
          EXPECT_TRUE(engine_.db.Delete(b, victim).ok());
        }
      } else {
        EXPECT_TRUE(engine_.db.Insert(b, RandomTuple()).ok());
      }
    }
  }

  bool CoinFlip(int one_in) { return rng_() % one_in == 0; }

  /// Naive monitor primitive: full recomputation of the root in `state`
  /// (kOld evaluates every transitive base literal through logical
  /// rollback over the pending Δ-sets).
  TupleSet EvalRoot(EvalState state) {
    objectlog::StateContext ctx;
    auto deltas = engine_.db.PendingDeltas();
    ctx.deltas = &deltas;
    objectlog::Evaluator ev(engine_.db, engine_.registry, ctx);
    TupleSet out;
    EXPECT_TRUE(ev.Evaluate(root_, state, &out).ok());
    return out;
  }

  Engine engine_;
  std::vector<RelationId> bases_;
  std::vector<RelationId> views_;
  RelationId root_ = kInvalidRelationId;
  std::mt19937 rng_;
  static constexpr int64_t kDomain = 9;
};

std::vector<std::string> ExplainStrings(const core::PropagationResult& r,
                                        RelationId root,
                                        const Catalog& catalog) {
  std::vector<std::string> out;
  for (const core::TraceEntry& e : r.Explain(root)) {
    out.push_back(e.ToString(catalog));
  }
  return out;
}

bool SameEntry(const core::TraceEntry& a, const core::TraceEntry& b) {
  return a.target == b.target && a.influent == b.influent &&
         a.reads_plus == b.reads_plus && a.produces_plus == b.produces_plus &&
         a.tuples_consumed == b.tuples_consumed &&
         a.tuples_produced == b.tuples_produced;
}

::testing::AssertionResult SameTrace(const std::vector<core::TraceEntry>& a,
                                     const std::vector<core::TraceEntry>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "trace length " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameEntry(a[i], b[i])) {
      return ::testing::AssertionFailure() << "trace entry " << i << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult SameStats(
    const core::PropagationResult::Stats& a,
    const core::PropagationResult::Stats& b) {
  if (a.differentials_executed != b.differentials_executed ||
      a.differentials_skipped != b.differentials_skipped ||
      a.tuples_propagated != b.tuples_propagated ||
      a.peak_wavefront_tuples != b.peak_wavefront_tuples ||
      a.filtered_plus != b.filtered_plus ||
      a.filtered_minus != b.filtered_minus ||
      a.materialized_resident_tuples != b.materialized_resident_tuples) {
    return ::testing::AssertionFailure() << "stats differ";
  }
  return ::testing::AssertionSuccess();
}

/// Data-plane certification: after the Δ-pipeline has churned the flat
/// tuple sets, every base relation must still satisfy the container's
/// structural invariants (slot table ↔ dense array agreement), and its
/// lazily built column indexes must agree with a fresh count over the
/// rows — Delete patches index entries when the flat set swap-removes, so
/// a stale dense position would surface here as a wrong indexed count.
void CertifyContainers(const Database& db,
                       const std::vector<RelationId>& bases) {
  for (RelationId b : bases) {
    const BaseRelation* rel = db.catalog().GetBaseRelation(b);
    ASSERT_TRUE(rel->rows().CheckInvariants()) << "relation " << b;
    for (size_t c = 0; c < rel->arity(); ++c) {
      rel->EnsureIndex(c);
      std::unordered_map<Value, size_t, ValueHash> expected;
      for (const Tuple& r : rel->rows()) ++expected[r[c]];
      for (const auto& [v, n] : expected) {
        ScanPattern pattern(rel->arity());
        pattern[c] = v;
        ASSERT_EQ(rel->Count(pattern), n)
            << "relation " << b << " column " << c << " value " << v;
      }
    }
  }
}

/// The Δ-sets a wave hands back are flat containers too; certify them.
void CertifyResultDeltas(const core::PropagationResult& result) {
  for (const auto& [rel, delta] : result.root_deltas) {
    ASSERT_TRUE(delta.plus().CheckInvariants()) << "root " << rel;
    ASSERT_TRUE(delta.minus().CheckInvariants()) << "root " << rel;
  }
}

struct FuzzConfig {
  uint32_t seed;
  bool materialize;
};

class FuzzEquivalenceTest : public ::testing::TestWithParam<FuzzConfig> {};

/// naive ≡ serial ≡ parallel(2) ≡ parallel(8), over root Δ-sets and
/// Explain() influent sets, across random transaction batches with
/// rollbacks mixed in.
TEST_P(FuzzEquivalenceTest, NaiveSerialParallelAgree) {
  const FuzzConfig& config = GetParam();
  FuzzScenario scenario(config.seed);
  Database& db = scenario.engine_.db;

  core::RootSpec root;
  root.relation = scenario.root_;
  root.needs_minus = true;
  root.strict = true;
  core::BuildOptions options;
  for (RelationId v : scenario.views_) options.keep.insert(v);
  auto net = core::PropagationNetwork::Build(
      {root}, scenario.engine_.registry, db.catalog(), options);
  ASSERT_TRUE(net.ok()) << net.status().ToString();

  const size_t kThreadVariants[] = {1, 2, 8};
  for (int tx = 0; tx < 12; ++tx) {
    SCOPED_TRACE("seed " + std::to_string(config.seed) + " tx " +
                 std::to_string(tx));
    TupleSet before = scenario.EvalRoot(EvalState::kNew);
    scenario.RandomTransaction();

    // Rollback mix: a quarter of the batches are abandoned; the monitors
    // must then see no change at all.
    if (scenario.CoinFlip(4)) {
      ASSERT_TRUE(db.Rollback().ok());
      ASSERT_EQ(scenario.EvalRoot(EvalState::kNew), before);
      continue;
    }

    TupleSet after = scenario.EvalRoot(EvalState::kNew);
    DeltaSet naive = DiffStates(before, after);
    auto deltas = db.TakePendingDeltas();

    std::vector<std::string> serial_explain;
    for (size_t threads : kThreadVariants) {
      // A fresh store per variant: extents are brought forward by the
      // wave, so sharing one store across variants would double-apply.
      core::MaterializedViewStore store;
      if (config.materialize) {
        ASSERT_TRUE(store
                        .Initialize(*net, db, scenario.engine_.registry,
                                    &deltas)
                        .ok());
      }
      core::PropagationOptions popts;
      popts.num_threads = threads;
      core::Propagator propagator(db, scenario.engine_.registry, *net,
                                  config.materialize ? &store : nullptr,
                                  popts);
      auto result = propagator.Propagate(deltas);
      ASSERT_TRUE(result.ok())
          << threads << " threads: " << result.status().ToString();
      ASSERT_EQ(result->root_deltas.at(scenario.root_), naive)
          << threads << " threads disagree with naive recomputation";
      CertifyResultDeltas(*result);
      std::vector<std::string> explain =
          ExplainStrings(*result, scenario.root_, db.catalog());
      if (threads == 1) {
        serial_explain = std::move(explain);
      } else {
        ASSERT_EQ(explain, serial_explain)
            << threads << " threads change the Explain() answer";
      }
    }
    ASSERT_TRUE(db.Commit().ok());
    CertifyContainers(db, scenario.bases_);
  }
}

std::vector<FuzzConfig> FuzzConfigs() {
  std::vector<FuzzConfig> out;
  for (uint32_t seed = 0; seed < 50; ++seed) {
    // Both monitors on even seeds; odd seeds skip materialization to keep
    // runtime flat while still covering 50 seeds in each dimension.
    out.push_back({seed, false});
    if (seed % 2 == 0) out.push_back({seed, true});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzEquivalenceTest, ::testing::ValuesIn(FuzzConfigs()),
    [](const ::testing::TestParamInfo<FuzzConfig>& info) {
      return "Seed" + std::to_string(info.param.seed) +
             (info.param.materialize ? "Mat" : "");
    });

class ThreadDeterminismTest : public ::testing::TestWithParam<uint32_t> {};

/// The strong form: the full TraceEntry sequence, every Stats counter, and
/// the per-literal execution profile are bit-identical for num_threads
/// ∈ {1, 2, 4, 8} — the parallel mode is indistinguishable from the serial
/// one, not merely equivalent. Pools are passed in explicitly, covering
/// the reusable-pool path the RuleManager uses (the fuzz suite above
/// covers the temporary-pool path). Per-worker profiles are folded in
/// fixed level order, so Format(/*include_time=*/false) must come back
/// byte-identical regardless of worker count.
TEST_P(ThreadDeterminismTest, TraceAndStatsAreBitIdenticalAcrossThreadCounts) {
  const uint32_t seed = GetParam();
  FuzzScenario scenario(seed);
  Database& db = scenario.engine_.db;

  core::RootSpec root;
  root.relation = scenario.root_;
  root.needs_minus = true;
  root.strict = true;
  core::BuildOptions options;
  for (RelationId v : scenario.views_) options.keep.insert(v);
  auto net = core::PropagationNetwork::Build(
      {root}, scenario.engine_.registry, db.catalog(), options);
  ASSERT_TRUE(net.ok()) << net.status().ToString();

  common::ThreadPool pool2(2);
  common::ThreadPool pool4(4);
  common::ThreadPool pool8(8);
  common::ThreadPool* pools[] = {nullptr, &pool2, &pool4, &pool8};

  for (int tx = 0; tx < 6; ++tx) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " tx " +
                 std::to_string(tx));
    scenario.RandomTransaction();
    auto deltas = db.TakePendingDeltas();

    core::PropagationResult reference;
    std::string reference_profile;
    for (common::ThreadPool* pool : pools) {
      obs::Profile profile;
      core::PropagationOptions popts;
      popts.pool = pool;  // null → serial (num_threads defaults to 1)
      popts.profiler = &profile;
      core::Propagator propagator(db, scenario.engine_.registry, *net,
                                  nullptr, popts);
      auto result = propagator.Propagate(deltas);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (pool == nullptr) {
        reference = std::move(*result);
        reference_profile = profile.Format(/*include_time=*/false);
        continue;
      }
      size_t workers = pool->num_workers();
      EXPECT_EQ(result->root_deltas, reference.root_deltas)
          << workers << " threads";
      EXPECT_TRUE(SameTrace(result->trace, reference.trace))
          << workers << " threads";
      EXPECT_TRUE(SameStats(result->stats, reference.stats))
          << workers << " threads";
      EXPECT_EQ(profile.Format(/*include_time=*/false), reference_profile)
          << workers << " threads change the execution profile";
    }
    ASSERT_TRUE(db.Commit().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadDeterminismTest,
                         ::testing::Range(0u, 50u));

class KernelEquivalenceTest : public ::testing::TestWithParam<FuzzConfig> {};

/// The batch-kernel axis: kernels-on and kernels-off runs must produce
/// identical root Δ-sets, TraceEntry sequences, and Stats — at every
/// thread count, with rollbacks mixed in, and (on the Mat configs) with
/// materialized intermediate views, whose stored extents are exactly what
/// the build side of the hash-join kernel scans. Within one mode the
/// execution profile must additionally be byte-identical across thread
/// counts; across modes only the counters' semantics differ (the kernels
/// relabel extent accesses with their join strategy), so profiles are
/// deliberately not compared mode-to-mode.
TEST_P(KernelEquivalenceTest, KernelsOnOffAgreeAcrossThreadCounts) {
  const FuzzConfig& config = GetParam();
  FuzzScenario scenario(config.seed);
  Database& db = scenario.engine_.db;

  core::RootSpec root;
  root.relation = scenario.root_;
  root.needs_minus = true;
  root.strict = true;
  core::BuildOptions options;
  for (RelationId v : scenario.views_) options.keep.insert(v);
  auto net = core::PropagationNetwork::Build(
      {root}, scenario.engine_.registry, db.catalog(), options);
  ASSERT_TRUE(net.ok()) << net.status().ToString();

  common::ThreadPool pool2(2);
  common::ThreadPool pool4(4);
  common::ThreadPool pool8(8);
  common::ThreadPool* pools[] = {nullptr, &pool2, &pool4, &pool8};

  for (int tx = 0; tx < 6; ++tx) {
    SCOPED_TRACE("seed " + std::to_string(config.seed) + " tx " +
                 std::to_string(tx));
    scenario.RandomTransaction();
    if (scenario.CoinFlip(4)) {
      ASSERT_TRUE(db.Rollback().ok());
      continue;
    }
    auto deltas = db.TakePendingDeltas();

    core::PropagationResult reference;  // kernels off, serial
    bool have_reference = false;
    for (bool kernels : {false, true}) {
      std::string mode_profile;
      for (common::ThreadPool* pool : pools) {
        core::MaterializedViewStore store;
        if (config.materialize) {
          ASSERT_TRUE(store
                          .Initialize(*net, db, scenario.engine_.registry,
                                      &deltas)
                          .ok());
        }
        obs::Profile profile;
        core::PropagationOptions popts;
        popts.pool = pool;
        popts.profiler = &profile;
        popts.kernels = kernels;
        core::Propagator propagator(db, scenario.engine_.registry, *net,
                                    config.materialize ? &store : nullptr,
                                    popts);
        auto result = propagator.Propagate(deltas);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        const std::string what = std::string("kernels ") +
                                 (kernels ? "on" : "off") + ", " +
                                 (pool ? std::to_string(pool->num_workers())
                                       : "1") +
                                 " threads";
        if (!have_reference) {
          reference = std::move(*result);
          have_reference = true;
        } else {
          EXPECT_EQ(result->root_deltas, reference.root_deltas) << what;
          EXPECT_TRUE(SameTrace(result->trace, reference.trace)) << what;
          EXPECT_TRUE(SameStats(result->stats, reference.stats)) << what;
        }
        std::string formatted = profile.Format(/*include_time=*/false);
        if (pool == nullptr) {
          mode_profile = std::move(formatted);
        } else {
          EXPECT_EQ(formatted, mode_profile)
              << what << " changes the execution profile within its mode";
        }
      }
    }
    ASSERT_TRUE(db.Commit().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, KernelEquivalenceTest, ::testing::ValuesIn(FuzzConfigs()),
    [](const ::testing::TestParamInfo<FuzzConfig>& info) {
      return "Seed" + std::to_string(info.param.seed) +
             (info.param.materialize ? "Mat" : "");
    });

/// ---------------------------------------------------------------------
/// Concurrency fuzz (ROADMAP item 2 certification): N sessions on their
/// own threads fire random transactions through the group-commit queue,
/// retrying on first-committer-wins aborts. The committed history —
/// replayed serially, in commit order, batch-faithfully (one deferred
/// check phase per wave, as the group leader ran it) — must reproduce the
/// concurrent engine exactly: bit-identical sorted dumps of every base
/// relation and the same multiset of rule firings.
///
/// OCC validation is what makes statement-level replay sound: a committed
/// transaction's every read (including the point reads its buffered
/// folding depended on) is certified untouched by concurrent commits, so
/// re-executing its statements against the commit-order state computes
/// the same effects it computed against its snapshot.

constexpr const char* kConcSchema =
    "create function stock(integer) -> integer;"
    "create function audit(integer) -> integer;"
    "create rule low_stock() as"
    "  when for each integer k where stock(k) < 3"
    "  do note(k, stock(k));"
    "activate low_stock();";

/// One engine + bootstrap session with a thread-safe firing log. The
/// bootstrap session stays legacy (direct writes), like deltamond's
/// --init path; worker sessions attach to the engine's manager.
class ConcHarness {
 public:
  ConcHarness() {
    boot_.RegisterProcedure(
        "note", [this](Database&, const std::vector<Value>& args) {
          std::lock_guard<std::mutex> lock(mu_);
          firings_.emplace_back(args[0].AsInt(), args[1].AsInt());
          return Status::OK();
        });
    std::string src = kConcSchema;
    for (int k = 0; k < 8; ++k) {
      src += "set stock(" + std::to_string(k) + ") = 10;";
    }
    src += "commit;";
    auto r = boot_.Execute(src);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }

  std::vector<std::pair<int64_t, int64_t>> SortedFirings() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<int64_t, int64_t>> out = firings_;
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Sorted per-relation dump of every base relation — the canonical
  /// store state two engines are compared by.
  std::vector<std::string> Dump() {
    std::vector<std::string> out;
    const Catalog& catalog = engine_.db.catalog();
    for (RelationId id : catalog.AllRelationIds()) {
      const BaseRelation* rel = catalog.GetBaseRelation(id);
      if (rel == nullptr) continue;
      std::vector<std::string> rows;
      for (const Tuple& t : rel->rows()) rows.push_back(t.ToString());
      std::sort(rows.begin(), rows.end());
      for (std::string& row : rows) {
        out.push_back(catalog.RelationName(id) + " " + std::move(row));
      }
    }
    return out;
  }

  Engine engine_;
  amosql::Session boot_{engine_};

 private:
  std::mutex mu_;
  std::vector<std::pair<int64_t, int64_t>> firings_;
};

/// A transaction that survived validation, with the statements to replay.
struct CommittedTxn {
  uint64_t version;
  uint64_t batch;
  std::string ops;
};

struct ConcFuzzConfig {
  uint32_t seed;
  size_t threads;
};

class ConcurrentTxnFuzzTest : public ::testing::TestWithParam<ConcFuzzConfig> {
};

TEST_P(ConcurrentTxnFuzzTest, CommittedHistoryEqualsSerialReplay) {
  const ConcFuzzConfig& config = GetParam();
  ConcHarness live;

  std::mutex log_mu;
  std::vector<CommittedTxn> committed;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937 rng(config.seed * 131 + static_cast<uint32_t>(t));
      amosql::Session session(live.engine_);
      session.AttachTransactionManager(&live.engine_.txn);
      for (int tx = 0; tx < 6; ++tx) {
        std::string ops;
        const int n = 1 + static_cast<int>(rng() % 4);
        for (int i = 0; i < n; ++i) {
          const char* fn = rng() % 2 == 0 ? "stock" : "audit";
          ops += std::string("set ") + fn + "(" +
                 std::to_string(rng() % 12) + ") = " +
                 std::to_string(rng() % 12) + ";";
        }
        const std::string src = "begin;" + ops + "commit;";
        bool done = false;
        for (int attempt = 0; attempt < 100 && !done; ++attempt) {
          const uint64_t batch_before =
              session.txn_snapshot().last_commit.batch_id;
          auto r = session.Execute(src);
          if (r.ok()) {
            const auto& info = session.txn_snapshot().last_commit;
            // A transaction whose sets folded to a net no-op overlay
            // commits via the read-only fast path without a wave stamp;
            // it changed nothing, so it has no place in the history.
            if (info.batch_id != batch_before) {
              std::lock_guard<std::mutex> lock(log_mu);
              committed.push_back({info.version, info.batch_id, ops});
            }
            done = true;
          } else {
            // Only first-committer-wins aborts are expected; anything
            // else is a real failure.
            ASSERT_EQ(r.status().code(), StatusCode::kTxnConflict)
                << r.status().ToString();
          }
        }
        EXPECT_TRUE(done) << "transaction starved after 100 retries";
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Every committed transaction received a distinct commit version.
  std::sort(committed.begin(), committed.end(),
            [](const CommittedTxn& a, const CommittedTxn& b) {
              return a.version < b.version;
            });
  for (size_t i = 1; i < committed.size(); ++i) {
    ASSERT_NE(committed[i].version, committed[i - 1].version);
  }

  // Batch-faithful serial replay: transactions in commit order, one
  // legacy commit (= one deferred check phase) per commit wave — exactly
  // the Δ-union the group leader propagated.
  ConcHarness replay;
  for (size_t i = 0; i < committed.size();) {
    std::string batch_src;
    const uint64_t batch = committed[i].batch;
    for (; i < committed.size() && committed[i].batch == batch; ++i) {
      batch_src += committed[i].ops;
    }
    batch_src += "commit;";
    auto r = replay.boot_.Execute(batch_src);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  EXPECT_EQ(live.Dump(), replay.Dump());
  // Firing order within a wave follows the Δ-union's iteration order,
  // which replay need not reproduce tuple-for-tuple; the multiset must
  // match (per-wave sets are compared implicitly through the dumps).
  EXPECT_EQ(live.SortedFirings(), replay.SortedFirings());
}

std::vector<ConcFuzzConfig> ConcFuzzConfigs() {
  std::vector<ConcFuzzConfig> out;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    for (uint32_t seed = 0; seed < 4; ++seed) out.push_back({seed, threads});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ConcurrentTxnFuzzTest, ::testing::ValuesIn(ConcFuzzConfigs()),
    [](const ::testing::TestParamInfo<ConcFuzzConfig>& info) {
      return "Seed" + std::to_string(info.param.seed) + "Threads" +
             std::to_string(info.param.threads);
    });

/// Session-level kernel equivalence: the same seeded AMOSQL workload —
/// updates, deletions via re-sets, commits, and a rule that fires through
/// the check phase — run once with kernels on (the default) and once with
/// `set kernels off;`, must leave bit-identical sorted store dumps and the
/// same multiset of rule firings, at several thread settings.
class KernelSessionFuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(KernelSessionFuzzTest, DumpsAndFiringsMatchWithKernelsOff) {
  const uint32_t seed = GetParam();
  auto run = [&](const std::string& prelude) {
    ConcHarness harness;
    auto setup = harness.boot_.Execute(prelude);
    EXPECT_TRUE(setup.ok()) << setup.status().ToString();
    std::mt19937 rng(seed);
    for (int tx = 0; tx < 10; ++tx) {
      std::string ops;
      const int n = 1 + static_cast<int>(rng() % 5);
      for (int i = 0; i < n; ++i) {
        const char* fn = rng() % 2 == 0 ? "stock" : "audit";
        ops += std::string("set ") + fn + "(" + std::to_string(rng() % 12) +
               ") = " + std::to_string(rng() % 12) + ";";
      }
      ops += "commit;";
      auto r = harness.boot_.Execute(ops);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
    return std::make_pair(harness.Dump(), harness.SortedFirings());
  };

  for (const char* threads : {"1", "4"}) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " threads " + threads);
    const std::string set_threads = std::string("set threads ") + threads + ";";
    auto on = run(set_threads);
    auto off = run(set_threads + "set kernels off;");
    EXPECT_EQ(on.first, off.first) << "store dumps diverge";
    EXPECT_EQ(on.second, off.second) << "rule firings diverge";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelSessionFuzzTest,
                         ::testing::Range(0u, 10u));

/// ---------------------------------------------------------------------
/// Provenance determinism: with lineage capture armed, the exported
/// lineage trees of every root Δ-row must be byte-identical for
/// num_threads ∈ {1, 2, 4, 8} × kernels on/off — and arming capture must
/// not change the root Δ-sets themselves (the per-row restricted
/// evaluations union to exactly the one-shot result).

std::string LineageDump(const core::PropagationResult& result,
                        RelationId root, const Catalog& catalog) {
  auto it = result.root_deltas.find(root);
  if (it == result.root_deltas.end()) return std::string();
  std::string out;
  for (bool plus : {true, false}) {
    for (const Tuple& t :
         SortedTuples(plus ? it->second.plus() : it->second.minus())) {
      out += result.lineage.Export(root, plus, t, catalog).Dump();
    }
  }
  return out;
}

class LineageDeterminismTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LineageDeterminismTest,
       LineageIsBitIdenticalAcrossThreadsAndKernels) {
  const uint32_t seed = GetParam();
  FuzzScenario scenario(seed);
  Database& db = scenario.engine_.db;

  core::RootSpec root;
  root.relation = scenario.root_;
  root.needs_minus = true;
  root.strict = true;
  core::BuildOptions options;
  for (RelationId v : scenario.views_) options.keep.insert(v);
  auto net = core::PropagationNetwork::Build(
      {root}, scenario.engine_.registry, db.catalog(), options);
  ASSERT_TRUE(net.ok()) << net.status().ToString();

  common::ThreadPool pool2(2);
  common::ThreadPool pool4(4);
  common::ThreadPool pool8(8);
  common::ThreadPool* pools[] = {nullptr, &pool2, &pool4, &pool8};

  for (int tx = 0; tx < 6; ++tx) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " tx " +
                 std::to_string(tx));
    scenario.RandomTransaction();
    auto deltas = db.TakePendingDeltas();

    // Lineage-off reference: arming capture must not change the answer.
    core::PropagationResult plain;
    {
      core::Propagator propagator(db, scenario.engine_.registry, *net,
                                  nullptr, core::PropagationOptions{});
      auto result = propagator.Propagate(deltas);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      plain = std::move(*result);
    }

    std::string reference_dump;
    bool have_reference = false;
    for (bool kernels : {false, true}) {
      for (common::ThreadPool* pool : pools) {
        core::PropagationOptions popts;
        popts.pool = pool;
        popts.kernels = kernels;
        popts.lineage = true;
        core::Propagator propagator(db, scenario.engine_.registry, *net,
                                    nullptr, popts);
        auto result = propagator.Propagate(deltas);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        const std::string what = std::string("kernels ") +
                                 (kernels ? "on" : "off") + ", " +
                                 (pool ? std::to_string(pool->num_workers())
                                       : "1") +
                                 " threads";
        EXPECT_EQ(result->root_deltas, plain.root_deltas)
            << what << ": lineage capture changed the root Δ-sets";
        std::string dump =
            LineageDump(*result, scenario.root_, db.catalog());
        if (!have_reference) {
          reference_dump = std::move(dump);
          have_reference = true;
          // Every base influent feeding the root must surface as a
          // lineage leaf somewhere in the reference export.
          if (!plain.root_deltas.at(scenario.root_).empty()) {
            EXPECT_NE(reference_dump.find("\"base\": true"),
                      std::string::npos);
          }
        } else {
          EXPECT_EQ(dump, reference_dump)
              << what << " changes the exported lineage";
        }
      }
    }
    ASSERT_TRUE(db.Commit().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineageDeterminismTest,
                         ::testing::Range(0u, 20u));

#if DELTAMON_OBS_ENABLED

/// ---------------------------------------------------------------------
/// Session-level provenance + wave capture/replay round trip: a seeded
/// AMOSQL workload with provenance and wave capture armed must (a) record
/// firings whose rendered lineage documents are byte-identical across
/// thread counts and kernel modes, and (b) dump waves that replay
/// bit-identically against a rebuilt engine — including replays under
/// different settings.

std::string CanonicalFirings(const std::vector<obs::FiringRecord>& records) {
  std::string out;
  for (const obs::FiringRecord& r : records) {
    // Identity stamps (seq is deterministic here, trace/version are 0 in
    // legacy mode) are skipped anyway: the determinism claim is about the
    // firing content and its lineage.
    out += r.rule + " round " + std::to_string(r.round) + "\n";
    for (const std::string& i : r.instances) out += "  " + i + "\n";
    out += r.lineage.Dump();
  }
  return out;
}

class ProvenanceSessionFuzzTest : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(ProvenanceSessionFuzzTest, LineageAndWavesDeterministicAndReplayable) {
  const uint32_t seed = GetParam();

  auto run = [&](const std::string& prelude) {
    obs::GlobalProvenanceLog().Clear();
    obs::GlobalWaveRecorder().Clear();
    auto harness = std::make_unique<ConcHarness>();
    auto setup = harness->boot_.Execute(
        prelude + "set provenance on; set wave_capture on;");
    EXPECT_TRUE(setup.ok()) << setup.status().ToString();
    std::mt19937 rng(seed);
    for (int tx = 0; tx < 8; ++tx) {
      std::string ops;
      const int n = 1 + static_cast<int>(rng() % 5);
      for (int i = 0; i < n; ++i) {
        const char* fn = rng() % 2 == 0 ? "stock" : "audit";
        ops += std::string("set ") + fn + "(" + std::to_string(rng() % 12) +
               ") = " + std::to_string(rng() % 12) + ";";
      }
      ops += "commit;";
      auto r = harness->boot_.Execute(ops);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
    harness->engine_.rules.SetProvenanceEnabled(false);
    harness->engine_.rules.SetWaveCaptureEnabled(false);
    return std::make_pair(
        CanonicalFirings(obs::GlobalProvenanceLog().Snapshot()),
        obs::GlobalWaveRecorder().Snapshot());
  };

  auto [reference_firings, captured] = run("set threads 1;");
  // Every transaction touched base relations, so capture must have seen
  // at least one wave — an empty recording would make the comparisons
  // below vacuously true.
  ASSERT_FALSE(captured.empty());
  for (const char* prelude :
       {"set threads 2;", "set threads 4;", "set threads 8;",
        "set threads 4; set kernels off;"}) {
    SCOPED_TRACE(std::string("seed ") + std::to_string(seed) + " " +
                 prelude);
    auto [firings, waves] = run(prelude);
    EXPECT_EQ(firings, reference_firings)
        << prelude << " changes the recorded provenance";
    ASSERT_EQ(waves.size(), captured.size());
    for (size_t i = 0; i < waves.size(); ++i) {
      EXPECT_EQ(waves[i].OutcomeJson().Dump(),
                captured[i].OutcomeJson().Dump())
          << prelude << " wave " << i;
    }
  }

  // File round trip: dump -> parse must reproduce the records exactly.
  const obs::Json file = obs::WaveFileJson(captured, /*enabled=*/true,
                                           /*capacity=*/64, captured.size(),
                                           /*dropped=*/0);
  auto reparsed = obs::ParseWaveFile(file.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->size(), captured.size());
  for (size_t i = 0; i < captured.size(); ++i) {
    EXPECT_EQ(reparsed->at(i).ToJson().Dump(), captured[i].ToJson().Dump());
  }

  // Replay against rebuilt engines: default settings, then deliberately
  // different ones — outcomes must be bit-identical either way.
  struct ReplayVariant {
    size_t threads;
    bool kernels;
  };
  for (const ReplayVariant& variant :
       {ReplayVariant{1, true}, ReplayVariant{4, false}}) {
    SCOPED_TRACE("replay threads " + std::to_string(variant.threads) +
                 " kernels " + (variant.kernels ? "on" : "off"));
    ConcHarness replay;
    replay.engine_.rules.SetNumThreads(variant.threads);
    replay.engine_.rules.SetKernelsEnabled(variant.kernels);
    auto report =
        rules::ReplayWaves(replay.engine_.db, replay.engine_.rules, captured);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    std::string diffs;
    for (const std::string& m : report->mismatches) diffs += m;
    EXPECT_TRUE(report->ok()) << diffs;
    EXPECT_EQ(report->waves_checked, captured.size());
    replay.engine_.rules.SetWaveCaptureEnabled(false);
  }
  obs::GlobalProvenanceLog().Clear();
  obs::GlobalWaveRecorder().Clear();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProvenanceSessionFuzzTest,
                         ::testing::Range(0u, 8u));

#endif  // DELTAMON_OBS_ENABLED

}  // namespace
}  // namespace deltamon
