/// End-to-end reproduction of the paper's running example (§3.1–3.2):
/// the inventory schema, the monitor_items rule, and the exact population
/// script, executed through the AMOSQL session.

#include <gtest/gtest.h>

#include "amosql/session.h"

namespace deltamon {
namespace {

/// The paper's §3.1 definitions and population, verbatim (modulo the
/// threshold function being given explicitly in its expanded select form,
/// exactly as printed in the paper).
constexpr const char* kPaperSchema = R"(
create type item;
create type supplier;
create function quantity(item) -> integer;
create function max_stock(item) -> integer;
create function min_stock(item) -> integer;
create function consume_freq(item) -> integer;
create function supplies(supplier) -> item;
create function delivery_time(item, supplier) -> integer;
create function threshold(item i) -> integer
  as
  select consume_freq(i) * delivery_time(i, s) + min_stock(i)
  for each supplier s where supplies(s) = i;

create rule monitor_items() as
  when for each item i where quantity(i) < threshold(i)
  do order(i, max_stock(i) - quantity(i));

create item instances :item1, :item2;
set max_stock(:item1) = 5000;
set max_stock(:item2) = 7500;
set min_stock(:item1) = 100;
set min_stock(:item2) = 200;
set consume_freq(:item1) = 20;
set consume_freq(:item2) = 30;
create supplier instances :sup1, :sup2;
set supplies(:sup1) = :item1;
set supplies(:sup2) = :item2;
set delivery_time(:item1, :sup1) = 2;
set delivery_time(:item2, :sup2) = 3;
set quantity(:item1) = 5000;
set quantity(:item2) = 7500;
activate monitor_items();
commit;
)";

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_.RegisterProcedure(
        "order", [this](Database&, const std::vector<Value>& args) {
          orders_.emplace_back(args[0], args[1]);
          return Status::OK();
        });
    auto r = session_.Execute(kPaperSchema);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  Engine engine_;
  amosql::Session session_{engine_};
  std::vector<std::pair<Value, Value>> orders_;
};

// "This will ensure that ... new items will be delivered if the quantity
// drops below 140" (item1) "... if the quantity drops below 290" (item2).
TEST_F(PaperExampleTest, ThresholdsMatchThePaper) {
  auto t1 = session_.Execute("select threshold(:item1);");
  auto t2 = session_.Execute("select threshold(:item2);");
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_EQ(t1->rows.size(), 1u);
  ASSERT_EQ(t2->rows.size(), 1u);
  EXPECT_EQ(t1->rows[0][0], Value(140));  // 20*2 + 100
  EXPECT_EQ(t2->rows[0][0], Value(290));  // 30*3 + 200
}

TEST_F(PaperExampleTest, DropBelowThresholdOrdersRefill) {
  ASSERT_TRUE(session_.Execute("set quantity(:item1) = 120; commit;").ok());
  ASSERT_EQ(orders_.size(), 1u);
  EXPECT_EQ(orders_[0].first, *session_.GetInterfaceVar("item1"));
  // order(i, max_stock(i) - quantity(i)) = 5000 - 120.
  EXPECT_EQ(orders_[0].second, Value(4880));
}

TEST_F(PaperExampleTest, BothItemsCanTriggerInOneTransaction) {
  ASSERT_TRUE(session_
                  .Execute("set quantity(:item1) = 100;"
                           "set quantity(:item2) = 250; commit;")
                  .ok());
  ASSERT_EQ(orders_.size(), 2u);
}

TEST_F(PaperExampleTest, StayingAboveThresholdIsQuiet) {
  ASSERT_TRUE(session_.Execute("set quantity(:item1) = 141; commit;").ok());
  ASSERT_TRUE(session_.Execute("set quantity(:item2) = 290; commit;").ok());
  EXPECT_TRUE(orders_.empty());
}

// §4.1: updates with no net effect trigger nothing.
TEST_F(PaperExampleTest, NoNetEffectUpdatesAreInvisible) {
  ASSERT_TRUE(session_
                  .Execute("set min_stock(:item1) = 150;"
                           "set min_stock(:item1) = 100;"
                           "set quantity(:item1) = 120;"
                           "set quantity(:item1) = 5000;"
                           "commit;")
                  .ok());
  EXPECT_TRUE(orders_.empty());
}

// Strict semantics: "we only want to order an item once when it becomes
// low in stock" (§3.2).
TEST_F(PaperExampleTest, StrictSemanticsOrdersOnlyOnce) {
  ASSERT_TRUE(session_.Execute("set quantity(:item1) = 120; commit;").ok());
  ASSERT_TRUE(session_.Execute("set quantity(:item1) = 110; commit;").ok());
  EXPECT_EQ(orders_.size(), 1u);
}

// Threshold-side influents (consume_freq, delivery_time, min_stock,
// supplies) are monitored too — the five influents of fig. 2.
TEST_F(PaperExampleTest, ThresholdInfluentsTrigger) {
  // Raise consume frequency: threshold becomes 500*2+100 = 1100 > 1000.
  ASSERT_TRUE(session_.Execute("set quantity(:item1) = 1000; commit;").ok());
  EXPECT_TRUE(orders_.empty());
  ASSERT_TRUE(
      session_.Execute("set consume_freq(:item1) = 500; commit;").ok());
  ASSERT_EQ(orders_.size(), 1u);
  EXPECT_EQ(orders_[0].second, Value(4000));  // 5000 - 1000
}

TEST_F(PaperExampleTest, RollbackSuppressesTriggering) {
  ASSERT_TRUE(session_.Execute("set quantity(:item1) = 120;").ok());
  ASSERT_TRUE(session_.Execute("rollback;").ok());
  ASSERT_TRUE(session_.Execute("commit;").ok());
  EXPECT_TRUE(orders_.empty());
  auto q = session_.Execute("select quantity(:item1);");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rows[0][0], Value(5000));
}

// The monitor_item(item i) variant from §3.1: parameterized activation.
TEST_F(PaperExampleTest, ParameterizedMonitorItemRule) {
  ASSERT_TRUE(session_
                  .Execute("create rule monitor_item(item i) as"
                           "  when quantity(i) < threshold(i)"
                           "  do order(i, max_stock(i) - quantity(i));"
                           "activate monitor_item(:item2);"
                           "commit;")
                  .ok());
  // item1 is watched by monitor_items (all items) only once; item2 by both
  // rules -> deactivate the global rule to isolate the parameterized one.
  ASSERT_TRUE(session_.Execute("deactivate monitor_items(); commit;").ok());
  ASSERT_TRUE(session_.Execute("set quantity(:item1) = 10; commit;").ok());
  EXPECT_TRUE(orders_.empty());  // item1 not watched anymore
  ASSERT_TRUE(session_.Execute("set quantity(:item2) = 10; commit;").ok());
  ASSERT_EQ(orders_.size(), 1u);
  EXPECT_EQ(orders_[0].first, *session_.GetInterfaceVar("item2"));
  EXPECT_EQ(orders_[0].second, Value(7490));
}

}  // namespace
}  // namespace deltamon
