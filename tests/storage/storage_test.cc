#include <gtest/gtest.h>

#include "storage/database.h"

namespace deltamon {
namespace {

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
ColumnType AnyCol() { return ColumnType{}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

TEST(SchemaTest, TypeCheckArityAndKinds) {
  Schema s({IntCol(), IntCol()});
  EXPECT_TRUE(s.TypeCheck(T(1, 2)).ok());
  EXPECT_FALSE(s.TypeCheck(Tuple{Value(1)}).ok());
  EXPECT_FALSE(s.TypeCheck(Tuple{Value(1), Value("x")}).ok());
}

TEST(SchemaTest, AnyColumnAdmitsEverything) {
  Schema s({AnyCol()});
  EXPECT_TRUE(s.TypeCheck(Tuple{Value(1)}).ok());
  EXPECT_TRUE(s.TypeCheck(Tuple{Value("x")}).ok());
  EXPECT_TRUE(s.TypeCheck(Tuple{Value(Oid{1, 1})}).ok());
}

TEST(SchemaTest, DoubleColumnAdmitsInt) {
  Schema s({ColumnType{ValueKind::kDouble, kInvalidTypeId}});
  EXPECT_TRUE(s.TypeCheck(Tuple{Value(2.5)}).ok());
  EXPECT_TRUE(s.TypeCheck(Tuple{Value(2)}).ok());
}

TEST(SchemaTest, ObjectColumnChecksType) {
  Schema s({ColumnType{ValueKind::kObject, 3}});
  EXPECT_TRUE(s.TypeCheck(Tuple{Value(Oid{1, 3})}).ok());
  EXPECT_FALSE(s.TypeCheck(Tuple{Value(Oid{1, 4})}).ok());
}

TEST(BaseRelationTest, InsertDeleteSetSemantics) {
  BaseRelation rel(1, "r", Schema({IntCol(), IntCol()}));
  EXPECT_TRUE(rel.Insert(T(1, 2)));
  EXPECT_FALSE(rel.Insert(T(1, 2)));  // duplicate: physical no-op
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(T(1, 2)));
  EXPECT_TRUE(rel.Delete(T(1, 2)));
  EXPECT_FALSE(rel.Delete(T(1, 2)));  // absent: physical no-op
  EXPECT_EQ(rel.size(), 0u);
}

TEST(BaseRelationTest, IndexedScanFindsMatches) {
  BaseRelation rel(1, "r", Schema({IntCol(), IntCol()}));
  for (int64_t i = 0; i < 100; ++i) rel.Insert(T(i % 10, i));
  rel.EnsureIndex(0);
  ASSERT_TRUE(rel.HasIndex(0));
  ScanPattern p(2);
  p[0] = Value(3);
  EXPECT_EQ(rel.Count(p), 10u);
  // Index stays correct across deletions.
  EXPECT_TRUE(rel.Delete(T(3, 3)));
  EXPECT_EQ(rel.Count(p), 9u);
}

TEST(BaseRelationTest, LazyIndexBuiltOnFirstBoundScan) {
  BaseRelation rel(1, "r", Schema({IntCol(), IntCol()}));
  rel.Insert(T(1, 10));
  rel.Insert(T(2, 20));
  EXPECT_FALSE(rel.HasIndex(1));
  ScanPattern p(2);
  p[1] = Value(20);
  EXPECT_EQ(rel.Count(p), 1u);
  EXPECT_TRUE(rel.HasIndex(1));
}

TEST(BaseRelationTest, FullyBoundPatternIsMembershipProbe) {
  BaseRelation rel(1, "r", Schema({IntCol(), IntCol()}));
  rel.Insert(T(1, 2));
  ScanPattern p(2);
  p[0] = Value(1);
  p[1] = Value(2);
  EXPECT_EQ(rel.Count(p), 1u);
  p[1] = Value(3);
  EXPECT_EQ(rel.Count(p), 0u);
}

TEST(BaseRelationTest, EmptyPatternScansAll) {
  BaseRelation rel(1, "r", Schema({IntCol(), IntCol()}));
  rel.Insert(T(1, 2));
  rel.Insert(T(3, 4));
  EXPECT_EQ(rel.Count({}), 2u);
}

TEST(CatalogTest, TypesAndObjects) {
  Catalog cat;
  auto item = cat.CreateType("item");
  ASSERT_TRUE(item.ok());
  EXPECT_FALSE(cat.CreateType("item").ok());  // duplicate
  EXPECT_EQ(*cat.FindType("item"), *item);
  EXPECT_FALSE(cat.FindType("ghost").ok());

  auto o1 = cat.CreateObject(*item);
  auto o2 = cat.CreateObject(*item);
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_NE(o1->id, o2->id);
  EXPECT_EQ(o1->type, *item);
  EXPECT_EQ(cat.ObjectsOfType(*item).size(), 2u);
  EXPECT_FALSE(cat.CreateObject(999).ok());
}

TEST(CatalogTest, StoredAndDerivedFunctions) {
  Catalog cat;
  auto f = cat.CreateStoredFunction("f",
                                    FunctionSignature{{IntCol()}, {IntCol()}});
  auto g = cat.CreateDerivedFunction("g",
                                     FunctionSignature{{}, {IntCol()}});
  ASSERT_TRUE(f.ok() && g.ok());
  EXPECT_FALSE(cat.CreateStoredFunction("f", {}).ok());
  EXPECT_NE(cat.GetBaseRelation(*f), nullptr);
  EXPECT_EQ(cat.GetBaseRelation(*g), nullptr);
  EXPECT_FALSE(cat.IsDerived(*f));
  EXPECT_TRUE(cat.IsDerived(*g));
  EXPECT_EQ(cat.RelationName(*f), "f");
  EXPECT_EQ(*cat.FindRelation("g"), *g);
  EXPECT_EQ(cat.AllRelationIds().size(), 2u);
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto f = db_.catalog().CreateStoredFunction(
        "f", FunctionSignature{{IntCol()}, {IntCol()}});
    ASSERT_TRUE(f.ok());
    f_ = *f;
  }
  Database db_;
  RelationId f_ = kInvalidRelationId;
};

TEST_F(DatabaseTest, InsertLogsEvent) {
  ASSERT_TRUE(db_.Insert(f_, T(1, 10)).ok());
  EXPECT_EQ(db_.LogSize(), 1u);
  EXPECT_EQ(db_.UndoLog()[0].op, UpdateEvent::Op::kInsert);
}

TEST_F(DatabaseTest, DuplicateInsertLogsNothing) {
  ASSERT_TRUE(db_.Insert(f_, T(1, 10)).ok());
  ASSERT_TRUE(db_.Insert(f_, T(1, 10)).ok());
  EXPECT_EQ(db_.LogSize(), 1u);
}

TEST_F(DatabaseTest, SetGeneratesPaperEventSequence) {
  // set f(1) = 10, then set f(1) = 20 produces -(f,1,10), +(f,1,20) for
  // the second statement (paper §4.1).
  ASSERT_TRUE(db_.Set(f_, Tuple{Value(1)}, Tuple{Value(10)}).ok());
  ASSERT_TRUE(db_.Commit().ok());
  ASSERT_TRUE(db_.Set(f_, Tuple{Value(1)}, Tuple{Value(20)}).ok());
  ASSERT_EQ(db_.LogSize(), 2u);
  EXPECT_EQ(db_.UndoLog()[0].op, UpdateEvent::Op::kDelete);
  EXPECT_EQ(db_.UndoLog()[0].tuple, T(1, 10));
  EXPECT_EQ(db_.UndoLog()[1].op, UpdateEvent::Op::kInsert);
  EXPECT_EQ(db_.UndoLog()[1].tuple, T(1, 20));
}

TEST_F(DatabaseTest, RollbackRestoresState) {
  ASSERT_TRUE(db_.Insert(f_, T(1, 10)).ok());
  ASSERT_TRUE(db_.Commit().ok());
  ASSERT_TRUE(db_.Set(f_, Tuple{Value(1)}, Tuple{Value(99)}).ok());
  ASSERT_TRUE(db_.Insert(f_, T(2, 20)).ok());
  ASSERT_TRUE(db_.Rollback().ok());
  const BaseRelation* rel = db_.catalog().GetBaseRelation(f_);
  EXPECT_TRUE(rel->Contains(T(1, 10)));
  EXPECT_FALSE(rel->Contains(T(1, 99)));
  EXPECT_FALSE(rel->Contains(T(2, 20)));
  EXPECT_EQ(db_.LogSize(), 0u);
}

TEST_F(DatabaseTest, MonitoredRelationAccumulatesNetDeltas) {
  db_.MarkMonitored(f_);
  ASSERT_TRUE(db_.Set(f_, Tuple{Value(1)}, Tuple{Value(100)}).ok());
  ASSERT_TRUE(db_.Commit().ok());
  // Update twice, ending at the original value: no net effect (§4.1).
  ASSERT_TRUE(db_.Set(f_, Tuple{Value(1)}, Tuple{Value(150)}).ok());
  ASSERT_TRUE(db_.Set(f_, Tuple{Value(1)}, Tuple{Value(100)}).ok());
  EXPECT_EQ(db_.LogSize(), 4u);  // four physical events
  EXPECT_FALSE(db_.HasPendingChanges());
  EXPECT_TRUE(db_.TakePendingDeltas().empty());
}

TEST_F(DatabaseTest, UnmonitoredRelationAccumulatesNothing) {
  ASSERT_TRUE(db_.Insert(f_, T(1, 10)).ok());
  EXPECT_FALSE(db_.HasPendingChanges());
  EXPECT_TRUE(db_.PendingDeltas().empty());
}

TEST_F(DatabaseTest, MonitorRefCounting) {
  db_.MarkMonitored(f_);
  db_.MarkMonitored(f_);
  db_.UnmarkMonitored(f_);
  EXPECT_TRUE(db_.IsMonitored(f_));
  db_.UnmarkMonitored(f_);
  EXPECT_FALSE(db_.IsMonitored(f_));
}

TEST_F(DatabaseTest, CommitRunsCheckPhaseAndClears) {
  int calls = 0;
  db_.SetCheckPhase([&calls](Database&) {
    ++calls;
    return Status::OK();
  });
  ASSERT_TRUE(db_.Insert(f_, T(1, 1)).ok());
  ASSERT_TRUE(db_.Commit().ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(db_.LogSize(), 0u);
}

TEST_F(DatabaseTest, FailedCheckPhaseKeepsTransactionOpen) {
  db_.SetCheckPhase(
      [](Database&) { return Status::FailedPrecondition("veto"); });
  ASSERT_TRUE(db_.Insert(f_, T(1, 1)).ok());
  EXPECT_FALSE(db_.Commit().ok());
  EXPECT_EQ(db_.LogSize(), 1u);
  ASSERT_TRUE(db_.Rollback().ok());
  EXPECT_FALSE(db_.catalog().GetBaseRelation(f_)->Contains(T(1, 1)));
}

TEST_F(DatabaseTest, TypeErrorsRejected) {
  EXPECT_FALSE(db_.Insert(f_, Tuple{Value("x"), Value(1)}).ok());
  EXPECT_FALSE(db_.Insert(f_, Tuple{Value(1)}).ok());
  EXPECT_FALSE(db_.Insert(999, T(1, 1)).ok());
}

TEST_F(DatabaseTest, StatsCountEvents) {
  ASSERT_TRUE(db_.Insert(f_, T(1, 1)).ok());
  ASSERT_TRUE(db_.Insert(f_, T(2, 2)).ok());
  ASSERT_TRUE(db_.Commit().ok());
  ASSERT_TRUE(db_.Delete(f_, T(1, 1)).ok());
  ASSERT_TRUE(db_.Rollback().ok());
  EXPECT_EQ(db_.stats().events_logged, 3u);
  EXPECT_EQ(db_.stats().commits, 1u);
  EXPECT_EQ(db_.stats().rollbacks, 1u);
}

}  // namespace
}  // namespace deltamon
