/// StatsStore: the catalog's persistent (relation, role, nbound) ->
/// observed-selectivity table that `explain analyze` / `analyze rule`
/// populate and the greedy literal-ordering optimizer consults.

#include "storage/stats_store.h"

#include <gtest/gtest.h>

namespace deltamon {
namespace {

TEST(StatsStoreTest, UnseenKeyHasNoSelectivity) {
  StatsStore stats;
  EXPECT_FALSE(stats.Selectivity(7, /*role=*/0, /*nbound=*/1).has_value());
  EXPECT_EQ(stats.size(), 0u);
}

TEST(StatsStoreTest, RecordAccumulatesCumulativeSelectivity) {
  StatsStore stats;
  stats.Record(7, 0, 1, /*tried=*/100, /*produced=*/10);
  auto sel = stats.Selectivity(7, 0, 1);
  ASSERT_TRUE(sel.has_value());
  EXPECT_DOUBLE_EQ(*sel, 0.1);

  // A second observation folds in: (10 + 40) / (100 + 100).
  stats.Record(7, 0, 1, 100, 40);
  sel = stats.Selectivity(7, 0, 1);
  ASSERT_TRUE(sel.has_value());
  EXPECT_DOUBLE_EQ(*sel, 0.25);
  EXPECT_EQ(stats.size(), 1u);
}

TEST(StatsStoreTest, NothingTriedCarriesNoSignal) {
  StatsStore stats;
  stats.Record(7, 0, 1, /*tried=*/0, /*produced=*/0);
  EXPECT_FALSE(stats.Selectivity(7, 0, 1).has_value());
  EXPECT_EQ(stats.size(), 0u);
}

TEST(StatsStoreTest, KeysAreDistinctPerRoleAndBoundness) {
  StatsStore stats;
  stats.Record(7, 0, 1, 100, 10);
  stats.Record(7, 0, 2, 100, 1);
  stats.Record(7, 3, 1, 100, 50);
  stats.Record(8, 0, 1, 100, 100);
  EXPECT_EQ(stats.size(), 4u);
  EXPECT_DOUBLE_EQ(*stats.Selectivity(7, 0, 1), 0.10);
  EXPECT_DOUBLE_EQ(*stats.Selectivity(7, 0, 2), 0.01);
  EXPECT_DOUBLE_EQ(*stats.Selectivity(7, 3, 1), 0.50);
  EXPECT_DOUBLE_EQ(*stats.Selectivity(8, 0, 1), 1.0);
}

TEST(StatsStoreTest, ClearForgetsEverything) {
  StatsStore stats;
  stats.Record(7, 0, 1, 100, 10);
  stats.Clear();
  EXPECT_EQ(stats.size(), 0u);
  EXPECT_FALSE(stats.Selectivity(7, 0, 1).has_value());
}

}  // namespace
}  // namespace deltamon
