/// Introspection output: the propagation-network dump must reflect the
/// paper's figures (fig. 2 flat, fig. 1 bushy) textually, differential
/// names must identify influent and polarity, and catalog/storage
/// ToString forms must round-trip the information a debugger needs.

#include <gtest/gtest.h>

#include "bench_util/inventory.h"
#include "core/network.h"
#include "rules/engine.h"

namespace deltamon::core {
namespace {

using workload::BuildInventory;
using workload::InventoryConfig;

class NetworkPrintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InventoryConfig config;
    config.num_items = 2;
    auto schema = BuildInventory(engine_, config);
    ASSERT_TRUE(schema.ok());
    schema_ = *schema;
  }

  std::string Dump(bool bushy) {
    RootSpec root;
    root.relation = schema_.cnd_monitor_items;
    root.needs_minus = false;
    BuildOptions options;
    if (bushy) options.keep.insert(schema_.threshold);
    auto net = PropagationNetwork::Build({root}, engine_.registry,
                                         engine_.db.catalog(), options);
    EXPECT_TRUE(net.ok());
    return net->ToString(engine_.db.catalog());
  }

  Engine engine_;
  workload::InventorySchema schema_;
};

TEST_F(NetworkPrintTest, FlatDumpShowsFig2Structure) {
  std::string dump = Dump(false);
  // Two levels; all five influents named at level 0.
  EXPECT_NE(dump.find("level 0:"), std::string::npos);
  EXPECT_NE(dump.find("level 1:"), std::string::npos);
  EXPECT_EQ(dump.find("level 2:"), std::string::npos);
  for (const char* influent : {"quantity", "consume_freq", "supplies",
                               "delivery_time", "min_stock"}) {
    EXPECT_NE(dump.find(influent), std::string::npos) << influent;
  }
  // The quantity differential is spelled like the paper's ΔP/Δ+X.
  EXPECT_NE(dump.find("Δ+cnd_monitor_items/Δ+quantity"), std::string::npos)
      << dump;
  // Insertions-only: no negative differentials.
  EXPECT_EQ(dump.find("Δ-cnd_monitor_items"), std::string::npos);
}

TEST_F(NetworkPrintTest, BushyDumpShowsFig1Structure) {
  std::string dump = Dump(true);
  EXPECT_NE(dump.find("level 2:"), std::string::npos);
  EXPECT_NE(dump.find("threshold[derived"), std::string::npos) << dump;
  EXPECT_NE(dump.find("Δ+cnd_monitor_items/Δ+threshold"), std::string::npos);
  EXPECT_NE(dump.find("Δ+threshold/Δ+min_stock"), std::string::npos);
}

TEST_F(NetworkPrintTest, BaseInfluentsListsExactlyTheLeaves) {
  RootSpec root;
  root.relation = schema_.cnd_monitor_items;
  auto net = PropagationNetwork::Build({root}, engine_.registry,
                                       engine_.db.catalog());
  ASSERT_TRUE(net.ok());
  std::vector<RelationId> influents = net->BaseInfluents();
  std::vector<RelationId> expected = {schema_.quantity, schema_.consume_freq,
                                      schema_.supplies,
                                      schema_.delivery_time,
                                      schema_.min_stock};
  std::sort(influents.begin(), influents.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(influents, expected);
}

TEST(ToStringFormsTest, SchemaSignatureAndEvents) {
  Catalog cat;
  TypeId item = *cat.CreateType("item");
  FunctionSignature sig;
  sig.argument_types = {ColumnType{ValueKind::kObject, item}};
  sig.result_types = {ColumnType{ValueKind::kInt, kInvalidTypeId}};
  EXPECT_NE(sig.ToString().find("object<"), std::string::npos);
  EXPECT_NE(sig.ToString().find("int"), std::string::npos);
  EXPECT_NE(sig.ToSchema().ToString().find("int"), std::string::npos);

  RelationId f = *cat.CreateStoredFunction("f", std::move(sig));
  UpdateEvent ev;
  ev.relation = f;
  ev.op = UpdateEvent::Op::kInsert;
  ev.tuple = Tuple{Value(Oid{1, item}), Value(5)};
  EXPECT_EQ(ev.ToString(cat).substr(0, 3), "+(f");
  ev.op = UpdateEvent::Op::kDelete;
  EXPECT_EQ(ev.ToString(cat).substr(0, 3), "-(f");
}

TEST(ToStringFormsTest, StreamOperators) {
  std::ostringstream os;
  os << Value(42) << " " << Tuple{Value(1), Value(2)} << " "
     << DeltaSet({Tuple{Value(1)}}, {}) << " " << Status::NotFound("x");
  EXPECT_EQ(os.str(), "42 (1, 2) <{(1)}, {}> NotFound: x");
}

TEST(ToStringFormsTest, ForeignFunctionsInCatalog) {
  Catalog cat;
  FunctionSignature sig;
  sig.argument_types = {ColumnType{ValueKind::kInt, kInvalidTypeId}};
  sig.result_types = {ColumnType{ValueKind::kInt, kInvalidTypeId}};
  RelationId f = *cat.CreateForeignFunction("sensor", sig);
  EXPECT_TRUE(cat.IsForeign(f));
  EXPECT_FALSE(cat.IsDerived(f));
  EXPECT_EQ(cat.GetBaseRelation(f), nullptr);
  EXPECT_EQ(cat.RelationName(f), "sensor");
  // Name collisions across kinds are rejected.
  EXPECT_FALSE(cat.CreateStoredFunction("sensor", sig).ok());
  EXPECT_FALSE(cat.CreateDerivedFunction("sensor", sig).ok());
  EXPECT_FALSE(cat.CreateForeignFunction("sensor", sig).ok());
}

}  // namespace
}  // namespace deltamon::core
