/// PF-style materialized intermediate views (paper §2 contrast): the
/// propagation results must be identical with and without the
/// MaterializedViewStore, the maintained extents must track the true
/// derived extents across transactions, and the residency counter must
/// reflect the space cost.

#include <random>

#include <gtest/gtest.h>

#include "bench_util/inventory.h"
#include "core/materialized_views.h"
#include "core/network.h"
#include "core/propagator.h"
#include "objectlog/eval.h"

namespace deltamon::core {
namespace {

using workload::BuildInventory;
using workload::InventoryConfig;
using workload::InventorySchema;
using workload::SetFn;

class MaterializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InventoryConfig config;
    config.num_items = 12;
    auto schema = BuildInventory(engine_, config);
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = *schema;

    RootSpec root;
    root.relation = schema_.cnd_monitor_items;
    root.needs_minus = true;  // required for view maintenance
    root.strict = true;
    BuildOptions options;
    options.keep.insert(schema_.threshold);  // bushy: threshold is a node
    auto net = PropagationNetwork::Build({root}, engine_.registry,
                                         engine_.db.catalog(), options);
    ASSERT_TRUE(net.ok()) << net.status().ToString();
    network_ = std::make_unique<PropagationNetwork>(std::move(*net));
    for (RelationId rel : network_->BaseInfluents()) {
      engine_.db.MarkMonitored(rel);
    }
    ASSERT_TRUE(store_.Initialize(*network_, engine_.db, engine_.registry)
                    .ok());
  }

  /// Freshly evaluated extent of a derived relation.
  TupleSet TrueExtent(RelationId rel) {
    objectlog::Evaluator ev(engine_.db, engine_.registry,
                            objectlog::StateContext{});
    TupleSet out;
    EXPECT_TRUE(ev.Evaluate(rel, objectlog::EvalState::kNew, &out).ok());
    return out;
  }

  Engine engine_;
  InventorySchema schema_;
  std::unique_ptr<PropagationNetwork> network_;
  MaterializedViewStore store_;
};

TEST_F(MaterializationTest, InitializePopulatesDerivedNodes) {
  const BaseRelation* threshold = store_.Get(schema_.threshold);
  ASSERT_NE(threshold, nullptr);
  EXPECT_EQ(threshold->size(), 12u);  // one threshold per item
  EXPECT_EQ(threshold->rows(), TrueExtent(schema_.threshold));
  // The condition root is materialized too (empty: all quantities high).
  const BaseRelation* cnd = store_.Get(schema_.cnd_monitor_items);
  ASSERT_NE(cnd, nullptr);
  EXPECT_EQ(cnd->size(), 0u);
  // Base relations are not.
  EXPECT_EQ(store_.Get(schema_.quantity), nullptr);
  EXPECT_GE(store_.ResidentTuples(), 12u);
}

TEST_F(MaterializationTest, PropagationResultsMatchWithAndWithoutViews) {
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[2], 100).ok());
  ASSERT_TRUE(
      SetFn(engine_, schema_.consume_freq, schema_.items[5], 700).ok());
  auto deltas = engine_.db.PendingDeltas();

  Propagator plain(engine_.db, engine_.registry, *network_);
  Propagator with_views(engine_.db, engine_.registry, *network_, &store_);
  auto r1 = plain.Propagate(deltas);
  auto r2 = with_views.Propagate(deltas);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->root_deltas.at(schema_.cnd_monitor_items),
            r2->root_deltas.at(schema_.cnd_monitor_items));
  EXPECT_GT(r2->stats.materialized_resident_tuples, 0u);
}

TEST_F(MaterializationTest, ViewsTrackTrueExtentsAcrossWaves) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<size_t> pick(0, schema_.items.size() - 1);
  std::uniform_int_distribution<int64_t> value(0, 300);
  Propagator propagator(engine_.db, engine_.registry, *network_, &store_);
  for (int wave = 0; wave < 20; ++wave) {
    for (int u = 0; u < 3; ++u) {
      RelationId fn = (u % 3 == 0)   ? schema_.quantity
                      : (u % 3 == 1) ? schema_.consume_freq
                                     : schema_.min_stock;
      ASSERT_TRUE(SetFn(engine_, fn, schema_.items[pick(rng)], value(rng))
                      .ok());
    }
    auto deltas = engine_.db.TakePendingDeltas();
    ASSERT_TRUE(propagator.Propagate(deltas).ok());
    ASSERT_TRUE(engine_.db.Commit().ok());
    // After each wave the maintained extents equal fresh evaluation.
    ASSERT_EQ(store_.Get(schema_.threshold)->rows(),
              TrueExtent(schema_.threshold))
        << "wave " << wave;
    ASSERT_EQ(store_.Get(schema_.cnd_monitor_items)->rows(),
              TrueExtent(schema_.cnd_monitor_items))
        << "wave " << wave;
  }
}

TEST_F(MaterializationTest, ApplyIsIdempotentOnDuplicates) {
  const BaseRelation* threshold = store_.Get(schema_.threshold);
  Tuple existing = *threshold->rows().begin();
  DeltaSet dup({existing}, {});
  ASSERT_TRUE(store_.Apply(schema_.threshold, dup).ok());
  EXPECT_EQ(threshold->size(), 12u);
  // Applying to an unmaterialized relation is a no-op.
  EXPECT_TRUE(store_.Apply(schema_.quantity, dup).ok());
}

// Through the rule manager: SetMaterializeIntermediates must not change
// observable rule behavior.
TEST(RuleManagerMaterializationTest, SameFiringsWithMaterializedViews) {
  for (bool materialize : {false, true}) {
    Engine engine;
    InventoryConfig config;
    config.num_items = 15;
    auto schema = BuildInventory(engine, config);
    ASSERT_TRUE(schema.ok());
    core::BuildOptions options;
    options.keep.insert(schema->threshold);
    engine.rules.SetNetworkOptions(options);
    engine.rules.SetMaterializeIntermediates(materialize);

    std::vector<uint64_t> fired;
    auto rule = engine.rules.CreateRule(
        "monitor_items", schema->cnd_monitor_items,
        [&fired](Database&, const Tuple&, const std::vector<Tuple>& items) {
          for (const Tuple& t : items) fired.push_back(t[0].AsObject().id);
          return Status::OK();
        });
    ASSERT_TRUE(rule.ok());
    ASSERT_TRUE(engine.rules.Activate(*rule).ok());

    ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[3], 90).ok());
    ASSERT_TRUE(engine.db.Commit().ok());
    ASSERT_TRUE(
        SetFn(engine, schema->consume_freq, schema->items[7], 800).ok());
    ASSERT_TRUE(engine.db.Commit().ok());
    // Revert item 7's trigger, then re-trigger: strict semantics refires.
    ASSERT_TRUE(
        SetFn(engine, schema->consume_freq, schema->items[7], 20).ok());
    ASSERT_TRUE(engine.db.Commit().ok());
    ASSERT_TRUE(
        SetFn(engine, schema->consume_freq, schema->items[7], 800).ok());
    ASSERT_TRUE(engine.db.Commit().ok());

    std::vector<uint64_t> expected = {schema->items[3].id,
                                      schema->items[7].id,
                                      schema->items[7].id};
    EXPECT_EQ(fired, expected) << "materialize=" << materialize;
    if (materialize) {
      EXPECT_GT(engine.rules.last_check()
                    .propagation.materialized_resident_tuples,
                0u);
    }
  }
}

}  // namespace
}  // namespace deltamon::core
