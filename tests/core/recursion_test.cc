/// Linear recursion (paper §5 footnote 1: the algorithm "can be extended
/// to handle linear recursion by revisiting nodes below and using fixed
/// point techniques"): transitive closure as the canonical recursive view.
/// Covers fixpoint evaluation in both states, incremental propagation of
/// edge insertions (semi-naive) and deletions (DRed-style: candidates
/// pruned by the §7.2 rederivability filter), rules over reachability in
/// every monitor mode, and a randomized equivalence sweep.

#include <random>

#include <gtest/gtest.h>

#include "core/network.h"
#include "core/propagator.h"
#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon {
namespace {

using objectlog::Clause;
using objectlog::EvalState;
using objectlog::Literal;
using objectlog::Term;

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

/// edge(x,y) base; tc(x,y) <- edge(x,y) | edge(x,z), tc(z,y).
class TransitiveClosureFixture {
 public:
  TransitiveClosureFixture() {
    Catalog& cat = engine_.db.catalog();
    edge_ = *cat.CreateStoredFunction(
        "edge", FunctionSignature{{IntCol()}, {IntCol()}});
    tc_ = *cat.CreateDerivedFunction(
        "tc", FunctionSignature{{}, {IntCol(), IntCol()}});
    {
      Clause base;
      base.head_relation = tc_;
      base.num_vars = 2;
      base.head_args = {Term::Var(0), Term::Var(1)};
      base.body = {Literal::Relation(edge_, {Term::Var(0), Term::Var(1)})};
      EXPECT_TRUE(engine_.registry.Define(tc_, std::move(base), cat).ok());
    }
    {
      Clause step;
      step.head_relation = tc_;
      step.num_vars = 3;
      step.head_args = {Term::Var(0), Term::Var(2)};
      step.body = {Literal::Relation(edge_, {Term::Var(0), Term::Var(1)}),
                   Literal::Relation(tc_, {Term::Var(1), Term::Var(2)})};
      EXPECT_TRUE(engine_.registry.Define(tc_, std::move(step), cat).ok());
    }
    engine_.db.MarkMonitored(edge_);
  }

  TupleSet EvalTc(EvalState state = EvalState::kNew) {
    objectlog::StateContext ctx;
    auto deltas = engine_.db.PendingDeltas();
    ctx.deltas = &deltas;
    objectlog::Evaluator ev(engine_.db, engine_.registry, ctx);
    TupleSet out;
    EXPECT_TRUE(ev.Evaluate(tc_, state, &out).ok());
    return out;
  }

  Engine engine_;
  RelationId edge_ = kInvalidRelationId;
  RelationId tc_ = kInvalidRelationId;
};

class RecursionEvalTest : public ::testing::Test,
                          public TransitiveClosureFixture {};

TEST_F(RecursionEvalTest, FixpointComputesClosure) {
  for (auto [a, b] : {std::pair{1, 2}, {2, 3}, {3, 4}}) {
    ASSERT_TRUE(engine_.db.Insert(edge_, T(a, b)).ok());
  }
  EXPECT_EQ(EvalTc(), (TupleSet{T(1, 2), T(2, 3), T(3, 4), T(1, 3), T(2, 4),
                                T(1, 4)}));
}

TEST_F(RecursionEvalTest, CyclicGraphTerminates) {
  ASSERT_TRUE(engine_.db.Insert(edge_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(edge_, T(2, 1)).ok());
  EXPECT_EQ(EvalTc(), (TupleSet{T(1, 2), T(2, 1), T(1, 1), T(2, 2)}));
}

TEST_F(RecursionEvalTest, OldStateClosureViaRollback) {
  ASSERT_TRUE(engine_.db.Insert(edge_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Insert(edge_, T(2, 3)).ok());
  EXPECT_EQ(EvalTc(EvalState::kNew),
            (TupleSet{T(1, 2), T(2, 3), T(1, 3)}));
  EXPECT_EQ(EvalTc(EvalState::kOld), (TupleSet{T(1, 2)}));
}

TEST_F(RecursionEvalTest, PointQueriesOnRecursiveRelation) {
  ASSERT_TRUE(engine_.db.Insert(edge_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(edge_, T(2, 3)).ok());
  objectlog::Evaluator ev(engine_.db, engine_.registry,
                          objectlog::StateContext{});
  EXPECT_TRUE(*ev.Derivable(tc_, EvalState::kNew, T(1, 3)));
  EXPECT_FALSE(*ev.Derivable(tc_, EvalState::kNew, T(3, 1)));
  // Bound-prefix probe: everything reachable from 1.
  ScanPattern pattern(2);
  pattern[0] = Value(1);
  TupleSet out;
  ASSERT_TRUE(ev.Probe(tc_, EvalState::kNew, pattern, &out).ok());
  EXPECT_EQ(out, (TupleSet{T(1, 2), T(1, 3)}));
}

class RecursionPropagationTest : public ::testing::Test,
                                 public TransitiveClosureFixture {
 protected:
  Result<core::PropagationResult> Run() {
    core::RootSpec root{tc_, true, true};
    auto net = core::PropagationNetwork::Build({root}, engine_.registry,
                                               engine_.db.catalog());
    if (!net.ok()) return net.status();
    network_ = std::make_unique<core::PropagationNetwork>(std::move(*net));
    core::Propagator prop(engine_.db, engine_.registry, *network_);
    return prop.Propagate(engine_.db.PendingDeltas());
  }
  std::unique_ptr<core::PropagationNetwork> network_;
};

TEST_F(RecursionPropagationTest, NetworkHasSelfEdges) {
  core::RootSpec root{tc_, true, true};
  auto net = core::PropagationNetwork::Build({root}, engine_.registry,
                                             engine_.db.catalog());
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  size_t self_edges = 0;
  for (const auto& diff : net->differentials()) {
    if (diff.target == *&tc_ && diff.influent == tc_) ++self_edges;
  }
  // One tc occurrence in the step clause × 2 polarities.
  EXPECT_EQ(self_edges, 2u);
  EXPECT_EQ(net->node(tc_)->level, 1);
}

TEST_F(RecursionPropagationTest, InsertedEdgeBridgesTwoChains) {
  // 1->2 and 3->4 exist; inserting 2->3 creates 1->3, 1->4, 2->4, 2->3.
  ASSERT_TRUE(engine_.db.Insert(edge_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(edge_, T(3, 4)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Insert(edge_, T(2, 3)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->root_deltas.at(tc_),
            DeltaSet({T(2, 3), T(1, 3), T(2, 4), T(1, 4)}, {}));
}

TEST_F(RecursionPropagationTest, DeletingBridgeCascades) {
  for (auto [a, b] : {std::pair{1, 2}, {2, 3}, {3, 4}}) {
    ASSERT_TRUE(engine_.db.Insert(edge_, T(a, b)).ok());
  }
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Delete(edge_, T(2, 3)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->root_deltas.at(tc_),
            DeltaSet({}, {T(2, 3), T(1, 3), T(2, 4), T(1, 4)}));
}

TEST_F(RecursionPropagationTest, DeletionWithAlternatePathIsFiltered) {
  // Diamond: 1->2->4 and 1->3->4. Deleting 2->4 keeps 1->4 derivable.
  for (auto [a, b] :
       {std::pair{1, 2}, {2, 4}, {1, 3}, {3, 4}}) {
    ASSERT_TRUE(engine_.db.Insert(edge_, T(a, b)).ok());
  }
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Delete(edge_, T(2, 4)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok());
  // Only (2,4) disappears; (1,4) survives via 3.
  EXPECT_EQ(result->root_deltas.at(tc_), DeltaSet({}, {T(2, 4)}));
  EXPECT_GE(result->stats.filtered_minus, 1u);
}

TEST_F(RecursionPropagationTest, CycleInsertionAndRemoval) {
  ASSERT_TRUE(engine_.db.Insert(edge_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  // Close the cycle.
  ASSERT_TRUE(engine_.db.Insert(edge_, T(2, 1)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->root_deltas.at(tc_),
            DeltaSet({T(2, 1), T(1, 1), T(2, 2)}, {}));
  ASSERT_TRUE(engine_.db.Commit().ok());
  // Reopen it.
  ASSERT_TRUE(engine_.db.Delete(edge_, T(2, 1)).ok());
  result = Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->root_deltas.at(tc_),
            DeltaSet({}, {T(2, 1), T(1, 1), T(2, 2)}));
}

/// Randomized equivalence: propagation over random edge churn must equal
/// the naive closure diff.
class RecursionPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RecursionPropertyTest, PropagationEqualsClosureDiff) {
  TransitiveClosureFixture fix;
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int64_t> node(0, 6);
  // Seed graph.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fix.engine_.db.Insert(fix.edge_, T(node(rng), node(rng)))
                    .ok());
  }
  ASSERT_TRUE(fix.engine_.db.Commit().ok());

  core::RootSpec root{fix.tc_, true, true};
  auto net = core::PropagationNetwork::Build(
      {root}, fix.engine_.registry, fix.engine_.db.catalog());
  ASSERT_TRUE(net.ok());
  core::Propagator prop(fix.engine_.db, fix.engine_.registry, *net);

  for (int tx = 0; tx < 15; ++tx) {
    TupleSet before = fix.EvalTc();
    std::uniform_int_distribution<int> count(1, 4);
    int ops = count(rng);
    for (int i = 0; i < ops; ++i) {
      if (rng() % 2 == 0) {
        ASSERT_TRUE(fix.engine_.db.Insert(fix.edge_,
                                          T(node(rng), node(rng)))
                        .ok());
      } else {
        const BaseRelation* rel =
            fix.engine_.db.catalog().GetBaseRelation(fix.edge_);
        if (!rel->rows().empty()) {
          Tuple victim = *rel->rows().begin();
          ASSERT_TRUE(fix.engine_.db.Delete(fix.edge_, victim).ok());
        }
      }
    }
    TupleSet after = fix.EvalTc();
    auto deltas = fix.engine_.db.TakePendingDeltas();
    auto result = prop.Propagate(deltas);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->root_deltas.at(fix.tc_), DiffStates(before, after))
        << "tx " << tx << " seed " << GetParam();
    ASSERT_TRUE(fix.engine_.db.Commit().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecursionPropertyTest,
                         ::testing::Range(0u, 10u));

/// Rules over reachability, in every monitor mode: page when a critical
/// node becomes unreachable from the root.
class ReachabilityRuleTest : public ::testing::TestWithParam<rules::MonitorMode> {};

TEST_P(ReachabilityRuleTest, FiresOnConnectivityChanges) {
  TransitiveClosureFixture fix;
  Engine& engine = fix.engine_;
  engine.rules.SetMode(GetParam());
  Catalog& cat = engine.db.catalog();
  // reachable_from_root(y) <- tc(0, y)
  RelationId cond = *cat.CreateDerivedFunction(
      "cnd_reach", FunctionSignature{{}, {IntCol()}});
  Clause c;
  c.head_relation = cond;
  c.num_vars = 1;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(fix.tc_,
                              {Term::Const(Value(0)), Term::Var(0)})};
  ASSERT_TRUE(engine.registry.Define(cond, std::move(c), cat).ok());

  std::vector<int64_t> reached;
  auto rule = engine.rules.CreateRule(
      "now_reachable", cond,
      [&reached](Database&, const Tuple&, const std::vector<Tuple>& xs) {
        for (const Tuple& x : xs) reached.push_back(x[0].AsInt());
        return Status::OK();
      });
  ASSERT_TRUE(rule.ok());
  ASSERT_TRUE(engine.rules.Activate(*rule).ok());

  ASSERT_TRUE(engine.db.Insert(fix.edge_, T(0, 1)).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  EXPECT_EQ(reached, (std::vector<int64_t>{1}));
  // Extending the chain: 2 becomes newly reachable (via recursion).
  ASSERT_TRUE(engine.db.Insert(fix.edge_, T(1, 2)).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  EXPECT_EQ(reached, (std::vector<int64_t>{1, 2}));
  // Cutting and restoring the first hop: 1 and 2 both re-fire.
  ASSERT_TRUE(engine.db.Delete(fix.edge_, T(0, 1)).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  ASSERT_TRUE(engine.db.Insert(fix.edge_, T(0, 1)).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  EXPECT_EQ(reached, (std::vector<int64_t>{1, 2, 1, 2}));
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ReachabilityRuleTest,
    ::testing::Values(rules::MonitorMode::kIncremental,
                      rules::MonitorMode::kNaive,
                      rules::MonitorMode::kHybrid),
    [](const ::testing::TestParamInfo<rules::MonitorMode>& info) {
      switch (info.param) {
        case rules::MonitorMode::kIncremental:
          return "Incremental";
        case rules::MonitorMode::kNaive:
          return "Naive";
        case rules::MonitorMode::kHybrid:
          return "Hybrid";
      }
      return "Unknown";
    });

/// Stratification: recursion through negation is rejected.
TEST(RecursionErrorsTest, NegationThroughRecursionRejected) {
  Engine engine;
  Catalog& cat = engine.db.catalog();
  RelationId e = *cat.CreateStoredFunction(
      "e", FunctionSignature{{IntCol()}, {IntCol()}});
  RelationId v = *cat.CreateDerivedFunction(
      "v", FunctionSignature{{}, {IntCol(), IntCol()}});
  Clause c;
  c.head_relation = v;
  c.num_vars = 2;
  c.head_args = {Term::Var(0), Term::Var(1)};
  c.body = {Literal::Relation(e, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(v, {Term::Var(0), Term::Var(1)},
                              /*negated=*/true)};
  ASSERT_TRUE(engine.registry.Define(v, std::move(c), cat).ok());
  core::RootSpec root{v, true, true};
  auto net = core::PropagationNetwork::Build({root}, engine.registry, cat);
  EXPECT_EQ(net.status().code(), StatusCode::kUnimplemented);
  objectlog::Evaluator ev(engine.db, engine.registry,
                          objectlog::StateContext{});
  TupleSet out;
  EXPECT_EQ(ev.Evaluate(v, objectlog::EvalState::kNew, &out).code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace deltamon
