#include "core/lineage.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "storage/catalog.h"

namespace deltamon::core {
namespace {

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }

Tuple T(int64_t a) { return Tuple{Value(a)}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

/// Two base relations feeding one derived relation — enough topology to
/// exercise every Export shape.
class LineageTest : public ::testing::Test {
 protected:
  LineageTest() {
    q_ = *catalog_.CreateStoredFunction(
        "q", FunctionSignature{{IntCol()}, {IntCol()}});
    r_ = *catalog_.CreateStoredFunction(
        "r", FunctionSignature{{IntCol()}, {IntCol()}});
    cnd_ = *catalog_.CreateDerivedFunction(
        "cnd", FunctionSignature{{}, {IntCol()}});
  }

  Catalog catalog_;
  RelationId q_ = kInvalidRelationId;
  RelationId r_ = kInvalidRelationId;
  RelationId cnd_ = kInvalidRelationId;
};

TEST_F(LineageTest, FindReturnsNullUntilRecorded) {
  WaveLineage lineage;
  EXPECT_TRUE(lineage.empty());
  EXPECT_EQ(lineage.Find(q_, true, T(1, 2)), nullptr);
  lineage.AddBase(q_, true, T(1, 2));
  ASSERT_NE(lineage.Find(q_, true, T(1, 2)), nullptr);
  EXPECT_TRUE(lineage.Find(q_, true, T(1, 2))->base);
  // The polarity is part of the key: Δ− of the same row is a different
  // Δ-tuple.
  EXPECT_EQ(lineage.Find(q_, false, T(1, 2)), nullptr);
}

TEST_F(LineageTest, AddParentDropsExactDuplicates) {
  WaveLineage lineage;
  WaveLineage::Parent parent{q_, true, T(1, 2), "Δcnd/Δ+q"};
  lineage.AddParent(cnd_, true, T(1), parent);
  lineage.AddParent(cnd_, true, T(1), parent);
  ASSERT_NE(lineage.Find(cnd_, true, T(1)), nullptr);
  EXPECT_EQ(lineage.Find(cnd_, true, T(1))->parents.size(), 1u);
  // Same row via a different differential is a distinct derivation edge.
  lineage.AddParent(cnd_, true, T(1),
                    WaveLineage::Parent{q_, true, T(1, 2), "Δcnd/Δ+r"});
  EXPECT_EQ(lineage.Find(cnd_, true, T(1))->parents.size(), 2u);
}

TEST_F(LineageTest, MergeUnionsEntriesAndDedupesParents) {
  WaveLineage a;
  a.AddParent(cnd_, true, T(1),
              WaveLineage::Parent{q_, true, T(1, 2), "Δcnd/Δ+q"});
  WaveLineage b;
  b.AddParent(cnd_, true, T(1),
              WaveLineage::Parent{q_, true, T(1, 2), "Δcnd/Δ+q"});
  b.AddParent(cnd_, true, T(1),
              WaveLineage::Parent{r_, true, T(1, 3), "Δcnd/Δ+r"});
  b.AddBase(q_, true, T(1, 2));
  a.Merge(std::move(b));
  ASSERT_NE(a.Find(cnd_, true, T(1)), nullptr);
  EXPECT_EQ(a.Find(cnd_, true, T(1))->parents.size(), 2u);
  ASSERT_NE(a.Find(q_, true, T(1, 2)), nullptr);
  EXPECT_TRUE(a.Find(q_, true, T(1, 2))->base);
  EXPECT_EQ(a.size(), 2u);
}

TEST_F(LineageTest, MergePreservesBaseFlagOfExistingEntry) {
  WaveLineage a;
  a.AddBase(q_, true, T(1, 2));
  WaveLineage b;
  b.AddParent(q_, true, T(1, 2),
              WaveLineage::Parent{r_, true, T(9, 9), "Δq/Δ+r"});
  a.Merge(std::move(b));
  ASSERT_NE(a.Find(q_, true, T(1, 2)), nullptr);
  EXPECT_TRUE(a.Find(q_, true, T(1, 2))->base);
  EXPECT_EQ(a.Find(q_, true, T(1, 2))->parents.size(), 1u);
}

TEST_F(LineageTest, ExportRendersBaseLeafAndSortsChildren) {
  WaveLineage lineage;
  lineage.AddBase(q_, true, T(1, 2));
  lineage.AddBase(r_, false, T(1, 3));
  // Insert children in anti-sorted order; Export must reorder by
  // (via, relation name, polarity, row rendering).
  lineage.AddParent(cnd_, true, T(1),
                    WaveLineage::Parent{r_, false, T(1, 3), "Δcnd/Δ-r"});
  lineage.AddParent(cnd_, true, T(1),
                    WaveLineage::Parent{q_, true, T(1, 2), "Δcnd/Δ+q"});

  obs::Json tree = lineage.Export(cnd_, true, T(1), catalog_);
  EXPECT_EQ(tree.Get("relation")->as_string(), "cnd");
  EXPECT_EQ(tree.Get("polarity")->as_string(), "+");
  EXPECT_EQ(tree.Get("row")->as_string(), T(1).ToString());
  EXPECT_FALSE(tree.contains("base"));
  const obs::Json* inputs = tree.Get("inputs");
  ASSERT_NE(inputs, nullptr);
  ASSERT_EQ(inputs->array_items().size(), 2u);
  const obs::Json& first = inputs->at(0);
  const obs::Json& second = inputs->at(1);
  EXPECT_EQ(first.Get("via")->as_string(), "Δcnd/Δ+q");
  EXPECT_EQ(first.Get("relation")->as_string(), "q");
  EXPECT_TRUE(first.Get("base")->as_bool());
  EXPECT_FALSE(first.contains("inputs"));
  EXPECT_EQ(second.Get("via")->as_string(), "Δcnd/Δ-r");
  EXPECT_EQ(second.Get("polarity")->as_string(), "-");
  EXPECT_TRUE(second.Get("base")->as_bool());
}

TEST_F(LineageTest, ExportMarksRowsOutsideTheCaptureAsUnknown) {
  WaveLineage lineage;
  lineage.AddParent(cnd_, true, T(1),
                    WaveLineage::Parent{q_, true, T(1, 2), "Δcnd/Δ+q"});
  obs::Json tree = lineage.Export(cnd_, true, T(1), catalog_);
  const obs::Json* inputs = tree.Get("inputs");
  ASSERT_NE(inputs, nullptr);
  ASSERT_EQ(inputs->array_items().size(), 1u);
  // q's Δ-row was never recorded (capture switched on mid-stream): the
  // child is a truthful dead end, not a fabricated leaf.
  EXPECT_TRUE(inputs->at(0).Get("unknown")->as_bool());
  EXPECT_FALSE(inputs->at(0).contains("base"));

  obs::Json miss = lineage.Export(cnd_, false, T(1), catalog_);
  EXPECT_TRUE(miss.Get("unknown")->as_bool());
}

TEST_F(LineageTest, ExportCutsSelfEdgeCycles) {
  // Recursive rules re-derive their own rows: cnd(1) via cnd(1).
  WaveLineage lineage;
  lineage.AddParent(cnd_, true, T(1),
                    WaveLineage::Parent{cnd_, true, T(1), "Δcnd/Δ+cnd"});
  obs::Json tree = lineage.Export(cnd_, true, T(1), catalog_);
  const obs::Json* inputs = tree.Get("inputs");
  ASSERT_NE(inputs, nullptr);
  ASSERT_EQ(inputs->array_items().size(), 1u);
  EXPECT_TRUE(inputs->at(0).Get("truncated")->as_bool());
  EXPECT_FALSE(inputs->at(0).contains("inputs"));
}

TEST_F(LineageTest, ExportHonoursTheDepthCap) {
  // A chain cnd(0) <- cnd(1) <- ... <- cnd(9), exported with max_depth 3.
  WaveLineage lineage;
  for (int i = 0; i < 9; ++i) {
    lineage.AddParent(
        cnd_, true, T(i),
        WaveLineage::Parent{cnd_, true, T(i + 1), "Δcnd/Δ+cnd"});
  }
  obs::Json tree = lineage.Export(cnd_, true, T(0), catalog_, 3);
  int depth = 0;
  const obs::Json* node = &tree;
  while (node->contains("inputs")) {
    node = &node->Get("inputs")->at(0);
    ++depth;
  }
  EXPECT_EQ(depth, 3);
  EXPECT_TRUE(node->Get("truncated")->as_bool());
}

}  // namespace
}  // namespace deltamon::core
