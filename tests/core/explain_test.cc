/// Explainability surface (paper §1, §8: "one can easily determine which
/// influents actually caused a rule to trigger and if it was triggered by
/// an insertion or a deletion"): TraceEntry::ToString must name target,
/// influent and polarity, and PropagationResult::Explain must isolate the
/// producing differentials of a root.

#include <gtest/gtest.h>

#include <memory>

#include "core/network.h"
#include "core/propagator.h"
#include "objectlog/ast.h"
#include "rules/engine.h"

namespace deltamon {
namespace {

using core::PropagationNetwork;
using core::PropagationResult;
using core::Propagator;
using core::RootSpec;
using core::TraceEntry;
using objectlog::Clause;
using objectlog::Literal;
using objectlog::Term;

Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }

/// The §4.3 running example: p(X, Z) <- q(X, Y) AND r(Y, Z).
class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto q = engine_.db.catalog().CreateStoredFunction(
        "q", FunctionSignature{{IntCol()}, {IntCol()}});
    auto r = engine_.db.catalog().CreateStoredFunction(
        "r", FunctionSignature{{IntCol()}, {IntCol()}});
    auto p = engine_.db.catalog().CreateDerivedFunction(
        "p", FunctionSignature{{}, {IntCol(), IntCol()}});
    ASSERT_TRUE(q.ok() && r.ok() && p.ok());
    q_ = *q;
    r_ = *r;
    p_ = *p;

    Clause c;
    c.head_relation = p_;
    c.num_vars = 3;
    c.var_names = {"X", "Y", "Z"};
    c.head_args = {Term::Var(0), Term::Var(2)};
    c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
              Literal::Relation(r_, {Term::Var(1), Term::Var(2)})};
    ASSERT_TRUE(
        engine_.registry.Define(p_, std::move(c), engine_.db.catalog()).ok());

    // DB_old as in §4.3: q(1,1), r(1,2), r(2,3) — derives p(1,2).
    engine_.db.MarkMonitored(q_);
    engine_.db.MarkMonitored(r_);
    ASSERT_TRUE(engine_.db.Insert(q_, T(1, 1)).ok());
    ASSERT_TRUE(engine_.db.Insert(r_, T(1, 2)).ok());
    ASSERT_TRUE(engine_.db.Insert(r_, T(2, 3)).ok());
    ASSERT_TRUE(engine_.db.Commit().ok());
  }

  Result<PropagationResult> Run(bool needs_minus) {
    RootSpec root;
    root.relation = p_;
    root.needs_minus = needs_minus;
    auto net = PropagationNetwork::Build({root}, engine_.registry,
                                         engine_.db.catalog());
    if (!net.ok()) return net.status();
    network_ = std::make_unique<PropagationNetwork>(std::move(*net));
    Propagator prop(engine_.db, engine_.registry, *network_);
    return prop.Propagate(engine_.db.PendingDeltas());
  }

  Engine engine_;
  RelationId q_ = kInvalidRelationId;
  RelationId r_ = kInvalidRelationId;
  RelationId p_ = kInvalidRelationId;
  std::unique_ptr<PropagationNetwork> network_;
};

TEST_F(ExplainTest, TraceEntryToStringSpellsPaperNotation) {
  TraceEntry e;
  e.target = p_;
  e.influent = q_;
  e.reads_plus = true;
  e.produces_plus = true;
  e.tuples_consumed = 1;
  e.tuples_produced = 2;
  EXPECT_EQ(e.ToString(engine_.db.catalog()), "Δ+p/Δ+q: 1 -> 2 tuples");

  e.influent = r_;
  e.reads_plus = false;
  e.produces_plus = false;
  e.tuples_consumed = 3;
  e.tuples_produced = 0;
  EXPECT_EQ(e.ToString(engine_.db.catalog()), "Δ-p/Δ-r: 3 -> 0 tuples");
}

TEST_F(ExplainTest, ExplainNamesTheProducingInfluents) {
  // §4.3: assert q(1,2) and r(1,4) — both partial differentials produce.
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(1, 4)).ok());
  auto result = Run(/*needs_minus=*/false);
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<TraceEntry> why = result->Explain(p_);
  ASSERT_EQ(why.size(), 2u);
  for (const TraceEntry& e : why) {
    EXPECT_EQ(e.target, p_);
    EXPECT_TRUE(e.influent == q_ || e.influent == r_);
    EXPECT_GT(e.tuples_produced, 0u);
    EXPECT_TRUE(e.produces_plus);
  }
}

TEST_F(ExplainTest, ExplainDropsNonProducingDifferentials) {
  // q(5, 9) joins nothing: the differential executes but produces no
  // tuples, so the explanation is empty while the trace is not.
  ASSERT_TRUE(engine_.db.Insert(q_, T(5, 9)).ok());
  auto result = Run(/*needs_minus=*/false);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_FALSE(result->trace.empty());
  EXPECT_TRUE(result->Explain(p_).empty());
}

TEST_F(ExplainTest, ExplainIdentifiesDeletionPolarity) {
  // Retract r(1,2): p(1,2) disappears, and the explanation must say the
  // trigger was a deletion (Δ- influent, Δ- production).
  ASSERT_TRUE(engine_.db.Delete(r_, T(1, 2)).ok());
  auto result = Run(/*needs_minus=*/true);
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<TraceEntry> why = result->Explain(p_);
  ASSERT_FALSE(why.empty());
  bool saw_minus = false;
  for (const TraceEntry& e : why) {
    if (!e.produces_plus) {
      saw_minus = true;
      EXPECT_EQ(e.influent, r_);
      EXPECT_FALSE(e.reads_plus);
    }
  }
  EXPECT_TRUE(saw_minus);
  EXPECT_TRUE(result->Explain(kInvalidRelationId).empty());
}

/// §7.1 node sharing: s is kept as a shared intermediate node under two
/// roots. Explain must attribute work per target — the shared node's
/// differentials under s, each root's under itself — and repeated calls
/// must return the same entries in the same order (the trace is in
/// execution order, and Explain is a stable filter over it).
TEST_F(ExplainTest, ExplainSeparatesSharedSubexpressionNodesPerRoot) {
  Catalog& cat = engine_.db.catalog();
  auto s = cat.CreateDerivedFunction(
      "s", FunctionSignature{{}, {IntCol(), IntCol()}});
  auto p1 = cat.CreateDerivedFunction(
      "p1", FunctionSignature{{}, {IntCol(), IntCol()}});
  auto p2 = cat.CreateDerivedFunction(
      "p2", FunctionSignature{{}, {IntCol(), IntCol()}});
  ASSERT_TRUE(s.ok() && p1.ok() && p2.ok());

  Clause sc;
  sc.head_relation = *s;
  sc.num_vars = 3;
  sc.head_args = {Term::Var(0), Term::Var(2)};
  sc.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
             Literal::Relation(r_, {Term::Var(1), Term::Var(2)})};
  ASSERT_TRUE(engine_.registry.Define(*s, std::move(sc), cat).ok());
  for (RelationId root : {*p1, *p2}) {
    Clause c;
    c.head_relation = root;
    c.num_vars = 2;
    c.head_args = {Term::Var(0), Term::Var(1)};
    c.body = {Literal::Relation(*s, {Term::Var(0), Term::Var(1)})};
    ASSERT_TRUE(engine_.registry.Define(root, std::move(c), cat).ok());
  }

  core::BuildOptions options;
  options.keep = {*s};
  RootSpec spec1{*p1, /*needs_minus=*/false, /*strict=*/false};
  RootSpec spec2{*p2, /*needs_minus=*/false, /*strict=*/false};
  auto net = PropagationNetwork::Build({spec1, spec2}, engine_.registry,
                                       cat, options);
  ASSERT_TRUE(net.ok()) << net.status();
  ASSERT_NE(net->node(*s), nullptr) << "s must survive as a shared node";

  ASSERT_TRUE(engine_.db.Insert(q_, T(7, 1)).ok());  // joins r(1,2)
  Propagator prop(engine_.db, engine_.registry, *net);
  auto result = prop.Propagate(engine_.db.PendingDeltas());
  ASSERT_TRUE(result.ok()) << result.status();

  for (RelationId root : {*p1, *p2}) {
    std::vector<TraceEntry> why = result->Explain(root);
    ASSERT_FALSE(why.empty());
    for (const TraceEntry& e : why) {
      EXPECT_EQ(e.target, root);
      EXPECT_EQ(e.influent, *s) << "roots read the shared node, not q/r";
    }
  }
  // The shared node's own work is attributed once, to s.
  EXPECT_FALSE(result->Explain(*s).empty());

  // Stable ordering: two walks over the same result are identical.
  auto first = result->Explain(*p1);
  auto second = result->Explain(*p1);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].ToString(cat), second[i].ToString(cat));
  }
}

/// Linear recursion puts a cycle in the network (tc depends on itself).
/// Explain over the fixpoint's trace must terminate and stay stable no
/// matter how many self-edge rounds executed.
TEST_F(ExplainTest, ExplainHandlesCyclicRecursiveNetworks) {
  Catalog& cat = engine_.db.catalog();
  auto edge = cat.CreateStoredFunction(
      "edge", FunctionSignature{{IntCol()}, {IntCol()}});
  auto tc = cat.CreateDerivedFunction(
      "tc", FunctionSignature{{}, {IntCol(), IntCol()}});
  ASSERT_TRUE(edge.ok() && tc.ok());
  {
    Clause base;
    base.head_relation = *tc;
    base.num_vars = 2;
    base.head_args = {Term::Var(0), Term::Var(1)};
    base.body = {Literal::Relation(*edge, {Term::Var(0), Term::Var(1)})};
    ASSERT_TRUE(engine_.registry.Define(*tc, std::move(base), cat).ok());
  }
  {
    Clause step;
    step.head_relation = *tc;
    step.num_vars = 3;
    step.head_args = {Term::Var(0), Term::Var(2)};
    step.body = {Literal::Relation(*edge, {Term::Var(0), Term::Var(1)}),
                 Literal::Relation(*tc, {Term::Var(1), Term::Var(2)})};
    ASSERT_TRUE(engine_.registry.Define(*tc, std::move(step), cat).ok());
  }
  engine_.db.MarkMonitored(*edge);

  RootSpec spec{*tc, /*needs_minus=*/false, /*strict=*/false};
  auto net = PropagationNetwork::Build({spec}, engine_.registry, cat);
  ASSERT_TRUE(net.ok()) << net.status();

  // A chain long enough to need several self-edge fixpoint rounds.
  for (int64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(engine_.db.Insert(*edge, T(i, i + 1)).ok());
  }
  Propagator prop(engine_.db, engine_.registry, *net);
  auto result = prop.Propagate(engine_.db.PendingDeltas());
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<TraceEntry> why = result->Explain(*tc);
  ASSERT_FALSE(why.empty());
  for (const TraceEntry& e : why) {
    EXPECT_EQ(e.target, *tc);
    EXPECT_TRUE(e.influent == *edge || e.influent == *tc);
  }
  // Deterministic across calls — no set iteration order leaking through.
  auto again = result->Explain(*tc);
  ASSERT_EQ(why.size(), again.size());
  for (size_t i = 0; i < why.size(); ++i) {
    EXPECT_EQ(why[i].ToString(cat), again[i].ToString(cat));
  }
}

}  // namespace
}  // namespace deltamon
