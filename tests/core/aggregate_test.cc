/// Aggregate views (the paper's §8 "extending the calculus to handle
/// aggregates" future work, implemented as an extension): evaluation of
/// count/sum/min/max group-bys in both states, aggregate nodes in the
/// propagation network with per-affected-group differentials, and rules
/// over aggregate conditions monitored equivalently in every mode.

#include <gtest/gtest.h>

#include "core/network.h"
#include "core/propagator.h"
#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon {
namespace {

using objectlog::AggregateDef;
using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::EvalState;
using objectlog::Literal;
using objectlog::Term;

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
Tuple T(int64_t a) { return Tuple{Value(a)}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

/// trades(desk, amount) with per-desk aggregates.
class AggregateEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trades_ = *engine_.db.catalog().CreateStoredFunction(
        "trades", FunctionSignature{{IntCol()}, {IntCol()}});
    engine_.db.MarkMonitored(trades_);
  }

  RelationId MakeAggregate(const std::string& name, AggregateDef::Func func,
                           std::vector<size_t> group_by = {0}) {
    FunctionSignature sig;
    for (size_t i = 0; i < group_by.size(); ++i) {
      sig.result_types.push_back(IntCol());
    }
    sig.result_types.push_back(IntCol());
    RelationId rel =
        *engine_.db.catalog().CreateDerivedFunction(name, std::move(sig));
    AggregateDef def;
    def.source = trades_;
    def.group_by = std::move(group_by);
    def.value_column = 1;
    def.func = func;
    EXPECT_TRUE(engine_.registry
                    .DefineAggregate(rel, std::move(def),
                                     engine_.db.catalog())
                    .ok());
    return rel;
  }

  TupleSet Eval(RelationId rel, EvalState state = EvalState::kNew) {
    objectlog::StateContext ctx;
    auto deltas = engine_.db.PendingDeltas();
    ctx.deltas = &deltas;
    objectlog::Evaluator ev(engine_.db, engine_.registry, ctx);
    TupleSet out;
    EXPECT_TRUE(ev.Evaluate(rel, state, &out).ok());
    return out;
  }

  Engine engine_;
  RelationId trades_ = kInvalidRelationId;
};

TEST_F(AggregateEvalTest, CountSumMinMaxPerGroup) {
  for (auto [desk, amount] : {std::pair{1, 10}, {1, 30}, {2, 5}}) {
    ASSERT_TRUE(engine_.db.Insert(trades_, T(desk, amount)).ok());
  }
  EXPECT_EQ(Eval(MakeAggregate("cnt", AggregateDef::Func::kCount)),
            (TupleSet{T(1, 2), T(2, 1)}));
  EXPECT_EQ(Eval(MakeAggregate("sum", AggregateDef::Func::kSum)),
            (TupleSet{T(1, 40), T(2, 5)}));
  EXPECT_EQ(Eval(MakeAggregate("min", AggregateDef::Func::kMin)),
            (TupleSet{T(1, 10), T(2, 5)}));
  EXPECT_EQ(Eval(MakeAggregate("max", AggregateDef::Func::kMax)),
            (TupleSet{T(1, 30), T(2, 5)}));
}

TEST_F(AggregateEvalTest, GlobalAggregates) {
  RelationId total =
      MakeAggregate("total", AggregateDef::Func::kSum, /*group_by=*/{});
  RelationId count =
      MakeAggregate("n", AggregateDef::Func::kCount, /*group_by=*/{});
  // Empty source: COUNT yields 0, SUM yields nothing.
  EXPECT_EQ(Eval(count), (TupleSet{T(0)}));
  EXPECT_TRUE(Eval(total).empty());
  ASSERT_TRUE(engine_.db.Insert(trades_, T(1, 10)).ok());
  ASSERT_TRUE(engine_.db.Insert(trades_, T(2, 32)).ok());
  EXPECT_EQ(Eval(count), (TupleSet{T(2)}));
  EXPECT_EQ(Eval(total), (TupleSet{T(42)}));
}

TEST_F(AggregateEvalTest, OldStateAggregation) {
  RelationId sum = MakeAggregate("sum", AggregateDef::Func::kSum);
  ASSERT_TRUE(engine_.db.Insert(trades_, T(1, 10)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Insert(trades_, T(1, 5)).ok());
  EXPECT_EQ(Eval(sum, EvalState::kNew), (TupleSet{T(1, 15)}));
  EXPECT_EQ(Eval(sum, EvalState::kOld), (TupleSet{T(1, 10)}));
}

TEST_F(AggregateEvalTest, ProbeRestrictsToGroup) {
  RelationId sum = MakeAggregate("sum", AggregateDef::Func::kSum);
  for (int d = 0; d < 10; ++d) {
    ASSERT_TRUE(engine_.db.Insert(trades_, T(d, d * 10)).ok());
  }
  objectlog::Evaluator ev(engine_.db, engine_.registry,
                          objectlog::StateContext{});
  ScanPattern pattern(2);
  pattern[0] = Value(3);
  TupleSet out;
  ASSERT_TRUE(ev.Probe(sum, EvalState::kNew, pattern, &out).ok());
  EXPECT_EQ(out, (TupleSet{T(3, 30)}));
}

TEST_F(AggregateEvalTest, DefinitionValidation) {
  Catalog& cat = engine_.db.catalog();
  RelationId a = *cat.CreateDerivedFunction(
      "agg_a", FunctionSignature{{}, {IntCol(), IntCol()}});
  AggregateDef bad;
  bad.source = trades_;
  bad.group_by = {7};  // out of range
  EXPECT_FALSE(
      engine_.registry.DefineAggregate(a, bad, cat).ok());
  bad.group_by = {0};
  bad.value_column = 9;  // out of range
  bad.func = AggregateDef::Func::kSum;
  EXPECT_FALSE(engine_.registry.DefineAggregate(a, bad, cat).ok());
  bad.value_column = 1;
  EXPECT_TRUE(engine_.registry.DefineAggregate(a, bad, cat).ok());
  // Double definition and clause-on-aggregate are rejected.
  EXPECT_FALSE(engine_.registry.DefineAggregate(a, bad, cat).ok());
  Clause c;
  c.head_relation = a;
  c.num_vars = 2;
  c.head_args = {Term::Var(0), Term::Var(1)};
  c.body = {Literal::Relation(trades_, {Term::Var(0), Term::Var(1)})};
  EXPECT_FALSE(engine_.registry.Define(a, std::move(c), cat).ok());
}

TEST_F(AggregateEvalTest, SumTypeErrorSurfaces) {
  RelationId strs = *engine_.db.catalog().CreateStoredFunction(
      "strs", FunctionSignature{{IntCol()},
                                {ColumnType{ValueKind::kString,
                                            kInvalidTypeId}}});
  RelationId sum = *engine_.db.catalog().CreateDerivedFunction(
      "strsum", FunctionSignature{{}, {IntCol(), IntCol()}});
  AggregateDef def;
  def.source = strs;
  def.group_by = {0};
  def.value_column = 1;
  def.func = AggregateDef::Func::kSum;
  ASSERT_TRUE(engine_.registry
                  .DefineAggregate(sum, std::move(def), engine_.db.catalog())
                  .ok());
  ASSERT_TRUE(engine_.db.Insert(strs, Tuple{Value(1), Value("a")}).ok());
  ASSERT_TRUE(engine_.db.Insert(strs, Tuple{Value(1), Value("b")}).ok());
  objectlog::Evaluator ev(engine_.db, engine_.registry,
                          objectlog::StateContext{});
  TupleSet out;
  EXPECT_EQ(ev.Evaluate(sum, EvalState::kNew, &out).code(),
            StatusCode::kTypeError);
}

/// Rule over an aggregate condition, monitored in every mode: alert when a
/// desk's total position exceeds its limit.
class AggregateRuleTest : public ::testing::TestWithParam<rules::MonitorMode> {
 protected:
  void SetUp() override {
    engine_.rules.SetMode(GetParam());
    Catalog& cat = engine_.db.catalog();
    trades_ = *cat.CreateStoredFunction(
        "trades", FunctionSignature{{IntCol()}, {IntCol()}});
    limit_ = *cat.CreateStoredFunction(
        "desk_limit", FunctionSignature{{IntCol()}, {IntCol()}});
    total_ = *cat.CreateDerivedFunction(
        "total_position", FunctionSignature{{}, {IntCol(), IntCol()}});
    AggregateDef def;
    def.source = trades_;
    def.group_by = {0};
    def.value_column = 1;
    def.func = AggregateDef::Func::kSum;
    ASSERT_TRUE(
        engine_.registry.DefineAggregate(total_, std::move(def), cat).ok());

    cond_ = *cat.CreateDerivedFunction(
        "cnd_over_limit", FunctionSignature{{}, {IntCol()}});
    Clause c;
    c.head_relation = cond_;
    c.num_vars = 3;
    c.var_names = {"D", "S", "L"};
    c.head_args = {Term::Var(0)};
    c.body = {Literal::Relation(total_, {Term::Var(0), Term::Var(1)}),
              Literal::Relation(limit_, {Term::Var(0), Term::Var(2)}),
              Literal::Compare(CompareOp::kGt, Term::Var(1), Term::Var(2))};
    ASSERT_TRUE(engine_.registry.Define(cond_, std::move(c), cat).ok());

    auto rule = engine_.rules.CreateRule(
        "over_limit", cond_,
        [this](Database&, const Tuple&, const std::vector<Tuple>& desks) {
          for (const Tuple& d : desks) fired_.push_back(d[0].AsInt());
          return Status::OK();
        });
    ASSERT_TRUE(rule.ok()) << rule.status().ToString();
    ASSERT_TRUE(engine_.rules.Activate(*rule).ok());

    ASSERT_TRUE(engine_.db.Set(limit_, T(1), T(100)).ok());
    ASSERT_TRUE(engine_.db.Set(limit_, T(2), T(50)).ok());
    ASSERT_TRUE(engine_.db.Commit().ok());
  }

  Engine engine_;
  RelationId trades_, limit_, total_, cond_;
  std::vector<int64_t> fired_;
};

TEST_P(AggregateRuleTest, FiresWhenSumCrossesLimit) {
  ASSERT_TRUE(engine_.db.Insert(trades_, T(1, 60)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_TRUE(fired_.empty());  // 60 <= 100
  ASSERT_TRUE(engine_.db.Insert(trades_, T(1, 70)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_, (std::vector<int64_t>{1}));  // 130 > 100
}

TEST_P(AggregateRuleTest, DeletingTradeDropsBelowLimitAndBack) {
  ASSERT_TRUE(engine_.db.Insert(trades_, T(2, 40)).ok());
  ASSERT_TRUE(engine_.db.Insert(trades_, T(2, 30)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_EQ(fired_, (std::vector<int64_t>{2}));  // 70 > 50
  // Unwind one trade: 30 <= 50, condition false.
  ASSERT_TRUE(engine_.db.Delete(trades_, T(2, 40)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_EQ(fired_.size(), 1u);
  // Breach again: strict semantics fires a second time.
  ASSERT_TRUE(engine_.db.Insert(trades_, T(2, 25)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_, (std::vector<int64_t>{2, 2}));  // 55 > 50
}

TEST_P(AggregateRuleTest, UntouchedGroupsDoNotTrigger) {
  ASSERT_TRUE(engine_.db.Insert(trades_, T(1, 150)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_, (std::vector<int64_t>{1}));
  // Desk 2 trades below its limit: nothing more fires.
  ASSERT_TRUE(engine_.db.Insert(trades_, T(2, 10)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_.size(), 1u);
}

TEST_P(AggregateRuleTest, NoNetChangeIsInvisible) {
  ASSERT_TRUE(engine_.db.Insert(trades_, T(1, 150)).ok());
  ASSERT_TRUE(engine_.db.Delete(trades_, T(1, 150)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_TRUE(fired_.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, AggregateRuleTest,
    ::testing::Values(rules::MonitorMode::kIncremental,
                      rules::MonitorMode::kNaive,
                      rules::MonitorMode::kHybrid),
    [](const ::testing::TestParamInfo<rules::MonitorMode>& info) {
      switch (info.param) {
        case rules::MonitorMode::kIncremental:
          return "Incremental";
        case rules::MonitorMode::kNaive:
          return "Naive";
        case rules::MonitorMode::kHybrid:
          return "Hybrid";
      }
      return "Unknown";
    });

/// Network structure for aggregates: one aggregate edge, both Δ sides
/// needed at the source.
TEST(AggregateNetworkTest, AggregateNodeAndEdge) {
  Engine engine;
  Catalog& cat = engine.db.catalog();
  RelationId src = *cat.CreateStoredFunction(
      "src", FunctionSignature{{IntCol()}, {IntCol()}});
  RelationId agg = *cat.CreateDerivedFunction(
      "agg", FunctionSignature{{}, {IntCol(), IntCol()}});
  AggregateDef def;
  def.source = src;
  def.group_by = {0};
  def.value_column = 1;
  def.func = AggregateDef::Func::kMax;
  ASSERT_TRUE(engine.registry.DefineAggregate(agg, std::move(def), cat).ok());
  RelationId cond = *cat.CreateDerivedFunction(
      "cond", FunctionSignature{{}, {IntCol()}});
  Clause c;
  c.head_relation = cond;
  c.num_vars = 2;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(agg, {Term::Var(0), Term::Var(1)}),
            Literal::Compare(CompareOp::kGt, Term::Var(1),
                             Term::Const(Value(10)))};
  ASSERT_TRUE(engine.registry.Define(cond, std::move(c), cat).ok());

  core::RootSpec root{cond, false, false};  // even insertions-only...
  auto net = core::PropagationNetwork::Build({root}, engine.registry, cat);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const core::NetworkNode* agg_node = net->node(agg);
  ASSERT_NE(agg_node, nullptr);
  EXPECT_NE(agg_node->aggregate, nullptr);
  EXPECT_EQ(agg_node->level, 1);
  EXPECT_EQ(agg_node->in_edges.size(), 1u);
  // ...forces both polarities at the aggregate's source (a deletion can
  // lower the MAX).
  const core::NetworkNode* src_node = net->node(src);
  EXPECT_TRUE(src_node->needs_plus);
  EXPECT_TRUE(src_node->needs_minus);
  EXPECT_NE(net->ToString(cat).find("[aggregate]"), std::string::npos);
}

/// The classic hard case for incremental aggregation: deleting the current
/// MAX must re-derive the runner-up.
TEST(AggregateMaxDeletionTest, DeletingMaxFindsRunnerUp) {
  Engine engine;
  Catalog& cat = engine.db.catalog();
  RelationId src = *cat.CreateStoredFunction(
      "src", FunctionSignature{{IntCol()}, {IntCol()}});
  RelationId agg = *cat.CreateDerivedFunction(
      "maxv", FunctionSignature{{}, {IntCol(), IntCol()}});
  AggregateDef def;
  def.source = src;
  def.group_by = {0};
  def.value_column = 1;
  def.func = AggregateDef::Func::kMax;
  ASSERT_TRUE(engine.registry.DefineAggregate(agg, std::move(def), cat).ok());
  RelationId cond = *cat.CreateDerivedFunction(
      "cond", FunctionSignature{{}, {IntCol(), IntCol()}});
  Clause c;
  c.head_relation = cond;
  c.num_vars = 2;
  c.head_args = {Term::Var(0), Term::Var(1)};
  c.body = {Literal::Relation(agg, {Term::Var(0), Term::Var(1)})};
  ASSERT_TRUE(engine.registry.Define(cond, std::move(c), cat).ok());
  engine.db.MarkMonitored(src);

  ASSERT_TRUE(engine.db.Insert(src, T(1, 10)).ok());
  ASSERT_TRUE(engine.db.Insert(src, T(1, 30)).ok());
  ASSERT_TRUE(engine.db.Commit().ok());

  core::RootSpec root{cond, true, true};
  auto net = core::PropagationNetwork::Build({root}, engine.registry, cat);
  ASSERT_TRUE(net.ok());
  ASSERT_TRUE(engine.db.Delete(src, T(1, 30)).ok());
  core::Propagator prop(engine.db, engine.registry, *net);
  auto result = prop.Propagate(engine.db.PendingDeltas());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // MAX drops from 30 to 10: (1,30) out, (1,10) in.
  EXPECT_EQ(result->root_deltas.at(cond),
            DeltaSet({T(1, 10)}, {T(1, 30)}));
}

/// Aggregates compose: a global MAX over the per-desk SUM view.
TEST(NestedAggregateTest, MaxOfPerGroupSums) {
  Engine engine;
  Catalog& cat = engine.db.catalog();
  RelationId trades = *cat.CreateStoredFunction(
      "trades", FunctionSignature{{IntCol()}, {IntCol()}});
  RelationId sums = *cat.CreateDerivedFunction(
      "desk_sums", FunctionSignature{{}, {IntCol(), IntCol()}});
  AggregateDef sum_def;
  sum_def.source = trades;
  sum_def.group_by = {0};
  sum_def.value_column = 1;
  sum_def.func = AggregateDef::Func::kSum;
  ASSERT_TRUE(engine.registry.DefineAggregate(sums, sum_def, cat).ok());
  RelationId peak = *cat.CreateDerivedFunction(
      "peak_exposure", FunctionSignature{{}, {IntCol()}});
  AggregateDef max_def;
  max_def.source = sums;
  max_def.group_by = {};
  max_def.value_column = 1;
  max_def.func = AggregateDef::Func::kMax;
  ASSERT_TRUE(engine.registry.DefineAggregate(peak, max_def, cat).ok());
  engine.db.MarkMonitored(trades);

  ASSERT_TRUE(engine.db.Insert(trades, T(1, 100)).ok());
  ASSERT_TRUE(engine.db.Insert(trades, T(1, 50)).ok());
  ASSERT_TRUE(engine.db.Insert(trades, T(2, 120)).ok());
  objectlog::Evaluator ev(engine.db, engine.registry,
                          objectlog::StateContext{});
  TupleSet out;
  ASSERT_TRUE(ev.Evaluate(peak, EvalState::kNew, &out).ok());
  EXPECT_EQ(out, (TupleSet{Tuple{Value(150)}}));  // max(150, 120)

  // And it propagates: a rule over the nested aggregate.
  RelationId cond = *cat.CreateDerivedFunction(
      "cnd_peak", FunctionSignature{{}, {IntCol()}});
  Clause c;
  c.head_relation = cond;
  c.num_vars = 1;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(peak, {Term::Var(0)}),
            Literal::Compare(CompareOp::kGt, Term::Var(0),
                             Term::Const(Value(200)))};
  ASSERT_TRUE(engine.registry.Define(cond, std::move(c), cat).ok());
  ASSERT_TRUE(engine.db.Commit().ok());

  core::RootSpec root{cond, true, true};
  auto net = core::PropagationNetwork::Build({root}, engine.registry, cat);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  // Chain: trades(0) -> desk_sums(1) -> peak_exposure(2) -> cnd_peak(3).
  EXPECT_EQ(net->node(peak)->level, 2);
  ASSERT_TRUE(engine.db.Insert(trades, T(2, 180)).ok());  // desk 2: 300
  core::Propagator prop(engine.db, engine.registry, *net);
  auto result = prop.Propagate(engine.db.PendingDeltas());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->root_deltas.at(cond),
            DeltaSet({Tuple{Value(300)}}, {}));
}

}  // namespace
}  // namespace deltamon
