#include <gtest/gtest.h>

#include "bench_util/inventory.h"
#include "core/network.h"
#include "core/propagator.h"
#include "objectlog/ast.h"
#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon {
namespace {

using core::BuildOptions;
using core::PropagationNetwork;
using core::PropagationResult;
using core::Propagator;
using core::RootSpec;
using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::Literal;
using objectlog::Term;

Tuple T(int64_t a) { return Tuple{Value(a)}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }

/// The paper's §4.3 / §4.4 running example:
///   p(X, Z) <- q(X, Y) AND r(Y, Z)
class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto q = engine_.db.catalog().CreateStoredFunction(
        "q", FunctionSignature{{IntCol()}, {IntCol()}});
    auto r = engine_.db.catalog().CreateStoredFunction(
        "r", FunctionSignature{{IntCol()}, {IntCol()}});
    auto p = engine_.db.catalog().CreateDerivedFunction(
        "p", FunctionSignature{{}, {IntCol(), IntCol()}});
    ASSERT_TRUE(q.ok() && r.ok() && p.ok());
    q_ = *q;
    r_ = *r;
    p_ = *p;

    Clause c;
    c.head_relation = p_;
    c.num_vars = 3;
    c.var_names = {"X", "Y", "Z"};
    c.head_args = {Term::Var(0), Term::Var(2)};
    c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
              Literal::Relation(r_, {Term::Var(1), Term::Var(2)})};
    ASSERT_TRUE(
        engine_.registry.Define(p_, std::move(c), engine_.db.catalog()).ok());

    // DB_old: q(1,1), r(1,2), r(2,3) — derives p(1,2).
    engine_.db.MarkMonitored(q_);
    engine_.db.MarkMonitored(r_);
    ASSERT_TRUE(engine_.db.Insert(q_, T(1, 1)).ok());
    ASSERT_TRUE(engine_.db.Insert(r_, T(1, 2)).ok());
    ASSERT_TRUE(engine_.db.Insert(r_, T(2, 3)).ok());
    ASSERT_TRUE(engine_.db.Commit().ok());
  }

  Result<PropagationResult> Run(bool needs_minus, bool strict = true) {
    RootSpec root;
    root.relation = p_;
    root.needs_minus = needs_minus;
    root.strict = strict;
    auto net = PropagationNetwork::Build({root}, engine_.registry,
                                         engine_.db.catalog());
    if (!net.ok()) return net.status();
    network_ = std::make_unique<PropagationNetwork>(std::move(*net));
    Propagator prop(engine_.db, engine_.registry, *network_);
    return prop.Propagate(engine_.db.PendingDeltas());
  }

  Engine engine_;
  RelationId q_ = kInvalidRelationId;
  RelationId r_ = kInvalidRelationId;
  RelationId p_ = kInvalidRelationId;
  std::unique_ptr<PropagationNetwork> network_;
};

// §4.3: assert q(1,2), assert r(1,4) — the paper derives
//   Δp/Δ+q = <{(1,3)},{}>, Δp/Δ+r = <{(1,4)},{}> and
//   Δp = <{(1,3),(1,4)}, {}>.
TEST_F(PaperExampleTest, Section43PositiveDifferentials) {
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(1, 4)).ok());
  auto result = Run(/*needs_minus=*/false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DeltaSet& dp = result->root_deltas.at(p_);
  EXPECT_EQ(dp, DeltaSet({T(1, 3), T(1, 4)}, {}));
}

// §4.4: assert q(1,2), assert r(1,4), retract r(1,2), retract r(2,3) —
// the paper derives Δp = <{(1,4)}, {(1,2)}>.
TEST_F(PaperExampleTest, Section44PositiveAndNegativeDifferentials) {
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(1, 4)).ok());
  ASSERT_TRUE(engine_.db.Delete(r_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Delete(r_, T(2, 3)).ok());
  auto result = Run(/*needs_minus=*/true);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DeltaSet& dp = result->root_deltas.at(p_);
  EXPECT_EQ(dp, DeltaSet({T(1, 4)}, {T(1, 2)}));
}

// The paper §4.4 warns: without evaluating q in its OLD state the negative
// differential would wrongly produce (1,3) (via the new fact q(1,2) joined
// with the retracted r(2,3)).
TEST_F(PaperExampleTest, Section44OldStateAvoidsSpuriousDeletion) {
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(1, 4)).ok());
  ASSERT_TRUE(engine_.db.Delete(r_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Delete(r_, T(2, 3)).ok());
  auto result = Run(/*needs_minus=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->root_deltas.at(p_).minus().contains(T(1, 3)));
}

// A deletion whose tuple is still derivable through another witness must
// not propagate (§7.2: under-reaction is unacceptable).
TEST_F(PaperExampleTest, StillDerivableDeletionFiltered) {
  // Second witness for p(1,2): q(1,5), r(5,2).
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 5)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(5, 2)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  // Now retract the original witness path r(1,2): p(1,2) stays derivable.
  ASSERT_TRUE(engine_.db.Delete(r_, T(1, 2)).ok());
  auto result = Run(/*needs_minus=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->root_deltas.at(p_).minus().empty());
  EXPECT_GE(result->stats.filtered_minus, 1u);
}

// Strict semantics drops insertions whose instance was already derivable
// in the old state.
TEST_F(PaperExampleTest, StrictFilterDropsAlreadyTrueInsertion) {
  // p(1,2) already derivable; add a second witness q(1,9), r(9,2).
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 9)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(9, 2)).ok());
  auto strict = Run(/*needs_minus=*/false, /*strict=*/true);
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->root_deltas.at(p_).plus().empty());
  EXPECT_GE(strict->stats.filtered_plus, 1u);

  // Nervous semantics lets the over-approximation through.
  auto nervous = Run(/*needs_minus=*/false, /*strict=*/false);
  ASSERT_TRUE(nervous.ok());
  EXPECT_TRUE(nervous->root_deltas.at(p_).plus().contains(T(1, 2)));
}

// No changes to any influent: every differential is skipped.
TEST_F(PaperExampleTest, EmptyTransactionSkipsEverything) {
  auto result = Run(/*needs_minus=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->root_deltas.at(p_).empty());
  EXPECT_EQ(result->stats.differentials_executed, 0u);
}

// Only q changes: only the Δq-side differentials execute — the point of
// *partial* differencing (paper §1).
TEST_F(PaperExampleTest, OnlyAffectedDifferentialsExecute) {
  ASSERT_TRUE(engine_.db.Insert(q_, T(2, 2)).ok());
  auto result = Run(/*needs_minus=*/true);
  ASSERT_TRUE(result.ok());
  for (const core::TraceEntry& e : result->trace) {
    EXPECT_EQ(e.influent, q_);
  }
  EXPECT_EQ(result->root_deltas.at(p_), DeltaSet({T(2, 3)}, {}));
  EXPECT_GE(result->stats.differentials_skipped, 2u);
}

// --- Network topology ----------------------------------------------------

TEST(NetworkTest, FlatInventoryNetworkHasFiveInfluents) {
  Engine engine;
  workload::InventoryConfig config;
  config.num_items = 3;
  auto schema = workload::BuildInventory(engine, config);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();

  RootSpec root;
  root.relation = schema->cnd_monitor_items;
  root.needs_minus = false;
  auto net = PropagationNetwork::Build({root}, engine.registry,
                                       engine.db.catalog());
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  // Full expansion (fig. 2): the condition node directly over the five
  // stored influents, one positive differential each.
  EXPECT_EQ(net->BaseInfluents().size(), 5u);
  EXPECT_EQ(net->levels().size(), 2u);
  EXPECT_EQ(net->differentials().size(), 5u);
  for (const auto& diff : net->differentials()) {
    EXPECT_TRUE(diff.produces_plus);
    EXPECT_TRUE(diff.reads_plus);
  }
}

TEST(NetworkTest, NodeSharingKeepsThresholdAsIntermediateNode) {
  Engine engine;
  workload::InventoryConfig config;
  config.num_items = 3;
  auto schema = workload::BuildInventory(engine, config);
  ASSERT_TRUE(schema.ok());

  RootSpec root;
  root.relation = schema->cnd_monitor_items;
  BuildOptions options;
  options.keep.insert(schema->threshold);
  auto net = PropagationNetwork::Build({root}, engine.registry,
                                       engine.db.catalog(), options);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  // §7.1: threshold becomes a node; the network is bushy with 3 levels.
  EXPECT_EQ(net->levels().size(), 3u);
  const core::NetworkNode* threshold = net->node(schema->threshold);
  ASSERT_NE(threshold, nullptr);
  EXPECT_FALSE(threshold->is_base);
  EXPECT_EQ(threshold->level, 1);
  // The condition has 2 direct influents (quantity, threshold); threshold
  // has 4 (consume_freq, supplies, delivery_time, min_stock).
  EXPECT_EQ(net->node(schema->cnd_monitor_items)->in_edges.size(), 4u);
  EXPECT_EQ(threshold->in_edges.size(), 8u);
}

TEST(NetworkTest, NegatedOccurrenceSwapsDeltaSigns) {
  Engine engine;
  auto a = engine.db.catalog().CreateStoredFunction(
      "a", FunctionSignature{{IntCol()}, {}});
  auto b = engine.db.catalog().CreateStoredFunction(
      "b", FunctionSignature{{IntCol()}, {}});
  auto v = engine.db.catalog().CreateDerivedFunction(
      "v", FunctionSignature{{}, {IntCol()}});
  ASSERT_TRUE(a.ok() && b.ok() && v.ok());
  Clause c;
  c.head_relation = *v;
  c.num_vars = 1;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(*a, {Term::Var(0)}),
            Literal::Relation(*b, {Term::Var(0)}, /*negated=*/true)};
  ASSERT_TRUE(
      engine.registry.Define(*v, std::move(c), engine.db.catalog()).ok());

  RootSpec root;
  root.relation = *v;
  root.needs_minus = true;
  auto net = PropagationNetwork::Build({root}, engine.registry,
                                       engine.db.catalog());
  ASSERT_TRUE(net.ok());
  // Δ(~b) = <Δ−b, Δ+b>: the differential producing Δ+v from b reads Δ−b.
  bool found_plus_from_minus_b = false;
  bool found_minus_from_plus_b = false;
  for (const auto& diff : net->differentials()) {
    if (diff.influent == *b && diff.produces_plus && !diff.reads_plus) {
      found_plus_from_minus_b = true;
    }
    if (diff.influent == *b && !diff.produces_plus && diff.reads_plus) {
      found_minus_from_plus_b = true;
    }
  }
  EXPECT_TRUE(found_plus_from_minus_b);
  EXPECT_TRUE(found_minus_from_plus_b);
}

// --- Negation end-to-end ---------------------------------------------------

class NegationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto a = engine_.db.catalog().CreateStoredFunction(
        "a", FunctionSignature{{IntCol()}, {}});
    auto b = engine_.db.catalog().CreateStoredFunction(
        "b", FunctionSignature{{IntCol()}, {}});
    auto v = engine_.db.catalog().CreateDerivedFunction(
        "v", FunctionSignature{{}, {IntCol()}});
    ASSERT_TRUE(a.ok() && b.ok() && v.ok());
    a_ = *a;
    b_ = *b;
    v_ = *v;
    Clause c;
    c.head_relation = v_;
    c.num_vars = 1;
    c.head_args = {Term::Var(0)};
    c.body = {Literal::Relation(a_, {Term::Var(0)}),
              Literal::Relation(b_, {Term::Var(0)}, /*negated=*/true)};
    ASSERT_TRUE(
        engine_.registry.Define(v_, std::move(c), engine_.db.catalog()).ok());
    engine_.db.MarkMonitored(a_);
    engine_.db.MarkMonitored(b_);
  }

  Result<PropagationResult> Run() {
    RootSpec root;
    root.relation = v_;
    root.needs_minus = true;
    root.strict = true;
    auto net = PropagationNetwork::Build({root}, engine_.registry,
                                         engine_.db.catalog());
    if (!net.ok()) return net.status();
    network_ = std::make_unique<PropagationNetwork>(std::move(*net));
    Propagator prop(engine_.db, engine_.registry, *network_);
    return prop.Propagate(engine_.db.PendingDeltas());
  }

  Engine engine_;
  RelationId a_ = kInvalidRelationId;
  RelationId b_ = kInvalidRelationId;
  RelationId v_ = kInvalidRelationId;
  std::unique_ptr<PropagationNetwork> network_;
};

TEST_F(NegationTest, DeletingBlockerInsertsIntoView) {
  ASSERT_TRUE(engine_.db.Insert(a_, T(1)).ok());
  ASSERT_TRUE(engine_.db.Insert(b_, T(1)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());  // v empty: b(1) blocks
  ASSERT_TRUE(engine_.db.Delete(b_, T(1)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->root_deltas.at(v_), DeltaSet({T(1)}, {}));
}

TEST_F(NegationTest, InsertingBlockerDeletesFromView) {
  ASSERT_TRUE(engine_.db.Insert(a_, T(1)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());  // v = {1}
  ASSERT_TRUE(engine_.db.Insert(b_, T(1)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->root_deltas.at(v_), DeltaSet({}, {T(1)}));
}

TEST_F(NegationTest, InsertIntoAWithNoBlocker) {
  ASSERT_TRUE(engine_.db.Insert(a_, T(7)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->root_deltas.at(v_), DeltaSet({T(7)}, {}));
}

TEST_F(NegationTest, InsertIntoABlockedProducesNothing) {
  ASSERT_TRUE(engine_.db.Insert(b_, T(7)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Insert(a_, T(7)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->root_deltas.at(v_).empty());
}

TEST_F(NegationTest, SimultaneousInsertAAndBlockerB) {
  // a(3) and b(3) inserted in the same transaction: v(3) never true.
  ASSERT_TRUE(engine_.db.Insert(a_, T(3)).ok());
  ASSERT_TRUE(engine_.db.Insert(b_, T(3)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->root_deltas.at(v_).empty());
}

// --- Bushy (node-sharing) propagation matches flat -------------------------

TEST(BushyPropagationTest, SharedThresholdNodeGivesSameRootDelta) {
  for (bool bushy : {false, true}) {
    Engine engine;
    workload::InventoryConfig config;
    config.num_items = 10;
    auto schema = workload::BuildInventory(engine, config);
    ASSERT_TRUE(schema.ok());

    RootSpec root;
    root.relation = schema->cnd_monitor_items;
    root.needs_minus = true;
    root.strict = true;
    BuildOptions options;
    if (bushy) options.keep.insert(schema->threshold);
    auto net = PropagationNetwork::Build({root}, engine.registry,
                                         engine.db.catalog(), options);
    ASSERT_TRUE(net.ok());
    for (RelationId rel : net->BaseInfluents()) engine.db.MarkMonitored(rel);

    // Drop item 4's quantity below threshold (140) and raise item 6's
    // consume_freq so its threshold exceeds the quantity.
    ASSERT_TRUE(
        workload::SetFn(engine, schema->quantity, schema->items[4], 100)
            .ok());
    ASSERT_TRUE(
        workload::SetFn(engine, schema->consume_freq, schema->items[6], 600)
            .ok());
    Propagator prop(engine.db, engine.registry, *net);
    auto result = prop.Propagate(engine.db.PendingDeltas());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    DeltaSet expected({Tuple{Value(schema->items[4])},
                       Tuple{Value(schema->items[6])}},
                      {});
    EXPECT_EQ(result->root_deltas.at(schema->cnd_monitor_items), expected)
        << (bushy ? "bushy" : "flat");
  }
}

}  // namespace
}  // namespace deltamon
