/// Edge cases of the propagation algorithm: multi-root networks with shared
/// substructure, three-level chains, disjunction (union) conditions with
/// the §7.2 union checks, wave-front discarding, and trace/stat details.

#include <gtest/gtest.h>

#include "core/network.h"
#include "core/propagator.h"
#include "rules/engine.h"

namespace deltamon::core {
namespace {

using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::Literal;
using objectlog::Term;

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
Tuple T(int64_t a) { return Tuple{Value(a)}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

/// base b0(x,y); v1(x,y) <- b0(x,y); v2(x) <- v1(x,y), y > 10;
/// roots r1(x) <- v2(x)  and  r2(x) <- v1(x,y) — shared substructure.
class MultiRootFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    b0_ = *engine_.db.catalog().CreateStoredFunction(
        "b0", FunctionSignature{{IntCol()}, {IntCol()}});
    v1_ = Derived("v1", 2);
    v2_ = Derived("v2", 1);
    r1_ = Derived("r1", 1);
    r2_ = Derived("r2", 1);
    Define(v1_, {Term::Var(0), Term::Var(1)},
           {Literal::Relation(b0_, {Term::Var(0), Term::Var(1)})}, 2);
    Define(v2_, {Term::Var(0)},
           {Literal::Relation(v1_, {Term::Var(0), Term::Var(1)}),
            Literal::Compare(CompareOp::kGt, Term::Var(1),
                             Term::Const(Value(10)))},
           2);
    Define(r1_, {Term::Var(0)},
           {Literal::Relation(v2_, {Term::Var(0)})}, 1);
    Define(r2_, {Term::Var(0)},
           {Literal::Relation(v1_, {Term::Var(0), Term::Var(1)})}, 2);
    engine_.db.MarkMonitored(b0_);
  }

  RelationId Derived(const std::string& name, size_t arity) {
    FunctionSignature sig;
    for (size_t i = 0; i < arity; ++i) sig.result_types.push_back(IntCol());
    return *engine_.db.catalog().CreateDerivedFunction(name, std::move(sig));
  }

  void Define(RelationId rel, std::vector<Term> head,
              std::vector<Literal> body, int num_vars) {
    Clause c;
    c.head_relation = rel;
    c.head_args = std::move(head);
    c.body = std::move(body);
    c.num_vars = num_vars;
    ASSERT_TRUE(
        engine_.registry.Define(rel, std::move(c), engine_.db.catalog()).ok());
  }

  Result<PropagationResult> Run(const BuildOptions& options) {
    RootSpec s1{r1_, true, true};
    RootSpec s2{r2_, true, true};
    auto net = PropagationNetwork::Build({s1, s2}, engine_.registry,
                                         engine_.db.catalog(), options);
    if (!net.ok()) return net.status();
    network_ = std::make_unique<PropagationNetwork>(std::move(*net));
    Propagator prop(engine_.db, engine_.registry, *network_);
    return prop.Propagate(engine_.db.PendingDeltas());
  }

  Engine engine_;
  RelationId b0_, v1_, v2_, r1_, r2_;
  std::unique_ptr<PropagationNetwork> network_;
};

TEST_F(MultiRootFixture, BothRootsReceiveDeltas) {
  ASSERT_TRUE(engine_.db.Insert(b0_, T(1, 50)).ok());
  ASSERT_TRUE(engine_.db.Insert(b0_, T(2, 5)).ok());
  auto result = Run({});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // r1 requires y > 10: only x=1. r2 takes everything.
  EXPECT_EQ(result->root_deltas.at(r1_), DeltaSet({T(1)}, {}));
  EXPECT_EQ(result->root_deltas.at(r2_), DeltaSet({T(1), T(2)}, {}));
}

TEST_F(MultiRootFixture, SharedBushySubstructureIsOneNode) {
  BuildOptions options;
  options.keep = {v1_, v2_};
  ASSERT_TRUE(engine_.db.Insert(b0_, T(1, 50)).ok());
  auto result = Run(options);
  ASSERT_TRUE(result.ok());
  // v1 appears once in the network even though both roots reach it.
  EXPECT_EQ(network_->nodes().count(v1_), 1u);
  // Levels: b0=0, v1=1, v2=2, r1=3, r2=2.
  EXPECT_EQ(network_->node(v1_)->level, 1);
  EXPECT_EQ(network_->node(v2_)->level, 2);
  EXPECT_EQ(network_->node(r1_)->level, 3);
  EXPECT_EQ(network_->node(r2_)->level, 2);
  EXPECT_EQ(result->root_deltas.at(r1_), DeltaSet({T(1)}, {}));
  EXPECT_EQ(result->root_deltas.at(r2_), DeltaSet({T(1)}, {}));
}

TEST_F(MultiRootFixture, WaveFrontDiscardsIntermediateDeltas) {
  BuildOptions options;
  options.keep = {v1_, v2_};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine_.db.Insert(b0_, T(i, 50)).ok());
  }
  auto result = Run(options);
  ASSERT_TRUE(result.ok());
  // The wave carried Δv1 (50) and Δv2 (50) but never both plus the roots
  // at once beyond the peak; and the peak is bounded by live Δ-sets, not
  // by materialized views (which are zero here).
  EXPECT_GT(result->stats.peak_wavefront_tuples, 0u);
  EXPECT_LE(result->stats.peak_wavefront_tuples, 200u);
  EXPECT_EQ(result->stats.materialized_resident_tuples, 0u);
}

TEST_F(MultiRootFixture, TraceRecordsPerDifferentialCounts) {
  ASSERT_TRUE(engine_.db.Insert(b0_, T(1, 50)).ok());
  auto result = Run({});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->trace.empty());
  for (const TraceEntry& e : result->trace) {
    EXPECT_EQ(e.influent, b0_);
    EXPECT_EQ(e.tuples_consumed, 1u);
    EXPECT_FALSE(e.ToString(engine_.db.catalog()).empty());
  }
  // Explain() filters per root.
  auto why1 = result->Explain(r1_);
  ASSERT_EQ(why1.size(), 1u);
  EXPECT_TRUE(why1[0].produces_plus);
}

/// Union condition: u(x) <- a(x)  |  u(x) <- b(x) — the §7.2 union checks.
class UnionConditionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = *engine_.db.catalog().CreateStoredFunction(
        "a", FunctionSignature{{IntCol()}, {}});
    b_ = *engine_.db.catalog().CreateStoredFunction(
        "b", FunctionSignature{{IntCol()}, {}});
    u_ = *engine_.db.catalog().CreateDerivedFunction(
        "u", FunctionSignature{{}, {IntCol()}});
    for (RelationId base : {a_, b_}) {
      Clause c;
      c.head_relation = u_;
      c.num_vars = 1;
      c.head_args = {Term::Var(0)};
      c.body = {Literal::Relation(base, {Term::Var(0)})};
      ASSERT_TRUE(
          engine_.registry.Define(u_, std::move(c), engine_.db.catalog())
              .ok());
    }
    engine_.db.MarkMonitored(a_);
    engine_.db.MarkMonitored(b_);
  }

  Result<PropagationResult> Run(bool strict = true) {
    RootSpec root{u_, true, strict};
    auto net = PropagationNetwork::Build({root}, engine_.registry,
                                         engine_.db.catalog());
    if (!net.ok()) return net.status();
    network_ = std::make_unique<PropagationNetwork>(std::move(*net));
    Propagator prop(engine_.db, engine_.registry, *network_);
    return prop.Propagate(engine_.db.PendingDeltas());
  }

  Engine engine_;
  RelationId a_, b_, u_;
  std::unique_ptr<PropagationNetwork> network_;
};

TEST_F(UnionConditionTest, DeletingOneBranchWhileOtherHoldsIsFiltered) {
  ASSERT_TRUE(engine_.db.Insert(a_, T(1)).ok());
  ASSERT_TRUE(engine_.db.Insert(b_, T(1)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  // Remove only the a-branch: u(1) stays true via b.
  ASSERT_TRUE(engine_.db.Delete(a_, T(1)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->root_deltas.at(u_).empty());
  EXPECT_GE(result->stats.filtered_minus, 1u);
}

TEST_F(UnionConditionTest, InsertIntoSecondBranchIsStrictFiltered) {
  ASSERT_TRUE(engine_.db.Insert(a_, T(1)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Insert(b_, T(1)).ok());  // already true via a
  auto strict = Run(true);
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->root_deltas.at(u_).empty());
  auto nervous = Run(false);
  ASSERT_TRUE(nervous.ok());
  EXPECT_EQ(nervous->root_deltas.at(u_).plus().size(), 1u);
}

TEST_F(UnionConditionTest, SwappingBranchesIsNoNetChange) {
  ASSERT_TRUE(engine_.db.Insert(a_, T(1)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  // One transaction: retract from a, assert into b.
  ASSERT_TRUE(engine_.db.Delete(a_, T(1)).ok());
  ASSERT_TRUE(engine_.db.Insert(b_, T(1)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->root_deltas.at(u_).empty());
}

TEST_F(UnionConditionTest, MovingBothBranchesOutDeletes) {
  ASSERT_TRUE(engine_.db.Insert(a_, T(1)).ok());
  ASSERT_TRUE(engine_.db.Insert(b_, T(1)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Delete(a_, T(1)).ok());
  ASSERT_TRUE(engine_.db.Delete(b_, T(1)).ok());
  auto result = Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->root_deltas.at(u_), DeltaSet({}, {T(1)}));
}

/// Self-join condition: two occurrences of the same influent produce one
/// differential per occurrence.
TEST(SelfJoinTest, BothOccurrencesGetDifferentials) {
  Engine engine;
  RelationId e = *engine.db.catalog().CreateStoredFunction(
      "edge", FunctionSignature{{IntCol()}, {IntCol()}});
  RelationId p = *engine.db.catalog().CreateDerivedFunction(
      "path2", FunctionSignature{{}, {IntCol(), IntCol()}});
  Clause c;
  c.head_relation = p;
  c.num_vars = 3;
  c.head_args = {Term::Var(0), Term::Var(2)};
  c.body = {Literal::Relation(e, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(e, {Term::Var(1), Term::Var(2)})};
  ASSERT_TRUE(engine.registry.Define(p, std::move(c),
                                     engine.db.catalog()).ok());
  engine.db.MarkMonitored(e);

  RootSpec root{p, true, true};
  auto net = PropagationNetwork::Build({root}, engine.registry,
                                       engine.db.catalog());
  ASSERT_TRUE(net.ok());
  // 2 occurrences × 2 polarities = 4 differentials.
  EXPECT_EQ(net->differentials().size(), 4u);

  ASSERT_TRUE(engine.db.Insert(e, T(1, 2)).ok());
  ASSERT_TRUE(engine.db.Insert(e, T(2, 3)).ok());
  Propagator prop(engine.db, engine.registry, *net);
  auto result = prop.Propagate(engine.db.PendingDeltas());
  ASSERT_TRUE(result.ok());
  // One new edge pair derives (1,3); both occurrences contribute without
  // duplicating the result (set semantics).
  EXPECT_EQ(result->root_deltas.at(p), DeltaSet({T(1, 3)}, {}));
}

TEST(EmptyNetworkTest, NoRootsMeansEmptyResult) {
  Engine engine;
  auto net = PropagationNetwork::Build({}, engine.registry,
                                       engine.db.catalog());
  ASSERT_TRUE(net.ok());
  Propagator prop(engine.db, engine.registry, *net);
  auto result = prop.Propagate({});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->root_deltas.empty());
}

TEST(NetworkErrorsTest, BaseRelationAsRootRejected) {
  Engine engine;
  RelationId b = *engine.db.catalog().CreateStoredFunction(
      "b", FunctionSignature{{IntCol()}, {}});
  RootSpec root{b, true, true};
  auto net = PropagationNetwork::Build({root}, engine.registry,
                                       engine.db.catalog());
  EXPECT_FALSE(net.ok());
}

}  // namespace
}  // namespace deltamon::core
