/// Bench regression gating: CompareReports must flag benchmarks that got
/// slower than the threshold allows, tolerate noise inside it, collapse
/// repetitions to their best time, and survive schema mismatches loudly.

#include "bench_util/diff.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/report.h"

namespace deltamon::bench {
namespace {

/// A minimal valid deltamon.bench.v1 report with the given benchmark
/// timings (possibly repeated names = repetitions).
obs::Json Report(const std::string& name,
                 const std::vector<std::pair<std::string, double>>& benches) {
  obs::Json arr = obs::Json::Array();
  for (const auto& [bench_name, real_time_ns] : benches) {
    obs::Json b = obs::Json::Object();
    b.Set("name", bench_name);
    b.Set("iterations", 100);
    b.Set("real_time_ns", real_time_ns);
    b.Set("cpu_time_ns", real_time_ns);
    b.Set("counters", obs::Json::Object());
    arr.Append(std::move(b));
  }
  return obs::BuildBenchReport(name, std::move(arr), /*wall_time_ns=*/1,
                               obs::MetricsSnapshot{});
}

TEST(BenchDiffTest, IdenticalReportsHaveNoRegression) {
  obs::Json base = Report("fig6", {{"BM_FewChanges/1000", 1e6}});
  auto diff = CompareReports(base, base);
  ASSERT_TRUE(diff.ok()) << diff.status();
  ASSERT_EQ(diff->deltas.size(), 1u);
  EXPECT_FALSE(diff->has_regression());
  EXPECT_DOUBLE_EQ(diff->deltas[0].ratio, 1.0);
}

TEST(BenchDiffTest, FiftyPercentSlowerIsARegression) {
  obs::Json base = Report("fig6", {{"BM_FewChanges/1000", 1e6}});
  obs::Json slow = Report("fig6", {{"BM_FewChanges/1000", 1.5e6}});
  auto diff = CompareReports(base, slow);
  ASSERT_TRUE(diff.ok()) << diff.status();
  ASSERT_EQ(diff->deltas.size(), 1u);
  EXPECT_TRUE(diff->deltas[0].regression);
  EXPECT_TRUE(diff->has_regression());
  EXPECT_NEAR(diff->deltas[0].ratio, 1.5, 1e-9);
  std::string text = FormatDiff(*diff, DiffOptions{});
  EXPECT_NE(text.find("REGRESSION"), std::string::npos) << text;
}

TEST(BenchDiffTest, NoiseInsideTheThresholdIsTolerated) {
  obs::Json base = Report("fig6", {{"BM_FewChanges/1000", 1e6}});
  obs::Json near = Report("fig6", {{"BM_FewChanges/1000", 1.05e6}});
  auto diff = CompareReports(base, near);
  ASSERT_TRUE(diff.ok()) << diff.status();
  EXPECT_FALSE(diff->has_regression());
  EXPECT_FALSE(diff->deltas[0].improvement);
}

TEST(BenchDiffTest, ThresholdIsConfigurable) {
  obs::Json base = Report("fig6", {{"BM_FewChanges/1000", 1e6}});
  obs::Json near = Report("fig6", {{"BM_FewChanges/1000", 1.05e6}});
  DiffOptions tight;
  tight.threshold = 0.01;
  auto diff = CompareReports(base, near, tight);
  ASSERT_TRUE(diff.ok()) << diff.status();
  EXPECT_TRUE(diff->has_regression());
}

TEST(BenchDiffTest, SpeedupsAreMarkedImprovements) {
  obs::Json base = Report("fig6", {{"BM_FewChanges/1000", 2e6}});
  obs::Json fast = Report("fig6", {{"BM_FewChanges/1000", 1e6}});
  auto diff = CompareReports(base, fast);
  ASSERT_TRUE(diff.ok()) << diff.status();
  EXPECT_FALSE(diff->has_regression());
  EXPECT_TRUE(diff->deltas[0].improvement);
}

TEST(BenchDiffTest, RepetitionsCollapseToTheMinimum) {
  // Best-of-N: the 2e6 outlier repetition must not mask or fake a
  // regression — both sides compare at their fastest run.
  obs::Json base = Report(
      "fig6", {{"BM_FewChanges/1000", 1e6}, {"BM_FewChanges/1000", 2e6}});
  obs::Json cur = Report(
      "fig6", {{"BM_FewChanges/1000", 1.9e6}, {"BM_FewChanges/1000", 1.05e6}});
  auto diff = CompareReports(base, cur);
  ASSERT_TRUE(diff.ok()) << diff.status();
  ASSERT_EQ(diff->deltas.size(), 1u);
  EXPECT_NEAR(diff->deltas[0].ratio, 1.05, 1e-9);
  EXPECT_FALSE(diff->has_regression());
}

TEST(BenchDiffTest, DisappearedAndNewBenchmarksAreReportedNotFatal) {
  obs::Json base = Report("fig6", {{"BM_Old", 1e6}, {"BM_Shared", 1e6}});
  obs::Json cur = Report("fig6", {{"BM_Shared", 1e6}, {"BM_New", 1e6}});
  auto diff = CompareReports(base, cur);
  ASSERT_TRUE(diff.ok()) << diff.status();
  EXPECT_FALSE(diff->has_regression());
  ASSERT_EQ(diff->only_baseline.size(), 1u);
  EXPECT_EQ(diff->only_baseline[0], "BM_Old");
  ASSERT_EQ(diff->only_current.size(), 1u);
  EXPECT_EQ(diff->only_current[0], "BM_New");
  std::string text = FormatDiff(*diff, DiffOptions{});
  EXPECT_NE(text.find("missing from current"), std::string::npos) << text;
  EXPECT_NE(text.find("new benchmark"), std::string::npos) << text;
}

TEST(BenchDiffTest, RejectsDocumentsThatAreNotBenchReports) {
  obs::Json junk = obs::Json::Object();
  junk.Set("schema", "something.else");
  auto diff = CompareReports(junk, junk);
  EXPECT_FALSE(diff.ok());
}

TEST(BenchDiffTest, CompareReportFilesRoundTripsThroughDisk) {
  // The acceptance scenario: a committed baseline vs a report hand-edited
  // to be 50% slower must come back as a regression.
  const std::string dir = ::testing::TempDir();
  const std::string base_path = dir + "/BENCH_fig6_base.json";
  const std::string slow_path = dir + "/BENCH_fig6_slow.json";
  obs::Json base = Report("fig6", {{"BM_FewChanges/1000", 1e6}});
  obs::Json slow = Report("fig6", {{"BM_FewChanges/1000", 1.5e6}});
  ASSERT_TRUE(obs::WriteTextFile(base_path, base.Dump()).ok());
  ASSERT_TRUE(obs::WriteTextFile(slow_path, slow.Dump()).ok());

  auto diff = CompareReportFiles(base_path, slow_path);
  ASSERT_TRUE(diff.ok()) << diff.status();
  EXPECT_TRUE(diff->has_regression());

  auto missing = CompareReportFiles(base_path, dir + "/nope.json");
  EXPECT_FALSE(missing.ok());
}

TEST(BenchDiffTest, FormatDiffJsonEmitsOneObjectPerRow) {
  obs::Json base = Report("fig6", {{"BM_Stable/1", 1e6},
                                   {"BM_Slower/1", 1e6},
                                   {"BM_Gone/1", 1e6}});
  obs::Json cur = Report("fig6", {{"BM_Stable/1", 1.02e6},
                                  {"BM_Slower/1", 2e6},
                                  {"BM_New/1", 1e6}});
  auto diff = CompareReports(base, cur);
  ASSERT_TRUE(diff.ok()) << diff.status();

  obs::Json rows = FormatDiffJson(*diff);
  ASSERT_TRUE(rows.is_array());
  ASSERT_EQ(rows.size(), 4u);  // 2 matched + 1 missing + 1 new

  const obs::Json& stable = rows.at(0);
  EXPECT_EQ(stable.Get("name")->as_string(), "BM_Stable/1");
  EXPECT_EQ(stable.Get("verdict")->as_string(), "ok");
  EXPECT_NEAR(stable.Get("delta_pct")->as_double(), 2.0, 0.01);
  EXPECT_DOUBLE_EQ(stable.Get("baseline_ns")->as_double(), 1e6);

  const obs::Json& slower = rows.at(1);
  EXPECT_EQ(slower.Get("verdict")->as_string(), "regression");
  EXPECT_NEAR(slower.Get("delta_pct")->as_double(), 100.0, 0.01);

  EXPECT_EQ(rows.at(2).Get("name")->as_string(), "BM_Gone/1");
  EXPECT_EQ(rows.at(2).Get("verdict")->as_string(), "missing");
  EXPECT_EQ(rows.at(3).Get("name")->as_string(), "BM_New/1");
  EXPECT_EQ(rows.at(3).Get("verdict")->as_string(), "new");

  // The array is valid JSON end to end (what CI consumes from stdout).
  auto parsed = obs::Json::Parse(rows.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
}

TEST(BenchDiffTest, FormatDiffJsonMarksImprovements) {
  obs::Json base = Report("fig6", {{"BM_Faster/1", 2e6}});
  obs::Json cur = Report("fig6", {{"BM_Faster/1", 1e6}});
  auto diff = CompareReports(base, cur);
  ASSERT_TRUE(diff.ok()) << diff.status();
  obs::Json rows = FormatDiffJson(*diff);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.at(0).Get("verdict")->as_string(), "improved");
  EXPECT_NEAR(rows.at(0).Get("delta_pct")->as_double(), -50.0, 0.01);
}

}  // namespace
}  // namespace deltamon::bench
