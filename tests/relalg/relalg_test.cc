/// Correctness of the fig. 4 partial-differencing table: every operator's
/// partial differentials computed verbatim from the table, checked against
/// the paper's definitions on hand-built inputs; plus randomized property
/// tests asserting that the corrected incremental delta equals the true
/// state diff for arbitrary inputs.

#include "relalg/relalg.h"

#include <random>

#include <gtest/gtest.h>

namespace deltamon::relalg {
namespace {

Tuple T(int64_t a) { return Tuple{Value(a)}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

TEST(RelalgOpsTest, SelectProjectBasics) {
  TupleSet q = {T(1, 10), T(2, 20), T(3, 30)};
  auto big = [](const Tuple& t) { return t[1].AsInt() >= 20; };
  EXPECT_EQ(Select(q, big), (TupleSet{T(2, 20), T(3, 30)}));
  EXPECT_EQ(Project(q, {0}), (TupleSet{T(1), T(2), T(3)}));
  // Projection deduplicates (set semantics).
  EXPECT_EQ(Project({T(1, 10), T(1, 20)}, {0}), (TupleSet{T(1)}));
}

TEST(RelalgOpsTest, SetOperators) {
  TupleSet q = {T(1), T(2), T(3)};
  TupleSet r = {T(2), T(3), T(4)};
  EXPECT_EQ(Union(q, r), (TupleSet{T(1), T(2), T(3), T(4)}));
  EXPECT_EQ(Difference(q, r), (TupleSet{T(1)}));
  EXPECT_EQ(Intersect(q, r), (TupleSet{T(2), T(3)}));
}

TEST(RelalgOpsTest, ProductAndJoin) {
  TupleSet q = {T(1, 2), T(5, 6)};
  TupleSet r = {T(2, 9)};
  EXPECT_EQ(Product(q, r).size(), 2u);
  // Join q.col1 = r.col0.
  TupleSet j = Join(q, r, {{1, 0}});
  ASSERT_EQ(j.size(), 1u);
  EXPECT_TRUE(j.contains(Tuple{Value(1), Value(2), Value(2), Value(9)}));
  // Empty join columns degenerate to the product.
  EXPECT_EQ(Join(q, r, {}), Product(q, r));
}

// --- Fig. 4 columns, hand-checked -----------------------------------------

TEST(Fig4Test, SelectColumn) {
  // σ_cond: Δ+P = σ Δ+Q, Δ−P = σ Δ−Q.
  TupleSet q_new = {T(1), T(5)};
  DeltaSet dq({T(5), T(2)}, {T(9)});  // +5,+2 −9 (2 filtered below)
  auto cond = [](const Tuple& t) { return t[0].AsInt() >= 5; };
  auto p = PartialsSelect(q_new, dq, cond);
  EXPECT_EQ(p.plus_from_q, (TupleSet{T(5)}));
  EXPECT_EQ(p.minus_from_q, (TupleSet{T(9)}));
  EXPECT_TRUE(p.plus_from_r.empty());
  EXPECT_TRUE(p.minus_from_r.empty());
}

TEST(Fig4Test, ProjectColumn) {
  TupleSet q_new = {T(1, 10), T(2, 20)};
  DeltaSet dq({T(2, 20)}, {T(2, 15)});
  auto p = PartialsProject(q_new, dq, {0});
  EXPECT_EQ(p.plus_from_q, (TupleSet{T(2)}));
  // Raw column over-approximates: (2) still projects from (2,20).
  EXPECT_EQ(p.minus_from_q, (TupleSet{T(2)}));
  // The corrected net delta removes it (§7.2).
  EXPECT_TRUE(DeltaProject(q_new, dq, {0}).minus().empty());
}

TEST(Fig4Test, UnionColumns) {
  // Q ∪ R: Δ+Q − R_old | Δ+R − Q_old | Δ−Q − R | Δ−R − Q.
  TupleSet q_new = {T(1), T(2)};
  TupleSet r_new = {T(2), T(3)};
  DeltaSet dq({T(1)}, {T(4)});  // Q was {2,4}
  DeltaSet dr({T(3)}, {});      // R was {2}
  auto p = PartialsUnion(q_new, r_new, dq, dr);
  EXPECT_EQ(p.plus_from_q, (TupleSet{T(1)}));   // 1 ∉ R_old={2}
  EXPECT_EQ(p.plus_from_r, (TupleSet{T(3)}));   // 3 ∉ Q_old={2,4}
  EXPECT_EQ(p.minus_from_q, (TupleSet{T(4)}));  // 4 ∉ R_new
  EXPECT_TRUE(p.minus_from_r.empty());
}

TEST(Fig4Test, DifferenceColumnsCarryOppositeSigns) {
  // Q − R: an R-deletion INSERTS into P; an R-insertion DELETES from P —
  // exactly as the table prints Δ−R in the Δ+P column.
  TupleSet q_new = {T(1), T(2)};
  TupleSet r_new = {T(9)};
  DeltaSet dq;                  // Q unchanged
  DeltaSet dr({T(9)}, {T(2)});  // R was {2}
  auto p = PartialsDifference(q_new, r_new, dq, dr);
  EXPECT_EQ(p.plus_from_r, (TupleSet{T(2)}));   // Q ∩ Δ−R
  EXPECT_TRUE(p.minus_from_r.empty());          // Q_old ∩ Δ+R = {} (9 ∉ Q)
  DeltaSet net = DeltaDifference(q_new, r_new, dq, dr);
  EXPECT_EQ(net, DeltaSet({T(2)}, {}));
}

TEST(Fig4Test, ProductColumnsUseOldStatesForDeletions) {
  TupleSet q_new = {T(1)};
  TupleSet r_new = {T(7)};
  DeltaSet dq({}, {T(2)});  // Q was {1,2}
  DeltaSet dr;              // R unchanged
  auto p = PartialsProduct(q_new, r_new, dq, dr);
  // Δ−Q × R_old = {2} × {7}.
  EXPECT_EQ(p.minus_from_q, (TupleSet{T(2, 7)}));
  EXPECT_TRUE(p.plus_from_q.empty());
}

TEST(Fig4Test, JoinColumns) {
  TupleSet q_new = {T(1, 2)};
  TupleSet r_new = {T(2, 8)};
  DeltaSet dq({T(1, 2)}, {});
  DeltaSet dr;
  auto p = PartialsJoin(q_new, r_new, {{1, 0}}, dq, dr);
  ASSERT_EQ(p.plus_from_q.size(), 1u);
  EXPECT_TRUE(
      p.plus_from_q.contains(Tuple{Value(1), Value(2), Value(2), Value(8)}));
}

TEST(Fig4Test, IntersectColumns) {
  TupleSet q_new = {T(1), T(2)};
  TupleSet r_new = {T(2)};
  DeltaSet dq({T(2)}, {});  // Q was {1}
  DeltaSet dr;
  auto p = PartialsIntersect(q_new, r_new, dq, dr);
  EXPECT_EQ(p.plus_from_q, (TupleSet{T(2)}));  // Δ+Q ∩ R
  EXPECT_TRUE(p.minus_from_q.empty());
}

// --- Randomized equivalence: corrected delta == true state diff -----------

TupleSet RandomSet(std::mt19937& rng, int64_t domain, size_t max_size,
                   size_t arity) {
  std::uniform_int_distribution<int64_t> v(0, domain - 1);
  std::uniform_int_distribution<size_t> n(0, max_size);
  TupleSet out;
  size_t count = n(rng);
  for (size_t i = 0; i < count; ++i) {
    std::vector<Value> vals;
    for (size_t a = 0; a < arity; ++a) vals.emplace_back(v(rng));
    out.insert(Tuple(std::move(vals)));
  }
  return out;
}

/// Random (old state, delta) pair with consistent new state.
std::pair<TupleSet, DeltaSet> RandomEvolution(std::mt19937& rng,
                                              int64_t domain, size_t size,
                                              size_t arity) {
  TupleSet old_state = RandomSet(rng, domain, size, arity);
  TupleSet new_state = old_state;
  std::uniform_int_distribution<int64_t> v(0, domain - 1);
  std::uniform_int_distribution<int> steps(0, 8);
  DeltaSet delta;
  int count = steps(rng);
  for (int i = 0; i < count; ++i) {
    std::vector<Value> vals;
    for (size_t a = 0; a < arity; ++a) vals.emplace_back(v(rng));
    Tuple t(std::move(vals));
    if (rng() % 2 == 0) {
      if (new_state.insert(t).second) delta.ApplyInsert(t);
    } else {
      if (new_state.erase(t) > 0) delta.ApplyDelete(t);
    }
  }
  return {std::move(new_state), std::move(delta)};
}

class RelalgPropertyTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override { rng_.seed(GetParam()); }
  std::mt19937 rng_;
};

TEST_P(RelalgPropertyTest, SelectDeltaMatchesDiff) {
  auto [q_new, dq] = RandomEvolution(rng_, 12, 10, 1);
  TupleSet q_old = RollbackToOldState(q_new, dq);
  auto cond = [](const Tuple& t) { return t[0].AsInt() % 3 != 0; };
  EXPECT_EQ(DeltaSelect(q_new, dq, cond),
            DiffStates(Select(q_old, cond), Select(q_new, cond)));
}

TEST_P(RelalgPropertyTest, ProjectDeltaMatchesDiff) {
  auto [q_new, dq] = RandomEvolution(rng_, 6, 10, 2);
  TupleSet q_old = RollbackToOldState(q_new, dq);
  EXPECT_EQ(DeltaProject(q_new, dq, {0}),
            DiffStates(Project(q_old, {0}), Project(q_new, {0})));
}

TEST_P(RelalgPropertyTest, UnionDeltaMatchesDiff) {
  auto [q_new, dq] = RandomEvolution(rng_, 10, 8, 1);
  auto [r_new, dr] = RandomEvolution(rng_, 10, 8, 1);
  TupleSet q_old = RollbackToOldState(q_new, dq);
  TupleSet r_old = RollbackToOldState(r_new, dr);
  EXPECT_EQ(DeltaUnionOp(q_new, r_new, dq, dr),
            DiffStates(Union(q_old, r_old), Union(q_new, r_new)));
}

TEST_P(RelalgPropertyTest, DifferenceDeltaMatchesDiff) {
  auto [q_new, dq] = RandomEvolution(rng_, 10, 8, 1);
  auto [r_new, dr] = RandomEvolution(rng_, 10, 8, 1);
  TupleSet q_old = RollbackToOldState(q_new, dq);
  TupleSet r_old = RollbackToOldState(r_new, dr);
  EXPECT_EQ(DeltaDifference(q_new, r_new, dq, dr),
            DiffStates(Difference(q_old, r_old), Difference(q_new, r_new)));
}

TEST_P(RelalgPropertyTest, ProductDeltaMatchesDiff) {
  auto [q_new, dq] = RandomEvolution(rng_, 8, 6, 1);
  auto [r_new, dr] = RandomEvolution(rng_, 8, 6, 1);
  TupleSet q_old = RollbackToOldState(q_new, dq);
  TupleSet r_old = RollbackToOldState(r_new, dr);
  EXPECT_EQ(DeltaProduct(q_new, r_new, dq, dr),
            DiffStates(Product(q_old, r_old), Product(q_new, r_new)));
}

TEST_P(RelalgPropertyTest, JoinDeltaMatchesDiff) {
  auto [q_new, dq] = RandomEvolution(rng_, 5, 8, 2);
  auto [r_new, dr] = RandomEvolution(rng_, 5, 8, 2);
  TupleSet q_old = RollbackToOldState(q_new, dq);
  TupleSet r_old = RollbackToOldState(r_new, dr);
  JoinColumns on = {{1, 0}};
  EXPECT_EQ(DeltaJoin(q_new, r_new, on, dq, dr),
            DiffStates(Join(q_old, r_old, on), Join(q_new, r_new, on)));
}

TEST_P(RelalgPropertyTest, IntersectDeltaMatchesDiff) {
  auto [q_new, dq] = RandomEvolution(rng_, 10, 8, 1);
  auto [r_new, dr] = RandomEvolution(rng_, 10, 8, 1);
  TupleSet q_old = RollbackToOldState(q_new, dq);
  TupleSet r_old = RollbackToOldState(r_new, dr);
  EXPECT_EQ(DeltaIntersect(q_new, r_new, dq, dr),
            DiffStates(Intersect(q_old, r_old), Intersect(q_new, r_new)));
}

/// Raw fig. 4 columns never under-approximate: every true change appears
/// in some column (completeness — the §7.2 corrections only remove).
TEST_P(RelalgPropertyTest, RawPartialsAreComplete) {
  auto [q_new, dq] = RandomEvolution(rng_, 8, 8, 1);
  auto [r_new, dr] = RandomEvolution(rng_, 8, 8, 1);
  TupleSet q_old = RollbackToOldState(q_new, dq);
  TupleSet r_old = RollbackToOldState(r_new, dr);

  auto check = [](const PartialDifferentials& p, const DeltaSet& truth) {
    DeltaSet raw = p.Combined();
    for (const Tuple& t : truth.plus()) {
      EXPECT_TRUE(raw.plus().contains(t)) << "missing insertion " <<
          t.ToString();
    }
    for (const Tuple& t : truth.minus()) {
      EXPECT_TRUE(raw.minus().contains(t)) << "missing deletion " <<
          t.ToString();
    }
  };
  check(PartialsUnion(q_new, r_new, dq, dr),
        DiffStates(Union(q_old, r_old), Union(q_new, r_new)));
  check(PartialsDifference(q_new, r_new, dq, dr),
        DiffStates(Difference(q_old, r_old), Difference(q_new, r_new)));
  check(PartialsIntersect(q_new, r_new, dq, dr),
        DiffStates(Intersect(q_old, r_old), Intersect(q_new, r_new)));
  check(PartialsProduct(q_new, r_new, dq, dr),
        DiffStates(Product(q_old, r_old), Product(q_new, r_new)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelalgPropertyTest,
                         ::testing::Range(0u, 25u));

}  // namespace
}  // namespace deltamon::relalg
