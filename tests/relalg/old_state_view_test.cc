/// OldStateView: lazy logical-rollback access to a relation's old state
/// (paper fig. 3) — membership, iteration, sizing, and agreement with the
/// materializing RollbackToOldState.

#include <random>

#include <gtest/gtest.h>

#include "relalg/relalg.h"

namespace deltamon::relalg {
namespace {

Tuple T(int64_t a) { return Tuple{Value(a)}; }

TEST(OldStateViewTest, MembershipMatchesDefinition) {
  // new = {1,2,4}; Δ = <+{4}, −{3}>  =>  old = {1,2,3}.
  TupleSet new_state = {T(1), T(2), T(4)};
  DeltaSet delta({T(4)}, {T(3)});
  OldStateView view(new_state, delta);
  EXPECT_TRUE(view.contains(T(1)));
  EXPECT_TRUE(view.contains(T(2)));
  EXPECT_TRUE(view.contains(T(3)));   // deleted this tx: present in OLD
  EXPECT_FALSE(view.contains(T(4)));  // inserted this tx: absent in OLD
  EXPECT_FALSE(view.contains(T(9)));
  EXPECT_EQ(view.size(), 3u);
}

TEST(OldStateViewTest, ForEachEnumeratesExactlyOldState) {
  TupleSet new_state = {T(1), T(2), T(4)};
  DeltaSet delta({T(4)}, {T(3)});
  OldStateView view(new_state, delta);
  TupleSet seen;
  view.ForEach([&seen](const Tuple& t) {
    seen.insert(t);
    return true;
  });
  EXPECT_EQ(seen, RollbackToOldState(new_state, delta));
}

TEST(OldStateViewTest, ForEachEarlyExit) {
  TupleSet new_state = {T(1), T(2), T(3)};
  DeltaSet delta;
  OldStateView view(new_state, delta);
  int visits = 0;
  view.ForEach([&visits](const Tuple&) {
    ++visits;
    return false;  // stop immediately
  });
  EXPECT_EQ(visits, 1);
}

TEST(OldStateViewTest, EmptyDeltaViewsNewStateAsIs) {
  TupleSet new_state = {T(7), T(8)};
  DeltaSet delta;
  OldStateView view(new_state, delta);
  EXPECT_EQ(view.size(), 2u);
  EXPECT_TRUE(view.contains(T(7)));
}

class OldStateViewPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OldStateViewPropertyTest, AgreesWithMaterializedRollback) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int64_t> v(0, 30);
  TupleSet old_state;
  for (int i = 0; i < 20; ++i) old_state.insert(T(v(rng)));
  TupleSet new_state = old_state;
  DeltaSet delta;
  for (int i = 0; i < 15; ++i) {
    Tuple t = T(v(rng));
    if (rng() % 2 == 0) {
      if (new_state.insert(t).second) delta.ApplyInsert(t);
    } else {
      if (new_state.erase(t) > 0) delta.ApplyDelete(t);
    }
  }
  OldStateView view(new_state, delta);
  TupleSet materialized = RollbackToOldState(new_state, delta);
  EXPECT_EQ(view.size(), materialized.size());
  for (int64_t x = 0; x <= 30; ++x) {
    EXPECT_EQ(view.contains(T(x)), materialized.contains(T(x))) << x;
  }
  TupleSet iterated;
  view.ForEach([&iterated](const Tuple& t) {
    iterated.insert(t);
    return true;
  });
  EXPECT_EQ(iterated, materialized);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OldStateViewPropertyTest,
                         ::testing::Range(0u, 10u));

}  // namespace
}  // namespace deltamon::relalg
