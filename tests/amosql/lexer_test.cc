#include "amosql/lexer.h"

#include <gtest/gtest.h>

namespace deltamon::amosql {
namespace {

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Tokenize("create TYPE Item_2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("create"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("type"));  // case-insensitive
  EXPECT_EQ((*tokens)[2].text, "Item_2");       // case-preserved
  EXPECT_FALSE((*tokens)[2].IsKeyword("item_2x"));
}

TEST(LexerTest, InterfaceVariables) {
  auto tokens = Tokenize(":item1, :sup2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInterfaceVar);
  EXPECT_EQ((*tokens)[0].text, "item1");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kComma);
  EXPECT_EQ((*tokens)[2].text, "sup2");
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("5000 2.5 0");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInteger);
  EXPECT_EQ((*tokens)[0].int_value, 5000);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kReal);
  EXPECT_DOUBLE_EQ((*tokens)[1].real_value, 2.5);
  EXPECT_EQ((*tokens)[2].int_value, 0);
}

TEST(LexerTest, Strings) {
  auto tokens = Tokenize("\"hello\" 'world'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "hello");
  EXPECT_EQ((*tokens)[1].text, "world");
}

TEST(LexerTest, OperatorsAndArrow) {
  auto tokens = Tokenize("-> = != <> < <= > >= + - * / ( ) , ;");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kArrow, TokenKind::kEq, TokenKind::kNe,
                TokenKind::kNe, TokenKind::kLt, TokenKind::kLe,
                TokenKind::kGt, TokenKind::kGe, TokenKind::kPlus,
                TokenKind::kMinus, TokenKind::kStar, TokenKind::kSlash,
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kComma,
                TokenKind::kSemicolon, TokenKind::kEnd}));
}

TEST(LexerTest, Comments) {
  auto tokens = Tokenize(
      "a -- line comment\n"
      "b /* block\n comment */ c");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // a b c END
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[2].text, "c");
  EXPECT_EQ((*tokens)[2].line, 3);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("/* unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize(": 5").ok());
  EXPECT_FALSE(Tokenize("99999999999999999999999").ok());
}

TEST(LexerTest, LineTracking) {
  auto tokens = Tokenize("a\nb\n\nc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 4);
}

}  // namespace
}  // namespace deltamon::amosql
