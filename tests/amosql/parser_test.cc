#include "amosql/parser.h"

#include <gtest/gtest.h>

namespace deltamon::amosql {
namespace {

template <typename T>
const T& As(const Statement& stmt) {
  return std::get<T>(stmt.node);
}

TEST(ParserTest, CreateType) {
  auto program = Parse("create type item;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->size(), 1u);
  EXPECT_EQ(As<CreateTypeStmt>((*program)[0]).name, "item");
}

TEST(ParserTest, CreateStoredFunction) {
  auto program = Parse("create function delivery_time(item, supplier)"
                       " -> integer;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& fn = As<CreateFunctionStmt>((*program)[0]);
  EXPECT_EQ(fn.name, "delivery_time");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0].type_name, "item");
  EXPECT_TRUE(fn.params[0].var_name.empty());
  ASSERT_EQ(fn.result_types.size(), 1u);
  EXPECT_EQ(fn.result_types[0], "integer");
  EXPECT_FALSE(fn.body.has_value());
}

TEST(ParserTest, CreateDerivedFunctionWithBody) {
  auto program = Parse(
      "create function threshold(item i) -> integer as\n"
      "  select consume_freq(i) * delivery_time(i, s) + min_stock(i)\n"
      "  for each supplier s where supplies(s) = i;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& fn = As<CreateFunctionStmt>((*program)[0]);
  EXPECT_EQ(fn.params[0].var_name, "i");
  ASSERT_TRUE(fn.body.has_value());
  ASSERT_EQ(fn.body->results.size(), 1u);
  EXPECT_EQ(fn.body->results[0]->kind, Expr::Kind::kArith);
  ASSERT_EQ(fn.body->for_each.size(), 1u);
  EXPECT_EQ(fn.body->for_each[0].type_name, "supplier");
  EXPECT_EQ(fn.body->for_each[0].var_name, "s");
  ASSERT_NE(fn.body->where, nullptr);
  EXPECT_EQ(fn.body->where->kind, Predicate::Kind::kCompare);
}

TEST(ParserTest, CreateRuleWithForEach) {
  auto program = Parse(
      "create rule monitor_items() as\n"
      "  when for each item i where quantity(i) < threshold(i)\n"
      "  do order(i, max_stock(i) - quantity(i));");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& rule = As<CreateRuleStmt>((*program)[0]);
  EXPECT_EQ(rule.name, "monitor_items");
  EXPECT_TRUE(rule.params.empty());
  EXPECT_FALSE(rule.nervous);
  ASSERT_EQ(rule.for_each.size(), 1u);
  EXPECT_EQ(rule.for_each[0].var_name, "i");
  EXPECT_EQ(rule.condition->kind, Predicate::Kind::kCompare);
  EXPECT_EQ(rule.action.kind, RuleActionStmt::Kind::kProcedureCall);
  EXPECT_EQ(rule.action.call->name, "order");
  EXPECT_EQ(rule.action.call->args.size(), 2u);
}

TEST(ParserTest, CreateParameterizedRuleWithSetAction) {
  auto program = Parse(
      "create rule monitor_item(item i) nervous as\n"
      "  when quantity(i) < threshold(i)\n"
      "  do set quantity(i) = max_stock(i);");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& rule = As<CreateRuleStmt>((*program)[0]);
  ASSERT_EQ(rule.params.size(), 1u);
  EXPECT_EQ(rule.params[0].var_name, "i");
  EXPECT_TRUE(rule.nervous);
  EXPECT_TRUE(rule.for_each.empty());
  EXPECT_EQ(rule.action.kind, RuleActionStmt::Kind::kSet);
  EXPECT_EQ(rule.action.set_target->name, "quantity");
}

TEST(ParserTest, CreateInstances) {
  auto program = Parse("create item instances :item1, :item2;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& ci = As<CreateInstancesStmt>((*program)[0]);
  EXPECT_EQ(ci.type_name, "item");
  EXPECT_EQ(ci.interface_vars,
            (std::vector<std::string>{"item1", "item2"}));
}

TEST(ParserTest, UpdateStatements) {
  auto program = Parse(
      "set max_stock(:item1) = 5000;\n"
      "add supplies(:sup1) = :item1;\n"
      "remove supplies(:sup1) = :item1;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->size(), 3u);
  EXPECT_EQ(As<UpdateStmt>((*program)[0]).kind, UpdateStmt::Kind::kSet);
  EXPECT_EQ(As<UpdateStmt>((*program)[1]).kind, UpdateStmt::Kind::kAdd);
  EXPECT_EQ(As<UpdateStmt>((*program)[2]).kind, UpdateStmt::Kind::kRemove);
}

TEST(ParserTest, SelectWithPredicateLogic) {
  auto program = Parse(
      "select i for each item i "
      "where quantity(i) < 100 and (broken(i) or not supplies(:s1) = i);");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& sel = As<SelectStmt>((*program)[0]);
  ASSERT_NE(sel.query.where, nullptr);
  EXPECT_EQ(sel.query.where->kind, Predicate::Kind::kAnd);
  EXPECT_EQ(sel.query.where->right->kind, Predicate::Kind::kOr);
  EXPECT_EQ(sel.query.where->right->right->kind, Predicate::Kind::kNot);
}

TEST(ParserTest, ActivateDeactivate) {
  auto program = Parse("activate monitor_items();\n"
                       "deactivate monitor_item(:item1);");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_FALSE(As<ActivateStmt>((*program)[0]).deactivate);
  const auto& d = As<ActivateStmt>((*program)[1]);
  EXPECT_TRUE(d.deactivate);
  ASSERT_EQ(d.args.size(), 1u);
  EXPECT_EQ(d.args[0]->kind, Expr::Kind::kInterfaceVar);
}

TEST(ParserTest, ShowSlow) {
  auto program = Parse("show slow;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(std::holds_alternative<ShowSlowStmt>((*program)[0].node));
  // The keyword form is exact: `show slow` takes no argument.
  EXPECT_FALSE(Parse("show slow watch_low;").ok());
}

TEST(ParserTest, SetThreads) {
  auto program = Parse("set threads 4;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(As<SetThreadsStmt>((*program)[0]).num_threads, 4);
  program = Parse("SET THREADS 0;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(As<SetThreadsStmt>((*program)[0]).num_threads, 0);
}

TEST(ParserTest, SetOfAFunctionNamedThreadsIsStillAnUpdate) {
  auto program = Parse("set threads(:a) = 2;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(As<UpdateStmt>((*program)[0]).kind, UpdateStmt::Kind::kSet);
}

TEST(ParserTest, SetThreadsRejectsMalformedCounts) {
  EXPECT_FALSE(Parse("set threads -1;").ok());
  EXPECT_FALSE(Parse("set threads two;").ok());
  EXPECT_FALSE(Parse("set threads 2").ok());
}

TEST(ParserTest, SetKernels) {
  auto program = Parse("set kernels on;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(As<SetKernelsStmt>((*program)[0]).on);
  program = Parse("SET KERNELS OFF;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_FALSE(As<SetKernelsStmt>((*program)[0]).on);
}

TEST(ParserTest, SetOfAFunctionNamedKernelsIsStillAnUpdate) {
  auto program = Parse("set kernels(:a) = 2;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(As<UpdateStmt>((*program)[0]).kind, UpdateStmt::Kind::kSet);
}

TEST(ParserTest, SetKernelsRejectsMalformedArguments) {
  EXPECT_FALSE(Parse("set kernels maybe;").ok());
  EXPECT_FALSE(Parse("set kernels;").ok());
  EXPECT_FALSE(Parse("set kernels on").ok());
}

TEST(ParserTest, ShowSettings) {
  auto program = Parse("show settings;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(std::holds_alternative<ShowSettingsStmt>((*program)[0].node));
  EXPECT_FALSE(Parse("show settings verbose;").ok());
}

TEST(ParserTest, CommitRollback) {
  auto program = Parse("commit; rollback;");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(std::holds_alternative<CommitStmt>((*program)[0].node));
  EXPECT_TRUE(std::holds_alternative<RollbackStmt>((*program)[1].node));
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto program = Parse("select 1 + 2 * 3;");
  ASSERT_TRUE(program.ok());
  const auto& sel = As<SelectStmt>((*program)[0]);
  const Expr& e = *sel.query.results[0];
  ASSERT_EQ(e.kind, Expr::Kind::kArith);
  EXPECT_EQ(e.op, objectlog::ArithOp::kAdd);
  EXPECT_EQ(e.rhs->op, objectlog::ArithOp::kMul);
}

TEST(ParserTest, UnaryMinus) {
  auto program = Parse("select -5;");
  ASSERT_TRUE(program.ok());
  const Expr& e = *As<SelectStmt>((*program)[0]).query.results[0];
  ASSERT_EQ(e.kind, Expr::Kind::kArith);
  EXPECT_EQ(e.op, objectlog::ArithOp::kSub);
}

TEST(ParserTest, MultipleResultTypes) {
  auto program =
      Parse("create function coords(item) -> (integer x, integer y);");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(As<CreateFunctionStmt>((*program)[0]).result_types.size(), 2u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("create;").ok());
  EXPECT_FALSE(Parse("create type;").ok());
  EXPECT_FALSE(Parse("create function f() -> ;").ok());
  EXPECT_FALSE(Parse("set 5 = 6;").ok());
  EXPECT_FALSE(Parse("select i for each item i where ;").ok());
  EXPECT_FALSE(Parse("create rule r() as when x < 1 do 5;").ok());
  EXPECT_FALSE(Parse("activate r;").ok());
  EXPECT_FALSE(Parse("select i").ok());  // missing semicolon
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto program = Parse("create type a;\ncreate type\n;");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("line 3"), std::string::npos)
      << program.status().ToString();
}

TEST(ParserTest, AggregateFunctionBody) {
  auto program =
      Parse("create function total(desk d) -> integer as sum trade(d);");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& fn = As<CreateFunctionStmt>((*program)[0]);
  ASSERT_TRUE(fn.aggregate.has_value());
  EXPECT_EQ(fn.aggregate->func, "sum");
  EXPECT_EQ(fn.aggregate->source, "trade");
  EXPECT_EQ(fn.aggregate->args, (std::vector<std::string>{"d"}));
  EXPECT_FALSE(fn.body.has_value());
}

TEST(ParserTest, AggregateFunctionsCaseInsensitive) {
  for (const char* func : {"COUNT", "Sum", "min", "MAX"}) {
    auto program = Parse(std::string("create function f") + func +
                         "(desk d) -> integer as " + func + " trade(d);");
    ASSERT_TRUE(program.ok()) << func;
    const auto& fn = As<CreateFunctionStmt>((*program)[0]);
    ASSERT_TRUE(fn.aggregate.has_value()) << func;
  }
}

TEST(ParserTest, GlobalAggregateHasNoArgs) {
  auto program = Parse("create function n() -> integer as count trade();");
  ASSERT_TRUE(program.ok());
  const auto& fn = As<CreateFunctionStmt>((*program)[0]);
  ASSERT_TRUE(fn.aggregate.has_value());
  EXPECT_TRUE(fn.aggregate->args.empty());
}

}  // namespace
}  // namespace deltamon::amosql
