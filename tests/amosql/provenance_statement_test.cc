#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "amosql/session.h"
#include "obs/flight_recorder.h"
#include "obs/provenance.h"
#include "obs/report.h"
#include "obs/wave_recorder.h"

namespace deltamon::amosql {
namespace {

/// The observability statement family: `set slow_ms`, `set provenance`,
/// `set wave_capture`, `show provenance`, `explain firing`, `dump waves`.
/// The grammar and `set slow_ms` work in every build; the provenance and
/// wave statements refuse cleanly when compiled with DELTAMON_OBS=OFF.
class ObsStatementTest : public ::testing::Test {
 protected:
  ObsStatementTest() {
    obs::GlobalProvenanceLog().Clear();
    obs::GlobalWaveRecorder().Clear();
    session_.RegisterProcedure(
        "note", [this](Database&, const std::vector<Value>& args) {
          fired_.push_back(args[0].AsInt());
          return Status::OK();
        });
    auto r = session_.Execute(
        "create function stock(integer) -> integer;"
        "create rule low_stock() as"
        "  when for each integer k where stock(k) < 3"
        "  do note(k);"
        "activate low_stock();"
        "set stock(1) = 10; set stock(2) = 10; commit;");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }

  ~ObsStatementTest() override {
    obs::GlobalProvenanceLog().set_enabled(false);
    obs::GlobalProvenanceLog().Clear();
    obs::GlobalWaveRecorder().set_enabled(false);
    obs::GlobalWaveRecorder().Clear();
  }

  Result<QueryResult> Exec(const std::string& src) {
    return session_.Execute(src);
  }

  Engine engine_;
  Session session_{engine_};
  std::vector<int64_t> fired_;
};

TEST_F(ObsStatementTest, ParserRejectsMalformedStatements) {
  EXPECT_FALSE(Exec("dump waves;").ok());
  EXPECT_FALSE(Exec("explain firing low_stock 0;").ok());
  EXPECT_FALSE(Exec("set slow_ms;").ok());
  EXPECT_FALSE(Exec("set provenance maybe;").ok());
}

TEST_F(ObsStatementTest, SlowMsWorksInEveryBuild) {
  const uint64_t before = obs::SlowLog::Global().threshold_ns();
  auto r = Exec("set slow_ms 250;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->report.find("SLOW_MS 250"), std::string::npos);
  EXPECT_EQ(obs::SlowLog::Global().threshold_ns(), 250u * 1000000u);

  r = Exec("show settings;");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->report.find("slow_ms 250"), std::string::npos);
  obs::SlowLog::Global().set_threshold_ns(before);
}

#if DELTAMON_OBS_ENABLED

TEST_F(ObsStatementTest, ExplainFiringWalksLineageToBaseRows) {
  ASSERT_TRUE(Exec("set provenance on;").ok());
  ASSERT_TRUE(Exec("set stock(1) = 2; commit;").ok());
  ASSERT_EQ(fired_.size(), 1u);

  auto r = Exec("explain firing low_stock;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->report.find("EXPLAIN FIRING low_stock"), std::string::npos);
  EXPECT_NE(r->report.find("instance"), std::string::npos);
  // The tree bottoms out at the stock(1)=2 base Δ-row.
  EXPECT_NE(r->report.find("stock"), std::string::npos);
  EXPECT_NE(r->report.find("(base)"), std::string::npos);

  r = Exec("show provenance;");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->report.find("low_stock"), std::string::npos);
}

TEST_F(ObsStatementTest, ExplainFiringWritesJsonArtifact) {
  ASSERT_TRUE(Exec("set provenance on;").ok());
  ASSERT_TRUE(Exec("set stock(2) = 1; commit;").ok());
  const std::string path =
      ::testing::TempDir() + "/deltamon_explain_firing_test.json";
  auto r = Exec("explain firing \"" + path + "\" low_stock;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->report.find("FIRING JSON " + path), std::string::npos);
  auto text = obs::ReadTextFile(path);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto doc = obs::Json::Parse(*text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Get("rule")->as_string(), "low_stock");
}

TEST_F(ObsStatementTest, ExplainFiringErrorsAreSpecific) {
  // Typo'd rule: an unknown-rule error, not "no recorded firing".
  EXPECT_FALSE(Exec("explain firing no_such_rule;").ok());
  // Known rule but provenance never enabled: the error says how to fix it.
  auto r = Exec("explain firing low_stock;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("provenance is off"),
            std::string::npos);
}

TEST_F(ObsStatementTest, DumpWavesRoundTripsThroughTheParser) {
  ASSERT_TRUE(Exec("set wave_capture on;").ok());
  ASSERT_TRUE(Exec("set stock(1) = 7; commit;").ok());
  const std::string path = ::testing::TempDir() + "/deltamon_waves_test.json";
  auto r = Exec("dump waves \"" + path + "\";");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->report.find("WAVES " + path), std::string::npos);
  auto text = obs::ReadTextFile(path);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto waves = obs::ParseWaveFile(*text);
  ASSERT_TRUE(waves.ok()) << waves.status().ToString();
  ASSERT_FALSE(waves->empty());
  EXPECT_EQ(waves->front().influents.front().relation, "stock");
}

TEST_F(ObsStatementTest, SettingsReportCarriesTheObsToggles) {
  ASSERT_TRUE(Exec("set provenance on;").ok());
  ASSERT_TRUE(Exec("set wave_capture on;").ok());
  auto r = Exec("show settings;");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->report.find("provenance on"), std::string::npos);
  EXPECT_NE(r->report.find("wave_capture on"), std::string::npos);
  ASSERT_TRUE(Exec("set provenance off;").ok());
  ASSERT_TRUE(Exec("set wave_capture off;").ok());
  r = Exec("show settings;");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->report.find("provenance off"), std::string::npos);
  EXPECT_NE(r->report.find("wave_capture off"), std::string::npos);
}

#else  // !DELTAMON_OBS_ENABLED

TEST_F(ObsStatementTest, ProvenanceStatementsRefuseClearly) {
  for (const char* src :
       {"set provenance on;", "set wave_capture on;", "show provenance;",
        "explain firing low_stock;", "dump waves \"/tmp/x.json\";"}) {
    auto r = Exec(src);
    ASSERT_FALSE(r.ok()) << src;
    EXPECT_NE(r.status().ToString().find("observability disabled"),
              std::string::npos)
        << src;
  }
  // The settings report still renders the (permanently off) toggles.
  auto r = Exec("show settings;");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->report.find("provenance off"), std::string::npos);
}

#endif  // DELTAMON_OBS_ENABLED

}  // namespace
}  // namespace deltamon::amosql
