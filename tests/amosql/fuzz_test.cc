/// Robustness: the lexer and parser must reject arbitrary garbage with a
/// ParseError — never crash, hang, or accept nonsense — and the session
/// must survive executing random statement-shaped fragments.

#include <random>

#include <gtest/gtest.h>

#include "amosql/session.h"

namespace deltamon::amosql {
namespace {

std::string RandomGarbage(std::mt19937& rng, size_t length) {
  static const char* kFragments[] = {
      "create", "type", "function", "rule", "select", "for", "each",
      "where",  "and",  "or",       "not",  "set",    "add", "remove",
      "commit", "(",    ")",        ",",    ";",      "->",  "=",
      "<",      ">",    "+",        "*",    "/",      "-",   "42",
      "3.5",    ":v",   "ident",    "\"s\"", "item",  "as",  "when",
      "do",     "sum",  "count",
  };
  std::uniform_int_distribution<size_t> pick(
      0, sizeof(kFragments) / sizeof(kFragments[0]) - 1);
  std::string out;
  for (size_t i = 0; i < length; ++i) {
    out += kFragments[pick(rng)];
    out += ' ';
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzTest, RandomTokenSoupNeverCrashes) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<size_t> len(1, 40);
  Engine engine;
  Session session(engine);
  for (int i = 0; i < 200; ++i) {
    std::string source = RandomGarbage(rng, len(rng));
    // Must return a Status (usually a ParseError), never crash. If it
    // happens to parse and execute, fine — the engine must stay usable.
    auto result = session.Execute(source);
    (void)result;
  }
  // Session still functional afterwards.
  EXPECT_TRUE(session.Execute("create type sanity;").ok());
}

TEST_P(FuzzTest, RandomBytesNeverCrashLexer) {
  std::mt19937 rng(GetParam() ^ 0xF00D);
  std::uniform_int_distribution<int> byte(1, 126);
  std::uniform_int_distribution<size_t> len(1, 120);
  for (int i = 0; i < 300; ++i) {
    std::string source;
    size_t n = len(rng);
    for (size_t k = 0; k < n; ++k) {
      source.push_back(static_cast<char>(byte(rng)));
    }
    auto tokens = Tokenize(source);
    (void)tokens;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0u, 6u));

}  // namespace
}  // namespace deltamon::amosql
