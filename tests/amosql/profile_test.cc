/// Session observability commands: `profile <statement>;` reports the
/// metric delta and wall time of exactly that statement, `show metrics;`
/// dumps the global registry, `reset metrics;` zeroes it, `trace <stmt>;`
/// records hierarchical spans into a Chrome-trace file, and
/// `show network [rule];` renders the propagation network with per-node
/// attribution. All ride on QueryResult::report so they compose with
/// ordinary statements in one script.

#include <gtest/gtest.h>

#include <string>

#include "amosql/session.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace deltamon::amosql {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    auto r = session_.Execute(
        "create type item;"
        "create function quantity(item) -> integer;"
        "create rule watch_low() as"
        "  when for each item i where quantity(i) < 10"
        "  do set quantity(i) = 10;"
        "create item instances :a, :b;"
        "set quantity(:a) = 42;"
        "set quantity(:b) = 42;"
        "commit;"
        "activate watch_low();");
    ASSERT_TRUE(r.ok()) << r.status();
  }

  std::string Report(const std::string& src) {
    auto r = session_.Execute(src);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->report : std::string();
  }

  Engine engine_;
  Session session_{engine_};
};

TEST_F(ProfileTest, ShowMetricsDumpsRegistry) {
  std::string report = Report(
      "set quantity(:a) = 7;"
      "commit;"
      "show metrics;");
  EXPECT_NE(report.find("METRICS"), std::string::npos);
#if DELTAMON_OBS_ENABLED
  // The commit just ran a check phase, so rule metrics exist by now.
  EXPECT_NE(report.find("rules.check_phases"), std::string::npos) << report;
#endif
}

TEST_F(ProfileTest, ProfileCommitReportsMetricDelta) {
  std::string report = Report(
      "set quantity(:a) = 5;"
      "profile commit;");
  EXPECT_NE(report.find("PROFILE"), std::string::npos);
  EXPECT_NE(report.find("ms"), std::string::npos);
#if DELTAMON_OBS_ENABLED
  // The profiled commit triggered the rule: the delta must show the
  // propagator at work, not lifetime totals (a fresh session's first
  // commit and a later one report comparable numbers).
  EXPECT_NE(report.find("propagator.waves"), std::string::npos) << report;
  EXPECT_NE(report.find("db.commits"), std::string::npos) << report;
  // The differentials that actually ran are spelled out for the trigger.
  EXPECT_NE(report.find("differentials:"), std::string::npos) << report;
  EXPECT_NE(report.find("Δ"), std::string::npos) << report;
#endif
  // The rule fired and restocked the item.
  auto rows = session_.Execute("select quantity(:a);");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], Value(10));
}

TEST_F(ProfileTest, ProfileSelectReportsEvalWork) {
  std::string report = Report("profile select i for each item i;");
  EXPECT_NE(report.find("PROFILE"), std::string::npos);
#if DELTAMON_OBS_ENABLED
  EXPECT_NE(report.find("eval."), std::string::npos) << report;
#endif
}

TEST_F(ProfileTest, ProfilePropagatesInnerStatementErrors) {
  auto r = session_.Execute("profile select nonsense_fn(:a);");
  EXPECT_FALSE(r.ok());
}

TEST_F(ProfileTest, ProfileParsesNestedAndReportsInOrder) {
  // profile profile commit; — inner profile runs, outer wraps it.
  std::string report = Report(
      "set quantity(:b) = 3;"
      "profile profile commit;");
  size_t first = report.find("PROFILE");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(report.find("PROFILE", first + 1), std::string::npos);
}

TEST_F(ProfileTest, ResetMetricsZeroesTheRegistryForCleanProfiles) {
  Report(
      "set quantity(:a) = 7;"
      "commit;");
#if DELTAMON_OBS_ENABLED
  ASSERT_GT(
      obs::Registry::Global().GetCounter("rules.check_phases")->value(), 0u);
#endif
  std::string report = Report("reset metrics;");
  EXPECT_NE(report.find("METRICS RESET"), std::string::npos);
#if DELTAMON_OBS_ENABLED
  EXPECT_EQ(
      obs::Registry::Global().GetCounter("rules.check_phases")->value(), 0u);
  // Metrics accumulate again from zero, so the next profile's delta is
  // also an absolute count.
  Report(
      "set quantity(:a) = 3;"
      "commit;");
  EXPECT_EQ(
      obs::Registry::Global().GetCounter("rules.check_phases")->value(), 1u);
#endif
}

TEST_F(ProfileTest, TraceWritesChromeTraceFileAndPrintsSpanTree) {
  const std::string path = ::testing::TempDir() + "/profile_test_trace.json";
  std::string report = Report(
      "set quantity(:a) = 5;"
      "trace \"" + path + "\" commit;");
  EXPECT_NE(report.find("TRACE " + path), std::string::npos) << report;

  auto text = obs::ReadTextFile(path);
  ASSERT_TRUE(text.ok()) << text.status();
  auto doc = obs::Json::Parse(*text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_NE(doc->Get("traceEvents"), nullptr);
  ASSERT_TRUE(doc->Get("traceEvents")->is_array());
#if DELTAMON_OBS_ENABLED
  // The deferred check path nests check phase -> round -> wave -> node;
  // the tree printer indents two spaces per level.
  EXPECT_NE(report.find("rules.check_phase "), std::string::npos) << report;
  EXPECT_NE(report.find("\n  rules.round "), std::string::npos) << report;
  EXPECT_NE(report.find("propagation.wave "), std::string::npos) << report;
  EXPECT_NE(report.find("propagation.node:"), std::string::npos) << report;
  EXPECT_GT(doc->Get("traceEvents")->size(), 3u);
#else
  EXPECT_NE(report.find("(no spans recorded)"), std::string::npos) << report;
#endif
}

TEST_F(ProfileTest, TraceRestoresThePreviousSinkAndPropagatesErrors) {
  const std::string path = ::testing::TempDir() + "/profile_test_err.json";
  auto r = session_.Execute("trace \"" + path + "\" select nonsense_fn(:a);");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(obs::GetTraceSink(), nullptr)
      << "a failing traced statement must still uninstall its sink";
}

TEST_F(ProfileTest, ShowSlowRendersTheGlobalSlowLog) {
  obs::SlowLog::Global().Clear();
  obs::SlowLog::Global().set_threshold_ns(0);
  // Empty log: the report still explains itself.
  std::string report = Report("show slow;");
  EXPECT_NE(report.find("SLOW STATEMENTS"), std::string::npos) << report;
  EXPECT_NE(report.find("threshold off, 0 recorded"), std::string::npos)
      << report;

  // The log is a process global: an entry recorded by the server-side
  // executor is visible from this (local) session too.
  obs::SlowRecord slow;
  slow.context.trace_id = 5;
  slow.context.connection_id = 2;
  slow.context.statement_ordinal = 1;
  slow.statement = "commit;";
  slow.elapsed_ns = 12'000'000;
  slow.span_tree = "rules.check_phase 12ms\n";
  obs::SlowLog::Global().Record(slow);
  report = Report("show slow;");
  EXPECT_NE(report.find("[trace 5] conn 2 stmt 1: 12.000 ms"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("rules.check_phase"), std::string::npos) << report;
  obs::SlowLog::Global().Clear();
}

TEST_F(ProfileTest, ShowNetworkDumpsTopologyStatsAndDot) {
  // Drive one check phase so node attribution is nonzero.
  Report(
      "set quantity(:a) = 5;"
      "commit;"
      "show network;");
  std::string report = Report("show network;");
  EXPECT_NE(report.find("NETWORK"), std::string::npos);
  EXPECT_NE(report.find("digraph propagation"), std::string::npos) << report;
  EXPECT_NE(report.find("cnd_watch_low"), std::string::npos) << report;
  EXPECT_NE(report.find("quantity"), std::string::npos) << report;
  EXPECT_NE(report.find("inv="), std::string::npos) << report;
}

TEST_F(ProfileTest, ShowNetworkRestrictsToOneRule) {
  std::string report = Report("show network watch_low;");
  EXPECT_NE(report.find("digraph propagation"), std::string::npos) << report;
  EXPECT_NE(report.find("cnd_watch_low"), std::string::npos) << report;

  auto bad = session_.Execute("show network no_such_rule;");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace deltamon::amosql
