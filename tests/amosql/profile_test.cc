/// Session observability commands: `profile <statement>;` reports the
/// metric delta and wall time of exactly that statement, `show metrics;`
/// dumps the global registry. Both ride on QueryResult::report so they
/// compose with ordinary statements in one script.

#include <gtest/gtest.h>

#include <string>

#include "amosql/session.h"
#include "obs/metrics.h"

namespace deltamon::amosql {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    auto r = session_.Execute(
        "create type item;"
        "create function quantity(item) -> integer;"
        "create rule watch_low() as"
        "  when for each item i where quantity(i) < 10"
        "  do set quantity(i) = 10;"
        "create item instances :a, :b;"
        "set quantity(:a) = 42;"
        "set quantity(:b) = 42;"
        "commit;"
        "activate watch_low();");
    ASSERT_TRUE(r.ok()) << r.status();
  }

  std::string Report(const std::string& src) {
    auto r = session_.Execute(src);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->report : std::string();
  }

  Engine engine_;
  Session session_{engine_};
};

TEST_F(ProfileTest, ShowMetricsDumpsRegistry) {
  std::string report = Report(
      "set quantity(:a) = 7;"
      "commit;"
      "show metrics;");
  EXPECT_NE(report.find("METRICS"), std::string::npos);
#if DELTAMON_OBS_ENABLED
  // The commit just ran a check phase, so rule metrics exist by now.
  EXPECT_NE(report.find("rules.check_phases"), std::string::npos) << report;
#endif
}

TEST_F(ProfileTest, ProfileCommitReportsMetricDelta) {
  std::string report = Report(
      "set quantity(:a) = 5;"
      "profile commit;");
  EXPECT_NE(report.find("PROFILE"), std::string::npos);
  EXPECT_NE(report.find("ms"), std::string::npos);
#if DELTAMON_OBS_ENABLED
  // The profiled commit triggered the rule: the delta must show the
  // propagator at work, not lifetime totals (a fresh session's first
  // commit and a later one report comparable numbers).
  EXPECT_NE(report.find("propagator.waves"), std::string::npos) << report;
  EXPECT_NE(report.find("db.commits"), std::string::npos) << report;
  // The differentials that actually ran are spelled out for the trigger.
  EXPECT_NE(report.find("differentials:"), std::string::npos) << report;
  EXPECT_NE(report.find("Δ"), std::string::npos) << report;
#endif
  // The rule fired and restocked the item.
  auto rows = session_.Execute("select quantity(:a);");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], Value(10));
}

TEST_F(ProfileTest, ProfileSelectReportsEvalWork) {
  std::string report = Report("profile select i for each item i;");
  EXPECT_NE(report.find("PROFILE"), std::string::npos);
#if DELTAMON_OBS_ENABLED
  EXPECT_NE(report.find("eval."), std::string::npos) << report;
#endif
}

TEST_F(ProfileTest, ProfilePropagatesInnerStatementErrors) {
  auto r = session_.Execute("profile select nonsense_fn(:a);");
  EXPECT_FALSE(r.ok());
}

TEST_F(ProfileTest, ProfileParsesNestedAndReportsInOrder) {
  // profile profile commit; — inner profile runs, outer wraps it.
  std::string report = Report(
      "set quantity(:b) = 3;"
      "profile profile commit;");
  size_t first = report.find("PROFILE");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(report.find("PROFILE", first + 1), std::string::npos);
}

}  // namespace
}  // namespace deltamon::amosql
