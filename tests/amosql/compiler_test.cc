/// Clause-level tests of the AMOSQL-to-ObjectLog compiler: DNF rewriting
/// with negation pushed to leaves, expression unnesting, extent injection
/// for unbound object variables, and error reporting.

#include "amosql/compiler.h"

#include <gtest/gtest.h>

#include "amosql/parser.h"
#include "amosql/session.h"
#include "objectlog/eval.h"

namespace deltamon::amosql {
namespace {

using objectlog::Clause;
using objectlog::Literal;

/// Compiles `select ...;` source and returns the clauses.
class CompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(session_.Execute("create type item;"
                                 "create function price(item) -> integer;"
                                 "create function tag(item) -> charstring;"
                                 "create function linked(item) -> item;"
                                 "create item instances :a, :b;")
                    .ok());
  }

  Result<CompiledQuery> Compile(const std::string& select_source) {
    auto program = Parse(select_source);
    if (!program.ok()) return program.status();
    const auto& sel = std::get<SelectStmt>((*program)[0].node);
    Compiler compiler(engine_, env_, session_);
    return compiler.CompileQuery(kInvalidRelationId, {}, sel.query.for_each,
                                 false, sel.query.results,
                                 sel.query.where.get());
  }

  size_t CountKind(const Clause& c, Literal::Kind kind, bool negated = false) {
    size_t n = 0;
    for (const Literal& l : c.body) {
      if (l.kind == kind && (kind != Literal::Kind::kRelation ||
                             l.negated == negated)) {
        ++n;
      }
    }
    return n;
  }

  Engine engine_;
  Session session_{engine_};
  std::unordered_map<std::string, Value> env_;
};

TEST_F(CompilerTest, ConjunctionIsOneClause) {
  auto q = Compile("select i for each item i "
                   "where price(i) > 1 and price(i) < 9;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->clauses.size(), 1u);
}

TEST_F(CompilerTest, DisjunctionSplitsIntoClauses) {
  auto q = Compile("select i for each item i "
                   "where price(i) > 9 or price(i) < 1;");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->clauses.size(), 2u);
}

TEST_F(CompilerTest, DistributionOverConjunction) {
  // (a or b) and (c or d) -> 4 conjuncts.
  auto q = Compile(
      "select i for each item i where "
      "(price(i) > 9 or price(i) < 1) and (price(i) > 7 or price(i) < 3);");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->clauses.size(), 4u);
}

TEST_F(CompilerTest, DeMorganPushesNegationToLeaves) {
  // not (a or b) -> one clause with both complements.
  auto q = Compile("select i for each item i "
                   "where not (price(i) > 9 or price(i) < 1);");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->clauses.size(), 1u);
  // not (a and b) -> two clauses.
  q = Compile("select i for each item i "
              "where not (price(i) > 9 and price(i) < 1);");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->clauses.size(), 2u);
}

TEST_F(CompilerTest, DoubleNegationCancels) {
  auto q = Compile("select i for each item i where not not price(i) > 5;");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->clauses.size(), 1u);
  EXPECT_EQ(CountKind(q->clauses[0], Literal::Kind::kCompare), 1u);
}

TEST_F(CompilerTest, NegatedComparisonBecomesComplementOp) {
  auto q = Compile("select i for each item i where not price(i) < 5;");
  ASSERT_TRUE(q.ok());
  bool found_ge = false;
  for (const Literal& l : q->clauses[0].body) {
    if (l.kind == Literal::Kind::kCompare &&
        l.cmp == objectlog::CompareOp::kGe) {
      found_ge = true;
    }
  }
  EXPECT_TRUE(found_ge);
}

TEST_F(CompilerTest, NegatedAtomBecomesNegatedLiteral) {
  auto q = Compile("select i for each item i where not price(i);");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(CountKind(q->clauses[0], Literal::Kind::kRelation,
                      /*negated=*/true),
            1u);
}

TEST_F(CompilerTest, UnboundObjectVariableGetsExtent) {
  // i is only constrained by a negated literal: the extent generates it.
  auto q = Compile("select i for each item i where not price(i);");
  ASSERT_TRUE(q.ok());
  // Two relation literals: the extent (positive) and ~price.
  EXPECT_EQ(CountKind(q->clauses[0], Literal::Kind::kRelation, false), 1u);
  EXPECT_EQ(CountKind(q->clauses[0], Literal::Kind::kRelation, true), 1u);
}

TEST_F(CompilerTest, BoundObjectVariableGetsNoExtent) {
  auto q = Compile("select i for each item i where price(i) > 1;");
  ASSERT_TRUE(q.ok());
  // Only the price literal; no extent scan needed.
  EXPECT_EQ(CountKind(q->clauses[0], Literal::Kind::kRelation, false), 1u);
}

TEST_F(CompilerTest, NestedCallsUnnestIntoJoins) {
  // price(linked(i)): two relation literals chained through a temp var.
  auto q = Compile("select i for each item i "
                   "where price(linked(i)) > 5;");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(CountKind(q->clauses[0], Literal::Kind::kRelation, false), 2u);
}

TEST_F(CompilerTest, ArithmeticUnnestsIntoArithLiterals) {
  auto q = Compile("select price(i) * 2 + 1 for each item i;");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(CountKind(q->clauses[0], Literal::Kind::kArith), 2u);
}

TEST_F(CompilerTest, ScalarForEachWithoutBindingIsRejected) {
  auto q = Compile("select x for each integer x;");
  EXPECT_FALSE(q.ok());
}

TEST_F(CompilerTest, UndeclaredVariableRejected) {
  auto q = Compile("select ghost for each item i where price(i) > 1;");
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("ghost"), std::string::npos);
}

TEST_F(CompilerTest, UnknownFunctionRejected) {
  auto q = Compile("select nope(i) for each item i;");
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(CompilerTest, WrongArityRejected) {
  auto q = Compile("select price(i, i) for each item i;");
  EXPECT_FALSE(q.ok());
}

TEST_F(CompilerTest, MultiResultFunctionNotAValue) {
  ASSERT_TRUE(session_
                  .Execute("create function pos(item) -> "
                           "(integer x, integer y);")
                  .ok());
  auto q = Compile("select pos(i) for each item i;");
  EXPECT_FALSE(q.ok());
}

TEST_F(CompilerTest, UndefinedInterfaceVariableRejected) {
  auto q = Compile("select price(:ghost);");
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(CompilerTest, ResolveTypeNames) {
  Catalog& cat = engine_.db.catalog();
  EXPECT_EQ(ResolveTypeName(cat, "integer", 1)->kind, ValueKind::kInt);
  EXPECT_EQ(ResolveTypeName(cat, "INTEGER", 1)->kind, ValueKind::kInt);
  EXPECT_EQ(ResolveTypeName(cat, "real", 1)->kind, ValueKind::kDouble);
  EXPECT_EQ(ResolveTypeName(cat, "charstring", 1)->kind, ValueKind::kString);
  EXPECT_EQ(ResolveTypeName(cat, "boolean", 1)->kind, ValueKind::kBool);
  auto item = ResolveTypeName(cat, "item", 1);
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->kind, ValueKind::kObject);
  EXPECT_FALSE(ResolveTypeName(cat, "ghost_type", 1).ok());
}

TEST_F(CompilerTest, DisjunctsEvaluateIndependently) {
  ASSERT_TRUE(session_
                  .Execute("set price(:a) = 5; set tag(:b) = \"hot\";")
                  .ok());
  auto rows = session_.Execute(
      "select i for each item i where price(i) < 10 or tag(i) = \"hot\";");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
}

}  // namespace
}  // namespace deltamon::amosql
