#include "amosql/session.h"

#include <gtest/gtest.h>

namespace deltamon::amosql {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  Status Exec(const std::string& src) {
    auto r = session_.Execute(src);
    return r.status();
  }

  std::vector<Tuple> Query(const std::string& src) {
    auto r = session_.Execute(src);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows : std::vector<Tuple>{};
  }

  Engine engine_;
  Session session_{engine_};
};

TEST_F(SessionTest, CreateTypeAndInstances) {
  ASSERT_TRUE(Exec("create type item;"
                   "create item instances :a, :b;")
                  .ok());
  auto a = session_.GetInterfaceVar("a");
  auto b = session_.GetInterfaceVar("b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->is_object());
  EXPECT_FALSE(*a == *b);
  // The extent relation sees both objects.
  auto rows = Query("select i for each item i;");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SessionTest, StoredFunctionSetAndSelect) {
  ASSERT_TRUE(Exec("create type item;"
                   "create function quantity(item) -> integer;"
                   "create item instances :a;"
                   "set quantity(:a) = 42;")
                  .ok());
  auto rows = Query("select quantity(:a);");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(42));
  // Overwriting replaces (function semantics).
  ASSERT_TRUE(Exec("set quantity(:a) = 10;").ok());
  rows = Query("select quantity(:a);");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(10));
}

TEST_F(SessionTest, AddAndRemoveMultiValued) {
  ASSERT_TRUE(Exec("create type person;"
                   "create function knows(person) -> person;"
                   "create person instances :p, :q, :r;"
                   "add knows(:p) = :q;"
                   "add knows(:p) = :r;")
                  .ok());
  EXPECT_EQ(Query("select knows(:p);").size(), 2u);
  ASSERT_TRUE(Exec("remove knows(:p) = :q;").ok());
  EXPECT_EQ(Query("select knows(:p);").size(), 1u);
}

TEST_F(SessionTest, DerivedFunctionWithArithmetic) {
  ASSERT_TRUE(Exec("create type item;"
                   "create function price(item) -> integer;"
                   "create function tax(item i) -> integer as"
                   "  select price(i) / 4;"
                   "create item instances :a;"
                   "set price(:a) = 100;")
                  .ok());
  auto rows = Query("select tax(:a);");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(25));
}

TEST_F(SessionTest, SelectWithWhereAndJoin) {
  ASSERT_TRUE(Exec("create type emp;"
                   "create function salary(emp) -> integer;"
                   "create function boss(emp) -> emp;"
                   "create emp instances :e1, :e2, :e3;"
                   "set salary(:e1) = 100; set salary(:e2) = 200;"
                   "set salary(:e3) = 300;"
                   "set boss(:e1) = :e2; set boss(:e2) = :e3;")
                  .ok());
  // Employees earning more than their boss: none here...
  EXPECT_EQ(Query("select e for each emp e "
                  "where salary(e) > salary(boss(e));")
                .size(),
            0u);
  ASSERT_TRUE(Exec("set salary(:e1) = 250;").ok());
  EXPECT_EQ(Query("select e for each emp e "
                  "where salary(e) > salary(boss(e));")
                .size(),
            1u);
}

TEST_F(SessionTest, DisjunctionAndNegation) {
  ASSERT_TRUE(Exec("create type item;"
                   "create function cheap(item) -> boolean;"
                   "create function price(item) -> integer;"
                   "create item instances :a, :b, :c;"
                   "set price(:a) = 5; set price(:b) = 50;"
                   "set cheap(:c) = true;")
                  .ok());
  // a matches by price, c by the boolean flag, b by neither.
  auto rows = Query("select i for each item i "
                    "where price(i) < 10 or cheap(i);");
  EXPECT_EQ(rows.size(), 2u);
  // Negated atom: items with no price at all.
  rows = Query("select i for each item i where not price(i);");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], *session_.GetInterfaceVar("c"));
}

TEST_F(SessionTest, InterfaceVarErrors) {
  ASSERT_TRUE(Exec("create type item;"
                   "create function f(item) -> integer;")
                  .ok());
  EXPECT_EQ(Exec("set f(:ghost) = 1;").code(), StatusCode::kNotFound);
}

TEST_F(SessionTest, GroundExprErrors) {
  ASSERT_TRUE(Exec("create type item;"
                   "create function f(item) -> integer;"
                   "create item instances :a;")
                  .ok());
  // Unset function has no value.
  EXPECT_EQ(Exec("set f(:a) = f(:a) + 1;").code(), StatusCode::kNotFound);
  ASSERT_TRUE(Exec("set f(:a) = 1;").ok());
  ASSERT_TRUE(Exec("set f(:a) = f(:a) + 1;").ok());
  auto rows = Query("select f(:a);");
  EXPECT_EQ(rows[0][0], Value(2));
}

TEST_F(SessionTest, RuleWithProcedureAction) {
  std::vector<std::vector<Value>> calls;
  session_.RegisterProcedure(
      "notify", [&calls](Database&, const std::vector<Value>& args) {
        calls.push_back(args);
        return Status::OK();
      });
  ASSERT_TRUE(Exec("create type tank;"
                   "create function level(tank) -> integer;"
                   "create rule low_level() as"
                   "  when for each tank t where level(t) < 10"
                   "  do notify(t, level(t));"
                   "create tank instances :t1, :t2;"
                   "set level(:t1) = 50; set level(:t2) = 60;"
                   "activate low_level();"
                   "commit;")
                  .ok());
  EXPECT_TRUE(calls.empty());
  ASSERT_TRUE(Exec("set level(:t1) = 3; commit;").ok());
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0][0], *session_.GetInterfaceVar("t1"));
  EXPECT_EQ(calls[0][1], Value(3));
}

TEST_F(SessionTest, RuleWithSetActionSelfStabilizes) {
  ASSERT_TRUE(Exec("create type tank;"
                   "create function level(tank) -> integer;"
                   "create function refill_to(tank) -> integer;"
                   "create rule auto_refill() as"
                   "  when for each tank t where level(t) < 10"
                   "  do set level(t) = refill_to(t);"
                   "create tank instances :t1;"
                   "set level(:t1) = 50; set refill_to(:t1) = 90;"
                   "activate auto_refill();"
                   "commit;"
                   "set level(:t1) = 5; commit;")
                  .ok());
  auto rows = Query("select level(:t1);");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(90));
}

TEST_F(SessionTest, SetThreadsControlsRuleManagerParallelism) {
  ASSERT_TRUE(Exec("set threads 4;").ok());
  EXPECT_EQ(engine_.rules.num_threads(), 4u);
  ASSERT_TRUE(Exec("set threads 1;").ok());
  EXPECT_EQ(engine_.rules.num_threads(), 1u);
  // 0 resolves to hardware concurrency (at least 1).
  ASSERT_TRUE(Exec("set threads 0;").ok());
  EXPECT_GE(engine_.rules.num_threads(), 1u);
  auto r = session_.Execute("set threads 2;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->report.find("THREADS 2"), std::string::npos);
}

TEST_F(SessionTest, SetKernelsControlsRuleManagerKernels) {
  // On by default.
  EXPECT_TRUE(engine_.rules.kernels_enabled());
  auto r = session_.Execute("set kernels off;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->report.find("KERNELS off"), std::string::npos);
  EXPECT_FALSE(engine_.rules.kernels_enabled());
  r = session_.Execute("set kernels on;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->report.find("KERNELS on"), std::string::npos);
  EXPECT_TRUE(engine_.rules.kernels_enabled());
}

TEST_F(SessionTest, ShowSettingsReportsThreadsAndKernels) {
  ASSERT_TRUE(Exec("set threads 4; set kernels off;").ok());
  auto r = session_.Execute("show settings;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->report.find("SETTINGS"), std::string::npos);
  EXPECT_NE(r->report.find("threads 4"), std::string::npos);
  EXPECT_NE(r->report.find("kernels off"), std::string::npos);
}

TEST_F(SessionTest, RuleFiresTheSameWithKernelsOff) {
  ASSERT_TRUE(Exec("set kernels off;"
                   "create type tank;"
                   "create function level(tank) -> integer;"
                   "create function refill_to(tank) -> integer;"
                   "create rule auto_refill() as"
                   "  when for each tank t where level(t) < 10"
                   "  do set level(t) = refill_to(t);"
                   "create tank instances :t1;"
                   "set level(:t1) = 50; set refill_to(:t1) = 90;"
                   "activate auto_refill();"
                   "commit;"
                   "set level(:t1) = 5; commit;")
                  .ok());
  auto rows = Query("select level(:t1);");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(90));
}

TEST_F(SessionTest, RuleFiresIdenticallyUnderParallelPropagation) {
  std::vector<std::vector<Value>> calls;
  session_.RegisterProcedure(
      "notify", [&calls](Database&, const std::vector<Value>& args) {
        calls.push_back(args);
        return Status::OK();
      });
  ASSERT_TRUE(Exec("set threads 4;"
                   "create type tank;"
                   "create function level(tank) -> integer;"
                   "create rule low_level() as"
                   "  when for each tank t where level(t) < 10"
                   "  do notify(t, level(t));"
                   "create tank instances :t1, :t2;"
                   "set level(:t1) = 50; set level(:t2) = 60;"
                   "activate low_level();"
                   "commit;")
                  .ok());
  EXPECT_TRUE(calls.empty());
  ASSERT_TRUE(Exec("set level(:t1) = 3; commit;").ok());
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0][0], *session_.GetInterfaceVar("t1"));
  EXPECT_EQ(calls[0][1], Value(3));
}

TEST_F(SessionTest, UnregisteredProcedureFailsAtFireTime) {
  ASSERT_TRUE(Exec("create type tank;"
                   "create function level(tank) -> integer;"
                   "create rule r() as when for each tank t "
                   "where level(t) < 10 do missing(t);"
                   "create tank instances :t1;"
                   "activate r();"
                   "set level(:t1) = 1;")
                  .ok());
  EXPECT_EQ(Exec("commit;").code(), StatusCode::kNotFound);
  ASSERT_TRUE(Exec("rollback;").ok());
}

TEST_F(SessionTest, DeactivateViaStatement) {
  int fires = 0;
  session_.RegisterProcedure("ping",
                             [&fires](Database&, const std::vector<Value>&) {
                               ++fires;
                               return Status::OK();
                             });
  ASSERT_TRUE(Exec("create type tank;"
                   "create function level(tank) -> integer;"
                   "create rule r() as when for each tank t "
                   "where level(t) < 10 do ping(t);"
                   "create tank instances :t1;"
                   "set level(:t1) = 50;"
                   "activate r(); commit;"
                   "deactivate r();"
                   "set level(:t1) = 1; commit;")
                  .ok());
  EXPECT_EQ(fires, 0);
}

TEST_F(SessionTest, NervousRuleModifier) {
  int fires = 0;
  session_.RegisterProcedure("ping",
                             [&fires](Database&, const std::vector<Value>&) {
                               ++fires;
                               return Status::OK();
                             });
  ASSERT_TRUE(Exec("create type tank;"
                   "create function level(tank) -> integer;"
                   "create rule r() nervous as when for each tank t "
                   "where level(t) < 10 do ping(t);"
                   "create tank instances :t1;"
                   "activate r();"
                   "set level(:t1) = 5; commit;")
                  .ok());
  EXPECT_EQ(fires, 1);
  // Condition stays true; nervous semantics re-fires on the new update.
  ASSERT_TRUE(Exec("set level(:t1) = 4; commit;").ok());
  EXPECT_EQ(fires, 2);
}

TEST_F(SessionTest, ParameterizedRuleActivation) {
  std::vector<Value> notified;
  session_.RegisterProcedure(
      "notify", [&notified](Database&, const std::vector<Value>& args) {
        notified.push_back(args[0]);
        return Status::OK();
      });
  ASSERT_TRUE(Exec("create type tank;"
                   "create function level(tank) -> integer;"
                   "create rule watch(tank t) as when level(t) < 10 "
                   "do notify(t);"
                   "create tank instances :t1, :t2;"
                   "set level(:t1) = 50; set level(:t2) = 50;"
                   "activate watch(:t1);"
                   "commit;"
                   "set level(:t1) = 5; set level(:t2) = 5; commit;")
                  .ok());
  // Only :t1 is watched.
  ASSERT_EQ(notified.size(), 1u);
  EXPECT_EQ(notified[0], *session_.GetInterfaceVar("t1"));
}

TEST_F(SessionTest, AggregateFunctionSyntax) {
  ASSERT_TRUE(Exec("create type desk;"
                   "create function trade(desk) -> integer;"
                   "create function total(desk d) -> integer as sum trade(d);"
                   "create function ntrades(desk d) -> integer"
                   "  as count trade(d);"
                   "create desk instances :d1, :d2;"
                   "add trade(:d1) = 10;"
                   "add trade(:d1) = 30;"
                   "add trade(:d2) = 5;")
                  .ok());
  auto rows = Query("select total(:d1);");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(40));
  rows = Query("select ntrades(:d2);");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(1));
}

TEST_F(SessionTest, RuleOverAggregateCondition) {
  std::vector<Value> alerted;
  session_.RegisterProcedure(
      "alert", [&alerted](Database&, const std::vector<Value>& args) {
        alerted.push_back(args[0]);
        return Status::OK();
      });
  ASSERT_TRUE(Exec("create type desk;"
                   "create function trade(desk) -> integer;"
                   "create function desk_limit(desk) -> integer;"
                   "create function total(desk d) -> integer as sum trade(d);"
                   "create rule over_limit() as"
                   "  when for each desk d where total(d) > desk_limit(d)"
                   "  do alert(d, total(d));"
                   "create desk instances :d1;"
                   "set desk_limit(:d1) = 100;"
                   "activate over_limit();"
                   "commit;")
                  .ok());
  ASSERT_TRUE(Exec("add trade(:d1) = 60; commit;").ok());
  EXPECT_TRUE(alerted.empty());
  ASSERT_TRUE(Exec("add trade(:d1) = 70; commit;").ok());
  ASSERT_EQ(alerted.size(), 1u);
  EXPECT_EQ(alerted[0], *session_.GetInterfaceVar("d1"));
  // Unwinding below the limit and breaching again re-fires (strict).
  ASSERT_TRUE(Exec("remove trade(:d1) = 70; commit;"
                   "add trade(:d1) = 50; commit;")
                  .ok());
  EXPECT_EQ(alerted.size(), 2u);
}

TEST_F(SessionTest, AggregateSyntaxErrors) {
  ASSERT_TRUE(Exec("create type desk;"
                   "create function trade(desk) -> integer;")
                  .ok());
  // Wrong argument name.
  EXPECT_FALSE(Exec("create function t(desk d) -> integer as sum trade(x);")
                   .ok());
  // Unknown source.
  EXPECT_FALSE(Exec("create function u(desk d) -> integer as sum ghost(d);")
                   .ok());
  // Arity mismatch.
  EXPECT_FALSE(Exec("create function v() -> integer as sum trade();").ok());
}

}  // namespace
}  // namespace deltamon::amosql
