/// `explain analyze <stmt>;` and `analyze rule <name>;`: the per-literal
/// cardinality/cost profiler surfaced end to end — estimated vs actual
/// rows, observed selectivity, probe-vs-scan, cumulative time, the >4x
/// MISEST flag, a JSON artifact, stats feedback into the catalog's
/// StatsStore, and byte-identical output across `set threads 1/2/4/8;`
/// once the wall-time column is stripped.

#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "amosql/session.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/report.h"

namespace deltamon::amosql {
namespace {

#if DELTAMON_OBS_ENABLED
/// Drops the wall-time column (the only nondeterministic field) from an
/// `explain analyze` report: "  12345ns" -> "".
std::string StripTimes(const std::string& report) {
  static const std::regex kTime(" +[0-9]+ns");
  return std::regex_replace(report, kTime, "");
}
#endif  // DELTAMON_OBS_ENABLED

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    auto r = session_.Execute(
        "create type item;"
        "create function quantity(item) -> integer;"
        "create function threshold(item) -> integer;"
        "create rule watch_low() as"
        "  when for each item i where quantity(i) < threshold(i)"
        "  do set quantity(i) = threshold(i);"
        "create item instances :a, :b, :c;"
        "set threshold(:a) = 10; set threshold(:b) = 10;"
        "set threshold(:c) = 10;"
        "set quantity(:a) = 42; set quantity(:b) = 42;"
        "set quantity(:c) = 42;"
        "commit;"
        "activate watch_low();");
    ASSERT_TRUE(r.ok()) << r.status();
  }

  std::string Report(const std::string& src) {
    auto r = session_.Execute(src);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->report : std::string();
  }

  Engine engine_;
  Session session_{engine_};
};

TEST_F(ExplainAnalyzeTest, ParseRequiresAnalyzeAndRuleKeywords) {
  EXPECT_FALSE(session_.Execute("explain select i for each item i;").ok());
  EXPECT_FALSE(session_.Execute("analyze watch_low;").ok());
  EXPECT_FALSE(session_.Execute("analyze rule;").ok());
}

TEST_F(ExplainAnalyzeTest, SelectPrintsPerLiteralTable) {
  auto r = session_.Execute(
      "explain analyze select i for each item i where quantity(i) > 20;");
  ASSERT_TRUE(r.ok()) << r.status();
  // The wrapped select still returns its rows.
  EXPECT_EQ(r->rows.size(), 3u);
  const std::string& report = r->report;
  EXPECT_NE(report.find("EXPLAIN ANALYZE"), std::string::npos) << report;
#if DELTAMON_OBS_ENABLED
  // Table header and at least one profiled clause with relation literals.
  EXPECT_NE(report.find("est.rows"), std::string::npos) << report;
  EXPECT_NE(report.find("actual"), std::string::npos) << report;
  EXPECT_NE(report.find("quantity"), std::string::npos) << report;
  EXPECT_NE(report.find("scan"), std::string::npos) << report;
  EXPECT_NE(report.find("ns"), std::string::npos) << report;
#else
  EXPECT_NE(report.find("compiled out"), std::string::npos) << report;
#endif
}

TEST_F(ExplainAnalyzeTest, CommitProfilesThePropagationWave) {
  std::string report = Report(
      "set quantity(:a) = 5;"
      "explain analyze commit;");
  EXPECT_NE(report.find("EXPLAIN ANALYZE"), std::string::npos) << report;
#if DELTAMON_OBS_ENABLED
  // The check phase ran partial differentials; their clauses are labeled
  // by differential name (Δ+cnd_watch_low/Δ+quantity).
  EXPECT_NE(report.find("Δ+cnd_watch_low"), std::string::npos) << report;
  EXPECT_NE(report.find("delta"), std::string::npos) << report;
#endif
  // The rule fired and restocked the item.
  auto rows = session_.Execute("select quantity(:a);");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], Value(10));
}

#if DELTAMON_OBS_ENABLED

TEST_F(ExplainAnalyzeTest, WritesProfileJsonArtifact) {
  const std::string path = ::testing::TempDir() + "/explain_analyze.json";
  std::string report = Report("explain analyze \"" + path +
                              "\" select i for each item i;");
  EXPECT_NE(report.find("PROFILE JSON " + path), std::string::npos) << report;
  auto text = obs::ReadTextFile(path);
  ASSERT_TRUE(text.ok()) << text.status();
  auto doc = obs::Json::Parse(*text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_NE(doc->Get("schema"), nullptr);
  EXPECT_EQ(doc->Get("schema")->as_string(), obs::kProfileSchema);
  ASSERT_NE(doc->Get("clauses"), nullptr);
  ASSERT_GT(doc->Get("clauses")->size(), 0u);
  const obs::Json& clause = doc->Get("clauses")->at(0);
  ASSERT_NE(clause.Get("literals"), nullptr);
  ASSERT_GT(clause.Get("literals")->size(), 0u);
  const obs::Json& lit = clause.Get("literals")->at(0);
  for (const char* field :
       {"text", "access", "est_rows", "rows_out", "selectivity",
        "bindings_tried", "time_ns", "misestimate"}) {
    EXPECT_NE(lit.Get(field), nullptr) << field;
  }
}

TEST_F(ExplainAnalyzeTest, FeedsObservedSelectivitiesIntoTheCatalog) {
  StatsStore& stats = engine_.db.catalog().stats();
  ASSERT_EQ(stats.size(), 0u);
  Report("explain analyze select i for each item i where quantity(i) > 20;");
  EXPECT_GT(stats.size(), 0u);
}

TEST_F(ExplainAnalyzeTest, AnalyzeRulePrintsConditionProfileAndRecordsStats) {
  StatsStore& stats = engine_.db.catalog().stats();
  ASSERT_EQ(stats.size(), 0u);
  std::string report = Report("analyze rule watch_low;");
  EXPECT_NE(report.find("ANALYZE RULE watch_low"), std::string::npos)
      << report;
  EXPECT_NE(report.find("cnd_watch_low"), std::string::npos) << report;
  EXPECT_NE(report.find("quantity"), std::string::npos) << report;
  EXPECT_GT(stats.size(), 0u);
}

TEST_F(ExplainAnalyzeTest, AnalyzeRuleRejectsUnknownRules) {
  EXPECT_FALSE(session_.Execute("analyze rule no_such_rule;").ok());
}

TEST_F(ExplainAnalyzeTest, ErrorsInTheInnerStatementDetachTheProfiler) {
  EXPECT_FALSE(
      session_.Execute("explain analyze select nonsense_fn(:a);").ok());
  // A later statement must run unprofiled without crashing on a dangling
  // profiler pointer.
  auto r = session_.Execute("select i for each item i;");
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST(ExplainAnalyzeDeterminismTest, ReportIsIdenticalAcrossThreadCounts) {
  obs::SetEnabled(true);
  std::string reference;
  for (const char* threads : {"1", "2", "4", "8"}) {
    Engine engine;
    Session session(engine);
    auto setup = session.Execute(
        "create type item;"
        "create function quantity(item) -> integer;"
        "create function low_items() -> item as"
        "  select i for each item i where quantity(i) < 10;"
        "create rule watch_low() as"
        "  when for each item i where quantity(i) < 10"
        "  do set quantity(i) = 10;"
        "create item instances :a, :b, :c, :d;"
        "set quantity(:a) = 42; set quantity(:b) = 42;"
        "set quantity(:c) = 42; set quantity(:d) = 42;"
        "commit;"
        "activate watch_low();"
        "set threads " + std::string(threads) + ";");
    ASSERT_TRUE(setup.ok()) << setup.status();
    auto r = session.Execute(
        "set quantity(:a) = 5;"
        "set quantity(:c) = 3;"
        "explain analyze commit;"
        "explain analyze select i, j for each item i, item j"
        "  where quantity(i) < quantity(j);");
    ASSERT_TRUE(r.ok()) << r.status();
    std::string stripped = StripTimes(r->report);
    // Sanity: stripping removed every raw nanosecond value.
    EXPECT_FALSE(std::regex_search(stripped, std::regex("[0-9]ns")))
        << stripped;
    if (reference.empty()) {
      reference = stripped;
      ASSERT_NE(reference.find("EXPLAIN ANALYZE"), std::string::npos);
    } else {
      EXPECT_EQ(stripped, reference) << "threads=" << threads;
    }
  }
}

TEST(ShowMetricsPrometheusTest, RendersExpositionFormat) {
  obs::SetEnabled(true);
  Engine engine;
  Session session(engine);
  auto r = session.Execute(
      "create type item;"
      "create item instances :a;"
      "commit;"
      "show metrics prometheus;");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->report.find("# TYPE"), std::string::npos) << r->report;
  EXPECT_NE(r->report.find("db_commits"), std::string::npos) << r->report;
  // No "METRICS" header: the output is pure exposition text.
  EXPECT_EQ(r->report.find("METRICS"), std::string::npos) << r->report;
}

#endif  // DELTAMON_OBS_ENABLED

}  // namespace
}  // namespace deltamon::amosql
