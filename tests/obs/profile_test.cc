/// Unit tests for the per-literal execution profiles behind
/// `explain analyze`: selectivity math at the rows-in = 0 edge, the >4x
/// misestimate flag boundary, merge associativity/commutativity of the
/// counter sums (the property the propagator's serial fold relies on for
/// thread-count determinism), and the text/JSON renderings.

#include "obs/profile.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace deltamon::obs {
namespace {

TEST(MisestimateTest, ExactlyFourTimesOffIsNotFlagged) {
  // (actual+1) == 4*(est+1): the boundary itself is tolerated.
  EXPECT_FALSE(Misestimated(/*est=*/0.0, /*actual=*/3));
  EXPECT_FALSE(Misestimated(/*est=*/1.0, /*actual=*/7));
  // One past the boundary flags, in both directions.
  EXPECT_TRUE(Misestimated(/*est=*/0.0, /*actual=*/4));
  EXPECT_TRUE(Misestimated(/*est=*/7.1, /*actual=*/1));
  EXPECT_FALSE(Misestimated(/*est=*/7.0, /*actual=*/1));
}

TEST(MisestimateTest, SmoothingKeepsZeroRowsComparable) {
  // est 0 vs actual 0 is a perfect estimate, not a divide-by-zero.
  EXPECT_FALSE(Misestimated(0.0, 0));
  EXPECT_FALSE(Misestimated(2.0, 0));
  EXPECT_TRUE(Misestimated(100.0, 0));
}

TEST(LiteralProfileTest, SelectivityAtZeroTriedIsZero) {
  LiteralProfile p;
  EXPECT_EQ(p.Selectivity(), 0.0);
  p.bindings_tried = 10;
  p.rows_out = 4;
  EXPECT_DOUBLE_EQ(p.Selectivity(), 0.4);
}

#if DELTAMON_OBS_ENABLED

ClauseProfile MakeClause(uint64_t tried, uint64_t out) {
  ClauseProfile cp;
  cp.label = "cnd#0";
  cp.clause_text = "cnd(I) :- quantity(I, Q), Q < 10";
  cp.invocations = 1;
  cp.slots.resize(2);
  cp.slots[0].text = "quantity(I, Q)";
  cp.slots[0].access = "scan";
  cp.slots[0].display_rank = 0;
  cp.slots[0].est_rows = 100.0;
  cp.slots[0].bindings_tried = tried;
  cp.slots[0].rows_out = out;
  cp.slots[1].text = "Q < 10";
  cp.slots[1].access = "compare";
  cp.slots[1].display_rank = 1;
  cp.slots[1].est_rows = 50.0;
  return cp;
}

TEST(ProfileTest, MergeSumsCountersAndKeepsFirstMetadata) {
  Profile a;
  a.BeginClause("cnd#0")->Merge(MakeClause(100, 10));
  Profile b;
  b.BeginClause("cnd#0")->Merge(MakeClause(60, 6));
  Profile ab = a;
  ab.Merge(b);
  Profile ba = b;
  ba.Merge(a);

  const ClauseProfile& m = ab.clauses().at("cnd#0");
  EXPECT_EQ(m.invocations, 2u);
  EXPECT_EQ(m.slots[0].bindings_tried, 160u);
  EXPECT_EQ(m.slots[0].rows_out, 16u);
  EXPECT_EQ(m.slots[0].est_rows, 100.0);  // metadata not summed
  // Counter sums commute, so either merge order renders identically.
  EXPECT_EQ(ab.Format(/*include_time=*/false),
            ba.Format(/*include_time=*/false));
}

TEST(ProfileTest, MergeIntoEmptyAdoptsWholesale) {
  Profile a;
  a.BeginClause("cnd#0")->Merge(MakeClause(100, 10));
  Profile empty;
  empty.Merge(a);
  EXPECT_EQ(empty.Format(false), a.Format(false));
}

TEST(ProfileTest, FormatShowsAccessKindsSelectivityAndMisestimate) {
  Profile p;
  // est 100 vs actual 10 is > 4x off -> MISEST; the compare slot's est 50
  // vs 0 actual rows is also way off.
  p.BeginClause("cnd#0")->Merge(MakeClause(100, 10));
  std::string text = p.Format(/*include_time=*/false);
  EXPECT_NE(text.find("clause cnd#0"), std::string::npos) << text;
  EXPECT_NE(text.find("quantity(I, Q)"), std::string::npos) << text;
  EXPECT_NE(text.find("scan"), std::string::npos) << text;
  EXPECT_NE(text.find("compare"), std::string::npos) << text;
  EXPECT_NE(text.find("0.100"), std::string::npos) << text;  // selectivity
  EXPECT_NE(text.find("MISEST"), std::string::npos) << text;
  // include_time=false must not render the time column.
  EXPECT_EQ(text.find("time"), std::string::npos) << text;
}

TEST(ProfileTest, ToJsonCarriesTheProfileSchema) {
  Profile p;
  p.BeginClause("cnd#0")->Merge(MakeClause(100, 10));
  Json doc = p.ToJson();
  ASSERT_NE(doc.Get("schema"), nullptr);
  EXPECT_EQ(doc.Get("schema")->as_string(), kProfileSchema);
  ASSERT_NE(doc.Get("clauses"), nullptr);
  ASSERT_EQ(doc.Get("clauses")->size(), 1u);
  const Json& clause = doc.Get("clauses")->at(0);
  EXPECT_EQ(clause.Get("label")->as_string(), "cnd#0");
  ASSERT_EQ(clause.Get("literals")->size(), 2u);
  const Json& lit = clause.Get("literals")->at(0);
  EXPECT_EQ(lit.Get("access")->as_string(), "scan");
  EXPECT_EQ(lit.Get("rows_out")->as_int(), 10);
  EXPECT_TRUE(lit.Get("misestimate")->as_bool());
  // Parses back: the artifact really is JSON.
  auto round = Json::Parse(doc.Dump());
  ASSERT_TRUE(round.ok()) << round.status();
}

#endif  // DELTAMON_OBS_ENABLED

}  // namespace
}  // namespace deltamon::obs
