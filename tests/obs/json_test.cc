#include "obs/json.h"

#include <gtest/gtest.h>

#include <string>

namespace deltamon::obs {
namespace {

TEST(JsonTest, ScalarKinds) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(int64_t{-3}).is_int());
  EXPECT_TRUE(Json(2.5).is_number());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_EQ(Json(uint64_t{7}).as_int(), 7);
  EXPECT_EQ(Json(int64_t{7}).as_double(), 7.0);
  EXPECT_EQ(Json(2.9).as_int(), 2);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json o = Json::Object();
  o.Set("zebra", 1);
  o.Set("apple", 2);
  o.Set("mango", 3);
  ASSERT_EQ(o.members().size(), 3u);
  EXPECT_EQ(o.members()[0].first, "zebra");
  EXPECT_EQ(o.members()[1].first, "apple");
  EXPECT_EQ(o.members()[2].first, "mango");
}

TEST(JsonTest, SetOverwritesExistingKeyInPlace) {
  Json o = Json::Object();
  o.Set("a", 1);
  o.Set("b", 2);
  o.Set("a", 10);
  ASSERT_EQ(o.size(), 2u);
  EXPECT_EQ(o.Get("a")->as_int(), 10);
  EXPECT_EQ(o.members()[0].first, "a");  // stays in its original slot
}

TEST(JsonTest, GetReturnsNullptrForMissingKey) {
  Json o = Json::Object();
  o.Set("present", 1);
  EXPECT_NE(o.Get("present"), nullptr);
  EXPECT_EQ(o.Get("absent"), nullptr);
  EXPECT_TRUE(o.contains("present"));
  EXPECT_FALSE(o.contains("absent"));
}

TEST(JsonTest, DumpParseRoundTrip) {
  Json o = Json::Object();
  o.Set("name", "bench \"quoted\"\n");
  o.Set("count", int64_t{42});
  o.Set("ratio", 0.5);
  o.Set("ok", true);
  o.Set("nothing", Json());
  Json arr = Json::Array();
  arr.Append(1);
  arr.Append("two");
  Json nested = Json::Object();
  nested.Set("deep", int64_t{-7});
  arr.Append(std::move(nested));
  o.Set("items", std::move(arr));

  auto parsed = Json::Parse(o.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Json& p = *parsed;
  EXPECT_EQ(p.Get("name")->as_string(), "bench \"quoted\"\n");
  EXPECT_EQ(p.Get("count")->as_int(), 42);
  EXPECT_DOUBLE_EQ(p.Get("ratio")->as_double(), 0.5);
  EXPECT_TRUE(p.Get("ok")->as_bool());
  EXPECT_TRUE(p.Get("nothing")->is_null());
  const Json& items = *p.Get("items");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items.at(0).as_int(), 1);
  EXPECT_EQ(items.at(1).as_string(), "two");
  EXPECT_EQ(items.at(2).Get("deep")->as_int(), -7);
  // A second round trip is byte-identical (stable key order).
  auto reparsed = Json::Parse(p.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), p.Dump());
}

TEST(JsonTest, ParseAcceptsWhitespaceAndEmptyContainers) {
  auto r = Json::Parse("  { \"a\" : [ ] , \"b\" : { } }  ");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->Get("a")->size(), 0u);
  EXPECT_TRUE(r->Get("b")->is_object());
}

TEST(JsonTest, ParseNumbers) {
  auto r = Json::Parse("[0, -12, 3.25, 1e3, -2.5e-2]");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->at(0).as_int(), 0);
  EXPECT_EQ(r->at(1).as_int(), -12);
  EXPECT_DOUBLE_EQ(r->at(2).as_double(), 3.25);
  EXPECT_DOUBLE_EQ(r->at(3).as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(r->at(4).as_double(), -0.025);
}

TEST(JsonTest, ParseStringEscapes) {
  auto r = Json::Parse(R"({"s": "a\tb\\c\"dA"})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->Get("s")->as_string(), "a\tb\\c\"dA");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  // Trailing garbage after a valid document is an error, not ignored.
  EXPECT_FALSE(Json::Parse("{} extra").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
}

}  // namespace
}  // namespace deltamon::obs
