#include "obs/provenance.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/wave_recorder.h"

namespace deltamon::obs {
namespace {

// The value/tuple codec and the ring classes are plain data structures
// with no engine dependency, so these tests run identically (and the
// Null twins keep them compiling) in OBS=ON and OBS=OFF builds — the
// suite only exercises the real classes, which exist in both.

TEST(WaveCodecTest, EveryValueKindRoundTrips) {
  const std::vector<Value> values = {
      Value(),                              // null
      Value(true),
      Value(false),
      Value(int64_t{-42}),
      Value(0.1),                           // not exactly representable
      Value(1e308),
      Value(-0.0),
      Value(std::string("hello \"w\"orld\n")),
      Value(std::string()),
      Value(Oid{7, TypeId{3}}),
  };
  for (const Value& v : values) {
    auto back = ValueFromJson(ValueToJson(v));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->kind(), v.kind()) << v.ToString();
    EXPECT_EQ(back->ToString(), v.ToString());
  }
}

TEST(WaveCodecTest, DoublesRoundTripBitExactly) {
  // %.17g guarantees a shortest-exact rendering: parsing it back must
  // reproduce the identical bits, or replay comparisons would drift.
  for (double d : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324}) {
    auto back = ValueFromJson(ValueToJson(Value(d)));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->ToString(), Value(d).ToString());
  }
}

TEST(WaveCodecTest, TupleRoundTripsAndRejectsGarbage) {
  Tuple t{Value(int64_t{1}), Value("x"), Value(2.5)};
  auto back = TupleFromJson(TupleToJson(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, t);

  EXPECT_FALSE(TupleFromJson(Json(int64_t{3})).ok());
  auto bad_cell = Json::Array();
  bad_cell.Append(Json("not a cell"));
  EXPECT_FALSE(TupleFromJson(bad_cell).ok());
}

WaveRecord SampleWave(uint64_t seq, uint64_t round) {
  WaveRecord w;
  w.seq = seq;
  w.trace_id = 0xabcdef;
  w.version = 12;
  w.round = round;
  w.threads = 4;
  w.kernels = false;
  WaveRelationDelta d;
  d.relation = "quantity";
  d.plus = {Tuple{Value(int64_t{7}), Value(int64_t{50})}};
  d.minus = {Tuple{Value(int64_t{7}), Value(int64_t{40})}};
  w.influents.push_back(d);
  WaveRelationDelta root;
  root.relation = "cnd";
  root.plus = {Tuple{Value(int64_t{7})}};
  w.roots.push_back(root);
  w.firings = {"monitor (7)"};
  return w;
}

TEST(WaveRecordTest, ToJsonFromJsonRoundTrips) {
  const WaveRecord w = SampleWave(3, 1);
  auto back = WaveRecord::FromJson(w.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->seq, w.seq);
  EXPECT_EQ(back->trace_id, w.trace_id);
  EXPECT_EQ(back->version, w.version);
  EXPECT_EQ(back->round, w.round);
  EXPECT_EQ(back->threads, w.threads);
  EXPECT_EQ(back->kernels, w.kernels);
  EXPECT_EQ(back->influents, w.influents);
  EXPECT_EQ(back->roots, w.roots);
  EXPECT_EQ(back->firings, w.firings);
  EXPECT_EQ(back->ToJson().Dump(), w.ToJson().Dump());
}

TEST(WaveRecordTest, OutcomeJsonExcludesIdentityAndSettings) {
  WaveRecord a = SampleWave(1, 1);
  WaveRecord b = SampleWave(99, 1);
  b.trace_id = 0;
  b.version = 0;
  b.threads = 8;
  b.kernels = true;
  // Same outcome under different identity stamps and settings: the
  // replay comparison must not see a difference.
  EXPECT_EQ(a.OutcomeJson().Dump(), b.OutcomeJson().Dump());
  b.firings.push_back("monitor (8)");
  EXPECT_NE(a.OutcomeJson().Dump(), b.OutcomeJson().Dump());
}

TEST(WaveFileTest, DumpParsesBackExactly) {
  std::vector<WaveRecord> waves = {SampleWave(1, 1), SampleWave(2, 2)};
  const Json file = WaveFileJson(waves, /*enabled=*/true, /*capacity=*/64,
                                 /*total=*/2, /*dropped=*/0);
  EXPECT_EQ(file.Get("schema")->as_string(), "deltamon.wave.v1");
  auto back = ParseWaveFile(file.Dump());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ(back->at(0).ToJson().Dump(), waves[0].ToJson().Dump());
  EXPECT_EQ(back->at(1).ToJson().Dump(), waves[1].ToJson().Dump());
}

TEST(WaveFileTest, RejectsWrongSchemaAndMalformedInput) {
  EXPECT_FALSE(ParseWaveFile("not json").ok());
  EXPECT_FALSE(ParseWaveFile("{}").ok());
  Json file = WaveFileJson({}, true, 64, 0, 0);
  file.Set("schema", "deltamon.wave.v2");
  EXPECT_FALSE(ParseWaveFile(file.Dump()).ok());
}

TEST(WaveRecorderTest, RingOverflowKeepsNewestAndCountsDrops) {
  WaveRecorder recorder(2);
  recorder.set_enabled(true);
  for (uint64_t i = 0; i < 5; ++i) recorder.Record(SampleWave(0, i + 1));
  EXPECT_EQ(recorder.total_records(), 5u);
  EXPECT_EQ(recorder.dropped_records(), 3u);
  auto snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  // seq is assigned by Record and survives the overflow.
  EXPECT_EQ(snapshot[0].seq, 4u);
  EXPECT_EQ(snapshot[1].seq, 5u);
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.total_records(), 0u);
}

FiringRecord SampleFiring(const std::string& rule) {
  FiringRecord r;
  r.rule = rule;
  r.round = 1;
  r.instances = {"(7)"};
  auto tree = Json::Object();
  tree.Set("relation", "cnd");
  auto lineage = Json::Array();
  lineage.Append(std::move(tree));
  r.lineage = std::move(lineage);
  r.captured_instances = 1;
  r.total_instances = 1;
  return r;
}

TEST(ProvenanceLogTest, RingOverflowKeepsNewestAndCountsDrops) {
  ProvenanceLog log(2);
  log.set_enabled(true);
  for (int i = 0; i < 3; ++i) log.Record(SampleFiring("r" + std::to_string(i)));
  EXPECT_EQ(log.total_records(), 3u);
  EXPECT_EQ(log.dropped_records(), 1u);
  auto snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].rule, "r1");
  EXPECT_EQ(snapshot[0].seq, 2u);
  EXPECT_EQ(snapshot[1].rule, "r2");
  EXPECT_EQ(snapshot[1].seq, 3u);
}

TEST(ProvenanceLogTest, JsonDocumentCarriesCountersAndFirings) {
  const std::vector<FiringRecord> records = {SampleFiring("monitor")};
  const Json doc = ProvenanceJson(records, /*enabled=*/true, /*capacity=*/128,
                                  /*total=*/5, /*dropped=*/4);
  EXPECT_TRUE(doc.Get("enabled")->as_bool());
  EXPECT_EQ(doc.Get("capacity")->as_int(), 128);
  EXPECT_EQ(doc.Get("total_records")->as_int(), 5);
  EXPECT_EQ(doc.Get("dropped_records")->as_int(), 4);
  ASSERT_EQ(doc.Get("firings")->array_items().size(), 1u);
  EXPECT_EQ(doc.Get("firings")->at(0).Get("rule")->as_string(), "monitor");
}

TEST(ProvenanceLogTest, FormatMentionsRuleAndTruncation) {
  FiringRecord r = SampleFiring("monitor");
  r.captured_instances = 1;
  r.total_instances = 3;
  const std::string text =
      FormatProvenance({r}, /*enabled=*/true, /*total=*/1, /*dropped=*/0);
  EXPECT_NE(text.find("monitor"), std::string::npos);
  EXPECT_NE(text.find("(7)"), std::string::npos);

  const std::string empty =
      FormatProvenance({}, /*enabled=*/false, /*total=*/0, /*dropped=*/0);
  EXPECT_NE(empty.find("off"), std::string::npos);
}

}  // namespace
}  // namespace deltamon::obs
