#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace deltamon::obs {
namespace {

TEST(CounterTest, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, OverflowWrapsAround) {
  Counter c;
  c.Add(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(c.value(), std::numeric_limits<uint64_t>::max());
  // Unsigned arithmetic: wrapping is well-defined, not UB, and the
  // monotonic-between-resets contract tolerates it (a diff that wraps is
  // visibly absurd rather than a crash).
  c.Add(2);
  EXPECT_EQ(c.value(), 1u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.value(), -15);
}

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
}

TEST(HistogramTest, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 42u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  // Interpolation is clamped to the observed range, so one sample answers
  // exactly for every percentile.
  EXPECT_EQ(h.Percentile(0), 42u);
  EXPECT_EQ(h.Percentile(50), 42u);
  EXPECT_EQ(h.Percentile(100), 42u);
}

TEST(HistogramTest, ZeroSampleHandled) {
  Histogram h;
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
}

TEST(HistogramTest, PercentilesWithinBucketResolution) {
  // Uniform 1..1000: the true p50 is 500, p95 is 950, p99 is 990. Bucket
  // resolution is a factor of two, so assert the half-open bucket bound.
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);

  uint64_t p50 = h.Percentile(50);
  uint64_t p95 = h.Percentile(95);
  uint64_t p99 = h.Percentile(99);
  EXPECT_GE(p50, 250u);
  EXPECT_LE(p50, 1000u);
  EXPECT_GE(p95, 475u);
  EXPECT_LE(p95, 1000u);
  EXPECT_GE(p99, 495u);
  EXPECT_LE(p99, 1000u);
  // Percentiles are monotone in p.
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

TEST(HistogramTest, PercentileExactOnPowerOfTwoSpikes) {
  // Two spikes a factor of 8 apart land in distinct buckets, so the rank
  // query must pick the right one: 90 samples near 64, 10 near 512.
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(64);
  for (int i = 0; i < 10; ++i) h.Record(512);
  EXPECT_LT(h.Percentile(50), 128u);
  EXPECT_GE(h.Percentile(99), 256u);
}

TEST(HistogramTest, LargeSamplesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(std::numeric_limits<uint64_t>::max());
  h.Record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), std::numeric_limits<uint64_t>::max());
  EXPECT_GE(h.Percentile(99), 1u);
}

TEST(RegistryTest, MetricPointersAreStableAndShared) {
  Registry r;
  Counter* a = r.GetCounter("test.counter");
  Counter* b = r.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);

  Gauge* g = r.GetGauge("test.gauge");
  Histogram* h = r.GetHistogram("test.hist_ns");
  EXPECT_EQ(g, r.GetGauge("test.gauge"));
  EXPECT_EQ(h, r.GetHistogram("test.hist_ns"));
}

TEST(RegistryTest, SnapshotReflectsAllKinds) {
  Registry r;
  r.GetCounter("c.one")->Add(7);
  r.GetGauge("g.level")->Set(-4);
  Histogram* h = r.GetHistogram("h.lat_ns");
  h->Record(100);
  h->Record(300);

  MetricsSnapshot snap = r.Snapshot();
  EXPECT_EQ(snap.CounterOr("c.one", 0), 7u);
  EXPECT_EQ(snap.CounterOr("c.missing", 99), 99u);
  EXPECT_EQ(snap.gauges.at("g.level"), -4);
  const auto& hs = snap.histograms.at("h.lat_ns");
  EXPECT_EQ(hs.count, 2u);
  EXPECT_EQ(hs.sum, 400u);
  EXPECT_EQ(hs.min, 100u);
  EXPECT_EQ(hs.max, 300u);
}

TEST(RegistryTest, ResetZeroesButKeepsPointersValid) {
  Registry r;
  Counter* c = r.GetCounter("c.reset");
  c->Add(5);
  r.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(r.GetCounter("c.reset"), c);
  c->Add(1);
  EXPECT_EQ(r.Snapshot().CounterOr("c.reset", 0), 1u);
}

TEST(SnapshotTest, DiffSinceDropsUnchangedEntries) {
  Registry r;
  r.GetCounter("c.hot")->Add(10);
  r.GetCounter("c.cold")->Add(3);
  r.GetGauge("g.level")->Set(8);
  MetricsSnapshot before = r.Snapshot();

  r.GetCounter("c.hot")->Add(5);
  r.GetGauge("g.level")->Set(2);
  MetricsSnapshot diff = r.Snapshot().DiffSince(before);

  EXPECT_EQ(diff.CounterOr("c.hot", 0), 5u);
  EXPECT_FALSE(diff.counters.contains("c.cold"));
  // Gauges keep their absolute value in a diff (a level, not a delta).
  EXPECT_EQ(diff.gauges.at("g.level"), 2);
}

TEST(MacrosTest, CountGoesToGlobalRegistry) {
  SetEnabled(true);
  uint64_t before =
      Registry::Global().Snapshot().CounterOr("test.macro_count", 0);
  DELTAMON_OBS_COUNT("test.macro_count", 2);
  DELTAMON_OBS_COUNT("test.macro_count", 3);
  uint64_t after =
      Registry::Global().Snapshot().CounterOr("test.macro_count", 0);
#if DELTAMON_OBS_ENABLED
  EXPECT_EQ(after - before, 5u);
#else
  EXPECT_EQ(after, before);
#endif
}

TEST(MacrosTest, RuntimeDisableSuppressesUpdates) {
  SetEnabled(true);
  DELTAMON_OBS_COUNT("test.macro_gate", 1);  // force registration
  uint64_t before =
      Registry::Global().Snapshot().CounterOr("test.macro_gate", 0);
  SetEnabled(false);
  DELTAMON_OBS_COUNT("test.macro_gate", 100);
  DELTAMON_OBS_RECORD("test.macro_gate_hist", 100);
  SetEnabled(true);
  EXPECT_EQ(Registry::Global().Snapshot().CounterOr("test.macro_gate", 0),
            before);
}

TEST(ScopedTimerTest, NullHistogramIsNoop) {
  ScopedTimer t(nullptr);  // must not crash on destruction
}

TEST(ScopedTimerTest, RecordsElapsedNanoseconds) {
  Histogram h;
  {
    ScopedTimer t(&h);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.max(), 0u);
}

TEST(HistogramTest, BatchPercentilesMatchIndividualCalls) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v * 3);
  const double ps[] = {50.0, 95.0, 99.0};
  uint64_t batch[3] = {0, 0, 0};
  h.Percentiles(ps, 3, batch);
  EXPECT_EQ(batch[0], h.Percentile(50));
  EXPECT_EQ(batch[1], h.Percentile(95));
  EXPECT_EQ(batch[2], h.Percentile(99));
  EXPECT_LE(batch[0], batch[1]);
  EXPECT_LE(batch[1], batch[2]);
}

TEST(HistogramTest, BatchPercentilesAcceptUnsortedAndOutOfRangeInputs) {
  Histogram h;
  for (uint64_t v = 0; v < 256; ++v) h.Record(v);
  const double ps[] = {99.0, -5.0, 150.0, 50.0};
  uint64_t out[4] = {0, 0, 0, 0};
  h.Percentiles(ps, 4, out);
  EXPECT_EQ(out[0], h.Percentile(99));
  EXPECT_EQ(out[1], h.Percentile(0));    // clamped low
  EXPECT_EQ(out[2], h.Percentile(100));  // clamped high
  EXPECT_EQ(out[3], h.Percentile(50));
}

TEST(SnapshotTest, HistogramSamplesCarryNonEmptyBuckets) {
  Registry r;
  Histogram* h = r.GetHistogram("x");
  h->Record(1);
  h->Record(100);
  h->Record(100);
  MetricsSnapshot snap = r.Snapshot();
  const auto& buckets = snap.histograms.at("x").buckets;
  ASSERT_FALSE(buckets.empty());
  uint64_t total = 0;
  uint64_t prev_upper = 0;
  for (const auto& [upper, count] : buckets) {
    EXPECT_GT(count, 0u);          // only non-empty buckets are sampled
    EXPECT_GT(upper, prev_upper);  // ascending upper bounds
    prev_upper = upper;
    total += count;
  }
  EXPECT_EQ(total, 3u);
}

}  // namespace
}  // namespace deltamon::obs
