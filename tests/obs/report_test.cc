#include "obs/report.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace deltamon::obs {
namespace {

MetricsSnapshot SampleSnapshot() {
  Registry r;
  r.GetCounter("propagator.differentials_executed")->Add(12);
  r.GetCounter("propagator.differentials_skipped")->Add(30);
  r.GetCounter("propagator.tuples_propagated")->Add(77);
  r.GetCounter("eval.clause_evals")->Add(5);
  r.GetGauge("db.undo_log_size")->Set(0);
  Histogram* h = r.GetHistogram("propagator.wave_ns");
  h->Record(1000);
  h->Record(3000);
  return r.Snapshot();
}

Json SampleBenchmarks() {
  Json arr = Json::Array();
  Json b = Json::Object();
  b.Set("name", "BM_Sample/100");
  b.Set("iterations", int64_t{2048});
  b.Set("real_time_ns", 1234.5);
  b.Set("cpu_time_ns", 1200.0);
  Json counters = Json::Object();
  counters.Set("items", 100.0);
  b.Set("counters", std::move(counters));
  arr.Append(std::move(b));
  return arr;
}

TEST(ReportTest, BuildProducesSchemaValidReport) {
  Json report =
      BuildBenchReport("unit_test", SampleBenchmarks(), 987654, SampleSnapshot());
  Status s = ValidateBenchReport(report);
  EXPECT_TRUE(s.ok()) << s;

  EXPECT_EQ(report.Get("schema")->as_string(), kBenchSchema);
  EXPECT_EQ(report.Get("name")->as_string(), "unit_test");
  const Json& summary = *report.Get("summary");
  EXPECT_EQ(summary.Get("wall_time_ns")->as_int(), 987654);
  EXPECT_EQ(summary.Get("differentials_executed")->as_int(), 12);
  EXPECT_EQ(summary.Get("differentials_skipped")->as_int(), 30);
  EXPECT_EQ(summary.Get("tuples_propagated")->as_int(), 77);
}

TEST(ReportTest, SummaryDefaultsToZeroWithoutPropagatorMetrics) {
  Json report =
      BuildBenchReport("empty", Json::Array(), 1, MetricsSnapshot{});
  ASSERT_TRUE(ValidateBenchReport(report).ok());
  EXPECT_EQ(report.Get("summary")->Get("differentials_executed")->as_int(), 0);
  EXPECT_EQ(report.Get("summary")->Get("tuples_propagated")->as_int(), 0);
}

TEST(ReportTest, ValidateRejectsMissingOrMistypedFields) {
  Json good =
      BuildBenchReport("t", SampleBenchmarks(), 10, SampleSnapshot());
  ASSERT_TRUE(ValidateBenchReport(good).ok());

  Json wrong_schema = good;
  wrong_schema.Set("schema", "deltamon.bench.v0");
  EXPECT_FALSE(ValidateBenchReport(wrong_schema).ok());

  Json bad_summary = good;
  Json summary = *good.Get("summary");
  summary.Set("wall_time_ns", "fast");
  bad_summary.Set("summary", std::move(summary));
  EXPECT_FALSE(ValidateBenchReport(bad_summary).ok());

  Json bad_bench = good;
  Json benches = Json::Array();
  Json nameless = Json::Object();
  nameless.Set("iterations", 1);
  benches.Append(std::move(nameless));
  bad_bench.Set("benchmarks", std::move(benches));
  EXPECT_FALSE(ValidateBenchReport(bad_bench).ok());

  EXPECT_FALSE(ValidateBenchReport(Json::Object()).ok());
  EXPECT_FALSE(ValidateBenchReport(Json(int64_t{3})).ok());
}

TEST(ReportTest, WriteReadParseValidateRoundTrip) {
  Json report = BuildBenchReport("roundtrip", SampleBenchmarks(), 555,
                                 SampleSnapshot());
  std::string dir = ::testing::TempDir();
  Status w = WriteBenchReport(report, dir);
  ASSERT_TRUE(w.ok()) << w;

  auto text = ReadTextFile(dir + "/BENCH_roundtrip.json");
  ASSERT_TRUE(text.ok()) << text.status();
  auto parsed = Json::Parse(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(ValidateBenchReport(*parsed).ok());

  // Byte-for-byte stability through the round trip.
  EXPECT_EQ(parsed->Dump(), report.Dump());
  // And the metrics made it through: counters, gauges, histograms.
  const Json& metrics = *parsed->Get("metrics");
  EXPECT_EQ(metrics.Get("counters")->Get("eval.clause_evals")->as_int(), 5);
  EXPECT_EQ(metrics.Get("gauges")->Get("db.undo_log_size")->as_int(), 0);
  const Json& wave = *metrics.Get("histograms")->Get("propagator.wave_ns");
  EXPECT_EQ(wave.Get("count")->as_int(), 2);
  EXPECT_EQ(wave.Get("sum")->as_int(), 4000);
  EXPECT_EQ(wave.Get("min")->as_int(), 1000);
  EXPECT_EQ(wave.Get("max")->as_int(), 3000);
  EXPECT_GE(wave.Get("p99")->as_int(), wave.Get("p50")->as_int());
}

TEST(ReportTest, EnvironmentJsonHasPinnedFacts) {
  Json env = EnvironmentJson();
  ASSERT_TRUE(env.is_object());
  EXPECT_TRUE(env.Get("compiler")->is_string());
  EXPECT_TRUE(env.Get("build_type")->is_string());
  EXPECT_TRUE(env.Get("obs_compiled_in")->is_bool());
  EXPECT_GE(env.Get("cpu_count")->as_int(), 1);
  EXPECT_GT(env.Get("timestamp_unix")->as_int(), 0);
}

TEST(ReportTest, FormatSnapshotRendersAllSections) {
  std::string text = FormatSnapshot(SampleSnapshot());
  EXPECT_NE(text.find("propagator.differentials_executed"), std::string::npos);
  EXPECT_NE(text.find("db.undo_log_size"), std::string::npos);
  EXPECT_NE(text.find("propagator.wave_ns"), std::string::npos);
  EXPECT_EQ(FormatSnapshot(MetricsSnapshot{}), "  (no metrics recorded)\n");
}

TEST(ReportTest, ValidateAcceptsV1Reports) {
  // The committed bench/baselines predate the v2 bump (histogram buckets);
  // their schema tag must keep validating so bench_diff can compare
  // against them.
  Json report = BuildBenchReport("sample", SampleBenchmarks(),
                                 /*wall_time_ns=*/1, SampleSnapshot());
  ASSERT_TRUE(ValidateBenchReport(report).ok());
  EXPECT_EQ(report.Get("schema")->as_string(), kBenchSchema);
  Json v1 = report;
  v1.Set("schema", kBenchSchemaV1);
  EXPECT_TRUE(ValidateBenchReport(v1).ok());
  Json unknown = report;
  unknown.Set("schema", "deltamon.bench.v99");
  EXPECT_FALSE(ValidateBenchReport(unknown).ok());
}

TEST(PrometheusTest, RendersCountersGaugesAndCumulativeHistograms) {
  std::string text = FormatPrometheus(SampleSnapshot());
  // Names are mangled to the [a-zA-Z0-9_:] alphabet.
  EXPECT_NE(text.find("# TYPE propagator_differentials_executed counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("propagator_differentials_executed 12"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE db_undo_log_size gauge"), std::string::npos)
      << text;
  // Histogram series: cumulative buckets ending in +Inf, then _sum/_count.
  EXPECT_NE(text.find("# TYPE propagator_wave_ns histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("propagator_wave_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("propagator_wave_ns_sum 4000"), std::string::npos)
      << text;
  EXPECT_NE(text.find("propagator_wave_ns_count 2"), std::string::npos)
      << text;
  // Build identity rides along on every render — even an empty snapshot
  // produces the build_info and uptime gauges.
  std::string empty = FormatPrometheus(MetricsSnapshot{});
  EXPECT_NE(empty.find("# TYPE deltamon_build_info gauge"),
            std::string::npos)
      << empty;
  EXPECT_NE(empty.find("deltamon_build_info{version=\""), std::string::npos)
      << empty;
  EXPECT_NE(empty.find("git_sha=\""), std::string::npos) << empty;
  EXPECT_NE(empty.find("obs=\""), std::string::npos) << empty;
  EXPECT_NE(empty.find("process_uptime_seconds "), std::string::npos)
      << empty;
}

TEST(PrometheusTest, BucketCountsAreCumulativeAndOrdered) {
  Registry r;
  Histogram* h = r.GetHistogram("lat.ns");
  h->Record(1);    // bucket upper 1
  h->Record(3);    // bucket upper 4
  h->Record(3);
  h->Record(100);  // bucket upper 128
  std::string text = FormatPrometheus(r.Snapshot());
  size_t b1 = text.find("lat_ns_bucket{le=\"1\"} 1");
  size_t b4 = text.find("lat_ns_bucket{le=\"4\"} 3");
  size_t b128 = text.find("lat_ns_bucket{le=\"128\"} 4");
  size_t binf = text.find("lat_ns_bucket{le=\"+Inf\"} 4");
  ASSERT_NE(b1, std::string::npos) << text;
  ASSERT_NE(b4, std::string::npos) << text;
  ASSERT_NE(b128, std::string::npos) << text;
  ASSERT_NE(binf, std::string::npos) << text;
  EXPECT_LT(b1, b4);
  EXPECT_LT(b4, b128);
  EXPECT_LT(b128, binf);
}

}  // namespace
}  // namespace deltamon::obs
