/// Request tracing primitives: the trace-id mint, phase arithmetic on
/// RequestRecord, the bounded FlightRecorder ring with its non-silent
/// dropped counter, the /debug/requests and Chrome-trace JSON documents,
/// the SlowLog ring + report formatter, and (when obs is compiled in)
/// ScopedTraceId stamping every span with the current trace id.

#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace deltamon::obs {
namespace {

/// A fully-stamped record with strictly increasing phase timestamps.
RequestRecord MakeRecord(uint64_t trace_id, uint64_t base_ns = 1000) {
  RequestRecord r;
  r.context.trace_id = trace_id;
  r.context.connection_id = 7;
  r.context.session_id = 7;
  r.context.statement_ordinal = trace_id;
  r.statement = "commit;";
  r.reply_flushed = true;
  r.enqueue_ns = base_ns;
  r.dequeue_ns = base_ns + 100;
  r.exec_end_ns = base_ns + 600;
  r.reply_queued_ns = base_ns + 650;
  r.reply_flushed_ns = base_ns + 900;
  r.reply_bytes = 42;
  return r;
}

TEST(TraceIdTest, MintIsMonotonicAndNeverZero) {
  const uint64_t first = NextTraceId();
  EXPECT_GT(first, 0u) << "0 must stay reserved for 'no trace'";
  EXPECT_EQ(NextTraceId(), first + 1);
  EXPECT_EQ(NextTraceId(), first + 2);
}

TEST(TraceIdTest, MonotonicClockAdvances) {
  const uint64_t a = MonotonicNowNs();
  const uint64_t b = MonotonicNowNs();
  EXPECT_GT(a, 0u);
  EXPECT_GE(b, a);
}

TEST(StatementPreviewTest, TruncatesLongStatementsWithEllipsis) {
  EXPECT_EQ(StatementPreview("commit;"), "commit;");
  const std::string longer(kStatementPreviewBytes + 50, 'x');
  const std::string preview = StatementPreview(longer);
  EXPECT_EQ(preview.size(), kStatementPreviewBytes + 3);
  EXPECT_EQ(preview.substr(preview.size() - 3), "...");
}

TEST(RequestRecordTest, PhaseDurationsDecomposeTheTotal) {
  const RequestRecord r = MakeRecord(1);
  EXPECT_EQ(r.QueueWaitNs(), 100u);
  EXPECT_EQ(r.ExecNs(), 500u);
  EXPECT_EQ(r.ReplyWriteNs(), 250u);
  EXPECT_EQ(r.TotalNs(), 900u);
  // The three phases plus the queued->flushed gap account for everything.
  EXPECT_LE(r.QueueWaitNs() + r.ExecNs() + r.ReplyWriteNs(), r.TotalNs());
}

TEST(RequestRecordTest, PhasesClampOnSkewAndMissingStamps) {
  RequestRecord r;
  r.enqueue_ns = 500;
  r.dequeue_ns = 400;  // skew: must clamp to 0, not wrap
  EXPECT_EQ(r.QueueWaitNs(), 0u);
  EXPECT_EQ(r.ExecNs(), 0u);        // never executed
  EXPECT_EQ(r.ReplyWriteNs(), 0u);  // never flushed
  // An aborted request totals to its latest stamped phase.
  r.dequeue_ns = 700;
  r.exec_end_ns = 900;
  EXPECT_EQ(r.TotalNs(), 400u);
}

TEST(RequestRecordTest, ToJsonRoundTripsThroughTheParser) {
  const Json doc = MakeRecord(3).ToJson();
  auto parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Get("trace_id")->as_int(), 3);
  EXPECT_EQ(parsed->Get("statement")->as_string(), "commit;");
  EXPECT_TRUE(parsed->Get("reply_flushed")->as_bool());
  const Json* phases = parsed->Get("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_EQ(phases->Get("queue_wait_ns")->as_int(), 100);
  EXPECT_EQ(phases->Get("exec_ns")->as_int(), 500);
  EXPECT_EQ(phases->Get("reply_write_ns")->as_int(), 250);
  EXPECT_EQ(phases->Get("total_ns")->as_int(), 900);
}

TEST(FlightRecorderTest, RingEvictsOldestAndCountsDrops) {
  FlightRecorder recorder(/*capacity=*/4);
  for (uint64_t id = 1; id <= 10; ++id) recorder.Record(MakeRecord(id));
  const std::vector<RequestRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  // Oldest-to-newest: the survivors are the most recent four.
  EXPECT_EQ(snapshot.front().context.trace_id, 7u);
  EXPECT_EQ(snapshot.back().context.trace_id, 10u);
  EXPECT_EQ(recorder.total_records(), 10u);
  EXPECT_EQ(recorder.dropped_records(), 6u);
  EXPECT_EQ(recorder.capacity(), 4u);
}

TEST(FlightRecorderTest, ClearEmptiesTheRingButKeepsTheTallies) {
  FlightRecorder recorder(/*capacity=*/2);
  recorder.Record(MakeRecord(1));
  recorder.Record(MakeRecord(2));
  recorder.Record(MakeRecord(3));
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.total_records(), 3u);
  EXPECT_EQ(recorder.dropped_records(), 1u);
}

TEST(FlightRecorderTest, ZeroCapacityDropsEverything) {
  FlightRecorder recorder(/*capacity=*/0);
  recorder.Record(MakeRecord(1));
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.dropped_records(), 1u);
  EXPECT_EQ(recorder.total_records(), 1u);
}

TEST(FlightRecorderTest, NullRecorderIsInertButValid) {
  NullFlightRecorder recorder;
  recorder.Record(RequestRecord{});
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.total_records(), 0u);
  EXPECT_EQ(recorder.dropped_records(), 0u);
  EXPECT_EQ(recorder.capacity(), 0u);
}

TEST(FlightRecorderTest, DebugRequestsDocumentIsWellFormed) {
  const Json doc =
      FlightRecorderJson({MakeRecord(1), MakeRecord(2)}, /*capacity=*/256,
                         /*total=*/9, /*dropped=*/7);
  auto parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Get("capacity")->as_int(), 256);
  EXPECT_EQ(parsed->Get("total_records")->as_int(), 9);
  EXPECT_EQ(parsed->Get("dropped_records")->as_int(), 7);
  const Json* requests = parsed->Get("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_TRUE(requests->is_array());
  ASSERT_EQ(requests->size(), 2u);
  EXPECT_EQ(requests->at(1).Get("trace_id")->as_int(), 2);
}

TEST(FlightRecorderTest, EmptyDocumentIsStillValidJson) {
  auto parsed = Json::Parse(FlightRecorderJson({}, 0, 0, 0).Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Get("requests")->size(), 0u);
}

TEST(ChromeTraceTest, RequestsExportEmitsCompleteEventsPerPhase) {
  const Json doc =
      RequestsChromeTraceJson({MakeRecord(1, 5000), MakeRecord(2, 6000)});
  auto parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Json* events = parsed->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  // Per fully-stamped record: one "request" span + three phase spans.
  ASSERT_EQ(events->size(), 8u);
  for (const Json& e : events->array_items()) {
    EXPECT_EQ(e.Get("ph")->as_string(), "X");
    EXPECT_GE(e.Get("ts")->as_double(), 0.0);  // normalized to min enqueue
    EXPECT_GE(e.Get("dur")->as_double(), 0.0);
    EXPECT_EQ(e.Get("tid")->as_int(), 7);  // the connection id
  }
  const Json& request = events->at(0);
  EXPECT_EQ(request.Get("name")->as_string(), "request");
  ASSERT_NE(request.Get("args"), nullptr);
  EXPECT_EQ(request.Get("args")->Get("trace_id")->as_int(), 1);
  EXPECT_EQ(request.Get("args")->Get("statement")->as_string(), "commit;");
}

TEST(ChromeTraceTest, AbortedRequestsSkipUnreachedPhases) {
  RequestRecord aborted;
  aborted.context.trace_id = 1;
  aborted.enqueue_ns = 100;  // connection died before dequeue
  const Json doc = RequestsChromeTraceJson({aborted});
  EXPECT_EQ(doc.Get("traceEvents")->size(), 1u);  // just the request span
}

TEST(SlowLogTest, RecordsAreBoundedAndFormatted) {
  SlowLog& log = SlowLog::Global();
  log.Clear();
  const uint64_t total_before = log.total_records();
  log.set_threshold_ns(5'000'000);

  SlowRecord slow;
  slow.context.trace_id = 99;
  slow.context.connection_id = 3;
  slow.context.statement_ordinal = 2;
  slow.statement = "commit;";
  slow.elapsed_ns = 7'500'000;
  slow.span_tree = "rules.check_phase 1ms\n  rules.round 1ms\n";
  slow.profile_text = "  quantity(i) < 10: 1 evals\n";
  log.Record(slow);

  EXPECT_EQ(log.total_records(), total_before + 1);
  ASSERT_EQ(log.Snapshot().size(), 1u);
  EXPECT_EQ(log.Snapshot()[0].context.trace_id, 99u);

  const std::string report = log.Format();
  EXPECT_NE(report.find("SLOW STATEMENTS (threshold 5.000 ms"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("[trace 99] conn 3 stmt 2: 7.500 ms"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("  statement: commit;"), std::string::npos) << report;
  // The captured span tree is indented under the entry.
  EXPECT_NE(report.find("    rules.check_phase"), std::string::npos) << report;
  EXPECT_NE(report.find("      rules.round"), std::string::npos) << report;
  EXPECT_NE(report.find("  profile:"), std::string::npos) << report;

  auto parsed = Json::Parse(log.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Get("threshold_ns")->as_int(), 5'000'000);
  ASSERT_EQ(parsed->Get("slow")->size(), 1u);
  EXPECT_EQ(parsed->Get("slow")->at(0).Get("trace_id")->as_int(), 99);

  log.set_threshold_ns(0);
  log.Clear();
}

TEST(SlowLogTest, DisabledThresholdReportsOff) {
  SlowLog& log = SlowLog::Global();
  log.Clear();
  log.set_threshold_ns(0);
  EXPECT_NE(log.Format().find("threshold off, 0 recorded"), std::string::npos);
}

TEST(SlowLogTest, OverflowEvictsOldestAndCountsDrops) {
  SlowLog& log = SlowLog::Global();
  log.Clear();
  const uint64_t dropped_before = log.dropped_records();
  for (uint64_t id = 1; id <= log.capacity() + 5; ++id) {
    SlowRecord r;
    r.context.trace_id = id;
    log.Record(r);
  }
  const std::vector<SlowRecord> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), log.capacity());
  EXPECT_EQ(snapshot.front().context.trace_id, 6u);
  EXPECT_EQ(log.dropped_records(), dropped_before + 5);
  EXPECT_NE(log.Format().find("dropped"), std::string::npos);
  log.Clear();
}

#if DELTAMON_OBS_ENABLED

TEST(ScopedTraceIdTest, NestsAndRestores) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    ScopedTraceId outer(41);
    EXPECT_EQ(CurrentTraceId(), 41u);
    {
      ScopedTraceId inner(42);
      EXPECT_EQ(CurrentTraceId(), 42u);
    }
    EXPECT_EQ(CurrentTraceId(), 41u);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST(ScopedTraceIdTest, SpansInheritTheCurrentTraceId) {
  RingTraceSink ring(16);
  TraceSink* previous = GetTraceSink();
  SetTraceSink(&ring);
  SetEnabled(true);
  {
    ScopedTraceId scope(1234);
    Span traced("net", "statement");
  }
  { Span untraced("net", "idle"); }
  SetTraceSink(previous);

  ASSERT_EQ(ring.events().size(), 2u);
  EXPECT_EQ(SpanField(ring.events()[0], "trace_id", 0), 1234);
  // Outside a request, spans carry no trace_id field at all.
  EXPECT_EQ(SpanField(ring.events()[1], "trace_id", -1), -1);
}

#endif  // DELTAMON_OBS_ENABLED

}  // namespace
}  // namespace deltamon::obs
