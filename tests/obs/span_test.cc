/// Hierarchical span tracing: RAII nesting, parent/child linkage through
/// the thread-local current-span chain, the Chrome trace_event export, the
/// span-tree printer, and the ring sink's non-silent overflow.

#include "obs/span.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace deltamon::obs {
namespace {

/// Installs a ring sink for the test body and restores the previous sink
/// (and the metrics toggle) afterwards, so tests cannot leak a dangling
/// sink into each other.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = GetTraceSink();
    SetTraceSink(&ring_);
    obs::SetEnabled(true);
  }
  void TearDown() override { SetTraceSink(previous_); }

  RingTraceSink ring_{1024};
  TraceSink* previous_ = nullptr;
};

TEST(SpanNoSinkTest, SpanIsInactiveWithoutASink) {
  ASSERT_EQ(GetTraceSink(), nullptr);
  Span span("test", "idle");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  EXPECT_EQ(Span::CurrentId(), 0u);
  span.AddField("ignored", 1);  // must be a harmless no-op
}

TEST_F(SpanTest, EmitsOneEventWithBookkeepingFields) {
  {
    Span span("propagation", "wave");
    EXPECT_TRUE(span.active());
    EXPECT_NE(span.id(), 0u);
    EXPECT_EQ(Span::CurrentId(), span.id());
    span.AddField("tuples", 7);
  }
  EXPECT_EQ(Span::CurrentId(), 0u);
  ASSERT_EQ(ring_.events().size(), 1u);
  const TraceEvent& e = ring_.events().front();
  EXPECT_TRUE(IsSpanEvent(e));
  EXPECT_EQ(e.category, "propagation");
  EXPECT_EQ(e.name, "wave");
  EXPECT_NE(SpanField(e, "span_id", 0), 0);
  EXPECT_EQ(SpanField(e, "parent_id", -1), 0);
  EXPECT_GE(SpanField(e, "dur_ns", -1), 0);
  EXPECT_EQ(SpanField(e, "tuples", 0), 7);
}

TEST_F(SpanTest, NestedSpansLinkParentToChild) {
  {
    Span outer("rules", "check_phase");
    {
      Span inner("propagation", "wave");
      EXPECT_EQ(Span::CurrentId(), inner.id());
    }
    // Destroying the child must restore the parent as current.
    EXPECT_EQ(Span::CurrentId(), outer.id());
  }
  // Children end (and are recorded) before their parents.
  ASSERT_EQ(ring_.events().size(), 2u);
  const TraceEvent& inner = ring_.events()[0];
  const TraceEvent& outer = ring_.events()[1];
  EXPECT_EQ(inner.name, "wave");
  EXPECT_EQ(outer.name, "check_phase");
  EXPECT_EQ(SpanField(inner, "parent_id", -1), SpanField(outer, "span_id", 0));
}

TEST_F(SpanTest, SetNameReplacesTheConstructionName) {
  {
    Span span("propagation", "node");
    span.SetName("node:quantity");
  }
  ASSERT_EQ(ring_.events().size(), 1u);
  EXPECT_EQ(ring_.events()[0].name, "node:quantity");
}

TEST_F(SpanTest, ConcurrentSpansGetDistinctIdsAndThreads) {
  constexpr int kThreads = 4;
  std::vector<int64_t> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i, &ids] {
      Span span("test", "worker");
      ids[i] = static_cast<int64_t>(span.id());
    });
  }
  for (std::thread& t : threads) t.join();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "span ids must be unique across threads";
}

TEST_F(SpanTest, ChromeTraceJsonIsLoadableCompleteEvents) {
  {
    Span outer("rules", "check_phase");
    Span inner("propagation", "wave");
    inner.AddField("base_influents_changed", 2);
  }
  Json doc = ChromeTraceJson(ring_.events());
  // Round-trip through the parser: the export must be well-formed JSON.
  auto parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  const Json* trace_events = doc.Get("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->size(), 2u);
  for (const Json& e : trace_events->array_items()) {
    EXPECT_EQ(e.Get("ph")->as_string(), "X");
    EXPECT_GE(e.Get("ts")->as_double(), 0.0);  // normalized to min start
    EXPECT_GE(e.Get("dur")->as_double(), 0.0);
    ASSERT_NE(e.Get("args"), nullptr);
    EXPECT_NE(e.Get("args")->Get("span_id"), nullptr);
  }
  // User fields survive into args; bookkeeping stays out of it.
  const Json& wave = trace_events->at(0);
  EXPECT_EQ(wave.Get("name")->as_string(), "wave");
  EXPECT_EQ(wave.Get("args")->Get("base_influents_changed")->as_int(), 2);
  EXPECT_EQ(wave.Get("args")->Get("dur_ns"), nullptr);
}

TEST_F(SpanTest, NonSpanEventsAreSkippedByTheExporter) {
  EmitTrace(TraceEvent{"propagation", "differential", {{"produced", 3}}});
  { Span span("rules", "round"); }
  Json doc = ChromeTraceJson(ring_.events());
  EXPECT_EQ(doc.Get("traceEvents")->size(), 1u);
}

TEST_F(SpanTest, FormatSpanTreeIndentsChildrenUnderParents) {
  {
    Span check("rules", "check_phase");
    {
      Span round("rules", "round");
      round.AddField("round", 1);
      { Span wave("propagation", "wave"); }
    }
  }
  std::string tree = FormatSpanTree(ring_.events());
  EXPECT_NE(tree.find("rules.check_phase "), std::string::npos) << tree;
  EXPECT_NE(tree.find("\n  rules.round "), std::string::npos) << tree;
  EXPECT_NE(tree.find("\n    propagation.wave "), std::string::npos) << tree;
  EXPECT_NE(tree.find("{round=1}"), std::string::npos) << tree;
}

TEST_F(SpanTest, FormatSpanTreePromotesOrphansToRoots) {
  // Simulate a ring that dropped the parent: a span whose parent_id no
  // longer resolves must still print (as a root), not vanish or loop.
  TraceEvent orphan;
  orphan.category = "propagation";
  orphan.name = "node";
  orphan.fields = {{"span_id", 77},
                   {"parent_id", 42},  // never recorded
                   {"thread", 1},
                   {"start_ns", 100},
                   {"dur_ns", 50}};
  EmitTrace(orphan);
  std::string tree = FormatSpanTree(ring_.events());
  EXPECT_NE(tree.find("propagation.node "), std::string::npos) << tree;
}

TEST_F(SpanTest, FormatSpanTreeOnEmptyRingSaysSo) {
  EXPECT_EQ(FormatSpanTree(ring_.events()), "(no spans recorded)\n");
}

TEST(RingOverflowTest, OverflowBumpsDroppedEventsAndCounter) {
  obs::SetEnabled(true);
#if DELTAMON_OBS_ENABLED
  uint64_t before = Registry::Global()
                        .GetCounter("obs.trace.dropped_events")
                        ->value();
#endif
  RingTraceSink ring(2);
  for (int i = 0; i < 5; ++i) {
    ring.OnEvent(TraceEvent{"test", "e" + std::to_string(i), {}});
  }
  EXPECT_EQ(ring.events().size(), 2u);
  EXPECT_EQ(ring.dropped_events(), 3u);
  // The survivors are the most recent events.
  EXPECT_EQ(ring.events()[0].name, "e3");
  EXPECT_EQ(ring.events()[1].name, "e4");
#if DELTAMON_OBS_ENABLED
  uint64_t after = Registry::Global()
                       .GetCounter("obs.trace.dropped_events")
                       ->value();
  EXPECT_EQ(after - before, 3u);
#endif
}

TEST(RingOverflowTest, ZeroCapacityDropsEverything) {
  RingTraceSink ring(0);
  ring.OnEvent(TraceEvent{"test", "e", {}});
  EXPECT_TRUE(ring.events().empty());
  EXPECT_EQ(ring.dropped_events(), 1u);
}

TEST(RingOverflowTest, ClearKeepsTheDroppedTally) {
  RingTraceSink ring(1);
  ring.OnEvent(TraceEvent{"test", "a", {}});
  ring.OnEvent(TraceEvent{"test", "b", {}});
  ring.Clear();
  EXPECT_TRUE(ring.events().empty());
  EXPECT_EQ(ring.dropped_events(), 1u);
}

}  // namespace
}  // namespace deltamon::obs
