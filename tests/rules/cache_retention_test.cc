/// EvalCache retention across propagation waves: the expensive indexed
/// extents of recursive fixpoints survive BeginWave unless their inputs
/// changed (or they were built against node-local overlay / hidden-view /
/// transaction state). Regression coverage for the wave-lifecycle bug
/// where per-wave fresh caches silently discarded every materialization —
/// and, conversely, for the staleness hazard retention introduces: a
/// retained extent must never be served after its inputs changed.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "objectlog/eval.h"
#include "rules/engine.h"
#include "rules/rule_manager.h"
#include "storage/base_relation.h"

namespace deltamon {
namespace {

using objectlog::Clause;
using objectlog::EvalCache;
using objectlog::EvalState;
using objectlog::Literal;
using objectlog::Term;

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
Tuple T1(int64_t a) { return Tuple{Value(a)}; }
Tuple T2(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

std::unique_ptr<BaseRelation> MakeExtent(RelationId rel) {
  return std::make_unique<BaseRelation>(rel, "extent",
                                        Schema({IntCol(), IntCol()}));
}

TEST(EvalCacheWaveTest, BeginWaveDropsPositionalKeepsRetainableIndexed) {
  EvalCache cache;
  cache.Insert(1, EvalState::kNew, TupleSet{T2(1, 2)});
  cache.InsertIndexed(2, EvalState::kNew, MakeExtent(2),
                      /*retainable=*/true);
  cache.InsertIndexed(3, EvalState::kNew, MakeExtent(3),
                      /*retainable=*/false);
  cache.InsertIndexed(4, EvalState::kOld, MakeExtent(4),
                      /*retainable=*/true);
  EXPECT_EQ(cache.indexed_inserts(), 3u);

  // Drop pred: kOld always, kNew only for relation 9 (inputs unchanged
  // for 2 and 3).
  cache.BeginWave([](RelationId rel, EvalState state) {
    return state == EvalState::kOld || rel == 9;
  });

  // Positional extents are wave-scoped: always gone.
  EXPECT_EQ(cache.Find(1, EvalState::kNew), nullptr);
  // Retainable + inputs unchanged → survives.
  EXPECT_NE(cache.FindIndexed(2, EvalState::kNew), nullptr);
  // Non-retainable → dropped even though the drop pred spared it.
  EXPECT_EQ(cache.FindIndexed(3, EvalState::kNew), nullptr);
  // kOld extents never survive (the next wave has a different old state).
  EXPECT_EQ(cache.FindIndexed(4, EvalState::kOld), nullptr);
  // The surviving hit counted as a reuse.
  EXPECT_EQ(cache.indexed_reuses(), 1u);

  // A second wave whose drop pred flags relation 2 evicts it.
  cache.BeginWave(
      [](RelationId rel, EvalState) { return rel == 2; });
  EXPECT_EQ(cache.FindIndexed(2, EvalState::kNew), nullptr);
}

/// End-to-end retention through the rule manager: edge/tc transitive
/// closure scanned from a rule condition that also reads a separately
/// changing base relation. Waves that change only the unrelated base must
/// reuse the retained tc materialization; a wave that changes edge must
/// rebuild it (and the rule must keep firing correctly on the fresh
/// closure — the staleness check).
class RetentionRuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog& cat = engine_.db.catalog();
    edge_ = *cat.CreateStoredFunction(
        "edge", FunctionSignature{{IntCol()}, {IntCol()}});
    noise_ = *cat.CreateStoredFunction("noise",
                                       FunctionSignature{{IntCol()}, {}});
    tc_ = *cat.CreateDerivedFunction(
        "tc", FunctionSignature{{}, {IntCol(), IntCol()}});
    {
      Clause base;
      base.head_relation = tc_;
      base.num_vars = 2;
      base.head_args = {Term::Var(0), Term::Var(1)};
      base.body = {Literal::Relation(edge_, {Term::Var(0), Term::Var(1)})};
      ASSERT_TRUE(engine_.registry.Define(tc_, std::move(base), cat).ok());
    }
    {
      Clause step;
      step.head_relation = tc_;
      step.num_vars = 3;
      step.head_args = {Term::Var(0), Term::Var(2)};
      step.body = {Literal::Relation(edge_, {Term::Var(0), Term::Var(1)}),
                   Literal::Relation(tc_, {Term::Var(1), Term::Var(2)})};
      ASSERT_TRUE(engine_.registry.Define(tc_, std::move(step), cat).ok());
    }
    // cnd(X) <- noise(X), tc(0, X): the differential over Δnoise scans the
    // recursive tc — the FixpointMaterialize the cache retains.
    cond_ = *cat.CreateDerivedFunction("cnd_reach",
                                       FunctionSignature{{}, {IntCol()}});
    Clause c;
    c.head_relation = cond_;
    c.num_vars = 1;
    c.head_args = {Term::Var(0)};
    c.body = {Literal::Relation(noise_, {Term::Var(0)}),
              Literal::Relation(tc_, {Term::Const(Value(0)), Term::Var(0)})};
    ASSERT_TRUE(engine_.registry.Define(cond_, std::move(c), cat).ok());

    engine_.db.MarkMonitored(edge_);
    engine_.db.MarkMonitored(noise_);

    auto rule = engine_.rules.CreateRule(
        "reach", cond_,
        [this](Database&, const Tuple&, const std::vector<Tuple>& xs) {
          for (const Tuple& x : xs) fired_.push_back(x[0].AsInt());
          return Status::OK();
        });
    ASSERT_TRUE(rule.ok());
    ASSERT_TRUE(engine_.rules.Activate(*rule).ok());

    // Base graph 0->1->2, committed before the measured waves.
    ASSERT_TRUE(engine_.db.Insert(edge_, T2(0, 1)).ok());
    ASSERT_TRUE(engine_.db.Insert(edge_, T2(1, 2)).ok());
    ASSERT_TRUE(engine_.db.Commit().ok());
    fired_.clear();
  }

  const EvalCache& Cache() {
    const auto& caches = engine_.rules.eval_caches();
    EXPECT_EQ(caches.size(), 1u);  // single-threaded
    return caches[0];
  }

  Engine engine_;
  RelationId edge_ = kInvalidRelationId;
  RelationId noise_ = kInvalidRelationId;
  RelationId tc_ = kInvalidRelationId;
  RelationId cond_ = kInvalidRelationId;
  std::vector<int64_t> fired_;
};

TEST_F(RetentionRuleTest, TcMaterializationIsReusedAcrossNoiseOnlyWaves) {
  // Wave 1: noise-only change; tc(0,·) is materialized and cached.
  ASSERT_TRUE(engine_.db.Insert(noise_, T1(1)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_, (std::vector<int64_t>{1}));
  const uint64_t inserts1 = Cache().indexed_inserts();
  const uint64_t reuses1 = Cache().indexed_reuses();
  EXPECT_GE(inserts1, 1u);

  // Wave 2: another noise-only change. Edge did not change, so the tc
  // extent is served from the retained cache — reuses grow, inserts don't.
  ASSERT_TRUE(engine_.db.Insert(noise_, T1(2)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_, (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(Cache().indexed_inserts(), inserts1);
  EXPECT_GT(Cache().indexed_reuses(), reuses1);

  // Wave 3: edge changes too — the retained tc extent must be evicted and
  // rebuilt, and the rule must see the *new* closure (3 is now reachable).
  ASSERT_TRUE(engine_.db.Insert(edge_, T2(2, 3)).ok());
  ASSERT_TRUE(engine_.db.Insert(noise_, T1(3)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_GT(Cache().indexed_inserts(), inserts1);
}

TEST_F(RetentionRuleTest, StaleExtentIsNeverServedAfterEdgeDeletion) {
  ASSERT_TRUE(engine_.db.Insert(noise_, T1(2)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_, (std::vector<int64_t>{2}));  // 2 reachable via 0->1->2

  // Cut 1->2: with a stale retained closure, noise(1) would still report
  // 2... but re-deriving must not. (noise(2) is deleted and re-inserted
  // so the condition's Δ re-examines X=2 against the new closure.)
  ASSERT_TRUE(engine_.db.Delete(edge_, T2(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Delete(noise_, T1(2)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Insert(noise_, T1(2)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  // 2 is no longer reachable from 0, so the rule must not fire again.
  EXPECT_EQ(fired_, (std::vector<int64_t>{2}));
}

TEST_F(RetentionRuleTest, ThreadResizeAndRebuildClearTheCaches) {
  ASSERT_TRUE(engine_.db.Insert(noise_, T1(1)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_GE(Cache().indexed_inserts(), 1u);

  // Resizing the pool invalidates the per-worker cache vector.
  engine_.rules.SetNumThreads(2);
  EXPECT_TRUE(engine_.rules.eval_caches().empty());

  // The next wave re-populates per-worker caches and still fires right.
  ASSERT_TRUE(engine_.db.Insert(noise_, T1(2)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_, (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(engine_.rules.eval_caches().size(), 2u);
}

}  // namespace
}  // namespace deltamon
