/// Cascading rules: actions of one rule change influents of other rules,
/// exercising the multi-round deferred check phase (paper §1: after the
/// chosen rule's action, "change propagation is performed only when
/// changes affecting activated rules have occurred" again) and conflict
/// resolution across rounds.

#include <gtest/gtest.h>

#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon::rules {
namespace {

using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::Literal;
using objectlog::Term;

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
Tuple T(int64_t a) { return Tuple{Value(a)}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

/// A three-stage escalation pipeline over a single stored function
/// stage(x) -> s:
///   promote1: stage = 1  ->  set stage = 2
///   promote2: stage = 2  ->  set stage = 3
///   record:   stage = 3  ->  log the arrival
class CascadeTest : public ::testing::TestWithParam<MonitorMode> {
 protected:
  void SetUp() override {
    engine_.rules.SetMode(GetParam());
    Catalog& cat = engine_.db.catalog();
    stage_ = *cat.CreateStoredFunction(
        "stage", FunctionSignature{{IntCol()}, {IntCol()}});

    auto make_cond = [&](const std::string& name,
                         int64_t level) -> RelationId {
      RelationId cond = *cat.CreateDerivedFunction(
          name, FunctionSignature{{}, {IntCol()}});
      Clause c;
      c.head_relation = cond;
      c.num_vars = 1;
      c.head_args = {Term::Var(0)};
      c.body = {Literal::Relation(
          stage_, {Term::Var(0), Term::Const(Value(level))})};
      EXPECT_TRUE(engine_.registry.Define(cond, std::move(c), cat).ok());
      return cond;
    };

    auto promote = [this](int64_t to) {
      return [this, to](Database& db, const Tuple&,
                        const std::vector<Tuple>& xs) -> Status {
        for (const Tuple& x : xs) {
          order_.push_back({to - 1, x[0].AsInt()});
          DELTAMON_RETURN_IF_ERROR(
              db.Set(stage_, Tuple{x[0]}, Tuple{Value(to)}));
        }
        return Status::OK();
      };
    };

    RuleOptions high;
    high.priority = 5;
    auto r1 = engine_.rules.CreateRule("promote1", make_cond("at1", 1),
                                       promote(2), high);
    auto r2 = engine_.rules.CreateRule("promote2", make_cond("at2", 2),
                                       promote(3));
    auto r3 = engine_.rules.CreateRule(
        "record", make_cond("at3", 3),
        [this](Database&, const Tuple&, const std::vector<Tuple>& xs) {
          for (const Tuple& x : xs) order_.push_back({3, x[0].AsInt()});
          return Status::OK();
        });
    ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
    ASSERT_TRUE(engine_.rules.Activate(*r1).ok());
    ASSERT_TRUE(engine_.rules.Activate(*r2).ok());
    ASSERT_TRUE(engine_.rules.Activate(*r3).ok());
  }

  Engine engine_;
  RelationId stage_ = kInvalidRelationId;
  /// (stage observed, entity) in firing order.
  std::vector<std::pair<int64_t, int64_t>> order_;
};

TEST_P(CascadeTest, EscalatesThroughAllStages) {
  ASSERT_TRUE(engine_.db.Set(stage_, T(7), Tuple{Value(1)}).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  // The cascade runs to completion within one commit.
  EXPECT_EQ(order_, (std::vector<std::pair<int64_t, int64_t>>{
                        {1, 7}, {2, 7}, {3, 7}}));
  EXPECT_GE(engine_.rules.last_check().rounds, 3u);
  // Final state: stage 3.
  const BaseRelation* rel = engine_.db.catalog().GetBaseRelation(stage_);
  EXPECT_TRUE(rel->Contains(T(7, 3)));
}

TEST_P(CascadeTest, EntryAtMiddleStageSkipsEarlierRules) {
  ASSERT_TRUE(engine_.db.Set(stage_, T(9), Tuple{Value(2)}).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(order_, (std::vector<std::pair<int64_t, int64_t>>{
                        {2, 9}, {3, 9}}));
}

TEST_P(CascadeTest, MultipleEntitiesCascadeSetOriented) {
  ASSERT_TRUE(engine_.db.Set(stage_, T(1), Tuple{Value(1)}).ok());
  ASSERT_TRUE(engine_.db.Set(stage_, T(2), Tuple{Value(1)}).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  // Six firing events total: both entities pass all three stages, and each
  // rule firing handles both entities at once (set-oriented actions).
  ASSERT_EQ(order_.size(), 6u);
  const BaseRelation* rel = engine_.db.catalog().GetBaseRelation(stage_);
  EXPECT_TRUE(rel->Contains(T(1, 3)));
  EXPECT_TRUE(rel->Contains(T(2, 3)));
}

TEST_P(CascadeTest, CancellingCascadeLeavesNoTrace) {
  // Setting stage to 1 and removing it again in the same transaction: no
  // net change, no cascade.
  ASSERT_TRUE(engine_.db.Set(stage_, T(5), Tuple{Value(1)}).ok());
  ASSERT_TRUE(engine_.db.Delete(stage_, T(5, 1)).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_TRUE(order_.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, CascadeTest,
    ::testing::Values(MonitorMode::kIncremental, MonitorMode::kNaive,
                      MonitorMode::kHybrid),
    [](const ::testing::TestParamInfo<MonitorMode>& info) {
      switch (info.param) {
        case MonitorMode::kIncremental:
          return "Incremental";
        case MonitorMode::kNaive:
          return "Naive";
        case MonitorMode::kHybrid:
          return "Hybrid";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace deltamon::rules
