/// Foreign functions with user-defined differentials (paper §3's foreign
/// functions, §8's "incremental evaluation of foreign functions through
/// user defined differentials"): an external C++ table (a sensor feed)
/// participates in rule conditions; the user injects Δ-sets when the
/// external state changes and the calculus does the rest — including
/// old-state reconstruction by rolling the injected Δ back.

#include <map>

#include <gtest/gtest.h>

#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon::rules {
namespace {

using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::EvalState;
using objectlog::Literal;
using objectlog::Term;

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

/// An external sensor table room -> temperature, living outside the DBMS.
class SensorWorld {
 public:
  /// Changes a reading and returns the user-defined differential.
  DeltaSet SetReading(int64_t room, int64_t temp) {
    DeltaSet delta;
    auto it = readings_.find(room);
    if (it != readings_.end()) {
      if (it->second == temp) return delta;
      delta.ApplyDelete(T(room, it->second));
    }
    delta.ApplyInsert(T(room, temp));
    readings_[room] = temp;
    return delta;
  }

  objectlog::ForeignImpl MakeImpl() const {
    return [this](const ScanPattern& pattern,
                  const std::function<bool(const Tuple&)>& emit) -> Status {
      // Exploit a bound room column; otherwise scan everything.
      if (!pattern.empty() && pattern[0].has_value() &&
          pattern[0]->is_int()) {
        auto it = readings_.find(pattern[0]->AsInt());
        if (it != readings_.end()) emit(T(it->first, it->second));
        return Status::OK();
      }
      for (const auto& [room, temp] : readings_) {
        if (!emit(T(room, temp))) break;
      }
      return Status::OK();
    };
  }

 private:
  std::map<int64_t, int64_t> readings_;
};

class ForeignFunctionTest : public ::testing::TestWithParam<MonitorMode> {
 protected:
  void SetUp() override {
    engine_.rules.SetMode(GetParam());
    Catalog& cat = engine_.db.catalog();
    auto temp = cat.CreateForeignFunction(
        "ambient_temp", FunctionSignature{{IntCol()}, {IntCol()}});
    ASSERT_TRUE(temp.ok());
    temp_ = *temp;
    ASSERT_TRUE(engine_.registry
                    .RegisterForeign(temp_, world_.MakeImpl(), cat)
                    .ok());
    limit_ = *cat.CreateStoredFunction(
        "temp_limit", FunctionSignature{{IntCol()}, {IntCol()}});
    cond_ = *cat.CreateDerivedFunction(
        "cnd_overheat", FunctionSignature{{}, {IntCol()}});
    Clause c;
    c.head_relation = cond_;
    c.num_vars = 3;
    c.head_args = {Term::Var(0)};
    c.body = {Literal::Relation(temp_, {Term::Var(0), Term::Var(1)}),
              Literal::Relation(limit_, {Term::Var(0), Term::Var(2)}),
              Literal::Compare(CompareOp::kGt, Term::Var(1), Term::Var(2))};
    ASSERT_TRUE(engine_.registry.Define(cond_, std::move(c), cat).ok());

    auto rule = engine_.rules.CreateRule(
        "overheat", cond_,
        [this](Database&, const Tuple&, const std::vector<Tuple>& rooms) {
          for (const Tuple& r : rooms) alerts_.push_back(r[0].AsInt());
          return Status::OK();
        });
    ASSERT_TRUE(rule.ok());
    ASSERT_TRUE(engine_.rules.Activate(*rule).ok());

    ASSERT_TRUE(engine_.db.Set(limit_, Tuple{Value(1)},
                               Tuple{Value(80)}).ok());
    ASSERT_TRUE(engine_.db.Set(limit_, Tuple{Value(2)},
                               Tuple{Value(70)}).ok());
    ASSERT_TRUE(engine_.db.Commit().ok());
  }

  /// Updates the external world and injects the differential.
  void Reading(int64_t room, int64_t temp) {
    DeltaSet delta = world_.SetReading(room, temp);
    ASSERT_TRUE(engine_.db.InjectForeignDelta(temp_, delta).ok());
  }

  Engine engine_;
  SensorWorld world_;
  RelationId temp_ = kInvalidRelationId;
  RelationId limit_ = kInvalidRelationId;
  RelationId cond_ = kInvalidRelationId;
  std::vector<int64_t> alerts_;
};

TEST_P(ForeignFunctionTest, InjectedDeltaTriggersRule) {
  Reading(1, 75);
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_TRUE(alerts_.empty());  // 75 <= 80
  Reading(1, 95);
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(alerts_, (std::vector<int64_t>{1}));
}

TEST_P(ForeignFunctionTest, StrictSemanticsAcrossInjections) {
  Reading(1, 95);
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_EQ(alerts_.size(), 1u);
  // Hotter still: condition stays true, strict rule stays quiet.
  Reading(1, 99);
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(alerts_.size(), 1u);
  // Cool down and overheat again: fires again.
  Reading(1, 60);
  ASSERT_TRUE(engine_.db.Commit().ok());
  Reading(1, 85);
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(alerts_.size(), 2u);
}

TEST_P(ForeignFunctionTest, StoredSideChangesJoinAgainstForeignExtent) {
  Reading(2, 75);  // above room 2's limit of 70
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_EQ(alerts_, (std::vector<int64_t>{2}));
  // Raising the limit and lowering it back triggers once more (the stored
  // side is an influent like any other).
  ASSERT_TRUE(engine_.db.Set(limit_, Tuple{Value(2)},
                             Tuple{Value(90)}).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Set(limit_, Tuple{Value(2)},
                             Tuple{Value(70)}).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(alerts_, (std::vector<int64_t>{2, 2}));
}

TEST_P(ForeignFunctionTest, NoNetChangeInjectionIsQuiet) {
  Reading(1, 95);
  Reading(1, 75);  // back below the limit before commit
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_TRUE(alerts_.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ForeignFunctionTest,
    ::testing::Values(MonitorMode::kIncremental, MonitorMode::kNaive,
                      MonitorMode::kHybrid),
    [](const ::testing::TestParamInfo<MonitorMode>& info) {
      switch (info.param) {
        case MonitorMode::kIncremental:
          return "Incremental";
        case MonitorMode::kNaive:
          return "Naive";
        case MonitorMode::kHybrid:
          return "Hybrid";
      }
      return "Unknown";
    });

TEST(ForeignFunctionErrorsTest, Registration) {
  Engine engine;
  Catalog& cat = engine.db.catalog();
  RelationId stored = *cat.CreateStoredFunction(
      "s", FunctionSignature{{IntCol()}, {IntCol()}});
  auto impl = [](const ScanPattern&,
                 const std::function<bool(const Tuple&)>&) {
    return Status::OK();
  };
  // Only foreign relations accept implementations.
  EXPECT_FALSE(engine.registry.RegisterForeign(stored, impl, cat).ok());
  RelationId foreign = *cat.CreateForeignFunction(
      "f", FunctionSignature{{IntCol()}, {IntCol()}});
  EXPECT_TRUE(engine.registry.RegisterForeign(foreign, impl, cat).ok());
  EXPECT_FALSE(engine.registry.RegisterForeign(foreign, impl, cat).ok());
  // Injecting into a non-foreign relation is rejected.
  EXPECT_FALSE(engine.db.InjectForeignDelta(stored, DeltaSet()).ok());
  // Injecting into an unmonitored foreign relation is a silent no-op.
  EXPECT_TRUE(engine.db.InjectForeignDelta(foreign, DeltaSet()).ok());
}

TEST(ForeignFunctionEvalTest, OldStateByInjectedDeltaRollback) {
  Engine engine;
  Catalog& cat = engine.db.catalog();
  SensorWorld world;
  RelationId temp = *cat.CreateForeignFunction(
      "temp", FunctionSignature{{IntCol()}, {IntCol()}});
  ASSERT_TRUE(engine.registry.RegisterForeign(temp, world.MakeImpl(), cat)
                  .ok());
  world.SetReading(1, 50);
  DeltaSet delta = world.SetReading(1, 60);  // 50 -> 60

  std::unordered_map<RelationId, DeltaSet> deltas;
  deltas.emplace(temp, delta);
  objectlog::StateContext ctx;
  ctx.deltas = &deltas;
  objectlog::Evaluator ev(engine.db, engine.registry, ctx);
  TupleSet new_rows, old_rows;
  ASSERT_TRUE(ev.Evaluate(temp, EvalState::kNew, &new_rows).ok());
  ASSERT_TRUE(ev.Evaluate(temp, EvalState::kOld, &old_rows).ok());
  EXPECT_EQ(new_rows, (TupleSet{T(1, 60)}));
  EXPECT_EQ(old_rows, (TupleSet{T(1, 50)}));
}

}  // namespace
}  // namespace deltamon::rules
