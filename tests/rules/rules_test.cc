#include "rules/rule_manager.h"

#include <gtest/gtest.h>

#include "bench_util/inventory.h"
#include "rules/engine.h"

namespace deltamon::rules {
namespace {

using workload::BuildInventory;
using workload::GetFn;
using workload::InventoryConfig;
using workload::InventorySchema;
using workload::SetFn;

/// Fixture: the paper's monitor_items rule over the inventory schema, with
/// a recording action.
class MonitorItemsTest : public ::testing::TestWithParam<MonitorMode> {
 protected:
  void SetUp() override {
    engine_.rules.SetMode(GetParam());
    InventoryConfig config;
    config.num_items = 20;
    auto schema = BuildInventory(engine_, config);
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = *schema;
  }

  /// Creates and activates monitor_items with an action that records the
  /// ordered items (and optionally refills them).
  void ActivateMonitor(Semantics semantics = Semantics::kStrict,
                       bool refill = false) {
    RuleOptions options;
    options.semantics = semantics;
    auto rule = engine_.rules.CreateRule(
        "monitor_items", schema_.cnd_monitor_items,
        [this, refill](Database& db, const Tuple&,
                       const std::vector<Tuple>& items) -> Status {
          for (const Tuple& t : items) {
            ordered_.push_back(t[0].AsObject());
            if (refill) {
              auto max = GetFn(engine_, schema_.max_stock, t[0].AsObject());
              if (!max.ok()) return max.status();
              DELTAMON_RETURN_IF_ERROR(db.Set(schema_.quantity,
                                              Tuple{t[0]},
                                              Tuple{Value(*max)}));
            }
          }
          return Status::OK();
        },
        options);
    ASSERT_TRUE(rule.ok()) << rule.status().ToString();
    rule_ = *rule;
    ASSERT_TRUE(engine_.rules.Activate(rule_).ok());
  }

  Engine engine_;
  InventorySchema schema_;
  RuleId rule_ = kInvalidRuleId;
  std::vector<Oid> ordered_;
};

TEST_P(MonitorItemsTest, FiresWhenQuantityDropsBelowThreshold) {
  ActivateMonitor();
  // threshold = 20*2 + 100 = 140.
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[3], 120).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_EQ(ordered_.size(), 1u);
  EXPECT_EQ(ordered_[0], schema_.items[3]);
}

TEST_P(MonitorItemsTest, DoesNotFireAboveThreshold) {
  ActivateMonitor();
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[3], 200).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_TRUE(ordered_.empty());
}

TEST_P(MonitorItemsTest, NoNetChangeNoFiring) {
  ActivateMonitor();
  // Drop below threshold and restore within one transaction: only net
  // (logical) changes trigger rules (§3.1, §4.1).
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[3], 120).ok());
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[3], 1000).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_TRUE(ordered_.empty());
}

TEST_P(MonitorItemsTest, StrictSemanticsFiresOncePerFalseToTrue) {
  ActivateMonitor(Semantics::kStrict);
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[3], 120).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_EQ(ordered_.size(), 1u);
  // Still below threshold after another update: condition stays true, so a
  // strict rule must not re-fire.
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[3], 110).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(ordered_.size(), 1u);
}

TEST_P(MonitorItemsTest, ThresholdSideChangesTriggerToo) {
  ActivateMonitor();
  // Raise consume_freq so threshold = 300*2+100 = 700 > quantity 500.
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[5], 500).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(ordered_.empty());
  ASSERT_TRUE(SetFn(engine_, schema_.consume_freq, schema_.items[5], 300)
                  .ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_EQ(ordered_.size(), 1u);
  EXPECT_EQ(ordered_[0], schema_.items[5]);
}

TEST_P(MonitorItemsTest, SetOrientedActionGetsAllInstancesAtOnce) {
  ActivateMonitor();
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[1], 10).ok());
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[2], 20).ok());
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[7], 30).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(ordered_.size(), 3u);
  EXPECT_EQ(engine_.rules.last_check().rule_firings, 1u);
}

TEST_P(MonitorItemsTest, RefillingActionReachesFixpoint) {
  ActivateMonitor(Semantics::kStrict, /*refill=*/true);
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[3], 50).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_EQ(ordered_.size(), 1u);
  // The action refilled the item to max_stock.
  EXPECT_EQ(*GetFn(engine_, schema_.quantity, schema_.items[3]), 5000);
  // And the refill itself (condition true -> false) fired nothing else.
  EXPECT_GE(engine_.rules.last_check().rounds, 2u);
}

TEST_P(MonitorItemsTest, DeactivateStopsMonitoring) {
  ActivateMonitor();
  ASSERT_TRUE(engine_.rules.Deactivate(rule_).ok());
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[3], 50).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_TRUE(ordered_.empty());
  EXPECT_FALSE(engine_.db.IsMonitored(schema_.quantity));
}

TEST_P(MonitorItemsTest, RollbackDiscardsPendingChanges) {
  ActivateMonitor();
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[3], 50).ok());
  ASSERT_TRUE(engine_.db.Rollback().ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_TRUE(ordered_.empty());
  EXPECT_EQ(*GetFn(engine_, schema_.quantity, schema_.items[3]), 1000);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, MonitorItemsTest,
    ::testing::Values(MonitorMode::kIncremental, MonitorMode::kNaive,
                      MonitorMode::kHybrid),
    [](const ::testing::TestParamInfo<MonitorMode>& info) {
      switch (info.param) {
        case MonitorMode::kIncremental:
          return "Incremental";
        case MonitorMode::kNaive:
          return "Naive";
        case MonitorMode::kHybrid:
          return "Hybrid";
      }
      return "Unknown";
    });

// --- Nervous vs strict ------------------------------------------------------

TEST(RuleSemanticsTest, NervousMayRefireWhileConditionStaysTrue) {
  Engine engine;
  InventoryConfig config;
  config.num_items = 5;
  auto schema = BuildInventory(engine, config);
  ASSERT_TRUE(schema.ok());
  int fires = 0;
  RuleOptions options;
  options.semantics = Semantics::kNervous;
  auto rule = engine.rules.CreateRule(
      "nervous", schema->cnd_monitor_items,
      [&fires](Database&, const Tuple&, const std::vector<Tuple>& items) {
        fires += static_cast<int>(items.size());
        return Status::OK();
      },
      options);
  ASSERT_TRUE(rule.ok());
  ASSERT_TRUE(engine.rules.Activate(*rule).ok());
  ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[0], 100).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  EXPECT_EQ(fires, 1);
  // Still true after the next update: nervous semantics re-fires (the
  // quantity Δ+ differential re-derives the instance, no strict filter).
  ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[0], 90).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  EXPECT_EQ(fires, 2);
}

// --- Parameterized activation (paper §3.1 monitor_item(item i)) -------------

TEST(ParameterizedRuleTest, ActivationPerItem) {
  Engine engine;
  InventoryConfig config;
  config.num_items = 6;
  auto schema = BuildInventory(engine, config);
  ASSERT_TRUE(schema.ok());

  // monitor_item(i): condition cnd(i) -> i, with i a parameter. Build the
  // parameterized condition cnd_item(I) <- quantity(I,Q), threshold(I,T),
  // Q < T with I as a leading parameter column.
  auto cond = engine.db.catalog().CreateDerivedFunction(
      "cnd_monitor_item",
      FunctionSignature{{ColumnType{ValueKind::kObject, schema->item}}, {}});
  ASSERT_TRUE(cond.ok());
  {
    objectlog::Clause c;
    c.head_relation = *cond;
    c.num_vars = 3;
    c.head_args = {objectlog::Term::Var(0)};
    c.body = {
        objectlog::Literal::Relation(
            schema->quantity, {objectlog::Term::Var(0), objectlog::Term::Var(1)}),
        objectlog::Literal::Relation(
            schema->threshold, {objectlog::Term::Var(0), objectlog::Term::Var(2)}),
        objectlog::Literal::Compare(objectlog::CompareOp::kLt,
                                    objectlog::Term::Var(1),
                                    objectlog::Term::Var(2)),
    };
    ASSERT_TRUE(engine.registry.Define(*cond, std::move(c),
                                       engine.db.catalog()).ok());
  }

  std::vector<Oid> fired;
  RuleOptions options;
  options.num_params = 1;
  auto rule = engine.rules.CreateRule(
      "monitor_item", *cond,
      [&fired, &schema](Database&, const Tuple&,
                        const std::vector<Tuple>& instances) {
        // Instances of the specialized condition are empty tuples; record
        // the firing itself.
        (void)instances;
        fired.push_back(schema->items[0]);
        return Status::OK();
      },
      options);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  // Activate only for item 0.
  ASSERT_TRUE(
      engine.rules.Activate(*rule, Tuple{Value(schema->items[0])}).ok());

  // Item 1 dropping low fires nothing (not activated for it)...
  ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[1], 10).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  EXPECT_TRUE(fired.empty());
  // ...item 0 dropping low fires.
  ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[0], 10).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  EXPECT_EQ(fired.size(), 1u);

  // Double activation with the same parameter is rejected.
  EXPECT_EQ(
      engine.rules.Activate(*rule, Tuple{Value(schema->items[0])}).code(),
      StatusCode::kAlreadyExists);
  // Deactivation with the parameter works.
  EXPECT_TRUE(
      engine.rules.Deactivate(*rule, Tuple{Value(schema->items[0])}).ok());
}

// --- Conflict resolution ------------------------------------------------------

TEST(ConflictResolutionTest, HigherPriorityRuleFiresFirst) {
  Engine engine;
  InventoryConfig config;
  config.num_items = 3;
  auto schema = BuildInventory(engine, config);
  ASSERT_TRUE(schema.ok());
  std::vector<std::string> order;
  auto make_action = [&order](std::string name) {
    return [&order, name](Database&, const Tuple&,
                          const std::vector<Tuple>&) {
      order.push_back(name);
      return Status::OK();
    };
  };
  RuleOptions low;
  low.priority = 1;
  RuleOptions high;
  high.priority = 9;
  auto r1 = engine.rules.CreateRule("low", schema->cnd_monitor_items,
                                    make_action("low"), low);
  auto r2 = engine.rules.CreateRule("high", schema->cnd_monitor_items,
                                    make_action("high"), high);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_TRUE(engine.rules.Activate(*r1).ok());
  ASSERT_TRUE(engine.rules.Activate(*r2).ok());
  ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[0], 10).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "low");
}

// --- Explainability ------------------------------------------------------------

TEST(ExplainabilityTest, TraceNamesTheTriggeringInfluent) {
  Engine engine;
  InventoryConfig config;
  config.num_items = 4;
  auto schema = BuildInventory(engine, config);
  ASSERT_TRUE(schema.ok());
  RuleOptions options;
  // The paper's normal case (§6.1): insertions-only monitoring, so only
  // one partial differential executes for a quantity update.
  options.propagate_deletions = false;
  auto rule = engine.rules.CreateRule(
      "monitor_items", schema->cnd_monitor_items,
      [](Database&, const Tuple&, const std::vector<Tuple>&) {
        return Status::OK();
      },
      options);
  ASSERT_TRUE(rule.ok());
  ASSERT_TRUE(engine.rules.Activate(*rule).ok());
  ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[2], 10).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  std::vector<std::string> why = engine.rules.ExplainLastTrigger(*rule);
  ASSERT_FALSE(why.empty());
  EXPECT_NE(why[0].find("quantity"), std::string::npos) << why[0];
  // Only the quantity differential executed (partial differencing's win).
  EXPECT_EQ(engine.rules.last_check().propagation.differentials_executed,
            1u);
}

// --- Error handling ---------------------------------------------------------

TEST(RuleManagerErrorsTest, CreateRuleValidation) {
  Engine engine;
  InventoryConfig config;
  config.num_items = 1;
  auto schema = BuildInventory(engine, config);
  ASSERT_TRUE(schema.ok());
  auto noop = [](Database&, const Tuple&, const std::vector<Tuple>&) {
    return Status::OK();
  };
  // Base relation as condition: rejected.
  EXPECT_FALSE(engine.rules.CreateRule("bad", schema->quantity, noop).ok());
  // Duplicate names: rejected.
  ASSERT_TRUE(
      engine.rules.CreateRule("ok", schema->cnd_monitor_items, noop).ok());
  EXPECT_EQ(
      engine.rules.CreateRule("ok", schema->cnd_monitor_items, noop)
          .status()
          .code(),
      StatusCode::kAlreadyExists);
  // Unknown rule activation: rejected.
  EXPECT_EQ(engine.rules.Activate(999).code(), StatusCode::kNotFound);
  // Wrong parameter count: rejected.
  auto rule = engine.rules.FindRule("ok");
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(engine.rules.Activate(*rule, Tuple{Value(1)}).ok());
}

TEST(RuleManagerErrorsTest, NonTerminatingRulesReportFailedPrecondition) {
  Engine engine;
  InventoryConfig config;
  config.num_items = 2;
  auto schema = BuildInventory(engine, config);
  ASSERT_TRUE(schema.ok());
  engine.rules.SetMaxRounds(10);
  RuleOptions options;
  options.semantics = Semantics::kNervous;
  // Pathological action: keeps decrementing the quantity, so the condition
  // stays true with a fresh net change every round and nervous semantics
  // re-triggers forever.
  auto rule = engine.rules.CreateRule(
      "loop", schema->cnd_monitor_items,
      [&engine, &schema](Database& db, const Tuple&,
                         const std::vector<Tuple>& items) -> Status {
        for (const Tuple& t : items) {
          auto q = GetFn(engine, schema->quantity, t[0].AsObject());
          if (!q.ok()) return q.status();
          DELTAMON_RETURN_IF_ERROR(db.Set(schema->quantity, Tuple{t[0]},
                                          Tuple{Value(*q - 1)}));
        }
        return Status::OK();
      },
      options);
  ASSERT_TRUE(rule.ok());
  ASSERT_TRUE(engine.rules.Activate(*rule).ok());
  ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[0], 10).ok());
  EXPECT_EQ(engine.db.Commit().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine.db.Rollback().ok());
}

TEST(ModeSwitchTest, SwitchingModesNeverUsesStaleExtents) {
  Engine engine;
  InventoryConfig config;
  config.num_items = 8;
  auto schema = BuildInventory(engine, config);
  ASSERT_TRUE(schema.ok());
  std::vector<uint64_t> fired;
  engine.rules.SetMode(MonitorMode::kNaive);
  auto rule = engine.rules.CreateRule(
      "monitor_items", schema->cnd_monitor_items,
      [&fired](Database&, const Tuple&, const std::vector<Tuple>& items) {
        for (const Tuple& t : items) fired.push_back(t[0].AsObject().id);
        return Status::OK();
      });
  ASSERT_TRUE(rule.ok());
  ASSERT_TRUE(engine.rules.Activate(*rule).ok());

  // Naive round: item 0 breaches (extent now {item0}).
  ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[0], 50).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  ASSERT_EQ(fired.size(), 1u);

  // Incremental rounds: item 0 recovers, item 1 breaches. The naive
  // extent goes stale here.
  engine.rules.SetMode(MonitorMode::kIncremental);
  ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[0], 1000).ok());
  ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[1], 50).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  ASSERT_EQ(fired.size(), 2u);

  // Back to naive: a fresh breach of item 2 must fire exactly once — a
  // stale extent would also re-report item 1 or miss item 2.
  engine.rules.SetMode(MonitorMode::kNaive);
  ASSERT_TRUE(SetFn(engine, schema->quantity, schema->items[2], 50).ok());
  ASSERT_TRUE(engine.db.Commit().ok());
  std::vector<uint64_t> expected = {schema->items[0].id, schema->items[1].id,
                                    schema->items[2].id};
  EXPECT_EQ(fired, expected);
}

}  // namespace
}  // namespace deltamon::rules
