/// Immediate rule processing (paper §1 notes the technique supports it;
/// deferred processing is the paper's focus). The semantic difference:
/// a condition that becomes true mid-transaction and false again before
/// commit fires an *immediate* rule but not a *deferred* one.

#include <gtest/gtest.h>

#include "bench_util/inventory.h"
#include "rules/engine.h"

namespace deltamon::rules {
namespace {

using workload::BuildInventory;
using workload::InventoryConfig;
using workload::InventorySchema;
using workload::SetFn;

class ImmediateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InventoryConfig config;
    config.num_items = 5;
    auto schema = BuildInventory(engine_, config);
    ASSERT_TRUE(schema.ok());
    schema_ = *schema;
    auto rule = engine_.rules.CreateRule(
        "monitor_items", schema_.cnd_monitor_items,
        [this](Database&, const Tuple&, const std::vector<Tuple>& items) {
          fired_ += items.size();
          return Status::OK();
        });
    ASSERT_TRUE(rule.ok());
    ASSERT_TRUE(engine_.rules.Activate(*rule).ok());
  }

  Engine engine_;
  InventorySchema schema_;
  size_t fired_ = 0;
};

TEST_F(ImmediateTest, FiresBeforeCommit) {
  engine_.db.SetImmediateRuleProcessing(true);
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[0], 50).ok());
  EXPECT_EQ(fired_, 1u);  // no commit yet
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_, 1u);  // commit finds no further changes
}

TEST_F(ImmediateTest, TransientTrueFiresImmediatelyButNotDeferred) {
  // Deferred: drop below threshold and restore in one transaction — the
  // net change is empty, nothing fires.
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[0], 50).ok());
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[0], 1000).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_, 0u);

  // Immediate: the same sequence fires at the moment the condition holds.
  engine_.db.SetImmediateRuleProcessing(true);
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[1], 50).ok());
  EXPECT_EQ(fired_, 1u);
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[1], 1000).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  EXPECT_EQ(fired_, 1u);
}

TEST_F(ImmediateTest, SetTransientStateIsInvisible) {
  // Set() internally deletes the old tuple before inserting the new one;
  // the check must only see the statement's net effect. (quantity dropping
  // to "no value" must not be observable.)
  engine_.db.SetImmediateRuleProcessing(true);
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[0], 900).ok());
  EXPECT_EQ(fired_, 0u);  // 900 >= threshold 140: quiet
}

TEST_F(ImmediateTest, UpdatesToUnmonitoredRelationsDoNotCheck) {
  engine_.db.SetImmediateRuleProcessing(true);
  // max_stock is not an influent of the condition.
  ASSERT_TRUE(SetFn(engine_, schema_.max_stock, schema_.items[0], 9000).ok());
  EXPECT_EQ(fired_, 0u);
  EXPECT_EQ(engine_.rules.last_check().rounds, 0u);
}

TEST_F(ImmediateTest, RollbackAfterImmediateFiringRestoresData) {
  engine_.db.SetImmediateRuleProcessing(true);
  ASSERT_TRUE(SetFn(engine_, schema_.quantity, schema_.items[0], 50).ok());
  EXPECT_EQ(fired_, 1u);
  // The action already ran (immediate semantics), but data changes are
  // still transactional.
  ASSERT_TRUE(engine_.db.Rollback().ok());
  EXPECT_EQ(*workload::GetFn(engine_, schema_.quantity, schema_.items[0]),
            1000);
}

}  // namespace
}  // namespace deltamon::rules
