#include "objectlog/eval.h"

#include <gtest/gtest.h>

#include "rules/engine.h"

namespace deltamon::objectlog {
namespace {

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
Tuple T(int64_t a) { return Tuple{Value(a)}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

/// Fixture with q(int,int), r(int,int) stored and p(X,Z) <- q(X,Y), r(Y,Z).
class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    q_ = *engine_.db.catalog().CreateStoredFunction(
        "q", FunctionSignature{{IntCol()}, {IntCol()}});
    r_ = *engine_.db.catalog().CreateStoredFunction(
        "r", FunctionSignature{{IntCol()}, {IntCol()}});
    p_ = *engine_.db.catalog().CreateDerivedFunction(
        "p", FunctionSignature{{}, {IntCol(), IntCol()}});
    Clause c;
    c.head_relation = p_;
    c.num_vars = 3;
    c.head_args = {Term::Var(0), Term::Var(2)};
    c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
              Literal::Relation(r_, {Term::Var(1), Term::Var(2)})};
    ASSERT_TRUE(
        engine_.registry.Define(p_, std::move(c), engine_.db.catalog()).ok());
  }

  void Populate() {
    ASSERT_TRUE(engine_.db.Insert(q_, T(1, 1)).ok());
    ASSERT_TRUE(engine_.db.Insert(r_, T(1, 2)).ok());
    ASSERT_TRUE(engine_.db.Insert(r_, T(2, 3)).ok());
  }

  TupleSet Eval(RelationId rel, EvalState state = EvalState::kNew,
                const std::unordered_map<RelationId, DeltaSet>* deltas =
                    nullptr) {
    StateContext ctx;
    ctx.deltas = deltas;
    Evaluator ev(engine_.db, engine_.registry, ctx);
    TupleSet out;
    Status s = ev.Evaluate(rel, state, &out);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  Engine engine_;
  RelationId q_ = kInvalidRelationId;
  RelationId r_ = kInvalidRelationId;
  RelationId p_ = kInvalidRelationId;
};

TEST_F(EvalTest, JoinDerivesPaperResult) {
  Populate();
  EXPECT_EQ(Eval(p_), (TupleSet{T(1, 2)}));
}

TEST_F(EvalTest, BaseRelationEvaluatesToItsRows) {
  Populate();
  EXPECT_EQ(Eval(r_), (TupleSet{T(1, 2), T(2, 3)}));
}

TEST_F(EvalTest, NewStateSeesTransactionUpdates) {
  Populate();
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());
  EXPECT_EQ(Eval(p_), (TupleSet{T(1, 2), T(1, 3)}));
}

TEST_F(EvalTest, OldStateViaRollback) {
  Populate();
  engine_.db.MarkMonitored(q_);
  engine_.db.MarkMonitored(r_);
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Delete(r_, T(1, 2)).ok());
  const auto& deltas = engine_.db.PendingDeltas();
  // New state: p = {(1,3)} (q(1,2) joins r(2,3); r(1,2) is gone).
  EXPECT_EQ(Eval(p_, EvalState::kNew, &deltas), (TupleSet{T(1, 3)}));
  // Old state: p = {(1,2)} as before the transaction.
  EXPECT_EQ(Eval(p_, EvalState::kOld, &deltas), (TupleSet{T(1, 2)}));
  // Old state of the base relations themselves.
  EXPECT_EQ(Eval(q_, EvalState::kOld, &deltas), (TupleSet{T(1, 1)}));
  EXPECT_EQ(Eval(r_, EvalState::kOld, &deltas),
            (TupleSet{T(1, 2), T(2, 3)}));
}

TEST_F(EvalTest, DerivablePointQuery) {
  Populate();
  StateContext ctx;
  Evaluator ev(engine_.db, engine_.registry, ctx);
  EXPECT_TRUE(*ev.Derivable(p_, EvalState::kNew, T(1, 2)));
  EXPECT_FALSE(*ev.Derivable(p_, EvalState::kNew, T(1, 3)));
  EXPECT_TRUE(*ev.Derivable(q_, EvalState::kNew, T(1, 1)));
}

TEST_F(EvalTest, ConstantsInClauseArgs) {
  Populate();
  RelationId v = *engine_.db.catalog().CreateDerivedFunction(
      "v_const", FunctionSignature{{}, {IntCol()}});
  // v(Z) <- r(2, Z).
  Clause c;
  c.head_relation = v;
  c.num_vars = 1;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(r_, {Term::Const(Value(2)), Term::Var(0)})};
  ASSERT_TRUE(
      engine_.registry.Define(v, std::move(c), engine_.db.catalog()).ok());
  EXPECT_EQ(Eval(v), (TupleSet{T(3)}));
}

TEST_F(EvalTest, RepeatedVariableInLiteral) {
  // v(X) <- r(X, X).
  ASSERT_TRUE(engine_.db.Insert(r_, T(5, 5)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(5, 6)).ok());
  RelationId v = *engine_.db.catalog().CreateDerivedFunction(
      "v_rep", FunctionSignature{{}, {IntCol()}});
  Clause c;
  c.head_relation = v;
  c.num_vars = 1;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(r_, {Term::Var(0), Term::Var(0)})};
  ASSERT_TRUE(
      engine_.registry.Define(v, std::move(c), engine_.db.catalog()).ok());
  EXPECT_EQ(Eval(v), (TupleSet{T(5)}));
}

TEST_F(EvalTest, ArithmeticAndComparison) {
  // v(X, Y2) <- q(X, Y), Y2 = Y * 10, Y2 > 5.
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 1)).ok());
  ASSERT_TRUE(engine_.db.Insert(q_, T(2, 0)).ok());
  RelationId v = *engine_.db.catalog().CreateDerivedFunction(
      "v_arith", FunctionSignature{{}, {IntCol(), IntCol()}});
  Clause c;
  c.head_relation = v;
  c.num_vars = 3;
  c.head_args = {Term::Var(0), Term::Var(2)};
  c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
            Literal::Arith(ArithOp::kMul, Term::Var(2), Term::Var(1),
                           Term::Const(Value(10))),
            Literal::Compare(CompareOp::kGt, Term::Var(2),
                             Term::Const(Value(5)))};
  ASSERT_TRUE(
      engine_.registry.Define(v, std::move(c), engine_.db.catalog()).ok());
  EXPECT_EQ(Eval(v), (TupleSet{T(1, 10)}));
}

TEST_F(EvalTest, ArithmeticFailureMakesBranchUnderivable) {
  // v(X, D) <- q(X, Y), D = 10 / Y: the Y=0 row silently derives nothing.
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(q_, T(2, 0)).ok());
  RelationId v = *engine_.db.catalog().CreateDerivedFunction(
      "v_div", FunctionSignature{{}, {IntCol(), IntCol()}});
  Clause c;
  c.head_relation = v;
  c.num_vars = 3;
  c.head_args = {Term::Var(0), Term::Var(2)};
  c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
            Literal::Arith(ArithOp::kDiv, Term::Var(2),
                           Term::Const(Value(10)), Term::Var(1))};
  ASSERT_TRUE(
      engine_.registry.Define(v, std::move(c), engine_.db.catalog()).ok());
  EXPECT_EQ(Eval(v), (TupleSet{T(1, 5)}));
}

TEST_F(EvalTest, EqualityBinder) {
  // v(X, Y) <- q(X, Y), Z = Y, Z > 0 — `=` binds Z.
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 3)).ok());
  ASSERT_TRUE(engine_.db.Insert(q_, T(2, -1)).ok());
  RelationId v = *engine_.db.catalog().CreateDerivedFunction(
      "v_eq", FunctionSignature{{}, {IntCol(), IntCol()}});
  Clause c;
  c.head_relation = v;
  c.num_vars = 3;
  c.head_args = {Term::Var(0), Term::Var(1)};
  c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
            Literal::Compare(CompareOp::kEq, Term::Var(2), Term::Var(1)),
            Literal::Compare(CompareOp::kGt, Term::Var(2),
                             Term::Const(Value(0)))};
  ASSERT_TRUE(
      engine_.registry.Define(v, std::move(c), engine_.db.catalog()).ok());
  EXPECT_EQ(Eval(v), (TupleSet{T(1, 3)}));
}

TEST_F(EvalTest, NegatedLiteralFilters) {
  // v(X) <- q(X, Y), ~r(Y, 3).
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());  // r(2,3) exists: blocked
  ASSERT_TRUE(engine_.db.Insert(q_, T(4, 9)).ok());  // no r(9,3): passes
  ASSERT_TRUE(engine_.db.Insert(r_, T(2, 3)).ok());
  RelationId v = *engine_.db.catalog().CreateDerivedFunction(
      "v_neg", FunctionSignature{{}, {IntCol()}});
  Clause c;
  c.head_relation = v;
  c.num_vars = 2;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(r_, {Term::Var(1), Term::Const(Value(3))},
                              /*negated=*/true)};
  ASSERT_TRUE(
      engine_.registry.Define(v, std::move(c), engine_.db.catalog()).ok());
  EXPECT_EQ(Eval(v), (TupleSet{T(4)}));
}

TEST_F(EvalTest, MultiClauseDisjunction) {
  // v(X) <- q(X, 1).   v(X) <- r(X, 3).
  ASSERT_TRUE(engine_.db.Insert(q_, T(7, 1)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(2, 3)).ok());
  RelationId v = *engine_.db.catalog().CreateDerivedFunction(
      "v_disj", FunctionSignature{{}, {IntCol()}});
  for (RelationId rel : {q_, r_}) {
    Clause c;
    c.head_relation = v;
    c.num_vars = 1;
    c.head_args = {Term::Var(0)};
    c.body = {Literal::Relation(
        rel, {Term::Var(0), Term::Const(Value(rel == q_ ? 1 : 3))})};
    ASSERT_TRUE(
        engine_.registry.Define(v, std::move(c), engine_.db.catalog()).ok());
  }
  EXPECT_EQ(Eval(v), (TupleSet{T(7), T(2)}));
}

TEST_F(EvalTest, DeltaRoleLiteralReadsDeltaSet) {
  Populate();
  // Differential-shaped clause: dp(X,Z) <- Δ+q(X,Y), r(Y,Z).
  RelationId dp = *engine_.db.catalog().CreateDerivedFunction(
      "dp", FunctionSignature{{}, {IntCol(), IntCol()}});
  Clause c;
  c.head_relation = dp;
  c.num_vars = 3;
  c.head_args = {Term::Var(0), Term::Var(2)};
  Literal dq = Literal::Relation(q_, {Term::Var(0), Term::Var(1)});
  dq.role = RelationRole::kDeltaPlus;
  c.body = {dq, Literal::Relation(r_, {Term::Var(1), Term::Var(2)})};

  std::unordered_map<RelationId, DeltaSet> deltas;
  deltas[q_] = DeltaSet({T(5, 2)}, {});
  StateContext ctx;
  ctx.deltas = &deltas;
  Evaluator ev(engine_.db, engine_.registry, ctx);
  TupleSet out;
  ASSERT_TRUE(ev.EvaluateClause(c, &out).ok());
  EXPECT_EQ(out, (TupleSet{T(5, 3)}));
}

TEST_F(EvalTest, OrderBodyPutsDeltaFirstThenFiltersThenScans) {
  Clause c;
  c.num_vars = 3;
  Literal scan = Literal::Relation(r_, {Term::Var(1), Term::Var(2)});
  Literal cmp = Literal::Compare(CompareOp::kLt, Term::Var(1), Term::Var(2));
  Literal dq = Literal::Relation(q_, {Term::Var(0), Term::Var(1)});
  dq.role = RelationRole::kDeltaPlus;
  c.body = {scan, cmp, dq};
  std::vector<size_t> order = Evaluator::OrderBody(c.body, c.num_vars);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);  // Δ generator first
  // After Δq binds vars 0,1 the scan of r is an indexed probe; the compare
  // needs var 2 and must come after it.
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 1u);
}

TEST_F(EvalTest, StatsCountWork) {
  Populate();
  StateContext ctx;
  Evaluator ev(engine_.db, engine_.registry, ctx);
  TupleSet out;
  ASSERT_TRUE(ev.Evaluate(p_, EvalState::kNew, &out).ok());
  EXPECT_GT(ev.stats().clause_evals, 0u);
  EXPECT_GT(ev.stats().tuples_examined, 0u);
}

TEST_F(EvalTest, UnknownRelationReportsNotFound) {
  StateContext ctx;
  Evaluator ev(engine_.db, engine_.registry, ctx);
  TupleSet out;
  RelationId ghost = *engine_.db.catalog().CreateDerivedFunction(
      "ghost", FunctionSignature{{}, {IntCol()}});
  EXPECT_EQ(ev.Evaluate(ghost, EvalState::kNew, &out).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace deltamon::objectlog
