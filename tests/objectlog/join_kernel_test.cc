/// The batch evaluation kernels (eval_kernel.cc): every test evaluates the
/// same differenced clause twice — once through the tuple-at-a-time
/// interpreter (kernels off) and once through the columnar build–probe
/// path (kernels on) — and asserts identical result sets. Shape coverage:
/// empty Δ-sets, duplicate join keys on both sides, Δ− differentials over
/// rolled-back old state, wide tuples, negated and fully-bound literals,
/// the build-vs-probe cost choice, and the semi-join pre-filter (with the
/// strategy labels the kernels write into the per-literal profile).

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "objectlog/eval.h"
#include "obs/profile.h"
#include "rules/engine.h"

namespace deltamon::objectlog {
namespace {

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }

Tuple T(std::initializer_list<int64_t> vs) {
  Tuple t;
  for (int64_t v : vs) t.Append(Value(v));
  return t;
}

class JoinKernelTest : public ::testing::Test {
 protected:
  RelationId Stored(const std::string& name, size_t arity) {
    FunctionSignature sig;
    sig.argument_types.push_back(IntCol());
    for (size_t i = 1; i < arity; ++i) sig.result_types.push_back(IntCol());
    return *engine_.db.catalog().CreateStoredFunction(name, sig);
  }

  /// Evaluates `clause` with kernels off and on; asserts the two engines
  /// agree and returns the (shared) result set. When `profile` is
  /// non-null it receives the kernels-on run's per-literal profile.
  TupleSet EvalBoth(const Clause& clause,
                    const std::unordered_map<RelationId, DeltaSet>& deltas,
                    obs::Profile* profile = nullptr) {
    StateContext ctx;
    ctx.deltas = &deltas;
    TupleSet interp;
    {
      Evaluator ev(engine_.db, engine_.registry, ctx);
      EXPECT_FALSE(ev.kernels_enabled());  // off by default
      Status s = ev.EvaluateClause(clause, &interp);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    TupleSet kernel;
    {
      Evaluator ev(engine_.db, engine_.registry, ctx);
      ev.EnableKernels(true);
      if (profile != nullptr) ev.SetProfiler(profile);
      Status s = ev.EvaluateClause(clause, &kernel);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    EXPECT_EQ(kernel, interp);
    return interp;
  }

  /// The access label of the slot whose text contains `needle`, from the
  /// single profiled clause. Empty when obs is compiled out.
  static std::string AccessOf(const obs::Profile& profile,
                              const std::string& needle) {
#if DELTAMON_OBS_ENABLED
    for (const auto& [label, cp] : profile.clauses()) {
      for (const obs::LiteralProfile& slot : cp.slots) {
        if (slot.text.find(needle) != std::string::npos) return slot.access;
      }
    }
#else
    (void)profile;
    (void)needle;
#endif
    return std::string();
  }

  Engine engine_;
};

/// p(X,Z) <- Δ+q(X,Y), r(Y,Z).
Clause DeltaJoinClause(RelationId p, RelationId q, RelationId r) {
  Clause c;
  c.head_relation = p;
  c.num_vars = 3;
  c.head_args = {Term::Var(0), Term::Var(2)};
  c.body = {Literal::Relation(q, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(r, {Term::Var(1), Term::Var(2)})};
  c.body[0].role = RelationRole::kDeltaPlus;
  c.profile_label = "kernel_test";
  return c;
}

TEST_F(JoinKernelTest, EmptyDeltaProducesNothing) {
  RelationId q = Stored("q", 2);
  RelationId r = Stored("r", 2);
  RelationId p = Stored("p", 2);
  ASSERT_TRUE(engine_.db.Insert(r, T({1, 2})).ok());
  std::unordered_map<RelationId, DeltaSet> deltas;  // no entry for q
  EXPECT_TRUE(EvalBoth(DeltaJoinClause(p, q, r), deltas).empty());
  deltas.emplace(q, DeltaSet{});  // present but empty
  EXPECT_TRUE(EvalBoth(DeltaJoinClause(p, q, r), deltas).empty());
}

TEST_F(JoinKernelTest, DuplicateKeysOnBothSidesCrossProduct) {
  RelationId q = Stored("q", 2);
  RelationId r = Stored("r", 2);
  RelationId p = Stored("p", 2);
  // Three Δ rows share key 1; r has two rows for key 1 → 6 join results
  // collapsing to 4 distinct head tuples (X ∈ {10,11,10-dup}, Z ∈ {7,8}).
  TupleSet plus{T({10, 1}), T({11, 1}), T({12, 2})};
  ASSERT_TRUE(engine_.db.Insert(r, T({1, 7})).ok());
  ASSERT_TRUE(engine_.db.Insert(r, T({1, 8})).ok());
  ASSERT_TRUE(engine_.db.Insert(r, T({2, 9})).ok());
  std::unordered_map<RelationId, DeltaSet> deltas;
  deltas.emplace(q, DeltaSet{plus, {}});
  TupleSet out = EvalBoth(DeltaJoinClause(p, q, r), deltas);
  EXPECT_EQ(out, (TupleSet{T({10, 7}), T({10, 8}), T({11, 7}), T({11, 8}),
                           T({12, 9})}));
}

TEST_F(JoinKernelTest, DeltaMinusReadsRolledBackOldState) {
  RelationId q = Stored("q", 2);
  RelationId r = Stored("r", 2);
  RelationId p = Stored("p", 2);
  engine_.db.MarkMonitored(q);
  engine_.db.MarkMonitored(r);
  ASSERT_TRUE(engine_.db.Insert(q, T({10, 1})).ok());
  ASSERT_TRUE(engine_.db.Insert(r, T({1, 7})).ok());
  ASSERT_TRUE(engine_.db.Insert(r, T({2, 8})).ok());
  ASSERT_TRUE(engine_.db.Commit().ok());
  // This transaction deletes q(10,1) and r(1,7) and inserts r(1,9). The
  // Δ− differential joins against r's OLD state, so the deleted r(1,7)
  // must still be visible and the inserted r(1,9) must not.
  ASSERT_TRUE(engine_.db.Delete(q, T({10, 1})).ok());
  ASSERT_TRUE(engine_.db.Delete(r, T({1, 7})).ok());
  ASSERT_TRUE(engine_.db.Insert(r, T({1, 9})).ok());
  Clause c = DeltaJoinClause(p, q, r);
  c.body[0].role = RelationRole::kDeltaMinus;
  c.body[1].state = EvalState::kOld;
  TupleSet out = EvalBoth(c, engine_.db.PendingDeltas());
  EXPECT_EQ(out, (TupleSet{T({10, 7})}));
}

TEST_F(JoinKernelTest, WideTuplesSurviveTheColumnarRoundTrip) {
  RelationId q = Stored("q", 6);
  RelationId r = Stored("r", 6);
  RelationId p = Stored("p", 6);
  // p(A..F') <- Δ+q(A,B,C,D,E,F), r(F,E,A,D',E',F').
  Clause c;
  c.head_relation = p;
  c.num_vars = 9;
  c.head_args = {Term::Var(0), Term::Var(1), Term::Var(2),
                 Term::Var(6), Term::Var(7), Term::Var(8)};
  c.body = {
      Literal::Relation(q, {Term::Var(0), Term::Var(1), Term::Var(2),
                            Term::Var(3), Term::Var(4), Term::Var(5)}),
      Literal::Relation(r, {Term::Var(5), Term::Var(4), Term::Var(0),
                            Term::Var(6), Term::Var(7), Term::Var(8)})};
  c.body[0].role = RelationRole::kDeltaPlus;
  c.profile_label = "kernel_test";
  TupleSet plus;
  for (int64_t i = 0; i < 20; ++i) {
    plus.insert(T({i, i + 1, i + 2, i + 3, i % 4, i % 3}));
    ASSERT_TRUE(
        engine_.db.Insert(r, T({i % 3, i % 4, i, 100 + i, 200 + i, 300 + i}))
            .ok());
  }
  std::unordered_map<RelationId, DeltaSet> deltas;
  deltas.emplace(q, DeltaSet{plus, {}});
  TupleSet out = EvalBoth(c, deltas);
  // Every Δ row joins exactly its own r row (key F,E,A is unique per i).
  TupleSet expected;
  for (int64_t i = 0; i < 20; ++i) {
    expected.insert(T({i, i + 1, i + 2, 100 + i, 200 + i, 300 + i}));
  }
  EXPECT_EQ(out, expected);
}

TEST_F(JoinKernelTest, NegatedAndFullyBoundLiterals) {
  RelationId q = Stored("q", 2);
  RelationId r = Stored("r", 2);
  RelationId s = Stored("s", 1);
  RelationId p = Stored("p", 2);
  // p(X,Y) <- Δ+q(X,Y), r(X,Y), not s(X): r is fully bound after the Δ
  // (existence filter), s is an anti-join.
  Clause c;
  c.head_relation = p;
  c.num_vars = 2;
  c.head_args = {Term::Var(0), Term::Var(1)};
  c.body = {Literal::Relation(q, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(r, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(s, {Term::Var(0)}, /*negated=*/true)};
  c.body[0].role = RelationRole::kDeltaPlus;
  c.profile_label = "kernel_test";
  ASSERT_TRUE(engine_.db.Insert(r, T({1, 10})).ok());
  ASSERT_TRUE(engine_.db.Insert(r, T({2, 20})).ok());
  ASSERT_TRUE(engine_.db.Insert(r, T({3, 30})).ok());
  ASSERT_TRUE(engine_.db.Insert(s, T({2})).ok());
  TupleSet plus{T({1, 10}), T({2, 20}), T({3, 31}), T({4, 40})};
  std::unordered_map<RelationId, DeltaSet> deltas;
  deltas.emplace(q, DeltaSet{plus, {}});
  // (1,10): passes both. (2,20): in r but s(2) kills it. (3,31): not in r.
  // (4,40): not in r.
  EXPECT_EQ(EvalBoth(c, deltas), (TupleSet{T({1, 10})}));
}

TEST_F(JoinKernelTest, BuildSideChosenForSmallExtentLargeDelta) {
  RelationId q = Stored("q", 2);
  RelationId r = Stored("r", 2);
  RelationId p = Stored("p", 2);
  // Small stored extent (4 rows), large Δ (64 rows): the cost model picks
  // the build side (scan r once, probe it per Δ row).
  for (int64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(engine_.db.Insert(r, T({k, 100 + k})).ok());
  }
  TupleSet plus;
  for (int64_t i = 0; i < 64; ++i) plus.insert(T({i, i % 4}));
  std::unordered_map<RelationId, DeltaSet> deltas;
  deltas.emplace(q, DeltaSet{plus, {}});
  obs::Profile profile;
  TupleSet out = EvalBoth(DeltaJoinClause(p, q, r), deltas, &profile);
  EXPECT_EQ(out.size(), 64u);
#if DELTAMON_OBS_ENABLED
  EXPECT_EQ(AccessOf(profile, "r("), "hash-join/build");
#endif
}

TEST_F(JoinKernelTest, ProbeSideChosenForLargeExtentSmallDelta) {
  RelationId q = Stored("q", 2);
  RelationId r = Stored("r", 2);
  RelationId p = Stored("p", 2);
  // Large stored extent (4096 rows), tiny Δ (2 rows): scanning the whole
  // extent to build would dominate; the cost model probes instead.
  for (int64_t k = 0; k < 4096; ++k) {
    ASSERT_TRUE(engine_.db.Insert(r, T({k, 100 + k})).ok());
  }
  TupleSet plus{T({10, 1}), T({20, 2})};
  std::unordered_map<RelationId, DeltaSet> deltas;
  deltas.emplace(q, DeltaSet{plus, {}});
  obs::Profile profile;
  TupleSet out = EvalBoth(DeltaJoinClause(p, q, r), deltas, &profile);
  EXPECT_EQ(out, (TupleSet{T({10, 101}), T({20, 102})}));
#if DELTAMON_OBS_ENABLED
  EXPECT_EQ(AccessOf(profile, "r("), "hash-join/probe");
#endif
}

TEST_F(JoinKernelTest, SemiJoinPreFilterKeepsResultsIdentical) {
  RelationId q = Stored("q", 2);
  RelationId r = Stored("r", 2);
  RelationId p = Stored("p", 2);
  // p(X,Z) <- Δ+q(X,Y), Y < 50, r(X,Z): the comparison sits between the Δ
  // and the first join literal, so the kernel existence-probes r per
  // distinct X right after materializing the Δ — discarding Δ rows with
  // no partner before the comparison runs.
  Clause c;
  c.head_relation = p;
  c.num_vars = 3;
  c.head_args = {Term::Var(0), Term::Var(2)};
  c.body = {Literal::Relation(q, {Term::Var(0), Term::Var(1)}),
            Literal::Compare(CompareOp::kLt, Term::Var(1),
                             Term::Const(Value(50))),
            Literal::Relation(r, {Term::Var(0), Term::Var(2)})};
  c.body[0].role = RelationRole::kDeltaPlus;
  c.profile_label = "kernel_test";
  ASSERT_TRUE(engine_.db.Insert(r, T({1, 7})).ok());
  ASSERT_TRUE(engine_.db.Insert(r, T({3, 8})).ok());
  TupleSet plus{T({1, 10}), T({1, 60}), T({2, 20}), T({3, 30}), T({4, 5})};
  std::unordered_map<RelationId, DeltaSet> deltas;
  deltas.emplace(q, DeltaSet{plus, {}});
  obs::Profile profile;
  TupleSet out = EvalBoth(c, deltas, &profile);
  EXPECT_EQ(out, (TupleSet{T({1, 7}), T({3, 8})}));
#if DELTAMON_OBS_ENABLED
  EXPECT_EQ(AccessOf(profile, "r("), "semijoin-filtered");
#endif
}

TEST_F(JoinKernelTest, ArithmeticBindingAndCheck) {
  RelationId q = Stored("q", 2);
  RelationId r = Stored("r", 2);
  RelationId p = Stored("p", 2);
  // p(X,S) <- Δ+q(X,Y), r(X,Z), S = Y + Z, S < 100.
  Clause c;
  c.head_relation = p;
  c.num_vars = 4;
  c.head_args = {Term::Var(0), Term::Var(3)};
  c.body = {Literal::Relation(q, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(r, {Term::Var(0), Term::Var(2)}),
            Literal::Arith(ArithOp::kAdd, Term::Var(3), Term::Var(1),
                           Term::Var(2)),
            Literal::Compare(CompareOp::kLt, Term::Var(3),
                             Term::Const(Value(100)))};
  c.body[0].role = RelationRole::kDeltaPlus;
  c.profile_label = "kernel_test";
  ASSERT_TRUE(engine_.db.Insert(r, T({1, 30})).ok());
  ASSERT_TRUE(engine_.db.Insert(r, T({2, 90})).ok());
  TupleSet plus{T({1, 5}), T({2, 20})};
  std::unordered_map<RelationId, DeltaSet> deltas;
  deltas.emplace(q, DeltaSet{plus, {}});
  // (1): 5+30=35 < 100 → (1,35). (2): 20+90=110 ≥ 100 → dropped.
  EXPECT_EQ(EvalBoth(c, deltas), (TupleSet{T({1, 35})}));
}

}  // namespace
}  // namespace deltamon::objectlog
