#include "objectlog/registry.h"

#include <gtest/gtest.h>

#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon::objectlog {
namespace {

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
Tuple T(int64_t a) { return Tuple{Value(a)}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    q_ = *engine_.db.catalog().CreateStoredFunction(
        "q", FunctionSignature{{IntCol()}, {IntCol()}});
    r_ = *engine_.db.catalog().CreateStoredFunction(
        "r", FunctionSignature{{IntCol()}, {IntCol()}});
  }

  RelationId Derived(const std::string& name, size_t arity) {
    FunctionSignature sig;
    for (size_t i = 0; i < arity; ++i) sig.result_types.push_back(IntCol());
    return *engine_.db.catalog().CreateDerivedFunction(name, std::move(sig));
  }

  TupleSet EvalClauses(const std::vector<Clause>& clauses) {
    StateContext ctx;
    Evaluator ev(engine_.db, engine_.registry, ctx);
    TupleSet out;
    for (const Clause& c : clauses) {
      Status s = ev.EvaluateClause(c, &out);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    return out;
  }

  Engine engine_;
  RelationId q_ = kInvalidRelationId;
  RelationId r_ = kInvalidRelationId;
};

TEST_F(RegistryTest, DefineRejectsBaseRelations) {
  Clause c;
  c.head_relation = q_;
  EXPECT_FALSE(engine_.registry.Define(q_, c, engine_.db.catalog()).ok());
}

TEST_F(RegistryTest, DefineRejectsArityMismatch) {
  RelationId v = Derived("v", 2);
  Clause c;
  c.head_relation = v;
  c.num_vars = 1;
  c.head_args = {Term::Var(0)};  // arity 1 vs signature arity 2
  c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(0)})};
  EXPECT_FALSE(engine_.registry.Define(v, c, engine_.db.catalog()).ok());
}

TEST_F(RegistryTest, DefineRejectsUnsafeHeadVariable) {
  RelationId v = Derived("v", 1);
  Clause c;
  c.head_relation = v;
  c.num_vars = 2;
  c.head_args = {Term::Var(1)};  // var 1 never bound
  c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(0)})};
  EXPECT_FALSE(engine_.registry.Define(v, c, engine_.db.catalog()).ok());
}

TEST_F(RegistryTest, DefineRejectsUnsafeNegation) {
  RelationId v = Derived("v", 1);
  Clause c;
  c.head_relation = v;
  c.num_vars = 2;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(0)}),
            Literal::Relation(r_, {Term::Var(1), Term::Var(1)},
                              /*negated=*/true)};
  EXPECT_FALSE(engine_.registry.Define(v, c, engine_.db.catalog()).ok());
}

TEST_F(RegistryTest, ArithOutputCountsAsBound) {
  RelationId v = Derived("v", 1);
  Clause c;
  c.head_relation = v;
  c.num_vars = 3;
  c.head_args = {Term::Var(2)};
  c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
            Literal::Arith(ArithOp::kAdd, Term::Var(2), Term::Var(0),
                           Term::Var(1))};
  EXPECT_TRUE(engine_.registry.Define(v, c, engine_.db.catalog()).ok());
}

TEST_F(RegistryTest, ExpandInlinesDerivedLiteral) {
  // inner(X,Y) <- q(X,Y); outer(X,Z) <- inner(X,Y), r(Y,Z).
  RelationId inner = Derived("inner", 2);
  RelationId outer = Derived("outer", 2);
  {
    Clause c;
    c.head_relation = inner;
    c.num_vars = 2;
    c.head_args = {Term::Var(0), Term::Var(1)};
    c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)})};
    ASSERT_TRUE(engine_.registry.Define(inner, c, engine_.db.catalog()).ok());
  }
  {
    Clause c;
    c.head_relation = outer;
    c.num_vars = 3;
    c.head_args = {Term::Var(0), Term::Var(2)};
    c.body = {Literal::Relation(inner, {Term::Var(0), Term::Var(1)}),
              Literal::Relation(r_, {Term::Var(1), Term::Var(2)})};
    ASSERT_TRUE(engine_.registry.Define(outer, c, engine_.db.catalog()).ok());
  }

  auto expanded = engine_.registry.Expand(outer, {});
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  ASSERT_EQ(expanded->size(), 1u);
  // Only base relations remain.
  for (const Literal& lit : (*expanded)[0].body) {
    if (lit.kind == Literal::Kind::kRelation) {
      EXPECT_FALSE(engine_.db.catalog().IsDerived(lit.relation));
    }
  }
  // Expanded and unexpanded clauses compute the same extent.
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(2, 9)).ok());
  EXPECT_EQ(EvalClauses(*expanded), (TupleSet{T(1, 9)}));
}

TEST_F(RegistryTest, ExpandRespectsKeepSet) {
  RelationId inner = Derived("inner", 2);
  RelationId outer = Derived("outer", 2);
  Clause ci;
  ci.head_relation = inner;
  ci.num_vars = 2;
  ci.head_args = {Term::Var(0), Term::Var(1)};
  ci.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)})};
  ASSERT_TRUE(engine_.registry.Define(inner, ci, engine_.db.catalog()).ok());
  Clause co;
  co.head_relation = outer;
  co.num_vars = 3;
  co.head_args = {Term::Var(0), Term::Var(2)};
  co.body = {Literal::Relation(inner, {Term::Var(0), Term::Var(1)}),
             Literal::Relation(r_, {Term::Var(1), Term::Var(2)})};
  ASSERT_TRUE(engine_.registry.Define(outer, co, engine_.db.catalog()).ok());

  auto expanded = engine_.registry.Expand(outer, {inner});
  ASSERT_TRUE(expanded.ok());
  bool saw_inner = false;
  for (const Literal& lit : (*expanded)[0].body) {
    if (lit.kind == Literal::Kind::kRelation && lit.relation == inner) {
      saw_inner = true;
    }
  }
  EXPECT_TRUE(saw_inner);
}

TEST_F(RegistryTest, ExpandMultiClauseProducesProduct) {
  // u has two clauses; w(X) <- u(X, Y), u(Y, Z) expands to 4 clauses.
  RelationId u = Derived("u", 2);
  for (RelationId base : {q_, r_}) {
    Clause c;
    c.head_relation = u;
    c.num_vars = 2;
    c.head_args = {Term::Var(0), Term::Var(1)};
    c.body = {Literal::Relation(base, {Term::Var(0), Term::Var(1)})};
    ASSERT_TRUE(engine_.registry.Define(u, c, engine_.db.catalog()).ok());
  }
  RelationId w = Derived("w", 1);
  Clause c;
  c.head_relation = w;
  c.num_vars = 3;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(u, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(u, {Term::Var(1), Term::Var(2)})};
  ASSERT_TRUE(engine_.registry.Define(w, c, engine_.db.catalog()).ok());

  auto expanded = engine_.registry.Expand(w, {});
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->size(), 4u);
  // Semantics preserved: u = q ∪ r; w(X) iff u(X,·) joins u(·,·).
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(2, 5)).ok());
  EXPECT_EQ(EvalClauses(*expanded), (TupleSet{T(1)}));
}

TEST_F(RegistryTest, ExpandConstantHeadAddsEqualityCheck) {
  // only2(X) <- q(2, X); top(Y) <- only2(Y).
  RelationId only2 = Derived("only2", 1);
  Clause c2;
  c2.head_relation = only2;
  c2.num_vars = 1;
  c2.head_args = {Term::Var(0)};
  c2.body = {Literal::Relation(q_, {Term::Const(Value(2)), Term::Var(0)})};
  ASSERT_TRUE(engine_.registry.Define(only2, c2, engine_.db.catalog()).ok());
  RelationId top = Derived("top", 1);
  Clause ct;
  ct.head_relation = top;
  ct.num_vars = 1;
  ct.head_args = {Term::Var(0)};
  ct.body = {Literal::Relation(only2, {Term::Var(0)})};
  ASSERT_TRUE(engine_.registry.Define(top, ct, engine_.db.catalog()).ok());

  auto expanded = engine_.registry.Expand(top, {});
  ASSERT_TRUE(expanded.ok());
  ASSERT_TRUE(engine_.db.Insert(q_, T(2, 7)).ok());
  ASSERT_TRUE(engine_.db.Insert(q_, T(3, 8)).ok());
  EXPECT_EQ(EvalClauses(*expanded), (TupleSet{T(7)}));
}

TEST_F(RegistryTest, RecursiveRelationsDetectedAndKeptUnexpanded) {
  RelationId v = Derived("v", 1);
  Clause c;
  c.head_relation = v;
  c.num_vars = 2;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(v, {Term::Var(1)})};
  ASSERT_TRUE(engine_.registry.Define(v, c, engine_.db.catalog()).ok());
  EXPECT_TRUE(engine_.registry.IsRecursive(v));
  EXPECT_FALSE(engine_.registry.IsRecursive(q_));
  // Expansion keeps the recursive self-reference in place (it becomes a
  // fixpoint node in propagation networks).
  auto expanded = engine_.registry.Expand(v, {});
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  bool saw_self = false;
  for (const Literal& lit : (*expanded)[0].body) {
    if (lit.kind == Literal::Kind::kRelation && lit.relation == v) {
      saw_self = true;
    }
  }
  EXPECT_TRUE(saw_self);
}

TEST_F(RegistryTest, MutualRecursionDetected) {
  RelationId a = Derived("mra", 1);
  RelationId b = Derived("mrb", 1);
  Clause ca;
  ca.head_relation = a;
  ca.num_vars = 2;
  ca.head_args = {Term::Var(0)};
  ca.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
             Literal::Relation(b, {Term::Var(1)})};
  ASSERT_TRUE(engine_.registry.Define(a, ca, engine_.db.catalog()).ok());
  Clause cb;
  cb.head_relation = b;
  cb.num_vars = 2;
  cb.head_args = {Term::Var(0)};
  cb.body = {Literal::Relation(r_, {Term::Var(0), Term::Var(1)}),
             Literal::Relation(a, {Term::Var(1)})};
  ASSERT_TRUE(engine_.registry.Define(b, cb, engine_.db.catalog()).ok());
  EXPECT_TRUE(engine_.registry.IsRecursive(a));
  EXPECT_TRUE(engine_.registry.IsRecursive(b));
}

TEST_F(RegistryTest, NegatedDerivedLiteralNotExpanded) {
  RelationId inner = Derived("inner", 1);
  Clause ci;
  ci.head_relation = inner;
  ci.num_vars = 2;
  ci.head_args = {Term::Var(0)};
  ci.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)})};
  ASSERT_TRUE(engine_.registry.Define(inner, ci, engine_.db.catalog()).ok());
  RelationId outer = Derived("outer2", 1);
  Clause co;
  co.head_relation = outer;
  co.num_vars = 2;
  co.head_args = {Term::Var(0)};
  co.body = {Literal::Relation(r_, {Term::Var(0), Term::Var(1)}),
             Literal::Relation(inner, {Term::Var(0)}, /*negated=*/true)};
  ASSERT_TRUE(engine_.registry.Define(outer, co, engine_.db.catalog()).ok());

  auto expanded = engine_.registry.Expand(outer, {});
  ASSERT_TRUE(expanded.ok());
  bool saw_negated_inner = false;
  for (const Literal& lit : (*expanded)[0].body) {
    if (lit.kind == Literal::Kind::kRelation && lit.relation == inner) {
      EXPECT_TRUE(lit.negated);
      saw_negated_inner = true;
    }
  }
  EXPECT_TRUE(saw_negated_inner);
}

TEST_F(RegistryTest, DirectDependenciesDistinct) {
  RelationId v = Derived("v", 1);
  Clause c;
  c.head_relation = v;
  c.num_vars = 2;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(q_, {Term::Var(1), Term::Var(0)}),
            Literal::Relation(r_, {Term::Var(0), Term::Var(1)})};
  ASSERT_TRUE(engine_.registry.Define(v, c, engine_.db.catalog()).ok());
  auto deps = DerivedRegistry::DirectDependencies(
      *engine_.registry.GetClauses(v));
  EXPECT_EQ(deps.size(), 2u);
}

}  // namespace
}  // namespace deltamon::objectlog
