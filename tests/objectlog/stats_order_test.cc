/// The stats-fed literal-ordering optimizer: with no recorded stats the
/// greedy ordering scores indexed probes by raw boundness (ties broken by
/// body order); once the catalog's StatsStore has observed selectivities,
/// the more selective probe runs first — and measurably fewer candidate
/// tuples are examined.

#include <gtest/gtest.h>

#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon::objectlog {
namespace {

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

/// wide(int)->int with fan-out 50 per key, narrow(int)->int with fan-out 1,
/// and the join j(X) :- wide(X, A), narrow(X, B) probed with X bound.
class StatsOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog& catalog = engine_.db.catalog();
    wide_ = *catalog.CreateStoredFunction(
        "wide", FunctionSignature{{IntCol()}, {IntCol()}});
    narrow_ = *catalog.CreateStoredFunction(
        "narrow", FunctionSignature{{IntCol()}, {IntCol()}});
    for (int64_t x = 0; x < 4; ++x) {
      for (int64_t a = 0; a < 50; ++a) {
        ASSERT_TRUE(engine_.db.Insert(wide_, T(x, a)).ok());
      }
      ASSERT_TRUE(engine_.db.Insert(narrow_, T(x, 7)).ok());
    }

    // j(X) :- wide(X, A), narrow(X, B); vars X=0, A=1, B=2.
    j_ = *catalog.CreateDerivedFunction(
        "j", FunctionSignature{{IntCol()}, {}});
    clause_.head_relation = j_;
    clause_.num_vars = 3;
    clause_.head_args = {Term::Var(0)};
    clause_.body = {
        Literal::Relation(wide_, {Term::Var(0), Term::Var(1)}),
        Literal::Relation(narrow_, {Term::Var(0), Term::Var(2)})};
    Clause def = clause_;
    ASSERT_TRUE(engine_.registry.Define(j_, std::move(def), catalog).ok());
  }

  /// Examined-tuple count for evaluating j with X = 1 prebound.
  uint64_t TuplesExamined() {
    Evaluator ev(engine_.db, engine_.registry, StateContext{});
    TupleSet out;
    Status s = ev.EvaluateClauseWithBindings(clause_, {{0, Value(int64_t{1})}},
                                             &out);
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(out.size(), 1u);
    return ev.stats().tuples_examined;
  }

  Engine engine_;
  RelationId wide_ = kInvalidRelationId;
  RelationId narrow_ = kInvalidRelationId;
  RelationId j_ = kInvalidRelationId;
  Clause clause_;
};

TEST_F(StatsOrderTest, BoundnessTieBreaksByBodyOrderWithoutStats) {
  std::vector<bool> bound = {true, false, false};  // X prebound
  // Both literals are nbound=1 indexed probes; with no stats (and with an
  // empty StatsStore) the tie goes to body order: wide first.
  auto legacy = Evaluator::OrderBody(clause_.body, clause_.num_vars, bound);
  EXPECT_EQ(legacy, (std::vector<size_t>{0, 1}));
  StatsStore empty;
  auto with_empty =
      Evaluator::OrderBody(clause_.body, clause_.num_vars, bound, &empty);
  EXPECT_EQ(with_empty, legacy);
}

TEST_F(StatsOrderTest, ObservedSelectivityPutsTheSelectiveProbeFirst) {
  StatsStore stats;
  // narrow passed 1 in 256 candidates when probed on one bound arg;
  // wide passed everything.
  stats.Record(narrow_, static_cast<int>(RelationRole::kExtent), 1,
               /*tried=*/256, /*produced=*/1);
  stats.Record(wide_, static_cast<int>(RelationRole::kExtent), 1,
               /*tried=*/100, /*produced=*/100);
  std::vector<bool> bound = {true, false, false};
  auto order =
      Evaluator::OrderBody(clause_.body, clause_.num_vars, bound, &stats);
  EXPECT_EQ(order, (std::vector<size_t>{1, 0}));
}

TEST_F(StatsOrderTest, StatsFeedbackReducesTuplesExamined) {
  // Cold: wide runs first (boundness tie), so all 50 of its rows flow
  // into the narrow probe — 50 + 50 = 100 tuples examined.
  uint64_t cold = TuplesExamined();

  // Teach the catalog what `analyze` would have observed. The evaluator
  // consults the catalog's StatsStore on every ordering decision, so the
  // very next evaluation flips the join order: narrow (1 row) first,
  // then wide (50) — 51 examined.
  StatsStore& stats = engine_.db.catalog().stats();
  stats.Record(narrow_, static_cast<int>(RelationRole::kExtent), 1, 256, 1);
  stats.Record(wide_, static_cast<int>(RelationRole::kExtent), 1, 100, 100);
  uint64_t warm = TuplesExamined();

  EXPECT_LT(warm, cold);
  EXPECT_EQ(cold, 100u);
  EXPECT_EQ(warm, 51u);
}

}  // namespace
}  // namespace deltamon::objectlog
