/// Evaluator edge cases: the view-probe path vs. full materialization,
/// EvalCache reuse, OLD-state scans with patterns, wildcard negation,
/// and randomized probe/materialize equivalence.

#include <random>

#include <gtest/gtest.h>

#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon::objectlog {
namespace {

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
Tuple T(int64_t a) { return Tuple{Value(a)}; }
Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

class EvalEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    q_ = *engine_.db.catalog().CreateStoredFunction(
        "q", FunctionSignature{{IntCol()}, {IntCol()}});
    r_ = *engine_.db.catalog().CreateStoredFunction(
        "r", FunctionSignature{{IntCol()}, {IntCol()}});
    p_ = *engine_.db.catalog().CreateDerivedFunction(
        "p", FunctionSignature{{}, {IntCol(), IntCol()}});
    Clause c;
    c.head_relation = p_;
    c.num_vars = 3;
    c.head_args = {Term::Var(0), Term::Var(2)};
    c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
              Literal::Relation(r_, {Term::Var(1), Term::Var(2)})};
    ASSERT_TRUE(
        engine_.registry.Define(p_, std::move(c), engine_.db.catalog()).ok());
  }

  Engine engine_;
  RelationId q_, r_, p_;
};

TEST_F(EvalEdgeTest, ProbeWithBoundColumnMatchesFullEvaluation) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int64_t> v(0, 8);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(engine_.db.Insert(q_, T(v(rng), v(rng))).ok());
    ASSERT_TRUE(engine_.db.Insert(r_, T(v(rng), v(rng))).ok());
  }
  Evaluator ev(engine_.db, engine_.registry, StateContext{});
  TupleSet full;
  ASSERT_TRUE(ev.Evaluate(p_, EvalState::kNew, &full).ok());
  // For every possible first column, a bound probe must return exactly the
  // matching slice of the full extent.
  for (int64_t x = 0; x <= 8; ++x) {
    ScanPattern pattern(2);
    pattern[0] = Value(x);
    TupleSet probed;
    // Fresh evaluator: no cached extent, so the probe path is taken.
    Evaluator probe_ev(engine_.db, engine_.registry, StateContext{});
    ASSERT_TRUE(probe_ev.Probe(p_, EvalState::kNew, pattern, &probed).ok());
    TupleSet expected;
    for (const Tuple& t : full) {
      if (t[0] == Value(x)) expected.insert(t);
    }
    EXPECT_EQ(probed, expected) << "x=" << x;
  }
}

TEST_F(EvalEdgeTest, CachedExtentIsReusedForUnboundScans) {
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(2, 3)).ok());
  EvalCache cache;
  Evaluator ev(engine_.db, engine_.registry, StateContext{}, &cache);
  TupleSet out1, out2;
  // First unbound scan materializes; second hits the cache.
  RelationId outer = *engine_.db.catalog().CreateDerivedFunction(
      "outer", FunctionSignature{{}, {IntCol()}});
  Clause c;
  c.head_relation = outer;
  c.num_vars = 2;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(p_, {Term::Var(0), Term::Var(1)})};
  ASSERT_TRUE(engine_.registry.Define(outer, std::move(c),
                                      engine_.db.catalog()).ok());
  ASSERT_TRUE(ev.Evaluate(outer, EvalState::kNew, &out1).ok());
  ASSERT_NE(cache.Find(p_, EvalState::kNew), nullptr);
  uint64_t evals_before = ev.stats().clause_evals;
  ASSERT_TRUE(ev.Evaluate(outer, EvalState::kNew, &out2).ok());
  EXPECT_EQ(out1, out2);
  // The second evaluation re-ran outer's clause but not p's.
  EXPECT_EQ(ev.stats().clause_evals, evals_before + 1);
}

TEST_F(EvalEdgeTest, OldStateIndexedScanSkipsInsertedAndAddsDeleted) {
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 10)).ok());
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 20)).ok());
  engine_.db.MarkMonitored(q_);
  ASSERT_TRUE(engine_.db.Commit().ok());
  ASSERT_TRUE(engine_.db.Delete(q_, T(1, 10)).ok());
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 30)).ok());
  auto deltas = engine_.db.PendingDeltas();
  StateContext ctx;
  ctx.deltas = &deltas;
  Evaluator ev(engine_.db, engine_.registry, ctx);
  ScanPattern pattern(2);
  pattern[0] = Value(1);
  TupleSet old_rows;
  ASSERT_TRUE(ev.Probe(q_, EvalState::kOld, pattern, &old_rows).ok());
  EXPECT_EQ(old_rows, (TupleSet{T(1, 10), T(1, 20)}));
  TupleSet new_rows;
  ASSERT_TRUE(ev.Probe(q_, EvalState::kNew, pattern, &new_rows).ok());
  EXPECT_EQ(new_rows, (TupleSet{T(1, 20), T(1, 30)}));
}

TEST_F(EvalEdgeTest, WildcardNegationOverPartialPattern) {
  // v(X) <- q(X, _), ~r(X, _): items in q with no r entry at all.
  RelationId v = *engine_.db.catalog().CreateDerivedFunction(
      "v", FunctionSignature{{}, {IntCol()}});
  Clause c;
  c.head_relation = v;
  c.num_vars = 3;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(q_, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(r_, {Term::Var(0), Term::Var(2)},
                              /*negated=*/true)};
  ASSERT_TRUE(
      engine_.registry.Define(v, std::move(c), engine_.db.catalog()).ok());
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 0)).ok());
  ASSERT_TRUE(engine_.db.Insert(q_, T(2, 0)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(2, 99)).ok());
  Evaluator ev(engine_.db, engine_.registry, StateContext{});
  TupleSet out;
  ASSERT_TRUE(ev.Evaluate(v, EvalState::kNew, &out).ok());
  EXPECT_EQ(out, (TupleSet{T(1)}));
}

TEST_F(EvalEdgeTest, WildcardSharedAcrossLiteralsIsRejected) {
  // ~r(X, W) with W also used elsewhere is not a wildcard: unsafe.
  RelationId v = *engine_.db.catalog().CreateDerivedFunction(
      "v2", FunctionSignature{{}, {IntCol()}});
  Clause c;
  c.head_relation = v;
  c.num_vars = 2;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(r_, {Term::Var(0), Term::Var(1)},
                              /*negated=*/true),
            Literal::Compare(CompareOp::kGt, Term::Var(1),
                             Term::Const(Value(0)))};
  EXPECT_FALSE(
      engine_.registry.Define(v, std::move(c), engine_.db.catalog()).ok());
}

TEST_F(EvalEdgeTest, EmptyBodyClauseEmitsConstants) {
  RelationId k = *engine_.db.catalog().CreateDerivedFunction(
      "konst", FunctionSignature{{}, {IntCol()}});
  Clause c;
  c.head_relation = k;
  c.num_vars = 0;
  c.head_args = {Term::Const(Value(42))};
  ASSERT_TRUE(
      engine_.registry.Define(k, std::move(c), engine_.db.catalog()).ok());
  Evaluator ev(engine_.db, engine_.registry, StateContext{});
  TupleSet out;
  ASSERT_TRUE(ev.Evaluate(k, EvalState::kNew, &out).ok());
  EXPECT_EQ(out, (TupleSet{T(42)}));
}

TEST_F(EvalEdgeTest, ConstantHeadFiltersPointQueries) {
  RelationId k = *engine_.db.catalog().CreateDerivedFunction(
      "konst2", FunctionSignature{{}, {IntCol()}});
  Clause c;
  c.head_relation = k;
  c.num_vars = 0;
  c.head_args = {Term::Const(Value(7))};
  ASSERT_TRUE(
      engine_.registry.Define(k, std::move(c), engine_.db.catalog()).ok());
  Evaluator ev(engine_.db, engine_.registry, StateContext{});
  EXPECT_TRUE(*ev.Derivable(k, EvalState::kNew, T(7)));
  EXPECT_FALSE(*ev.Derivable(k, EvalState::kNew, T(8)));
}

TEST_F(EvalEdgeTest, BindingsOverloadRestrictsResults) {
  ASSERT_TRUE(engine_.db.Insert(q_, T(1, 2)).ok());
  ASSERT_TRUE(engine_.db.Insert(q_, T(3, 4)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(2, 9)).ok());
  ASSERT_TRUE(engine_.db.Insert(r_, T(4, 8)).ok());
  const Clause& clause = (*engine_.registry.GetClauses(p_))[0];
  Evaluator ev(engine_.db, engine_.registry, StateContext{});
  TupleSet out;
  ASSERT_TRUE(
      ev.EvaluateClauseWithBindings(clause, {{0, Value(3)}}, &out).ok());
  EXPECT_EQ(out, (TupleSet{T(3, 8)}));
  // Binding an unknown variable id is rejected.
  EXPECT_FALSE(
      ev.EvaluateClauseWithBindings(clause, {{99, Value(1)}}, &out).ok());
}

TEST_F(EvalEdgeTest, ViewInContextShadowsDefinition) {
  // Provide a materialized extent for p that disagrees with its clauses:
  // the evaluator must read the view.
  BaseRelation view(p_, "p_view",
                    Schema({IntCol(), IntCol()}));
  view.Insert(T(7, 7));
  std::unordered_map<RelationId, const BaseRelation*> views{{p_, &view}};
  StateContext ctx;
  ctx.views = &views;
  Evaluator ev(engine_.db, engine_.registry, ctx);
  TupleSet out;
  ASSERT_TRUE(ev.Evaluate(p_, EvalState::kNew, &out).ok());
  EXPECT_EQ(out, (TupleSet{T(7, 7)}));
  EXPECT_TRUE(*ev.Derivable(p_, EvalState::kNew, T(7, 7)));
}

}  // namespace
}  // namespace deltamon::objectlog
