/// Reproduces fig. 7 of the paper: one transaction that changes the
/// quantity, the delivery time, and the consume frequency of ALL n items,
/// affecting three of the five partial differentials at once.
///
/// Expected shape (paper §6.2): here naive monitoring wins — the three
/// differentials overlap in the work they redo — but only by a roughly
/// constant factor over the database size (the paper measured ~1.6×).

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "bench_util/inventory.h"

namespace deltamon {
namespace {

using rules::MonitorMode;
using workload::FleetSetup;
using workload::InventorySchema;
using workload::MonitorSetup;
using workload::SetupMonitorFleet;
using workload::SetupMonitorItems;

/// One fig. 7 transaction: 3n updates touching quantity, delivery_time and
/// consume_freq of every item (values stay on the quiet side of the
/// threshold so we time monitoring, not rule firing).
void RunMassiveTransaction(Engine& engine, const InventorySchema& schema,
                           int64_t round) {
  for (size_t i = 0; i < schema.items.size(); ++i) {
    if (!engine.db
             .Set(schema.quantity, Tuple{Value(schema.items[i])},
                  Tuple{Value(900 + round)})
             .ok() ||
        !engine.db
             .Set(schema.delivery_time,
                  Tuple{Value(schema.items[i]), Value(schema.suppliers[i])},
                  Tuple{Value(2 + (round % 2))})
             .ok() ||
        !engine.db
             .Set(schema.consume_freq, Tuple{Value(schema.items[i])},
                  Tuple{Value(20 + (round % 2))})
             .ok()) {
      std::abort();
    }
  }
  if (!engine.db.Commit().ok()) std::abort();
}

template <MonitorMode kMode>
void BM_Fig7(benchmark::State& state, bool kernels = true) {
  auto setup = SetupMonitorItems(static_cast<size_t>(state.range(0)), kMode);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  (*setup)->engine->rules.SetKernelsEnabled(kernels);
  if (bench::ThreadsArg() > 0) {
    (*setup)->engine->rules.SetNumThreads(
        static_cast<size_t>(bench::ThreadsArg()));
  }
  int64_t round = 0;
  for (auto _ : state) {
    RunMassiveTransaction(*(*setup)->engine, (*setup)->schema, round++);
  }
  state.counters["items"] = static_cast<double>(state.range(0));
  state.counters["updates_per_tx"] = static_cast<double>(3 * state.range(0));
}

/// Level-synchronous parallel propagation over a fleet of independent
/// monitor rules (one condition relation each, so the network has a
/// `rules`-wide level of root nodes). Sweep args: (items, rules, threads);
/// the threads=1 row is the serial baseline for the speedup claim in
/// docs/parallelism.md. `--threads=N` pins every row to N.
void BM_Fig7_Fleet(benchmark::State& state, bool kernels) {
  const auto items = static_cast<size_t>(state.range(0));
  const auto num_rules = static_cast<size_t>(state.range(1));
  size_t threads = static_cast<size_t>(state.range(2));
  if (bench::ThreadsArg() > 0) {
    threads = static_cast<size_t>(bench::ThreadsArg());
  }
  auto setup = SetupMonitorFleet(items, num_rules, MonitorMode::kIncremental);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  (*setup)->engine->rules.SetKernelsEnabled(kernels);
  (*setup)->engine->rules.SetNumThreads(threads);
  int64_t round = 0;
  for (auto _ : state) {
    RunMassiveTransaction(*(*setup)->engine, (*setup)->schema, round++);
  }
  state.counters["items"] = static_cast<double>(items);
  state.counters["rules"] = static_cast<double>(num_rules);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["updates_per_tx"] = static_cast<double>(3 * state.range(0));
}

void BM_Fig7_Incremental(benchmark::State& state) {
  BM_Fig7<MonitorMode::kIncremental>(state);
}
/// Ablation for the batch kernels: the same Δ-heavy waves forced through
/// the tuple-at-a-time interpreter. The gap to BM_Fig7_Incremental is the
/// kernel speedup end to end.
void BM_Fig7_IncrementalNoKernels(benchmark::State& state) {
  BM_Fig7<MonitorMode::kIncremental>(state, /*kernels=*/false);
}
void BM_Fig7_Naive(benchmark::State& state) {
  BM_Fig7<MonitorMode::kNaive>(state);
}
void BM_Fig7_Hybrid(benchmark::State& state) {
  // §8 extension: the hybrid monitor should pick the naive path here.
  BM_Fig7<MonitorMode::kHybrid>(state);
}
/// Kernels ablation for the fleet: 8 rules × 1000-item Δs is the most
/// Δ-heavy shape in the suite, so the interpreter-vs-kernel gap is widest
/// here.
void BM_Fig7_ParallelFleet(benchmark::State& state) {
  BM_Fig7_Fleet(state, /*kernels=*/true);
}
void BM_Fig7_ParallelFleetNoKernels(benchmark::State& state) {
  BM_Fig7_Fleet(state, /*kernels=*/false);
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_Fig7_Incremental)
    ->RangeMultiplier(10)
    ->Range(10, 10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(deltamon::BM_Fig7_IncrementalNoKernels)
    ->RangeMultiplier(10)
    ->Range(10, 10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(deltamon::BM_Fig7_Naive)
    ->RangeMultiplier(10)
    ->Range(10, 10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(deltamon::BM_Fig7_Hybrid)
    ->RangeMultiplier(10)
    ->Range(10, 10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(deltamon::BM_Fig7_ParallelFleet)
    ->ArgNames({"items", "rules", "threads"})
    ->Args({1000, 8, 1})
    ->Args({1000, 8, 2})
    ->Args({1000, 8, 4})
    ->Args({1000, 8, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(deltamon::BM_Fig7_ParallelFleetNoKernels)
    ->ArgNames({"items", "rules", "threads"})
    ->Args({1000, 8, 1})
    ->Args({1000, 8, 8})
    ->Unit(benchmark::kMillisecond);

DELTAMON_BENCH_MAIN("fig7_massive_changes");
