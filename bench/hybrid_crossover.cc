/// Extension benchmark for §8 ("Further research is needed on detecting
/// situations where naive evaluation should be chosen and how to mix naive
/// and incremental evaluation ... into a hybrid evaluation method"):
/// sweeps the number of updates per transaction on a fixed database and
/// shows where naive overtakes incremental, and that the hybrid monitor
/// tracks the better of the two on both sides of the crossover.

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "bench_util/inventory.h"

namespace deltamon {
namespace {

using rules::MonitorMode;
using workload::MonitorSetup;
using workload::SetFn;
using workload::SetupMonitorItems;

constexpr size_t kItems = 2000;

/// One transaction updating `changes` distinct items' quantities (staying
/// above the threshold: pure monitoring cost).
void RunTransaction(MonitorSetup& setup, int64_t changes, int64_t& round) {
  const auto& items = setup.schema.items;
  for (int64_t c = 0; c < changes; ++c, ++round) {
    size_t idx = static_cast<size_t>(round) % items.size();
    if (!SetFn(*setup.engine, setup.schema.quantity, items[idx],
               900 + (round % 89))
             .ok()) {
      std::abort();
    }
  }
  if (!setup.engine->db.Commit().ok()) std::abort();
}

template <MonitorMode kMode>
void BM_Crossover(benchmark::State& state) {
  auto setup = SetupMonitorItems(kItems, kMode);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  int64_t round = 0;
  for (auto _ : state) {
    RunTransaction(**setup, state.range(0), round);
  }
  state.counters["updates_per_tx"] = static_cast<double>(state.range(0));
  state.counters["items"] = kItems;
}

void BM_Crossover_Incremental(benchmark::State& state) {
  BM_Crossover<MonitorMode::kIncremental>(state);
}
void BM_Crossover_Naive(benchmark::State& state) {
  BM_Crossover<MonitorMode::kNaive>(state);
}
void BM_Crossover_Hybrid(benchmark::State& state) {
  BM_Crossover<MonitorMode::kHybrid>(state);
}

}  // namespace
}  // namespace deltamon

#define DELTAMON_CROSSOVER_BENCH(name)            \
  BENCHMARK(deltamon::name)                       \
      ->RangeMultiplier(4)                        \
      ->Range(1, 2048)                            \
      ->Unit(benchmark::kMicrosecond)

DELTAMON_CROSSOVER_BENCH(BM_Crossover_Incremental);
DELTAMON_CROSSOVER_BENCH(BM_Crossover_Naive);
DELTAMON_CROSSOVER_BENCH(BM_Crossover_Hybrid);

DELTAMON_BENCH_MAIN("hybrid_crossover");
