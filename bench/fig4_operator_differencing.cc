/// Reproduces the fig. 4 table operationally: for every relational
/// operator, compares computing the net change ΔP *incrementally* from the
/// partial differentials of fig. 4 against *recomputing* P in both states
/// and diffing. Relations hold `size` tuples; the transaction changes a
/// small constant number of input tuples — the paper's normal case.
///
/// Expected shape: incremental cost is governed by |ΔQ|,|ΔR| (plus the
/// correction point-checks), recomputation by |Q|,|R| — so the incremental
/// columns stay flat while recompute grows with size.

#include <random>

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "relalg/relalg.h"

namespace deltamon::relalg {
namespace {

constexpr int64_t kDomainFactor = 4;
constexpr size_t kChanges = 4;

struct Inputs {
  TupleSet q_new, r_new;
  DeltaSet dq, dr;
};

Inputs MakeInputs(size_t size, size_t arity, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int64_t> v(
      0, static_cast<int64_t>(size) * kDomainFactor);
  auto tuple = [&] {
    std::vector<Value> vals;
    for (size_t a = 0; a < arity; ++a) vals.emplace_back(v(rng));
    return Tuple(std::move(vals));
  };
  Inputs in;
  while (in.q_new.size() < size) in.q_new.insert(tuple());
  while (in.r_new.size() < size) in.r_new.insert(tuple());
  for (size_t c = 0; c < kChanges; ++c) {
    Tuple t = tuple();
    if (in.q_new.insert(t).second) in.dq.ApplyInsert(t);
    Tuple u = *in.q_new.begin();
    in.q_new.erase(u);
    in.dq.ApplyDelete(u);
    Tuple t2 = tuple();
    if (in.r_new.insert(t2).second) in.dr.ApplyInsert(t2);
  }
  return in;
}

Predicate EvenPredicate() {
  return [](const Tuple& t) { return t[0].AsInt() % 2 == 0; };
}

/// --- One benchmark pair (incremental vs recompute) per operator ---------

void BM_Select_Incremental(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 1, 42);
  Predicate cond = EvenPredicate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeltaSelect(in.q_new, in.dq, cond));
  }
}

void BM_Select_Recompute(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 1, 42);
  Predicate cond = EvenPredicate();
  TupleSet q_old = RollbackToOldState(in.q_new, in.dq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DiffStates(Select(q_old, cond), Select(in.q_new, cond)));
  }
}

void BM_Project_Incremental(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 2, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeltaProject(in.q_new, in.dq, {0}));
  }
}

void BM_Project_Recompute(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 2, 43);
  TupleSet q_old = RollbackToOldState(in.q_new, in.dq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DiffStates(Project(q_old, {0}), Project(in.q_new, {0})));
  }
}

void BM_Union_Incremental(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 1, 44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeltaUnionOp(in.q_new, in.r_new, in.dq, in.dr));
  }
}

void BM_Union_Recompute(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 1, 44);
  TupleSet q_old = RollbackToOldState(in.q_new, in.dq);
  TupleSet r_old = RollbackToOldState(in.r_new, in.dr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DiffStates(Union(q_old, r_old), Union(in.q_new, in.r_new)));
  }
}

void BM_Difference_Incremental(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 1, 45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DeltaDifference(in.q_new, in.r_new, in.dq, in.dr));
  }
}

void BM_Difference_Recompute(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 1, 45);
  TupleSet q_old = RollbackToOldState(in.q_new, in.dq);
  TupleSet r_old = RollbackToOldState(in.r_new, in.dr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiffStates(Difference(q_old, r_old),
                                        Difference(in.q_new, in.r_new)));
  }
}

void BM_Intersect_Incremental(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 1, 46);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DeltaIntersect(in.q_new, in.r_new, in.dq, in.dr));
  }
}

void BM_Intersect_Recompute(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 1, 46);
  TupleSet q_old = RollbackToOldState(in.q_new, in.dq);
  TupleSet r_old = RollbackToOldState(in.r_new, in.dr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DiffStates(Intersect(q_old, r_old), Intersect(in.q_new, in.r_new)));
  }
}

void BM_Join_Incremental(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 2, 47);
  JoinColumns on = {{1, 0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeltaJoin(in.q_new, in.r_new, on, in.dq, in.dr));
  }
}

void BM_Join_Recompute(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 2, 47);
  TupleSet q_old = RollbackToOldState(in.q_new, in.dq);
  TupleSet r_old = RollbackToOldState(in.r_new, in.dr);
  JoinColumns on = {{1, 0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DiffStates(Join(q_old, r_old, on), Join(in.q_new, in.r_new, on)));
  }
}

// Product output is quadratic; keep sizes modest.
void BM_Product_Incremental(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 1, 48);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeltaProduct(in.q_new, in.r_new, in.dq, in.dr));
  }
}

void BM_Product_Recompute(benchmark::State& state) {
  Inputs in = MakeInputs(static_cast<size_t>(state.range(0)), 1, 48);
  TupleSet q_old = RollbackToOldState(in.q_new, in.dq);
  TupleSet r_old = RollbackToOldState(in.r_new, in.dr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DiffStates(Product(q_old, r_old), Product(in.q_new, in.r_new)));
  }
}

}  // namespace
}  // namespace deltamon::relalg

#define DELTAMON_FIG4_BENCH(name)                 \
  BENCHMARK(deltamon::relalg::name)               \
      ->RangeMultiplier(8)                        \
      ->Range(64, 32768)                          \
      ->Unit(benchmark::kMicrosecond)

DELTAMON_FIG4_BENCH(BM_Select_Incremental);
DELTAMON_FIG4_BENCH(BM_Select_Recompute);
DELTAMON_FIG4_BENCH(BM_Project_Incremental);
DELTAMON_FIG4_BENCH(BM_Project_Recompute);
DELTAMON_FIG4_BENCH(BM_Union_Incremental);
DELTAMON_FIG4_BENCH(BM_Union_Recompute);
DELTAMON_FIG4_BENCH(BM_Difference_Incremental);
DELTAMON_FIG4_BENCH(BM_Difference_Recompute);
DELTAMON_FIG4_BENCH(BM_Intersect_Incremental);
DELTAMON_FIG4_BENCH(BM_Intersect_Recompute);
DELTAMON_FIG4_BENCH(BM_Join_Incremental);
DELTAMON_FIG4_BENCH(BM_Join_Recompute);

BENCHMARK(deltamon::relalg::BM_Product_Incremental)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(deltamon::relalg::BM_Product_Recompute)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMicrosecond);

DELTAMON_BENCH_MAIN("fig4_operator_differencing");
