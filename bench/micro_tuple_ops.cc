/// Micro-benchmarks for the tuple data plane: TupleSet insert and probe,
/// delta-union, and logical rollback over 2-ary through 8-ary tuples at 1k
/// and 100k scale. These isolate the container/hash/intern layer the Δ-set
/// machinery sits on (micro_delta_union covers the §4.1 semantics above it),
/// so a data-plane regression shows up here before it shows up in fig6/fig7.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util/report.h"

#include "delta/delta_set.h"

namespace deltamon {
namespace {

/// An n-ary tuple keyed by `i`: first column the key, the rest a mix of
/// int/string columns so wider tuples also exercise interned-string
/// equality and hashing, not just int compares.
Tuple MakeTuple(int64_t i, int64_t arity) {
  std::vector<Value> vals;
  vals.reserve(static_cast<size_t>(arity));
  vals.push_back(Value(i));
  for (int64_t c = 1; c < arity; ++c) {
    if (c % 2 == 0) {
      // Drawn from a small interned vocabulary (realistic: attribute
      // values repeat), so interning cost is paid once at setup.
      vals.push_back(Value("attr-" + std::to_string((i + c) % 97)));
    } else {
      vals.push_back(Value(i * 31 + c));
    }
  }
  return Tuple(std::move(vals));
}

std::vector<Tuple> MakeTuples(int64_t n, int64_t arity, int64_t offset = 0) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.push_back(MakeTuple(i + offset, arity));
  return out;
}

/// Bulk insert of n fresh tuples into an empty, unreserved set.
void BM_TupleSetInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t arity = state.range(1);
  std::vector<Tuple> tuples = MakeTuples(n, arity);
  for (auto _ : state) {
    TupleSet s;
    for (const Tuple& t : tuples) s.insert(t);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

/// Warm probes, alternating hits and misses on an n-tuple set.
void BM_TupleSetProbe(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t arity = state.range(1);
  TupleSet s;
  s.reserve(static_cast<size_t>(n));
  for (const Tuple& t : MakeTuples(n, arity)) s.insert(t);
  std::vector<Tuple> hits = MakeTuples(n, arity);
  std::vector<Tuple> misses = MakeTuples(n, arity, /*offset=*/n);
  size_t found = 0;
  for (auto _ : state) {
    for (int64_t i = 0; i < n; ++i) {
      found += s.contains(hits[static_cast<size_t>(i)]);
      found += s.contains(misses[static_cast<size_t>(i)]);
    }
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations() * n * 2);
}

/// ∪Δ of two Δ-sets with 50% cancellation, n-ary payload.
void BM_TupleDeltaUnion(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t arity = state.range(1);
  DeltaSet a, b;
  for (int64_t i = 0; i < n; ++i) {
    a.ApplyInsert(MakeTuple(i, arity));
    if (i % 2 == 0) {
      b.ApplyDelete(MakeTuple(i, arity));
    } else {
      b.ApplyInsert(MakeTuple(i + n, arity));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeltaUnion(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}

/// Logical rollback of an n-tuple state with a 10% Δ (fig. 3 primitive).
void BM_TupleRollback(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t arity = state.range(1);
  TupleSet s;
  s.reserve(static_cast<size_t>(n));
  for (const Tuple& t : MakeTuples(n, arity)) s.insert(t);
  DeltaSet d;
  for (int64_t i = 0; i < n / 10 + 1; ++i) {
    d.ApplyInsert(MakeTuple(i, arity));
    d.ApplyDelete(MakeTuple(i + n, arity));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RollbackToOldState(s, d));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void TupleArgs(benchmark::internal::Benchmark* b) {
  for (int64_t n : {int64_t{1000}, int64_t{100000}}) {
    for (int64_t arity : {int64_t{2}, int64_t{4}, int64_t{8}}) {
      b->Args({n, arity});
    }
  }
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_TupleSetInsert)->Apply(deltamon::TupleArgs);
BENCHMARK(deltamon::BM_TupleSetProbe)->Apply(deltamon::TupleArgs);
BENCHMARK(deltamon::BM_TupleDeltaUnion)->Apply(deltamon::TupleArgs);
BENCHMARK(deltamon::BM_TupleRollback)->Apply(deltamon::TupleArgs);

DELTAMON_BENCH_MAIN("micro_tuple_ops");
