/// Ablation for the paper's §2 contrast with the PF-algorithm: wave-front
/// Δ-sets + logical rollback (deltamon's default) versus permanently
/// materialized intermediate views (PF-style), on a bushy network where
/// the shared threshold view is an intermediate node.
///
/// Two workload shapes:
///  - quantity updates: the condition differential joins against the
///    threshold view — materialization makes that an indexed probe on a
///    stored extent, re-derivation computes it from base relations.
///  - min_stock updates: the threshold node's own differentials fire and
///    the view must be maintained.
///
/// The space side of the trade-off is the `resident_tuples` counter:
/// PF-style keeps |threshold| + |cnd| tuples resident forever; the
/// wave-front approach keeps only `peak_wavefront` during propagation and
/// zero between transactions (the paper's space optimization).

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "bench_util/inventory.h"

namespace deltamon {
namespace {

using rules::RuleOptions;
using rules::Semantics;
using workload::BuildInventory;
using workload::InventoryConfig;
using workload::InventorySchema;
using workload::SetFn;

struct Setup {
  std::unique_ptr<Engine> engine;
  InventorySchema schema;
  size_t fired = 0;
};

Result<std::unique_ptr<Setup>> MakeSetup(size_t num_items, bool materialize) {
  auto setup = std::make_unique<Setup>();
  setup->engine = std::make_unique<Engine>();
  InventoryConfig config;
  config.num_items = num_items;
  DELTAMON_ASSIGN_OR_RETURN(setup->schema,
                            BuildInventory(*setup->engine, config));
  core::BuildOptions options;
  options.keep.insert(setup->schema.threshold);  // bushy network
  setup->engine->rules.SetNetworkOptions(options);
  setup->engine->rules.SetMaterializeIntermediates(materialize);
  Setup* raw = setup.get();
  RuleOptions rule_options;
  rule_options.semantics = Semantics::kStrict;
  DELTAMON_ASSIGN_OR_RETURN(
      rules::RuleId rule,
      setup->engine->rules.CreateRule(
          "monitor_items", setup->schema.cnd_monitor_items,
          [raw](Database&, const Tuple&, const std::vector<Tuple>& items) {
            raw->fired += items.size();
            return Status::OK();
          },
          rule_options));
  DELTAMON_RETURN_IF_ERROR(setup->engine->rules.Activate(rule));
  return setup;
}

/// Transaction: a handful of quantity updates plus one threshold-side
/// (min_stock) update.
void RunTransaction(Setup& setup, int64_t& round) {
  const auto& items = setup.schema.items;
  for (int u = 0; u < 4; ++u, ++round) {
    size_t idx = static_cast<size_t>(round) % items.size();
    if (!SetFn(*setup.engine, setup.schema.quantity, items[idx],
               900 + (round % 89))
             .ok()) {
      std::abort();
    }
  }
  if (!SetFn(*setup.engine, setup.schema.min_stock,
             items[static_cast<size_t>(round) % items.size()],
             100 + (round % 5))
           .ok()) {
    std::abort();
  }
  if (!setup.engine->db.Commit().ok()) std::abort();
}

template <bool kMaterialize>
void BM_Materialization(benchmark::State& state) {
  auto setup = MakeSetup(static_cast<size_t>(state.range(0)), kMaterialize);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  int64_t round = 0;
  // Warm-up: the first wave pays the one-time view initialization (a full
  // evaluation of every materialized node); keep it out of the timing.
  RunTransaction(**setup, round);
  for (auto _ : state) {
    RunTransaction(**setup, round);
  }
  const auto& prop = (*setup)->engine->rules.last_check().propagation;
  state.counters["items"] = static_cast<double>(state.range(0));
  state.counters["resident_tuples"] =
      static_cast<double>(prop.materialized_resident_tuples);
  state.counters["peak_wavefront"] =
      static_cast<double>(prop.peak_wavefront_tuples);
}

void BM_WaveFront_Rollback(benchmark::State& state) {
  BM_Materialization<false>(state);
}
void BM_PFStyle_MaterializedViews(benchmark::State& state) {
  BM_Materialization<true>(state);
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_WaveFront_Rollback)
    ->RangeMultiplier(10)
    ->Range(100, 10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(deltamon::BM_PFStyle_MaterializedViews)
    ->RangeMultiplier(10)
    ->Range(100, 10000)
    ->Unit(benchmark::kMicrosecond);

DELTAMON_BENCH_MAIN("ablation_materialization");
