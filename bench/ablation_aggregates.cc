/// Benchmark for the §8 aggregates extension: monitoring a rule whose
/// condition compares a per-group SUM against a per-group limit
/// (over-limit desks), incremental vs. naive.
///
/// The incremental aggregate differential re-aggregates only the groups
/// touched by the transaction (two point aggregations per touched group),
/// so its cost scales with the group size and the number of touched
/// groups — not with the total number of trades. Naive monitoring
/// recomputes every group's aggregate.

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon {
namespace {

using objectlog::AggregateDef;
using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::Literal;
using objectlog::Term;

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }

constexpr int64_t kTradesPerDesk = 20;

struct Setup {
  std::unique_ptr<Engine> engine;
  RelationId trades = kInvalidRelationId;
  RelationId limit = kInvalidRelationId;
  size_t fired = 0;
};

Result<std::unique_ptr<Setup>> MakeSetup(int64_t desks,
                                         rules::MonitorMode mode) {
  auto setup = std::make_unique<Setup>();
  setup->engine = std::make_unique<Engine>();
  Engine& engine = *setup->engine;
  engine.rules.SetMode(mode);
  Catalog& cat = engine.db.catalog();
  DELTAMON_ASSIGN_OR_RETURN(
      setup->trades, cat.CreateStoredFunction(
                         "trades", FunctionSignature{{IntCol(), IntCol()},
                                                     {IntCol()}}));
  DELTAMON_ASSIGN_OR_RETURN(
      setup->limit, cat.CreateStoredFunction(
                        "desk_limit", FunctionSignature{{IntCol()},
                                                        {IntCol()}}));
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId total,
      cat.CreateDerivedFunction("total_position",
                                FunctionSignature{{}, {IntCol(), IntCol()}}));
  AggregateDef def;
  def.source = setup->trades;
  def.group_by = {0};
  def.value_column = 2;
  def.func = AggregateDef::Func::kSum;
  DELTAMON_RETURN_IF_ERROR(
      engine.registry.DefineAggregate(total, std::move(def), cat));

  DELTAMON_ASSIGN_OR_RETURN(
      RelationId cond,
      cat.CreateDerivedFunction("cnd_over_limit",
                                FunctionSignature{{}, {IntCol()}}));
  Clause c;
  c.head_relation = cond;
  c.num_vars = 3;
  c.head_args = {Term::Var(0)};
  c.body = {Literal::Relation(total, {Term::Var(0), Term::Var(1)}),
            Literal::Relation(setup->limit, {Term::Var(0), Term::Var(2)}),
            Literal::Compare(CompareOp::kGt, Term::Var(1), Term::Var(2))};
  DELTAMON_RETURN_IF_ERROR(engine.registry.Define(cond, std::move(c), cat));

  Setup* raw = setup.get();
  DELTAMON_ASSIGN_OR_RETURN(
      rules::RuleId rule,
      engine.rules.CreateRule(
          "over_limit", cond,
          [raw](Database&, const Tuple&, const std::vector<Tuple>& rows) {
            raw->fired += rows.size();
            return Status::OK();
          }));
  DELTAMON_RETURN_IF_ERROR(engine.rules.Activate(rule));

  // Population: `desks` desks × kTradesPerDesk trades; generous limits so
  // monitoring stays quiet.
  for (int64_t d = 0; d < desks; ++d) {
    DELTAMON_RETURN_IF_ERROR(engine.db.Set(
        setup->limit, Tuple{Value(d)},
        Tuple{Value(kTradesPerDesk * 100)}));
    for (int64_t t = 0; t < kTradesPerDesk; ++t) {
      DELTAMON_RETURN_IF_ERROR(engine.db.Insert(
          setup->trades, Tuple{Value(d), Value(t), Value(int64_t{10})}));
    }
  }
  DELTAMON_RETURN_IF_ERROR(engine.db.Commit());
  return setup;
}

/// One transaction: re-book one trade on one desk (a Set on one group).
void RunTransaction(Setup& setup, int64_t desks, int64_t& round) {
  int64_t desk = round % desks;
  int64_t trade = (round / desks) % kTradesPerDesk;
  if (!setup.engine->db
           .Set(setup.trades, Tuple{Value(desk), Value(trade)},
                Tuple{Value(10 + (round % 7))})
           .ok()) {
    std::abort();
  }
  if (!setup.engine->db.Commit().ok()) std::abort();
  ++round;
}

template <rules::MonitorMode kMode>
void BM_AggregateMonitor(benchmark::State& state) {
  auto setup = MakeSetup(state.range(0), kMode);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  int64_t round = 0;
  // Warm-up: first transaction pays one-time lazy index construction.
  RunTransaction(**setup, state.range(0), round);
  for (auto _ : state) {
    RunTransaction(**setup, state.range(0), round);
  }
  state.counters["desks"] = static_cast<double>(state.range(0));
  state.counters["trades"] =
      static_cast<double>(state.range(0) * kTradesPerDesk);
}

void BM_Aggregate_Incremental(benchmark::State& state) {
  BM_AggregateMonitor<rules::MonitorMode::kIncremental>(state);
}
void BM_Aggregate_Naive(benchmark::State& state) {
  BM_AggregateMonitor<rules::MonitorMode::kNaive>(state);
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_Aggregate_Incremental)
    ->RangeMultiplier(10)
    ->Range(10, 10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(deltamon::BM_Aggregate_Naive)
    ->RangeMultiplier(10)
    ->Range(10, 10000)
    ->Unit(benchmark::kMicrosecond);

DELTAMON_BENCH_MAIN("ablation_aggregates");
