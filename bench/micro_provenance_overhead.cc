/// Microbenchmarks for firing provenance and wave capture: the commit
/// path with both recorders off (the ordinary-transaction budget — one
/// relaxed flag load each), with lineage capture armed (per-influent-row
/// restricted evaluation plus ring appends), and with wave capture armed
/// (Δ-set snapshots per round). CI diffs the *Off variants against the
/// committed baseline report-only; the On variants document the price of
/// `set provenance on;` / `set wave_capture on;` rather than gate it.

#include <benchmark/benchmark.h>

#include "bench_util/inventory.h"
#include "bench_util/report.h"
#include "core/lineage.h"
#include "obs/provenance.h"
#include "obs/wave_recorder.h"

namespace deltamon {
namespace {

void RunCommits(benchmark::State& state, bool provenance, bool waves) {
  auto setup = workload::SetupMonitorItems(
      static_cast<size_t>(state.range(0)), rules::MonitorMode::kIncremental);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  Engine& engine = *(*setup)->engine;
  const workload::InventorySchema& schema = (*setup)->schema;
  engine.rules.SetProvenanceEnabled(provenance);
  engine.rules.SetWaveCaptureEnabled(waves);
  int64_t round = 0;
  for (auto _ : state) {
    for (int tx = 0; tx < 100; ++tx, ++round) {
      Oid item = schema.items[static_cast<size_t>(round) % schema.items.size()];
      benchmark::DoNotOptimize(
          workload::SetFn(engine, schema.quantity, item, 900 + (round % 89)));
      if (!engine.db.Commit().ok()) std::abort();
    }
  }
  engine.rules.SetProvenanceEnabled(false);
  engine.rules.SetWaveCaptureEnabled(false);
  obs::GlobalProvenanceLog().Clear();
  obs::GlobalWaveRecorder().Clear();
  state.counters["items"] = static_cast<double>(state.range(0));
  state.counters["txs"] = 100;
}

/// The lineage-off hot path: what every transaction pays for the
/// provenance machinery's existence. Must track BM_Fig6ProfilerDisabled.
void BM_CommitProvenanceOff(benchmark::State& state) {
  RunCommits(state, /*provenance=*/false, /*waves=*/false);
}
BENCHMARK(BM_CommitProvenanceOff)->Arg(100)->Arg(1000);

/// `set provenance on;`: one restricted evaluation per influent row plus
/// a FiringRecord (lineage export included) per firing.
void BM_CommitProvenanceOn(benchmark::State& state) {
  RunCommits(state, /*provenance=*/true, /*waves=*/false);
}
BENCHMARK(BM_CommitProvenanceOn)->Arg(100)->Arg(1000);

/// `set wave_capture on;`: Δ-set snapshot + ring append per round.
void BM_CommitWaveCaptureOn(benchmark::State& state) {
  RunCommits(state, /*provenance=*/false, /*waves=*/true);
}
BENCHMARK(BM_CommitWaveCaptureOn)->Arg(100)->Arg(1000);

/// Both recorders armed — the full black-box configuration.
void BM_CommitFullCapture(benchmark::State& state) {
  RunCommits(state, /*provenance=*/true, /*waves=*/true);
}
BENCHMARK(BM_CommitFullCapture)->Arg(100)->Arg(1000);

/// The WaveLineage bookkeeping alone: one AddParent per derived row on
/// the capture path, dominated by the dedupe scan over prior parents.
void BM_LineageAddParent(benchmark::State& state) {
  Catalog catalog;
  auto rel = catalog.CreateStoredFunction(
      "q", FunctionSignature{{ColumnType{ValueKind::kInt, kInvalidTypeId}},
                             {ColumnType{ValueKind::kInt, kInvalidTypeId}}});
  if (!rel.ok()) {
    state.SkipWithError(rel.status().ToString().c_str());
    return;
  }
  int64_t i = 0;
  for (auto _ : state) {
    core::WaveLineage lineage;
    for (int j = 0; j < 64; ++j, ++i) {
      Tuple row{Value(i & 0xff), Value(int64_t{1})};
      lineage.AddParent(*rel, true, row,
                        core::WaveLineage::Parent{*rel, true, row, "Δq/Δ+q"});
    }
    benchmark::DoNotOptimize(lineage.size());
  }
  state.counters["rows"] = 64;
}
BENCHMARK(BM_LineageAddParent);

}  // namespace
}  // namespace deltamon

DELTAMON_BENCH_MAIN("micro_provenance_overhead");
