/// Load driver for deltamond (docs/server.md): N concurrent clients each
/// looping `set quantity(k) = v; commit;` batches against a loopback
/// server with an activated monitor rule, in two key layouts:
///
///   BM_NetThroughput           disjoint keys per client — commits never
///                              conflict, so the sweep measures raw
///                              group-commit throughput: as N grows the
///                              commit queue batches more transactions
///                              per check-phase wave (txns_per_wave) and
///                              commits/sec scales past waves/sec.
///   BM_NetThroughputContended  all clients hammer the same small key
///                              range — first-committer-wins validation
///                              aborts the losers, clients retry, and the
///                              abort_rate column shows the cost.
///
/// Reports commits/sec, waves/sec, txns-per-wave, abort rate, and p50/p99
/// per-statement round-trip latency at N ∈ {1, 4, 16, 64}. The committed
/// baseline gates the CI server-smoke job through bench_diff.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/report.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "rules/engine.h"

namespace deltamon {
namespace {

constexpr int kKeysPerClient = 10;
constexpr int kBatchesPerIteration = 20;
constexpr int kThreshold = 50;
/// Key range the contended variant squeezes every client into.
constexpr int kContendedKeys = 4;

/// One statement batch: a quantity write that every few rounds dips below
/// the threshold so the monitor rule actually fires during the run.
std::string Batch(int key, int b, int64_t round) {
  const int value =
      ((b + round) % 5 == 0) ? kThreshold / 2 : kThreshold * 2;
  return "set quantity(" + std::to_string(key) + ") = " +
         std::to_string(value) + "; commit;";
}

/// Starts a loopback server over a fresh engine and installs the monitor
/// schema plus thresholds for every key in `keys`. Returns false (with
/// the benchmark errored) on any setup failure.
bool SetUpServer(benchmark::State& state, net::Server& server,
                 const std::vector<int>& keys) {
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return false;
  }
  Result<net::Client> boot = net::Client::Connect("127.0.0.1", server.port());
  if (!boot.ok()) {
    state.SkipWithError("bootstrap connect failed");
    return false;
  }
  const char* schema[] = {
      "create function quantity(integer) -> integer;",
      "create function threshold(integer) -> integer;",
      "create function reorder(integer) -> integer;",
      "create rule monitor() as"
      "  when for each integer i where quantity(i) < threshold(i)"
      "  do set reorder(i) = 1;",
      "activate monitor();",
  };
  for (const char* stmt : schema) {
    if (!boot->Execute(stmt).ok()) {
      state.SkipWithError("bootstrap schema failed");
      return false;
    }
  }
  std::string batch;
  for (size_t i = 0; i < keys.size(); ++i) {
    batch += "set threshold(" + std::to_string(keys[i]) + ") = " +
             std::to_string(kThreshold) + ";";
    if (i % 64 == 63 || i == keys.size() - 1) {
      batch += "commit;";
      if (!boot->Execute(batch).ok()) {
        state.SkipWithError("bootstrap thresholds failed");
        return false;
      }
      batch.clear();
    }
  }
  return true;
}

/// The shared driver. `contended` selects the key layout; conflicted
/// commits are retried (they only occur in the contended layout) and
/// counted so the abort rate lands in the report.
void RunThroughput(benchmark::State& state, bool contended) {
  const int n_clients = static_cast<int>(state.range(0));

  Engine engine;
  net::ServerOptions options;
  options.port = 0;
  options.enable_admin = false;
  options.num_workers = 4;
  net::Server server(engine, options);
  std::vector<int> keys;
  if (contended) {
    for (int k = 0; k < kContendedKeys; ++k) keys.push_back(k);
  } else {
    for (int c = 0; c < n_clients; ++c) {
      for (int k = 0; k < kKeysPerClient; ++k) keys.push_back(c * 1000 + k);
    }
  }
  if (!SetUpServer(state, server, keys)) return;

  // Persistent connections, one per simulated client.
  std::vector<net::Client> clients;
  clients.reserve(n_clients);
  for (int c = 0; c < n_clients; ++c) {
    Result<net::Client> client =
        net::Client::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      state.SkipWithError("client connect failed");
      return;
    }
    clients.push_back(std::move(*client));
  }

  std::vector<uint64_t> latencies_ns;
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> aborts{0};
  int64_t round = 0;
  const obs::MetricsSnapshot before = obs::Registry::Global().Snapshot();
  for (auto _ : state) {
    std::vector<std::vector<uint64_t>> per_client(n_clients);
    std::vector<std::thread> threads;
    threads.reserve(n_clients);
    for (int c = 0; c < n_clients; ++c) {
      threads.emplace_back([&, c] {
        per_client[c].reserve(kBatchesPerIteration);
        for (int b = 0; b < kBatchesPerIteration; ++b) {
          const int key = contended ? b % kContendedKeys
                                    : c * 1000 + b % kKeysPerClient;
          const std::string batch = Batch(key, b, round);
          const auto start = std::chrono::steady_clock::now();
          // Retry aborted commits, as a real client would; every retry
          // re-sends the whole transaction.
          for (;;) {
            Result<net::Client::Response> r = clients[c].Execute(batch);
            if (r.ok()) break;
            if (r.status().code() != StatusCode::kTxnConflict) {
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            aborts.fetch_add(1, std::memory_order_relaxed);
          }
          const auto stop = std::chrono::steady_clock::now();
          per_client[c].push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                   start)
                  .count()));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    ++round;
    state.PauseTiming();
    for (const std::vector<uint64_t>& v : per_client) {
      latencies_ns.insert(latencies_ns.end(), v.begin(), v.end());
    }
    state.ResumeTiming();
  }
  const obs::MetricsSnapshot diff =
      obs::Registry::Global().Snapshot().DiffSince(before);
  if (failed.load(std::memory_order_relaxed)) {
    state.SkipWithError("statement batch failed mid-run");
    return;
  }
  server.Stop();

  const double total_commits =
      static_cast<double>(state.iterations()) * n_clients *
      kBatchesPerIteration;
  state.SetItemsProcessed(static_cast<int64_t>(total_commits));
  state.counters["clients"] = static_cast<double>(n_clients);
  state.counters["commits_per_sec"] =
      benchmark::Counter(total_commits, benchmark::Counter::kIsRate);
  // Group-commit shape: how many check-phase waves carried those commits
  // (in-process server, so the global registry is ours), and what share
  // of commit attempts lost validation. txn.batches counts waves the
  // commit queue ran; propagator waves match it 1:1 here because the
  // monitor's action cascade settles within the check phase.
  const double waves = static_cast<double>(diff.CounterOr("txn.batches", 0));
  if (waves > 0) {
    state.counters["waves_per_sec"] =
        benchmark::Counter(waves, benchmark::Counter::kIsRate);
    state.counters["txns_per_wave"] = total_commits / waves;
  }
  const double aborted = static_cast<double>(aborts.load());
  state.counters["abort_rate"] =
      aborted / (total_commits + aborted);
  if (!latencies_ns.empty()) {
    std::sort(latencies_ns.begin(), latencies_ns.end());
    state.counters["p50_statement_ns"] = static_cast<double>(
        latencies_ns[latencies_ns.size() / 2]);
    state.counters["p99_statement_ns"] = static_cast<double>(
        latencies_ns[latencies_ns.size() * 99 / 100]);
  }
}

void BM_NetThroughput(benchmark::State& state) {
  RunThroughput(state, /*contended=*/false);
}

void BM_NetThroughputContended(benchmark::State& state) {
  RunThroughput(state, /*contended=*/true);
}

BENCHMARK(BM_NetThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_NetThroughputContended)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace deltamon

DELTAMON_BENCH_MAIN("net_throughput")
