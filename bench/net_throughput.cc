/// Load driver for deltamond (docs/server.md): N concurrent clients each
/// looping `set quantity(k) = v; commit;` batches over disjoint keys
/// against a loopback server with an activated monitor rule. Reports
/// commits/sec plus p50/p99 per-statement round-trip latency at
/// N ∈ {1, 4, 16, 64}. The committed baseline gates the CI server-smoke
/// job through bench_diff.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/report.h"
#include "net/client.h"
#include "net/server.h"
#include "rules/engine.h"

namespace deltamon {
namespace {

constexpr int kKeysPerClient = 10;
constexpr int kBatchesPerIteration = 20;
constexpr int kThreshold = 50;

/// One statement batch: a quantity write that every few rounds dips below
/// the threshold so the monitor rule actually fires during the run.
std::string Batch(int client, int b, int64_t round) {
  const int key = client * 1000 + b % kKeysPerClient;
  const int value =
      ((b + round) % 5 == 0) ? kThreshold / 2 : kThreshold * 2;
  return "set quantity(" + std::to_string(key) + ") = " +
         std::to_string(value) + "; commit;";
}

void BM_NetThroughput(benchmark::State& state) {
  const int n_clients = static_cast<int>(state.range(0));

  Engine engine;
  net::ServerOptions options;
  options.port = 0;
  options.enable_admin = false;
  options.num_workers = 4;
  net::Server server(engine, options);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  {
    Result<net::Client> boot = net::Client::Connect("127.0.0.1", server.port());
    if (!boot.ok()) {
      state.SkipWithError("bootstrap connect failed");
      return;
    }
    const char* schema[] = {
        "create function quantity(integer) -> integer;",
        "create function threshold(integer) -> integer;",
        "create function reorder(integer) -> integer;",
        "create rule monitor() as"
        "  when for each integer i where quantity(i) < threshold(i)"
        "  do set reorder(i) = 1;",
        "activate monitor();",
    };
    for (const char* stmt : schema) {
      if (!boot->Execute(stmt).ok()) {
        state.SkipWithError("bootstrap schema failed");
        return;
      }
    }
    // Thresholds for every key any client will touch, one commit per
    // client's key range.
    for (int c = 0; c < n_clients; ++c) {
      std::string batch;
      for (int k = 0; k < kKeysPerClient; ++k) {
        batch += "set threshold(" + std::to_string(c * 1000 + k) + ") = " +
                 std::to_string(kThreshold) + ";";
      }
      batch += "commit;";
      if (!boot->Execute(batch).ok()) {
        state.SkipWithError("bootstrap thresholds failed");
        return;
      }
    }
  }

  // Persistent connections, one per simulated client.
  std::vector<net::Client> clients;
  clients.reserve(n_clients);
  for (int c = 0; c < n_clients; ++c) {
    Result<net::Client> client =
        net::Client::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      state.SkipWithError("client connect failed");
      return;
    }
    clients.push_back(std::move(*client));
  }

  std::vector<uint64_t> latencies_ns;
  std::atomic<bool> failed{false};
  int64_t round = 0;
  for (auto _ : state) {
    std::vector<std::vector<uint64_t>> per_client(n_clients);
    std::vector<std::thread> threads;
    threads.reserve(n_clients);
    for (int c = 0; c < n_clients; ++c) {
      threads.emplace_back([&, c] {
        per_client[c].reserve(kBatchesPerIteration);
        for (int b = 0; b < kBatchesPerIteration; ++b) {
          const auto start = std::chrono::steady_clock::now();
          if (!clients[c].Execute(Batch(c, b, round)).ok()) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          const auto stop = std::chrono::steady_clock::now();
          per_client[c].push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                   start)
                  .count()));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    ++round;
    state.PauseTiming();
    for (const std::vector<uint64_t>& v : per_client) {
      latencies_ns.insert(latencies_ns.end(), v.begin(), v.end());
    }
    state.ResumeTiming();
  }
  if (failed.load(std::memory_order_relaxed)) {
    state.SkipWithError("statement batch failed mid-run");
    return;
  }
  server.Stop();

  const double total_commits =
      static_cast<double>(state.iterations()) * n_clients *
      kBatchesPerIteration;
  state.SetItemsProcessed(static_cast<int64_t>(total_commits));
  state.counters["clients"] = static_cast<double>(n_clients);
  state.counters["commits_per_sec"] =
      benchmark::Counter(total_commits, benchmark::Counter::kIsRate);
  if (!latencies_ns.empty()) {
    std::sort(latencies_ns.begin(), latencies_ns.end());
    state.counters["p50_statement_ns"] = static_cast<double>(
        latencies_ns[latencies_ns.size() / 2]);
    state.counters["p99_statement_ns"] = static_cast<double>(
        latencies_ns[latencies_ns.size() * 99 / 100]);
  }
}

BENCHMARK(BM_NetThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace deltamon

DELTAMON_BENCH_MAIN("net_throughput")
