/// Ablation for §7.1 (optimizations and node sharing): monitoring two rules
/// that both depend on the threshold view, with
///   - the paper's default full expansion (flat network, fig. 2): each
///     rule's condition embeds the whole threshold body, so threshold-side
///     updates re-derive it once per rule, and
///   - node sharing (bushy network, fig. 1): threshold kept as a shared
///     intermediate node whose Δ-set is computed once and consumed by both
///     conditions.
///
/// The trade-off the paper describes: expansion gives the optimizer more
/// freedom (good for quantity-only updates), sharing avoids recomputing
/// shared sub-conditions (good when the shared node's influents change and
/// several rules consume it).

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "bench_util/inventory.h"

namespace deltamon {
namespace {

using rules::RuleOptions;
using rules::Semantics;
using workload::BuildInventory;
using workload::InventoryConfig;
using workload::InventorySchema;
using workload::SetFn;

struct SharingSetup {
  std::unique_ptr<Engine> engine;
  InventorySchema schema;
  size_t fired = 0;
};

/// Builds the inventory plus TWO rules over cnd_monitor_items-style
/// conditions (one low-stock, one high-threshold watchdog), both referring
/// to the threshold view.
Result<std::unique_ptr<SharingSetup>> MakeSetup(size_t num_items,
                                                bool share_threshold) {
  auto setup = std::make_unique<SharingSetup>();
  setup->engine = std::make_unique<Engine>();
  InventoryConfig config;
  config.num_items = num_items;
  DELTAMON_ASSIGN_OR_RETURN(setup->schema,
                            BuildInventory(*setup->engine, config));
  Engine& engine = *setup->engine;
  const InventorySchema& s = setup->schema;

  // Second condition over the same threshold view: items whose threshold
  // exceeds a watermark (an "expensive to restock" watchdog).
  ColumnType item_col{ValueKind::kObject, s.item};
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId high,
      engine.db.catalog().CreateDerivedFunction(
          "cnd_high_threshold", FunctionSignature{{}, {item_col}}));
  {
    objectlog::Clause c;
    c.head_relation = high;
    c.num_vars = 2;
    c.var_names = {"I", "T"};
    c.head_args = {objectlog::Term::Var(0)};
    c.body = {
        objectlog::Literal::Relation(
            s.threshold, {objectlog::Term::Var(0), objectlog::Term::Var(1)}),
        objectlog::Literal::Compare(objectlog::CompareOp::kGt,
                                    objectlog::Term::Var(1),
                                    objectlog::Term::Const(Value(100000))),
    };
    DELTAMON_RETURN_IF_ERROR(
        engine.registry.Define(high, std::move(c), engine.db.catalog()));
  }

  if (share_threshold) {
    core::BuildOptions options;
    options.keep.insert(s.threshold);
    engine.rules.SetNetworkOptions(options);
  }
  SharingSetup* raw = setup.get();
  auto count = [raw](Database&, const Tuple&,
                     const std::vector<Tuple>& items) {
    raw->fired += items.size();
    return Status::OK();
  };
  RuleOptions options;
  options.semantics = Semantics::kNervous;
  options.propagate_deletions = false;
  DELTAMON_ASSIGN_OR_RETURN(
      rules::RuleId r1,
      engine.rules.CreateRule("low_stock", s.cnd_monitor_items, count,
                              options));
  DELTAMON_ASSIGN_OR_RETURN(
      rules::RuleId r2,
      engine.rules.CreateRule("high_threshold", high, count, options));
  DELTAMON_RETURN_IF_ERROR(engine.rules.Activate(r1));
  DELTAMON_RETURN_IF_ERROR(engine.rules.Activate(r2));
  return setup;
}

/// One transaction changing min_stock of 1% of the items — a threshold-side
/// update consumed by both rules.
void RunThresholdUpdates(SharingSetup& setup, int64_t& round) {
  size_t n = setup.schema.items.size();
  size_t changes = std::max<size_t>(1, n / 100);
  for (size_t c = 0; c < changes; ++c, ++round) {
    size_t idx = static_cast<size_t>(round) % n;
    if (!workload::SetFn(*setup.engine, setup.schema.min_stock,
                         setup.schema.items[idx], 100 + (round % 7))
             .ok()) {
      std::abort();
    }
  }
  if (!setup.engine->db.Commit().ok()) std::abort();
}

template <bool kShare>
void BM_NodeSharing(benchmark::State& state) {
  auto setup = MakeSetup(static_cast<size_t>(state.range(0)), kShare);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  int64_t round = 0;
  for (auto _ : state) {
    RunThresholdUpdates(**setup, round);
  }
  state.counters["items"] = static_cast<double>(state.range(0));
  state.counters["diffs_run"] = static_cast<double>(
      (*setup)->engine->rules.last_check().propagation.differentials_executed);
}

void BM_Flat_FullExpansion(benchmark::State& state) {
  BM_NodeSharing<false>(state);
}
void BM_Bushy_SharedThreshold(benchmark::State& state) {
  BM_NodeSharing<true>(state);
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_Flat_FullExpansion)
    ->RangeMultiplier(10)
    ->Range(100, 10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(deltamon::BM_Bushy_SharedThreshold)
    ->RangeMultiplier(10)
    ->Range(100, 10000)
    ->Unit(benchmark::kMillisecond);

DELTAMON_BENCH_MAIN("ablation_node_sharing");
