/// Microbenchmarks for the observability layer itself: what a counter
/// increment, a histogram record, and a registry snapshot cost, both with
/// the runtime flag on and off. Guards the "<2% overhead when disabled"
/// budget — the disabled paths must stay in the low single-digit
/// nanoseconds (one relaxed atomic load + branch).

#include <benchmark/benchmark.h>

#include "bench_util/inventory.h"
#include "bench_util/report.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace deltamon {
namespace {

void BM_CounterAddEnabled(benchmark::State& state) {
  obs::SetEnabled(true);
  for (auto _ : state) {
    DELTAMON_OBS_COUNT("bench.obs_overhead.counter", 1);
  }
}
BENCHMARK(BM_CounterAddEnabled);

void BM_CounterAddDisabled(benchmark::State& state) {
  obs::SetEnabled(false);
  for (auto _ : state) {
    DELTAMON_OBS_COUNT("bench.obs_overhead.counter", 1);
  }
  obs::SetEnabled(true);
}
BENCHMARK(BM_CounterAddDisabled);

void BM_HistogramRecordEnabled(benchmark::State& state) {
  obs::SetEnabled(true);
  uint64_t v = 0;
  for (auto _ : state) {
    DELTAMON_OBS_RECORD("bench.obs_overhead.histogram", v & 0xffff);
    ++v;
  }
  benchmark::DoNotOptimize(v);
}
BENCHMARK(BM_HistogramRecordEnabled);

void BM_HistogramRecordDisabled(benchmark::State& state) {
  obs::SetEnabled(false);
  uint64_t v = 0;
  for (auto _ : state) {
    DELTAMON_OBS_RECORD("bench.obs_overhead.histogram", v & 0xffff);
    ++v;
  }
  obs::SetEnabled(true);
  benchmark::DoNotOptimize(v);
}
BENCHMARK(BM_HistogramRecordDisabled);

void BM_ScopedTimer(benchmark::State& state) {
  obs::SetEnabled(true);
  for (auto _ : state) {
    DELTAMON_OBS_SCOPED_TIMER(t, "bench.obs_overhead.timer_ns");
  }
}
BENCHMARK(BM_ScopedTimer);

void BM_SpanNoSink(benchmark::State& state) {
  // The disabled path every propagation wave pays when nobody traces: the
  // constructor's TraceEnabled() load and the destructor's branch. Must
  // stay within the same budget as a disabled counter.
  obs::SetTraceSink(nullptr);
  for (auto _ : state) {
    DELTAMON_OBS_SPAN(span, "bench", "obs_overhead");
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanNoSink);

void BM_SpanRingSink(benchmark::State& state) {
  // The enabled path `trace <stmt>;` pays per span: id allocation, two
  // clock reads, building and emitting the TraceEvent into the ring.
  obs::RingTraceSink ring(4096);
  obs::SetTraceSink(&ring);
  for (auto _ : state) {
    DELTAMON_OBS_SPAN(span, "bench", "obs_overhead");
    span.AddField("value", 1);
  }
  obs::SetTraceSink(nullptr);
  state.counters["dropped"] = static_cast<double>(ring.dropped_events());
}
BENCHMARK(BM_SpanRingSink);

/// The fig-6 inner loop with the per-literal profiler compiled in but
/// detached (no `explain analyze` running): the cost every ordinary
/// transaction pays for the profiler's existence — one null check per
/// clause. Identical by name in a -DDELTAMON_OBS=OFF build, where the
/// profiler is compiled out entirely; CI runs both builds and gates the
/// difference with bench_diff (the ≤1% disabled-path budget).
void BM_Fig6ProfilerDisabled(benchmark::State& state) {
  obs::SetEnabled(false);
  auto setup = workload::SetupMonitorItems(
      static_cast<size_t>(state.range(0)), rules::MonitorMode::kIncremental);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  Engine& engine = *(*setup)->engine;
  const workload::InventorySchema& schema = (*setup)->schema;
  int64_t round = 0;
  for (auto _ : state) {
    for (int tx = 0; tx < 100; ++tx, ++round) {
      Oid item = schema.items[static_cast<size_t>(round) % schema.items.size()];
      benchmark::DoNotOptimize(
          workload::SetFn(engine, schema.quantity, item, 900 + (round % 89)));
      if (!engine.db.Commit().ok()) std::abort();
    }
  }
  obs::SetEnabled(true);
  state.counters["items"] = static_cast<double>(state.range(0));
  state.counters["txs"] = 100;
}
BENCHMARK(BM_Fig6ProfilerDisabled)->Arg(100)->Arg(1000);

void BM_RegistrySnapshot(benchmark::State& state) {
  obs::SetEnabled(true);
  // Populate a registry of realistic size before measuring.
  for (int i = 0; i < 64; ++i) {
    obs::Registry::Global()
        .GetCounter("bench.obs_overhead.fill." + std::to_string(i))
        ->Add(i);
  }
  for (auto _ : state) {
    obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
    benchmark::DoNotOptimize(snap.counters.size());
  }
}
BENCHMARK(BM_RegistrySnapshot);

}  // namespace
}  // namespace deltamon

DELTAMON_BENCH_MAIN("micro_obs_overhead");
