/// Micro-benchmarks for the Δ-set machinery of §4.1: folding physical
/// events into logical Δ-sets (with insert/delete cancellation), the ∪Δ
/// delta-union operator, and the no-net-effect fast path the paper's
/// min_stock example relies on.

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "delta/delta_set.h"

namespace deltamon {
namespace {

Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

/// Folding n distinct insertions.
void BM_FoldInsertions(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    DeltaSet d;
    for (int64_t i = 0; i < n; ++i) d.ApplyInsert(T(i, i));
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

/// The §4.1 pattern: every update is later reverted — the Δ-set must end
/// empty and never grow beyond one entry per live key.
void BM_FoldNoNetEffect(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    DeltaSet d;
    for (int64_t i = 0; i < n; ++i) {
      d.ApplyDelete(T(i, 100));   // -(f, i, 100)
      d.ApplyInsert(T(i, 150));   // +(f, i, 150)
      d.ApplyDelete(T(i, 150));   // -(f, i, 150)
      d.ApplyInsert(T(i, 100));   // +(f, i, 100)
    }
    if (!d.empty()) std::abort();
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}

/// ∪Δ of two Δ-sets with 50% overlap (cancellation work).
void BM_DeltaUnion(benchmark::State& state) {
  const int64_t n = state.range(0);
  DeltaSet a, b;
  for (int64_t i = 0; i < n; ++i) {
    a.ApplyInsert(T(i, 0));
    if (i % 2 == 0) {
      b.ApplyDelete(T(i, 0));  // cancels half of a's insertions
    } else {
      b.ApplyInsert(T(i + n, 0));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeltaUnion(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}

/// Logical rollback: reconstructing the old state from new + Δ (fig. 3).
void BM_RollbackOldState(benchmark::State& state) {
  const int64_t n = state.range(0);
  TupleSet s;
  DeltaSet d;
  for (int64_t i = 0; i < n; ++i) s.insert(T(i, 0));
  for (int64_t i = 0; i < n / 10 + 1; ++i) {
    d.ApplyInsert(T(i, 0));
    d.ApplyDelete(T(i + n, 0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RollbackToOldState(s, d));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

/// DiffStates — what the naive monitor pays to find changes.
void BM_DiffStates(benchmark::State& state) {
  const int64_t n = state.range(0);
  TupleSet old_state, new_state;
  for (int64_t i = 0; i < n; ++i) {
    old_state.insert(T(i, 0));
    new_state.insert(T(i + n / 20, 0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiffStates(old_state, new_state));
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_FoldInsertions)->Range(64, 65536);
BENCHMARK(deltamon::BM_FoldNoNetEffect)->Range(64, 65536);
BENCHMARK(deltamon::BM_DeltaUnion)->Range(64, 65536);
BENCHMARK(deltamon::BM_RollbackOldState)->Range(64, 65536);
BENCHMARK(deltamon::BM_DiffStates)->Range(64, 65536);

DELTAMON_BENCH_MAIN("micro_delta_union");
