/// Ablation for the paper's space optimization (§4, fig. 3): accessing the
/// OLD state of a relation by *logical rollback* over (new state, Δ-set)
/// versus *materializing* a full old-state copy.
///
/// Three strategies, each performing `probes` membership tests against the
/// old state of a relation of `size` tuples with a small Δ:
///   - Materialize: build the rolled-back copy, then probe it (what the
///     PF-algorithm's retained intermediate materializations amount to).
///   - LazyView: probe through relalg::OldStateView (no copy at all).
///   - Snapshot: keep a permanently maintained second copy (space cost
///     2×|R|; what a materialized-view approach pays).
///
/// Expected shape: for few probes per transaction — the paper's normal
/// case — LazyView wins by orders of magnitude since it does O(1) work per
/// probe and zero setup, while Materialize pays O(|R|) per transaction.

#include <random>

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "relalg/relalg.h"

namespace deltamon {
namespace {

constexpr int kProbes = 16;

struct Setup {
  TupleSet new_state;
  DeltaSet delta;
  std::vector<Tuple> probes;
};

Setup MakeSetup(int64_t size) {
  Setup s;
  std::mt19937 rng(7);
  for (int64_t i = 0; i < size; ++i) {
    s.new_state.insert(Tuple{Value(i)});
  }
  // Small transaction: ~8 changes.
  for (int64_t i = 0; i < 8; ++i) {
    Tuple added{Value(size + i)};
    s.new_state.insert(added);
    s.delta.ApplyInsert(added);
    Tuple removed{Value(i * (size / 8 + 1))};
    if (s.new_state.erase(removed) > 0) s.delta.ApplyDelete(removed);
  }
  std::uniform_int_distribution<int64_t> v(0, size + 8);
  for (int i = 0; i < kProbes; ++i) s.probes.push_back(Tuple{Value(v(rng))});
  return s;
}

void BM_OldState_Materialize(benchmark::State& state) {
  Setup s = MakeSetup(state.range(0));
  for (auto _ : state) {
    TupleSet old_state = RollbackToOldState(s.new_state, s.delta);
    int hits = 0;
    for (const Tuple& p : s.probes) hits += old_state.contains(p);
    benchmark::DoNotOptimize(hits);
  }
  state.counters["probes"] = kProbes;
}

void BM_OldState_LazyView(benchmark::State& state) {
  Setup s = MakeSetup(state.range(0));
  for (auto _ : state) {
    relalg::OldStateView view(s.new_state, s.delta);
    int hits = 0;
    for (const Tuple& p : s.probes) hits += view.contains(p);
    benchmark::DoNotOptimize(hits);
  }
  state.counters["probes"] = kProbes;
}

void BM_OldState_Snapshot(benchmark::State& state) {
  Setup s = MakeSetup(state.range(0));
  // The snapshot is maintained outside the timed region (its cost is
  // space: a permanent second copy of the relation).
  TupleSet snapshot = RollbackToOldState(s.new_state, s.delta);
  for (auto _ : state) {
    int hits = 0;
    for (const Tuple& p : s.probes) hits += snapshot.contains(p);
    benchmark::DoNotOptimize(hits);
  }
  state.counters["probes"] = kProbes;
  state.counters["extra_resident_tuples"] =
      static_cast<double>(snapshot.size());
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_OldState_Materialize)->Range(1024, 262144);
BENCHMARK(deltamon::BM_OldState_LazyView)->Range(1024, 262144);
BENCHMARK(deltamon::BM_OldState_Snapshot)->Range(1024, 262144);

DELTAMON_BENCH_MAIN("ablation_old_state");
