/// Micro-benchmarks for the batch evaluation kernels: the same differenced
/// clause evaluated tuple-at-a-time (kernels=0) and set-at-a-time through
/// the columnar Δ-table + build–probe hash-join path (kernels=1), so the
/// A/B per row isolates the kernel speedup from everything above it.
/// Sweeps Δ-cardinality × extent cardinality (which flips the build/probe
/// cost choice), tuple width, and the semi-join pre-filter shape where
/// most Δ rows have no join partner.

#include <benchmark/benchmark.h>

#include <unordered_map>
#include <vector>

#include "bench_util/report.h"

#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon {
namespace {

using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::EvalState;
using objectlog::Evaluator;
using objectlog::Literal;
using objectlog::RelationRole;
using objectlog::StateContext;
using objectlog::Term;

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }

/// One Δ-join workload: Δ+q(X,K) ⋈ r(K,Z...) with `extent_rows` unique
/// keys in r and `delta_rows` Δ tuples hitting them round-robin. Arity
/// widens r and the head payload beyond the 2-column minimum.
struct JoinWorkload {
  Engine engine;
  std::unordered_map<RelationId, DeltaSet> deltas;
  Clause clause;

  JoinWorkload(int64_t delta_rows, int64_t extent_rows, int64_t arity,
               int64_t key_stride) {
    Catalog& cat = engine.db.catalog();
    RelationId q = *cat.CreateStoredFunction(
        "q", FunctionSignature{{IntCol()}, {IntCol()}});
    FunctionSignature rsig;
    rsig.argument_types.push_back(IntCol());
    for (int64_t c = 1; c < arity; ++c) rsig.result_types.push_back(IntCol());
    RelationId r = *cat.CreateStoredFunction("r", rsig);
    FunctionSignature psig;
    psig.argument_types.push_back(IntCol());
    for (int64_t c = 1; c < arity; ++c) psig.result_types.push_back(IntCol());
    RelationId p = *cat.CreateDerivedFunction("p", psig);

    for (int64_t k = 0; k < extent_rows; ++k) {
      Tuple t{Value(k * key_stride)};
      for (int64_t c = 1; c < arity; ++c) t.Append(Value(k * 31 + c));
      if (!engine.db.Insert(r, t).ok()) std::abort();
    }

    // p(X, Z1..Zn-1) <- Δ+q(X, K), r(K, Z1..Zn-1).
    clause.head_relation = p;
    clause.num_vars = static_cast<int>(arity) + 1;
    clause.head_args = {Term::Var(0)};
    std::vector<Term> rargs = {Term::Var(1)};
    for (int64_t c = 1; c < arity; ++c) {
      rargs.push_back(Term::Var(static_cast<int>(c) + 1));
      clause.head_args.push_back(Term::Var(static_cast<int>(c) + 1));
    }
    clause.body = {Literal::Relation(q, {Term::Var(0), Term::Var(1)}),
                   Literal::Relation(r, std::move(rargs))};
    clause.body[0].role = RelationRole::kDeltaPlus;
    clause.profile_label = "micro_join";

    TupleSet plus;
    for (int64_t i = 0; i < delta_rows; ++i) {
      plus.insert(Tuple{Value(i), Value((i % extent_rows) * key_stride)});
    }
    deltas.emplace(q, DeltaSet{std::move(plus), {}});
  }

  size_t Evaluate(bool kernels) {
    StateContext ctx;
    ctx.deltas = &deltas;
    Evaluator ev(engine.db, engine.registry, ctx);
    ev.EnableKernels(kernels);
    TupleSet out;
    if (!ev.EvaluateClause(clause, &out).ok()) std::abort();
    return out.size();
  }
};

/// Δ ⋈ extent with the cost model free to pick build or probe: small
/// extents against large Δ-sets take the build side (scan once, hash,
/// probe per Δ row); large extents against small Δ-sets take the probe
/// side (indexed point probes per distinct key).
void BM_DeltaJoin(benchmark::State& state) {
  JoinWorkload w(state.range(0), state.range(1), /*arity=*/2,
                 /*key_stride=*/1);
  const bool kernels = state.range(2) != 0;
  size_t rows = 0;
  for (auto _ : state) {
    rows = w.Evaluate(kernels);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows_out"] = static_cast<double>(rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

/// 8-ary tuples: the columnar layout pays off most when wide rows would
/// otherwise be re-materialized per binding.
void BM_DeltaJoinWide(benchmark::State& state) {
  JoinWorkload w(state.range(0), /*extent_rows=*/4096, /*arity=*/8,
                 /*key_stride=*/1);
  const bool kernels = state.range(1) != 0;
  size_t rows = 0;
  for (auto _ : state) {
    rows = w.Evaluate(kernels);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows_out"] = static_cast<double>(rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

/// The semi-join shape — p(X,Z) <- Δ+q(X,Y), Y < 95, r(X,Z) — where a
/// mostly-passing comparison sits between the Δ and the join and only 1
/// in 16 Δ rows has a join partner: the join is the selective step, so
/// the pre-filter pays off by existence-probing r per distinct X and
/// discarding partnerless Δ rows before any downstream work.
void BM_SemiJoinFilter(benchmark::State& state) {
  const int64_t delta_rows = state.range(0);
  // Extent keys are multiples of 16; Δ X-values are dense → 1/16 match.
  JoinWorkload w(delta_rows, /*extent_rows=*/delta_rows / 8 + 1,
                 /*arity=*/2, /*key_stride=*/16);
  // Rebuild Δ as (X dense, Y = X mod 100) and re-join r on X, so Y feeds
  // only the interposed comparison.
  RelationId q = w.clause.body[0].relation;
  TupleSet plus;
  for (int64_t i = 0; i < delta_rows; ++i) {
    plus.insert(Tuple{Value(i), Value(i % 100)});
  }
  w.deltas.at(q) = DeltaSet{std::move(plus), {}};
  w.clause.body[1].args[0] = Term::Var(0);
  w.clause.body.insert(
      w.clause.body.begin() + 1,
      Literal::Compare(CompareOp::kLt, Term::Var(1),
                       Term::Const(Value(95))));
  const bool kernels = state.range(1) != 0;
  size_t rows = 0;
  for (auto _ : state) {
    rows = w.Evaluate(kernels);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows_out"] = static_cast<double>(rows);
  state.SetItemsProcessed(state.iterations() * delta_rows);
}

void JoinArgs(benchmark::internal::Benchmark* b) {
  b->ArgNames({"delta", "extent", "kernels"});
  for (int64_t delta : {int64_t{1000}, int64_t{100000}}) {
    for (int64_t extent : {int64_t{1000}, int64_t{100000}}) {
      for (int64_t kernels : {int64_t{0}, int64_t{1}}) {
        b->Args({delta, extent, kernels});
      }
    }
  }
}

void DeltaOnlyArgs(benchmark::internal::Benchmark* b) {
  b->ArgNames({"delta", "kernels"});
  for (int64_t delta : {int64_t{1000}, int64_t{100000}}) {
    for (int64_t kernels : {int64_t{0}, int64_t{1}}) {
      b->Args({delta, kernels});
    }
  }
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_DeltaJoin)->Apply(deltamon::JoinArgs);
BENCHMARK(deltamon::BM_DeltaJoinWide)->Apply(deltamon::DeltaOnlyArgs);
BENCHMARK(deltamon::BM_SemiJoinFilter)->Apply(deltamon::DeltaOnlyArgs);

DELTAMON_BENCH_MAIN("micro_join_kernels");
