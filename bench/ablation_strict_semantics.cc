/// Ablation for §7.2: the cost of strict rule semantics. Strict monitoring
/// adds (a) negative differentials up to the root and (b) the old-state
/// filter on Δ+ of the condition, so each candidate insertion costs one
/// point query against the rolled-back state. Nervous insertions-only
/// monitoring skips both.
///
/// The workload drives items across the threshold so the filters actually
/// run; updates per transaction are swept to show the per-candidate cost.

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "bench_util/inventory.h"

namespace deltamon {
namespace {

using rules::MonitorMode;
using rules::Semantics;
using workload::MonitorSetup;
using workload::SetFn;
using workload::SetupMonitorItems;

constexpr size_t kItems = 2000;

/// One transaction moving `changes` items below the threshold (condition
/// turns true) and the previously moved batch back above it.
void RunCrossingTransaction(MonitorSetup& setup, int64_t changes,
                            int64_t& round) {
  const auto& items = setup.schema.items;
  for (int64_t c = 0; c < changes; ++c, ++round) {
    size_t down = static_cast<size_t>(round) % items.size();
    size_t up = static_cast<size_t>(round + changes) % items.size();
    if (!SetFn(*setup.engine, setup.schema.quantity, items[down],
               100 + (round % 7))
             .ok() ||
        !SetFn(*setup.engine, setup.schema.quantity, items[up],
               1000 + (round % 7))
             .ok()) {
      std::abort();
    }
  }
  if (!setup.engine->db.Commit().ok()) std::abort();
}

template <Semantics kSemantics, bool kDeletions>
void BM_Semantics(benchmark::State& state) {
  auto setup = SetupMonitorItems(kItems, MonitorMode::kIncremental,
                                 kSemantics, kDeletions);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  int64_t round = 0;
  for (auto _ : state) {
    RunCrossingTransaction(**setup, state.range(0), round);
  }
  state.counters["updates_per_tx"] = static_cast<double>(2 * state.range(0));
  state.counters["filtered_plus"] = static_cast<double>(
      (*setup)->engine->rules.last_check().propagation.filtered_plus);
  state.counters["filtered_minus"] = static_cast<double>(
      (*setup)->engine->rules.last_check().propagation.filtered_minus);
  state.counters["fired"] = static_cast<double>((*setup)->fired);
}

void BM_Nervous_InsertionsOnly(benchmark::State& state) {
  BM_Semantics<Semantics::kNervous, false>(state);
}
void BM_Nervous_WithDeletions(benchmark::State& state) {
  BM_Semantics<Semantics::kNervous, true>(state);
}
void BM_Strict_Full(benchmark::State& state) {
  BM_Semantics<Semantics::kStrict, true>(state);
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_Nervous_InsertionsOnly)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(deltamon::BM_Nervous_WithDeletions)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(deltamon::BM_Strict_Full)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);

DELTAMON_BENCH_MAIN("ablation_strict_semantics");
