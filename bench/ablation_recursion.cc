/// Benchmark for the linear-recursion extension (paper §5 footnote):
/// monitoring a reachability rule over the transitive closure of a growing
/// edge relation, incremental (self-differential fixpoint) vs. naive
/// (full closure recomputation + diff).
///
/// Workload: a ring of n nodes plus chords; each transaction re-routes one
/// chord (delete + insert). Incremental work scales with the affected
/// paths; naive recomputation rebuilds the whole closure (O(n·e)).

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "objectlog/eval.h"
#include "rules/engine.h"

namespace deltamon {
namespace {

using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::Literal;
using objectlog::Term;

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }

struct Setup {
  std::unique_ptr<Engine> engine;
  RelationId edge = kInvalidRelationId;
  RelationId tc = kInvalidRelationId;
  size_t fired = 0;
};

Result<std::unique_ptr<Setup>> MakeSetup(int64_t nodes,
                                         rules::MonitorMode mode,
                                         bool insertions_only) {
  auto setup = std::make_unique<Setup>();
  setup->engine = std::make_unique<Engine>();
  Engine& engine = *setup->engine;
  engine.rules.SetMode(mode);
  Catalog& cat = engine.db.catalog();
  DELTAMON_ASSIGN_OR_RETURN(
      setup->edge, cat.CreateStoredFunction(
                       "edge", FunctionSignature{{IntCol()}, {IntCol()}}));
  DELTAMON_ASSIGN_OR_RETURN(
      setup->tc, cat.CreateDerivedFunction(
                     "tc", FunctionSignature{{}, {IntCol(), IntCol()}}));
  {
    Clause base;
    base.head_relation = setup->tc;
    base.num_vars = 2;
    base.head_args = {Term::Var(0), Term::Var(1)};
    base.body = {Literal::Relation(setup->edge,
                                   {Term::Var(0), Term::Var(1)})};
    DELTAMON_RETURN_IF_ERROR(
        engine.registry.Define(setup->tc, std::move(base), cat));
  }
  {
    Clause step;
    step.head_relation = setup->tc;
    step.num_vars = 3;
    step.head_args = {Term::Var(0), Term::Var(2)};
    step.body = {Literal::Relation(setup->edge,
                                   {Term::Var(0), Term::Var(1)}),
                 Literal::Relation(setup->tc,
                                   {Term::Var(1), Term::Var(2)})};
    DELTAMON_RETURN_IF_ERROR(
        engine.registry.Define(setup->tc, std::move(step), cat));
  }

  // Condition: nodes reachable from node 0 within the chord layer — keep
  // the result set small by filtering to high node ids.
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId cond,
      cat.CreateDerivedFunction("cnd_far_reach",
                                FunctionSignature{{}, {IntCol()}}));
  {
    Clause c;
    c.head_relation = cond;
    c.num_vars = 1;
    c.head_args = {Term::Var(0)};
    c.body = {Literal::Relation(setup->tc,
                                {Term::Const(Value(0)), Term::Var(0)}),
              Literal::Compare(CompareOp::kGt, Term::Var(0),
                               Term::Const(Value(nodes - 3)))};
    DELTAMON_RETURN_IF_ERROR(engine.registry.Define(cond, std::move(c), cat));
  }
  Setup* raw = setup.get();
  rules::RuleOptions options;
  if (insertions_only) {
    // The paper's normal case: the rule only reacts to insertions, so no
    // negative differentials, no rederivability fixpoints.
    options.semantics = rules::Semantics::kNervous;
    options.propagate_deletions = false;
  }
  DELTAMON_ASSIGN_OR_RETURN(
      rules::RuleId rule,
      engine.rules.CreateRule(
          "far_reach", cond,
          [raw](Database&, const Tuple&, const std::vector<Tuple>& xs) {
            raw->fired += xs.size();
            return Status::OK();
          },
          options));
  DELTAMON_RETURN_IF_ERROR(engine.rules.Activate(rule));

  // Topology: a forward chain 0->1->...->n-1 (closure size O(n^2) would
  // be huge, so chain segments only: connect i -> i+1 for i % 8 != 7,
  // giving many short disjoint paths) plus chords to re-route.
  for (int64_t i = 0; i + 1 < nodes; ++i) {
    if (i % 8 == 7) continue;  // segment boundary
    DELTAMON_RETURN_IF_ERROR(
        engine.db.Insert(setup->edge, Tuple{Value(i), Value(i + 1)}));
  }
  DELTAMON_RETURN_IF_ERROR(engine.db.Commit());
  return setup;
}

/// One transaction: re-route one chord edge between segment heads.
void RunTransaction(Setup& setup, int64_t nodes, int64_t& round) {
  int64_t segments = nodes / 8;
  if (segments < 2) segments = 2;
  int64_t from = (round % segments) * 8;
  int64_t to = ((round + 1) % segments) * 8 + 1;
  Engine& engine = *setup.engine;
  if (!engine.db.Insert(setup.edge, Tuple{Value(from), Value(to)}).ok()) {
    std::abort();
  }
  if (!engine.db.Commit().ok()) std::abort();
  if (!engine.db.Delete(setup.edge, Tuple{Value(from), Value(to)}).ok()) {
    std::abort();
  }
  if (!engine.db.Commit().ok()) std::abort();
  ++round;
}

template <rules::MonitorMode kMode, bool kInsertionsOnly = false>
void BM_Recursion(benchmark::State& state) {
  auto setup = MakeSetup(state.range(0), kMode, kInsertionsOnly);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  int64_t round = 0;
  RunTransaction(**setup, state.range(0), round);  // warm-up
  for (auto _ : state) {
    RunTransaction(**setup, state.range(0), round);
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
}

void BM_Reachability_Incremental(benchmark::State& state) {
  BM_Recursion<rules::MonitorMode::kIncremental>(state);
}
void BM_Reachability_Naive(benchmark::State& state) {
  BM_Recursion<rules::MonitorMode::kNaive>(state);
}
void BM_Reachability_InsertOnly_Incremental(benchmark::State& state) {
  BM_Recursion<rules::MonitorMode::kIncremental, true>(state);
}
void BM_Reachability_InsertOnly_Naive(benchmark::State& state) {
  BM_Recursion<rules::MonitorMode::kNaive, true>(state);
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_Reachability_Incremental)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(deltamon::BM_Reachability_Naive)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(deltamon::BM_Reachability_InsertOnly_Incremental)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(deltamon::BM_Reachability_InsertOnly_Naive)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMicrosecond);

DELTAMON_BENCH_MAIN("ablation_recursion");
