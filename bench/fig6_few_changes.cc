/// Reproduces fig. 6 of the paper: "100 transactions where each
/// transaction only changed the quantity of one item", over databases of
/// 1 … 10 000 items, comparing naive condition monitoring against
/// incremental monitoring by partial differencing.
///
/// Expected shape (paper §6.1): the incremental cost is (nearly)
/// independent of the database size — only the single affected partial
/// differential Δcnd_monitor_items/Δ+quantity executes, probing a handful
/// of indexed tuples — while the naive cost grows linearly, since it
/// re-evaluates the condition over every item.

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "bench_util/inventory.h"

namespace deltamon {
namespace {

using rules::MonitorMode;
using workload::InventorySchema;
using workload::MonitorSetup;
using workload::SetFn;
using workload::SetupMonitorFleet;
using workload::SetupMonitorItems;

constexpr int kTransactions = 100;

/// One fig. 6 run: 100 single-update transactions against `engine`.
/// Updates keep the quantity above the threshold so we time pure
/// monitoring (no rule firings), exactly like a quiet inventory. `round`
/// persists across benchmark iterations so consecutive writes to the same
/// item always change its value (a rewrite of the same value is a physical
/// no-op that would monitor nothing).
void RunTransactions(Engine& engine, const InventorySchema& schema,
                     int64_t& round) {
  const auto& items = schema.items;
  for (int tx = 0; tx < kTransactions; ++tx, ++round) {
    Oid item = items[static_cast<size_t>(round) % items.size()];
    benchmark::DoNotOptimize(
        SetFn(engine, schema.quantity, item, 900 + (round % 89)));
    if (!engine.db.Commit().ok()) std::abort();
  }
}

void BM_Fig6_Incremental(benchmark::State& state) {
  auto setup =
      SetupMonitorItems(static_cast<size_t>(state.range(0)),
                        MonitorMode::kIncremental);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  if (bench::ThreadsArg() > 0) {
    (*setup)->engine->rules.SetNumThreads(
        static_cast<size_t>(bench::ThreadsArg()));
  }
  int64_t round = 0;
  for (auto _ : state) {
    RunTransactions(*(*setup)->engine, (*setup)->schema, round);
  }
  state.counters["items"] = static_cast<double>(state.range(0));
  state.counters["txs"] = kTransactions;
  state.counters["diffs_run"] = static_cast<double>(
      (*setup)->engine->rules.last_check().propagation.differentials_executed);
  state.counters["diffs_skipped"] = static_cast<double>(
      (*setup)->engine->rules.last_check().propagation.differentials_skipped);
}

void BM_Fig6_Naive(benchmark::State& state) {
  auto setup = SetupMonitorItems(static_cast<size_t>(state.range(0)),
                                 MonitorMode::kNaive);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  int64_t round = 0;
  for (auto _ : state) {
    RunTransactions(*(*setup)->engine, (*setup)->schema, round);
  }
  state.counters["items"] = static_cast<double>(state.range(0));
  state.counters["txs"] = kTransactions;
  state.counters["recomputes"] = static_cast<double>(
      (*setup)->engine->rules.last_check().naive_recomputations);
}

/// Small-transaction latency under parallel propagation: a fleet of 8
/// independent monitor rules, 100 single-update transactions each wave.
/// The waves are tiny, so this measures the cost of the parallel knob on
/// fine-grained work (fork/join overhead), not speedup; the threads=1 row
/// is the serial reference. `--threads=N` pins every row to N.
void BM_Fig6_IncrementalFleet(benchmark::State& state) {
  const auto items = static_cast<size_t>(state.range(0));
  const auto num_rules = static_cast<size_t>(state.range(1));
  size_t threads = static_cast<size_t>(state.range(2));
  if (bench::ThreadsArg() > 0) {
    threads = static_cast<size_t>(bench::ThreadsArg());
  }
  auto setup = SetupMonitorFleet(items, num_rules, MonitorMode::kIncremental);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  (*setup)->engine->rules.SetNumThreads(threads);
  int64_t round = 0;
  for (auto _ : state) {
    RunTransactions(*(*setup)->engine, (*setup)->schema, round);
  }
  state.counters["items"] = static_cast<double>(items);
  state.counters["rules"] = static_cast<double>(num_rules);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["txs"] = kTransactions;
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_Fig6_Incremental)
    ->RangeMultiplier(10)
    ->Range(1, 10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(deltamon::BM_Fig6_Naive)
    ->RangeMultiplier(10)
    ->Range(1, 10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(deltamon::BM_Fig6_IncrementalFleet)
    ->ArgNames({"items", "rules", "threads"})
    ->Args({1000, 8, 1})
    ->Args({1000, 8, 2})
    ->Args({1000, 8, 4})
    ->Args({1000, 8, 8})
    ->Unit(benchmark::kMillisecond);

DELTAMON_BENCH_MAIN("fig6_few_changes");
