/// Reproduces fig. 6 of the paper: "100 transactions where each
/// transaction only changed the quantity of one item", over databases of
/// 1 … 10 000 items, comparing naive condition monitoring against
/// incremental monitoring by partial differencing.
///
/// Expected shape (paper §6.1): the incremental cost is (nearly)
/// independent of the database size — only the single affected partial
/// differential Δcnd_monitor_items/Δ+quantity executes, probing a handful
/// of indexed tuples — while the naive cost grows linearly, since it
/// re-evaluates the condition over every item.

#include <benchmark/benchmark.h>

#include "bench_util/report.h"

#include "bench_util/inventory.h"

namespace deltamon {
namespace {

using rules::MonitorMode;
using workload::MonitorSetup;
using workload::SetFn;
using workload::SetupMonitorItems;

constexpr int kTransactions = 100;

/// One fig. 6 run: 100 single-update transactions against `setup`. Updates
/// keep the quantity above the threshold so we time pure monitoring (no
/// rule firings), exactly like a quiet inventory. `round` persists across
/// benchmark iterations so consecutive writes to the same item always
/// change its value (a rewrite of the same value is a physical no-op that
/// would monitor nothing).
void RunTransactions(MonitorSetup& setup, int64_t& round) {
  const auto& items = setup.schema.items;
  for (int tx = 0; tx < kTransactions; ++tx, ++round) {
    Oid item = items[static_cast<size_t>(round) % items.size()];
    benchmark::DoNotOptimize(SetFn(*setup.engine, setup.schema.quantity,
                                   item, 900 + (round % 89)));
    if (!setup.engine->db.Commit().ok()) std::abort();
  }
}

void BM_Fig6_Incremental(benchmark::State& state) {
  auto setup =
      SetupMonitorItems(static_cast<size_t>(state.range(0)),
                        MonitorMode::kIncremental);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  int64_t round = 0;
  for (auto _ : state) {
    RunTransactions(**setup, round);
  }
  state.counters["items"] = static_cast<double>(state.range(0));
  state.counters["txs"] = kTransactions;
  state.counters["diffs_run"] = static_cast<double>(
      (*setup)->engine->rules.last_check().propagation.differentials_executed);
  state.counters["diffs_skipped"] = static_cast<double>(
      (*setup)->engine->rules.last_check().propagation.differentials_skipped);
}

void BM_Fig6_Naive(benchmark::State& state) {
  auto setup = SetupMonitorItems(static_cast<size_t>(state.range(0)),
                                 MonitorMode::kNaive);
  if (!setup.ok()) {
    state.SkipWithError(setup.status().ToString().c_str());
    return;
  }
  int64_t round = 0;
  for (auto _ : state) {
    RunTransactions(**setup, round);
  }
  state.counters["items"] = static_cast<double>(state.range(0));
  state.counters["txs"] = kTransactions;
  state.counters["recomputes"] = static_cast<double>(
      (*setup)->engine->rules.last_check().naive_recomputations);
}

}  // namespace
}  // namespace deltamon

BENCHMARK(deltamon::BM_Fig6_Incremental)
    ->RangeMultiplier(10)
    ->Range(1, 10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(deltamon::BM_Fig6_Naive)
    ->RangeMultiplier(10)
    ->Range(1, 10000)
    ->Unit(benchmark::kMillisecond);

DELTAMON_BENCH_MAIN("fig6_few_changes");
