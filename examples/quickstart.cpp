// Quickstart: the paper's running example (§3.1), verbatim AMOSQL.
//
// Builds the inventory schema, defines and activates the monitor_items
// rule, and shows the rule firing when a quantity drops below its
// threshold — monitored incrementally by partial differencing.
//
//   $ ./quickstart

#include <cstdio>

#include "amosql/session.h"

using deltamon::Database;
using deltamon::Engine;
using deltamon::Status;
using deltamon::Value;
using deltamon::amosql::Session;

int main() {
  Engine engine;
  Session session(engine);

  // The paper's `order` procedure: a foreign function (here: C++) invoked
  // by the rule action with the item and the amount to re-order.
  session.RegisterProcedure(
      "order", [](Database&, const std::vector<Value>& args) {
        std::printf("  >> order(%s, %s): restocking\n",
                    args[0].ToString().c_str(), args[1].ToString().c_str());
        return Status::OK();
      });

  auto result = session.Execute(R"sql(
    create type item;
    create type supplier;
    create function quantity(item) -> integer;
    create function max_stock(item) -> integer;
    create function min_stock(item) -> integer;
    create function consume_freq(item) -> integer;
    create function supplies(supplier) -> item;
    create function delivery_time(item, supplier) -> integer;

    -- threshold(i) = consume_freq(i) * delivery_time(i, s) + min_stock(i)
    create function threshold(item i) -> integer as
      select consume_freq(i) * delivery_time(i, s) + min_stock(i)
      for each supplier s where supplies(s) = i;

    -- When an item's quantity drops below its threshold, order a refill.
    create rule monitor_items() as
      when for each item i where quantity(i) < threshold(i)
      do order(i, max_stock(i) - quantity(i));

    create item instances :item1, :item2;
    create supplier instances :sup1, :sup2;
    set max_stock(:item1) = 5000;   set max_stock(:item2) = 7500;
    set min_stock(:item1) = 100;    set min_stock(:item2) = 200;
    set consume_freq(:item1) = 20;  set consume_freq(:item2) = 30;
    set supplies(:sup1) = :item1;   set supplies(:sup2) = :item2;
    set delivery_time(:item1, :sup1) = 2;
    set delivery_time(:item2, :sup2) = 3;
    set quantity(:item1) = 5000;    set quantity(:item2) = 7500;

    activate monitor_items();
    commit;
  )sql");
  if (!result.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  auto show = [&session](const char* label) {
    auto rows = session.Execute(
        "select i, quantity(i), threshold(i) for each item i;");
    std::printf("%s\n%s", label, rows->ToString().c_str());
  };
  show("inventory (item, quantity, threshold):");

  std::printf("\nconsuming stock: set quantity(:item1) = 120; commit;\n");
  result = session.Execute("set quantity(:item1) = 120; commit;");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // Explainability (paper §1, §8): which influent triggered the rule?
  auto rule = engine.rules.FindRule("monitor_items");
  for (const std::string& why : engine.rules.ExplainLastTrigger(*rule)) {
    std::printf("  (triggered by %s)\n", why.c_str());
  }

  std::printf("\nno-net-effect transaction (drop and restore): ");
  result = session.Execute(
      "set quantity(:item2) = 100; set quantity(:item2) = 7500; commit;");
  std::printf("%s — no order placed\n",
              result.ok() ? "committed" : result.status().ToString().c_str());

  show("\nfinal inventory:");
  return 0;
}
