// Inventory monitoring through the C++ API (no AMOSQL): builds the paper's
// schema programmatically, activates a self-refilling monitor_items rule,
// drives a stream of consumption transactions, and prints monitoring
// statistics for the incremental, naive, and hybrid monitors side by side.
//
//   $ ./inventory_monitor [num_items] [num_transactions]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "bench_util/inventory.h"

using namespace deltamon;
using workload::BuildInventory;
using workload::GetFn;
using workload::InventoryConfig;
using workload::InventorySchema;
using workload::SetFn;

namespace {

struct RunResult {
  size_t orders = 0;
  size_t differentials_executed = 0;
  size_t differentials_skipped = 0;
  size_t naive_recomputations = 0;
  double millis = 0;
};

Result<RunResult> Run(rules::MonitorMode mode, size_t num_items,
                      int num_transactions) {
  Engine engine;
  engine.rules.SetMode(mode);
  InventoryConfig config;
  config.num_items = num_items;
  DELTAMON_ASSIGN_OR_RETURN(InventorySchema schema,
                            BuildInventory(engine, config));

  RunResult result;
  // monitor_items with a refilling action: order back up to max_stock.
  rules::RuleOptions options;
  options.semantics = rules::Semantics::kStrict;
  DELTAMON_ASSIGN_OR_RETURN(
      rules::RuleId rule,
      engine.rules.CreateRule(
          "monitor_items", schema.cnd_monitor_items,
          [&result, &schema](Database& db, const Tuple&,
                             const std::vector<Tuple>& items) -> Status {
            for (const Tuple& item : items) {
              ++result.orders;
              // Refill to max_stock (the paper's order()).
              const BaseRelation* max_rel =
                  db.catalog().GetBaseRelation(schema.max_stock);
              ScanPattern p(max_rel->arity());
              p[0] = item[0];
              int64_t max_stock = 0;
              max_rel->Scan(p, [&max_stock](const Tuple& t) {
                max_stock = t[1].AsInt();
                return false;
              });
              DELTAMON_RETURN_IF_ERROR(db.Set(schema.quantity, Tuple{item[0]},
                                              Tuple{Value(max_stock)}));
            }
            return Status::OK();
          },
          options));
  DELTAMON_RETURN_IF_ERROR(engine.rules.Activate(rule));

  // Consumption stream: each transaction decrements a random item's
  // quantity by a random bite; occasionally demand spikes (consume_freq).
  std::mt19937 rng(1234);
  std::uniform_int_distribution<size_t> pick(0, num_items - 1);
  std::uniform_int_distribution<int64_t> bite(50, 400);
  auto start = std::chrono::steady_clock::now();
  for (int tx = 0; tx < num_transactions; ++tx) {
    size_t i = pick(rng);
    DELTAMON_ASSIGN_OR_RETURN(int64_t q,
                              GetFn(engine, schema.quantity, schema.items[i]));
    DELTAMON_RETURN_IF_ERROR(SetFn(engine, schema.quantity, schema.items[i],
                                   std::max<int64_t>(0, q - bite(rng))));
    if (tx % 25 == 0) {
      DELTAMON_RETURN_IF_ERROR(SetFn(engine, schema.consume_freq,
                                     schema.items[pick(rng)],
                                     20 + (tx % 15)));
    }
    DELTAMON_RETURN_IF_ERROR(engine.db.Commit());
    result.differentials_executed +=
        engine.rules.last_check().propagation.differentials_executed;
    result.differentials_skipped +=
        engine.rules.last_check().propagation.differentials_skipped;
    result.naive_recomputations +=
        engine.rules.last_check().naive_recomputations;
  }
  auto end = std::chrono::steady_clock::now();
  result.millis =
      std::chrono::duration<double, std::milli>(end - start).count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_items = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  int num_transactions = argc > 2 ? std::atoi(argv[2]) : 400;

  std::printf("inventory monitor: %zu items, %d transactions\n\n", num_items,
              num_transactions);
  std::printf("%-12s %8s %10s %12s %12s %10s\n", "monitor", "orders",
              "time(ms)", "diffs run", "diffs skip", "recomputes");
  struct {
    const char* name;
    rules::MonitorMode mode;
  } modes[] = {
      {"incremental", rules::MonitorMode::kIncremental},
      {"naive", rules::MonitorMode::kNaive},
      {"hybrid", rules::MonitorMode::kHybrid},
  };
  for (const auto& m : modes) {
    auto r = Run(m.mode, num_items, num_transactions);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", m.name,
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %8zu %10.2f %12zu %12zu %10zu\n", m.name, r->orders,
                r->millis, r->differentials_executed,
                r->differentials_skipped, r->naive_recomputations);
  }
  std::printf(
      "\nAll monitors must place the same orders (strict semantics); the\n"
      "incremental monitor executes only the affected partial\n"
      "differentials per transaction, the naive monitor recomputes the\n"
      "whole condition.\n");
  return 0;
}
