// Network monitoring: rules whose conditions use negation and disjunction,
// exercising the negative partial differentials (§4.4) — deleting a link
// makes a "node isolated" condition TRUE, so the rule is driven by Δ− of
// the link relation through the Δ(~Q) = <Δ−Q, Δ+Q> sign swap.
//
//   $ ./network_monitor

#include <cstdio>

#include "amosql/session.h"

using deltamon::Database;
using deltamon::Engine;
using deltamon::Status;
using deltamon::Value;
using deltamon::amosql::Session;

int main() {
  Engine engine;
  Session session(engine);

  session.RegisterProcedure(
      "page_oncall", [](Database&, const std::vector<Value>& args) {
        std::printf("  >> PAGE: node %s is isolated (no links left)\n",
                    args[0].ToString().c_str());
        return Status::OK();
      });
  session.RegisterProcedure(
      "alarm", [](Database&, const std::vector<Value>& args) {
        std::printf("  >> ALARM: node %s unhealthy (cpu=%s temp=%s)\n",
                    args[0].ToString().c_str(), args[1].ToString().c_str(),
                    args[2].ToString().c_str());
        return Status::OK();
      });

  auto exec = [&session](const char* what, const std::string& sql) {
    std::printf("%s\n", what);
    auto r = session.Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
  };

  exec("setting up the network schema and rules...", R"sql(
    create type node;
    create function monitored(node) -> boolean;
    create function link(node) -> node;        -- multi-valued: peers
    create function cpu(node) -> integer;
    create function temp(node) -> integer;

    -- Negation: a monitored node with NO remaining links is isolated.
    create rule isolated_node() as
      when for each node n where monitored(n) and not link(n)
      do page_oncall(n);

    -- Disjunction: unhealthy if CPU or temperature exceeds its limit.
    create rule unhealthy_node() as
      when for each node n where monitored(n) and
           (cpu(n) > 90 or temp(n) > 80)
      do alarm(n, cpu(n), temp(n));

    create node instances :a, :b, :c;
    set monitored(:a) = true;
    set monitored(:b) = true;
    set monitored(:c) = true;
    add link(:a) = :b;
    add link(:a) = :c;
    add link(:b) = :a;
    add link(:c) = :a;
    set cpu(:a) = 35; set temp(:a) = 60;
    set cpu(:b) = 40; set temp(:b) = 58;
    set cpu(:c) = 22; set temp(:c) = 55;

    activate isolated_node();
    activate unhealthy_node();
    commit;
  )sql");

  exec("\nlink b->a flaps but comes back (no net change, no page):",
       "remove link(:b) = :a; add link(:b) = :a; commit;");

  exec("\nnode b loses its last link (deletion-driven trigger):",
       "remove link(:b) = :a; commit;");

  exec("\nnode c overheats (disjunction, temp side):",
       "set temp(:c) = 95; commit;");

  exec("\nnode a spikes on cpu (disjunction, cpu side):",
       "set cpu(:a) = 97; commit;");

  // Strict semantics: c stays hot — no second alarm for the same episode.
  exec("\nnode c gets hotter while already alarmed (strict: no re-alarm):",
       "set temp(:c) = 99; commit;");

  // Restoring a link while inserting it for an unmonitored node is quiet.
  exec("\nnode b regains a link; node c cools down:",
       "add link(:b) = :c; set temp(:c) = 50; commit;");

  exec("\nand isolating b again re-pages (condition went false in between):",
       "remove link(:b) = :c; commit;");

  std::printf("\ncurrent unhealthy set: ");
  auto rows = session.Execute(
      "select n for each node n where cpu(n) > 90 or temp(n) > 80;");
  std::printf("%zu node(s)\n", rows->rows.size());
  return 0;
}
