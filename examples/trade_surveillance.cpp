// Trade surveillance: multi-join rule conditions over a normalized schema,
// parameterized rule activation per desk, rule priorities (conflict
// resolution), and explainability — a realistic deferred-monitoring
// deployment where compliance checks run once per transaction commit.
//
//   $ ./trade_surveillance

#include <cstdio>

#include "amosql/session.h"

using deltamon::Database;
using deltamon::Engine;
using deltamon::Status;
using deltamon::Value;
using deltamon::amosql::Session;

int main() {
  Engine engine;
  Session session(engine);

  int freezes = 0;
  session.RegisterProcedure(
      "freeze_trader", [&freezes](Database&, const std::vector<Value>& args) {
        ++freezes;
        std::printf("  >> FREEZE trader %s: position %s over limit %s\n",
                    args[0].ToString().c_str(), args[1].ToString().c_str(),
                    args[2].ToString().c_str());
        return Status::OK();
      });
  session.RegisterProcedure(
      "notify_compliance", [](Database&, const std::vector<Value>& args) {
        std::printf("  >> notify compliance: desk event for trader %s\n",
                    args[0].ToString().c_str());
        return Status::OK();
      });

  auto exec = [&session](const char* what, const std::string& sql) {
    std::printf("%s\n", what);
    auto r = session.Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
  };

  exec("creating the trading schema...", R"sql(
    create type trader;
    create type desk;
    create function works_on(trader) -> desk;
    create function position(trader) -> integer;     -- net exposure
    create function seniority(trader) -> integer;    -- years
    create function desk_limit(desk) -> integer;

    -- A trader's personal limit scales with seniority but is capped by
    -- the desk limit: limit = min-ish modelled as desk_limit/10*seniority.
    create function trader_limit(trader t) -> integer as
      select desk_limit(d) / 10 * seniority(t)
      for each desk d where works_on(t) = d;

    -- Over-limit positions freeze the trader (per-desk activation).
    create rule over_limit(desk d) as
      when for each trader t
      where works_on(t) = d and position(t) > trader_limit(t)
      do freeze_trader(t, position(t), trader_limit(t));

    -- Lower-priority notification rule over the same condition shape.
    create rule desk_watch(desk d) as
      when for each trader t
      where works_on(t) = d and position(t) > trader_limit(t)
      do notify_compliance(t);

    -- Aggregate monitoring (§8 extension): individual bookings per trader,
    -- with the desk's gross booked amount = SUM over all bookings.
    create function booking(trader) -> integer;
    create function gross_booked(trader t) -> integer as sum booking(t);

    create desk instances :rates, :fx;
    set desk_limit(:rates) = 1000;
    set desk_limit(:fx) = 500;

    create trader instances :alice, :bob, :carol;
    set works_on(:alice) = :rates;  set seniority(:alice) = 8;
    set works_on(:bob)   = :rates;  set seniority(:bob) = 2;
    set works_on(:carol) = :fx;     set seniority(:carol) = 5;
    set position(:alice) = 100;
    set position(:bob) = 100;
    set position(:carol) = 100;

    -- Watch the rates desk only.
    activate over_limit(:rates);
    activate desk_watch(:rates);
    commit;
  )sql");

  // alice's limit: 1000/10*8 = 800; bob's: 1000/10*2 = 200;
  // carol's: 500/10*5 = 250 (but the fx desk is not watched).
  std::printf("\nlimits: %s", session.Execute(
      "select t, trader_limit(t) for each trader t;")->ToString().c_str());

  exec("\nbob takes a 300 position (over his 200 limit):",
       "set position(:bob) = 300; commit;");

  exec("\ncarol takes a 400 position (fx desk is not watched; silent):",
       "set position(:carol) = 400; commit;");

  exec("\na desk-limit cut drops alice's limit below her position:",
       "set position(:alice) = 700; commit;  -- still under 800, quiet\n"
       "set desk_limit(:rates) = 800; commit;  -- limit now 640: freeze");

  // Which influent triggered? The desk_limit update, through the
  // trader_limit join — partial differencing traces it (paper §1).
  auto rule = engine.rules.FindRule("cnd_over_limit").ok()
                  ? engine.rules.FindRule("cnd_over_limit")
                  : engine.rules.FindRule("over_limit");
  if (rule.ok()) {
    for (const std::string& why : engine.rules.ExplainLastTrigger(*rule)) {
      std::printf("  (trigger cause: %s)\n", why.c_str());
    }
  }

  exec("\nbob unwinds (condition false) and re-breaches (fires again):",
       "set position(:bob) = 100; commit;"
       "set position(:bob) = 500; commit;");

  // Aggregate rule: alert when a trader's gross booked amount (SUM of all
  // bookings) exceeds 1000, monitored incrementally per affected group.
  exec("\nactivating the gross-booking rule and booking trades:",
       "create rule gross_watch() as"
       "  when for each trader t where gross_booked(t) > 1000"
       "  do notify_compliance(t);"
       "activate gross_watch(); commit;"
       "add booking(:alice) = 400; commit;   -- sum 400, quiet\n"
       "add booking(:alice) = 500; commit;   -- sum 900, quiet\n"
       "add booking(:alice) = 200; commit;   -- sum 1100: alert");

  std::printf("\ntotal freezes: %d\n", freezes);
  return 0;
}
