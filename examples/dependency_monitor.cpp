// Dependency-graph monitoring with a recursive condition (the linear
// recursion extension, paper §5 footnote): services depend on each other;
// a rule pages whenever a *critical* service becomes transitively
// dependent on a service marked unstable — including through newly added
// dependency edges, and it stands down when a re-route removes the path.
//
//   $ ./dependency_monitor

#include <cstdio>

#include "objectlog/eval.h"
#include "rules/engine.h"

using namespace deltamon;
using objectlog::Clause;
using objectlog::Literal;
using objectlog::Term;

namespace {

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }

constexpr const char* kNames[] = {"web", "api", "auth", "cache", "db",
                                  "queue"};

Status Run() {
  Engine engine;
  Catalog& cat = engine.db.catalog();

  // depends_on(service, service); unstable(service); critical(service).
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId depends,
      cat.CreateStoredFunction("depends_on",
                               FunctionSignature{{IntCol()}, {IntCol()}}));
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId unstable,
      cat.CreateStoredFunction("unstable", FunctionSignature{{IntCol()}, {}}));
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId critical,
      cat.CreateStoredFunction("critical", FunctionSignature{{IntCol()}, {}}));

  // reaches(x,y): transitive dependency (recursive view).
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId reaches,
      cat.CreateDerivedFunction("reaches",
                                FunctionSignature{{}, {IntCol(), IntCol()}}));
  {
    Clause base;
    base.head_relation = reaches;
    base.num_vars = 2;
    base.head_args = {Term::Var(0), Term::Var(1)};
    base.body = {Literal::Relation(depends, {Term::Var(0), Term::Var(1)})};
    DELTAMON_RETURN_IF_ERROR(engine.registry.Define(reaches, std::move(base),
                                                    cat));
    Clause step;
    step.head_relation = reaches;
    step.num_vars = 3;
    step.head_args = {Term::Var(0), Term::Var(2)};
    step.body = {Literal::Relation(depends, {Term::Var(0), Term::Var(1)}),
                 Literal::Relation(reaches, {Term::Var(1), Term::Var(2)})};
    DELTAMON_RETURN_IF_ERROR(engine.registry.Define(reaches, std::move(step),
                                                    cat));
  }

  // at_risk(c, u): critical c transitively depends on unstable u.
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId at_risk,
      cat.CreateDerivedFunction("cnd_at_risk",
                                FunctionSignature{{}, {IntCol(), IntCol()}}));
  {
    Clause c;
    c.head_relation = at_risk;
    c.num_vars = 2;
    c.head_args = {Term::Var(0), Term::Var(1)};
    c.body = {Literal::Relation(critical, {Term::Var(0)}),
              Literal::Relation(reaches, {Term::Var(0), Term::Var(1)}),
              Literal::Relation(unstable, {Term::Var(1)})};
    DELTAMON_RETURN_IF_ERROR(engine.registry.Define(at_risk, std::move(c),
                                                    cat));
  }

  DELTAMON_ASSIGN_OR_RETURN(
      rules::RuleId rule,
      engine.rules.CreateRule(
          "page_at_risk", at_risk,
          [](Database&, const Tuple&, const std::vector<Tuple>& pairs) {
            for (const Tuple& p : pairs) {
              std::printf("  >> PAGE: critical '%s' now depends on unstable "
                          "'%s'\n",
                          kNames[p[0].AsInt()], kNames[p[1].AsInt()]);
            }
            return Status::OK();
          }));
  DELTAMON_RETURN_IF_ERROR(engine.rules.Activate(rule));

  enum { kWeb, kApi, kAuth, kCache, kDb, kQueue };
  auto edge = [&](int a, int b) {
    return engine.db.Insert(depends, Tuple{Value(a), Value(b)});
  };
  auto drop_edge = [&](int a, int b) {
    return engine.db.Delete(depends, Tuple{Value(a), Value(b)});
  };

  std::printf("bootstrapping the service graph (web->api->auth, api->cache)"
              "...\n");
  DELTAMON_RETURN_IF_ERROR(engine.db.Insert(critical, Tuple{Value(kWeb)}));
  DELTAMON_RETURN_IF_ERROR(edge(kWeb, kApi));
  DELTAMON_RETURN_IF_ERROR(edge(kApi, kAuth));
  DELTAMON_RETURN_IF_ERROR(edge(kApi, kCache));
  DELTAMON_RETURN_IF_ERROR(engine.db.Commit());

  std::printf("\n'db' flagged unstable (nothing critical reaches it yet):\n");
  DELTAMON_RETURN_IF_ERROR(engine.db.Insert(unstable, Tuple{Value(kDb)}));
  DELTAMON_RETURN_IF_ERROR(engine.db.Commit());

  std::printf("\n'cache' starts using 'db' — web is now at risk through the "
              "chain web->api->cache->db:\n");
  DELTAMON_RETURN_IF_ERROR(edge(kCache, kDb));
  DELTAMON_RETURN_IF_ERROR(engine.db.Commit());

  std::printf("\nre-routing 'cache' to 'queue' removes the risky path:\n");
  DELTAMON_RETURN_IF_ERROR(edge(kCache, kQueue));
  DELTAMON_RETURN_IF_ERROR(drop_edge(kCache, kDb));
  DELTAMON_RETURN_IF_ERROR(engine.db.Commit());
  std::printf("  (no page: path gone, strict rule quiet)\n");

  std::printf("\n'auth' also picks up 'db' — paged again (condition was "
              "false in between):\n");
  DELTAMON_RETURN_IF_ERROR(edge(kAuth, kDb));
  DELTAMON_RETURN_IF_ERROR(engine.db.Commit());

  // Show the closure for reference.
  objectlog::Evaluator ev(engine.db, engine.registry,
                          objectlog::StateContext{});
  TupleSet closure;
  DELTAMON_RETURN_IF_ERROR(
      ev.Evaluate(reaches, objectlog::EvalState::kNew, &closure));
  std::printf("\ntransitive dependencies of 'web': ");
  for (const Tuple& t : SortedTuples(closure)) {
    if (t[0].AsInt() == kWeb) std::printf("%s ", kNames[t[1].AsInt()]);
  }
  std::printf("\n");
  return Status::OK();
}

}  // namespace

int main() {
  Status s = Run();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
