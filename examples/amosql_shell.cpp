// Interactive AMOSQL shell: type statements terminated by ';', see query
// results and rule firings immediately. Meta commands:
//   \net     print the current propagation network
//   \stats   print last check-phase statistics
//   \mode incremental|naive|hybrid
//   \quit
//
//   $ ./amosql_shell
//   amosql> create type item;
//   amosql> ...
//
// A `print(...)` procedure is pre-registered for rule actions.

#include <cstdio>
#include <iostream>
#include <string>

#include "amosql/session.h"

using namespace deltamon;

namespace {

void PrintStats(const rules::CheckStats& s) {
  std::printf(
      "rounds=%zu firings=%zu waves=%zu naive_recomputes=%zu\n"
      "differentials: executed=%zu skipped=%zu tuples=%zu\n"
      "filters: plus=%zu minus=%zu  peak_wavefront=%zu resident=%zu\n",
      s.rounds, s.rule_firings, s.incremental_waves, s.naive_recomputations,
      s.propagation.differentials_executed,
      s.propagation.differentials_skipped, s.propagation.tuples_propagated,
      s.propagation.filtered_plus, s.propagation.filtered_minus,
      s.propagation.peak_wavefront_tuples,
      s.propagation.materialized_resident_tuples);
}

bool HandleMeta(const std::string& line, Engine& engine) {
  if (line == "\\quit" || line == "\\q") std::exit(0);
  if (line == "\\stats") {
    PrintStats(engine.rules.last_check());
    return true;
  }
  if (line == "\\net") {
    auto net = engine.rules.network();
    if (!net.ok()) {
      std::printf("error: %s\n", net.status().ToString().c_str());
    } else if (*net == nullptr) {
      std::printf("(no activated rules)\n");
    } else {
      std::printf("%s", (*net)->ToString(engine.db.catalog()).c_str());
    }
    return true;
  }
  if (line.rfind("\\mode ", 0) == 0) {
    std::string mode = line.substr(6);
    if (mode == "incremental") {
      engine.rules.SetMode(rules::MonitorMode::kIncremental);
    } else if (mode == "naive") {
      engine.rules.SetMode(rules::MonitorMode::kNaive);
    } else if (mode == "hybrid") {
      engine.rules.SetMode(rules::MonitorMode::kHybrid);
    } else {
      std::printf("unknown mode '%s'\n", mode.c_str());
      return true;
    }
    std::printf("monitoring mode: %s\n", mode.c_str());
    return true;
  }
  if (line == "\\help" || line == "\\h") {
    std::printf(
        "statements: create type/function/rule, create <type> instances,\n"
        "  set/add/remove f(args) = value, select ..., activate/deactivate,\n"
        "  commit, rollback   (terminate with ';')\n"
        "meta: \\net \\stats \\mode <m> \\quit\n");
    return true;
  }
  return false;
}

}  // namespace

int main() {
  Engine engine;
  amosql::Session session(engine);
  session.RegisterProcedure("print",
                            [](Database&, const std::vector<Value>& args) {
                              std::printf("  print:");
                              for (const Value& v : args) {
                                std::printf(" %s", v.ToString().c_str());
                              }
                              std::printf("\n");
                              return Status::OK();
                            });

  std::printf("deltamon AMOSQL shell — \\help for help, \\quit to exit\n");
  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "amosql> " : "   ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Meta commands only at statement start.
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (HandleMeta(line, engine)) continue;
      std::printf("unknown meta command (\\help)\n");
      continue;
    }
    buffer += line;
    buffer += "\n";
    // Execute once the buffer ends with ';' (outside this toy heuristic,
    // strings containing ';' at end of line would also trigger).
    std::string trimmed = buffer;
    while (!trimmed.empty() && std::isspace((unsigned char)trimmed.back())) {
      trimmed.pop_back();
    }
    if (trimmed.empty() || trimmed.back() != ';') continue;
    // The shared front-end entry point: deltamond and deltamon-cli run
    // statements through the same path, so behavior cannot drift.
    auto result = amosql::ExecuteStatement(session, buffer);
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s", amosql::FormatResult(*result).c_str());
  }
  return 0;
}
