#ifndef DELTAMON_NET_CLIENT_H_
#define DELTAMON_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"

namespace deltamon::net {

/// Blocking deltamond protocol client: one connection, one in-flight
/// statement batch at a time. Shared by deltamon-cli, the loopback tests,
/// and the net_throughput load driver.
///
///   auto client = net::Client::Connect("127.0.0.1", 7654);
///   auto r = client->Execute("select quantity(:a);");
///   for (const std::string& row : r->rows) ...
class Client {
 public:
  struct Response {
    std::vector<std::string> rows;  ///< result rows of the last select
    std::string report;             ///< session-command / rule-action output
  };

  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and performs the HELLO handshake (protocol version check).
  /// `trace_info` opts the connection into server trace reporting via the
  /// HELLO flags byte: every statement's report then ends with a
  /// "-- trace <id>: queue ..., exec ..." line identifying the request in
  /// the server's /debug/requests flight recorder. Off by default — the
  /// one-byte HELLO and the reply bytes stay identical to older clients.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                size_t max_frame_size = kDefaultMaxFrameSize,
                                bool trace_info = false);

  /// Sends one AMOSQL statement batch and waits for the reply —
  /// reassembling MORE continuation frames when the server chunked a
  /// large body. An ERR frame comes back as a non-OK Status carrying
  /// the server's message.
  Result<Response> Execute(const std::string& amosql);

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  Result<Frame> ReadFrame();
  /// ReadFrame plus MORE-continuation reassembly (capped at
  /// kMaxReplyBytes); returns the terminal frame with the full body.
  Result<Frame> ReadReply();

  int fd_ = -1;
  FrameParser parser_;
};

}  // namespace deltamon::net

#endif  // DELTAMON_NET_CLIENT_H_
