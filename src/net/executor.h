#ifndef DELTAMON_NET_EXECUTOR_H_
#define DELTAMON_NET_EXECUTOR_H_

#include <mutex>
#include <string>

#include "amosql/session.h"
#include "obs/flight_recorder.h"
#include "rules/engine.h"

namespace deltamon::net {

/// Serializes all statement execution against the shared engine: one
/// statement batch runs at a time, whichever connection (or bootstrap
/// path) submitted it. The engine, the derived-relation registry, and the
/// rule manager are single-writer structures — sessions own only their
/// private interpreter state (interface variables, registered procedures),
/// so funneling every Execute through one mutex is the whole concurrency
/// story for now. Group commit (ROADMAP item 2) replaces this mutex with
/// a commit queue that batches Δ-sets; the call site stays the same.
///
/// Records net.statements_served / net.statement_errors counters and the
/// net.statement_latency_ns histogram (queue wait included — that is what
/// a client observes).
class Executor {
 public:
  explicit Executor(Engine& engine) : engine_(engine) {}
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  Engine& engine() { return engine_; }

  /// Executes one statement batch. When `record` is non-null the executor
  /// stamps its dequeue/exec-end phases (feeding net.queue_wait_ns and
  /// net.exec_ns), installs the record's trace id for span attribution,
  /// and — when the global SlowLog threshold is armed — captures the full
  /// span tree + literal profile of over-threshold statements. Callers
  /// without a request identity (bootstrap, tests) pass nullptr and get
  /// the plain serialized execution.
  Result<amosql::QueryResult> Execute(amosql::Session& session,
                                      const std::string& source,
                                      obs::RequestRecord* record = nullptr);

  /// Stats-annotated Graphviz DOT of the propagation network — the same
  /// rendering `show network [rule]` produces — for the admin HTTP
  /// /debug/network endpoint. Runs under the executor mutex: the network
  /// is rebuilt lazily by statements, so reading it must serialize against
  /// them. `rule` empty = the whole network.
  Result<std::string> NetworkDot(const std::string& rule);

 private:
  Engine& engine_;
  std::mutex mu_;
};

}  // namespace deltamon::net

#endif  // DELTAMON_NET_EXECUTOR_H_
