#ifndef DELTAMON_NET_EXECUTOR_H_
#define DELTAMON_NET_EXECUTOR_H_

#include <mutex>
#include <string>

#include "amosql/session.h"
#include "rules/engine.h"

namespace deltamon::net {

/// Serializes all statement execution against the shared engine: one
/// statement batch runs at a time, whichever connection (or bootstrap
/// path) submitted it. The engine, the derived-relation registry, and the
/// rule manager are single-writer structures — sessions own only their
/// private interpreter state (interface variables, registered procedures),
/// so funneling every Execute through one mutex is the whole concurrency
/// story for now. Group commit (ROADMAP item 2) replaces this mutex with
/// a commit queue that batches Δ-sets; the call site stays the same.
///
/// Records net.statements_served / net.statement_errors counters and the
/// net.statement_latency_ns histogram (queue wait included — that is what
/// a client observes).
class Executor {
 public:
  explicit Executor(Engine& engine) : engine_(engine) {}
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  Engine& engine() { return engine_; }

  Result<amosql::QueryResult> Execute(amosql::Session& session,
                                      const std::string& source);

 private:
  Engine& engine_;
  std::mutex mu_;
};

}  // namespace deltamon::net

#endif  // DELTAMON_NET_EXECUTOR_H_
