#ifndef DELTAMON_NET_EXECUTOR_H_
#define DELTAMON_NET_EXECUTOR_H_

#include <mutex>
#include <string>

#include "amosql/session.h"
#include "obs/flight_recorder.h"
#include "rules/engine.h"

namespace deltamon::net {

/// Statement-execution entry point for the server. Sessions attached to
/// the engine's transaction manager (every connection) run concurrently:
/// they synchronize at the engine gate — shared for reads and buffered
/// DML, exclusive for DDL — and at the group-commit queue, which batches
/// the Δ-sets of ready transactions into one deferred check phase. The
/// executor mutex remains for two cases that still need full
/// serialization: legacy sessions with no transaction manager (direct
/// database writes, single-writer engine), and statements run while the
/// slow-statement threshold is armed — capture swaps the process-global
/// trace sink, so only one statement may emit spans at a time.
///
/// Records net.statements_served / net.statement_errors counters and the
/// net.statement_latency_ns histogram (queue wait included — that is what
/// a client observes).
class Executor {
 public:
  explicit Executor(Engine& engine) : engine_(engine) {}
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  Engine& engine() { return engine_; }

  /// Executes one statement batch. When `record` is non-null the executor
  /// stamps its dequeue/exec-end phases (feeding net.queue_wait_ns and
  /// net.exec_ns), installs the record's trace id for span attribution,
  /// and — when the global SlowLog threshold is armed — captures the full
  /// span tree + literal profile of over-threshold statements. Callers
  /// without a request identity (bootstrap, tests) pass nullptr and get
  /// the plain serialized execution.
  Result<amosql::QueryResult> Execute(amosql::Session& session,
                                      const std::string& source,
                                      obs::RequestRecord* record = nullptr);

  /// Stats-annotated Graphviz DOT of the propagation network — the same
  /// rendering `show network [rule]` produces — for the admin HTTP
  /// /debug/network endpoint. Takes the executor mutex and then the engine
  /// gate exclusively: the network is rebuilt lazily by statements (legacy
  /// sessions hold the mutex, attached sessions the gate), so reading it
  /// must serialize against both. `rule` empty = the whole network.
  Result<std::string> NetworkDot(const std::string& rule);

 private:
  Engine& engine_;
  std::mutex mu_;
};

}  // namespace deltamon::net

#endif  // DELTAMON_NET_EXECUTOR_H_
