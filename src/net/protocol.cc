#include "net/protocol.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace deltamon::net {

void AppendFrame(std::string* out, FrameType type, std::string_view body) {
  if (body.size() >= std::numeric_limits<uint32_t>::max()) {
    // A truncated length prefix would desynchronize the stream for every
    // frame after this one; there is no way to report the error in-band.
    std::fprintf(stderr,
                 "deltamon/net: frame body of %zu bytes overflows the u32 "
                 "length prefix (chunk large replies via AppendReply)\n",
                 body.size());
    std::abort();
  }
  const uint32_t len = static_cast<uint32_t>(body.size() + 1);
  char header[kFrameHeaderSize];
  header[0] = static_cast<char>((len >> 24) & 0xff);
  header[1] = static_cast<char>((len >> 16) & 0xff);
  header[2] = static_cast<char>((len >> 8) & 0xff);
  header[3] = static_cast<char>(len & 0xff);
  out->append(header, kFrameHeaderSize);
  out->push_back(static_cast<char>(type));
  out->append(body);
}

void AppendReply(std::string* out, FrameType type, std::string_view body,
                 size_t max_frame_size) {
  // The frame payload is the type byte plus the chunk, so a chunk may
  // carry at most max_frame_size - 1 body bytes.
  const size_t chunk = max_frame_size > 1 ? max_frame_size - 1 : 1;
  while (body.size() > chunk) {
    AppendFrame(out, FrameType::kMore, body.substr(0, chunk));
    body.remove_prefix(chunk);
  }
  AppendFrame(out, type, body);
}

std::string EncodeRows(const std::vector<std::string>& rows,
                       std::string_view report) {
  std::string body = std::to_string(rows.size());
  body.push_back('\n');
  for (const std::string& row : rows) {
    body.append(row);
    body.push_back('\n');
  }
  body.append(report);
  return body;
}

Status DecodeRows(std::string_view body, std::vector<std::string>* rows,
                  std::string* report) {
  size_t eol = body.find('\n');
  if (eol == std::string_view::npos) {
    return Status::ParseError("ROWS body: missing row-count line");
  }
  size_t count = 0;
  const std::string_view count_text = body.substr(0, eol);
  if (count_text.empty()) {
    return Status::ParseError("ROWS body: empty row count");
  }
  for (char c : count_text) {
    if (c < '0' || c > '9') {
      return Status::ParseError("ROWS body: bad row count '" +
                                std::string(count_text) + "'");
    }
    const size_t digit = static_cast<size_t>(c - '0');
    if (count > (std::numeric_limits<size_t>::max() - digit) / 10) {
      return Status::ParseError("ROWS body: row count '" +
                                std::string(count_text) + "' overflows");
    }
    count = count * 10 + digit;
  }
  // Every declared row costs at least its '\n', so a count beyond the
  // body size is corrupt; reject it before reserve() can throw.
  if (count > body.size()) {
    return Status::ParseError("ROWS body: " + std::to_string(count) +
                              " rows declared in a " +
                              std::to_string(body.size()) + "-byte body");
  }
  rows->clear();
  rows->reserve(count);
  size_t pos = eol + 1;
  for (size_t i = 0; i < count; ++i) {
    size_t end = body.find('\n', pos);
    if (end == std::string_view::npos) {
      return Status::ParseError("ROWS body: " + std::to_string(count) +
                                " rows declared, row " + std::to_string(i) +
                                " truncated");
    }
    rows->emplace_back(body.substr(pos, end - pos));
    pos = end + 1;
  }
  report->assign(body.substr(pos));
  return Status::OK();
}

void FrameParser::Feed(const char* data, size_t n) {
  if (failed_ || n == 0) return;
  // Reclaim consumed prefix before growing; amortized O(1) per byte.
  if (consumed_ > 0 && (consumed_ >= 4096 || consumed_ == buffer_.size())) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

FrameParser::Next FrameParser::Pop(Frame* out) {
  if (failed_) return Next::kError;
  if (buffered() < kFrameHeaderSize) return Next::kNeedMore;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + consumed_;
  const uint32_t len = (static_cast<uint32_t>(p[0]) << 24) |
                       (static_cast<uint32_t>(p[1]) << 16) |
                       (static_cast<uint32_t>(p[2]) << 8) |
                       static_cast<uint32_t>(p[3]);
  if (len == 0) {
    failed_ = true;
    error_ = Status::ParseError("frame with zero-length payload (no type)");
    return Next::kError;
  }
  if (len > max_frame_size_) {
    failed_ = true;
    error_ = Status::OutOfRange(
        "frame of " + std::to_string(len) + " bytes exceeds max frame size " +
        std::to_string(max_frame_size_));
    return Next::kError;
  }
  if (buffered() < kFrameHeaderSize + len) return Next::kNeedMore;
  out->type = static_cast<FrameType>(p[kFrameHeaderSize]);
  out->body.assign(buffer_, consumed_ + kFrameHeaderSize + 1, len - 1);
  consumed_ += kFrameHeaderSize + len;
  return Next::kFrame;
}

}  // namespace deltamon::net
