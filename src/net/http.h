#ifndef DELTAMON_NET_HTTP_H_
#define DELTAMON_NET_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "common/status.h"

namespace deltamon::net {

/// The exact body served at GET /metrics: obs::FormatPrometheus over a
/// snapshot of the global registry — the same single formatting function
/// behind AMOSQL's `show metrics prometheus;`, so the two paths cannot
/// drift (asserted byte-for-byte in metrics_identity_test).
std::string MetricsBody();

/// Callbacks the admin endpoints use to reach server state they cannot
/// read lock-free. Unset hooks make the corresponding endpoint answer 404
/// — HandleAdminRequest stays a pure function testable without a server.
struct AdminHooks {
  /// Stats-annotated DOT of the propagation network, optionally restricted
  /// to one rule's condition subgraph (empty = whole network). The server
  /// wires this to Executor::NetworkDot so the read serializes against
  /// statement execution.
  std::function<Result<std::string>(const std::string& rule)> network_dot;
};

/// Pure request -> response mapping for the admin endpoints (unit-testable
/// without sockets). `request` is everything up to the end of the header
/// block; only the request line is examined. Routes:
///   GET /healthz               -> 200 "ok\n"
///   GET /metrics               -> 200 Prometheus text exposition
///   GET /debug/requests        -> 200 flight-recorder JSON (ring health
///                                  in X-Deltamon-Flight-* headers)
///   GET /debug/requests/trace  -> 200 Chrome/Perfetto trace JSON
///   GET /debug/slow            -> 200 slow-statement log JSON
///   GET /debug/provenance      -> 200 firing-provenance JSON
///   GET /debug/waves           -> 200 deltamon.wave.v1 JSON
///   GET /debug/network[?rule=] -> 200 Graphviz DOT (needs hooks)
///   anything else              -> 404 / 405 / 400
/// Returns the full HTTP/1.1 response bytes (Connection: close).
std::string HandleAdminRequest(std::string_view request,
                               const AdminHooks* hooks = nullptr);

/// Minimal hand-rolled HTTP/1.1 admin listener serving HandleAdminRequest
/// on its own thread, one request per connection. Admin traffic is a
/// scraper every few seconds and a liveness probe — serial blocking
/// handling with short socket timeouts is deliberate.
class AdminServer {
 public:
  AdminServer() = default;
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Installs the endpoint hooks; call before Start (the serving thread
  /// reads them unsynchronized).
  void SetHooks(AdminHooks hooks) { hooks_ = std::move(hooks); }

  /// Binds (port 0 = ephemeral) and starts the serving thread.
  Status Start(uint16_t port);
  uint16_t port() const { return port_; }

  /// Async-signal-safe stop trigger (atomic store + eventfd write).
  void RequestStop();
  /// Joins the serving thread; idempotent.
  void Wait();

 private:
  void Loop();
  void ServeOne(int client_fd);

  AdminHooks hooks_;
  int listen_fd_ = -1;
  int stop_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace deltamon::net

#endif  // DELTAMON_NET_HTTP_H_
