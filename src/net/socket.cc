#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace deltamon::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

Result<int> ListenTcp(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    Status s = Errno("setsockopt(SO_REUSEADDR)");
    CloseFd(fd);
    return s;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind(port " + std::to_string(port) + ")");
    CloseFd(fd);
    return s;
  }
  if (::listen(fd, backlog) < 0) {
    Status s = Errno("listen");
    CloseFd(fd);
    return s;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno == EINTR) continue;
    Status s = Errno("connect(" + host + ":" + std::to_string(port) + ")");
    CloseFd(fd);
    return s;
  }
  if (Status s = SetNoDelay(fd); !s.ok()) {
    CloseFd(fd);
    return s;
  }
  return fd;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Status WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, char* buf, size_t n) {
  while (true) {
    ssize_t r = ::read(fd, buf, n);
    if (r >= 0) return static_cast<size_t>(r);
    if (errno == EINTR) continue;
    return Errno("read");
  }
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace deltamon::net
