#include "net/http.h"

#include <errno.h>
#include <poll.h>
#include <cstring>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/report.h"
#include "obs/wave_recorder.h"

namespace deltamon::net {

namespace {

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, std::string_view body,
                         const std::string& extra_headers = std::string()) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\n" + extra_headers + "Connection: close\r\n\r\n";
  out.append(body);
  return out;
}

/// Value of `key` in an application/x-www-form-urlencoded query string.
/// No percent-decoding: rule names are plain identifiers.
std::string QueryParam(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    size_t amp = query.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view()
                                          : query.substr(amp + 1);
    size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
  }
  return std::string();
}

std::string DebugRequestsBody() {
  obs::RequestRecorder& recorder = obs::GlobalRequestRecorder();
  return obs::FlightRecorderJson(recorder.Snapshot(), recorder.capacity(),
                                 recorder.total_records(),
                                 recorder.dropped_records())
      .Dump();
}

}  // namespace

std::string MetricsBody() {
  return obs::FormatPrometheus(obs::Registry::Global().Snapshot());
}

std::string HandleAdminRequest(std::string_view request,
                               const AdminHooks* hooks) {
  const size_t eol = request.find("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? request : request.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return HttpResponse(400, "Bad Request", "text/plain",
                        "malformed request line\n");
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view query;
  if (size_t q = path.find('?'); q != std::string_view::npos) {
    query = path.substr(q + 1);
    path = path.substr(0, q);
  }
  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is supported\n");
  }
  if (path == "/healthz") {
    return HttpResponse(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/metrics") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4",
                        MetricsBody());
  }
  if (path == "/debug/requests") {
    // Ring health in headers so a `curl -I` (or a scraper that only wants
    // the counters) need not parse the body.
    obs::RequestRecorder& recorder = obs::GlobalRequestRecorder();
    const std::string headers =
        "X-Deltamon-Flight-Capacity: " + std::to_string(recorder.capacity()) +
        "\r\nX-Deltamon-Flight-Total: " +
        std::to_string(recorder.total_records()) +
        "\r\nX-Deltamon-Flight-Dropped: " +
        std::to_string(recorder.dropped_records()) + "\r\n";
    return HttpResponse(200, "OK", "application/json", DebugRequestsBody(),
                        headers);
  }
  if (path == "/debug/provenance") {
    const auto& log = obs::GlobalProvenanceLog();
    return HttpResponse(200, "OK", "application/json",
                        obs::ProvenanceJson(log.Snapshot(), log.enabled(),
                                            log.capacity(),
                                            log.total_records(),
                                            log.dropped_records())
                            .Dump());
  }
  if (path == "/debug/waves") {
    const auto& recorder = obs::GlobalWaveRecorder();
    return HttpResponse(200, "OK", "application/json",
                        obs::WaveFileJson(recorder.Snapshot(),
                                          recorder.enabled(),
                                          recorder.capacity(),
                                          recorder.total_records(),
                                          recorder.dropped_records())
                            .Dump());
  }
  if (path == "/debug/requests/trace") {
    return HttpResponse(
        200, "OK", "application/json",
        obs::RequestsChromeTraceJson(obs::GlobalRequestRecorder().Snapshot())
            .Dump());
  }
  if (path == "/debug/slow") {
    return HttpResponse(200, "OK", "application/json",
                        obs::SlowLog::Global().ToJson().Dump());
  }
  if (path == "/debug/network") {
    if (hooks == nullptr || !hooks->network_dot) {
      return HttpResponse(404, "Not Found", "text/plain",
                          "network introspection is not wired up\n");
    }
    Result<std::string> dot = hooks->network_dot(QueryParam(query, "rule"));
    if (!dot.ok()) {
      return HttpResponse(404, "Not Found", "text/plain",
                          dot.status().ToString() + "\n");
    }
    return HttpResponse(200, "OK", "text/vnd.graphviz", *dot);
  }
  return HttpResponse(404, "Not Found", "text/plain",
                      "unknown path; try /metrics, /healthz, "
                      "/debug/requests, /debug/requests/trace, /debug/slow, "
                      "/debug/provenance, /debug/waves or /debug/network\n");
}

AdminServer::~AdminServer() {
  RequestStop();
  Wait();
}

Status AdminServer::Start(uint16_t port) {
  DELTAMON_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(port));
  Result<uint16_t> bound = LocalPort(listen_fd_);
  if (!bound.ok()) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return bound.status();
  }
  port_ = *bound;
  stop_fd_ = ::eventfd(0, EFD_CLOEXEC);
  if (stop_fd_ < 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void AdminServer::RequestStop() {
  if (stop_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  uint64_t one = 1;
  // write() is async-signal-safe; the result only matters insofar as the
  // eventfd is already signalled (EAGAIN), which also wakes the loop.
  [[maybe_unused]] ssize_t n = ::write(stop_fd_, &one, sizeof(one));
}

void AdminServer::Wait() {
  if (thread_.joinable()) thread_.join();
  CloseFd(listen_fd_);
  CloseFd(stop_fd_);
  listen_fd_ = -1;
  stop_fd_ = -1;
}

void AdminServer::Loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_fd_, POLLIN, 0}};
    int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 ||
        stopping_.load(std::memory_order_acquire)) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    ServeOne(client);
    CloseFd(client);
  }
}

void AdminServer::ServeOne(int client_fd) {
  // Bound everything: a stuck scraper must not wedge the admin thread.
  timeval timeout{2, 0};
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[4096];
  while (request.size() < 16384 &&
         request.find("\r\n\r\n") == std::string::npos) {
    ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  if (request.empty()) return;
  DELTAMON_OBS_COUNT("net.http_requests", 1);
  const std::string response = HandleAdminRequest(request, &hooks_);
  (void)WriteAll(client_fd, response);
}

}  // namespace deltamon::net
