#ifndef DELTAMON_NET_SOCKET_H_
#define DELTAMON_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace deltamon::net {

/// Thin Status-returning wrappers over the POSIX socket calls the server
/// and client need. All fds are plain ints owned by the caller.

/// Non-blocking listening socket bound to 0.0.0.0:`port` (SO_REUSEADDR);
/// port 0 binds an ephemeral port — read it back with LocalPort.
Result<int> ListenTcp(uint16_t port, int backlog = 128);

/// The port a bound socket actually listens on.
Result<uint16_t> LocalPort(int fd);

/// Blocking connected socket (TCP_NODELAY) to host:port. `host` must be a
/// numeric IPv4 address ("127.0.0.1") or "localhost".
Result<int> ConnectTcp(const std::string& host, uint16_t port);

Status SetNonBlocking(int fd);
Status SetNoDelay(int fd);

/// Blocking write of the whole buffer (retries on EINTR / partial writes).
Status WriteAll(int fd, std::string_view data);

/// Blocking read of up to `n` bytes; 0 means orderly EOF.
Result<size_t> ReadSome(int fd, char* buf, size_t n);

/// close() ignoring EINTR; safe on -1.
void CloseFd(int fd);

}  // namespace deltamon::net

#endif  // DELTAMON_NET_SOCKET_H_
