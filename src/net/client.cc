#include "net/client.h"

#include <utility>

#include "net/socket.h"

namespace deltamon::net {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    parser_ = std::move(other.parser_);
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               size_t max_frame_size, bool trace_info) {
  DELTAMON_ASSIGN_OR_RETURN(int fd, ConnectTcp(host, port));
  Client client;
  client.fd_ = fd;
  client.parser_ = FrameParser(max_frame_size);

  std::string body(1, static_cast<char>(kProtocolVersion));
  if (trace_info) body.push_back(static_cast<char>(kHelloFlagTraceInfo));
  std::string hello;
  AppendFrame(&hello, FrameType::kHello, body);
  if (Status s = WriteAll(fd, hello); !s.ok()) return s;
  DELTAMON_ASSIGN_OR_RETURN(Frame reply, client.ReadFrame());
  if (reply.type == FrameType::kError) {
    return Status::FailedPrecondition("server rejected handshake: " +
                                      reply.body);
  }
  if (reply.type != FrameType::kOk) {
    return Status::ParseError("unexpected handshake reply frame type");
  }
  return client;
}

Result<Frame> Client::ReadFrame() {
  Frame frame;
  char buf[16384];
  while (true) {
    switch (parser_.Pop(&frame)) {
      case FrameParser::Next::kFrame:
        return frame;
      case FrameParser::Next::kError:
        return parser_.error();
      case FrameParser::Next::kNeedMore:
        break;
    }
    DELTAMON_ASSIGN_OR_RETURN(size_t n, ReadSome(fd_, buf, sizeof(buf)));
    if (n == 0) {
      return Status::Internal("server closed the connection mid-reply");
    }
    parser_.Feed(buf, n);
  }
}

Result<Frame> Client::ReadReply() {
  // A large reply arrives as MORE continuation frames followed by the
  // terminal OK/ROWS/ERR frame; bodies concatenate in order.
  std::string assembled;
  while (true) {
    DELTAMON_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type != FrameType::kMore) {
      if (!assembled.empty()) {
        assembled.append(frame.body);
        frame.body = std::move(assembled);
      }
      return frame;
    }
    if (assembled.size() + frame.body.size() > kMaxReplyBytes) {
      return Status::OutOfRange("reply exceeds " +
                                std::to_string(kMaxReplyBytes) + " bytes");
    }
    assembled.append(frame.body);
  }
}

Result<Client::Response> Client::Execute(const std::string& amosql) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  std::string out;
  AppendFrame(&out, FrameType::kQuery, amosql);
  if (Status s = WriteAll(fd_, out); !s.ok()) return s;
  DELTAMON_ASSIGN_OR_RETURN(Frame reply, ReadReply());
  Response response;
  switch (reply.type) {
    case FrameType::kOk:
      response.report = std::move(reply.body);
      return response;
    case FrameType::kRows: {
      DELTAMON_RETURN_IF_ERROR(
          DecodeRows(reply.body, &response.rows, &response.report));
      return response;
    }
    case FrameType::kError:
      return Status::FailedPrecondition(reply.body);
    case FrameType::kAborted:
      // Retryable: the server aborted the transaction at commit validation;
      // the caller re-sends the whole transaction.
      return Status::TxnConflict(reply.body);
    default:
      return Status::ParseError("unexpected reply frame type");
  }
}

void Client::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

}  // namespace deltamon::net
