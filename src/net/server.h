#ifndef DELTAMON_NET_SERVER_H_
#define DELTAMON_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/executor.h"
#include "net/http.h"
#include "net/protocol.h"
#include "rules/engine.h"

namespace deltamon::net {

struct ServerOptions {
  /// TCP port for the AMOSQL protocol; 0 binds an ephemeral port (read it
  /// back with Server::port()).
  uint16_t port = 7654;
  /// Admin HTTP listener (/metrics, /healthz); port 0 = ephemeral.
  bool enable_admin = true;
  uint16_t admin_port = 0;
  /// Worker event loops; connections are assigned round-robin.
  size_t num_workers = 2;
  /// Frames above this payload size get an ERR frame and a close.
  size_t max_frame_size = kDefaultMaxFrameSize;
  /// Connections with no traffic for this long are closed; 0 disables.
  int idle_timeout_ms = 0;
};

/// deltamond: serves AMOSQL sessions to many concurrent clients.
///
/// Threading model (DESIGN.md §9):
///  - one accept thread: non-blocking listener, hands accepted sockets to
///    workers round-robin via an eventfd-signalled queue;
///  - `num_workers` worker event loops: epoll with edge-triggered
///    readiness, non-blocking sockets, per-connection read/write buffers
///    and FrameParser. A connection lives on exactly one worker, so its
///    Session is only ever touched by that worker's thread;
///  - statement execution happens inline on the worker, serialized across
///    all workers by the Executor (one statement batch at a time). Inline
///    execution under a global executor mutex has the same throughput as
///    a dedicated executor thread would — the engine admits one writer —
///    without a cross-thread response handoff;
///  - an optional admin HTTP thread (AdminServer).
///
/// Sessions that created rules are referenced by those rules' compiled
/// actions for the engine's lifetime, so closed connections retire their
/// Session into a server-owned graveyard instead of destroying it
/// (lifecycle_test covers fire-after-disconnect).
///
/// Shutdown: RequestStop() is async-signal-safe (atomic store + eventfd
/// writes); Stop()/Wait() then close the listener, let each worker finish
/// the statement it is executing, flush pending write buffers with a
/// bounded drain, close all connections, and join every thread.
class Server {
 public:
  Server(Engine& engine, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start();

  /// Bound ports; valid after Start().
  uint16_t port() const { return port_; }
  uint16_t admin_port() const { return admin_.port(); }

  /// Async-signal-safe stop trigger.
  void RequestStop();
  /// Drains and joins everything; idempotent. Returns once all threads
  /// have exited and all sockets are closed.
  void Wait();
  /// RequestStop() + Wait().
  void Stop();

 private:
  struct Conn {
    int fd = -1;
    FrameParser parser;
    std::string out;           ///< bytes accepted for write, not yet sent
    bool want_write = false;   ///< EPOLLOUT currently armed
    bool handshaken = false;
    bool closing = false;      ///< close once `out` drains
    std::chrono::steady_clock::time_point last_active;
    std::unique_ptr<amosql::Session> session;
    /// Lines printed by rule actions / procedures during execution; owned
    /// by shared_ptr because a rule compiled by this session may fire
    /// after the connection closed.
    std::shared_ptr<std::string> action_output;
  };

  struct Worker {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::mutex mu;
    std::vector<int> pending;  ///< accepted fds awaiting registration
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
  };

  void AcceptLoop();
  void WorkerLoop(Worker& w);
  void RegisterPending(Worker& w);
  /// Returns false when the connection must be closed.
  bool OnReadable(Worker& w, Conn& c);
  bool FlushOut(Worker& w, Conn& c);
  void HandleFrame(Conn& c, Frame frame);
  void ExecuteQuery(Conn& c, const std::string& text);
  void CloseConn(Worker& w, int fd);
  void SweepIdle(Worker& w);
  void DrainAndCloseAll(Worker& w);

  Engine& engine_;
  ServerOptions options_;
  Executor executor_;
  AdminServer admin_;

  int listen_fd_ = -1;
  int stop_fd_ = -1;  ///< eventfd waking the accept loop
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<size_t> next_worker_{0};
  std::atomic<int64_t> active_conns_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool joined_ = false;

  /// Sessions of closed connections (see class comment).
  std::mutex retired_mu_;
  std::vector<std::unique_ptr<amosql::Session>> retired_sessions_;
};

}  // namespace deltamon::net

#endif  // DELTAMON_NET_SERVER_H_
