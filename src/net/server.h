#ifndef DELTAMON_NET_SERVER_H_
#define DELTAMON_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/executor.h"
#include "net/http.h"
#include "net/protocol.h"
#include "obs/flight_recorder.h"
#include "rules/engine.h"

namespace deltamon::net {

struct ServerOptions {
  /// TCP port for the AMOSQL protocol; 0 binds an ephemeral port (read it
  /// back with Server::port()).
  uint16_t port = 7654;
  /// Admin HTTP listener (/metrics, /healthz); port 0 = ephemeral.
  bool enable_admin = true;
  uint16_t admin_port = 0;
  /// Worker event loops; connections are assigned round-robin.
  size_t num_workers = 2;
  /// Frames above this payload size get an ERR frame and a close.
  /// Replies larger than this are split into MORE continuation frames.
  size_t max_frame_size = kDefaultMaxFrameSize;
  /// Connections with no traffic for this long are closed; 0 disables.
  int idle_timeout_ms = 0;
  /// Once a connection's unsent reply bytes reach this mark the server
  /// stops reading (and thus executing) for it until the buffer drains,
  /// so a client that pipelines statements without consuming replies
  /// cannot grow server memory without bound. 0 disables.
  size_t write_high_water = 8u << 20;
  /// Statements whose execution exceeds this threshold are captured with
  /// their full span tree and literal profile into the global SlowLog
  /// (GET /debug/slow, AMOSQL `show slow;`). 0 (the default) disables the
  /// capture and its per-statement instrumentation entirely.
  double slow_statement_ms = 0;
};

/// Output produced by rule-action `print` calls on behalf of one
/// session. A rule compiled by session A can fire during *any*
/// connection's statement — on that connection's worker thread, under
/// the executor mutex — while A's own worker drains the buffer outside
/// that mutex, so the string needs its own lock.
class ActionSink {
 public:
  void Append(const std::string& chunk) {
    std::lock_guard<std::mutex> lock(mu_);
    text_ += chunk;
  }
  std::string Drain() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::exchange(text_, std::string());
  }

 private:
  std::mutex mu_;
  std::string text_;
};

/// deltamond: serves AMOSQL sessions to many concurrent clients.
///
/// Threading model (DESIGN.md §9):
///  - one accept thread: non-blocking listener, hands accepted sockets to
///    workers round-robin via an eventfd-signalled queue;
///  - `num_workers` worker event loops: epoll with edge-triggered
///    readiness, non-blocking sockets, per-connection read/write buffers
///    and FrameParser. A connection lives on exactly one worker, so its
///    Session is only ever touched by that worker's thread;
///  - statement execution happens inline on the worker, serialized across
///    all workers by the Executor (one statement batch at a time). Inline
///    execution under a global executor mutex has the same throughput as
///    a dedicated executor thread would — the engine admits one writer —
///    without a cross-thread response handoff;
///  - an optional admin HTTP thread (AdminServer).
///
/// Sessions that created rules are referenced by those rules' compiled
/// actions for the engine's lifetime, so closing such a connection
/// retires its Session into a server-owned graveyard instead of
/// destroying it (lifecycle_test covers fire-after-disconnect). Sessions
/// that never created a rule are destroyed with their connection, so the
/// graveyard grows with rule-creating sessions, not with every
/// connection ever served.
///
/// Shutdown: RequestStop() is async-signal-safe (atomic store + eventfd
/// writes); Stop()/Wait() then close the listener, let each worker finish
/// the statement it is executing, flush pending write buffers with a
/// bounded drain, close all connections, and join every thread.
class Server {
 public:
  Server(Engine& engine, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start();

  /// Bound ports; valid after Start().
  uint16_t port() const { return port_; }
  uint16_t admin_port() const { return admin_.port(); }

  /// Async-signal-safe stop trigger.
  void RequestStop();
  /// Drains and joins everything; idempotent. Returns once all threads
  /// have exited and all sockets are closed.
  void Wait();
  /// RequestStop() + Wait().
  void Stop();

  /// Observability for tests: live connections / graveyard size. Only
  /// sessions that created rules are retired (their compiled actions
  /// reference the session); rule-free sessions die with the connection.
  int64_t active_connections() const {
    return active_conns_.load(std::memory_order_relaxed);
  }
  size_t retired_session_count() const {
    std::lock_guard<std::mutex> lock(retired_mu_);
    return retired_sessions_.size();
  }

 private:
  /// A request whose reply is queued but not yet flushed to the kernel.
  /// `reply_end` is the absolute outbound byte offset (bytes_sent_total
  /// coordinates) one past the reply's last byte: with replies queued and
  /// sent strictly in order, the request completes exactly when
  /// bytes_sent_total reaches it — correct under pipelining, MORE
  /// chunking, and partial writes.
  struct PendingReply {
    obs::RequestRecord record;
    uint64_t reply_end = 0;
  };

  struct Conn {
    int fd = -1;
    FrameParser parser;
    std::string out;           ///< bytes accepted for write, not yet sent
    uint32_t interest = 0;     ///< epoll event mask currently armed
    bool handshaken = false;
    bool closing = false;      ///< close once `out` drains
    bool paused = false;       ///< reads suspended: `out` hit high water
    bool peer_eof = false;     ///< orderly shutdown seen from the client
    bool wants_trace_info = false;  ///< HELLO kHelloFlagTraceInfo
    uint64_t conn_id = 0;           ///< process-unique, minted at accept
    uint64_t next_ordinal = 0;      ///< statements executed so far
    uint64_t bytes_sent_total = 0;  ///< reply bytes accepted by the kernel
    std::chrono::steady_clock::time_point last_active;
    std::unique_ptr<amosql::Session> session;
    /// Lines printed by rule actions / procedures during execution; owned
    /// by shared_ptr because a rule compiled by this session may fire
    /// after the connection closed.
    std::shared_ptr<ActionSink> action_output;
    /// Requests awaiting reply flush, oldest first (empty under OBS=OFF).
    std::deque<PendingReply> inflight;
  };

  struct Worker {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::mutex mu;
    std::vector<int> pending;  ///< accepted fds awaiting registration
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
  };

  void AcceptLoop();
  void WorkerLoop(Worker& w);
  void RegisterPending(Worker& w);
  /// Returns false when the connection must be closed.
  bool OnReadable(Worker& w, Conn& c);
  /// Pops and executes buffered frames until the parser runs dry or the
  /// write buffer hits the high-water mark (which pauses the connection).
  void ProcessFrames(Conn& c);
  bool FlushOut(Worker& w, Conn& c);
  void HandleFrame(Conn& c, Frame frame);
  void ExecuteQuery(Conn& c, const std::string& text);
  /// Queues one logical reply, chunked to fit max_frame_size.
  void Reply(Conn& c, FrameType type, std::string_view body);
  /// Finishes every inflight request whose reply has fully reached the
  /// kernel: stamps reply_flushed, records net.reply_write_ns, and pushes
  /// the record into the global flight recorder.
  void CompleteFlushedReplies(Conn& c);
  void CloseConn(Worker& w, int fd);
  void SweepIdle(Worker& w);
  void DrainAndCloseAll(Worker& w);

  Engine& engine_;
  ServerOptions options_;
  Executor executor_;
  AdminServer admin_;

  int listen_fd_ = -1;
  int stop_fd_ = -1;  ///< eventfd waking the accept loop
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<size_t> next_worker_{0};
  std::atomic<uint64_t> next_conn_id_{0};
  std::atomic<int64_t> active_conns_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool joined_ = false;

  /// Sessions of closed connections (see class comment).
  mutable std::mutex retired_mu_;
  std::vector<std::unique_ptr<amosql::Session>> retired_sessions_;
};

}  // namespace deltamon::net

#endif  // DELTAMON_NET_SERVER_H_
