#include "net/server.h"

#include <errno.h>
#include <poll.h>
#include <cstdio>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "net/socket.h"
#include "obs/metrics.h"

namespace deltamon::net {

namespace {

/// Registered on every connection's session so AMOSQL rule actions can
/// `do print(...)`; output rides back to the client in the reply frame's
/// report section. The sink is shared with the Conn (and outlives it if
/// the session is retired — late firings then print into the void). The
/// sink carries its own lock: a rule compiled here can fire during any
/// connection's statement, on that connection's worker thread.
void RegisterPrint(amosql::Session& session,
                   std::shared_ptr<ActionSink> sink) {
  session.RegisterProcedure(
      "print", [sink = std::move(sink)](Database&,
                                        const std::vector<Value>& args) {
        std::string line = "print:";
        for (const Value& v : args) {
          line += " " + v.ToString();
        }
        line += "\n";
        sink->Append(line);
        return Status::OK();
      });
}

void DrainEventFd(int fd) {
  uint64_t buf;
  while (::read(fd, &buf, sizeof(buf)) > 0) {
  }
}

/// Report trailer for connections that opted into trace info via the
/// HELLO flags byte: the trace id (findable in /debug/requests) plus the
/// two server-side phases known when the reply is built.
std::string TraceInfoLine(const obs::RequestRecord& record) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "-- trace %llu: queue %.1f us, exec %.1f us\n",
                static_cast<unsigned long long>(record.context.trace_id),
                static_cast<double>(record.QueueWaitNs()) / 1e3,
                static_cast<double>(record.ExecNs()) / 1e3);
  return buf;
}

}  // namespace

Server::Server(Engine& engine, ServerOptions options)
    : engine_(engine), options_(options), executor_(engine) {
  if (options_.num_workers == 0) options_.num_workers = 1;
}

Server::~Server() {
  RequestStop();
  Wait();
}

Status Server::Start() {
  DELTAMON_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.port));
  Result<uint16_t> bound = LocalPort(listen_fd_);
  if (!bound.ok()) return bound.status();
  port_ = *bound;

  stop_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (stop_fd_ < 0) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }

  for (size_t i = 0; i < options_.num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (w->epoll_fd < 0) {
      return Status::Internal(std::string("epoll_create1: ") +
                              std::strerror(errno));
    }
    w->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (w->wake_fd < 0) {
      return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->wake_fd;
    if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev) < 0) {
      return Status::Internal(std::string("epoll_ctl(wake): ") +
                              std::strerror(errno));
    }
    workers_.push_back(std::move(w));
  }

  if (options_.slow_statement_ms > 0) {
    obs::SlowLog::Global().set_threshold_ns(
        static_cast<uint64_t>(options_.slow_statement_ms * 1e6));
  }

  if (options_.enable_admin) {
    AdminHooks hooks;
    hooks.network_dot = [this](const std::string& rule) {
      return executor_.NetworkDot(rule);
    };
    admin_.SetHooks(std::move(hooks));
    DELTAMON_RETURN_IF_ERROR(admin_.Start(options_.admin_port));
  }

  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { WorkerLoop(*worker); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void Server::RequestStop() {
  stopping_.store(true, std::memory_order_release);
  uint64_t one = 1;
  if (stop_fd_ >= 0) {
    [[maybe_unused]] ssize_t n = ::write(stop_fd_, &one, sizeof(one));
  }
  for (auto& w : workers_) {
    if (w->wake_fd >= 0) {
      [[maybe_unused]] ssize_t n = ::write(w->wake_fd, &one, sizeof(one));
    }
  }
  admin_.RequestStop();
}

void Server::Wait() {
  if (joined_) return;
  joined_ = true;
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  for (auto& w : workers_) {
    CloseFd(w->epoll_fd);
    CloseFd(w->wake_fd);
    w->epoll_fd = w->wake_fd = -1;
  }
  CloseFd(listen_fd_);
  CloseFd(stop_fd_);
  listen_fd_ = stop_fd_ = -1;
  admin_.Wait();
}

void Server::Stop() {
  RequestStop();
  Wait();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_fd_, POLLIN, 0}};
    int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || stopping_.load(std::memory_order_acquire)) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    while (true) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN, or a transient per-connection error
      (void)SetNoDelay(fd);
      DELTAMON_OBS_COUNT("net.connections_accepted", 1);
      Worker& w = *workers_[next_worker_.fetch_add(
                               1, std::memory_order_relaxed) %
                           workers_.size()];
      {
        std::lock_guard<std::mutex> lock(w.mu);
        w.pending.push_back(fd);
      }
      uint64_t one = 1;
      [[maybe_unused]] ssize_t r = ::write(w.wake_fd, &one, sizeof(one));
    }
  }
}

void Server::RegisterPending(Worker& w) {
  std::vector<int> pending;
  {
    std::lock_guard<std::mutex> lock(w.mu);
    pending.swap(w.pending);
  }
  for (int fd : pending) {
    if (stopping_.load(std::memory_order_acquire)) {
      CloseFd(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->conn_id = next_conn_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    conn->parser = FrameParser(options_.max_frame_size);
    conn->last_active = std::chrono::steady_clock::now();
    conn->session = std::make_unique<amosql::Session>(engine_);
    // Every connection runs as an optimistic transaction: snapshot reads,
    // buffered writes, and group-committed check phases. Statements from
    // different connections synchronize at the engine gate and the commit
    // queue instead of the executor mutex.
    conn->session->AttachTransactionManager(&engine_.txn);
    conn->action_output = std::make_shared<ActionSink>();
    RegisterPrint(*conn->session, conn->action_output);
    conn->interest = EPOLLIN | EPOLLET | EPOLLRDHUP;

    epoll_event ev{};
    ev.events = conn->interest;
    ev.data.fd = fd;
    if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      CloseFd(fd);
      continue;
    }
    w.conns.emplace(fd, std::move(conn));
    DELTAMON_OBS_GAUGE_SET(
        "net.connections_active",
        active_conns_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
}

void Server::WorkerLoop(Worker& w) {
  epoll_event events[64];
  while (true) {
    const int timeout =
        options_.idle_timeout_ms > 0
            ? std::min(options_.idle_timeout_ms, 1000) / 2 + 1
            : -1;
    int n = ::epoll_wait(w.epoll_fd, events, 64, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == w.wake_fd) {
        DrainEventFd(w.wake_fd);
        continue;
      }
      auto it = w.conns.find(fd);
      if (it == w.conns.end()) continue;
      Conn& c = *it->second;
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConn(w, fd);
        continue;
      }
      bool alive = true;
      if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0) alive = OnReadable(w, c);
      if (alive && (ev & EPOLLOUT) != 0) alive = FlushOut(w, c);
      if (!alive) CloseConn(w, fd);
    }
    RegisterPending(w);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (options_.idle_timeout_ms > 0) SweepIdle(w);
  }
  DrainAndCloseAll(w);
}

bool Server::OnReadable(Worker& w, Conn& c) {
  // A paused connection leaves bytes in the kernel buffer so TCP flow
  // control pushes back on the client; reading resumes once the write
  // buffer drains (FlushOut).
  if (!c.paused) {
    char buf[16384];
    while (true) {
      ssize_t n = ::read(c.fd, buf, sizeof(buf));
      if (n > 0) {
        DELTAMON_OBS_COUNT("net.bytes_in", n);
        c.parser.Feed(buf, static_cast<size_t>(n));
        c.last_active = std::chrono::steady_clock::now();
        continue;
      }
      if (n == 0) {
        c.peer_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    ProcessFrames(c);
  }
  return FlushOut(w, c);
}

void Server::ProcessFrames(Conn& c) {
  Frame frame;
  while (!c.closing) {
    if (options_.write_high_water > 0 &&
        c.out.size() >= options_.write_high_water) {
      // Stop executing this connection's statements until the client
      // consumes what it already has; remaining frames stay buffered.
      if (!c.paused) {
        c.paused = true;
        DELTAMON_OBS_COUNT("net.backpressure_paused", 1);
      }
      return;
    }
    const FrameParser::Next next = c.parser.Pop(&frame);
    if (next == FrameParser::Next::kNeedMore) break;
    if (next == FrameParser::Next::kError) {
      // Oversized or malformed length prefix: tell the client why, then
      // close — the stream cannot be resynchronized.
      DELTAMON_OBS_COUNT("net.frames_rejected", 1);
      Reply(c, FrameType::kError, c.parser.error().ToString());
      c.closing = true;
      break;
    }
    DELTAMON_OBS_COUNT("net.frames_in", 1);
    HandleFrame(c, std::move(frame));
  }
  if (c.peer_eof && !c.closing) {
    // Orderly client shutdown; anything already queued still goes out.
    c.closing = true;
  }
}

void Server::HandleFrame(Conn& c, Frame frame) {
  if (!c.handshaken) {
    if (frame.type != FrameType::kHello) {
      Reply(c, FrameType::kError,
            "protocol error: first frame must be HELLO");
      c.closing = true;
      return;
    }
    // Body is [version] or [version][flags]; unknown flag bits are
    // ignored so future clients degrade gracefully.
    if (frame.body.empty() || frame.body.size() > 2 ||
        static_cast<uint8_t>(frame.body[0]) != kProtocolVersion) {
      Reply(c, FrameType::kError,
            "unsupported protocol version (server speaks " +
                std::to_string(kProtocolVersion) + ")");
      c.closing = true;
      return;
    }
    if (frame.body.size() == 2) {
      c.wants_trace_info =
          (static_cast<uint8_t>(frame.body[1]) & kHelloFlagTraceInfo) != 0;
    }
    c.handshaken = true;
    Reply(c, FrameType::kOk,
          "deltamond protocol " + std::to_string(kProtocolVersion));
    return;
  }
  switch (frame.type) {
    case FrameType::kQuery:
      ExecuteQuery(c, frame.body);
      return;
    default:
      Reply(c, FrameType::kError, "protocol error: unexpected frame type");
      c.closing = true;
      return;
  }
}

void Server::ExecuteQuery(Conn& c, const std::string& text) {
  // Mint the request's identity the moment the QUERY frame is parsed;
  // the executor stamps the dequeue/exec phases, the flush path stamps
  // reply_flushed. Under OBS=OFF all of this folds away (kRequestTracing-
  // Enabled is constexpr false) and the executor sees a null record.
  obs::RequestRecord record;
  const uint64_t queued_before = c.bytes_sent_total + c.out.size();
  if (obs::kRequestTracingEnabled) {
    record.context.trace_id = obs::NextTraceId();
    record.context.connection_id = c.conn_id;
    // Sessions are per-connection today, so they share the connection's
    // id; a separate field keeps the record schema stable if session
    // pooling ever decouples them.
    record.context.session_id = c.conn_id;
    record.context.statement_ordinal = ++c.next_ordinal;
    record.statement = obs::StatementPreview(text);
    record.enqueue_ns = obs::MonotonicNowNs();
  }
  Result<amosql::QueryResult> result = executor_.Execute(
      *c.session, text, obs::kRequestTracingEnabled ? &record : nullptr);
  std::string action_output = c.action_output->Drain();
  if (!result.ok()) {
    // A commit that lost first-committer-wins validation gets its own
    // frame type: the transaction was rolled back and can be re-sent
    // verbatim, unlike a genuine error.
    const FrameType type =
        result.status().code() == StatusCode::kTxnConflict ? FrameType::kAborted
                                                           : FrameType::kError;
    Reply(c, type, result.status().ToString());
  } else {
    // Rule-action print output first, then the statement report — the
    // order the REPL shows them in.
    std::string report = std::move(action_output) + result->report;
    if (obs::kRequestTracingEnabled && c.wants_trace_info) {
      report += TraceInfoLine(record);
    }
    if (result->rows.empty()) {
      Reply(c, FrameType::kOk, report);
    } else {
      std::vector<std::string> rows;
      rows.reserve(result->rows.size());
      for (const Tuple& t : result->rows) rows.push_back(t.ToString());
      Reply(c, FrameType::kRows, EncodeRows(rows, report));
    }
  }
  if (obs::kRequestTracingEnabled) {
    record.reply_queued_ns = obs::MonotonicNowNs();
    const uint64_t reply_end = c.bytes_sent_total + c.out.size();
    record.reply_bytes = reply_end - queued_before;
    c.inflight.push_back(PendingReply{std::move(record), reply_end});
  }
}

void Server::Reply(Conn& c, FrameType type, std::string_view body) {
  AppendReply(&c.out, type, body, options_.max_frame_size);
}

void Server::CompleteFlushedReplies(Conn& c) {
  while (!c.inflight.empty() &&
         c.inflight.front().reply_end <= c.bytes_sent_total) {
    PendingReply& p = c.inflight.front();
    p.record.reply_flushed_ns = obs::MonotonicNowNs();
    p.record.reply_flushed = true;
    DELTAMON_OBS_RECORD("net.reply_write_ns",
                        p.record.reply_flushed_ns - p.record.reply_queued_ns);
    obs::GlobalRequestRecorder().Record(std::move(p.record));
    c.inflight.pop_front();
  }
}

bool Server::FlushOut(Worker& w, Conn& c) {
  while (true) {
    bool kernel_full = false;
    while (!c.out.empty()) {
      ssize_t n = ::write(c.fd, c.out.data(), c.out.size());
      if (n > 0) {
        DELTAMON_OBS_COUNT("net.bytes_out", n);
        c.bytes_sent_total += static_cast<uint64_t>(n);
        c.out.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        kernel_full = true;  // the next EPOLLOUT edge continues the drain
        break;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer went away mid-write
    }
    // Fully drained: resume a paused connection and execute the frames
    // that were held back. They may refill `out`, so loop to write the
    // new replies now — no future EPOLLOUT edge is guaranteed here.
    if (kernel_full || !c.paused || c.closing) break;
    c.paused = false;
    ProcessFrames(c);
    if (c.out.empty() && !c.closing) break;
  }
  CompleteFlushedReplies(c);
  const bool need_write = !c.out.empty();
  const uint32_t want = EPOLLET | EPOLLRDHUP | (c.paused ? 0u : EPOLLIN) |
                        (need_write ? EPOLLOUT : 0u);
  if (want != c.interest) {
    epoll_event ev{};
    ev.events = want;
    ev.data.fd = c.fd;
    if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev) < 0) return false;
    c.interest = want;
  }
  return !(c.closing && c.out.empty());
}

void Server::CloseConn(Worker& w, int fd) {
  auto it = w.conns.find(fd);
  if (it == w.conns.end()) return;
  // Account for whatever did reach the kernel, then record the rest as
  // aborted (reply_flushed stays false) so the flight recorder doesn't
  // silently lose requests whose connection died mid-reply.
  CompleteFlushedReplies(*it->second);
  for (PendingReply& p : it->second->inflight) {
    obs::GlobalRequestRecorder().Record(std::move(p.record));
  }
  it->second->inflight.clear();
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  CloseFd(fd);
  if (it->second->session->created_rules()) {
    // Rules compiled by this session hold a pointer to it; keep it alive
    // for the engine's lifetime (see class comment). Rule-free sessions
    // are referenced by nothing and die with the connection.
    std::lock_guard<std::mutex> lock(retired_mu_);
    retired_sessions_.push_back(std::move(it->second->session));
  }
  w.conns.erase(it);
  DELTAMON_OBS_GAUGE_SET(
      "net.connections_active",
      active_conns_.fetch_sub(1, std::memory_order_relaxed) - 1);
}

void Server::SweepIdle(Worker& w) {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<int> expired;
  for (const auto& [fd, conn] : w.conns) {
    if (now - conn->last_active > limit) expired.push_back(fd);
  }
  for (int fd : expired) {
    DELTAMON_OBS_COUNT("net.idle_closed", 1);
    CloseConn(w, fd);
  }
}

void Server::DrainAndCloseAll(Worker& w) {
  // Best-effort flush of pending replies: the statement that produced
  // them already ran, the client deserves the bytes. Bounded, so a dead
  // peer cannot stall shutdown.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(1);
  for (auto& [fd, conn] : w.conns) {
    while (!conn->out.empty() &&
           std::chrono::steady_clock::now() < deadline) {
      ssize_t n = ::write(fd, conn->out.data(), conn->out.size());
      if (n > 0) {
        DELTAMON_OBS_COUNT("net.bytes_out", n);
        conn->bytes_sent_total += static_cast<uint64_t>(n);
        conn->out.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{fd, POLLOUT, 0};
        ::poll(&pfd, 1, 50);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;
    }
  }
  std::vector<int> fds;
  fds.reserve(w.conns.size());
  for (const auto& [fd, conn] : w.conns) fds.push_back(fd);
  for (int fd : fds) CloseConn(w, fd);
  // Late arrivals the accept loop queued before it stopped.
  std::lock_guard<std::mutex> lock(w.mu);
  for (int fd : w.pending) CloseFd(fd);
  w.pending.clear();
}

}  // namespace deltamon::net
