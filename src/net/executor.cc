#include "net/executor.h"

#include <chrono>
#include <optional>
#include <shared_mutex>
#include <utility>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace deltamon::net {

Result<amosql::QueryResult> Executor::Execute(amosql::Session& session,
                                              const std::string& source,
                                              obs::RequestRecord* record) {
  const auto start = std::chrono::steady_clock::now();
  Result<amosql::QueryResult> result = [&]() -> Result<amosql::QueryResult> {
    // Attached sessions lock at the leaf (engine gate + commit queue) and
    // run concurrently here. The mutex serializes legacy sessions, and —
    // because slow-statement capture swaps the process-global trace sink —
    // everyone while the threshold is armed.
    const uint64_t slow_ns = obs::SlowLog::Global().threshold_ns();
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    if (session.transaction_manager() == nullptr || slow_ns > 0) lock.lock();
    if (record == nullptr) return amosql::ExecuteStatement(session, source);

    record->dequeue_ns = obs::MonotonicNowNs();
    DELTAMON_OBS_RECORD("net.queue_wait_ns",
                        record->dequeue_ns - record->enqueue_ns);
    // Every span the statement produces — check phase, waves, clause
    // evaluations, on any propagation worker thread — carries this id.
    // (The installed id is process-global; concurrent statements may
    // cross-attribute spans, which the flight recorder tolerates.)
    obs::ScopedTraceId trace_scope(record->context.trace_id);
    amosql::StatementOptions options;
    options.context = &record->context;

    // Slow-statement capture: with the threshold armed, spans go into a
    // private ring and every literal is profiled, so an over-threshold
    // statement's full evidence is already in hand when it finishes. The
    // executor mutex (held unconditionally in this mode, see above) makes
    // the process-global sink swap safe — no other statement emits while
    // we hold it. Threshold 0 (the default) skips all of this: one
    // relaxed load per statement.
    std::optional<obs::RingTraceSink> ring;
    obs::Profile profile;
    obs::TraceSink* previous = nullptr;
    if (slow_ns > 0) {
      ring.emplace(/*capacity=*/65536);
      previous = obs::GetTraceSink();
      obs::SetTraceSink(&*ring);
      options.profiler = &profile;
    }
    // If this statement batch commits, the snapshot's last_commit changes
    // batch id; diffing it across execution tells us whether (and in which
    // wave) this request's transaction committed.
    const uint64_t batch_before = session.txn_snapshot().last_commit.batch_id;
    Result<amosql::QueryResult> r =
        amosql::ExecuteStatement(session, source, options);
    record->exec_end_ns = obs::MonotonicNowNs();
    const uint64_t exec_ns = record->exec_end_ns - record->dequeue_ns;
    DELTAMON_OBS_RECORD("net.exec_ns", exec_ns);
    const auto& commit = session.txn_snapshot().last_commit;
    if (session.transaction_manager() != nullptr &&
        commit.batch_id != batch_before) {
      record->commit_version = commit.version;
      record->commit_batch = commit.batch_id;
      record->commit_batch_size = commit.batch_size;
      record->commit_queue_wait_ns = commit.queue_wait_ns;
      record->commit_check_ns = commit.check_ns;
    }
    if (slow_ns > 0) {
      obs::SetTraceSink(previous);
      if (exec_ns >= slow_ns) {
        obs::SlowRecord slow;
        slow.context = record->context;
        slow.statement = source;
        slow.ok = r.ok();
        slow.elapsed_ns = exec_ns;
        slow.span_tree = obs::FormatSpanTree(ring->events());
        slow.chrome_trace = obs::ChromeTraceJson(ring->events());
        slow.profile_text = profile.Format(/*include_time=*/true);
        slow.profile_json = profile.ToJson();
        obs::SlowLog::Global().Record(std::move(slow));
      }
    }
    record->ok = r.ok();
    return r;
  }();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  DELTAMON_OBS_COUNT("net.statements_served", 1);
  if (!result.ok()) DELTAMON_OBS_COUNT("net.statement_errors", 1);
  DELTAMON_OBS_RECORD(
      "net.statement_latency_ns",
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  return result;
}

Result<std::string> Executor::NetworkDot(const std::string& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  // Lock order everywhere is executor mutex, then engine gate: statements
  // under the mutex (legacy / slow-capture) take the gate inside the
  // session, so taking the gate here cannot deadlock against them.
  std::unique_lock<std::shared_mutex> gate(engine_.txn.engine_mutex());
  DELTAMON_ASSIGN_OR_RETURN(const core::PropagationNetwork* net,
                            engine_.rules.network());
  if (net == nullptr) {
    return Status::NotFound("propagation network is empty: no active rules");
  }
  const Catalog& catalog = engine_.db.catalog();
  std::vector<RelationId> roots;
  if (rule.empty()) {
    roots.push_back(kInvalidRelationId);  // the whole network
  } else {
    DELTAMON_ASSIGN_OR_RETURN(rules::RuleId id, engine_.rules.FindRule(rule));
    DELTAMON_ASSIGN_OR_RETURN(roots, engine_.rules.MonitoredConditions(id));
  }
  std::string out;
  for (RelationId root : roots) out += net->ToDot(catalog, root);
  return out;
}

}  // namespace deltamon::net
