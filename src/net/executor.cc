#include "net/executor.h"

#include <chrono>

#include "obs/metrics.h"

namespace deltamon::net {

Result<amosql::QueryResult> Executor::Execute(amosql::Session& session,
                                              const std::string& source) {
  const auto start = std::chrono::steady_clock::now();
  Result<amosql::QueryResult> result = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    return amosql::ExecuteStatement(session, source);
  }();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  DELTAMON_OBS_COUNT("net.statements_served", 1);
  if (!result.ok()) DELTAMON_OBS_COUNT("net.statement_errors", 1);
  DELTAMON_OBS_RECORD(
      "net.statement_latency_ns",
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  return result;
}

}  // namespace deltamon::net
