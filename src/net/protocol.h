#ifndef DELTAMON_NET_PROTOCOL_H_
#define DELTAMON_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace deltamon::net {

/// The deltamond wire protocol, version 1 (spec: docs/server.md).
///
/// Every frame is
///
///   [u32 big-endian payload length][1 type byte][body]
///
/// where the length counts the type byte plus the body. The payload is
/// text (AMOSQL in, result sets out); the length prefix is the only
/// binary part, so a frame is self-delimiting regardless of what the
/// statement or report text contains.
inline constexpr uint8_t kProtocolVersion = 1;

/// Optional second HELLO body byte: capability flags. A one-byte HELLO
/// (version only) is the original handshake and stays byte-identical, so
/// old clients and the loopback identity tests are unaffected; a two-byte
/// HELLO is [version][flags]. Unknown flag bits are ignored by the server.
inline constexpr uint8_t kHelloFlagTraceInfo = 0x1;  ///< append "-- trace"
                                                     ///< lines to reports

/// Frames above this payload size are rejected with an ERR frame and the
/// connection is closed (a torn length prefix cannot be resynchronized).
inline constexpr size_t kDefaultMaxFrameSize = 4u << 20;

/// Bytes of length prefix preceding every payload.
inline constexpr size_t kFrameHeaderSize = 4;

enum class FrameType : uint8_t {
  // client -> server
  kHello = 'H',  ///< body: [version byte][optional flags byte]; first frame
  kQuery = 'Q',  ///< body: AMOSQL text (one or more ';'-terminated statements)
  // server -> client
  kOk = 'O',     ///< body: report text (possibly empty); no result rows
  kError = 'E',  ///< body: error message
  kRows = 'R',   ///< body: "<n>\n" + n row lines + report text (see codec)
  kMore = 'M',   ///< continuation: partial reply body, terminal frame follows
  kAborted = 'A',  ///< body: conflict message; the transaction was aborted
                   ///< by first-committer-wins validation and is retryable:
                   ///< re-send the whole transaction (its writes were
                   ///< discarded, the session is back in autocommit state)
};

struct Frame {
  FrameType type;
  std::string body;
};

/// A reply reassembled from MORE continuations may not exceed this many
/// body bytes; the client aborts the connection past it rather than
/// buffering without bound against a corrupt or malicious server.
inline constexpr size_t kMaxReplyBytes = 1u << 30;

/// Appends one encoded frame to the output buffer `out`. The payload
/// (type byte + body) must fit the u32 length prefix; a body at or above
/// 4 GiB aborts the process rather than silently truncating the length
/// and desynchronizing the stream. Reply paths that can carry large
/// bodies must go through AppendReply, which never hits the limit.
void AppendFrame(std::string* out, FrameType type, std::string_view body);

/// Appends one logical reply, split into as many frames as needed so
/// every frame's payload fits `max_frame_size`: zero or more MORE
/// continuation frames carrying body chunks, then the terminal frame of
/// `type` with the final chunk. The receiver concatenates bodies in
/// order; a body that fits emits exactly one frame (no MORE).
void AppendReply(std::string* out, FrameType type, std::string_view body,
                 size_t max_frame_size);

/// ROWS body codec: decimal row count, '\n', each row on its own line,
/// then the report text verbatim (which may itself contain newlines —
/// it is everything after the counted rows).
std::string EncodeRows(const std::vector<std::string>& rows,
                       std::string_view report);
Status DecodeRows(std::string_view body, std::vector<std::string>* rows,
                  std::string* report);

/// Incremental frame decoder for a byte stream: Feed() whatever arrived
/// (partial frames, several pipelined frames, a torn length prefix — any
/// split is fine), then Pop() complete frames until kNeedMore.
///
/// A frame whose declared payload length is zero (no type byte) or above
/// the size limit poisons the parser: Pop() returns kError from then on
/// and error() says why. There is no resynchronization — the connection
/// must be closed, since the stream position of the next frame is unknown.
class FrameParser {
 public:
  explicit FrameParser(size_t max_frame_size = kDefaultMaxFrameSize)
      : max_frame_size_(max_frame_size) {}

  void Feed(const char* data, size_t n);
  void Feed(std::string_view data) { Feed(data.data(), data.size()); }

  enum class Next { kFrame, kNeedMore, kError };
  Next Pop(Frame* out);

  /// Set iff Pop() returned kError.
  const Status& error() const { return error_; }

  /// Bytes fed but not yet consumed by popped frames.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  size_t max_frame_size_;
  std::string buffer_;
  size_t consumed_ = 0;
  Status error_;
  bool failed_ = false;
};

}  // namespace deltamon::net

#endif  // DELTAMON_NET_PROTOCOL_H_
