#include "delta/delta_set.h"

#include <ostream>

namespace deltamon {

void DeltaSet::ApplyInsert(const Tuple& t) {
  if (minus_.erase(t) == 0) plus_.insert(t);
}

void DeltaSet::ApplyDelete(const Tuple& t) {
  if (plus_.erase(t) == 0) minus_.insert(t);
}

void DeltaSet::DeltaUnion(const DeltaSet& other) {
  *this = deltamon::DeltaUnion(*this, other);
}

DeltaSet DeltaUnion(const DeltaSet& a, const DeltaSet& b) {
  TupleSet plus;
  TupleSet minus;
  plus.reserve(a.plus().size() + b.plus().size());
  minus.reserve(a.minus().size() + b.minus().size());
  // (Δ+1 − Δ−2) ∪ (Δ+2 − Δ−1)
  for (const Tuple& t : a.plus()) {
    if (!b.minus().contains(t)) plus.insert(t);
  }
  for (const Tuple& t : b.plus()) {
    if (!a.minus().contains(t)) plus.insert(t);
  }
  // (Δ−1 − Δ+2) ∪ (Δ−2 − Δ+1)
  for (const Tuple& t : a.minus()) {
    if (!b.plus().contains(t)) minus.insert(t);
  }
  for (const Tuple& t : b.minus()) {
    if (!a.plus().contains(t)) minus.insert(t);
  }
  // Disjointness of the result follows from disjointness of the inputs:
  // if t lands in `plus` via Δ+1 then t ∉ Δ−1, which blocks both minus
  // clauses, and symmetrically for Δ+2.
  return DeltaSet(std::move(plus), std::move(minus));
}

std::string DeltaSet::ToString() const {
  return "<" + TupleSetToString(plus_) + ", " + TupleSetToString(minus_) + ">";
}

TupleSet RollbackToOldState(const TupleSet& new_state, const DeltaSet& delta) {
  TupleSet old_state;
  old_state.reserve(new_state.size() + delta.minus().size());
  old_state.insert(new_state.begin(), new_state.end());
  for (const Tuple& t : delta.minus()) old_state.insert(t);
  for (const Tuple& t : delta.plus()) old_state.erase(t);
  return old_state;
}

TupleSet ApplyDelta(const TupleSet& old_state, const DeltaSet& delta) {
  TupleSet new_state;
  new_state.reserve(old_state.size() + delta.plus().size());
  new_state.insert(old_state.begin(), old_state.end());
  for (const Tuple& t : delta.plus()) new_state.insert(t);
  for (const Tuple& t : delta.minus()) new_state.erase(t);
  return new_state;
}

DeltaSet DiffStates(const TupleSet& old_state, const TupleSet& new_state) {
  // No reserve: the diff is usually a small fraction of the states (the
  // few-changes regime), so pre-sizing to the state would waste memory.
  TupleSet plus;
  TupleSet minus;
  for (const Tuple& t : new_state) {
    if (!old_state.contains(t)) plus.insert(t);
  }
  for (const Tuple& t : old_state) {
    if (!new_state.contains(t)) minus.insert(t);
  }
  return DeltaSet(std::move(plus), std::move(minus));
}

std::ostream& operator<<(std::ostream& os, const DeltaSet& d) {
  return os << d.ToString();
}

}  // namespace deltamon
