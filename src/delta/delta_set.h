#ifndef DELTAMON_DELTA_DELTA_SET_H_
#define DELTAMON_DELTA_DELTA_SET_H_

#include <iosfwd>
#include <string>

#include "common/tuple.h"

namespace deltamon {

/// A Δ-set <Δ+S, Δ−S> for some monitored set S (paper §4.1, §4.5): the
/// disjoint pair of tuples added to and removed from S over a period of
/// time (a transaction, or one wave of the propagation algorithm).
///
/// Invariant: plus() and minus() are disjoint. The mutating operations
/// below all preserve disjointness, implementing the "logical event"
/// semantics of the paper: physical insert/delete events that cancel out
/// leave no trace (§4.1 min_stock example).
class DeltaSet {
 public:
  DeltaSet() = default;
  DeltaSet(TupleSet plus, TupleSet minus)
      : plus_(std::move(plus)), minus_(std::move(minus)) {}

  const TupleSet& plus() const { return plus_; }
  const TupleSet& minus() const { return minus_; }

  bool empty() const { return plus_.empty() && minus_.empty(); }
  size_t size() const { return plus_.size() + minus_.size(); }
  void Clear() {
    plus_.clear();
    minus_.clear();
  }

  /// Folds one physical insertion event into the Δ-set: cancels a pending
  /// deletion of `t` if present, otherwise records the insertion. This is
  /// ∪Δ with the singleton <{t},{}> applied in event order.
  void ApplyInsert(const Tuple& t);

  /// Folds one physical deletion event (the dual of ApplyInsert).
  void ApplyDelete(const Tuple& t);

  /// In-place delta-union `*this = *this ∪Δ other` (paper §4.5):
  ///   <(Δ+1 − Δ−2) ∪ (Δ+2 − Δ−1), (Δ−1 − Δ+2) ∪ (Δ−2 − Δ+1)>
  /// ∪Δ is not commutative under set semantics (§7.2), so callers must
  /// accumulate partial differentials in the order the changes occurred.
  void DeltaUnion(const DeltaSet& other);

  /// Drops from Δ+ every tuple already true in the old state, and from Δ−
  /// every tuple still true in the new state (§7.2 strict-semantics
  /// filters). `derivable_old` / `derivable_new` are membership point
  /// queries against the monitored relation. Either may be null to skip
  /// that side's filter (nervous semantics skips the positive filter; the
  /// negative filter must never be skipped when deletions are propagated,
  /// or rules under-react).
  template <typename OldPred, typename NewPred>
  void FilterStrict(const OldPred* derivable_old, const NewPred* derivable_new) {
    if (derivable_old != nullptr) {
      for (auto it = plus_.begin(); it != plus_.end();) {
        it = (*derivable_old)(*it) ? plus_.erase(it) : std::next(it);
      }
    }
    if (derivable_new != nullptr) {
      for (auto it = minus_.begin(); it != minus_.end();) {
        it = (*derivable_new)(*it) ? minus_.erase(it) : std::next(it);
      }
    }
  }

  bool operator==(const DeltaSet& other) const {
    return plus_ == other.plus_ && minus_ == other.minus_;
  }

  /// "<{...}, {...}>".
  std::string ToString() const;

 private:
  TupleSet plus_;
  TupleSet minus_;
};

/// Pure delta-union of two Δ-sets (paper §4.1): the net logical change of
/// applying `a` then `b`.
DeltaSet DeltaUnion(const DeltaSet& a, const DeltaSet& b);

/// Logical rollback (paper §4, fig. 3): reconstructs the old state of a set
/// from its new state and its accumulated Δ-set,
///   S_old = (S_new ∪ Δ−S) − Δ+S.
TupleSet RollbackToOldState(const TupleSet& new_state, const DeltaSet& delta);

/// The forward direction: S_new = (S_old ∪ Δ+S) − Δ−S. Used by tests and
/// by the naive monitor to advance its materialized snapshot.
TupleSet ApplyDelta(const TupleSet& old_state, const DeltaSet& delta);

/// The net Δ-set between two explicit states: <new − old, old − new>
/// (paper §4.1: Δ+B = B − B_old, Δ−B = B_old − B). This is what the naive
/// monitor computes by recomputation, and what the incremental propagation
/// must reproduce.
DeltaSet DiffStates(const TupleSet& old_state, const TupleSet& new_state);

/// Streams d.ToString() (also makes gtest failures readable).
std::ostream& operator<<(std::ostream& os, const DeltaSet& d);

}  // namespace deltamon

#endif  // DELTAMON_DELTA_DELTA_SET_H_
