#include "rules/wave_replay.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace deltamon::rules {

std::string WaveReplayReport::ToString() const {
  std::string out = "REPLAY " + std::to_string(waves_checked) + " waves, " +
                    std::to_string(commits) + " commits: ";
  if (ok()) {
    out += "identical\n";
    return out;
  }
  out += std::to_string(mismatches.size()) + " mismatches\n";
  for (const std::string& m : mismatches) out += m;
  return out;
}

Result<WaveReplayReport> ReplayWaves(
    Database& db, RuleManager& rules,
    const std::vector<obs::WaveRecord>& recorded) {
  WaveReplayReport report;
  if (recorded.empty()) return report;
  if (!DELTAMON_OBS_ENABLED) {
    return Status::FailedPrecondition(
        "replay: observability disabled (built with DELTAMON_OBS=OFF)");
  }
  if (recorded.front().round != 1) {
    return Status::FailedPrecondition(
        "replay: wave file starts mid-check-phase (round " +
        std::to_string(recorded.front().round) +
        "); the capture ring overflowed — re-record with a larger ring");
  }

  obs::GlobalWaveRecorder().Clear();
  rules.SetWaveCaptureEnabled(true);

  for (size_t i = 0; i < recorded.size(); ++i) {
    if (recorded[i].round != 1) continue;
    for (const obs::WaveRelationDelta& delta : recorded[i].influents) {
      DELTAMON_ASSIGN_OR_RETURN(RelationId rel,
                                db.catalog().FindRelation(delta.relation));
      for (const Tuple& t : delta.plus) {
        DELTAMON_RETURN_IF_ERROR(db.Insert(rel, t));
      }
      for (const Tuple& t : delta.minus) {
        DELTAMON_RETURN_IF_ERROR(db.Delete(rel, t));
      }
    }
    DELTAMON_RETURN_IF_ERROR(db.Commit());
    ++report.commits;
  }

  rules.SetWaveCaptureEnabled(false);
  const std::vector<obs::WaveRecord> replayed =
      obs::GlobalWaveRecorder().Snapshot();

  if (replayed.size() != recorded.size()) {
    report.mismatches.push_back(
        "  wave count diverged: recorded " +
        std::to_string(recorded.size()) + ", replay produced " +
        std::to_string(replayed.size()) + "\n");
  }
  const size_t n = std::min(recorded.size(), replayed.size());
  for (size_t i = 0; i < n; ++i) {
    const std::string want = recorded[i].OutcomeJson().Dump();
    const std::string got = replayed[i].OutcomeJson().Dump();
    ++report.waves_checked;
    if (want == got) continue;
    report.mismatches.push_back("  wave " + std::to_string(i) +
                                " diverged\n  recorded:\n" + want +
                                "  replayed:\n" + got);
  }
  return report;
}

}  // namespace deltamon::rules
