#ifndef DELTAMON_RULES_WAVE_REPLAY_H_
#define DELTAMON_RULES_WAVE_REPLAY_H_

#include <string>
#include <vector>

#include "obs/wave_recorder.h"
#include "rules/rule_manager.h"
#include "storage/database.h"

namespace deltamon::rules {

/// Result of replaying a captured wave file against a rebuilt engine.
struct WaveReplayReport {
  size_t waves_checked = 0;  ///< captured records compared
  size_t commits = 0;        ///< check phases driven (round-1 groups)
  /// One rendered diff per divergent record; empty means the replay was
  /// bit-identical.
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
  std::string ToString() const;
};

/// Replays `recorded` (a parsed `deltamon.wave.v1` file, oldest first)
/// against a database + rule manager already holding the schema, rules and
/// pre-wave state the file was captured from, and compares outcomes.
///
/// Mechanics: records are grouped into check phases at every `round == 1`
/// record; only that first record's influent Δ-sets are applied (raw
/// Insert/Delete on the base relations, resolved by name), then one
/// Commit() drives the deferred check phase — later rounds are produced by
/// the replayed rule actions themselves, so applying their influents too
/// would double them. The global wave recorder is cleared, force-enabled,
/// and re-captures the replay; record `i` is compared to recorded record
/// `i` by WaveRecord::OutcomeJson (round, influents, roots, firings —
/// settings and identity stamps excluded), byte-for-byte. The caller may
/// override threads/kernels on the rule manager first; outcomes must not
/// change (the determinism contract this tool certifies).
Result<WaveReplayReport> ReplayWaves(
    Database& db, RuleManager& rules,
    const std::vector<obs::WaveRecord>& recorded);

}  // namespace deltamon::rules

#endif  // DELTAMON_RULES_WAVE_REPLAY_H_
