#ifndef DELTAMON_RULES_RULE_MANAGER_H_
#define DELTAMON_RULES_RULE_MANAGER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/network.h"
#include "core/propagator.h"
#include "objectlog/registry.h"
#include "obs/provenance.h"
#include "obs/wave_recorder.h"
#include "storage/database.h"

namespace deltamon::rules {

using RuleId = uint32_t;
inline constexpr RuleId kInvalidRuleId = 0;

/// Rule execution semantics (paper §3.2). Strict: the action runs only for
/// instances whose condition turned from false to true in this transaction.
/// Nervous: the rule may also fire for instances that were already true
/// (over-reaction is tolerated; under-reaction never is).
enum class Semantics { kStrict, kNervous };

/// How rule conditions are monitored (paper §6 compares the first two;
/// §8 sketches the hybrid as future work).
enum class MonitorMode {
  kIncremental,  ///< partial differencing + propagation network
  kNaive,        ///< full recomputation + diff against a materialized
                 ///< previous extent
  kHybrid,       ///< per-round choice by estimated change volume
};

/// A set-oriented rule action (paper §1: "Set-oriented action execution is
/// supported since data can be passed from the condition to the action"):
/// invoked once per firing with the activation parameters and every
/// instance for which the condition became true, in sorted order.
using RuleAction = std::function<Status(
    Database& db, const Tuple& params, const std::vector<Tuple>& instances)>;

struct RuleOptions {
  Semantics semantics = Semantics::kStrict;
  /// Conflict resolution picks the triggered rule with the highest
  /// priority (ties: earliest activation).
  int priority = 0;
  /// Whether Δ− is propagated up to this rule's condition. Defaults to
  /// true for strict semantics (needed so net changes cancel across rule
  /// processing rounds) and false for nervous semantics (the paper's
  /// insertions-only optimization; negation inside the condition still
  /// forces the needed negative differentials below it).
  std::optional<bool> propagate_deletions;
  /// Number of leading condition columns that are rule parameters, bound
  /// at activation time (paper §3.1: "rules are activated and deactivated
  /// separately for different parameters").
  size_t num_params = 0;
};

/// Statistics for the most recent check phase.
struct CheckStats {
  size_t rounds = 0;
  size_t rule_firings = 0;
  size_t naive_recomputations = 0;
  size_t incremental_waves = 0;
  core::PropagationResult::Stats propagation;  // summed over waves

  void Reset() { *this = CheckStats{}; }
};

/// The active-rule engine: owns rules and their activations, maintains the
/// propagation network over all activated conditions, and implements the
/// deferred check phase invoked at Commit() (paper §3: "condition
/// evaluation is delayed until a check phase usually at commit time").
class RuleManager {
 public:
  /// Installs itself as `db`'s check phase.
  RuleManager(Database& db, objectlog::DerivedRegistry& registry);
  RuleManager(const RuleManager&) = delete;
  RuleManager& operator=(const RuleManager&) = delete;

  /// --- Rule definition and activation ----------------------------------

  /// Registers a CA rule. `condition` must be a derived relation defined
  /// in the registry; its first options.num_params columns are parameters.
  Result<RuleId> CreateRule(const std::string& name, RelationId condition,
                            RuleAction action, RuleOptions options = {});

  /// Activates a rule; `params` binds the leading parameter columns (must
  /// match options.num_params; pass {} for parameterless rules). Repeated
  /// activation with the same parameters is an error.
  Status Activate(RuleId rule, const Tuple& params = {});

  /// Deactivates the activation with the given parameters.
  Status Deactivate(RuleId rule, const Tuple& params = {});

  Result<RuleId> FindRule(const std::string& name) const;

  /// --- Monitoring configuration -----------------------------------------

  /// Switching modes invalidates maintained condition extents (they are
  /// only kept current by the mode that owns them); the next affected
  /// round rebuilds them from the rolled-back old state.
  void SetMode(MonitorMode mode);
  MonitorMode mode() const { return mode_; }

  /// Derived relations to keep as shared intermediate nodes instead of
  /// expanding (§7.1 node sharing). Takes effect on the next network
  /// rebuild (i.e. the next activation change or explicit rebuild).
  void SetNetworkOptions(core::BuildOptions options);

  /// Hybrid mode's default cost model switches to naive recomputation when
  /// the round's changed tuples exceed half the total size of the monitored
  /// influent relations (the crossover observed in bench/hybrid_crossover).
  /// This sets an absolute override instead: naive whenever more than
  /// `tuples` base tuples changed. Pass std::nullopt to restore the model.
  void SetHybridThreshold(std::optional<size_t> tuples) {
    hybrid_threshold_ = tuples;
  }

  /// Maximum rule-processing rounds per check phase before reporting a
  /// non-terminating rule set.
  void SetMaxRounds(size_t rounds) { max_rounds_ = rounds; }

  /// Worker threads for incremental propagation waves (level-synchronous
  /// parallelism; see PropagationOptions and docs/parallelism.md). 1 (the
  /// default) is the serial algorithm; 0 means hardware concurrency.
  /// Results are identical at any setting. The pool is kept alive across
  /// check phases, so waves only pay a wake-up, not thread creation.
  void SetNumThreads(size_t num_threads);
  size_t num_threads() const { return num_threads_; }

  /// Batch evaluation kernels for incremental waves (columnar Δ-tables,
  /// build–probe hash joins, semi-join pre-filters; docs/kernels.md).
  /// On by default; results are identical either way — only execution
  /// strategy (and the per-literal `access` labels in profiles) changes.
  /// Exposed in AMOSQL as `set kernels on|off`.
  void SetKernelsEnabled(bool on) { kernels_enabled_ = on; }
  bool kernels_enabled() const { return kernels_enabled_; }

  /// The per-worker evaluation caches persisted across incremental waves
  /// (retained indexed extents; see EvalCache::BeginWave). Exposed for the
  /// retention regression tests.
  const std::vector<objectlog::EvalCache>& eval_caches() const {
    return eval_caches_;
  }

  /// Attaches a per-literal profiler for subsequent check-phase work:
  /// incremental waves pass it through PropagationOptions (per-worker
  /// profiles, serial merge — bit-identical at any thread count); naive
  /// recomputations and activation-time materializations attach it to
  /// their evaluator directly. Owned by the caller; nullptr detaches.
  void SetProfiler(obs::Profile* profiler) { profiler_ = profiler; }

  /// The profiler attached for the current check phase (null when
  /// detached). Rule actions read this instead of caching session state:
  /// under group commit the check phase — and thus any action — may run on
  /// the commit leader's thread on behalf of another session, and only the
  /// manager knows whose profile (if any) is armed for this wave.
  obs::Profile* profiler() const { return profiler_; }

  /// Row-level firing provenance (`set provenance on|off`): incremental
  /// waves capture delta lineage (PropagationOptions::lineage) and every
  /// firing records its instances' lineage trees — stamped with the
  /// current trace id and commit version — into the global ProvenanceLog
  /// behind `explain firing` / /debug/provenance. Forced off when
  /// observability is compiled out (the session layer reports the error);
  /// off (the default) adds zero work to the check phase.
  void SetProvenanceEnabled(bool on) {
    provenance_enabled_ = on && DELTAMON_OBS_ENABLED != 0;
    obs::GlobalProvenanceLog().set_enabled(provenance_enabled_);
  }
  bool provenance_enabled() const { return provenance_enabled_; }

  /// Wave capture (`set wave_capture on|off`): every incremental round is
  /// snapshotted — influent Δ-sets, settings, net root Δ-sets, firings —
  /// into the global WaveRecorder behind `dump waves` / /debug/waves,
  /// replayable by tools/deltamon-replay. Forced off when observability is
  /// compiled out.
  void SetWaveCaptureEnabled(bool on) {
    wave_capture_enabled_ = on && DELTAMON_OBS_ENABLED != 0;
    obs::GlobalWaveRecorder().set_enabled(wave_capture_enabled_);
  }
  bool wave_capture_enabled() const { return wave_capture_enabled_; }

  /// Commit version the current check phase runs on behalf of. Like the
  /// profiler, this is attach/detach state owned by the commit leader: the
  /// txn manager pre-assigns versions during validation, stamps the wave's
  /// version here before CheckPhase and clears it (0) after, so provenance
  /// and wave records carry the exact version a firing became visible at.
  void SetCommitVersion(uint64_t version) { commit_version_ = version; }

  /// Delta lineage accumulated over the last check phase's incremental
  /// waves (empty unless provenance is enabled). Exposed for the
  /// determinism tests; `explain firing` reads the pre-rendered trees in
  /// the ProvenanceLog instead.
  const core::WaveLineage& last_lineage() const { return lineage_; }

  /// PF-style evaluation (paper §2 contrast): keep every derived network
  /// node's extent materialized and incrementally maintained, so partial
  /// differentials read stored (indexed) views instead of re-deriving
  /// sub-conditions. Costs residency (see
  /// CheckStats::propagation.materialized_resident_tuples) and forces
  /// deletion propagation; only honored in kIncremental mode. Most useful
  /// together with §7.1 node sharing (bushy networks).
  void SetMaterializeIntermediates(bool on);

  /// --- Introspection -----------------------------------------------------

  /// The current propagation network (rebuilt lazily); null when nothing
  /// is activated.
  Result<const core::PropagationNetwork*> network();

  /// The condition relations currently monitored for `rule` — one per
  /// activation (parameterized activations monitor specialized conditions),
  /// or the rule's base condition when it has no activations. Used by
  /// `show network <rule>` to pick the subgraph roots.
  Result<std::vector<RelationId>> MonitoredConditions(RuleId rule) const;

  const CheckStats& last_check() const { return last_check_; }
  /// Executed differentials of the last check phase, for explainability.
  const std::vector<core::TraceEntry>& last_trace() const {
    return last_trace_;
  }
  /// Which influents caused `rule`'s condition to change in the last check
  /// phase, e.g. "Δ+cnd_monitor_items/Δ+quantity: 1 -> 1 tuples".
  std::vector<std::string> ExplainLastTrigger(RuleId rule) const;

  /// The deferred check phase; installed into the Database at
  /// construction. Public for tests.
  Status CheckPhase(Database& db);

 private:
  struct Rule {
    RuleId id = kInvalidRuleId;
    std::string name;
    RelationId condition = kInvalidRelationId;
    RuleAction action;
    RuleOptions options;
  };

  struct Activation {
    uint32_t id = 0;
    RuleId rule = kInvalidRuleId;
    Tuple params;
    /// The (possibly parameter-specialized) condition relation monitored
    /// for this activation.
    RelationId condition = kInvalidRelationId;
    /// Base relations this condition depends on.
    std::vector<RelationId> influents;
    /// Net condition changes accumulated across rounds of the current
    /// check phase (∪Δ), so only logical (net) changes fire the rule.
    DeltaSet pending;
    /// Naive monitor state: the materialized previous condition extent.
    TupleSet naive_extent;
    bool naive_extent_valid = false;
  };

  Status RebuildNetwork();
  /// Creates the specialized condition relation for (rule, params).
  Result<RelationId> SpecializeCondition(const Rule& rule,
                                         const Tuple& params);
  Activation* FindActivation(RuleId rule, const Tuple& params);
  /// Conflict resolution: among activations with non-empty pending Δ+,
  /// pick highest priority, then lowest activation id. Null if none.
  Activation* PickTriggered();

  Status RunIncrementalRound(
      Database& db, const std::unordered_map<RelationId, DeltaSet>& deltas);
  Status RunNaiveRound(
      Database& db, const std::unordered_map<RelationId, DeltaSet>& deltas);

  Database& db_;
  objectlog::DerivedRegistry& registry_;
  MonitorMode mode_ = MonitorMode::kIncremental;
  core::BuildOptions build_options_;
  std::optional<size_t> hybrid_threshold_;
  size_t max_rounds_ = 1000;
  size_t num_threads_ = 1;
  /// Sized to num_threads_; null while serial.
  std::unique_ptr<common::ThreadPool> pool_;
  bool kernels_enabled_ = true;
  /// Per-worker EvalCaches handed to every incremental wave via
  /// PropagationOptions::caches; retained entries survive across waves
  /// (and check phases) until their inputs change. Resized with the
  /// thread setting and cleared on network rebuilds.
  std::vector<objectlog::EvalCache> eval_caches_;

  RuleId next_rule_id_ = 1;
  uint32_t next_activation_id_ = 1;
  uint32_t specialization_counter_ = 0;
  std::unordered_map<RuleId, Rule> rules_;
  std::unordered_map<std::string, RuleId> rules_by_name_;
  std::vector<Activation> activations_;

  std::unique_ptr<core::PropagationNetwork> network_;
  bool network_dirty_ = false;
  bool materialize_intermediates_ = false;
  obs::Profile* profiler_ = nullptr;
  core::MaterializedViewStore view_store_;
  bool view_store_ready_ = false;
  bool provenance_enabled_ = false;
  bool wave_capture_enabled_ = false;
  uint64_t commit_version_ = 0;
  CheckStats last_check_;
  std::vector<core::TraceEntry> last_trace_;
  /// Merged lineage of the current/last check phase (see last_lineage()).
  core::WaveLineage lineage_;
  /// Net root Δ-sets of the last incremental round, kept for wave capture.
  std::unordered_map<RelationId, DeltaSet> last_round_roots_;
};

}  // namespace deltamon::rules

#endif  // DELTAMON_RULES_RULE_MANAGER_H_
