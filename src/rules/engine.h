#ifndef DELTAMON_RULES_ENGINE_H_
#define DELTAMON_RULES_ENGINE_H_

#include "objectlog/registry.h"
#include "rules/rule_manager.h"
#include "storage/database.h"
#include "txn/manager.h"

namespace deltamon {

/// Convenience aggregate wiring a database, the derived-relation registry,
/// the rule manager, and the transaction manager together — the full
/// active-DBMS stack. Most programs (and the AMOSQL session) build on this.
///
///   Engine engine;
///   engine.db.catalog().CreateType("item");
///   ... define functions and clauses ...
///   engine.rules.CreateRule(...); engine.rules.Activate(...);
///   ... updates ...
///   engine.db.Commit();   // deferred check phase runs here
///
/// Single-threaded programs can keep using the database directly, exactly
/// as above; `txn` only participates when sessions attach to it (the
/// network server does), giving each session an optimistic transaction
/// with snapshot reads and group-committed check phases.
struct Engine {
  Engine() : rules(db, registry), txn(db, rules) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Database db;
  objectlog::DerivedRegistry registry;
  rules::RuleManager rules;
  txn::TransactionManager txn;
};

}  // namespace deltamon

#endif  // DELTAMON_RULES_ENGINE_H_
