#ifndef DELTAMON_RULES_ENGINE_H_
#define DELTAMON_RULES_ENGINE_H_

#include "objectlog/registry.h"
#include "rules/rule_manager.h"
#include "storage/database.h"

namespace deltamon {

/// Convenience aggregate wiring a database, the derived-relation registry,
/// and the rule manager together — the full active-DBMS stack. Most
/// programs (and the AMOSQL session) build on this.
///
///   Engine engine;
///   engine.db.catalog().CreateType("item");
///   ... define functions and clauses ...
///   engine.rules.CreateRule(...); engine.rules.Activate(...);
///   ... updates ...
///   engine.db.Commit();   // deferred check phase runs here
struct Engine {
  Engine() : rules(db, registry) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Database db;
  objectlog::DerivedRegistry registry;
  rules::RuleManager rules;
};

}  // namespace deltamon

#endif  // DELTAMON_RULES_ENGINE_H_
