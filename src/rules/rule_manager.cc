#include "rules/rule_manager.h"

#include <algorithm>
#include <thread>

#include "objectlog/eval.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace deltamon::rules {

using objectlog::Clause;
using objectlog::EvalState;
using objectlog::Literal;
using objectlog::Term;

namespace {

/// Replaces variable `var` with constant `value` everywhere in `clause`
/// (head tail and body). Used for parameterized activation.
void SubstituteVar(Clause& clause, int var, const Value& value) {
  auto subst = [var, &value](Term& t) {
    if (t.is_var() && t.var == var) t = Term::Const(value);
  };
  for (Term& t : clause.head_args) subst(t);
  for (Literal& l : clause.body) {
    for (Term& t : l.args) subst(t);
  }
}

/// Collects the base relations reachable from `rel` through derived
/// definitions — the influents whose updates must be monitored.
Status CollectBaseInfluents(RelationId rel,
                            const objectlog::DerivedRegistry& registry,
                            const Catalog& catalog,
                            std::unordered_set<RelationId>& seen,
                            std::vector<RelationId>& out) {
  if (!seen.insert(rel).second) return Status::OK();
  if (!catalog.IsDerived(rel)) {
    out.push_back(rel);  // stored or foreign: a monitored leaf
    return Status::OK();
  }
  const std::vector<Clause>* clauses = registry.GetClauses(rel);
  if (clauses == nullptr) {
    // Aggregate views depend on their source relation (§8 extension).
    const objectlog::AggregateDef* agg = registry.GetAggregate(rel);
    if (agg == nullptr) {
      return Status::NotFound("derived relation '" +
                              catalog.RelationName(rel) +
                              "' has no definition");
    }
    return CollectBaseInfluents(agg->source, registry, catalog, seen, out);
  }
  for (const Clause& clause : *clauses) {
    for (const Literal& lit : clause.body) {
      if (lit.kind != Literal::Kind::kRelation) continue;
      DELTAMON_RETURN_IF_ERROR(
          CollectBaseInfluents(lit.relation, registry, catalog, seen, out));
    }
  }
  return Status::OK();
}

/// Lineage trees are exported for at most this many instances per firing
/// (the FiringRecord's captured/total counts announce the truncation): a
/// bulk firing over thousands of instances must not render thousands of
/// trees into the bounded provenance ring.
constexpr size_t kMaxLineageInstances = 16;

/// A Δ-set as a wave-file fragment: rows sorted, so capture is
/// byte-deterministic at any thread count.
obs::WaveRelationDelta RenderWaveDelta(const std::string& name,
                                       const DeltaSet& delta) {
  obs::WaveRelationDelta out;
  out.relation = name;
  out.plus = SortedTuples(delta.plus());
  out.minus = SortedTuples(delta.minus());
  return out;
}

/// Non-empty Δ-sets of `deltas`, rendered and sorted by relation name.
std::vector<obs::WaveRelationDelta> RenderWaveDeltas(
    const std::unordered_map<RelationId, DeltaSet>& deltas,
    const Catalog& catalog) {
  std::vector<obs::WaveRelationDelta> out;
  for (const auto& [rel, delta] : deltas) {
    if (delta.empty()) continue;
    out.push_back(RenderWaveDelta(catalog.RelationName(rel), delta));
  }
  std::sort(out.begin(), out.end(),
            [](const obs::WaveRelationDelta& a,
               const obs::WaveRelationDelta& b) {
              return a.relation < b.relation;
            });
  return out;
}

}  // namespace

RuleManager::RuleManager(Database& db, objectlog::DerivedRegistry& registry)
    : db_(db), registry_(registry) {
  db_.SetCheckPhase([this](Database& d) { return CheckPhase(d); });
}

Result<RuleId> RuleManager::CreateRule(const std::string& name,
                                       RelationId condition, RuleAction action,
                                       RuleOptions options) {
  if (rules_by_name_.contains(name)) {
    return Status::AlreadyExists("rule '" + name + "' already exists");
  }
  if (!db_.catalog().IsDerived(condition) ||
      registry_.GetClauses(condition) == nullptr) {
    return Status::InvalidArgument(
        "rule condition must be a defined derived relation");
  }
  const FunctionSignature* sig = db_.catalog().GetSignature(condition);
  if (sig != nullptr && options.num_params > sig->arity()) {
    return Status::InvalidArgument("rule has more parameters than condition "
                                   "columns");
  }
  RuleId id = next_rule_id_++;
  rules_[id] = Rule{id, name, condition, std::move(action), options};
  rules_by_name_[name] = id;
  return id;
}

Result<RuleId> RuleManager::FindRule(const std::string& name) const {
  auto it = rules_by_name_.find(name);
  if (it == rules_by_name_.end()) {
    return Status::NotFound("rule '" + name + "' not found");
  }
  return it->second;
}

Result<std::vector<RelationId>> RuleManager::MonitoredConditions(
    RuleId rule) const {
  auto it = rules_.find(rule);
  if (it == rules_.end()) {
    return Status::NotFound("rule id " + std::to_string(rule) + " not found");
  }
  std::vector<RelationId> out;
  for (const Activation& act : activations_) {
    if (act.rule == rule) out.push_back(act.condition);
  }
  if (out.empty()) out.push_back(it->second.condition);
  return out;
}

Result<RelationId> RuleManager::SpecializeCondition(const Rule& rule,
                                                    const Tuple& params) {
  if (params.arity() != rule.options.num_params) {
    return Status::InvalidArgument(
        "rule '" + rule.name + "' expects " +
        std::to_string(rule.options.num_params) + " activation parameters, " +
        "got " + std::to_string(params.arity()));
  }
  if (params.empty()) return rule.condition;

  const std::vector<Clause>* clauses = registry_.GetClauses(rule.condition);
  const FunctionSignature* sig = db_.catalog().GetSignature(rule.condition);
  if (clauses == nullptr || sig == nullptr) {
    return Status::Internal("condition lost its definition");
  }
  // Specialized signature: the condition columns after the parameters.
  FunctionSignature spec_sig;
  std::vector<ColumnType> all_cols = sig->argument_types;
  all_cols.insert(all_cols.end(), sig->result_types.begin(),
                  sig->result_types.end());
  spec_sig.result_types.assign(all_cols.begin() +
                                   static_cast<long>(params.arity()),
                               all_cols.end());
  std::string spec_name = db_.catalog().RelationName(rule.condition) + "$" +
                          std::to_string(++specialization_counter_);
  DELTAMON_ASSIGN_OR_RETURN(
      RelationId spec,
      db_.catalog().CreateDerivedFunction(spec_name, std::move(spec_sig)));

  for (const Clause& original : *clauses) {
    Clause clause = original;
    clause.head_relation = spec;
    std::vector<Term> head = clause.head_args;
    clause.head_args.assign(head.begin() + static_cast<long>(params.arity()),
                            head.end());
    bool feasible = true;
    for (size_t i = 0; i < params.arity() && feasible; ++i) {
      const Term& h = head[i];
      if (h.is_var()) {
        SubstituteVar(clause, h.var, params[i]);
      } else {
        feasible = h.constant == params[i];
      }
    }
    if (!feasible) continue;  // constant head incompatible with params
    DELTAMON_RETURN_IF_ERROR(
        registry_.Define(spec, std::move(clause), db_.catalog()));
  }
  return spec;
}

RuleManager::Activation* RuleManager::FindActivation(RuleId rule,
                                                     const Tuple& params) {
  for (Activation& act : activations_) {
    if (act.rule == rule && act.params == params) return &act;
  }
  return nullptr;
}

Status RuleManager::Activate(RuleId rule, const Tuple& params) {
  auto rit = rules_.find(rule);
  if (rit == rules_.end()) return Status::NotFound("unknown rule id");
  if (FindActivation(rule, params) != nullptr) {
    return Status::AlreadyExists("rule '" + rit->second.name +
                                 "' is already activated for " +
                                 params.ToString());
  }
  DELTAMON_ASSIGN_OR_RETURN(RelationId cond,
                            SpecializeCondition(rit->second, params));
  Activation act;
  act.id = next_activation_id_++;
  act.rule = rule;
  act.params = params;
  act.condition = cond;
  std::unordered_set<RelationId> seen;
  DELTAMON_RETURN_IF_ERROR(CollectBaseInfluents(
      cond, registry_, db_.catalog(), seen, act.influents));
  for (RelationId rel : act.influents) db_.MarkMonitored(rel);

  // Naive and hybrid monitoring materialize the condition extent at
  // activation time (the space cost the incremental algorithm avoids).
  if (mode_ != MonitorMode::kIncremental) {
    objectlog::Evaluator ev(db_, registry_, objectlog::StateContext{});
    ev.SetProfiler(profiler_);
    DELTAMON_RETURN_IF_ERROR(
        ev.Evaluate(cond, EvalState::kNew, &act.naive_extent));
    act.naive_extent_valid = true;
  }
  activations_.push_back(std::move(act));
  network_dirty_ = true;
  return Status::OK();
}

Status RuleManager::Deactivate(RuleId rule, const Tuple& params) {
  for (auto it = activations_.begin(); it != activations_.end(); ++it) {
    if (it->rule != rule || !(it->params == params)) continue;
    for (RelationId rel : it->influents) db_.UnmarkMonitored(rel);
    activations_.erase(it);
    network_dirty_ = true;
    return Status::OK();
  }
  return Status::NotFound("rule is not activated with these parameters");
}

void RuleManager::SetMode(MonitorMode mode) {
  if (mode == mode_) return;
  mode_ = mode;
  network_dirty_ = true;  // hybrid alters root specs
  // Materialized condition extents are maintained per mode; a mode that
  // did not maintain them leaves them stale, so drop them.
  for (Activation& act : activations_) {
    act.naive_extent.clear();
    act.naive_extent_valid = false;
  }
}

void RuleManager::SetNetworkOptions(core::BuildOptions options) {
  build_options_ = std::move(options);
  network_dirty_ = true;
}

void RuleManager::SetMaterializeIntermediates(bool on) {
  if (on != materialize_intermediates_) network_dirty_ = true;
  materialize_intermediates_ = on;
}

void RuleManager::SetNumThreads(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  if (num_threads == num_threads_) return;
  num_threads_ = num_threads;
  // The pool always matches the setting exactly, so the Propagator's
  // pool->num_workers() resolution yields the requested parallelism.
  pool_ = num_threads_ > 1
              ? std::make_unique<common::ThreadPool>(num_threads_)
              : nullptr;
  // Resizing invalidates the per-worker cache identity; start fresh.
  eval_caches_.clear();
}

Status RuleManager::RebuildNetwork() {
  network_dirty_ = false;
  network_.reset();
  // Retained cache entries may reference relations of the old network's
  // definitions; drop everything on a rebuild.
  eval_caches_.clear();
  if (activations_.empty()) return Status::OK();
  std::vector<core::RootSpec> roots;
  for (const Activation& act : activations_) {
    const Rule& rule = rules_.at(act.rule);
    core::RootSpec spec;
    spec.relation = act.condition;
    bool strict = rule.options.semantics == Semantics::kStrict;
    spec.needs_minus = rule.options.propagate_deletions.value_or(strict);
    // Hybrid mode maintains a materialized condition extent by applying
    // each round's root Δ-set, which requires deletions to be propagated;
    // the same holds for materialized intermediate views.
    if (mode_ == MonitorMode::kHybrid || materialize_intermediates_) {
      spec.needs_minus = true;
    }
    spec.strict = strict;
    // Merge with an existing root for the same (shared) condition.
    bool merged = false;
    for (core::RootSpec& existing : roots) {
      if (existing.relation == spec.relation) {
        existing.needs_minus = existing.needs_minus || spec.needs_minus;
        existing.strict = existing.strict || spec.strict;
        merged = true;
        break;
      }
    }
    if (!merged) roots.push_back(spec);
  }
  DELTAMON_ASSIGN_OR_RETURN(
      core::PropagationNetwork net,
      core::PropagationNetwork::Build(roots, registry_, db_.catalog(),
                                      build_options_));
  network_ = std::make_unique<core::PropagationNetwork>(std::move(net));
  view_store_.Clear();
  view_store_ready_ = false;
  return Status::OK();
}

Result<const core::PropagationNetwork*> RuleManager::network() {
  if (network_dirty_ || (network_ == nullptr && !activations_.empty())) {
    DELTAMON_RETURN_IF_ERROR(RebuildNetwork());
  }
  return static_cast<const core::PropagationNetwork*>(network_.get());
}

RuleManager::Activation* RuleManager::PickTriggered() {
  Activation* best = nullptr;
  int best_priority = 0;
  for (Activation& act : activations_) {
    if (act.pending.plus().empty()) continue;
    int priority = rules_.at(act.rule).options.priority;
    if (best == nullptr || priority > best_priority ||
        (priority == best_priority && act.id < best->id)) {
      best = &act;
      best_priority = priority;
    }
  }
  return best;
}

Status RuleManager::RunIncrementalRound(
    Database& db, const std::unordered_map<RelationId, DeltaSet>& deltas) {
  DELTAMON_OBS_SCOPED_TIMER(round_timer, "rules.incremental_round_ns");
  DELTAMON_OBS_COUNT("rules.incremental_rounds", 1);
  DELTAMON_OBS_SPAN(round_span, "rules", "incremental_round");
  DELTAMON_ASSIGN_OR_RETURN(const core::PropagationNetwork* net, network());
  if (net == nullptr) return Status::OK();
  core::MaterializedViewStore* store = nullptr;
  if (materialize_intermediates_ && mode_ == MonitorMode::kIncremental) {
    if (!view_store_ready_) {
      // Lazy first round: the transaction's updates are already applied,
      // so materialize the extents as of the OLD (rolled-back) state; the
      // wave then brings them forward.
      DELTAMON_RETURN_IF_ERROR(
          view_store_.Initialize(*net, db, registry_, &deltas));
      view_store_ready_ = true;
    }
    store = &view_store_;
  }
  core::PropagationOptions popts;
  popts.num_threads = num_threads_;
  popts.pool = pool_.get();
  popts.profiler = profiler_;
  popts.kernels = kernels_enabled_;
  popts.lineage = provenance_enabled_;
  // Persist per-worker caches across waves so retained indexed extents
  // (recursive-fixpoint materializations over unchanged inputs) are
  // reused instead of recomputed. Propagate() resolves its effective
  // worker count the same way as below, so the vector size always
  // suffices.
  size_t workers = pool_ != nullptr ? pool_->num_workers() : 1;
  if (eval_caches_.size() != workers) {
    eval_caches_.clear();
    eval_caches_.resize(workers);
  }
  popts.caches = &eval_caches_;
  core::Propagator propagator(db, registry_, *net, store, popts);
  DELTAMON_ASSIGN_OR_RETURN(core::PropagationResult result,
                            propagator.Propagate(deltas));
  ++last_check_.incremental_waves;
  last_check_.propagation.differentials_executed +=
      result.stats.differentials_executed;
  last_check_.propagation.differentials_skipped +=
      result.stats.differentials_skipped;
  last_check_.propagation.tuples_propagated += result.stats.tuples_propagated;
  last_check_.propagation.filtered_plus += result.stats.filtered_plus;
  last_check_.propagation.filtered_minus += result.stats.filtered_minus;
  last_check_.propagation.peak_wavefront_tuples =
      std::max(last_check_.propagation.peak_wavefront_tuples,
               result.stats.peak_wavefront_tuples);
  last_check_.propagation.materialized_resident_tuples =
      result.stats.materialized_resident_tuples;
  for (core::TraceEntry& e : result.trace) last_trace_.push_back(e);
  for (Activation& act : activations_) {
    auto it = result.root_deltas.find(act.condition);
    if (it == result.root_deltas.end()) continue;
    act.pending.DeltaUnion(it->second);
    // Hybrid: keep the materialized extent current so a later naive round
    // can diff against it instead of re-deriving the old state.
    if (mode_ == MonitorMode::kHybrid && act.naive_extent_valid) {
      act.naive_extent = ApplyDelta(act.naive_extent, it->second);
    }
  }
  if (provenance_enabled_) lineage_.Merge(std::move(result.lineage));
  if (wave_capture_enabled_) {
    last_round_roots_ = std::move(result.root_deltas);
  }
  return Status::OK();
}

Status RuleManager::RunNaiveRound(
    Database& db, const std::unordered_map<RelationId, DeltaSet>& deltas) {
  DELTAMON_OBS_SCOPED_TIMER(round_timer, "rules.naive_round_ns");
  DELTAMON_OBS_COUNT("rules.naive_rounds", 1);
  DELTAMON_OBS_SPAN(round_span, "rules", "naive_round");
  objectlog::StateContext ctx;
  ctx.deltas = &deltas;
  for (Activation& act : activations_) {
    bool affected = false;
    for (RelationId rel : act.influents) {
      if (deltas.contains(rel)) {
        affected = true;
        break;
      }
    }
    if (!affected) continue;
    ++last_check_.naive_recomputations;
    DELTAMON_OBS_COUNT("rules.naive_recomputations", 1);
    objectlog::Evaluator ev(db, registry_, ctx);
    ev.SetProfiler(profiler_);
    TupleSet current;
    DELTAMON_RETURN_IF_ERROR(
        ev.Evaluate(act.condition, EvalState::kNew, &current));
    TupleSet previous;
    if (act.naive_extent_valid) {
      previous = std::move(act.naive_extent);
      act.naive_extent_valid = false;
    } else {
      // Hybrid path: no materialization; reconstruct the previous extent
      // by evaluating in the rolled-back old state.
      DELTAMON_RETURN_IF_ERROR(
          ev.Evaluate(act.condition, EvalState::kOld, &previous));
    }
    act.pending.DeltaUnion(DiffStates(previous, current));
    if (mode_ != MonitorMode::kIncremental) {
      act.naive_extent = std::move(current);
      act.naive_extent_valid = true;
    }
  }
  return Status::OK();
}

Status RuleManager::CheckPhase(Database& db) {
  DELTAMON_OBS_SCOPED_TIMER(check_timer, "rules.check_ns");
  DELTAMON_OBS_COUNT("rules.check_phases", 1);
  DELTAMON_OBS_SPAN(check_span, "rules", "check_phase");
  last_check_.Reset();
  last_trace_.clear();
  lineage_ = core::WaveLineage();
  last_round_roots_.clear();
  if (activations_.empty()) return Status::OK();

  // Wave capture: one record per incremental round, opened after the
  // propagation and flushed once the round's firings are known. Naive
  // recomputation rounds are not waves and are not captured.
  std::optional<obs::WaveRecord> open_wave;

  while (db.HasPendingChanges()) {
    if (last_check_.rounds >= max_rounds_) {
      return Status::FailedPrecondition(
          "rule processing exceeded " + std::to_string(max_rounds_) +
          " rounds without reaching a fixpoint");
    }
    ++last_check_.rounds;
    DELTAMON_OBS_SPAN(round_span, "rules", "round");
    round_span.AddField("round", static_cast<int64_t>(last_check_.rounds));
    std::unordered_map<RelationId, DeltaSet> deltas = db.TakePendingDeltas();
    if (deltas.empty()) break;

    bool incremental = true;
    if (mode_ == MonitorMode::kNaive) {
      incremental = false;
    } else if (mode_ == MonitorMode::kHybrid) {
      size_t total = 0;
      for (const auto& [rel, d] : deltas) total += d.size();
      if (hybrid_threshold_.has_value()) {
        incremental = total <= *hybrid_threshold_;
      } else {
        // Cost model: incremental work scales with the changed tuples,
        // naive with the influent extents; switch near the crossover.
        size_t influent_tuples = 0;
        std::unordered_set<RelationId> seen;
        for (const Activation& act : activations_) {
          for (RelationId rel : act.influents) {
            if (!seen.insert(rel).second) continue;
            const BaseRelation* base = db.catalog().GetBaseRelation(rel);
            if (base != nullptr) influent_tuples += base->size();
          }
        }
        incremental = 2 * total <= influent_tuples;
      }
    }
    DELTAMON_RETURN_IF_ERROR(incremental ? RunIncrementalRound(db, deltas)
                                         : RunNaiveRound(db, deltas));
    if (incremental && wave_capture_enabled_) {
      open_wave.emplace();
      open_wave->trace_id = obs::CurrentTraceId();
      open_wave->version = commit_version_;
      open_wave->round = last_check_.rounds;
      open_wave->threads = num_threads_;
      open_wave->kernels = kernels_enabled_;
      open_wave->influents = RenderWaveDeltas(deltas, db.catalog());
      open_wave->roots = RenderWaveDeltas(last_round_roots_, db.catalog());
    }

    // Fire triggered rules one at a time (conflict resolution) until the
    // action of some rule changes the database again — then propagate
    // those changes first so later firings see net conditions.
    while (!db.HasPendingChanges()) {
      Activation* act = PickTriggered();
      if (act == nullptr) break;
      std::vector<Tuple> instances = SortedTuples(act->pending.plus());
      act->pending.Clear();
      ++last_check_.rule_firings;
      const Rule& rule = rules_.at(act->rule);
      if (open_wave.has_value()) {
        for (const Tuple& t : instances) {
          open_wave->firings.push_back(rule.name + " " + t.ToString());
        }
      }
      if (provenance_enabled_) {
        obs::FiringRecord rec;
        rec.trace_id = obs::CurrentTraceId();
        rec.version = commit_version_;
        rec.rule = rule.name;
        rec.round = last_check_.rounds;
        rec.total_instances = instances.size();
        rec.captured_instances =
            std::min(instances.size(), kMaxLineageInstances);
        rec.instances.reserve(instances.size());
        for (const Tuple& t : instances) rec.instances.push_back(t.ToString());
        for (size_t i = 0; i < rec.captured_instances; ++i) {
          rec.lineage.Append(lineage_.Export(act->condition, /*plus=*/true,
                                             instances[i], db.catalog()));
        }
        obs::GlobalProvenanceLog().Record(std::move(rec));
      }
      DELTAMON_OBS_COUNT("rules.firings", 1);
      DELTAMON_OBS_SPAN(fire_span, "rules", "fire");
      if (fire_span.active()) {
        fire_span.SetName("fire:" + rule.name);
        fire_span.AddField("rule", static_cast<int64_t>(rule.id));
        fire_span.AddField("instances",
                           static_cast<int64_t>(instances.size()));
      }
#if DELTAMON_OBS_ENABLED
      // Per-rule firing latency under a dynamic name: firings are rare
      // (they run user actions), so the map lookup is irrelevant here.
      obs::Histogram* action_hist =
          obs::Enabled() ? obs::Registry::Global().GetHistogram(
                               "rules.action_ns." + rule.name)
                         : nullptr;
      obs::ScopedTimer action_timer(action_hist);
#endif
      if (obs::TraceEnabled()) {
        obs::EmitTrace(obs::TraceEvent{
            "rules",
            "rule_fired",
            {{"rule", static_cast<int64_t>(rule.id)},
             {"instances", static_cast<int64_t>(instances.size())}}});
      }
      if (rule.action != nullptr) {
        DELTAMON_RETURN_IF_ERROR(rule.action(db, act->params, instances));
      }
    }
    if (open_wave.has_value()) {
      // The round is complete: every firing it could trigger either ran
      // (recorded above) or waits on changes that open the next round.
      obs::GlobalWaveRecorder().Record(std::move(*open_wave));
      open_wave.reset();
    }
  }
  // Net deletions that fired nothing are dropped at the end of the phase.
  for (Activation& act : activations_) act.pending.Clear();
  check_span.AddField("rounds", static_cast<int64_t>(last_check_.rounds));
  check_span.AddField("rule_firings",
                      static_cast<int64_t>(last_check_.rule_firings));
  return Status::OK();
}

std::vector<std::string> RuleManager::ExplainLastTrigger(RuleId rule) const {
  std::vector<std::string> out;
  for (const Activation& act : activations_) {
    if (act.rule != rule) continue;
    for (const core::TraceEntry& e : last_trace_) {
      if (e.target == act.condition && e.tuples_produced > 0) {
        out.push_back(e.ToString(db_.catalog()));
      }
    }
  }
  return out;
}

}  // namespace deltamon::rules
