#ifndef DELTAMON_COMMON_COLUMN_TABLE_H_
#define DELTAMON_COMMON_COLUMN_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/tuple.h"
#include "common/value.h"

namespace deltamon {

/// Cell hash helpers for the typed column representations. Each must equal
/// Value::Hash() of the corresponding Value exactly — the hash-join kernels
/// mix hashes computed from typed columns with hashes computed from Values
/// (constants in probe patterns), and the two sides of a build–probe join
/// must land in the same bucket. column_table_test pins the equivalence.
inline size_t CellHashInt(int64_t v) {
  return HashCombine(static_cast<size_t>(ValueKind::kInt),
                     std::hash<int64_t>{}(v));
}
inline size_t CellHashSymbol(SymbolId s) {
  return HashCombine(static_cast<size_t>(ValueKind::kString),
                     std::hash<uint32_t>{}(s));
}
inline size_t CellHashObject(uint64_t oid) {
  return HashCombine(static_cast<size_t>(ValueKind::kObject),
                     std::hash<uint64_t>{}(oid));
}

/// A columnar (struct-of-arrays) table: the wave-front Δ-table of the batch
/// evaluation kernels. Each column starts untyped and specializes to a
/// dense int64 / SymbolId / Oid vector on first append, falling back to a
/// generic Value vector the moment a mixed kind arrives — so the common
/// all-int and all-string columns of monitoring workloads scan as flat
/// arrays, while arbitrary Values (bools, doubles, nulls) still work.
///
/// The table grows append-only; rows are addressed by dense index. A
/// build–probe HashIndex over any column subset supports the join kernels,
/// and GroupByKey clusters rows by distinct key in first-occurrence order
/// for probe batching and semi-join filtering.
class ColumnTable {
 public:
  ColumnTable() = default;
  explicit ColumnTable(size_t num_cols) : cols_(num_cols) {}

  size_t num_cols() const { return cols_.size(); }
  size_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  void Reserve(size_t rows);

  /// Appends one cell to column `col`. A row is complete once every column
  /// has received its cell; callers append whole rows (each column exactly
  /// once, then FinishRow).
  void AppendCell(size_t col, const Value& v) { cols_[col].Append(v); }
  /// Appends a cell copied from another table's cell — preserves the typed
  /// representation without materializing a Value when reps match.
  void AppendCellFrom(size_t col, const ColumnTable& src, size_t src_col,
                      size_t src_row) {
    cols_[col].AppendFrom(src.cols_[src_col], src_row);
  }
  void FinishRow() { ++num_rows_; }

  /// Materializes the cell as a Value (O(1); symbol cells reuse the
  /// interned id).
  Value Get(size_t row, size_t col) const { return cols_[col].Get(row); }

  /// Hash of the cell, equal to Get(row, col).Hash().
  size_t CellHash(size_t row, size_t col) const {
    return cols_[col].Hash(row);
  }

  bool CellEquals(size_t row, size_t col, const Value& v) const {
    return cols_[col].Equals(row, v);
  }
  bool CellEqualsCell(size_t row, size_t col, const ColumnTable& other,
                      size_t other_row, size_t other_col) const {
    return cols_[col].EqualsCell(row, other.cols_[other_col], other_row);
  }

  /// Combined hash of the row restricted to `key_cols` (HashCombine chain,
  /// same recipe as Tuple's incremental hash but over the key columns).
  size_t KeyHash(size_t row, const std::vector<size_t>& key_cols) const;

  /// Row-key equality against another table's row (columns paired
  /// position-wise: key_cols[i] here vs other_cols[i] there).
  bool KeyEquals(size_t row, const std::vector<size_t>& key_cols,
                 const ColumnTable& other, size_t other_row,
                 const std::vector<size_t>& other_cols) const;

  /// Chained-bucket hash index over `key_cols`, for the build side of a
  /// hash join: heads[h & mask] starts a next[]-linked chain of row ids
  /// sharing the bucket (not necessarily the key — probers re-verify with
  /// KeyEquals). kNoRow terminates chains.
  struct HashIndex {
    static constexpr uint32_t kNoRow = 0xffffffffu;
    std::vector<uint32_t> heads;
    std::vector<uint32_t> next;
    uint32_t mask = 0;
    std::vector<size_t> key_cols;

    uint32_t First(size_t hash) const {
      return heads.empty() ? kNoRow : heads[hash & mask];
    }
    uint32_t Next(uint32_t row) const { return next[row]; }
  };
  HashIndex BuildIndex(std::vector<size_t> key_cols) const;

  /// Rows clustered by distinct key over `key_cols`. Groups are numbered in
  /// first-occurrence row order and each group's member rows ascend — the
  /// deterministic iteration order the probe kernel batches scans by.
  struct Grouping {
    /// Representative (first) row per group, ascending.
    std::vector<uint32_t> reps;
    /// Member rows per group, each ascending.
    std::vector<std::vector<uint32_t>> rows;
  };
  Grouping GroupByKey(const std::vector<size_t>& key_cols) const;

 private:
  /// One column: unset until the first append picks a typed representation;
  /// a mismatching later kind converts the column to kGeneric in place.
  class Column {
   public:
    enum class Rep : uint8_t { kUnset, kInt64, kSymbol, kObject, kGeneric };

    void Reserve(size_t rows);
    void Append(const Value& v);
    void AppendFrom(const Column& src, size_t src_row);
    Value Get(size_t row) const;
    size_t Hash(size_t row) const;
    bool Equals(size_t row, const Value& v) const;
    bool EqualsCell(size_t row, const Column& other, size_t other_row) const;

   private:
    void Degrade(size_t rows_so_far);

    Rep rep_ = Rep::kUnset;
    std::vector<int64_t> ints_;
    std::vector<SymbolId> syms_;
    std::vector<Oid> oids_;
    std::vector<Value> generic_;
  };

  std::vector<Column> cols_;
  size_t num_rows_ = 0;
};

}  // namespace deltamon

#endif  // DELTAMON_COMMON_COLUMN_TABLE_H_
