#include "common/thread_pool.h"

namespace deltamon::common {

ThreadPool::ThreadPool(size_t num_workers) {
  if (num_workers == 0) {
    num_workers = std::thread::hardware_concurrency();
    if (num_workers == 0) num_workers = 1;
  }
  threads_.reserve(num_workers - 1);
  for (size_t i = 1; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::DrainTasks(Batch& batch, size_t worker_index) {
  for (;;) {
    size_t task = batch.next_task.fetch_add(1, std::memory_order_relaxed);
    if (task >= batch.num_tasks) return;
    batch.fn(task, worker_index);
    // The mutex in the completion path (not just the notify) pairs with
    // Run()'s predicate re-check, so the final increment can't slip between
    // the waiter's check and its sleep.
    if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch.num_tasks) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerMain(size_t worker_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      batch = batch_;
    }
    // batch_ is already reset when the batch finished without this worker
    // ever claiming a task (a straggler wake-up).
    if (batch != nullptr) DrainTasks(*batch, worker_index);
  }
}

void ThreadPool::Run(size_t num_tasks,
                     const std::function<void(size_t, size_t)>& fn) {
  if (num_tasks == 0) return;
  if (threads_.empty() || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i, 0);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = fn;
  batch->num_tasks = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
    ++generation_;
  }
  work_cv_.notify_all();
  DrainTasks(*batch, /*worker_index=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return batch->completed.load(std::memory_order_acquire) == num_tasks;
  });
  batch_.reset();
}

}  // namespace deltamon::common
