#ifndef DELTAMON_COMMON_VALUE_H_
#define DELTAMON_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>

#include "common/intern.h"
#include "common/status.h"

namespace deltamon {

/// Identifier of a user-defined object type ("item", "supplier", ...)
/// registered in the catalog.
using TypeId = uint32_t;
inline constexpr TypeId kInvalidTypeId = 0;

/// A surrogate object identifier. Every object created in the database
/// carries the TypeId it was created with, mirroring the AMOS data model
/// where all objects are classified by type.
struct Oid {
  uint64_t id = 0;
  TypeId type = kInvalidTypeId;

  bool operator==(const Oid& other) const { return id == other.id; }
  auto operator<=>(const Oid& other) const { return id <=> other.id; }
};

/// A string payload as stored inside Value: a 4-byte id into the global
/// StringInterner. Equality by id is exactly content equality (the interner
/// deduplicates); ordering and display go through the pool.
struct InternedString {
  SymbolId id = 0;
  bool operator==(const InternedString& other) const = default;
};

/// The kind of a Value. Order matters: cross-kind comparison of Values
/// orders by kind index first, making Value totally ordered.
enum class ValueKind : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kObject,
};

const char* ValueKindName(ValueKind kind);

/// A dynamically typed database value: the domain of tuple fields in both
/// stored and derived functions. Values are immutable, totally ordered,
/// hashable, and cheap to copy — strings are interned, so a Value is a
/// small register-sized payload regardless of string length.
class Value {
 public:
  /// Null (absent) value.
  Value() : data_(std::monostate{}) {}
  explicit Value(bool b) : data_(b) {}
  explicit Value(int64_t i) : data_(i) {}
  explicit Value(int i) : data_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string_view s)
      : data_(InternedString{StringInterner::Global().Intern(s)}) {}
  explicit Value(const std::string& s) : Value(std::string_view(s)) {}
  explicit Value(const char* s) : Value(std::string_view(s)) {}
  explicit Value(Oid oid) : data_(oid) {}
  /// Rebuilds a string value from an already-interned id (the columnar
  /// Δ-table stores SymbolIds; reconstruction must not re-hash content).
  explicit Value(InternedString s) : data_(s) {}

  ValueKind kind() const { return static_cast<ValueKind>(data_.index()); }
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_object() const { return kind() == ValueKind::kObject; }
  /// True for kInt or kDouble.
  bool is_numeric() const { return is_int() || is_double(); }

  /// Unchecked accessors; the caller must have verified the kind.
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const {
    return StringInterner::Global().Lookup(string_id());
  }
  Oid AsObject() const { return std::get<Oid>(data_); }
  /// Interner id of a string value; requires is_string().
  SymbolId string_id() const { return std::get<InternedString>(data_).id; }

  /// Numeric value widened to double; requires is_numeric().
  double NumericAsDouble() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// Equality: same kind and same payload (1 != 1.0; use Compare for
  /// numeric-promoting comparison). Strings compare by interned id — O(1).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator<(const Value& other) const;

  /// Three-way comparison with numeric promotion (int vs double compares
  /// numerically); values of different non-numeric kinds order by kind.
  /// Strings order by content, exactly as before interning. Returns <0, 0,
  /// >0.
  int Compare(const Value& other) const;

  size_t Hash() const;

  /// Display form: "null", "true", "42", "3.5", quoted string, or
  /// "<typeid>#<oid>".
  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, InternedString, Oid>
      data_;
};

/// Arithmetic over numeric Values; int op int stays int (except division by
/// zero and overflow, which yield errors), any double operand promotes to
/// double.
Result<Value> Add(const Value& a, const Value& b);
Result<Value> Subtract(const Value& a, const Value& b);
Result<Value> Multiply(const Value& a, const Value& b);
Result<Value> Divide(const Value& a, const Value& b);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Streams v.ToString() (also makes gtest failures readable).
std::ostream& operator<<(std::ostream& os, const Value& v);

/// Combines a hash into a running seed (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace deltamon

#endif  // DELTAMON_COMMON_VALUE_H_
