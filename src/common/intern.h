#ifndef DELTAMON_COMMON_INTERN_H_
#define DELTAMON_COMMON_INTERN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace deltamon {

/// Id of an interned string. Two strings are equal iff their SymbolIds are
/// equal, making string Values 4 bytes with O(1) equality and hashing.
using SymbolId = uint32_t;

/// A process-wide append-only string pool. Interning deduplicates: the
/// first Intern("x") assigns an id, every later Intern("x") returns the
/// same id. Strings are never freed — the pool lives for the process
/// (see docs/data_plane.md on the interner lifecycle).
///
/// Thread safety: Intern() serializes writers behind a mutex; Lookup() is
/// lock-free (an acquire load of a chunk pointer). Ids travel between
/// threads only through already-synchronized channels (thread-pool
/// dispatch, mutex-guarded structures), which supplies the happens-before
/// edge for the string bytes themselves.
class StringInterner {
 public:
  /// The pool used by Value. Intentionally immortal (never destroyed), so
  /// interned ids stay valid during static destruction.
  static StringInterner& Global();

  StringInterner();
  ~StringInterner();
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the id of `s`, assigning the next free id on first sight.
  /// Aborts if the pool exceeds ~268M distinct strings.
  SymbolId Intern(std::string_view s);

  /// The string for an id previously returned by Intern(). Lock-free; the
  /// returned reference is stable for the life of the pool.
  const std::string& Lookup(SymbolId id) const {
    const Chunk* chunk =
        chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    return chunk->strings[id & (kChunkSize - 1)];
  }

  /// Number of distinct strings interned so far.
  size_t size() const { return count_.load(std::memory_order_acquire); }

 private:
  static constexpr size_t kChunkBits = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;  // 4096
  static constexpr size_t kMaxChunks = size_t{1} << 16;

  struct Chunk {
    std::string strings[kChunkSize];
  };

  /// Chunked arena: chunks never move once published, so Lookup() needs no
  /// lock and references stay stable across growth.
  std::unique_ptr<std::atomic<Chunk*>[]> chunks_;
  std::atomic<size_t> count_{0};

  std::mutex mu_;
  /// Keys view into the arena strings (stable storage).
  std::unordered_map<std::string_view, SymbolId> map_;
};

}  // namespace deltamon

#endif  // DELTAMON_COMMON_INTERN_H_
