#include "common/column_table.h"

#include <bit>

namespace deltamon {

void ColumnTable::Column::Reserve(size_t rows) {
  switch (rep_) {
    case Rep::kUnset:
    case Rep::kInt64:
      ints_.reserve(rows);
      break;
    case Rep::kSymbol:
      syms_.reserve(rows);
      break;
    case Rep::kObject:
      oids_.reserve(rows);
      break;
    case Rep::kGeneric:
      generic_.reserve(rows);
      break;
  }
}

void ColumnTable::Column::Degrade(size_t rows_so_far) {
  // Convert the typed vector built so far into Values; subsequent appends
  // stay generic. rows_so_far is the column's current length.
  generic_.reserve(rows_so_far + 1);
  switch (rep_) {
    case Rep::kInt64:
      for (int64_t v : ints_) generic_.emplace_back(v);
      ints_.clear();
      ints_.shrink_to_fit();
      break;
    case Rep::kSymbol:
      for (SymbolId s : syms_) generic_.emplace_back(InternedString{s});
      syms_.clear();
      syms_.shrink_to_fit();
      break;
    case Rep::kObject:
      for (Oid o : oids_) generic_.emplace_back(o);
      oids_.clear();
      oids_.shrink_to_fit();
      break;
    case Rep::kUnset:
    case Rep::kGeneric:
      break;
  }
  rep_ = Rep::kGeneric;
}

void ColumnTable::Column::Append(const Value& v) {
  if (rep_ == Rep::kUnset) {
    switch (v.kind()) {
      case ValueKind::kInt:
        rep_ = Rep::kInt64;
        break;
      case ValueKind::kString:
        rep_ = Rep::kSymbol;
        break;
      case ValueKind::kObject:
        rep_ = Rep::kObject;
        break;
      default:
        rep_ = Rep::kGeneric;
        break;
    }
  }
  switch (rep_) {
    case Rep::kInt64:
      if (v.is_int()) {
        ints_.push_back(v.AsInt());
        return;
      }
      Degrade(ints_.size());
      break;
    case Rep::kSymbol:
      if (v.is_string()) {
        syms_.push_back(v.string_id());
        return;
      }
      Degrade(syms_.size());
      break;
    case Rep::kObject:
      if (v.is_object()) {
        oids_.push_back(v.AsObject());
        return;
      }
      Degrade(oids_.size());
      break;
    case Rep::kUnset:
    case Rep::kGeneric:
      break;
  }
  generic_.push_back(v);
}

void ColumnTable::Column::AppendFrom(const Column& src, size_t src_row) {
  // Fast path: identical typed reps copy raw payloads.
  if (rep_ == src.rep_ || rep_ == Rep::kUnset) {
    switch (src.rep_) {
      case Rep::kInt64:
        rep_ = Rep::kInt64;
        ints_.push_back(src.ints_[src_row]);
        return;
      case Rep::kSymbol:
        rep_ = Rep::kSymbol;
        syms_.push_back(src.syms_[src_row]);
        return;
      case Rep::kObject:
        rep_ = Rep::kObject;
        oids_.push_back(src.oids_[src_row]);
        return;
      default:
        break;
    }
  }
  Append(src.Get(src_row));
}

Value ColumnTable::Column::Get(size_t row) const {
  switch (rep_) {
    case Rep::kInt64:
      return Value(ints_[row]);
    case Rep::kSymbol:
      return Value(InternedString{syms_[row]});
    case Rep::kObject:
      return Value(oids_[row]);
    case Rep::kGeneric:
      return generic_[row];
    case Rep::kUnset:
      break;
  }
  return Value();
}

size_t ColumnTable::Column::Hash(size_t row) const {
  switch (rep_) {
    case Rep::kInt64:
      return CellHashInt(ints_[row]);
    case Rep::kSymbol:
      return CellHashSymbol(syms_[row]);
    case Rep::kObject:
      return CellHashObject(oids_[row].id);
    case Rep::kGeneric:
      return generic_[row].Hash();
    case Rep::kUnset:
      break;
  }
  return Value().Hash();
}

bool ColumnTable::Column::Equals(size_t row, const Value& v) const {
  switch (rep_) {
    case Rep::kInt64:
      return v.is_int() && v.AsInt() == ints_[row];
    case Rep::kSymbol:
      return v.is_string() && v.string_id() == syms_[row];
    case Rep::kObject:
      return v.is_object() && v.AsObject() == oids_[row];
    case Rep::kGeneric:
      return generic_[row] == v;
    case Rep::kUnset:
      break;
  }
  return v.is_null();
}

bool ColumnTable::Column::EqualsCell(size_t row, const Column& other,
                                     size_t other_row) const {
  if (rep_ == other.rep_) {
    switch (rep_) {
      case Rep::kInt64:
        return ints_[row] == other.ints_[other_row];
      case Rep::kSymbol:
        return syms_[row] == other.syms_[other_row];
      case Rep::kObject:
        return oids_[row] == other.oids_[other_row];
      default:
        break;
    }
  }
  return Equals(row, other.Get(other_row));
}

void ColumnTable::Reserve(size_t rows) {
  for (Column& c : cols_) c.Reserve(rows);
}

size_t ColumnTable::KeyHash(size_t row,
                            const std::vector<size_t>& key_cols) const {
  // Same chained recipe as Tuple::Hash so single-column keys of kernels and
  // any future Tuple-keyed consumers agree on bucket spread; the absolute
  // seed differs from Tuple's (not required to match — only build and probe
  // sides of one join must agree, and both come through here or through
  // Value::Hash for pattern constants on single columns).
  size_t seed = 0x9e3779b97f4a7c15ULL;
  for (size_t col : key_cols) seed = HashCombine(seed, CellHash(row, col));
  return seed;
}

bool ColumnTable::KeyEquals(size_t row, const std::vector<size_t>& key_cols,
                            const ColumnTable& other, size_t other_row,
                            const std::vector<size_t>& other_cols) const {
  for (size_t i = 0; i < key_cols.size(); ++i) {
    if (!CellEqualsCell(row, key_cols[i], other, other_row, other_cols[i])) {
      return false;
    }
  }
  return true;
}

ColumnTable::HashIndex ColumnTable::BuildIndex(
    std::vector<size_t> key_cols) const {
  HashIndex idx;
  idx.key_cols = std::move(key_cols);
  if (num_rows_ == 0) return idx;
  size_t buckets = std::bit_ceil(num_rows_ + num_rows_ / 2);
  idx.heads.assign(buckets, HashIndex::kNoRow);
  idx.mask = static_cast<uint32_t>(buckets - 1);
  idx.next.resize(num_rows_);
  for (size_t row = 0; row < num_rows_; ++row) {
    size_t h = KeyHash(row, idx.key_cols);
    uint32_t& head = idx.heads[h & idx.mask];
    idx.next[row] = head;
    head = static_cast<uint32_t>(row);
  }
  return idx;
}

ColumnTable::Grouping ColumnTable::GroupByKey(
    const std::vector<size_t>& key_cols) const {
  Grouping g;
  if (num_rows_ == 0) return g;
  // Open-addressing directory of group representatives: rows are visited in
  // order, so the first row of each distinct key becomes its group's
  // representative and group ids ascend by first occurrence.
  size_t buckets = std::bit_ceil(num_rows_ + num_rows_ / 2);
  size_t mask = buckets - 1;
  struct Slot {
    uint32_t group = HashIndex::kNoRow;
    size_t hash = 0;
  };
  std::vector<Slot> slots(buckets);
  for (size_t row = 0; row < num_rows_; ++row) {
    size_t h = KeyHash(row, key_cols);
    size_t b = h & mask;
    uint32_t group = HashIndex::kNoRow;
    while (slots[b].group != HashIndex::kNoRow) {
      if (slots[b].hash == h &&
          KeyEquals(g.reps[slots[b].group], key_cols, *this, row, key_cols)) {
        group = slots[b].group;
        break;
      }
      b = (b + 1) & mask;
    }
    if (group == HashIndex::kNoRow) {
      group = static_cast<uint32_t>(g.reps.size());
      slots[b] = Slot{group, h};
      g.reps.push_back(static_cast<uint32_t>(row));
      g.rows.emplace_back();
    }
    g.rows[group].push_back(static_cast<uint32_t>(row));
  }
  return g;
}

}  // namespace deltamon
