#include "common/intern.h"

#include <cstdio>
#include <cstdlib>

namespace deltamon {

StringInterner& StringInterner::Global() {
  static StringInterner* pool = new StringInterner;
  return *pool;
}

StringInterner::StringInterner()
    : chunks_(new std::atomic<Chunk*>[kMaxChunks]) {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

StringInterner::~StringInterner() {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    delete chunks_[i].load(std::memory_order_relaxed);
  }
}

SymbolId StringInterner::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(s);
  if (it != map_.end()) return it->second;
  const size_t id = count_.load(std::memory_order_relaxed);
  if (id >= kMaxChunks * kChunkSize) {
    std::fprintf(stderr, "StringInterner: pool exhausted\n");
    std::abort();
  }
  Chunk* chunk = chunks_[id >> kChunkBits].load(std::memory_order_relaxed);
  const bool fresh_chunk = chunk == nullptr;
  if (fresh_chunk) chunk = new Chunk;
  std::string& slot = chunk->strings[id & (kChunkSize - 1)];
  slot.assign(s);
  // Publish after the slot is written, so a racing Lookup() of an id from
  // this chunk (handed off through a synchronized channel) sees a fully
  // constructed chunk.
  if (fresh_chunk) {
    chunks_[id >> kChunkBits].store(chunk, std::memory_order_release);
  }
  map_.emplace(std::string_view(slot), static_cast<SymbolId>(id));
  count_.store(id + 1, std::memory_order_release);
  return static_cast<SymbolId>(id);
}

}  // namespace deltamon
