#include "common/value.h"

#include <cmath>
#include <limits>
#include <ostream>

namespace deltamon {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kObject:
      return "object";
  }
  return "unknown";
}

int Value::Compare(const Value& other) const {
  // Numeric promotion: int and double compare on the number line.
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = NumericAsDouble(), b = other.NumericAsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (kind() != other.kind()) {
    return kind() < other.kind() ? -1 : 1;
  }
  switch (kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
    case ValueKind::kString: {
      // Equal ids mean equal content (interner dedup); otherwise order by
      // content, byte-identical to the pre-interning behavior.
      if (string_id() == other.string_id()) return 0;
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueKind::kObject: {
      Oid a = AsObject(), b = other.AsObject();
      return a.id < b.id ? -1 : (a.id > b.id ? 1 : 0);
    }
    default:
      return 0;  // unreachable: numeric kinds handled above
  }
}

bool Value::operator<(const Value& other) const {
  // Ordering consistent with operator== (no numeric promotion), used for
  // deterministic sorting of tuples: kind first, then payload.
  if (kind() != other.kind()) return kind() < other.kind();
  return Compare(other) < 0;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(kind());
  switch (kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      seed = HashCombine(seed, std::hash<bool>{}(AsBool()));
      break;
    case ValueKind::kInt:
      seed = HashCombine(seed, std::hash<int64_t>{}(AsInt()));
      break;
    case ValueKind::kDouble:
      seed = HashCombine(seed, std::hash<double>{}(AsDouble()));
      break;
    case ValueKind::kString:
      // O(1): the interned id stands in for the content (equal content ⇒
      // equal id ⇒ equal hash).
      seed = HashCombine(seed, std::hash<uint32_t>{}(string_id()));
      break;
    case ValueKind::kObject:
      seed = HashCombine(seed, std::hash<uint64_t>{}(AsObject().id));
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      std::string s = std::to_string(AsDouble());
      // Trim trailing zeros but keep one digit after the point.
      size_t dot = s.find('.');
      if (dot != std::string::npos) {
        size_t last = s.find_last_not_of('0');
        s.erase(std::max(last, dot + 1) + 1);
      }
      return s;
    }
    case ValueKind::kString:
      return "\"" + AsString() + "\"";
    case ValueKind::kObject: {
      Oid o = AsObject();
      return "t" + std::to_string(o.type) + "#" + std::to_string(o.id);
    }
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

namespace {

enum class ArithOp { kAdd, kSub, kMul, kDiv };

Result<Value> Arith(ArithOp op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::TypeError("arithmetic requires numeric operands, got " +
                             std::string(ValueKindName(a.kind())) + " and " +
                             std::string(ValueKindName(b.kind())));
  }
  if (a.is_int() && b.is_int()) {
    int64_t x = a.AsInt(), y = b.AsInt(), r = 0;
    bool overflow = false;
    switch (op) {
      case ArithOp::kAdd:
        overflow = __builtin_add_overflow(x, y, &r);
        break;
      case ArithOp::kSub:
        overflow = __builtin_sub_overflow(x, y, &r);
        break;
      case ArithOp::kMul:
        overflow = __builtin_mul_overflow(x, y, &r);
        break;
      case ArithOp::kDiv:
        if (y == 0) return Status::InvalidArgument("integer division by zero");
        if (x == std::numeric_limits<int64_t>::min() && y == -1) {
          overflow = true;
        } else {
          r = x / y;
        }
        break;
    }
    if (overflow) return Status::OutOfRange("integer overflow in arithmetic");
    return Value(r);
  }
  double x = a.NumericAsDouble(), y = b.NumericAsDouble();
  switch (op) {
    case ArithOp::kAdd:
      return Value(x + y);
    case ArithOp::kSub:
      return Value(x - y);
    case ArithOp::kMul:
      return Value(x * y);
    case ArithOp::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value(x / y);
  }
  return Status::Internal("unreachable arithmetic op");
}

}  // namespace

Result<Value> Add(const Value& a, const Value& b) {
  return Arith(ArithOp::kAdd, a, b);
}
Result<Value> Subtract(const Value& a, const Value& b) {
  return Arith(ArithOp::kSub, a, b);
}
Result<Value> Multiply(const Value& a, const Value& b) {
  return Arith(ArithOp::kMul, a, b);
}
Result<Value> Divide(const Value& a, const Value& b) {
  return Arith(ArithOp::kDiv, a, b);
}

}  // namespace deltamon
