#include "common/tuple.h"

#include <algorithm>
#include <ostream>

namespace deltamon {

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out;
  out.reserve(values_.size() + other.values_.size());
  out.insert(out.end(), values_.begin(), values_.end());
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  // Chain the cached hashes instead of re-hashing the concatenation.
  return Tuple(std::move(out), ExtendHash(hash_, other.values_));
}

Tuple Tuple::Project(const std::vector<size_t>& columns) const {
  std::vector<Value> out;
  out.reserve(columns.size());
  for (size_t c : columns) out.push_back(values_[c]);
  return Tuple(std::move(out));
}

bool Tuple::operator<(const Tuple& other) const {
  return std::lexicographical_compare(values_.begin(), values_.end(),
                                      other.values_.begin(),
                                      other.values_.end());
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

std::vector<Tuple> SortedTuples(const TupleSet& set) {
  std::vector<Tuple> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::string TupleSetToString(const TupleSet& set) {
  std::string out = "{";
  bool first = true;
  for (const Tuple& t : SortedTuples(set)) {
    if (!first) out += ", ";
    first = false;
    out += t.ToString();
  }
  out += "}";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return os << t.ToString();
}

}  // namespace deltamon
