#ifndef DELTAMON_COMMON_TUPLE_H_
#define DELTAMON_COMMON_TUPLE_H_

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/flat_tuple_set.h"
#include "common/value.h"

namespace deltamon {

/// An immutable row of Values: the unit stored in base relations, flowing
/// through Δ-sets, and produced by derived relations.
///
/// The hash is computed once at construction and updated incrementally by
/// Append/Concat, so TupleHash is a single load — set probes, rehashes, and
/// Δ-set reconciliation never re-walk the values.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values)
      : values_(std::move(values)), hash_(ExtendHash(kEmptyHash, values_)) {}
  Tuple(std::initializer_list<Value> values)
      : values_(values), hash_(ExtendHash(kEmptyHash, values_)) {}

  size_t arity() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& operator[](size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) {
    hash_ = HashCombine(hash_, v.Hash());
    values_.push_back(std::move(v));
  }

  /// Concatenation (used by cartesian product / join in relalg).
  Tuple Concat(const Tuple& other) const;

  /// Projection onto the given column indexes (duplicates allowed).
  Tuple Project(const std::vector<size_t>& columns) const;

  bool operator==(const Tuple& other) const {
    return hash_ == other.hash_ && values_ == other.values_;
  }
  bool operator<(const Tuple& other) const;

  size_t Hash() const { return hash_; }

  /// "(v1, v2, ...)".
  std::string ToString() const;

 private:
  /// Hash of the zero-arity tuple; Append/Concat chain HashCombine from
  /// here, so the cached hash of a prefix extends to the full tuple.
  static constexpr size_t kEmptyHash = 0x9e3779b97f4a7c15ULL;

  static size_t ExtendHash(size_t seed, const std::vector<Value>& values) {
    for (const Value& v : values) seed = HashCombine(seed, v.Hash());
    return seed;
  }

  Tuple(std::vector<Value> values, size_t hash)
      : values_(std::move(values)), hash_(hash) {}

  std::vector<Value> values_;
  size_t hash_ = kEmptyHash;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

/// The canonical set-of-tuples container used across the library. Set
/// semantics per the paper (§7.2): no duplicates. Backed by a flat
/// open-addressing table over dense storage (see flat_tuple_set.h for the
/// iterator/pointer stability contract, which is weaker than
/// std::unordered_set's).
using TupleSet = FlatHashSet<Tuple, TupleHash>;

/// Deterministically ordered copy of `set`, for stable iteration in tests,
/// traces, and output.
std::vector<Tuple> SortedTuples(const TupleSet& set);

/// "{(..), (..)}" with tuples in sorted order.
std::string TupleSetToString(const TupleSet& set);

/// Streams t.ToString() (also makes gtest failures readable).
std::ostream& operator<<(std::ostream& os, const Tuple& t);

}  // namespace deltamon

#endif  // DELTAMON_COMMON_TUPLE_H_
