#ifndef DELTAMON_COMMON_TUPLE_H_
#define DELTAMON_COMMON_TUPLE_H_

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/value.h"

namespace deltamon {

/// An immutable-by-convention row of Values: the unit stored in base
/// relations, flowing through Δ-sets, and produced by derived relations.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t arity() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation (used by cartesian product / join in relalg).
  Tuple Concat(const Tuple& other) const;

  /// Projection onto the given column indexes (duplicates allowed).
  Tuple Project(const std::vector<size_t>& columns) const;

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator<(const Tuple& other) const;

  size_t Hash() const;

  /// "(v1, v2, ...)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

/// The canonical set-of-tuples container used across the library. Set
/// semantics per the paper (§7.2): no duplicates.
using TupleSet = std::unordered_set<Tuple, TupleHash>;

/// Deterministically ordered copy of `set`, for stable iteration in tests,
/// traces, and output.
std::vector<Tuple> SortedTuples(const TupleSet& set);

/// "{(..), (..)}" with tuples in sorted order.
std::string TupleSetToString(const TupleSet& set);

/// Streams t.ToString() (also makes gtest failures readable).
std::ostream& operator<<(std::ostream& os, const Tuple& t);

}  // namespace deltamon

#endif  // DELTAMON_COMMON_TUPLE_H_
