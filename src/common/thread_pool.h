#ifndef DELTAMON_COMMON_THREAD_POOL_H_
#define DELTAMON_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace deltamon::common {

/// A small reusable fork-join pool for level-synchronous parallelism: one
/// Run() call executes `num_tasks` independent tasks across all workers and
/// returns only when every task has finished (the barrier the propagator
/// needs between network levels). The calling thread participates as
/// worker 0, so a pool of size N spawns N-1 threads and Run(n, fn) with
/// n == 1 degenerates to a plain function call on the caller.
///
/// Tasks are claimed dynamically from a shared atomic counter, so uneven
/// node costs within a level balance automatically. `fn` must not throw
/// (report failures through its captured state instead); tasks of one Run()
/// call must be independent of each other.
class ThreadPool {
 public:
  /// Creates a pool with `num_workers` total workers (including the
  /// caller); 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_workers);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Total workers, including the calling thread.
  size_t num_workers() const { return threads_.size() + 1; }

  /// Runs fn(task_index, worker_index) for every task_index in
  /// [0, num_tasks), worker_index in [0, num_workers()), and blocks until
  /// all tasks completed. Not reentrant and not thread-safe: one Run() at a
  /// time, always from the same "owner" side.
  void Run(size_t num_tasks, const std::function<void(size_t, size_t)>& fn);

 private:
  /// One Run() call's state. Heap-allocated and shared with every worker
  /// that joins the batch: a straggler that wakes after the batch already
  /// completed (and a new one started) still holds the old batch, whose
  /// exhausted task counter sends it straight back to sleep — it can never
  /// claim into a newer batch's counters or call a destroyed callable.
  struct Batch {
    std::function<void(size_t, size_t)> fn;
    size_t num_tasks = 0;
    std::atomic<size_t> next_task{0};
    std::atomic<size_t> completed{0};
  };

  void WorkerMain(size_t worker_index);
  /// Claims tasks until the batch is drained.
  void DrainTasks(Batch& batch, size_t worker_index);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // Run() waits for batch completion
  std::shared_ptr<Batch> batch_;      // guarded by mu_
  uint64_t generation_ = 0;           // guarded by mu_; bumped per batch
  bool stop_ = false;                 // guarded by mu_
};

}  // namespace deltamon::common

#endif  // DELTAMON_COMMON_THREAD_POOL_H_
