#ifndef DELTAMON_COMMON_FLAT_TUPLE_SET_H_
#define DELTAMON_COMMON_FLAT_TUPLE_SET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

namespace deltamon {

/// An open-addressing hash set with dense storage, replacing node-based
/// std::unordered_set on the Δ-pipeline hot paths (see docs/data_plane.md).
///
/// Layout (Python-dict style): elements live contiguously in `dense_`, in
/// insertion order; `slots_` is a power-of-two linear-probing table of
/// {dense index, 32-bit hash tag} pairs. Probes touch only the 8-byte slot
/// array until the tag matches, so a miss costs a couple of cache lines and
/// no pointer chases; iteration is a plain vector walk.
///
/// Deletion uses swap-remove on the dense array (the last element moves
/// into the erased index — callers that track dense indices, e.g.
/// BaseRelation's column indexes, must repoint the moved element) and
/// backward-shift deletion on the slot table, so there are no tombstones to
/// accumulate.
///
/// Deviations from std::unordered_set, relied on by this codebase:
///  - iterators are contiguous (const T*-like) and are invalidated by any
///    insert (dense growth) or erase (swap-remove);
///  - erase(it) returns an iterator at the SAME position, which then holds
///    the previously-last element — the `it = pred ? s.erase(it) :
///    std::next(it)` filtering loop remains correct;
///  - pointers to elements are NOT stable across mutation.
///
/// Hash must be cheap: it is re-invoked during rehash and erase (Tuple
/// caches its hash word, making this a load).
template <typename T, typename Hash>
class FlatHashSet {
 public:
  using value_type = T;
  using const_iterator = typename std::vector<T>::const_iterator;
  using iterator = const_iterator;

  static constexpr size_t npos = static_cast<size_t>(-1);

  FlatHashSet() = default;
  FlatHashSet(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) insert(v);
  }
  template <typename It>
  FlatHashSet(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  const_iterator begin() const { return dense_.begin(); }
  const_iterator end() const { return dense_.end(); }
  const_iterator cbegin() const { return dense_.begin(); }
  const_iterator cend() const { return dense_.end(); }

  size_t size() const { return dense_.size(); }
  bool empty() const { return dense_.empty(); }

  void clear() {
    dense_.clear();
    slots_.clear();
    mask_ = 0;
  }

  /// Pre-sizes both the dense array and the slot table for `n` elements,
  /// so known-size producers (rollback, delta-union, cache fills) insert
  /// without rehashing.
  void reserve(size_t n) {
    dense_.reserve(n);
    size_t want = SlotCountFor(n);
    if (want > slots_.size()) Rehash(want);
  }

  bool contains(const T& v) const { return FindSlot(v, hash_(v)) != npos; }
  size_t count(const T& v) const { return contains(v) ? 1 : 0; }

  const_iterator find(const T& v) const {
    size_t s = FindSlot(v, hash_(v));
    return s == npos ? dense_.end() : dense_.begin() + slots_[s].index;
  }

  /// The dense position of `v`, or npos. Positions are stable across
  /// inserts of OTHER elements (append-only) but change on erase
  /// (swap-remove moves the last element into the erased position).
  size_t IndexOf(const T& v) const {
    size_t s = FindSlot(v, hash_(v));
    return s == npos ? npos : slots_[s].index;
  }

  /// Element at dense position `i` (valid while no mutation intervenes).
  const T& At(size_t i) const { return dense_[i]; }

  std::pair<const_iterator, bool> insert(const T& v) { return Emplace(v); }
  std::pair<const_iterator, bool> insert(T&& v) {
    return Emplace(std::move(v));
  }

  template <typename It>
  void insert(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  size_t erase(const T& v) {
    size_t s = FindSlot(v, hash_(v));
    if (s == npos) return 0;
    EraseSlot(s);
    return 1;
  }

  /// Erases the element at `it`; returns an iterator at the same position
  /// (now holding the previously-last element), or end().
  const_iterator erase(const_iterator it) {
    size_t i = static_cast<size_t>(it - dense_.begin());
    EraseSlot(SlotOfIndex(i));
    return dense_.begin() + i;
  }

  /// Set equality (order-independent), matching std::unordered_set.
  bool operator==(const FlatHashSet& other) const {
    if (dense_.size() != other.dense_.size()) return false;
    for (const T& v : dense_) {
      if (!other.contains(v)) return false;
    }
    return true;
  }

  /// Debug/test hook: verifies the slot table and dense array agree —
  /// every element probes back to its own slot and the live slot count
  /// matches size(). Used by the fuzz harness to certify the container
  /// under randomized insert/erase mixes.
  bool CheckInvariants() const {
    size_t live = 0;
    for (const Slot& s : slots_) {
      if (s.index != kEmpty) ++live;
    }
    if (live != dense_.size()) return false;
    for (size_t i = 0; i < dense_.size(); ++i) {
      size_t s = FindSlot(dense_[i], hash_(dense_[i]));
      if (s == npos || slots_[s].index != i) return false;
    }
    return true;
  }

 private:
  struct Slot {
    uint32_t index;
    uint32_t tag;
  };
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr size_t kMinSlots = 16;

  static uint32_t Tag(size_t h) { return static_cast<uint32_t>(h >> 32); }

  /// Smallest power-of-two table at most 7/8 full holding `n` elements.
  static size_t SlotCountFor(size_t n) {
    size_t want = kMinSlots;
    while (want * 7 < n * 8) want <<= 1;
    return want;
  }

  size_t FindSlot(const T& v, size_t h) const {
    if (slots_.empty()) return npos;
    const uint32_t tag = Tag(h);
    for (size_t s = h & mask_;; s = (s + 1) & mask_) {
      const Slot& slot = slots_[s];
      if (slot.index == kEmpty) return npos;
      if (slot.tag == tag && dense_[slot.index] == v) return s;
    }
  }

  /// Slot holding dense index `i` (must exist).
  size_t SlotOfIndex(size_t i) const {
    size_t h = hash_(dense_[i]);
    for (size_t s = h & mask_;; s = (s + 1) & mask_) {
      if (slots_[s].index == i) return s;
    }
  }

  template <typename U>
  std::pair<const_iterator, bool> Emplace(U&& v) {
    if (slots_.empty()) Rehash(kMinSlots);
    const size_t h = hash_(v);
    const uint32_t tag = Tag(h);
    size_t s = h & mask_;
    for (;; s = (s + 1) & mask_) {
      const Slot& slot = slots_[s];
      if (slot.index == kEmpty) break;
      if (slot.tag == tag && dense_[slot.index] == v) {
        return {dense_.begin() + slot.index, false};
      }
    }
    if ((dense_.size() + 1) * 8 > slots_.size() * 7) {
      Rehash(slots_.size() * 2);
      s = h & mask_;
      while (slots_[s].index != kEmpty) s = (s + 1) & mask_;
    }
    slots_[s] = Slot{static_cast<uint32_t>(dense_.size()), tag};
    dense_.push_back(std::forward<U>(v));
    return {dense_.end() - 1, true};
  }

  void EraseSlot(size_t s) {
    const size_t i = slots_[s].index;
    const size_t last = dense_.size() - 1;
    if (i != last) {
      // Repoint the slot of the last element before moving it into i.
      slots_[SlotOfIndex(last)].index = static_cast<uint32_t>(i);
      dense_[i] = std::move(dense_[last]);
    }
    dense_.pop_back();
    // Backward-shift deletion (Knuth 6.4R): close the hole without
    // tombstones by sliding displaced entries back toward their home slot.
    size_t hole = s;
    for (size_t j = (s + 1) & mask_;; j = (j + 1) & mask_) {
      const Slot& sj = slots_[j];
      if (sj.index == kEmpty) break;
      size_t home = hash_(dense_[sj.index]) & mask_;
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = sj;
        hole = j;
      }
    }
    slots_[hole].index = kEmpty;
  }

  /// Rebuilds only the slot table (elements never move on rehash).
  void Rehash(size_t new_count) {
    slots_.assign(new_count, Slot{kEmpty, 0});
    mask_ = new_count - 1;
    for (size_t i = 0; i < dense_.size(); ++i) {
      const size_t h = hash_(dense_[i]);
      size_t s = h & mask_;
      while (slots_[s].index != kEmpty) s = (s + 1) & mask_;
      slots_[s] = Slot{static_cast<uint32_t>(i), Tag(h)};
    }
  }

  std::vector<T> dense_;
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  [[no_unique_address]] Hash hash_;
};

}  // namespace deltamon

#endif  // DELTAMON_COMMON_FLAT_TUPLE_SET_H_
