#ifndef DELTAMON_COMMON_STATUS_H_
#define DELTAMON_COMMON_STATUS_H_

#include <cassert>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>

namespace deltamon {

/// Error codes for all fallible deltamon operations. The library never
/// throws; every operation that can fail returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kTypeError,
  kParseError,
  kUnimplemented,
  kInternal,
  /// First-committer-wins validation rejected the transaction: something
  /// it read or wrote was committed by a concurrent transaction after its
  /// snapshot. Retryable — re-running the same statements in a fresh
  /// transaction is expected to succeed.
  kTxnConflict,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation: a code plus, when not OK, a message describing
/// what went wrong. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TxnConflict(std::string msg) {
    return Status(StatusCode::kTxnConflict, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Streams s.ToString() (also makes gtest failures readable).
std::ostream& operator<<(std::ostream& os, const Status& s);

/// Either a value of type T or an error Status. Analogous to
/// absl::StatusOr / arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a (non-OK) Status keeps call
  /// sites readable: `return value;` / `return Status::NotFound(...);`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessors assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the enclosing function.
#define DELTAMON_RETURN_IF_ERROR(expr)                    \
  do {                                                    \
    ::deltamon::Status _status = (expr);                  \
    if (!_status.ok()) return _status;                    \
  } while (false)

/// Evaluates a Result<T> expression; on error returns the status, otherwise
/// moves the value into `lhs`.
#define DELTAMON_ASSIGN_OR_RETURN(lhs, expr)              \
  auto DELTAMON_CONCAT_(_result_, __LINE__) = (expr);     \
  if (!DELTAMON_CONCAT_(_result_, __LINE__).ok())         \
    return DELTAMON_CONCAT_(_result_, __LINE__).status(); \
  lhs = std::move(DELTAMON_CONCAT_(_result_, __LINE__)).value()

#define DELTAMON_CONCAT_IMPL_(a, b) a##b
#define DELTAMON_CONCAT_(a, b) DELTAMON_CONCAT_IMPL_(a, b)

}  // namespace deltamon

#endif  // DELTAMON_COMMON_STATUS_H_
