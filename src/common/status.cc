#include "common/status.h"

#include <ostream>

namespace deltamon {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTxnConflict:
      return "TxnConflict";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace deltamon
