#include "relalg/relalg.h"

namespace deltamon::relalg {

namespace {

TupleSet SetMinus(const TupleSet& a, const TupleSet& b) {
  TupleSet out;
  for (const Tuple& t : a) {
    if (!b.contains(t)) out.insert(t);
  }
  return out;
}

TupleSet SetAnd(const TupleSet& a, const TupleSet& b) {
  const TupleSet& small = a.size() <= b.size() ? a : b;
  const TupleSet& large = a.size() <= b.size() ? b : a;
  TupleSet out;
  for (const Tuple& t : small) {
    if (large.contains(t)) out.insert(t);
  }
  return out;
}

bool JoinMatches(const Tuple& q, const Tuple& r, const JoinColumns& on) {
  for (const auto& [qc, rc] : on) {
    if (!(q[qc] == r[rc])) return false;
  }
  return true;
}

using TupleIndex = std::unordered_multimap<Value, const Tuple*, ValueHash>;

TupleIndex IndexBy(const TupleSet& rel, size_t column) {
  TupleIndex index;
  index.reserve(rel.size());
  for (const Tuple& t : rel) index.emplace(t[column], &t);
  return index;
}

/// Join where the (small) left side is materialized and the right side is
/// an OldStateView: index the left side, stream the view once.
TupleSet JoinDeltaWithOld(const TupleSet& left, const OldStateView& right,
                          const JoinColumns& on) {
  TupleSet out;
  if (left.empty()) return out;
  if (on.empty()) {
    for (const Tuple& a : left) {
      right.ForEach([&](const Tuple& b) {
        out.insert(a.Concat(b));
        return true;
      });
    }
    return out;
  }
  TupleIndex index = IndexBy(left, on[0].first);
  right.ForEach([&](const Tuple& b) {
    auto range = index.equal_range(b[on[0].second]);
    for (auto it = range.first; it != range.second; ++it) {
      if (JoinMatches(*it->second, b, on)) out.insert(it->second->Concat(b));
    }
    return true;
  });
  return out;
}

/// Mirror image: old-state view on the left, small delta on the right.
TupleSet JoinOldWithDelta(const OldStateView& left, const TupleSet& right,
                          const JoinColumns& on) {
  TupleSet out;
  if (right.empty()) return out;
  if (on.empty()) {
    for (const Tuple& b : right) {
      left.ForEach([&](const Tuple& a) {
        out.insert(a.Concat(b));
        return true;
      });
    }
    return out;
  }
  TupleIndex index = IndexBy(right, on[0].second);
  left.ForEach([&](const Tuple& a) {
    auto range = index.equal_range(a[on[0].first]);
    for (auto it = range.first; it != range.second; ++it) {
      if (JoinMatches(a, *it->second, on)) out.insert(a.Concat(*it->second));
    }
    return true;
  });
  return out;
}

/// Corrects a combined raw delta per §7.2: a candidate insertion is real
/// only if it was not already derivable in the old state; a candidate
/// deletion only if it is no longer derivable in the new state.
DeltaSet Correct(const PartialDifferentials& partials,
                 const std::function<bool(const Tuple&)>& in_old,
                 const std::function<bool(const Tuple&)>& in_new) {
  TupleSet plus;
  TupleSet minus;
  for (const TupleSet* side : {&partials.plus_from_q, &partials.plus_from_r}) {
    for (const Tuple& t : *side) {
      if (!in_old(t)) plus.insert(t);
    }
  }
  for (const TupleSet* side :
       {&partials.minus_from_q, &partials.minus_from_r}) {
    for (const Tuple& t : *side) {
      if (!in_new(t)) minus.insert(t);
    }
  }
  return DeltaSet(std::move(plus), std::move(minus));
}

}  // namespace

TupleSet Select(const TupleSet& q, const Predicate& cond) {
  TupleSet out;
  for (const Tuple& t : q) {
    if (cond(t)) out.insert(t);
  }
  return out;
}

TupleSet Project(const TupleSet& q, const std::vector<size_t>& cols) {
  TupleSet out;
  for (const Tuple& t : q) out.insert(t.Project(cols));
  return out;
}

TupleSet Union(const TupleSet& q, const TupleSet& r) {
  TupleSet out = q;
  out.insert(r.begin(), r.end());
  return out;
}

TupleSet Difference(const TupleSet& q, const TupleSet& r) {
  return SetMinus(q, r);
}

TupleSet Intersect(const TupleSet& q, const TupleSet& r) {
  return SetAnd(q, r);
}

TupleSet Product(const TupleSet& q, const TupleSet& r) {
  TupleSet out;
  for (const Tuple& a : q) {
    for (const Tuple& b : r) out.insert(a.Concat(b));
  }
  return out;
}

TupleSet Join(const TupleSet& q, const TupleSet& r, const JoinColumns& on) {
  if (on.empty()) return Product(q, r);
  // Hash join, indexing the smaller input.
  TupleSet out;
  if (q.size() <= r.size()) {
    TupleIndex index = IndexBy(q, on[0].first);
    for (const Tuple& b : r) {
      auto range = index.equal_range(b[on[0].second]);
      for (auto it = range.first; it != range.second; ++it) {
        if (JoinMatches(*it->second, b, on)) {
          out.insert(it->second->Concat(b));
        }
      }
    }
  } else {
    TupleIndex index = IndexBy(r, on[0].second);
    for (const Tuple& a : q) {
      auto range = index.equal_range(a[on[0].first]);
      for (auto it = range.first; it != range.second; ++it) {
        if (JoinMatches(a, *it->second, on)) {
          out.insert(a.Concat(*it->second));
        }
      }
    }
  }
  return out;
}

DeltaSet PartialDifferentials::Combined() const {
  return DeltaSet(Union(plus_from_q, plus_from_r),
                  Union(minus_from_q, minus_from_r));
}

PartialDifferentials PartialsSelect(const TupleSet& /*q_new*/,
                                    const DeltaSet& dq,
                                    const Predicate& cond) {
  PartialDifferentials p;
  p.plus_from_q = Select(dq.plus(), cond);
  p.minus_from_q = Select(dq.minus(), cond);
  return p;
}

PartialDifferentials PartialsProject(const TupleSet& /*q_new*/,
                                     const DeltaSet& dq,
                                     const std::vector<size_t>& cols) {
  PartialDifferentials p;
  p.plus_from_q = Project(dq.plus(), cols);
  p.minus_from_q = Project(dq.minus(), cols);
  return p;
}

PartialDifferentials PartialsUnion(const TupleSet& q_new, const TupleSet& r_new,
                                   const DeltaSet& dq, const DeltaSet& dr) {
  OldStateView q_old(q_new, dq);
  OldStateView r_old(r_new, dr);
  PartialDifferentials p;
  for (const Tuple& t : dq.plus()) {          // Δ+Q − R_old
    if (!r_old.contains(t)) p.plus_from_q.insert(t);
  }
  for (const Tuple& t : dr.plus()) {          // Δ+R − Q_old
    if (!q_old.contains(t)) p.plus_from_r.insert(t);
  }
  for (const Tuple& t : dq.minus()) {         // Δ−Q − R
    if (!r_new.contains(t)) p.minus_from_q.insert(t);
  }
  for (const Tuple& t : dr.minus()) {         // Δ−R − Q
    if (!q_new.contains(t)) p.minus_from_r.insert(t);
  }
  return p;
}

PartialDifferentials PartialsDifference(const TupleSet& q_new,
                                        const TupleSet& r_new,
                                        const DeltaSet& dq,
                                        const DeltaSet& dr) {
  OldStateView q_old(q_new, dq);
  OldStateView r_old(r_new, dr);
  PartialDifferentials p;
  for (const Tuple& t : dq.plus()) {          // Δ+Q − R
    if (!r_new.contains(t)) p.plus_from_q.insert(t);
  }
  for (const Tuple& t : dr.minus()) {         // Q ∩ Δ−R
    if (q_new.contains(t)) p.plus_from_r.insert(t);
  }
  for (const Tuple& t : dq.minus()) {         // Δ−Q − R_old
    if (!r_old.contains(t)) p.minus_from_q.insert(t);
  }
  for (const Tuple& t : dr.plus()) {          // Q_old ∩ Δ+R
    if (q_old.contains(t)) p.minus_from_r.insert(t);
  }
  return p;
}

PartialDifferentials PartialsProduct(const TupleSet& q_new,
                                     const TupleSet& r_new, const DeltaSet& dq,
                                     const DeltaSet& dr) {
  OldStateView q_old(q_new, dq);
  OldStateView r_old(r_new, dr);
  PartialDifferentials p;
  p.plus_from_q = Product(dq.plus(), r_new);  // Δ+Q × R
  p.plus_from_r = Product(q_new, dr.plus());  // Q × Δ+R
  for (const Tuple& a : dq.minus()) {         // Δ−Q × R_old
    r_old.ForEach([&](const Tuple& b) {
      p.minus_from_q.insert(a.Concat(b));
      return true;
    });
  }
  for (const Tuple& b : dr.minus()) {         // Q_old × Δ−R
    q_old.ForEach([&](const Tuple& a) {
      p.minus_from_r.insert(a.Concat(b));
      return true;
    });
  }
  return p;
}

PartialDifferentials PartialsJoin(const TupleSet& q_new, const TupleSet& r_new,
                                  const JoinColumns& on, const DeltaSet& dq,
                                  const DeltaSet& dr) {
  OldStateView q_old(q_new, dq);
  OldStateView r_old(r_new, dr);
  PartialDifferentials p;
  p.plus_from_q = Join(dq.plus(), r_new, on);              // Δ+Q ⋈ R
  p.plus_from_r = Join(q_new, dr.plus(), on);              // Q ⋈ Δ+R
  p.minus_from_q = JoinDeltaWithOld(dq.minus(), r_old, on);  // Δ−Q ⋈ R_old
  p.minus_from_r = JoinOldWithDelta(q_old, dr.minus(), on);  // Q_old ⋈ Δ−R
  return p;
}

PartialDifferentials PartialsIntersect(const TupleSet& q_new,
                                       const TupleSet& r_new,
                                       const DeltaSet& dq, const DeltaSet& dr) {
  OldStateView q_old(q_new, dq);
  OldStateView r_old(r_new, dr);
  PartialDifferentials p;
  for (const Tuple& t : dq.plus()) {          // Δ+Q ∩ R
    if (r_new.contains(t)) p.plus_from_q.insert(t);
  }
  for (const Tuple& t : dr.plus()) {          // Q ∩ Δ+R
    if (q_new.contains(t)) p.plus_from_r.insert(t);
  }
  for (const Tuple& t : dq.minus()) {         // Δ−Q ∩ R_old
    if (r_old.contains(t)) p.minus_from_q.insert(t);
  }
  for (const Tuple& t : dr.minus()) {         // Q_old ∩ Δ−R
    if (q_old.contains(t)) p.minus_from_r.insert(t);
  }
  return p;
}

DeltaSet DeltaSelect(const TupleSet& q_new, const DeltaSet& dq,
                     const Predicate& cond) {
  // σ over net input deltas is already exact: Δ-sets are disjoint and a
  // tuple's selection status depends on nothing else.
  PartialDifferentials p = PartialsSelect(q_new, dq, cond);
  return DeltaSet(std::move(p.plus_from_q), std::move(p.minus_from_q));
}

DeltaSet DeltaProject(const TupleSet& q_new, const DeltaSet& dq,
                      const std::vector<size_t>& cols) {
  OldStateView q_old(q_new, dq);
  PartialDifferentials p = PartialsProject(q_new, dq, cols);
  // Projection needs the §7.2 correction: another witness tuple may still
  // (or may already) project to the same result.
  auto in_old = [&](const Tuple& t) {
    bool found = false;
    q_old.ForEach([&](const Tuple& s) {
      found = s.Project(cols) == t;
      return !found;
    });
    return found;
  };
  auto in_new = [&](const Tuple& t) {
    for (const Tuple& s : q_new) {
      if (s.Project(cols) == t) return true;
    }
    return false;
  };
  return Correct(p, in_old, in_new);
}

DeltaSet DeltaUnionOp(const TupleSet& q_new, const TupleSet& r_new,
                      const DeltaSet& dq, const DeltaSet& dr) {
  OldStateView q_old(q_new, dq);
  OldStateView r_old(r_new, dr);
  PartialDifferentials p = PartialsUnion(q_new, r_new, dq, dr);
  auto in_old = [&](const Tuple& t) {
    return q_old.contains(t) || r_old.contains(t);
  };
  auto in_new = [&](const Tuple& t) {
    return q_new.contains(t) || r_new.contains(t);
  };
  return Correct(p, in_old, in_new);
}

DeltaSet DeltaDifference(const TupleSet& q_new, const TupleSet& r_new,
                         const DeltaSet& dq, const DeltaSet& dr) {
  OldStateView q_old(q_new, dq);
  OldStateView r_old(r_new, dr);
  PartialDifferentials p = PartialsDifference(q_new, r_new, dq, dr);
  auto in_old = [&](const Tuple& t) {
    return q_old.contains(t) && !r_old.contains(t);
  };
  auto in_new = [&](const Tuple& t) {
    return q_new.contains(t) && !r_new.contains(t);
  };
  return Correct(p, in_old, in_new);
}

namespace {

/// Membership of a concatenated tuple in Q×R given membership views.
template <typename QSide, typename RSide>
bool SplitMember(const QSide& qs, const RSide& rs, size_t q_arity,
                 const Tuple& t) {
  std::vector<Value> left(t.values().begin(),
                          t.values().begin() + static_cast<long>(q_arity));
  std::vector<Value> right(t.values().begin() + static_cast<long>(q_arity),
                           t.values().end());
  return qs.contains(Tuple(std::move(left))) &&
         rs.contains(Tuple(std::move(right)));
}

size_t ArityOf(const TupleSet& s, const DeltaSet& d) {
  if (!s.empty()) return s.begin()->arity();
  if (!d.plus().empty()) return d.plus().begin()->arity();
  if (!d.minus().empty()) return d.minus().begin()->arity();
  return 0;
}

}  // namespace

DeltaSet DeltaProduct(const TupleSet& q_new, const TupleSet& r_new,
                      const DeltaSet& dq, const DeltaSet& dr) {
  OldStateView q_old(q_new, dq);
  OldStateView r_old(r_new, dr);
  PartialDifferentials p = PartialsProduct(q_new, r_new, dq, dr);
  size_t q_arity = ArityOf(q_new, dq);
  auto in_old = [&](const Tuple& t) {
    return SplitMember(q_old, r_old, q_arity, t);
  };
  auto in_new = [&](const Tuple& t) {
    return SplitMember(q_new, r_new, q_arity, t);
  };
  return Correct(p, in_old, in_new);
}

DeltaSet DeltaJoin(const TupleSet& q_new, const TupleSet& r_new,
                   const JoinColumns& on, const DeltaSet& dq,
                   const DeltaSet& dr) {
  OldStateView q_old(q_new, dq);
  OldStateView r_old(r_new, dr);
  PartialDifferentials p = PartialsJoin(q_new, r_new, on, dq, dr);
  size_t q_arity = ArityOf(q_new, dq);
  auto in_old = [&](const Tuple& t) {
    return SplitMember(q_old, r_old, q_arity, t);
  };
  auto in_new = [&](const Tuple& t) {
    return SplitMember(q_new, r_new, q_arity, t);
  };
  return Correct(p, in_old, in_new);
}

DeltaSet DeltaIntersect(const TupleSet& q_new, const TupleSet& r_new,
                        const DeltaSet& dq, const DeltaSet& dr) {
  OldStateView q_old(q_new, dq);
  OldStateView r_old(r_new, dr);
  PartialDifferentials p = PartialsIntersect(q_new, r_new, dq, dr);
  auto in_old = [&](const Tuple& t) {
    return q_old.contains(t) && r_old.contains(t);
  };
  auto in_new = [&](const Tuple& t) {
    return q_new.contains(t) && r_new.contains(t);
  };
  return Correct(p, in_old, in_new);
}

}  // namespace deltamon::relalg
