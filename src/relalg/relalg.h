#ifndef DELTAMON_RELALG_RELALG_H_
#define DELTAMON_RELALG_RELALG_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/tuple.h"
#include "delta/delta_set.h"

namespace deltamon::relalg {

/// Selection predicate over a tuple.
using Predicate = std::function<bool(const Tuple&)>;

/// Join condition: pairs of (left column, right column) that must be equal.
using JoinColumns = std::vector<std::pair<size_t, size_t>>;

/// --- Plain set-oriented relational operators (the naive path) -----------

TupleSet Select(const TupleSet& q, const Predicate& cond);
TupleSet Project(const TupleSet& q, const std::vector<size_t>& cols);
TupleSet Union(const TupleSet& q, const TupleSet& r);
TupleSet Difference(const TupleSet& q, const TupleSet& r);
TupleSet Intersect(const TupleSet& q, const TupleSet& r);
/// Cartesian product; each result tuple is the concatenation q ++ r.
TupleSet Product(const TupleSet& q, const TupleSet& r);
/// Equi-join on `on`; result tuples are concatenations q ++ r (join columns
/// appear on both sides, as in the product form of the join).
TupleSet Join(const TupleSet& q, const TupleSet& r, const JoinColumns& on);

/// A lazy view of a relation's OLD state over its new state and Δ-set
/// (paper fig. 3: S_old = (S_new ∪ Δ−S) − Δ+S) — membership tests and
/// iteration without materializing a copy. This is what lets the negative
/// partial-differential columns run in time proportional to the Δ-sets.
class OldStateView {
 public:
  OldStateView(const TupleSet& new_state, const DeltaSet& delta)
      : new_state_(new_state), delta_(delta) {}

  bool contains(const Tuple& t) const {
    if (delta_.minus().contains(t)) return true;
    return new_state_.contains(t) && !delta_.plus().contains(t);
  }

  size_t size() const {
    return new_state_.size() + delta_.minus().size() - delta_.plus().size();
  }

  /// Iterates the old state: new tuples not in Δ+, then Δ−. `fn` returns
  /// false to stop.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Tuple& t : new_state_) {
      if (delta_.plus().contains(t)) continue;
      if (!fn(t)) return;
    }
    for (const Tuple& t : delta_.minus()) {
      if (!fn(t)) return;
    }
  }

 private:
  const TupleSet& new_state_;
  const DeltaSet& delta_;
};

/// --- Partial differentials of the operators (paper fig. 4) --------------
///
/// Each Partials* function returns the four partial-differential columns of
/// fig. 4, computed verbatim from the table:
///
///   P        | ΔP/Δ+Q       | ΔP/Δ+R*     | ΔP/Δ−Q        | ΔP/Δ−R*
///   σ_cond Q | σ_cond Δ+Q   |             | σ_cond Δ−Q    |
///   π_attr Q | π_attr Δ+Q   |             | π_attr Δ−Q    |
///   Q ∪ R    | Δ+Q − R_old  | Δ+R − Q_old | Δ−Q − R       | Δ−R − Q
///   Q − R    | Δ+Q − R      | Q ∩ Δ−R     | Δ−Q − R_old   | Q_old ∩ Δ+R
///   Q × R    | Δ+Q × R      | Q × Δ+R     | Δ−Q × R_old   | Q_old × Δ−R
///   Q ⋈ R    | Δ+Q ⋈ R      | Q ⋈ Δ+R     | Δ−Q ⋈ R_old   | Q_old ⋈ Δ−R
///   Q ∩ R    | Δ+Q ∩ R      | Q ∩ Δ+R     | Δ−Q ∩ R_old   | Q_old ∩ Δ−R
///
/// (*for Q − R the "from R" columns carry the opposite delta sign, exactly
/// as printed in the paper.)
///
/// Positive columns evaluate against the NEW input states; negative columns
/// evaluate against OLD states reconstructed by logical rollback — no
/// materialized old state is required (paper §4, fig. 3). Unary operators
/// leave the *_from_r columns empty.
struct PartialDifferentials {
  TupleSet plus_from_q;   ///< positive changes to P caused by ΔQ
  TupleSet plus_from_r;   ///< positive changes to P caused by ΔR
  TupleSet minus_from_q;  ///< negative changes to P caused by ΔQ
  TupleSet minus_from_r;  ///< negative changes to P caused by ΔR

  /// Raw combination <plus_from_q ∪ plus_from_r, minus_from_q ∪
  /// minus_from_r>. May over-approximate (§7.2); see the Delta* functions
  /// for the corrected net change.
  DeltaSet Combined() const;
};

PartialDifferentials PartialsSelect(const TupleSet& q_new, const DeltaSet& dq,
                                    const Predicate& cond);
PartialDifferentials PartialsProject(const TupleSet& q_new, const DeltaSet& dq,
                                     const std::vector<size_t>& cols);
PartialDifferentials PartialsUnion(const TupleSet& q_new, const TupleSet& r_new,
                                   const DeltaSet& dq, const DeltaSet& dr);
PartialDifferentials PartialsDifference(const TupleSet& q_new,
                                        const TupleSet& r_new,
                                        const DeltaSet& dq, const DeltaSet& dr);
PartialDifferentials PartialsProduct(const TupleSet& q_new,
                                     const TupleSet& r_new, const DeltaSet& dq,
                                     const DeltaSet& dr);
PartialDifferentials PartialsJoin(const TupleSet& q_new, const TupleSet& r_new,
                                  const JoinColumns& on, const DeltaSet& dq,
                                  const DeltaSet& dr);
PartialDifferentials PartialsIntersect(const TupleSet& q_new,
                                       const TupleSet& r_new,
                                       const DeltaSet& dq, const DeltaSet& dr);

/// --- Net operator deltas -------------------------------------------------
///
/// The exact net change ΔP = <P_new − P_old, P_old − P_new> computed
/// incrementally: combine the fig. 4 partials, then apply the §7.2
/// correction (drop insertions already true in the old state and deletions
/// still true in the new state). Equal to DiffStates(P_old, P_new) — the
/// property tests assert this for randomized inputs.
DeltaSet DeltaSelect(const TupleSet& q_new, const DeltaSet& dq,
                     const Predicate& cond);
DeltaSet DeltaProject(const TupleSet& q_new, const DeltaSet& dq,
                      const std::vector<size_t>& cols);
DeltaSet DeltaUnionOp(const TupleSet& q_new, const TupleSet& r_new,
                      const DeltaSet& dq, const DeltaSet& dr);
DeltaSet DeltaDifference(const TupleSet& q_new, const TupleSet& r_new,
                         const DeltaSet& dq, const DeltaSet& dr);
DeltaSet DeltaProduct(const TupleSet& q_new, const TupleSet& r_new,
                      const DeltaSet& dq, const DeltaSet& dr);
DeltaSet DeltaJoin(const TupleSet& q_new, const TupleSet& r_new,
                   const JoinColumns& on, const DeltaSet& dq,
                   const DeltaSet& dr);
DeltaSet DeltaIntersect(const TupleSet& q_new, const TupleSet& r_new,
                        const DeltaSet& dq, const DeltaSet& dr);

}  // namespace deltamon::relalg

#endif  // DELTAMON_RELALG_RELALG_H_
