#ifndef DELTAMON_BENCH_UTIL_REPORT_H_
#define DELTAMON_BENCH_UTIL_REPORT_H_

namespace deltamon::bench {

/// Shared main() for every bench/ program: runs the registered
/// google-benchmark suite with console output as usual, then writes a
/// schema-valid `BENCH_<name>.json` snapshot (per-benchmark timings and
/// counters, the global obs metrics registry, environment, git sha) so the
/// perf trajectory accumulates run over run.
///
/// The report lands in $DELTAMON_BENCH_OUT_DIR (default: the current
/// working directory). Set DELTAMON_BENCH_NO_REPORT=1 to suppress it, and
/// DELTAMON_OBS_DISABLE=1 to run with instrumentation runtime-disabled.
///
/// BenchMain additionally understands `--threads=N` (stripped before
/// google-benchmark sees the argument list): benchmarks that sweep a
/// propagation thread count consult ThreadsArg() and pin every variant to
/// N instead of their registered sweep values.
/// Returns the process exit code.
int BenchMain(int argc, char** argv, const char* name);

/// Thread-count override from `--threads=N`, or 0 when the flag was not
/// given (benchmarks then use their registered per-variant thread counts).
int ThreadsArg();

}  // namespace deltamon::bench

/// Drop-in replacement for BENCHMARK_MAIN() in bench/ programs.
#define DELTAMON_BENCH_MAIN(name)                       \
  int main(int argc, char** argv) {                     \
    return ::deltamon::bench::BenchMain(argc, argv, name); \
  }

#endif  // DELTAMON_BENCH_UTIL_REPORT_H_
