#ifndef DELTAMON_BENCH_UTIL_DIFF_H_
#define DELTAMON_BENCH_UTIL_DIFF_H_

#include <string>
#include <vector>

#include "obs/json.h"

namespace deltamon::bench {

/// --- Bench report regression diffing ---------------------------------------
///
/// Compares two `deltamon.bench.v1` reports (obs::BuildBenchReport output)
/// benchmark by benchmark, so CI and local runs can gate on "no benchmark
/// got more than X% slower than the committed baseline".

/// Comparison tolerances.
struct DiffOptions {
  /// Relative slowdown tolerated before a benchmark counts as a
  /// regression: current > baseline * (1 + threshold). Timing noise on
  /// shared runners easily reaches several percent, so the default is
  /// deliberately loose.
  double threshold = 0.10;
};

/// One matched benchmark.
struct BenchDelta {
  std::string name;
  double baseline_ns = 0.0;  ///< per-iteration real time in the baseline
  double current_ns = 0.0;   ///< per-iteration real time in the new run
  double ratio = 1.0;        ///< current / baseline (> 1 means slower)
  bool regression = false;   ///< ratio exceeds 1 + threshold
  bool improvement = false;  ///< ratio below 1 - threshold
};

/// Full comparison of two reports.
struct DiffResult {
  std::string baseline_name;  ///< report "name" fields, for the header
  std::string current_name;
  std::vector<BenchDelta> deltas;  ///< matched benchmarks, baseline order
  /// Benchmarks present only on one side. A disappeared benchmark is
  /// suspicious (renamed? silently skipped?) but not a timing regression.
  std::vector<std::string> only_baseline;
  std::vector<std::string> only_current;

  bool has_regression() const {
    for (const BenchDelta& d : deltas) {
      if (d.regression) return true;
    }
    return false;
  }
};

/// Compares two schema-validated bench reports. Repetitions of the same
/// benchmark name are collapsed to their minimum real time (the standard
/// "best of N" noise filter) before comparison. Fails if either document
/// is not a valid `deltamon.bench.v1` report.
Result<DiffResult> CompareReports(const obs::Json& baseline,
                                  const obs::Json& current,
                                  const DiffOptions& options = {});

/// Reads, parses, and compares two report files.
Result<DiffResult> CompareReportFiles(const std::string& baseline_path,
                                      const std::string& current_path,
                                      const DiffOptions& options = {});

/// Human-readable rendering, one line per benchmark:
///
///   fig6/few_changes/1000        1.23 ms ->  1.25 ms  +1.6%
///   micro/delta_union/64        10.01 us -> 15.40 us +53.9%  REGRESSION
std::string FormatDiff(const DiffResult& result, const DiffOptions& options);

/// Machine-readable rendering for CI annotation: a JSON array with one
/// object per matched benchmark —
///   { "name", "baseline_ns", "current_ns", "delta_pct",
///     "verdict": "ok" | "improved" | "regression" }
/// followed by one object per unmatched benchmark with
///   "verdict": "missing" (baseline only) | "new" (current only).
obs::Json FormatDiffJson(const DiffResult& result);

}  // namespace deltamon::bench

#endif  // DELTAMON_BENCH_UTIL_DIFF_H_
