#ifndef DELTAMON_BENCH_UTIL_INVENTORY_H_
#define DELTAMON_BENCH_UTIL_INVENTORY_H_

#include <cstdint>
#include <vector>

#include "rules/engine.h"

namespace deltamon::workload {

/// Parameters for the paper's running inventory example (§3.1).
struct InventoryConfig {
  size_t num_items = 100;
  int64_t max_stock = 5000;
  int64_t min_stock = 100;
  int64_t consume_freq = 20;
  int64_t delivery_time = 2;
  /// threshold(i) = consume_freq * delivery_time + min_stock = 140 with the
  /// defaults; quantities start well above it so the rule is quiet.
  int64_t initial_quantity = 1000;
  /// Commit the population transaction (and run the check phase) at the
  /// end of BuildInventory.
  bool commit = true;
};

/// Handles to everything BuildInventory created.
struct InventorySchema {
  TypeId item = kInvalidTypeId;
  TypeId supplier = kInvalidTypeId;
  RelationId quantity = kInvalidRelationId;
  RelationId max_stock = kInvalidRelationId;
  RelationId min_stock = kInvalidRelationId;
  RelationId consume_freq = kInvalidRelationId;
  RelationId supplies = kInvalidRelationId;       // (supplier, item)
  RelationId delivery_time = kInvalidRelationId;  // (item, supplier, int)
  RelationId threshold = kInvalidRelationId;      // derived (item) -> int
  RelationId cnd_monitor_items = kInvalidRelationId;  // derived () -> item
  std::vector<Oid> items;
  std::vector<Oid> suppliers;
};

/// Creates the paper's inventory schema — stored functions quantity,
/// max_stock, min_stock, consume_freq, supplies, delivery_time; the derived
/// threshold view; and the condition function
///
///   cnd_monitor_items(I) <- quantity(I,Q) AND threshold(I,T) AND Q < T
///   threshold(I,T) <- consume_freq(I,C) AND supplies(S,I) AND
///                     delivery_time(I,S,D) AND G = C*D AND
///                     min_stock(I,M) AND T = G+M
///
/// and populates `config.num_items` items, each with its own supplier.
Result<InventorySchema> BuildInventory(Engine& engine,
                                       const InventoryConfig& config);

/// A ready-to-measure monitoring setup: engine + inventory + an activated
/// monitor_items rule whose action only counts firings.
struct MonitorSetup {
  std::unique_ptr<Engine> engine;
  InventorySchema schema;
  /// Total rule firings (instances ordered) so far.
  size_t fired = 0;
};

/// Builds an inventory of `num_items` items and activates a counting
/// monitor_items rule under the given monitoring mode and semantics.
/// `propagate_deletions = false` gives the paper's insertions-only network
/// of fig. 2 (five positive partial differentials).
Result<std::unique_ptr<MonitorSetup>> SetupMonitorItems(
    size_t num_items, rules::MonitorMode mode,
    rules::Semantics semantics = rules::Semantics::kNervous,
    bool propagate_deletions = false);

/// A fleet of independently-defined monitor rules over one shared
/// inventory: rule k watches its own condition relation
/// cnd_monitor_items_<k> (same body as cnd_monitor_items). Every condition
/// is a distinct root node of the propagation network at the same level,
/// which gives level-synchronous parallel propagation `num_rules`-wide
/// waves to spread across workers — the single-rule setup has at most one
/// derived node per level and therefore always takes the serial path.
struct FleetSetup {
  std::unique_ptr<Engine> engine;
  InventorySchema schema;
  std::vector<RelationId> conditions;
  /// Total rule firings (across all rules in the fleet) so far.
  size_t fired = 0;
};

/// Builds an inventory of `num_items` items and activates `num_rules`
/// counting monitor rules, each on its own copy of the condition.
Result<std::unique_ptr<FleetSetup>> SetupMonitorFleet(
    size_t num_items, size_t num_rules, rules::MonitorMode mode);

/// `set fn(object) = value` convenience for single-argument integer stored
/// functions.
Status SetFn(Engine& engine, RelationId fn, Oid object, int64_t value);

/// Current value of a single-argument integer stored function (NotFound if
/// unset).
Result<int64_t> GetFn(const Engine& engine, RelationId fn, Oid object);

}  // namespace deltamon::workload

#endif  // DELTAMON_BENCH_UTIL_INVENTORY_H_
