#include "bench_util/inventory.h"

namespace deltamon::workload {

using objectlog::ArithOp;
using objectlog::Clause;
using objectlog::CompareOp;
using objectlog::Literal;
using objectlog::Term;

namespace {

ColumnType IntCol() { return ColumnType{ValueKind::kInt, kInvalidTypeId}; }
ColumnType ObjCol(TypeId type) { return ColumnType{ValueKind::kObject, type}; }

/// Defines `cnd` as the paper's monitor condition over `s`:
///   cnd(I) <- quantity(I,Q) AND threshold(I,T) AND Q < T
Status DefineCondition(Engine& engine, const InventorySchema& s,
                       RelationId cnd) {
  Clause c;
  c.head_relation = cnd;
  c.num_vars = 3;
  c.var_names = {"I", "Q", "T"};
  const int I = 0, Q = 1, T = 2;
  c.head_args = {Term::Var(I)};
  c.body = {
      Literal::Relation(s.quantity, {Term::Var(I), Term::Var(Q)}),
      Literal::Relation(s.threshold, {Term::Var(I), Term::Var(T)}),
      Literal::Compare(CompareOp::kLt, Term::Var(Q), Term::Var(T)),
  };
  return engine.registry.Define(cnd, std::move(c), engine.db.catalog());
}

}  // namespace

Result<InventorySchema> BuildInventory(Engine& engine,
                                       const InventoryConfig& config) {
  InventorySchema s;
  Catalog& cat = engine.db.catalog();
  DELTAMON_ASSIGN_OR_RETURN(s.item, cat.CreateType("item"));
  DELTAMON_ASSIGN_OR_RETURN(s.supplier, cat.CreateType("supplier"));

  auto int_fn = [&](const char* name, TypeId arg) {
    return cat.CreateStoredFunction(
        name, FunctionSignature{{ObjCol(arg)}, {IntCol()}});
  };
  DELTAMON_ASSIGN_OR_RETURN(s.quantity, int_fn("quantity", s.item));
  DELTAMON_ASSIGN_OR_RETURN(s.max_stock, int_fn("max_stock", s.item));
  DELTAMON_ASSIGN_OR_RETURN(s.min_stock, int_fn("min_stock", s.item));
  DELTAMON_ASSIGN_OR_RETURN(s.consume_freq, int_fn("consume_freq", s.item));
  DELTAMON_ASSIGN_OR_RETURN(
      s.supplies, cat.CreateStoredFunction(
                      "supplies",
                      FunctionSignature{{ObjCol(s.supplier)},
                                        {ObjCol(s.item)}}));
  DELTAMON_ASSIGN_OR_RETURN(
      s.delivery_time,
      cat.CreateStoredFunction(
          "delivery_time",
          FunctionSignature{{ObjCol(s.item), ObjCol(s.supplier)},
                            {IntCol()}}));

  // threshold(I) -> T, derived:
  //   threshold(I,T) <- consume_freq(I,C) AND supplies(S,I) AND
  //                     delivery_time(I,S,D) AND G = C*D AND
  //                     min_stock(I,M) AND T = G+M
  DELTAMON_ASSIGN_OR_RETURN(
      s.threshold,
      cat.CreateDerivedFunction(
          "threshold", FunctionSignature{{ObjCol(s.item)}, {IntCol()}}));
  {
    Clause c;
    c.head_relation = s.threshold;
    c.num_vars = 7;
    c.var_names = {"I", "T", "C", "S", "D", "G", "M"};
    const int I = 0, T = 1, C = 2, S = 3, D = 4, G = 5, M = 6;
    c.head_args = {Term::Var(I), Term::Var(T)};
    c.body = {
        Literal::Relation(s.consume_freq, {Term::Var(I), Term::Var(C)}),
        Literal::Relation(s.supplies, {Term::Var(S), Term::Var(I)}),
        Literal::Relation(s.delivery_time,
                          {Term::Var(I), Term::Var(S), Term::Var(D)}),
        Literal::Arith(ArithOp::kMul, Term::Var(G), Term::Var(C),
                       Term::Var(D)),
        Literal::Relation(s.min_stock, {Term::Var(I), Term::Var(M)}),
        Literal::Arith(ArithOp::kAdd, Term::Var(T), Term::Var(G),
                       Term::Var(M)),
    };
    DELTAMON_RETURN_IF_ERROR(engine.registry.Define(s.threshold, std::move(c),
                                                    cat));
  }

  // cnd_monitor_items() -> item, derived:
  //   cnd_monitor_items(I) <- quantity(I,Q) AND threshold(I,T) AND Q < T
  DELTAMON_ASSIGN_OR_RETURN(
      s.cnd_monitor_items,
      cat.CreateDerivedFunction(
          "cnd_monitor_items", FunctionSignature{{}, {ObjCol(s.item)}}));
  DELTAMON_RETURN_IF_ERROR(DefineCondition(engine, s, s.cnd_monitor_items));

  // Population (paper §3.1, scaled to num_items).
  for (size_t i = 0; i < config.num_items; ++i) {
    DELTAMON_ASSIGN_OR_RETURN(Oid item, cat.CreateObject(s.item));
    DELTAMON_ASSIGN_OR_RETURN(Oid sup, cat.CreateObject(s.supplier));
    s.items.push_back(item);
    s.suppliers.push_back(sup);
    DELTAMON_RETURN_IF_ERROR(SetFn(engine, s.max_stock, item,
                                   config.max_stock));
    DELTAMON_RETURN_IF_ERROR(SetFn(engine, s.min_stock, item,
                                   config.min_stock));
    DELTAMON_RETURN_IF_ERROR(SetFn(engine, s.consume_freq, item,
                                   config.consume_freq));
    DELTAMON_RETURN_IF_ERROR(SetFn(engine, s.quantity, item,
                                   config.initial_quantity));
    DELTAMON_RETURN_IF_ERROR(engine.db.Set(s.supplies, Tuple{Value(sup)},
                                           Tuple{Value(item)}));
    DELTAMON_RETURN_IF_ERROR(
        engine.db.Set(s.delivery_time, Tuple{Value(item), Value(sup)},
                      Tuple{Value(config.delivery_time)}));
  }
  if (config.commit) DELTAMON_RETURN_IF_ERROR(engine.db.Commit());
  return s;
}

Result<std::unique_ptr<MonitorSetup>> SetupMonitorItems(
    size_t num_items, rules::MonitorMode mode, rules::Semantics semantics,
    bool propagate_deletions) {
  auto setup = std::make_unique<MonitorSetup>();
  setup->engine = std::make_unique<Engine>();
  setup->engine->rules.SetMode(mode);
  InventoryConfig config;
  config.num_items = num_items;
  DELTAMON_ASSIGN_OR_RETURN(setup->schema,
                            BuildInventory(*setup->engine, config));
  rules::RuleOptions options;
  options.semantics = semantics;
  options.propagate_deletions = propagate_deletions;
  MonitorSetup* raw = setup.get();
  DELTAMON_ASSIGN_OR_RETURN(
      rules::RuleId rule,
      setup->engine->rules.CreateRule(
          "monitor_items", setup->schema.cnd_monitor_items,
          [raw](Database&, const Tuple&, const std::vector<Tuple>& items) {
            raw->fired += items.size();
            return Status::OK();
          },
          options));
  DELTAMON_RETURN_IF_ERROR(setup->engine->rules.Activate(rule));
  return setup;
}

Result<std::unique_ptr<FleetSetup>> SetupMonitorFleet(
    size_t num_items, size_t num_rules, rules::MonitorMode mode) {
  auto setup = std::make_unique<FleetSetup>();
  setup->engine = std::make_unique<Engine>();
  setup->engine->rules.SetMode(mode);
  InventoryConfig config;
  config.num_items = num_items;
  DELTAMON_ASSIGN_OR_RETURN(setup->schema,
                            BuildInventory(*setup->engine, config));
  Catalog& cat = setup->engine->db.catalog();
  FleetSetup* raw = setup.get();
  for (size_t k = 0; k < num_rules; ++k) {
    const std::string suffix = "_" + std::to_string(k);
    DELTAMON_ASSIGN_OR_RETURN(
        RelationId cnd,
        cat.CreateDerivedFunction(
            "cnd_monitor_items" + suffix,
            FunctionSignature{{}, {ObjCol(setup->schema.item)}}));
    DELTAMON_RETURN_IF_ERROR(
        DefineCondition(*setup->engine, setup->schema, cnd));
    setup->conditions.push_back(cnd);
    DELTAMON_ASSIGN_OR_RETURN(
        rules::RuleId rule,
        setup->engine->rules.CreateRule(
            "monitor_items" + suffix, cnd,
            [raw](Database&, const Tuple&, const std::vector<Tuple>& items) {
              raw->fired += items.size();
              return Status::OK();
            },
            rules::RuleOptions{}));
    DELTAMON_RETURN_IF_ERROR(setup->engine->rules.Activate(rule));
  }
  return setup;
}

Status SetFn(Engine& engine, RelationId fn, Oid object, int64_t value) {
  return engine.db.Set(fn, Tuple{Value(object)}, Tuple{Value(value)});
}

Result<int64_t> GetFn(const Engine& engine, RelationId fn, Oid object) {
  const BaseRelation* rel = engine.db.catalog().GetBaseRelation(fn);
  if (rel == nullptr) return Status::InvalidArgument("not a stored function");
  ScanPattern pattern(rel->arity());
  pattern[0] = Value(object);
  int64_t out = 0;
  bool found = false;
  rel->Scan(pattern, [&](const Tuple& t) {
    if (t[1].is_int()) {
      out = t[1].AsInt();
      found = true;
    }
    return false;
  });
  if (!found) return Status::NotFound("no value for object");
  return out;
}

}  // namespace deltamon::workload
