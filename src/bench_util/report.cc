#include "bench_util/report.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"

namespace deltamon::bench {

namespace {

/// Console output as usual, plus a machine-readable record of every
/// iteration run (aggregates like mean/median are skipped: the JSON keeps
/// raw runs, trend tooling can aggregate).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    int64_t iterations = 0;
    double real_time_ns = 0;
    double cpu_time_ns = 0;
    bool error = false;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      Entry e;
      e.name = run.benchmark_name();
      e.iterations = static_cast<int64_t>(run.iterations);
      // Accumulated times are in seconds; store per-iteration nanoseconds.
      double iters = run.iterations == 0
                         ? 1.0
                         : static_cast<double>(run.iterations);
      e.real_time_ns = run.real_accumulated_time * 1e9 / iters;
      e.cpu_time_ns = run.cpu_accumulated_time * 1e9 / iters;
      e.error = run.error_occurred;
      for (const auto& [name, counter] : run.counters) {
        e.counters.emplace_back(name, static_cast<double>(counter));
      }
      entries_.push_back(std::move(e));
      total_wall_ns_ += run.real_accumulated_time * 1e9;
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Entry>& entries() const { return entries_; }
  uint64_t total_wall_ns() const {
    return static_cast<uint64_t>(total_wall_ns_);
  }

 private:
  std::vector<Entry> entries_;
  double total_wall_ns_ = 0;
};

obs::Json BenchmarksJson(const std::vector<CollectingReporter::Entry>& runs) {
  obs::Json out = obs::Json::Array();
  for (const auto& e : runs) {
    obs::Json b = obs::Json::Object();
    b.Set("name", e.name);
    b.Set("iterations", e.iterations);
    b.Set("real_time_ns", e.real_time_ns);
    b.Set("cpu_time_ns", e.cpu_time_ns);
    if (e.error) b.Set("error", true);
    obs::Json counters = obs::Json::Object();
    for (const auto& [name, value] : e.counters) counters.Set(name, value);
    b.Set("counters", std::move(counters));
    out.Append(std::move(b));
  }
  return out;
}

int g_threads_arg = 0;

}  // namespace

int ThreadsArg() { return g_threads_arg; }

int BenchMain(int argc, char** argv, const char* name) {
  // Measure the runtime-disabled instrumentation path (enabled is the
  // default): DELTAMON_OBS_DISABLE=1 turns every obs macro into a relaxed
  // atomic load + branch; the report then carries empty metrics.
  if (const char* off = std::getenv("DELTAMON_OBS_DISABLE");
      off != nullptr && off[0] == '1') {
    obs::SetEnabled(false);
  }
  // Strip --threads=N before google-benchmark parses the argument list
  // (it rejects flags it does not know about).
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      char* end = nullptr;
      long threads = std::strtol(argv[i] + 10, &end, 10);
      if (end == argv[i] + 10 || *end != '\0' || threads < 0) {
        std::fprintf(stderr, "bad --threads value '%s'\n", argv[i] + 10);
        return 1;
      }
      g_threads_arg = static_cast<int>(threads);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (const char* no_report = std::getenv("DELTAMON_BENCH_NO_REPORT");
      no_report != nullptr && no_report[0] == '1') {
    return 0;
  }
  const char* dir_env = std::getenv("DELTAMON_BENCH_OUT_DIR");
  std::string dir = dir_env == nullptr ? "" : dir_env;

  obs::Json report = obs::BuildBenchReport(
      name, BenchmarksJson(reporter.entries()), reporter.total_wall_ns(),
      obs::Registry::Global().Snapshot());
  Status s = obs::WriteBenchReport(report, dir);
  if (!s.ok()) {
    std::fprintf(stderr, "BENCH_%s.json not written: %s\n", name,
                 s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %sBENCH_%s.json\n",
               dir.empty() ? "" : (dir + "/").c_str(), name);
  return 0;
}

}  // namespace deltamon::bench
