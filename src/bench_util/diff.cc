#include "bench_util/diff.h"

#include <algorithm>
#include <cstdio>

#include "obs/report.h"

namespace deltamon::bench {

namespace {

/// name -> best (minimum) per-iteration real time, insertion-ordered.
using BenchTimes = std::vector<std::pair<std::string, double>>;

Result<BenchTimes> ExtractTimes(const obs::Json& report) {
  DELTAMON_RETURN_IF_ERROR(obs::ValidateBenchReport(report));
  BenchTimes out;
  for (const obs::Json& b : report.Get("benchmarks")->array_items()) {
    const std::string& name = b.Get("name")->as_string();
    double ns = b.Get("real_time_ns")->as_double();
    auto it = std::find_if(out.begin(), out.end(),
                           [&](const auto& e) { return e.first == name; });
    if (it == out.end()) {
      out.emplace_back(name, ns);
    } else {
      it->second = std::min(it->second, ns);
    }
  }
  return out;
}

const double* FindTime(const BenchTimes& times, const std::string& name) {
  for (const auto& [n, ns] : times) {
    if (n == name) return &ns;
  }
  return nullptr;
}

/// "1.23 us" / "4.56 ms" — unit chosen per value so both columns stay
/// readable across micro and macro benchmarks.
std::string HumanTime(double ns) {
  char buf[32];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  }
  return buf;
}

}  // namespace

Result<DiffResult> CompareReports(const obs::Json& baseline,
                                  const obs::Json& current,
                                  const DiffOptions& options) {
  DELTAMON_ASSIGN_OR_RETURN(BenchTimes base_times, ExtractTimes(baseline));
  DELTAMON_ASSIGN_OR_RETURN(BenchTimes cur_times, ExtractTimes(current));

  DiffResult result;
  result.baseline_name = baseline.Get("name")->as_string();
  result.current_name = current.Get("name")->as_string();

  for (const auto& [name, base_ns] : base_times) {
    const double* cur_ns = FindTime(cur_times, name);
    if (cur_ns == nullptr) {
      result.only_baseline.push_back(name);
      continue;
    }
    BenchDelta d;
    d.name = name;
    d.baseline_ns = base_ns;
    d.current_ns = *cur_ns;
    // A zero baseline carries no information to regress against; treat
    // the ratio as flat rather than dividing by zero.
    d.ratio = base_ns > 0.0 ? *cur_ns / base_ns : 1.0;
    d.regression = d.ratio > 1.0 + options.threshold;
    d.improvement = d.ratio < 1.0 - options.threshold;
    result.deltas.push_back(std::move(d));
  }
  for (const auto& [name, ns] : cur_times) {
    if (FindTime(base_times, name) == nullptr) {
      result.only_current.push_back(name);
    }
  }
  return result;
}

Result<DiffResult> CompareReportFiles(const std::string& baseline_path,
                                      const std::string& current_path,
                                      const DiffOptions& options) {
  DELTAMON_ASSIGN_OR_RETURN(std::string base_text,
                            obs::ReadTextFile(baseline_path));
  DELTAMON_ASSIGN_OR_RETURN(std::string cur_text,
                            obs::ReadTextFile(current_path));
  DELTAMON_ASSIGN_OR_RETURN(obs::Json base, obs::Json::Parse(base_text));
  DELTAMON_ASSIGN_OR_RETURN(obs::Json cur, obs::Json::Parse(cur_text));
  Result<DiffResult> result = CompareReports(base, cur, options);
  if (!result.ok()) {
    return Status::InvalidArgument("comparing '" + baseline_path + "' vs '" +
                                   current_path +
                                   "': " + result.status().message());
  }
  return result;
}

std::string FormatDiff(const DiffResult& result, const DiffOptions& options) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "bench_diff: %s (baseline) vs %s (current), threshold %.1f%%\n",
                result.baseline_name.c_str(), result.current_name.c_str(),
                options.threshold * 100.0);
  std::string out = line;
  for (const BenchDelta& d : result.deltas) {
    std::snprintf(line, sizeof(line), "  %-44s %10s -> %10s  %+.1f%%%s\n",
                  d.name.c_str(), HumanTime(d.baseline_ns).c_str(),
                  HumanTime(d.current_ns).c_str(), (d.ratio - 1.0) * 100.0,
                  d.regression     ? "  REGRESSION"
                  : d.improvement ? "  improved"
                                  : "");
    out += line;
  }
  for (const std::string& name : result.only_baseline) {
    out += "  " + name + ": missing from current run\n";
  }
  for (const std::string& name : result.only_current) {
    out += "  " + name + ": new benchmark (no baseline)\n";
  }
  if (result.deltas.empty()) {
    out += "  (no benchmarks in common)\n";
  }
  return out;
}

obs::Json FormatDiffJson(const DiffResult& result) {
  obs::Json rows = obs::Json::Array();
  for (const BenchDelta& d : result.deltas) {
    obs::Json row = obs::Json::Object();
    row.Set("name", d.name);
    row.Set("baseline_ns", d.baseline_ns);
    row.Set("current_ns", d.current_ns);
    row.Set("delta_pct", (d.ratio - 1.0) * 100.0);
    row.Set("verdict", d.regression     ? "regression"
                       : d.improvement ? "improved"
                                       : "ok");
    rows.Append(std::move(row));
  }
  for (const std::string& name : result.only_baseline) {
    obs::Json row = obs::Json::Object();
    row.Set("name", name);
    row.Set("verdict", "missing");
    rows.Append(std::move(row));
  }
  for (const std::string& name : result.only_current) {
    obs::Json row = obs::Json::Object();
    row.Set("name", name);
    row.Set("verdict", "new");
    rows.Append(std::move(row));
  }
  return rows;
}

}  // namespace deltamon::bench
