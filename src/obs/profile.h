#ifndef DELTAMON_OBS_PROFILE_H_
#define DELTAMON_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"  // DELTAMON_OBS_ENABLED

/// Per-literal execution profiles behind `explain analyze` / `analyze rule`.
///
/// The evaluator owns no shared profile: each worker's Evaluator writes into
/// its own Profile (exactly like EvalCache), and the propagator's serial
/// merge folds them in fixed level order. All counters are plain sums, so
/// the merged result is independent of which worker ran which node —
/// `explain analyze` output is bit-identical across thread counts (wall
/// time excluded; Format takes an include_time flag for exactly that).
///
/// Layering: obs depends only on common, so literal metadata is primitive —
/// the relation is carried as a raw uint32 id and the evaluator supplies
/// the display strings.

namespace deltamon::obs {

/// Schema tag of the JSON artifact `explain analyze "file.json" ...` writes.
inline constexpr char kProfileSchema[] = "deltamon.profile.v1";

/// True when `actual` rows disagree with the `est` estimate by more than a
/// factor of four in either direction. +1 smoothing on both sides keeps
/// zero-row results comparable; exactly 4x off is NOT flagged (boundary
/// covered by unit test).
bool Misestimated(double est, uint64_t actual);

/// One body-literal slot: static metadata (a deterministic function of the
/// clause and the stats visible at ordering time, so every worker computes
/// the same values and Merge keeps the first copy) plus counters summed
/// across executions and workers.
struct LiteralProfile {
  // -- metadata --
  std::string text;       ///< literal source text
  std::string access;     ///< "probe"/"scan"/"delta"/"compare"/"arith"/"anti"
  int display_rank = -1;  ///< position in the canonical evaluation order
  double est_rows = 0.0;  ///< optimizer row estimate per clause invocation
  uint32_t relation = 0;  ///< storage RelationId (0 for non-relation steps)
  int role = 0;           ///< objectlog::RelationRole as int
  int nbound = 0;         ///< pattern positions bound in canonical order

  // -- counters --
  uint64_t rows_in = 0;         ///< bindings that entered this step
  uint64_t bindings_tried = 0;  ///< candidate tuples / evaluations attempted
  uint64_t rows_out = 0;        ///< bindings handed to the next step
  uint64_t probes = 0;          ///< executions served by a bound/index lookup
  uint64_t scans = 0;           ///< executions scanning the full extent
  uint64_t time_ns = 0;         ///< cumulative inclusive nanoseconds

  /// Observed selectivity rows_out / bindings_tried; 0 when nothing tried.
  double Selectivity() const;
};

/// Profile of one clause, keyed by its stable label (relation#ordinal for
/// registry clauses, the differential name for network clauses). Slots are
/// indexed by body-literal position, NOT evaluation order, so probe paths
/// that re-order under different prebound sets fold into the same slots.
struct ClauseProfile {
  std::string label;
  std::string clause_text;
  uint64_t invocations = 0;
  std::vector<LiteralProfile> slots;

  void Merge(const ClauseProfile& other);
};

#if DELTAMON_OBS_ENABLED

/// Accumulator for any number of clauses. Not thread-safe by design: one
/// instance per worker, merged serially.
class Profile {
 public:
  /// Create-or-get the entry for `label`. The caller initializes slot
  /// metadata when the returned entry's `slots` is still empty.
  ClauseProfile* BeginClause(const std::string& label);

  /// Folds `other` into this profile: counters sum, metadata is kept from
  /// whichever side saw the clause first (they are identical by
  /// construction).
  void Merge(const Profile& other);

  bool empty() const { return clauses_.empty(); }
  void Clear() { clauses_.clear(); }
  const std::map<std::string, ClauseProfile>& clauses() const {
    return clauses_;
  }

  /// Human-readable per-literal table (est vs actual rows, selectivity,
  /// access kind, MISEST flag). `include_time` adds the cumulative-ns
  /// column — determinism comparisons pass false.
  std::string Format(bool include_time) const;

  /// The same data as a kProfileSchema JSON document.
  Json ToJson() const;

 private:
  std::map<std::string, ClauseProfile> clauses_;  ///< ordered: stable output
};

#else  // !DELTAMON_OBS_ENABLED

/// NullProfile: the same API with no storage, so every plumbing site
/// (evaluator, propagator, session) compiles unchanged while the profiler
/// itself is fully compiled out.
class Profile {
 public:
  ClauseProfile* BeginClause(const std::string&) { return nullptr; }
  void Merge(const Profile&) {}
  bool empty() const { return true; }
  void Clear() {}
  const std::map<std::string, ClauseProfile>& clauses() const;
  std::string Format(bool include_time) const;
  Json ToJson() const;
};

#endif  // DELTAMON_OBS_ENABLED

}  // namespace deltamon::obs

#endif  // DELTAMON_OBS_PROFILE_H_
