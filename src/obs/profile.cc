#include "obs/profile.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace deltamon::obs {

bool Misestimated(double est, uint64_t actual) {
  double a = static_cast<double>(actual) + 1.0;
  double e = est + 1.0;
  return a > 4.0 * e || e > 4.0 * a;
}

double LiteralProfile::Selectivity() const {
  if (bindings_tried == 0) return 0.0;
  return static_cast<double>(rows_out) / static_cast<double>(bindings_tried);
}

void ClauseProfile::Merge(const ClauseProfile& other) {
  if (slots.empty()) {
    // First sight of this clause on our side: metadata (text, ranks,
    // estimates) is a deterministic function of the clause, so adopting
    // the other side's copy wholesale is exact.
    slots = other.slots;
    clause_text = other.clause_text;
    invocations += other.invocations;
    return;
  }
  if (other.slots.size() > slots.size()) slots.resize(other.slots.size());
  invocations += other.invocations;
  for (size_t i = 0; i < other.slots.size(); ++i) {
    const LiteralProfile& src = other.slots[i];
    LiteralProfile& dst = slots[i];
    if (dst.text.empty()) {
      dst.text = src.text;  // adopt metadata, keep accumulated counters
      dst.access = src.access;
      dst.display_rank = src.display_rank;
      dst.est_rows = src.est_rows;
      dst.relation = src.relation;
      dst.role = src.role;
      dst.nbound = src.nbound;
    }
    dst.rows_in += src.rows_in;
    dst.bindings_tried += src.bindings_tried;
    dst.rows_out += src.rows_out;
    dst.probes += src.probes;
    dst.scans += src.scans;
    dst.time_ns += src.time_ns;
  }
}

#if DELTAMON_OBS_ENABLED

namespace {

/// Slot indices of `cp` in canonical evaluation order (display_rank, with
/// body position as tie-break for never-ranked slots).
std::vector<size_t> DisplayOrder(const ClauseProfile& cp) {
  std::vector<size_t> order(cp.slots.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int ra = cp.slots[a].display_rank;
    int rb = cp.slots[b].display_rank;
    if (ra < 0) ra = static_cast<int>(a) + 1000;  // unranked slots last
    if (rb < 0) rb = static_cast<int>(b) + 1000;
    return ra < rb;
  });
  return order;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

}  // namespace

ClauseProfile* Profile::BeginClause(const std::string& label) {
  ClauseProfile& cp = clauses_[label];
  if (cp.label.empty()) cp.label = label;
  return &cp;
}

void Profile::Merge(const Profile& other) {
  for (const auto& [label, cp] : other.clauses_) {
    BeginClause(label)->Merge(cp);
  }
}

std::string Profile::Format(bool include_time) const {
  if (clauses_.empty()) return "(no clauses profiled)\n";
  std::string out;
  for (const auto& [label, cp] : clauses_) {
    AppendF(&out, "clause %s: %s\n", label.c_str(), cp.clause_text.c_str());
    AppendF(&out, "  invocations: %llu\n",
            static_cast<unsigned long long>(cp.invocations));
    AppendF(&out, "  %4s  %-36s %-18s %12s %10s %8s %10s%s  %s\n", "rank",
            "literal", "access", "est.rows", "actual", "sel", "tried",
            include_time ? "         time" : "", "flag");
    for (size_t i : DisplayOrder(cp)) {
      const LiteralProfile& s = cp.slots[i];
      double est_total = s.est_rows * static_cast<double>(cp.invocations);
      AppendF(&out, "  %4d  %-36s %-18s %12.1f %10llu %8.3f %10llu",
              s.display_rank + 1, s.text.c_str(), s.access.c_str(), est_total,
              static_cast<unsigned long long>(s.rows_out), s.Selectivity(),
              static_cast<unsigned long long>(s.bindings_tried));
      if (include_time) {
        AppendF(&out, " %11lluns",
                static_cast<unsigned long long>(s.time_ns));
      }
      AppendF(&out, "%s\n",
              Misestimated(est_total, s.rows_out) ? "  MISEST" : "");
    }
  }
  return out;
}

Json Profile::ToJson() const {
  Json doc = Json::Object();
  doc.Set("schema", Json(kProfileSchema));
  Json clauses = Json::Array();
  for (const auto& [label, cp] : clauses_) {
    Json c = Json::Object();
    c.Set("label", Json(label));
    c.Set("clause", Json(cp.clause_text));
    c.Set("invocations", Json(cp.invocations));
    Json literals = Json::Array();
    for (size_t i : DisplayOrder(cp)) {
      const LiteralProfile& s = cp.slots[i];
      double est_total = s.est_rows * static_cast<double>(cp.invocations);
      Json l = Json::Object();
      l.Set("text", Json(s.text));
      l.Set("access", Json(s.access));
      l.Set("rank", Json(s.display_rank));
      l.Set("est_rows", Json(est_total));
      l.Set("rows_in", Json(s.rows_in));
      l.Set("bindings_tried", Json(s.bindings_tried));
      l.Set("rows_out", Json(s.rows_out));
      l.Set("selectivity", Json(s.Selectivity()));
      l.Set("probes", Json(s.probes));
      l.Set("scans", Json(s.scans));
      l.Set("time_ns", Json(s.time_ns));
      l.Set("misestimate", Json(Misestimated(est_total, s.rows_out)));
      literals.Append(std::move(l));
    }
    c.Set("literals", std::move(literals));
    clauses.Append(std::move(c));
  }
  doc.Set("clauses", std::move(clauses));
  return doc;
}

#else  // !DELTAMON_OBS_ENABLED

const std::map<std::string, ClauseProfile>& Profile::clauses() const {
  static const std::map<std::string, ClauseProfile> kEmpty;
  return kEmpty;
}

std::string Profile::Format(bool /*include_time*/) const {
  return "(profiler compiled out: DELTAMON_OBS=OFF)\n";
}

Json Profile::ToJson() const {
  Json doc = Json::Object();
  doc.Set("schema", Json(kProfileSchema));
  doc.Set("clauses", Json::Array());
  return doc;
}

#endif  // DELTAMON_OBS_ENABLED

}  // namespace deltamon::obs
