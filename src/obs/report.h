#ifndef DELTAMON_OBS_REPORT_H_
#define DELTAMON_OBS_REPORT_H_

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace deltamon::obs {

/// Version tag carried by every bench report; bump when the layout below
/// changes incompatibly. Schema (see docs/observability.md):
///
///   {
///     "schema": "deltamon.bench.v1",
///     "name": "<bench program>",
///     "git_sha": "<sha or 'unknown'>",
///     "environment": { compiler, build_type, obs_compiled_in, cpu_count,
///                      timestamp_unix },
///     "summary": { wall_time_ns, differentials_executed,
///                  differentials_skipped, tuples_propagated },
///     "benchmarks": [ { name, iterations, real_time_ns, cpu_time_ns,
///                       counters: {..} } ... ],
///     "metrics": { counters: {..}, gauges: {..},
///                  histograms: { <name>: {count,sum,min,max,p50,p95,p99,
///                                         buckets: [[upper,count]...]} } }
///   }
///
/// v2 added the per-histogram `buckets` array (the data behind the
/// Prometheus `_bucket` series). Validation still accepts v1 documents —
/// the committed bench/baselines predate the bump and `buckets` stays
/// optional.
inline constexpr const char* kBenchSchema = "deltamon.bench.v2";
inline constexpr const char* kBenchSchemaV1 = "deltamon.bench.v1";

/// The registry dump as a JSON object {counters, gauges, histograms}.
Json SnapshotToJson(const MetricsSnapshot& snapshot);

/// Fixed-width text rendering used by SHOW METRICS and PROFILE.
std::string FormatSnapshot(const MetricsSnapshot& snapshot);

/// Prometheus text exposition rendering used by SHOW METRICS PROMETHEUS:
/// `# TYPE` lines, dot-to-underscore name mangling, and histogram
/// `_bucket{le=...}`/`_sum`/`_count` series with cumulative buckets
/// ending in `le="+Inf"`.
std::string FormatPrometheus(const MetricsSnapshot& snapshot);

/// Build/host facts worth pinning to a perf number: compiler, build type,
/// whether instrumentation was compiled in, CPU count, and a unix
/// timestamp.
Json EnvironmentJson();

/// Git sha baked in at configure time (-DDELTAMON_GIT_SHA=...), overridable
/// at run time via the DELTAMON_GIT_SHA environment variable; "unknown"
/// when neither is present.
std::string GitSha();

/// Assembles a schema-valid report. `benchmarks` is the per-benchmark
/// array (may be empty); `wall_time_ns` is the total measured wall time.
/// The summary's differential/tuple counts come from `snapshot` (0 when the
/// propagator never ran or instrumentation is compiled out).
Json BuildBenchReport(const std::string& name, Json benchmarks,
                      uint64_t wall_time_ns, const MetricsSnapshot& snapshot);

/// Structural validation against kBenchSchema; returns the first problem
/// found. Used by the round-trip tests and by WriteBenchReport (a report
/// that fails its own schema is a bug, not a file).
Status ValidateBenchReport(const Json& report);

/// Validates and writes `report` to `<dir>/BENCH_<name>.json` (dir "" =
/// current directory).
Status WriteBenchReport(const Json& report, const std::string& dir);

/// Small file helpers (also used by the round-trip tests).
Status WriteTextFile(const std::string& path, const std::string& content);
Result<std::string> ReadTextFile(const std::string& path);

}  // namespace deltamon::obs

#endif  // DELTAMON_OBS_REPORT_H_
