#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace deltamon::obs {

bool Json::contains(const std::string& key) const {
  return Get(key) != nullptr;
}

const Json* Json::Get(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::Set(const std::string& key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Indent(std::string* out, int n) { out->append(static_cast<size_t>(n), ' '); }

}  // namespace

void Json::DumpTo(std::string* out, int indent) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += std::to_string(int_);
      return;
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        *out += "null";  // JSON has no Inf/NaN
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      *out += buf;
      return;
    }
    case Kind::kString:
      AppendEscaped(out, string_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        Indent(out, indent + 2);
        array_[i].DumpTo(out, indent + 2);
        if (i + 1 < array_.size()) *out += ",";
        *out += "\n";
      }
      Indent(out, indent);
      *out += "]";
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      for (size_t i = 0; i < members_.size(); ++i) {
        Indent(out, indent + 2);
        AppendEscaped(out, members_[i].first);
        *out += ": ";
        members_[i].second.DumpTo(out, indent + 2);
        if (i + 1 < members_.size()) *out += ",";
        *out += "\n";
      }
      Indent(out, indent);
      *out += "}";
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out += "\n";
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    DELTAMON_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters after JSON value at "
                                "offset " + std::to_string(pos_));
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        DELTAMON_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        return ParseLiteral("true", Json(true));
      case 'f':
        return ParseLiteral("false", Json(false));
      case 'n':
        return ParseLiteral("null", Json());
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseLiteral(const char* word, Json value) {
    size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return Error("invalid literal");
    pos_ += len;
    return value;
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("invalid number");
    std::string token = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                     v);
      if (ec == std::errc() && p == token.data() + token.size()) {
        return Json(v);
      }
      // Fall through: out-of-range integers become doubles.
    }
    try {
      return Json(std::stod(token));
    } catch (...) {
      return Error("invalid number '" + token + "'");
    }
  }

  Result<std::string> ParseString() {
    if (text_[pos_] != '"') return Error("expected '\"'");
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape");
          }
          // Reports are ASCII; reject anything that needs UTF-8 encoding.
          if (code > 0x7f) return Error("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json out = Json::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      DELTAMON_ASSIGN_OR_RETURN(Json value, ParseValue());
      out.Append(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return out;
      }
      return Error("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json out = Json::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      SkipWhitespace();
      DELTAMON_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':'");
      }
      ++pos_;
      DELTAMON_ASSIGN_OR_RETURN(Json value, ParseValue());
      out.Set(key, std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return out;
      }
      return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace deltamon::obs
