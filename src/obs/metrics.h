#ifndef DELTAMON_OBS_METRICS_H_
#define DELTAMON_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// Compile-time instrumentation toggle. When 0 (cmake -DDELTAMON_OBS=OFF)
/// the DELTAMON_OBS_* macros below expand to nothing and the hot paths
/// carry no instrumentation at all; the registry/report API itself is
/// always compiled so PROFILE / bench reports keep working (they then
/// report empty metrics).
#ifndef DELTAMON_OBS_ENABLED
#define DELTAMON_OBS_ENABLED 1
#endif

namespace deltamon::obs {

/// Monotonically increasing event count. Arithmetic is unsigned 64-bit and
/// deliberately wraps on overflow (well-defined; see metrics_test).
///
/// All metric objects are updated with relaxed atomics: instrumentation may
/// fire from the propagator's worker threads, and a torn counter would make
/// TSan (rightly) reject the whole build. Relaxed ordering keeps the
/// uncontended cost at a plain add on x86; cross-metric consistency of a
/// Snapshot taken mid-update is not guaranteed (and never was).
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time level (e.g. resident tuples, undo-log size).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Latency / size distribution over power-of-two buckets: bucket i counts
/// samples in [2^(i-1), 2^i). Percentiles are answered from the buckets by
/// linear interpolation inside the winning bucket, so p50/p95/p99 are exact
/// to within a factor-of-two bucket width — plenty for "did this wave get
/// slower", at the cost of two words per bucket and no per-sample storage.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t sample);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    uint64_t m = min_.load(std::memory_order_relaxed);
    return m == kNoMin ? 0 : m;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Value at percentile `p` in [0, 100]; 0 when empty.
  uint64_t Percentile(double p) const;

  /// Batch percentile lookup: one bucket walk answers all `n` requested
  /// percentiles (Snapshot asks for p50/p95/p99 per histogram, and three
  /// separate walks showed up in the registry-snapshot micro bench).
  /// `ps` need not be sorted; each out[i] equals Percentile(ps[i]).
  void Percentiles(const double* ps, size_t n, uint64_t* out) const;

  void Reset();

  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  /// Sentinel for "no sample yet"; recorded samples CAS it down.
  static constexpr uint64_t kNoMin = UINT64_MAX;

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{kNoMin};
  std::atomic<uint64_t> max_{0};
};

/// One registry dump, decoupled from the live metric objects so it can be
/// diffed (PROFILE) and serialized (bench reports) after further updates.
struct MetricsSnapshot {
  struct HistogramSample {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    /// Non-empty buckets as (inclusive upper bound, count) pairs, in
    /// ascending bound order — the raw data behind the Prometheus
    /// `_bucket` series (which cumulates them into `le` counts).
    std::vector<std::pair<uint64_t, uint64_t>> buckets;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSample> histograms;

  uint64_t CounterOr(const std::string& name, uint64_t fallback) const {
    auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second;
  }

  /// Per-entry difference `this - before` (counters/histogram counts are
  /// monotonic between resets; gauges keep their absolute value). Entries
  /// that did not change are dropped — the natural PROFILE output.
  MetricsSnapshot DiffSince(const MetricsSnapshot& before) const;
};

/// Runtime enable flag, checked by the instrumentation macros before
/// touching any metric. Defaults to on; a relaxed atomic load keeps the
/// disabled path to one predictable branch.
bool Enabled();
void SetEnabled(bool on);

/// Names metrics and owns their storage. Metric objects live for the
/// registry's lifetime, so instrumentation sites may cache the returned
/// pointers (function-local statics in the hot paths do exactly that).
/// Registration and Snapshot/Reset are serialized by an internal mutex so
/// concurrent first-touch registration from propagation workers is safe;
/// updates through already-obtained pointers never take the lock.
///
/// Naming scheme (see docs/observability.md): dot-separated
/// `<subsystem>.<event>[.<detail>]`, lower_snake_case, with histogram
/// units suffixed (`_ns`, `_tuples`).
class Registry {
 public:
  /// The process-wide registry used by all built-in instrumentation.
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (keeps registrations, so cached pointers stay
  /// valid). PROFILE and bench reports prefer DiffSince over Reset.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII wall-clock timer recording elapsed nanoseconds into a histogram on
/// destruction. `h` may be null (records nothing) so call sites can make
/// the instrumentation decision once, outside loops.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h)
      : histogram_(h), start_(h == nullptr
                                  ? std::chrono::steady_clock::time_point{}
                                  : std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace deltamon::obs

/// --- Instrumentation macros -----------------------------------------------
///
/// All built-in instrumentation goes through these so a single compile-time
/// switch removes every trace of it from the hot paths.

#if DELTAMON_OBS_ENABLED

/// Adds `n` to the global counter `name` (cached static lookup).
#define DELTAMON_OBS_COUNT(name, n)                                   \
  do {                                                                \
    if (::deltamon::obs::Enabled()) {                                 \
      static ::deltamon::obs::Counter* _dm_counter =                  \
          ::deltamon::obs::Registry::Global().GetCounter(name);       \
      _dm_counter->Add(static_cast<uint64_t>(n));                     \
    }                                                                 \
  } while (false)

/// Sets the global gauge `name` (cached static lookup).
#define DELTAMON_OBS_GAUGE_SET(name, v)                               \
  do {                                                                \
    if (::deltamon::obs::Enabled()) {                                 \
      static ::deltamon::obs::Gauge* _dm_gauge =                      \
          ::deltamon::obs::Registry::Global().GetGauge(name);         \
      _dm_gauge->Set(static_cast<int64_t>(v));                        \
    }                                                                 \
  } while (false)

/// Records `v` into the global histogram `name` (cached static lookup).
#define DELTAMON_OBS_RECORD(name, v)                                  \
  do {                                                                \
    if (::deltamon::obs::Enabled()) {                                 \
      static ::deltamon::obs::Histogram* _dm_hist =                   \
          ::deltamon::obs::Registry::Global().GetHistogram(name);     \
      _dm_hist->Record(static_cast<uint64_t>(v));                     \
    }                                                                 \
  } while (false)

/// Times the enclosing scope into the global histogram `name`.
#define DELTAMON_OBS_SCOPED_TIMER(var, name)                          \
  ::deltamon::obs::Histogram* _dm_timer_h_##var = nullptr;            \
  if (::deltamon::obs::Enabled()) {                                   \
    static ::deltamon::obs::Histogram* _dm_hist =                     \
        ::deltamon::obs::Registry::Global().GetHistogram(name);       \
    _dm_timer_h_##var = _dm_hist;                                     \
  }                                                                   \
  ::deltamon::obs::ScopedTimer var(_dm_timer_h_##var)

/// Runs `stmt` only when instrumentation is compiled in and enabled.
#define DELTAMON_OBS_ONLY(stmt)                                       \
  do {                                                                \
    if (::deltamon::obs::Enabled()) {                                 \
      stmt;                                                           \
    }                                                                 \
  } while (false)

#else  // !DELTAMON_OBS_ENABLED

#define DELTAMON_OBS_COUNT(name, n) \
  do {                              \
  } while (false)
#define DELTAMON_OBS_GAUGE_SET(name, v) \
  do {                                  \
  } while (false)
#define DELTAMON_OBS_RECORD(name, v) \
  do {                               \
  } while (false)
#define DELTAMON_OBS_SCOPED_TIMER(var, name) \
  do {                                       \
  } while (false)
#define DELTAMON_OBS_ONLY(stmt) \
  do {                          \
  } while (false)

#endif  // DELTAMON_OBS_ENABLED

#endif  // DELTAMON_OBS_METRICS_H_
