#ifndef DELTAMON_OBS_SPAN_H_
#define DELTAMON_OBS_SPAN_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace deltamon::obs {

/// --- Hierarchical span tracing ---------------------------------------------
///
/// A Span is an RAII wall-clock interval with parent/child nesting: the
/// innermost live span on the current thread is the parent of any span
/// started while it is open. On destruction the span emits one TraceEvent
/// into the installed TraceSink, carrying its id, parent id, thread, start
/// time and duration as integer fields — so the existing ring sink, the
/// span-tree printer and the Chrome-trace exporter all consume the same
/// stream.
///
/// Cost model: when no sink is installed (the default) a span is one
/// relaxed atomic load in the constructor and a branch in the destructor —
/// no clock reads, no id allocation, no allocation at all. Installing a
/// sink is the opt-in, exactly as for EmitTrace. Under
/// `cmake -DDELTAMON_OBS=OFF` the DELTAMON_OBS_SPAN macro compiles spans
/// out entirely.
class Span {
 public:
  /// Starts a span (active iff a trace sink is installed). `category`
  /// must be a string with static storage duration; `name` is copied.
  Span(const char* category, std::string name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  /// Ends the span and emits its TraceEvent.
  ~Span();

  bool active() const { return active_; }
  /// 0 when inactive.
  uint64_t id() const { return id_; }

  /// Attaches an integer field to the span's end event. No-op when
  /// inactive, so call sites need no guard for cheap values; guard on
  /// active() before computing expensive ones.
  void AddField(std::string key, int64_t value);

  /// Replaces the span name (e.g. to append a catalog-resolved relation
  /// name computed only when tracing is on). No-op when inactive.
  void SetName(std::string name);

  /// The id of the innermost live span on this thread; 0 when none.
  static uint64_t CurrentId();

 private:
  bool active_ = false;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t trace_id_ = 0;  ///< CurrentTraceId() at construction
  uint64_t start_ns_ = 0;
  const char* category_ = "";
  std::string name_;
  std::vector<std::pair<std::string, int64_t>> fields_;
};

/// --- Request trace-id propagation ------------------------------------------
///
/// The trace id of the request currently executing, installed by the
/// network executor around each statement. Process-global (one relaxed
/// atomic), not thread-local: the executor serializes statements, but a
/// statement's propagation wave runs on pool worker threads whose spans
/// must carry the same id. Active spans read it at construction and attach
/// it as a `trace_id` field when nonzero, so the whole span tree of a
/// statement — check phase, waves, clause evaluations — links back to the
/// request record in the flight recorder. Compiled out (no atomic, no
/// field) under -DDELTAMON_OBS=OFF.
#if DELTAMON_OBS_ENABLED
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t trace_id);
  ~ScopedTraceId();
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t saved_;
};

/// 0 when no request is executing.
uint64_t CurrentTraceId();
#else
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t) {}
};
inline uint64_t CurrentTraceId() { return 0; }
#endif

/// No-op stand-in used by DELTAMON_OBS_SPAN when instrumentation is
/// compiled out; keeps call sites (AddField/SetName/active) compiling.
struct NullSpan {
  bool active() const { return false; }
  uint64_t id() const { return 0; }
  /// Templates so literal keys never materialize a std::string here.
  template <typename K>
  void AddField(K&&, int64_t) {}
  template <typename N>
  void SetName(N&&) {}
};

#if DELTAMON_OBS_ENABLED
/// Declares an RAII span covering the enclosing scope.
#define DELTAMON_OBS_SPAN(var, category, name) \
  ::deltamon::obs::Span var((category), (name))
#else
#define DELTAMON_OBS_SPAN(var, category, name) \
  [[maybe_unused]] ::deltamon::obs::NullSpan var
#endif

/// True when `event` was produced by a Span (i.e. carries the span_id /
/// dur_ns bookkeeping fields).
bool IsSpanEvent(const TraceEvent& event);

/// Looks up an integer field by key; `fallback` when absent.
int64_t SpanField(const TraceEvent& event, const char* key, int64_t fallback);

/// Chrome/Perfetto trace_event document: every span event becomes one
/// complete ("ph":"X") event with microsecond timestamps normalized to the
/// earliest span start. Non-span events are skipped (they carry no
/// timestamps). Loadable in chrome://tracing and ui.perfetto.dev.
Json ChromeTraceJson(const std::deque<TraceEvent>& events);

/// Serializes ChromeTraceJson(events) to `path`.
Status WriteChromeTrace(const std::deque<TraceEvent>& events,
                        const std::string& path);

/// Indented parent/child rendering of the recorded spans, children in
/// start order:
///
///   rules.check_phase 1.234 ms
///     rules.round 1.200 ms {round=1}
///       propagation.wave 1.100 ms
///
/// Spans whose parent was dropped from the ring (or ended outside it)
/// are printed as roots. "(no spans recorded)" when there are none.
std::string FormatSpanTree(const std::deque<TraceEvent>& events);

}  // namespace deltamon::obs

#endif  // DELTAMON_OBS_SPAN_H_
