#include "obs/flight_recorder.h"

#include <chrono>
#include <cstdio>
#include <utility>

namespace deltamon::obs {

namespace {

std::atomic<uint64_t> g_next_trace_id{0};

/// a - b, clamped at 0: phase stamps come from one steady clock but a
/// record aborted mid-flight leaves later phases at 0.
uint64_t Since(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms", static_cast<double>(ns) / 1e6);
  return buf;
}

/// One complete ("ph":"X") Chrome trace event.
Json ChromeEvent(const char* name, uint64_t start_ns, uint64_t dur_ns,
                 uint64_t min_ns, uint64_t tid) {
  Json out = Json::Object();
  out.Set("name", name);
  out.Set("cat", "net");
  out.Set("ph", "X");
  out.Set("ts", static_cast<double>(start_ns - min_ns) / 1000.0);
  out.Set("dur", static_cast<double>(dur_ns) / 1000.0);
  out.Set("pid", 1);
  out.Set("tid", static_cast<int64_t>(tid));
  return out;
}

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t NextTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string StatementPreview(const std::string& statement) {
  if (statement.size() <= kStatementPreviewBytes) return statement;
  return statement.substr(0, kStatementPreviewBytes) + "...";
}

uint64_t RequestRecord::QueueWaitNs() const {
  return Since(dequeue_ns, enqueue_ns);
}

uint64_t RequestRecord::ExecNs() const { return Since(exec_end_ns, dequeue_ns); }

uint64_t RequestRecord::ReplyWriteNs() const {
  return Since(reply_flushed_ns, reply_queued_ns);
}

uint64_t RequestRecord::TotalNs() const {
  uint64_t end = reply_flushed_ns;
  if (end == 0) end = reply_queued_ns;
  if (end == 0) end = exec_end_ns;
  if (end == 0) end = dequeue_ns;
  return Since(end, enqueue_ns);
}

Json RequestRecord::ToJson() const {
  Json out = Json::Object();
  out.Set("trace_id", static_cast<int64_t>(context.trace_id));
  out.Set("connection_id", static_cast<int64_t>(context.connection_id));
  out.Set("session_id", static_cast<int64_t>(context.session_id));
  out.Set("statement_ordinal",
          static_cast<int64_t>(context.statement_ordinal));
  out.Set("statement", statement);
  out.Set("ok", ok);
  out.Set("reply_flushed", reply_flushed);
  out.Set("reply_bytes", static_cast<int64_t>(reply_bytes));
  out.Set("enqueue_ns", static_cast<int64_t>(enqueue_ns));
  Json phases = Json::Object();
  phases.Set("queue_wait_ns", static_cast<int64_t>(QueueWaitNs()));
  phases.Set("exec_ns", static_cast<int64_t>(ExecNs()));
  phases.Set("reply_write_ns", static_cast<int64_t>(ReplyWriteNs()));
  phases.Set("total_ns", static_cast<int64_t>(TotalNs()));
  out.Set("phases", std::move(phases));
  if (commit_batch != 0) {
    Json commit = Json::Object();
    commit.Set("version", static_cast<int64_t>(commit_version));
    commit.Set("batch", static_cast<int64_t>(commit_batch));
    commit.Set("batch_size", static_cast<int64_t>(commit_batch_size));
    commit.Set("queue_wait_ns", static_cast<int64_t>(commit_queue_wait_ns));
    commit.Set("check_ns", static_cast<int64_t>(commit_check_ns));
    out.Set("commit", std::move(commit));
  }
  return out;
}

void FlightRecorder::Record(RequestRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  total_records_.fetch_add(1, std::memory_order_relaxed);
  if (capacity_ == 0) {
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (records_.size() == capacity_) {
    records_.pop_front();
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
  }
  records_.push_back(std::move(record));
}

std::vector<RequestRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RequestRecord>(records_.begin(), records_.end());
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

namespace {
std::atomic<size_t> g_flight_capacity{256};
}  // namespace

void SetGlobalFlightRecorderCapacity(size_t capacity) {
  g_flight_capacity.store(capacity, std::memory_order_relaxed);
}

RequestRecorder& GlobalRequestRecorder() {
  static RequestRecorder* recorder =
      new RequestRecorder(g_flight_capacity.load(std::memory_order_relaxed));
  return *recorder;
}

Json FlightRecorderJson(const std::vector<RequestRecord>& records,
                        size_t capacity, uint64_t total, uint64_t dropped) {
  Json requests = Json::Array();
  for (const RequestRecord& r : records) requests.Append(r.ToJson());
  Json out = Json::Object();
  out.Set("capacity", static_cast<int64_t>(capacity));
  out.Set("total_records", static_cast<int64_t>(total));
  out.Set("dropped_records", static_cast<int64_t>(dropped));
  out.Set("requests", std::move(requests));
  return out;
}

Json RequestsChromeTraceJson(const std::vector<RequestRecord>& records) {
  uint64_t min_ns = 0;
  bool any = false;
  for (const RequestRecord& r : records) {
    if (!any || r.enqueue_ns < min_ns) min_ns = r.enqueue_ns;
    any = true;
  }
  Json events = Json::Array();
  for (const RequestRecord& r : records) {
    const uint64_t tid = r.context.connection_id;
    Json request =
        ChromeEvent("request", r.enqueue_ns, r.TotalNs(), min_ns, tid);
    Json args = Json::Object();
    args.Set("trace_id", static_cast<int64_t>(r.context.trace_id));
    args.Set("statement_ordinal",
             static_cast<int64_t>(r.context.statement_ordinal));
    args.Set("statement", r.statement);
    request.Set("args", std::move(args));
    events.Append(std::move(request));
    if (r.dequeue_ns != 0) {
      events.Append(ChromeEvent("queue_wait", r.enqueue_ns, r.QueueWaitNs(),
                                min_ns, tid));
    }
    if (r.exec_end_ns != 0) {
      events.Append(
          ChromeEvent("execute", r.dequeue_ns, r.ExecNs(), min_ns, tid));
    }
    if (r.reply_flushed_ns != 0) {
      events.Append(ChromeEvent("reply_write", r.reply_queued_ns,
                                r.ReplyWriteNs(), min_ns, tid));
    }
  }
  Json doc = Json::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

Json SlowRecord::ToJson() const {
  Json out = Json::Object();
  out.Set("trace_id", static_cast<int64_t>(context.trace_id));
  out.Set("connection_id", static_cast<int64_t>(context.connection_id));
  out.Set("session_id", static_cast<int64_t>(context.session_id));
  out.Set("statement_ordinal",
          static_cast<int64_t>(context.statement_ordinal));
  out.Set("statement", statement);
  out.Set("ok", ok);
  out.Set("elapsed_ns", static_cast<int64_t>(elapsed_ns));
  out.Set("span_tree", span_tree);
  out.Set("chrome_trace", chrome_trace);
  out.Set("profile_text", profile_text);
  out.Set("profile", profile_json);
  return out;
}

SlowLog& SlowLog::Global() {
  static SlowLog* log = new SlowLog();
  return *log;
}

void SlowLog::Record(SlowRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  total_records_.fetch_add(1, std::memory_order_relaxed);
  if (records_.size() == capacity_) {
    records_.pop_front();
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
  }
  records_.push_back(std::move(record));
}

std::vector<SlowRecord> SlowLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowRecord>(records_.begin(), records_.end());
}

void SlowLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

Json SlowLog::ToJson() const {
  Json entries = Json::Array();
  for (const SlowRecord& r : Snapshot()) entries.Append(r.ToJson());
  Json out = Json::Object();
  out.Set("threshold_ns", static_cast<int64_t>(threshold_ns()));
  out.Set("capacity", static_cast<int64_t>(capacity_));
  out.Set("total_records", static_cast<int64_t>(total_records()));
  out.Set("dropped_records", static_cast<int64_t>(dropped_records()));
  out.Set("slow", std::move(entries));
  return out;
}

std::string SlowLog::Format() const {
  const std::vector<SlowRecord> records = Snapshot();
  std::string out = "SLOW STATEMENTS (threshold ";
  out += threshold_ns() == 0 ? std::string("off") : FormatMs(threshold_ns());
  out += ", " + std::to_string(records.size()) + " recorded";
  if (dropped_records() > 0) {
    out += ", " + std::to_string(dropped_records()) + " dropped";
  }
  out += ")\n";
  for (const SlowRecord& r : records) {
    out += "[trace " + std::to_string(r.context.trace_id) + "] conn " +
           std::to_string(r.context.connection_id) + " stmt " +
           std::to_string(r.context.statement_ordinal) + ": " +
           FormatMs(r.elapsed_ns) + (r.ok ? "" : " (error)") + "\n";
    out += "  statement: " + StatementPreview(r.statement) + "\n";
    out += "  spans:\n";
    // Indent the captured span tree under the entry.
    size_t pos = 0;
    while (pos < r.span_tree.size()) {
      size_t eol = r.span_tree.find('\n', pos);
      if (eol == std::string::npos) eol = r.span_tree.size();
      out += "    " + r.span_tree.substr(pos, eol - pos) + "\n";
      pos = eol + 1;
    }
    if (!r.profile_text.empty()) {
      out += "  profile:\n" + r.profile_text;
    }
  }
  return out;
}

}  // namespace deltamon::obs
