#include "obs/wave_recorder.h"

#include <utility>

namespace deltamon::obs {

Json ValueToJson(const Value& v) {
  Json out = Json::Object();
  switch (v.kind()) {
    case ValueKind::kNull:
      out.Set("t", "null");
      break;
    case ValueKind::kBool:
      out.Set("t", "b");
      out.Set("v", v.AsBool());
      break;
    case ValueKind::kInt:
      out.Set("t", "i");
      out.Set("v", v.AsInt());
      break;
    case ValueKind::kDouble:
      out.Set("t", "d");
      out.Set("v", v.AsDouble());
      break;
    case ValueKind::kString:
      out.Set("t", "s");
      out.Set("v", v.AsString());
      break;
    case ValueKind::kObject:
      out.Set("t", "o");
      out.Set("v", static_cast<int64_t>(v.AsObject().id));
      out.Set("type", static_cast<int64_t>(v.AsObject().type));
      break;
  }
  return out;
}

Result<Value> ValueFromJson(const Json& j) {
  if (!j.is_object()) return Status::ParseError("cell is not an object");
  const Json* t = j.Get("t");
  if (t == nullptr || !t->is_string()) {
    return Status::ParseError("cell has no type tag");
  }
  const std::string& tag = t->as_string();
  const Json* v = j.Get("v");
  if (tag == "null") return Value();
  if (v == nullptr) return Status::ParseError("cell has no value");
  if (tag == "b") {
    if (!v->is_bool()) return Status::ParseError("bool cell: bad value");
    return Value(v->as_bool());
  }
  if (tag == "i") {
    if (!v->is_int()) return Status::ParseError("int cell: bad value");
    return Value(v->as_int());
  }
  if (tag == "d") {
    if (!v->is_number()) return Status::ParseError("double cell: bad value");
    return Value(v->as_double());
  }
  if (tag == "s") {
    if (!v->is_string()) return Status::ParseError("string cell: bad value");
    return Value(v->as_string());
  }
  if (tag == "o") {
    const Json* type = j.Get("type");
    if (!v->is_int() || type == nullptr || !type->is_int()) {
      return Status::ParseError("object cell: bad value");
    }
    return Value(Oid{static_cast<uint64_t>(v->as_int()),
                     static_cast<TypeId>(type->as_int())});
  }
  return Status::ParseError("cell has unknown type tag '" + tag + "'");
}

Json TupleToJson(const Tuple& t) {
  Json out = Json::Array();
  for (const Value& v : t.values()) out.Append(ValueToJson(v));
  return out;
}

Result<Tuple> TupleFromJson(const Json& j) {
  if (!j.is_array()) return Status::ParseError("row is not an array");
  std::vector<Value> values;
  values.reserve(j.size());
  for (const Json& cell : j.array_items()) {
    DELTAMON_ASSIGN_OR_RETURN(Value v, ValueFromJson(cell));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

namespace {

Json RowsToJson(const std::vector<Tuple>& rows) {
  Json out = Json::Array();
  for (const Tuple& t : rows) out.Append(TupleToJson(t));
  return out;
}

Result<std::vector<Tuple>> RowsFromJson(const Json* j) {
  std::vector<Tuple> rows;
  if (j == nullptr) return rows;
  if (!j->is_array()) return Status::ParseError("rows is not an array");
  rows.reserve(j->size());
  for (const Json& row : j->array_items()) {
    DELTAMON_ASSIGN_OR_RETURN(Tuple t, TupleFromJson(row));
    rows.push_back(std::move(t));
  }
  return rows;
}

Result<uint64_t> UintField(const Json& j, const char* key) {
  const Json* v = j.Get(key);
  if (v == nullptr || !v->is_int()) {
    return Status::ParseError(std::string("missing integer field '") + key +
                              "'");
  }
  return static_cast<uint64_t>(v->as_int());
}

}  // namespace

Json WaveRelationDelta::ToJson() const {
  Json out = Json::Object();
  out.Set("relation", relation);
  out.Set("plus", RowsToJson(plus));
  out.Set("minus", RowsToJson(minus));
  return out;
}

Result<WaveRelationDelta> WaveRelationDelta::FromJson(const Json& j) {
  if (!j.is_object()) return Status::ParseError("delta is not an object");
  const Json* name = j.Get("relation");
  if (name == nullptr || !name->is_string()) {
    return Status::ParseError("delta has no relation name");
  }
  WaveRelationDelta out;
  out.relation = name->as_string();
  DELTAMON_ASSIGN_OR_RETURN(out.plus, RowsFromJson(j.Get("plus")));
  DELTAMON_ASSIGN_OR_RETURN(out.minus, RowsFromJson(j.Get("minus")));
  return out;
}

Json WaveRecord::ToJson() const {
  Json out = Json::Object();
  out.Set("seq", static_cast<int64_t>(seq));
  out.Set("trace_id", static_cast<int64_t>(trace_id));
  out.Set("version", static_cast<int64_t>(version));
  out.Set("round", static_cast<int64_t>(round));
  out.Set("threads", static_cast<int64_t>(threads));
  out.Set("kernels", kernels);
  Json in = Json::Array();
  for (const WaveRelationDelta& d : influents) in.Append(d.ToJson());
  out.Set("influents", std::move(in));
  Json r = Json::Array();
  for (const WaveRelationDelta& d : roots) r.Append(d.ToJson());
  out.Set("roots", std::move(r));
  Json f = Json::Array();
  for (const std::string& s : firings) f.Append(s);
  out.Set("firings", std::move(f));
  return out;
}

Result<WaveRecord> WaveRecord::FromJson(const Json& j) {
  if (!j.is_object()) return Status::ParseError("wave is not an object");
  WaveRecord out;
  DELTAMON_ASSIGN_OR_RETURN(out.seq, UintField(j, "seq"));
  DELTAMON_ASSIGN_OR_RETURN(out.trace_id, UintField(j, "trace_id"));
  DELTAMON_ASSIGN_OR_RETURN(out.version, UintField(j, "version"));
  DELTAMON_ASSIGN_OR_RETURN(out.round, UintField(j, "round"));
  DELTAMON_ASSIGN_OR_RETURN(out.threads, UintField(j, "threads"));
  const Json* kernels = j.Get("kernels");
  if (kernels == nullptr || !kernels->is_bool()) {
    return Status::ParseError("wave has no kernels flag");
  }
  out.kernels = kernels->as_bool();
  for (const char* key : {"influents", "roots"}) {
    const Json* list = j.Get(key);
    if (list == nullptr || !list->is_array()) {
      return Status::ParseError(std::string("wave has no ") + key);
    }
    std::vector<WaveRelationDelta>& dst =
        key[0] == 'i' ? out.influents : out.roots;
    for (const Json& d : list->array_items()) {
      DELTAMON_ASSIGN_OR_RETURN(WaveRelationDelta delta,
                                WaveRelationDelta::FromJson(d));
      dst.push_back(std::move(delta));
    }
  }
  const Json* firings = j.Get("firings");
  if (firings == nullptr || !firings->is_array()) {
    return Status::ParseError("wave has no firings");
  }
  for (const Json& f : firings->array_items()) {
    if (!f.is_string()) return Status::ParseError("firing is not a string");
    out.firings.push_back(f.as_string());
  }
  return out;
}

Json WaveRecord::OutcomeJson() const {
  Json out = Json::Object();
  out.Set("round", static_cast<int64_t>(round));
  Json in = Json::Array();
  for (const WaveRelationDelta& d : influents) in.Append(d.ToJson());
  out.Set("influents", std::move(in));
  Json r = Json::Array();
  for (const WaveRelationDelta& d : roots) r.Append(d.ToJson());
  out.Set("roots", std::move(r));
  Json f = Json::Array();
  for (const std::string& s : firings) f.Append(s);
  out.Set("firings", std::move(f));
  return out;
}

void WaveRecorder::Record(WaveRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = total_records_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (capacity_ == 0) {
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (records_.size() == capacity_) {
    records_.pop_front();
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
  }
  records_.push_back(std::move(record));
}

std::vector<WaveRecord> WaveRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<WaveRecord>(records_.begin(), records_.end());
}

void WaveRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  // A cleared ring is a fresh recording: seq restarts at 1 and the
  // overflow counter describes only the current capture session.
  total_records_.store(0, std::memory_order_relaxed);
  dropped_records_.store(0, std::memory_order_relaxed);
}

WaveLog& GlobalWaveRecorder() {
  static WaveLog* recorder = new WaveLog();
  return *recorder;
}

Json WaveFileJson(const std::vector<WaveRecord>& records, bool enabled,
                  size_t capacity, uint64_t total, uint64_t dropped) {
  Json waves = Json::Array();
  for (const WaveRecord& r : records) waves.Append(r.ToJson());
  Json out = Json::Object();
  out.Set("schema", "deltamon.wave.v1");
  out.Set("enabled", enabled);
  out.Set("capacity", static_cast<int64_t>(capacity));
  out.Set("total_records", static_cast<int64_t>(total));
  out.Set("dropped_records", static_cast<int64_t>(dropped));
  out.Set("waves", std::move(waves));
  return out;
}

Result<std::vector<WaveRecord>> ParseWaveFile(const std::string& text) {
  DELTAMON_ASSIGN_OR_RETURN(Json doc, Json::Parse(text));
  if (!doc.is_object()) return Status::ParseError("wave file: not an object");
  const Json* schema = doc.Get("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "deltamon.wave.v1") {
    return Status::ParseError("wave file: schema is not deltamon.wave.v1");
  }
  const Json* waves = doc.Get("waves");
  if (waves == nullptr || !waves->is_array()) {
    return Status::ParseError("wave file: no waves array");
  }
  std::vector<WaveRecord> out;
  out.reserve(waves->size());
  for (const Json& w : waves->array_items()) {
    DELTAMON_ASSIGN_OR_RETURN(WaveRecord record, WaveRecord::FromJson(w));
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace deltamon::obs
