#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <numeric>

namespace deltamon::obs {

namespace {
std::atomic<bool> g_enabled{true};

/// Bucket index for a sample: 0 holds {0, 1}, i holds [2^(i-1), 2^i).
/// Samples above 2^63 share the last bucket — bit_width(2^64 - 1) is 64,
/// one past the array.
size_t BucketIndex(uint64_t sample) {
  if (sample <= 1) return 0;
  size_t i = static_cast<size_t>(std::bit_width(sample - 1));
  return i < Histogram::kBuckets ? i : Histogram::kBuckets - 1;
}

/// Inclusive upper bound of bucket i.
uint64_t BucketUpper(size_t i) {
  if (i >= 63) return UINT64_MAX;
  return (uint64_t{1} << i);
}

uint64_t BucketLower(size_t i) { return i == 0 ? 0 : (uint64_t{1} << (i - 1)); }
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void Histogram::Record(uint64_t sample) {
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen &&
         !min_.compare_exchange_weak(seen, sample,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kNoMin, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t out = 0;
  Percentiles(&p, 1, &out);
  return out;
}

void Histogram::Percentiles(const double* ps, size_t n, uint64_t* out) const {
  uint64_t total = count();
  if (total == 0) {
    std::fill(out, out + n, 0);
    return;
  }
  // Rank of each requested sample, 1-based (nearest-rank definition).
  std::vector<uint64_t> ranks(n);
  for (size_t j = 0; j < n; ++j) {
    double p = std::clamp(ps[j], 0.0, 100.0);
    uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                          static_cast<double>(total));
    ranks[j] = std::clamp<uint64_t>(rank, 1, total);
  }
  // Answer the requests in ascending rank order so one bucket walk
  // services all of them.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return ranks[a] < ranks[b]; });
  size_t next = 0;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets && next < n; ++i) {
    uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) continue;
    while (next < n && seen + in_bucket >= ranks[order[next]]) {
      uint64_t rank = ranks[order[next]];
      // Interpolate inside the bucket, clamped to the observed extremes.
      uint64_t lo = std::max(BucketLower(i), min());
      uint64_t hi = std::min(BucketUpper(i), max());
      uint64_t value = lo;
      if (hi > lo) {
        double frac = static_cast<double>(rank - seen) /
                      static_cast<double>(in_bucket);
        value = lo + static_cast<uint64_t>(frac *
                                           static_cast<double>(hi - lo));
      }
      out[order[next]] = value;
      ++next;
    }
    seen += in_bucket;
  }
  // Ranks past the recorded samples (a race between count and buckets, or
  // an empty tail) resolve to the observed maximum, as before.
  for (; next < n; ++next) out[order[next]] = max();
}

MetricsSnapshot MetricsSnapshot::DiffSince(const MetricsSnapshot& before)
    const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    uint64_t base = before.CounterOr(name, 0);
    if (value != base) out.counters[name] = value - base;
  }
  for (const auto& [name, value] : gauges) {
    auto it = before.gauges.find(name);
    if (it == before.gauges.end() || it->second != value) {
      out.gauges[name] = value;
    }
  }
  for (const auto& [name, h] : histograms) {
    auto it = before.histograms.find(name);
    uint64_t base_count = it == before.histograms.end() ? 0 : it->second.count;
    if (h.count == base_count) continue;
    HistogramSample d = h;  // percentiles/buckets stay cumulative
    d.count = h.count - base_count;
    d.sum -= it == before.histograms.end() ? 0 : it->second.sum;
    out.histograms[name] = d;
  }
  return out;
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramSample s;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    static constexpr double kPs[] = {50, 95, 99};
    uint64_t qs[3] = {};
    h->Percentiles(kPs, 3, qs);
    s.p50 = qs[0];
    s.p95 = qs[1];
    s.p99 = qs[2];
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t n = h->bucket(i);
      if (n != 0) s.buckets.emplace_back(BucketUpper(i), n);
    }
    out.histograms[name] = s;
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace deltamon::obs
