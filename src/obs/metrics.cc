#include "obs/metrics.h"

#include <bit>

namespace deltamon::obs {

namespace {
std::atomic<bool> g_enabled{true};

/// Bucket index for a sample: 0 holds {0, 1}, i holds [2^(i-1), 2^i).
/// Samples above 2^63 share the last bucket — bit_width(2^64 - 1) is 64,
/// one past the array.
size_t BucketIndex(uint64_t sample) {
  if (sample <= 1) return 0;
  size_t i = static_cast<size_t>(std::bit_width(sample - 1));
  return i < Histogram::kBuckets ? i : Histogram::kBuckets - 1;
}

/// Inclusive upper bound of bucket i.
uint64_t BucketUpper(size_t i) {
  if (i >= 63) return UINT64_MAX;
  return (uint64_t{1} << i);
}

uint64_t BucketLower(size_t i) { return i == 0 ? 0 : (uint64_t{1} << (i - 1)); }
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void Histogram::Record(uint64_t sample) {
  ++buckets_[BucketIndex(sample)];
  ++count_;
  sum_ += sample;
  if (count_ == 1 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the requested sample, 1-based (nearest-rank definition).
  uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                        static_cast<double>(count_));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] < rank) {
      seen += buckets_[i];
      continue;
    }
    // Interpolate inside the bucket, clamped to the observed extremes.
    uint64_t lo = std::max(BucketLower(i), min_);
    uint64_t hi = std::min(BucketUpper(i), max_);
    if (hi <= lo) return lo;
    double frac = static_cast<double>(rank - seen) /
                  static_cast<double>(buckets_[i]);
    return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
  }
  return max_;
}

MetricsSnapshot MetricsSnapshot::DiffSince(const MetricsSnapshot& before)
    const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    uint64_t base = before.CounterOr(name, 0);
    if (value != base) out.counters[name] = value - base;
  }
  for (const auto& [name, value] : gauges) {
    auto it = before.gauges.find(name);
    if (it == before.gauges.end() || it->second != value) {
      out.gauges[name] = value;
    }
  }
  for (const auto& [name, h] : histograms) {
    auto it = before.histograms.find(name);
    uint64_t base_count = it == before.histograms.end() ? 0 : it->second.count;
    if (h.count == base_count) continue;
    HistogramSample d = h;  // percentiles stay cumulative: buckets are gone
    d.count = h.count - base_count;
    d.sum -= it == before.histograms.end() ? 0 : it->second.sum;
    out.histograms[name] = d;
  }
  return out;
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramSample s;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->Percentile(50);
    s.p95 = h->Percentile(95);
    s.p99 = h->Percentile(99);
    out.histograms[name] = s;
  }
  return out;
}

void Registry::Reset() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace deltamon::obs
