#include "obs/trace.h"

#include <atomic>

namespace deltamon::obs {

namespace {
std::atomic<TraceSink*> g_sink{nullptr};
}  // namespace

std::string TraceEvent::ToString() const {
  std::string out = category + "." + name + "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out += ", ";
    first = false;
    out += key + "=" + std::to_string(value);
  }
  return out + "}";
}

void SetTraceSink(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TraceSink* GetTraceSink() { return g_sink.load(std::memory_order_acquire); }

void EmitTrace(const TraceEvent& event) {
  TraceSink* sink = GetTraceSink();
  if (sink != nullptr) sink->OnEvent(event);
}

}  // namespace deltamon::obs
