#include "obs/trace.h"

#include <atomic>

#include "obs/metrics.h"

namespace deltamon::obs {

namespace {
std::atomic<TraceSink*> g_sink{nullptr};
}  // namespace

std::string TraceEvent::ToString() const {
  std::string out = category + "." + name + "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out += ", ";
    first = false;
    out += key + "=" + std::to_string(value);
  }
  return out + "}";
}

void RingTraceSink::OnEvent(const TraceEvent& event) {
  if (capacity_ == 0) {
    dropped_events_.fetch_add(1, std::memory_order_relaxed);
    DELTAMON_OBS_COUNT("obs.trace.dropped_events", 1);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() == capacity_) {
    events_.pop_front();
    dropped_events_.fetch_add(1, std::memory_order_relaxed);
    DELTAMON_OBS_COUNT("obs.trace.dropped_events", 1);
  }
  events_.push_back(event);
}

void SetTraceSink(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TraceSink* GetTraceSink() { return g_sink.load(std::memory_order_acquire); }

void EmitTrace(const TraceEvent& event) {
  TraceSink* sink = GetTraceSink();
  if (sink != nullptr) sink->OnEvent(event);
}

}  // namespace deltamon::obs
