#ifndef DELTAMON_OBS_FLIGHT_RECORDER_H_
#define DELTAMON_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"  // DELTAMON_OBS_ENABLED

/// --- Request-scoped tracing -------------------------------------------------
///
/// The server mints one RequestContext per QUERY frame and stamps phase
/// timestamps as the request moves through its life: enqueue (frame
/// parsed), dequeue (executor mutex acquired — evaluation starts),
/// exec end, reply queued, reply flushed to the kernel. Completed records
/// land in a fixed-capacity FlightRecorder ring served by the admin HTTP
/// endpoints (/debug/requests, /debug/requests/trace), and statements over
/// the --slow-statement-ms threshold additionally capture their full span
/// tree + literal profile into the SlowLog (/debug/slow, `show slow;`).
///
/// Memory is strictly bounded: both the recorder and the slow log are
/// rings, and every displaced entry bumps a dropped counter so truncation
/// announces itself. Under -DDELTAMON_OBS=OFF the recorder compiles to the
/// NullFlightRecorder (no ring, no clock reads, no ids) while the admin
/// endpoints keep serving valid — empty — documents.

namespace deltamon::obs {

/// True when request tracing is compiled in; call sites guard clock reads
/// and id minting on this so OBS=OFF builds carry zero residue.
inline constexpr bool kRequestTracingEnabled = DELTAMON_OBS_ENABLED != 0;

/// steady_clock now, in nanoseconds — the clock every phase timestamp and
/// span start/duration uses, so cross-source arithmetic is meaningful.
uint64_t MonotonicNowNs();

/// Process-wide monotonic trace-id mint; first id is 1 (0 = "no trace").
uint64_t NextTraceId();

/// At most this many statement bytes are kept per record; longer
/// statements are truncated with a trailing ellipsis.
inline constexpr size_t kStatementPreviewBytes = 160;
std::string StatementPreview(const std::string& statement);

/// Identity of one request: minted when the QUERY frame is parsed, carried
/// through the executor into the span tree.
struct RequestContext {
  uint64_t trace_id = 0;
  uint64_t connection_id = 0;
  uint64_t session_id = 0;
  uint64_t statement_ordinal = 0;  ///< 1-based per connection
};

/// One completed (or connection-aborted) request with its phase
/// timestamps. All *_ns fields are MonotonicNowNs values; 0 = the phase
/// never happened (e.g. reply_flushed_ns on a connection that died before
/// its reply drained).
struct RequestRecord {
  RequestContext context;
  std::string statement;  ///< StatementPreview of the QUERY body
  bool ok = true;         ///< statement executed without error
  bool reply_flushed = false;
  uint64_t enqueue_ns = 0;        ///< QUERY frame parsed
  uint64_t dequeue_ns = 0;        ///< executor mutex acquired (eval start)
  uint64_t exec_end_ns = 0;       ///< statement finished (eval end)
  uint64_t reply_queued_ns = 0;   ///< reply bytes appended to the out buffer
  uint64_t reply_flushed_ns = 0;  ///< last reply byte accepted by the kernel
  uint64_t reply_bytes = 0;

  /// Group-commit phase, stamped only when the statement committed a
  /// transaction (commit_batch != 0): the commit version it received, the
  /// wave it was grouped into and how many transactions shared that wave,
  /// plus how long it waited in the commit queue and how long the wave's
  /// single check phase took.
  uint64_t commit_version = 0;
  uint64_t commit_batch = 0;
  uint64_t commit_batch_size = 0;
  uint64_t commit_queue_wait_ns = 0;
  uint64_t commit_check_ns = 0;

  /// Phase durations; saturate to 0 rather than underflow on skew.
  uint64_t QueueWaitNs() const;
  uint64_t ExecNs() const;
  uint64_t ReplyWriteNs() const;
  /// enqueue -> reply flushed (or the latest stamped phase when not).
  uint64_t TotalNs() const;

  Json ToJson() const;
};

/// Fixed-capacity ring of the most recent completed requests. One mutex
/// around a deque: writers are worker threads completing a flush (a few
/// appends per statement, far off the per-tuple hot path), readers are the
/// admin thread and tests.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 256) : capacity_(capacity) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(RequestRecord record);
  /// Oldest-to-newest copy of the ring.
  std::vector<RequestRecord> Snapshot() const;
  /// Records displaced by overflow since construction (survives Clear).
  uint64_t dropped_records() const {
    return dropped_records_.load(std::memory_order_relaxed);
  }
  /// Records ever accepted.
  uint64_t total_records() const {
    return total_records_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::atomic<uint64_t> dropped_records_{0};
  std::atomic<uint64_t> total_records_{0};
  std::deque<RequestRecord> records_;
};

/// Compiled-out twin: every method folds away, so OBS=OFF servers carry no
/// ring, take no locks, and read no clocks — while /debug/requests still
/// serves a valid empty document.
struct NullFlightRecorder {
  NullFlightRecorder() = default;
  explicit NullFlightRecorder(size_t) {}
  void Record(const RequestRecord&) {}
  std::vector<RequestRecord> Snapshot() const { return {}; }
  uint64_t dropped_records() const { return 0; }
  uint64_t total_records() const { return 0; }
  size_t capacity() const { return 0; }
  void Clear() {}
};

#if DELTAMON_OBS_ENABLED
using RequestRecorder = FlightRecorder;
#else
using RequestRecorder = NullFlightRecorder;
#endif

/// Sets the capacity the process-wide recorder is constructed with
/// (deltamond --flight-records). Effective only if called before the
/// first GlobalRequestRecorder() use — the server does so during startup,
/// before any connection is accepted; later calls are ignored.
void SetGlobalFlightRecorderCapacity(size_t capacity);

/// The process-wide recorder behind /debug/requests.
RequestRecorder& GlobalRequestRecorder();

/// The /debug/requests document: {capacity, total_records,
/// dropped_records, requests: [RequestRecord.ToJson()...]}.
Json FlightRecorderJson(const std::vector<RequestRecord>& records,
                        size_t capacity, uint64_t total, uint64_t dropped);

/// Chrome/Perfetto trace_event document synthesized from request records:
/// per request one "request" span plus one span per phase, tid = the
/// connection id, timestamps normalized to the earliest enqueue. Loadable
/// in chrome://tracing and ui.perfetto.dev alongside ChromeTraceJson output.
Json RequestsChromeTraceJson(const std::vector<RequestRecord>& records);

/// One slow-log entry: the request identity plus the full evidence
/// captured while it ran — span tree, Chrome trace, literal profile.
struct SlowRecord {
  RequestContext context;
  std::string statement;  ///< full statement text (not the preview)
  bool ok = true;
  uint64_t elapsed_ns = 0;  ///< execution time (dequeue -> exec end)
  std::string span_tree;    ///< FormatSpanTree of the captured spans
  Json chrome_trace;        ///< ChromeTraceJson of the captured spans
  std::string profile_text;
  Json profile_json;

  Json ToJson() const;
};

/// Bounded ring of statements that exceeded the slow threshold. A process
/// global (like Registry::Global) so `show slow;` works from any session
/// — including a local shell attached to the same engine — not just the
/// connection that ran the slow statement. threshold_ns()==0 disables
/// capture entirely; the executor checks it before arming any
/// instrumentation, so an idle slow log costs one relaxed load.
class SlowLog {
 public:
  static SlowLog& Global();

  uint64_t threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }
  void set_threshold_ns(uint64_t ns) {
    threshold_ns_.store(ns, std::memory_order_relaxed);
  }

  void Record(SlowRecord record);
  std::vector<SlowRecord> Snapshot() const;
  uint64_t total_records() const {
    return total_records_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_records() const {
    return dropped_records_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }
  void Clear();

  /// The /debug/slow document.
  Json ToJson() const;
  /// `show slow;` report: threshold, entry count, then per entry the
  /// statement, elapsed time, span tree and profile.
  std::string Format() const;

 private:
  SlowLog() = default;

  const size_t capacity_ = 32;
  std::atomic<uint64_t> threshold_ns_{0};
  mutable std::mutex mu_;
  std::atomic<uint64_t> dropped_records_{0};
  std::atomic<uint64_t> total_records_{0};
  std::deque<SlowRecord> records_;
};

}  // namespace deltamon::obs

#endif  // DELTAMON_OBS_FLIGHT_RECORDER_H_
