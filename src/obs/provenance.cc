#include "obs/provenance.h"

#include <utility>

namespace deltamon::obs {

Json FiringRecord::ToJson() const {
  Json out = Json::Object();
  out.Set("seq", static_cast<int64_t>(seq));
  out.Set("trace_id", static_cast<int64_t>(trace_id));
  out.Set("version", static_cast<int64_t>(version));
  out.Set("rule", rule);
  out.Set("round", static_cast<int64_t>(round));
  Json rendered = Json::Array();
  for (const std::string& i : instances) rendered.Append(i);
  out.Set("instances", std::move(rendered));
  out.Set("captured_instances", static_cast<int64_t>(captured_instances));
  out.Set("total_instances", static_cast<int64_t>(total_instances));
  out.Set("lineage", lineage);
  return out;
}

void ProvenanceLog::Record(FiringRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = total_records_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (capacity_ == 0) {
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (records_.size() == capacity_) {
    records_.pop_front();
    dropped_records_.fetch_add(1, std::memory_order_relaxed);
  }
  records_.push_back(std::move(record));
}

std::vector<FiringRecord> ProvenanceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<FiringRecord>(records_.begin(), records_.end());
}

void ProvenanceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  // A cleared ring is a fresh recording: seq restarts at 1 and the
  // overflow counter describes only the current capture session.
  total_records_.store(0, std::memory_order_relaxed);
  dropped_records_.store(0, std::memory_order_relaxed);
}

FiringProvenance& GlobalProvenanceLog() {
  static FiringProvenance* log = new FiringProvenance();
  return *log;
}

Json ProvenanceJson(const std::vector<FiringRecord>& records, bool enabled,
                    size_t capacity, uint64_t total, uint64_t dropped) {
  Json firings = Json::Array();
  for (const FiringRecord& r : records) firings.Append(r.ToJson());
  Json out = Json::Object();
  out.Set("enabled", enabled);
  out.Set("capacity", static_cast<int64_t>(capacity));
  out.Set("total_records", static_cast<int64_t>(total));
  out.Set("dropped_records", static_cast<int64_t>(dropped));
  out.Set("firings", std::move(firings));
  return out;
}

std::string FormatProvenance(const std::vector<FiringRecord>& records,
                             bool enabled, uint64_t total, uint64_t dropped) {
  std::string out = "FIRING PROVENANCE (";
  out += enabled ? "on" : "off";
  out += ", " + std::to_string(records.size()) + " recorded";
  if (dropped > 0) out += ", " + std::to_string(dropped) + " dropped";
  out += ", " + std::to_string(total) + " total)\n";
  for (const FiringRecord& r : records) {
    out += "[" + std::to_string(r.seq) + "] " + r.rule + " fired on " +
           std::to_string(r.total_instances) + " instance(s) (trace " +
           std::to_string(r.trace_id) + ", version " +
           std::to_string(r.version) + ", round " + std::to_string(r.round) +
           ")\n";
    for (const std::string& i : r.instances) {
      out += "  " + i + "\n";
    }
    if (r.captured_instances < r.total_instances) {
      out += "  (lineage captured for first " +
             std::to_string(r.captured_instances) + ")\n";
    }
  }
  return out;
}

}  // namespace deltamon::obs
