#ifndef DELTAMON_OBS_TRACE_H_
#define DELTAMON_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace deltamon::obs {

/// One structured trace event: a category + name and a flat list of
/// integer fields. The propagation core emits one event per executed
/// partial differential (paper §8 explainability), keyed by relation ids;
/// consumers resolve names through the catalog if they want prose.
struct TraceEvent {
  std::string category;  // e.g. "propagation", "rules"
  std::string name;      // e.g. "differential", "rule_fired"
  std::vector<std::pair<std::string, int64_t>> fields;

  /// `category.name{k=v, ...}`.
  std::string ToString() const;
};

/// Receives trace events. Implementations must tolerate events from any
/// subsystem; emission is disabled wholesale when no sink is installed, so
/// sinks never see a partial stream.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

/// Keeps the most recent `capacity` events in memory (older events are
/// dropped), for tests, the PROFILE command, and TRACE recording. Overflow
/// is not silent: every displaced event bumps dropped_events() and the
/// global `obs.trace.dropped_events` counter (visible in SHOW METRICS), so
/// a truncated trace announces itself.
/// OnEvent is internally synchronized: parallel propagation emits spans and
/// differential events from worker threads. Reading events() while another
/// thread still emits is not synchronized — consumers (tests, TRACE, the
/// profiler) read only after the traced work has joined.
class RingTraceSink : public TraceSink {
 public:
  explicit RingTraceSink(size_t capacity = 1024) : capacity_(capacity) {}

  void OnEvent(const TraceEvent& event) override;

  const std::deque<TraceEvent>& events() const { return events_; }
  /// Events displaced by overflow since construction (survives Clear).
  uint64_t dropped_events() const {
    return dropped_events_.load(std::memory_order_relaxed);
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

 private:
  size_t capacity_;
  std::mutex mu_;
  std::atomic<uint64_t> dropped_events_{0};
  std::deque<TraceEvent> events_;
};

/// Process-wide sink registration. Null (the default) disables emission;
/// EmitTrace is then one pointer compare. The caller owns the sink and must
/// uninstall it (SetTraceSink(nullptr)) before destroying it.
void SetTraceSink(TraceSink* sink);
TraceSink* GetTraceSink();

inline bool TraceEnabled() { return GetTraceSink() != nullptr; }

/// Delivers `event` to the installed sink, if any.
void EmitTrace(const TraceEvent& event);

}  // namespace deltamon::obs

#endif  // DELTAMON_OBS_TRACE_H_
